#pragma once

// MPISim: a deterministic, single-threaded simulator of an MPI job.
//
// Each rank is a MiniVM interpreter with a private address space and its own
// FPM runtime (shadow table + CML trace). Ranks are scheduled round-robin in
// fixed instruction quanta, so every trial replays bit-exactly from its seed.
//
// Message passing implements the paper's Fig. 4 mechanism: every payload
// carries a contamination header of <displacement, pristine value> records
// built from the sender's shadow table and installed into the receiver's.
// Collectives (allreduce/bcast/barrier) are rendezvous operations with the
// same pristine-value bookkeeping. A trap or mpi_abort on any rank tears
// down the whole job, as a real MPI runtime would.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "fprop/fpm/message.h"
#include "fprop/fpm/runtime.h"
#include "fprop/ir/ir.h"
#include "fprop/obs/events.h"
#include "fprop/vm/interp.h"

namespace fprop::mpisim {

struct WorldConfig {
  std::uint32_t nranks = 8;
  vm::InterpConfig interp;  ///< per-rank config (rng streams derived per rank)
  /// Cycles between per-rank CML(t) trace samples; 0 disables tracing.
  std::uint64_t fpm_sample_period = 4096;
  bool enable_fpm = true;
  std::uint64_t slice = 1024;  ///< scheduler quantum (instructions)
  /// Global-clock period for the job-wide CML(t) trace (sum over ranks);
  /// 0 disables. Sampled between scheduler slices, so the effective
  /// resolution is max(slice, this).
  std::uint64_t global_sample_period = 0;
  /// Per-trial event recorder (DESIGN.md §8); wired into every rank's
  /// interpreter and FPM runtime. Null (the default) disables tracing.
  obs::TrialRecorder* recorder = nullptr;
  /// Compiled execution tier (DESIGN.md §13), shared read-only across ranks
  /// (and across Worlds — campaign workers pass the same module). Must be
  /// compiled from the module the World runs and outlive it; null keeps
  /// every rank on the reference interpreter.
  const vm::BytecodeModule* bytecode = nullptr;
};

/// Wildcards accepted by recv (matching MPI_ANY_SOURCE / MPI_ANY_TAG).
inline constexpr std::int64_t kAnySource = -1;
inline constexpr std::int64_t kAnyTag = -1;

struct RankResult {
  vm::RunState state = vm::RunState::Ready;
  vm::Trap trap = vm::Trap::None;
  std::uint64_t cycles = 0;
  std::vector<double> outputs;
  std::int64_t reported_iters = -1;
  std::uint64_t allocated_words = 0;
  std::uint64_t cml_final = 0;
  std::uint64_t cml_peak = 0;
  /// Global virtual time the rank's state first became contaminated
  /// (nullopt = never) — the Fig. 8 per-rank spread signal.
  std::optional<std::uint64_t> first_contaminated_at;
};

struct JobResult {
  bool crashed = false;
  vm::Trap first_trap = vm::Trap::None;
  std::uint32_t first_trap_rank = 0;
  std::vector<RankResult> ranks;
  std::uint64_t global_cycles = 0;  ///< total instructions across ranks
  std::uint64_t max_rank_cycles = 0;

  /// Concatenation of per-rank outputs in rank order (job "output state").
  std::vector<double> outputs() const;
  std::uint64_t total_cml_final() const;
  std::uint64_t total_cml_peak() const;
  std::uint64_t total_allocated_words() const;
  /// Max reported solver iterations across ranks (-1 if none reported).
  std::int64_t reported_iters() const;
  std::size_t contaminated_ranks() const;
};

class World final : public vm::MpiHook {
 private:
  struct Message {
    std::int64_t src = 0;
    std::int64_t tag = 0;
    std::vector<std::uint64_t> payload;
    fpm::MessageHeader header;
    /// The serialized header was corrupted in flight into a stream whose
    /// count word disagrees with its physical layout (fpm::deserialize_header
    /// returned false). The recoverable records are still in `header`.
    bool header_malformed = false;
  };

  /// Outstanding non-blocking operation (handle = index + 1 on its rank).
  struct Request {
    bool is_recv = false;
    bool done = false;
    std::int64_t src = 0;
    std::int64_t tag = 0;
    std::uint64_t buf = 0;
    std::int64_t count = 0;
  };

  enum class CollKind : std::uint8_t { None, Barrier, AllreduceSum,
                                       AllreduceMax, Bcast };

  struct CollArgs {
    std::uint64_t a = 0;  ///< sendbuf / buf
    std::uint64_t b = 0;  ///< recvbuf
    std::int64_t count = 0;
    std::int64_t root = 0;
  };

  struct Collective {
    CollKind kind = CollKind::None;
    std::vector<bool> arrived;
    std::vector<bool> left;
    std::vector<CollArgs> args;
    std::uint32_t arrived_count = 0;
    std::uint32_t left_count = 0;
    bool executed = false;
    bool failed = false;  ///< mismatched participation -> MPI error
  };

 public:
  World(const ir::Module& module, WorldConfig config);
  ~World() override;

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Attaches the LLFI++ runtime to every rank (may be null to detach).
  void set_inject_hook(vm::InjectHook* hook);

  /// Attaches the in-flight message corruption hook (DESIGN.md §12): called
  /// for every point-to-point send with the serialized FPM header and the
  /// payload, between build_header and delivery. Null (the default) keeps
  /// the send path free of any serialize/deserialize cost.
  void set_msg_hook(vm::MsgCorruptHook* hook) noexcept { msg_hook_ = hook; }

  /// Runs the job to completion (all done, or teardown on trap/deadlock).
  JobResult run();

  // --- stepping API (recovery::RecoveryManager interleaves detection and
  // --- checkpointing with execution through these) -------------------------

  enum class StepStatus : std::uint8_t {
    Running,     ///< at least one rank executed instructions; job continues
    Done,        ///< every rank finished
    Trapped,     ///< a rank trapped this sweep (see trapped_rank()); the job
                 ///< has NOT been torn down yet — the caller decides
    Deadlocked,  ///< full sweep with zero progress; no teardown applied yet
  };

  /// One round-robin scheduling pass over all live ranks. Between sweeps the
  /// job is at a quiescent boundary: every rank sits at an instruction
  /// boundary and all in-flight messages/collective epochs are fully
  /// captured by World state — the coordinated-checkpoint point.
  StepStatus sweep();
  /// Offender of the last sweep() that returned Trapped.
  std::uint32_t trapped_rank() const noexcept { return trapped_rank_; }
  /// Tears the job down after an unrecovered trap: every other live rank
  /// traps with `cause` (vm::Trap::Killed under real MPI semantics).
  void kill_job(std::uint32_t offender, vm::Trap cause);
  /// Declares the no-progress deadlock: all live ranks trap with Deadlock.
  void declare_deadlock();
  /// Assembles the job result from the current state (flushes the final
  /// global trace sample; call once, after the job stopped).
  JobResult collect();
  /// Sum of all ranks' shadow-table sizes — the periodic detector's scan
  /// signal (the paper's FPM store-check table).
  std::uint64_t total_cml() const;

  /// Coordinated checkpoint of the whole job, taken between sweeps. Holds
  /// every rank's execution snapshot, FPM bookkeeping, in-flight messages,
  /// request tables, collective epochs and the global clock/trace — enough
  /// to restore bit-exact deterministic replay.
  struct Checkpoint {
    std::vector<vm::Interp::Snapshot> ranks;
    std::vector<std::optional<fpm::FpmRuntime::Snapshot>> fpms;
    std::vector<std::deque<Message>> mailboxes;
    std::vector<std::vector<Request>> requests;
    std::vector<std::uint64_t> coll_epoch;
    std::deque<Collective> pending_colls;
    std::uint64_t coll_base_epoch = 0;
    bool aborted = false;
    std::uint32_t abort_rank = 0;
    std::uint64_t global_clock = 0;
    std::vector<std::optional<std::uint64_t>> first_contaminated;
    std::vector<fpm::TraceSample> global_trace;
    std::uint64_t next_global_sample = 0;
    std::vector<std::uint64_t> sent_msgs;
    std::uint64_t headers_quarantined = 0;
    std::uint64_t header_records_quarantined = 0;

    /// Rough serialized footprint (bytes) for the observability layer's
    /// Checkpoint events and checkpoint.bytes histogram. Dominated by the
    /// rank memory images; bookkeeping containers are costed per element.
    std::uint64_t approx_bytes() const;
  };

  Checkpoint checkpoint() const;
  /// Rolls the whole job back to `ckpt` (same World only: the checkpoint
  /// references this module's functions).
  void restore(const Checkpoint& ckpt);

  /// Golden-reconvergence test (DESIGN.md §14): true iff the job's complete
  /// live state at the current quiescent sweep boundary equals `golden` — a
  /// checkpoint of the fault-free run over the SAME module at the same
  /// global clock. Live state = every rank's execution snapshot (incl. the
  /// full memory content, compared through `golden_page_hashes[rank]` ==
  /// AddressSpace::image_page_hashes(golden.ranks[rank].memory)), empty
  /// shadow tables on BOTH sides, mailbox contents, request tables,
  /// collective epochs and the abort flag. Deterministic execution makes the
  /// guarantee exact: equal live state at equal clock implies a bit-identical
  /// future. Observational fields (traces, stats, contamination timestamps,
  /// quarantine and send counters) are deliberately NOT compared — they
  /// cannot steer execution, and the caller synthesizes results from the
  /// trial-side values.
  bool state_converged(
      const Checkpoint& golden,
      const std::vector<std::vector<std::uint64_t>>& golden_page_hashes)
      const;

  std::uint32_t nranks() const noexcept;
  vm::Interp& rank(std::uint32_t r);
  fpm::FpmRuntime* fpm(std::uint32_t r);
  std::uint64_t global_cycles() const noexcept { return global_clock_; }
  /// Per-rank successful point-to-point sends (send + isend) so far — the
  /// message-fault analogue of the injector's dynamic counts. Part of the
  /// checkpoint, so a restore repositions the counters with the state.
  const std::vector<std::uint64_t>& sent_messages() const noexcept {
    return sent_msgs_;
  }
  /// Per-rank first-contamination clocks (nullopt = never); the source of
  /// JobResult::first_contaminated_at, exposed so pruned trials can
  /// synthesize contaminated_ranks without a collect().
  const std::vector<std::optional<std::uint64_t>>& first_contaminated()
      const noexcept {
    return first_contaminated_;
  }
  /// Messages whose piggyback header arrived anomalous (malformed stream or
  /// ≥1 record quarantined), and total records quarantined, job-wide.
  std::uint64_t headers_quarantined() const noexcept {
    return headers_quarantined_;
  }
  std::uint64_t header_records_quarantined() const noexcept {
    return header_records_quarantined_;
  }
  /// Job-wide CML(t): (global cycle, sum of all ranks' shadow-table sizes).
  const std::vector<fpm::TraceSample>& global_trace() const noexcept {
    return global_trace_;
  }

  // --- vm::MpiHook ---------------------------------------------------------
  std::int64_t rank_count() const override;
  vm::MpiResult send_f(vm::Interp& self, std::int64_t dest, std::int64_t tag,
                       std::uint64_t buf, std::int64_t count) override;
  vm::MpiResult recv_f(vm::Interp& self, std::int64_t src, std::int64_t tag,
                       std::uint64_t buf, std::int64_t count) override;
  /// Non-blocking operations. Isend completes eagerly (buffered copy, like
  /// MCB's boundary-particle sends); Irecv posts a request that is matched
  /// lazily at mpi_wait. A corrupted request handle faults at wait.
  vm::MpiResult isend_f(vm::Interp& self, std::int64_t dest, std::int64_t tag,
                        std::uint64_t buf, std::int64_t count,
                        std::int64_t* request) override;
  vm::MpiResult irecv_f(vm::Interp& self, std::int64_t src, std::int64_t tag,
                        std::uint64_t buf, std::int64_t count,
                        std::int64_t* request) override;
  vm::MpiResult wait(vm::Interp& self, std::int64_t request) override;
  vm::MpiResult allreduce_f(vm::Interp& self, bool is_max,
                            std::uint64_t sendbuf, std::uint64_t recvbuf,
                            std::int64_t count) override;
  vm::MpiResult bcast_f(vm::Interp& self, std::int64_t root, std::uint64_t buf,
                        std::int64_t count) override;
  vm::MpiResult barrier(vm::Interp& self) override;
  void abort(vm::Interp& self, std::int64_t code) override;

 private:
  /// Registers `self` in the current collective epoch; returns Done once the
  /// operation has executed, Block while waiting, Fault on mismatch.
  vm::MpiResult join_collective(vm::Interp& self, CollKind kind,
                                const CollArgs& args);
  bool execute_collective(Collective& coll);
  bool exec_allreduce(Collective& coll, bool is_max);
  bool exec_bcast(Collective& coll);

  /// Installs a received message's (untrusted) header into rank `r`'s shadow
  /// table, accounting quarantined records and emitting HeaderQuarantined.
  void install_message_header(std::uint32_t r, std::uint64_t buf,
                              std::uint64_t count_words,
                              const fpm::MessageHeader& header,
                              bool malformed);

  bool read_payload(vm::Interp& src_rank, std::uint64_t buf,
                    std::int64_t count, std::vector<std::uint64_t>& out);
  bool write_payload(vm::Interp& dst_rank, std::uint64_t buf,
                     const std::vector<std::uint64_t>& payload);
  void teardown(std::uint32_t offender, vm::Trap cause);
  void note_contamination();

  const ir::Module* module_;
  WorldConfig config_;
  std::vector<std::unique_ptr<fpm::FpmRuntime>> fpms_;
  std::vector<std::unique_ptr<vm::Interp>> ranks_;
  std::vector<std::deque<Message>> mailboxes_;  ///< indexed by receiver
  std::vector<std::vector<Request>> requests_;  ///< per-rank request tables
  std::vector<std::uint64_t> coll_epoch_;       ///< per-rank completed count
  std::deque<Collective> pending_colls_;        ///< indexed by epoch - base
  std::uint64_t coll_base_epoch_ = 0;
  bool aborted_ = false;
  std::uint32_t abort_rank_ = 0;
  std::uint32_t trapped_rank_ = 0;
  std::uint64_t global_clock_ = 0;
  std::vector<std::optional<std::uint64_t>> first_contaminated_;
  std::vector<fpm::TraceSample> global_trace_;
  std::uint64_t next_global_sample_ = 0;
  vm::MsgCorruptHook* msg_hook_ = nullptr;
  std::vector<std::uint64_t> sent_msgs_;  ///< per-rank p2p send counters
  std::uint64_t headers_quarantined_ = 0;
  std::uint64_t header_records_quarantined_ = 0;
};

}  // namespace fprop::mpisim
