#pragma once

// Greedy failing-case minimizer (DESIGN.md §10).
//
// Delta-debugging over source lines: repeatedly deletes line chunks of
// halving size, keeping any deletion under which the caller-supplied
// predicate still reports "fails". Converges to 1-line granularity
// (ddmin-style), which is enough to turn a generated 80-line program into a
// handful of lines that still trip an oracle — the form committed to the
// corpus.

#include <cstddef>
#include <functional>
#include <string>

namespace fprop::fuzz {

struct MinimizeStats {
  std::size_t initial_lines = 0;
  std::size_t final_lines = 0;
  std::size_t attempts = 0;  ///< predicate evaluations spent
};

/// Returns true when `candidate` still exhibits the failure being minimized.
/// The predicate must treat every candidate independently (no state), and
/// should be deterministic — the same seeds/config as the original failure.
using FailPredicate = std::function<bool(const std::string&)>;

/// Shrinks `source` while `still_fails` holds, spending at most
/// `max_attempts` predicate calls. `source` itself must satisfy the
/// predicate; if it does not, it is returned unchanged (stats record zero
/// attempts). The result always satisfies the predicate.
std::string minimize_lines(const std::string& source,
                           const FailPredicate& still_fails,
                           std::size_t max_attempts = 2000,
                           MinimizeStats* stats = nullptr);

}  // namespace fprop::fuzz
