#pragma once

// Differential oracles over generated MiniC programs (DESIGN.md §10).
//
// Each oracle checks one framework invariant that must hold for *every*
// valid program, not just the six registry apps:
//
//   pristine   FPM-on uninjected run == plain FPM-off run, bit for bit, and
//              the secondary chain never diverges (the paper's §3.2 claim).
//   campaign   run_campaign at jobs=1 == jobs=N, field for field (the PR 2
//              determinism contract).
//   ckpt       taking a coordinated checkpoint mid-run does not perturb the
//              run, and restore + re-run replays bit-exactly (PR 1 contract).
//   shadow     ShadowTable == std::unordered_map reference model under a
//              randomized record/lookup/heal/heal_range/clear op stream.
//   parser     the MiniC frontend rejects arbitrarily mutated source with
//              CompileError — never another exception type, never a crash.
//   warm_vs_cold  warm-started campaigns (golden snapshot ladder +
//              injector fast-forward, DESIGN.md §11) == cold-started
//              campaigns bit-for-bit, with and without recovery, and the
//              warm_start knob never perturbs a metrics fold.
//   multifault k-fault + in-flight message-corruption campaigns
//              (DESIGN.md §12) == bit-identical serial vs jobs=N and warm
//              vs cold, including the quarantine/interference aggregates.
//   header     the FPM piggyback wire format under adversarial streams:
//              deserialize_header never throws and never yields more
//              records than are physically present; install_header confines
//              every accepted record to the receive buffer and accounts
//              installed + quarantined exactly; honest headers round-trip.
//   bytecode_vs_interp  the compiled execution tier (DESIGN.md §13) is
//              bit-identical to the reference interpreter: uninjected jobs
//              match field-for-field including cycle counts and CML
//              bookkeeping, and injected campaigns (single- and multi-
//              fault, cold- and warm-started) produce identical
//              CampaignResults under both tiers.
//   prune      early-outcome pruning + plan-equivalence dedup (DESIGN.md
//              §14) == the unpruned, undeduped campaign bit-for-bit —
//              plain, under recovery, and with k-fault + message-fault
//              plans — plus the economy invariants (pruned trials classify
//              V/ONA with empty shadow tables; dedup_count partitions the
//              trial count).
//   shard      the sharded campaign engine (DESIGN.md §15): randomized
//              RangeResult/JobSpec frames round-trip byte-exactly through
//              the wire codec; truncated and bit-struck frames always
//              surface as typed ProtocolErrors, never a silent misparse;
//              and a coordinator + in-process serve() shards reproduce the
//              in-process run_campaign bit-for-bit over a generated
//              program, provenance fields included.
//
// Oracles never throw: any unexpected exception is itself a violation and is
// reported through OracleResult.

#include <cstddef>
#include <cstdint>
#include <string>

#include "fprop/fuzz/generator.h"

namespace fprop::fuzz {

struct OracleResult {
  bool ok = true;
  std::string oracle;  ///< which invariant was checked
  std::string detail;  ///< empty when ok; mismatch description otherwise
};

struct OracleConfig {
  /// Campaign oracle: trials per run and the parallel jobs count compared
  /// against jobs=1.
  std::size_t campaign_trials = 6;
  std::size_t campaign_jobs = 2;
  /// Campaign oracle: also exercise the trace-capture + slope-fit path.
  bool capture_traces = false;
  /// Multifault oracle: register faults per trial and in-flight message
  /// faults per trial (the latter degrades to 0 on communication-free
  /// generated programs).
  std::size_t multifault_k = 4;
  std::size_t multifault_msg = 1;
};

/// Oracle "pristine": compiles `prog` twice — plain (no instrumentation,
/// FPM off) and instrumented (LLFI++ sites unarmed + dual chain, FPM on) —
/// runs both and requires bitwise-equal outputs/outcomes plus a clean FPM:
/// zero divergent stores, zero wild stores, empty shadow tables.
OracleResult check_pristine_chain(const GeneratedProgram& prog);

/// Oracle "campaign": builds an AppHarness over `prog` and compares
/// run_campaign at jobs=1 vs jobs=config.campaign_jobs field-for-field
/// (doubles compared bitwise).
OracleResult check_campaign_parallel(const GeneratedProgram& prog,
                                     const OracleConfig& config = {});

/// Oracle "ckpt": (a) a run that takes a mid-run coordinated checkpoint
/// (under a sampled single-fault injection) must equal the same run without
/// the checkpoint; (b) without injection, completing, restoring the mid-run
/// checkpoint and completing again must replay bit-exactly.
OracleResult check_checkpoint_replay(const GeneratedProgram& prog);

/// Oracle "shadow": drives ShadowTable and an unordered_map reference model
/// through `ops` randomized operations (record/lookup/pristine_or/heal/
/// heal_range/in_range/clear over 8-aligned keys, colliding keys and the
/// ~0 sentinel key) and compares results after every operation.
OracleResult check_shadow_model(std::uint64_t seed, std::size_t ops = 4096);

/// Oracle "parser": minic::compile(source) must either succeed or throw
/// CompileError. Any other exception (or a crash, which no oracle can
/// report) is a frontend robustness bug. `source` is typically
/// mutate_source() output.
OracleResult check_parser_robust(const std::string& source);

/// Oracle "warm_vs_cold": builds an AppHarness over `prog` (plain, then with
/// recovery enabled on a golden-derived detector grid) and compares
/// run_campaign with warm_start=false vs warm_start=true field-for-field —
/// outcomes, injection events, CML traces and slope fits, recovery fields
/// (doubles compared bitwise). Also folds both campaigns into metrics
/// registries and requires equal snapshots (recorder-attached trials
/// decline warm starts; the knob must still change nothing).
OracleResult check_warm_vs_cold(const GeneratedProgram& prog,
                                const OracleConfig& config = {});

/// Oracle "multifault": runs a k-fault campaign (config.multifault_k
/// register faults plus config.multifault_msg in-flight message faults per
/// trial, DESIGN.md §12) over `prog` and requires bit-identical results
/// serial vs jobs=config.campaign_jobs AND cold vs warm-started —
/// including msg_injected, quarantine counters and fault_pair_min_gap on
/// every trial.
OracleResult check_multifault(const GeneratedProgram& prog,
                              const OracleConfig& config = {});

/// Oracle "bytecode_vs_interp": compiles `prog` instrumented and requires
/// the bytecode tier to be bit-identical to the reference interpreter:
/// (a) an uninjected World run with the compiled tier equals the interp run
/// field-for-field (cycles, outputs, CML bookkeeping); (b) an AppHarness
/// campaign (single-fault, then config.multifault_k faults per trial) run
/// with CampaignConfig::exec_tier = Bytecode equals the Interp-tier
/// campaign field-for-field, both cold- and warm-started.
OracleResult check_bytecode_vs_interp(const GeneratedProgram& prog,
                                      const OracleConfig& config = {});

/// Oracle "prune": builds an AppHarness over `prog` (plain, with recovery
/// enabled, and with config.multifault_k faults + config.multifault_msg
/// message faults per trial) and compares run_campaign with
/// prune=dedup=false vs prune=dedup=true field-for-field — the §14
/// soundness contract. Also enforces the economy invariants on the pruned
/// leg: every pruned trial is Vanished/ONA with total_cml_final == 0 and
/// Trap::None, dedup_count sums to the trial count, and the number of
/// zero-count slots equals CampaignResult::deduped_trials.
OracleResult check_prune(const GeneratedProgram& prog,
                         const OracleConfig& config = {});

/// Oracle "shard": the distributed campaign engine (DESIGN.md §15).
/// (a) a seed-derived randomized RangeResult (every TrialResult field
/// populated, optionals both ways, metrics snapshot attached) and a
/// randomized JobSpec must round-trip the wire codec byte-exactly with a
/// stable digest; (b) `iters` adversarial strikes — truncation at random
/// boundaries, single-bit flips over the whole frame — must each surface as
/// a typed ProtocolError, never an accepted misparse; (c) a coordinator
/// plus two in-process serve() shards over `prog` must reproduce
/// run_campaign bit-for-bit, trial-economy provenance included.
OracleResult check_shard_protocol(const GeneratedProgram& prog,
                                  const OracleConfig& config = {},
                                  std::size_t iters = 256);

/// Oracle "header": drives fpm::serialize_header / deserialize_header /
/// install_header through `iters` seed-derived adversarial wire streams
/// (honest, bit-struck, truncated, pure-garbage). Violations: any thrown
/// exception, a parse yielding more records than physically present, an
/// honest header failing to round-trip, install accounting that loses
/// records, or an accepted record landing outside the receive buffer.
OracleResult check_header_adversarial(std::uint64_t seed,
                                      std::size_t iters = 512);

}  // namespace fprop::fuzz
