#pragma once

// Seeded random MiniC program generator (DESIGN.md §10).
//
// Produces programs that are *valid by construction*: every expression is
// typed, every array index is clamped into bounds, every loop has a constant
// trip count, integer division/remainder denominators are provably non-zero,
// and there is no recursion — so a generated program always compiles and
// always terminates well under the cycle budget. MPI patterns (ring
// send/recv, isend/irecv+wait, allreduce, bcast, barrier) are emitted only at
// rank-uniform sequence points, so they are deadlock-free under the mpisim
// World's rendezvous semantics.
//
// Validity-by-construction is what makes the differential oracles
// (fuzz/oracles.h) sharp: any crash, divergence or non-determinism observed
// on a generated program is a framework bug, not an input problem.

#include <cstdint>
#include <string>

namespace fprop::fuzz {

struct GenConfig {
  /// Ranks the program is meant to run on (>= 2 enables MPI patterns).
  std::uint32_t nranks = 4;
  /// Allow MPI send-recv/collective patterns (needs nranks >= 2).
  bool mpi = true;
  /// Helper functions generated in addition to main (0..max).
  std::size_t max_helpers = 2;
  /// Statement budget for main's top-level body.
  std::size_t max_stmts = 10;
  /// Maximum expression tree depth.
  int max_expr_depth = 3;
  /// Maximum nesting of if/for blocks.
  int max_block_depth = 2;
  /// Maximum constant trip count of generated loops.
  std::int64_t max_loop_trip = 6;
};

struct GeneratedProgram {
  std::string source;
  std::uint32_t nranks = 1;
  bool has_mpi = false;
  std::uint64_t seed = 0;
};

/// Generates one program from `seed`. Same (seed, config) => same source,
/// byte for byte (all randomness flows through a seeded Xoshiro256).
GeneratedProgram generate_program(std::uint64_t seed,
                                  const GenConfig& config = {});

/// Applies 1..4 random byte/span-level mutations (truncation, deletion,
/// duplication, character flips, pathological token insertion) to `source`.
/// The result is usually *invalid* MiniC — fodder for the parser-robustness
/// oracle: the frontend must reject it with CompileError, never crash.
std::string mutate_source(const std::string& source, std::uint64_t seed);

}  // namespace fprop::fuzz
