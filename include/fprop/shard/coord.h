#pragma once

// Campaign coordinator (DESIGN.md §15): owns the plan-index job queue,
// fans ranges out to connected shards, journals each merged range, and
// folds the slots through the same merge_campaign the in-process engine
// uses — which is what makes the distributed CampaignResult bit-identical
// to run_campaign at any shard count.

#include <csignal>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "fprop/harness/harness.h"
#include "fprop/shard/protocol.h"

namespace fprop::shard {

struct DistConfig {
  /// Persistent journal of merged ranges. Empty disables resume: a crash
  /// restarts the campaign from scratch.
  std::string journal_path;
  /// Trials per Assign (0 = auto: ~4 ranges per shard). A pre-existing
  /// journal's persisted range size always wins, so a resumed campaign
  /// re-derives the identical partition even after the shard count changed.
  std::size_t range_size = 0;
  /// SIGINT flag: stops assigning new ranges; already-merged ranges stay
  /// journaled, so rerunning with the same journal resumes.
  const volatile std::sig_atomic_t* stop = nullptr;
  /// Progress sink (stderr in the tool, null = silent).
  std::function<void(const std::string&)> log;
};

class Coordinator {
 public:
  /// Performs the Setup/SetupAck handshake on every connection. Shards that
  /// fail the handshake (protocol mismatch, digest mismatch, golden-run
  /// cross-check failure) are dropped with a log line; throws fprop::Error
  /// if none survive. Samples the campaign plan locally — the same
  /// plan_campaign every shard computes from the JobSpec.
  Coordinator(const harness::AppHarness& harness,
              const harness::CampaignConfig& config, std::vector<Conn> shards,
              DistConfig dist = {});
  /// Sends Shutdown to every still-connected shard (best effort).
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Runs the campaign to completion and merges. Callable repeatedly on the
  /// same connections (each call re-executes the full campaign — the bench
  /// loop). Throws fprop::Error if every shard dies (or the stop flag is
  /// raised) with ranges unfinished; with a journal configured, the merged
  /// prefix is on disk and a rerun resumes from it.
  harness::CampaignResult run();

 private:
  const harness::AppHarness& harness_;
  harness::CampaignConfig config_;
  DistConfig dist_;
  std::uint64_t digest_ = 0;
  harness::CampaignPlan plan_;
  std::vector<Conn> shards_;
};

/// One-shot convenience: handshake, run, merge.
harness::CampaignResult run_distributed_campaign(
    const harness::AppHarness& harness, const harness::CampaignConfig& config,
    std::vector<Conn> shards, DistConfig dist = {});

}  // namespace fprop::shard
