#pragma once

// Local shard processes: socketpair + posix_spawn, the transport behind
// `fprop-coord --shards=N` and the shard bench.

#include <sys/types.h>

#include <string>
#include <vector>

#include "fprop/shard/protocol.h"

namespace fprop::shard {

struct SpawnedShard {
  pid_t pid = -1;
  Conn conn;  ///< coordinator end of the socketpair
};

/// Spawns `count` copies of the shard binary, each with its end of a fresh
/// socketpair dup2'd onto stdin/stdout and `--stdio` prepended to
/// `extra_args`. Throws fprop::Error if any spawn fails (already-spawned
/// shards are reaped).
std::vector<SpawnedShard> spawn_local_shards(
    const std::string& shard_bin, std::size_t count,
    const std::vector<std::string>& extra_args = {});

/// waitpid wrapper: blocks until the shard exits, returns its exit code
/// (or -signal for a signal death, -256 on waitpid failure).
int wait_shard(pid_t pid);

// --- Unix-domain sockets: the two-terminal / two-machine-via-ssh mode ----

/// Binds and listens at `path` (replacing a stale socket file), accepts
/// `count` shard connections, unlinks the socket file, and returns the
/// connections in accept order.
std::vector<Conn> uds_accept(const std::string& path, std::size_t count);

/// Connects a shard to the coordinator listening at `path`.
Conn uds_connect(const std::string& path);

}  // namespace fprop::shard
