#pragma once

// Resumable range journal (DESIGN.md §15).
//
// An append-only file of wire-protocol frames: one JournalHeader frame
// identifying the campaign (job digest, trials, seed, range size), then one
// Result frame per acknowledged range, each the exact bytes that crossed
// (or would cross) the wire. Every append is flushed and fsync'd before the
// range is considered acknowledged, so after a crash — SIGKILL included —
// the file is a valid prefix plus at most one incomplete tail record, which
// open() detects and truncates away.
//
// The coordinator journals each range as it is merged: a restarted campaign
// replays the journal, refills the merged slots (and re-absorbs the metrics
// snapshots), and only assigns the ranges still missing. A shard may keep
// its own journal of completed ranges; a re-assigned range it already
// executed is answered from the journal instead of re-run.

#include <cstdint>
#include <string>
#include <vector>

#include "fprop/shard/protocol.h"

namespace fprop::shard {

class RangeJournal {
 public:
  struct Header {
    std::uint64_t digest = 0;  ///< job_digest of the campaign
    std::uint64_t trials = 0;
    std::uint64_t seed = 0;
    /// Assignment granularity. Persisted so a resumed campaign re-derives
    /// the identical range partition even if the shard count (and thus the
    /// auto-sized range) changed across the restart.
    std::uint64_t range_size = 0;
  };

  /// Opens (creating if missing) the journal at `path`. A pre-existing
  /// journal must carry the same digest/trials/seed — a mismatch throws
  /// fprop::Error (resuming someone else's campaign would merge garbage);
  /// its range_size overrides the caller's. An incomplete or corrupted tail
  /// is truncated to the last whole record.
  RangeJournal(std::string path, const Header& header);
  ~RangeJournal();

  RangeJournal(const RangeJournal&) = delete;
  RangeJournal& operator=(const RangeJournal&) = delete;

  const Header& header() const noexcept { return header_; }
  /// Ranges recovered from a pre-existing journal, file order.
  const std::vector<RangeResult>& recovered() const noexcept {
    return recovered_;
  }

  /// Appends one acknowledged range and fsyncs before returning.
  void append(const RangeResult& rr);

 private:
  std::string path_;
  Header header_;
  std::vector<RangeResult> recovered_;
  int fd_ = -1;
};

}  // namespace fprop::shard
