#pragma once

// Worker-shard serve loop (DESIGN.md §15): receives one Setup, rebuilds the
// harness and campaign plan locally, then executes Assign'd plan-index
// ranges until Shutdown, EOF, or an interrupt.

#include <csignal>
#include <cstddef>
#include <functional>
#include <string>

#include "fprop/apps/registry.h"
#include "fprop/shard/protocol.h"

namespace fprop::shard {

struct ServeOptions {
  /// Override the JobSpec's per-shard worker-thread count (0 = as sent).
  std::size_t jobs_override = 0;
  /// Shard-local journal of completed ranges: a re-assigned range already
  /// journaled is answered without re-execution (crash/reconnect economy).
  std::string journal_path;
  /// Chaos hook for tests/CI: after this many Result frames, drop the
  /// connection without a Bye — indistinguishable from SIGKILL to the
  /// coordinator. 0 disables.
  std::size_t max_ranges = 0;
  /// SIGINT/SIGTERM flag: polled between ranges and while blocked on recv
  /// (via EINTR). When raised the shard finishes its current range, lets
  /// the journal fsync, sends Bye, and returns — the coordinator requeues
  /// anything unacknowledged.
  const volatile std::sig_atomic_t* stop = nullptr;
  /// App resolver override for embedding serve() over programs that are not
  /// in the static registry (e.g. the fuzz oracle's generated apps). The
  /// returned AppSpec must outlive the serve() call. Null = apps::get_app.
  std::function<const apps::AppSpec&(const std::string&)> resolve_app;
  /// Progress sink (stderr in the tool, null = silent).
  std::function<void(const std::string&)> log;
};

struct ServeStats {
  std::size_t ranges_executed = 0;
  std::size_t ranges_replayed = 0;  ///< answered from the local journal
  std::size_t trials_executed = 0;
  bool interrupted = false;  ///< the stop flag ended the session
};

/// Serves one coordinator session on `conn`. Protocol violations from the
/// peer surface as an Error frame (best effort) and a clean return — a
/// malformed coordinator can never crash or wedge a shard. fprop::Error
/// from harness construction (unknown app, bad config) is reported the same
/// way.
ServeStats serve(Conn& conn, const ServeOptions& opts = {});

}  // namespace fprop::shard
