#pragma once

// Wire protocol for the sharded campaign engine (DESIGN.md §15).
//
// A coordinator and its worker shards speak length-prefixed binary frames
// over any reliable byte stream (pipes, socketpairs, Unix-domain sockets).
// The protocol is dependency-free: fixed-width little-endian integers,
// doubles as IEEE-754 bit patterns, strings and vectors length-prefixed —
// the same byte-framing discipline as the FPM piggyback header (§6) and the
// `ocall_mpi_send_bytes` idiom the design borrows from.
//
// Hardening contract (mirrors the PR 6 header-quarantine rules): every
// claimed length is clamped to the bytes physically present, every header
// field is validated, and the payload is covered by an FNV-1a checksum, so
// a truncated, oversized, malformed, or bit-flipped frame surfaces as a
// typed ProtocolError — never a crash, hang, or silent misparse.
//
// Plans never cross the wire. A shard receives the (app, ExperimentConfig,
// CampaignConfig) triple, rebuilds the harness, and recomputes
// plan_campaign locally — plans are pure functions of derive_seed(seed, i)
// and the golden run, so coordinator and shards agree byte-for-byte, and a
// Setup frame stays O(config) no matter how many trials the campaign has.

#include <csignal>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fprop/harness/harness.h"
#include "fprop/obs/metrics.h"
#include "fprop/support/error.h"

namespace fprop::shard {

// ---------------------------------------------------------------------------
// Typed wire faults

enum class WireFault : std::uint8_t {
  BadMagic,           ///< frame does not start with kMagic
  BadVersion,         ///< protocol version mismatch
  BadType,            ///< unknown frame type byte
  Oversized,          ///< claimed payload exceeds kMaxFramePayload
  Truncated,          ///< claimed length exceeds the bytes physically present
  ChecksumMismatch,   ///< payload bytes do not match the header checksum
  Malformed,          ///< payload structure invalid (bad tag, overrun, range)
};

const char* wire_fault_name(WireFault f) noexcept;

/// Every protocol violation surfaces as this one typed error; the
/// coordinator and shard loops catch it at the connection boundary and
/// retire the peer instead of crashing.
class ProtocolError : public Error {
 public:
  ProtocolError(WireFault fault, const std::string& what)
      : Error(std::string("wire protocol: ") + wire_fault_name(fault) + ": " +
              what),
        fault_(fault) {}

  WireFault fault() const noexcept { return fault_; }

 private:
  WireFault fault_;
};

// ---------------------------------------------------------------------------
// Framing

inline constexpr std::uint32_t kMagic = 0x46534831u;  // "FSH1"
inline constexpr std::uint8_t kProtocolVersion = 1;
/// magic u32 | version u8 | type u8 | reserved u16 (0) | payload_len u64 |
/// payload FNV-1a u64.
inline constexpr std::size_t kFrameHeaderBytes = 24;
/// Hard payload cap. A Result frame carries at most one range of
/// TrialResults (~300 bytes each uncompressed), so real frames sit far
/// below this; anything larger is a corrupted length field.
inline constexpr std::uint64_t kMaxFramePayload = 256ull << 20;

enum class FrameType : std::uint8_t {
  Setup = 1,     ///< coordinator -> shard: JobSpec
  SetupAck = 2,  ///< shard -> coordinator: digest echo + golden facts
  Assign = 3,    ///< coordinator -> shard: plan-index range [first, last)
  Result = 4,    ///< shard -> coordinator: RangeResult
  Shutdown = 5,  ///< coordinator -> shard: campaign complete, exit
  Bye = 6,       ///< shard -> coordinator: clean departure (SIGINT/SIGTERM)
  Error = 7,     ///< either way: fatal condition, utf-8 message payload
  /// Leading record of a journal file (journal.h); never sent on a live
  /// link — Conn::recv rejects it as BadType.
  JournalHeader = 8,
};

const char* frame_type_name(FrameType t) noexcept;

struct Frame {
  FrameType type = FrameType::Error;
  std::vector<std::uint8_t> payload;
};

/// FNV-1a 64-bit over a byte span (the frame checksum and config digest).
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) noexcept;

/// Header + payload, ready to write to a stream.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Decodes one complete frame from a buffer. The claimed payload length is
/// clamped to `size`: if fewer bytes are physically present the frame is
/// Truncated, never read past. `consumed` (optional) receives the total
/// encoded size on success. Throws ProtocolError on any violation.
Frame decode_frame(const std::uint8_t* data, std::size_t size,
                   std::size_t* consumed = nullptr);

// ---------------------------------------------------------------------------
// Payload primitives

/// Appends fixed-width little-endian primitives to a byte buffer.
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);  ///< IEEE-754 bit pattern, byte-exact round trip
  void str(const std::string& s);                  ///< u64 length + bytes
  void bytes(const std::uint8_t* p, std::size_t n);

 private:
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked reader over a payload. Any read past the end throws
/// ProtocolError(Malformed) — claimed element counts inside a payload are
/// thereby clamped to the bytes actually present.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();
  /// Element-count guard: a length prefix claiming more than the remaining
  /// bytes / `min_elem_bytes` is Malformed before any allocation happens.
  std::uint64_t count(std::size_t min_elem_bytes);
  bool done() const noexcept { return off_ == size_; }
  std::size_t remaining() const noexcept { return size_ - off_; }

 private:
  const std::uint8_t* need(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t off_ = 0;
};

// ---------------------------------------------------------------------------
// Job setup

/// Everything a shard needs to rebuild the campaign locally: the app name
/// plus the full experiment + campaign configuration. The runtime-only
/// CampaignConfig members (metrics pointer, trace capacity) travel as
/// flags/values; shards re-materialize them.
struct JobSpec {
  std::string app;
  harness::ExperimentConfig experiment;
  harness::CampaignConfig campaign;  ///< .metrics is never serialized
  /// Coordinator attached a MetricsRegistry: each shard folds ranges into a
  /// fresh local registry and ships the snapshot back in the Result frame.
  bool metrics_enabled = false;
};

void write_job_spec(WireWriter& w, const JobSpec& spec);
JobSpec read_job_spec(WireReader& r);

/// FNV-1a digest of the serialized JobSpec — the campaign identity the
/// SetupAck echo and the journal header are validated against.
std::uint64_t job_digest(const JobSpec& spec);

struct SetupAck {
  std::uint64_t digest = 0;       ///< job_digest echo
  std::uint32_t protocol = 0;     ///< shard's kProtocolVersion
  std::uint64_t total_dyn_points = 0;  ///< golden-run cross-check
  std::uint64_t golden_cycles = 0;
};

// ---------------------------------------------------------------------------
// Results

/// One executed plan-index range. `results` holds (index, TrialResult) for
/// every representative trial in [first, last), ascending; duplicate slots
/// are reconstructed at merge. `metrics` is the shard's registry snapshot
/// for exactly this range (empty unless the job has metrics enabled) — the
/// fold is commutative, so the coordinator absorbs snapshots in arrival
/// order and still matches the in-process registry bit-for-bit.
struct RangeResult {
  std::uint64_t first = 0;
  std::uint64_t last = 0;
  std::vector<std::pair<std::uint64_t, harness::TrialResult>> results;
  obs::MetricsSnapshot metrics;
};

void write_trial_result(WireWriter& w, const harness::TrialResult& t);
harness::TrialResult read_trial_result(WireReader& r);

void write_metrics_snapshot(WireWriter& w, const obs::MetricsSnapshot& s);
obs::MetricsSnapshot read_metrics_snapshot(WireReader& r);

void write_range_result(WireWriter& w, const RangeResult& rr);
RangeResult read_range_result(WireReader& r);

// Whole-frame helpers (payload codecs + FrameType tagging).
Frame make_setup_frame(const JobSpec& spec);
Frame make_setup_ack_frame(const SetupAck& ack);
Frame make_assign_frame(std::uint64_t first, std::uint64_t last);
Frame make_result_frame(const RangeResult& rr);
Frame make_error_frame(const std::string& message);
JobSpec parse_setup(const Frame& f);
SetupAck parse_setup_ack(const Frame& f);
std::pair<std::uint64_t, std::uint64_t> parse_assign(const Frame& f);
RangeResult parse_result(const Frame& f);
std::string parse_error(const Frame& f);

// ---------------------------------------------------------------------------
// Framed connection

/// Blocking, EINTR-safe framed I/O over a pair of file descriptors (equal
/// for a socket, distinct for a pipe pair). Owns and closes the
/// descriptors. Move-only.
class Conn {
 public:
  Conn() = default;
  Conn(int fd_in, int fd_out);
  /// Socket-style: one bidirectional descriptor.
  explicit Conn(int fd) : Conn(fd, fd) {}
  Conn(Conn&& other) noexcept;
  Conn& operator=(Conn&& other) noexcept;
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;
  ~Conn();

  bool valid() const noexcept { return in_ >= 0; }

  /// Writes one frame. Throws fprop::Error on a broken/short write.
  void send(const Frame& frame);

  /// Reads one frame. Returns nullopt on clean EOF at a frame boundary;
  /// throws ProtocolError for EOF mid-frame (Truncated), any header
  /// violation, or a JournalHeader frame on a live link (BadType).
  /// `interrupt` (optional, e.g. a SIGINT flag) is polled whenever a signal
  /// breaks the blocking read: when raised, recv abandons the wait and
  /// returns nullopt — the caller distinguishes interrupt from EOF by
  /// checking the flag.
  std::optional<Frame> recv(const volatile std::sig_atomic_t* interrupt =
                                nullptr);

  void close() noexcept;

 private:
  int in_ = -1;
  int out_ = -1;
};

/// A connected pair of in-process endpoints (socketpair) — the transport
/// the distributed tests and the spawn helper build on.
std::pair<Conn, Conn> make_conn_pair();

}  // namespace fprop::shard
