#pragma once

// Compiler instrumentation passes, mirroring the paper's two-step lowering
// (Fig. 3):
//
//  1. FaultInjectionPass (LLFI++, Fig. 3b): inserts `rf = fim_inj(r)` on the
//     source registers of selected instruction classes and rewires the
//     consumer to the potentially-corrupted register. Each site gets a
//     unique static id; the runtime decides at which *dynamic* execution of
//     which site to flip a bit.
//
//  2. DualChainPass (FPM, Fig. 3c): gives every register a pristine shadow
//     twin, replicates arithmetic and pure library calls onto the shadow
//     (secondary) chain, fetches pristine values at loads (`fpm_fetch`),
//     checks and records divergence at stores (`fpm_store`), and rewrites
//     function signatures to the dual convention (shadow parameter per
//     input parameter, pair return) — §3.2 "Function Calls".
//
// Pass order is mandatory: injection first, dual-chain second, so the
// secondary chain bypasses `fim_inj` (its input operand's shadow aliases
// straight through, keeping the pristine chain fault-free).

#include <cstdint>
#include <string>
#include <vector>

#include "fprop/ir/ir.h"

namespace fprop::passes {

/// Instruction classes eligible for operand injection. The paper's
/// experiments (§4.2) inject into "registers utilized by arithmetic
/// operations" — data arithmetic and conversions; the framework also
/// supports comparisons, address computations and load/store operands
/// ("other kinds of instructions can also be targeted by LLFI++").
struct InjectTargets {
  bool arith = true;           ///< data arithmetic + conversions (the default
                               ///< campaign, §4.2)
  bool compares = false;       ///< comparison source operands
  bool addresses = false;      ///< ptradd (address computation) operands
  bool load_address = false;   ///< address operand of loads
  bool store_operands = false; ///< value + address operands of stores

  bool any() const noexcept {
    return arith || compares || addresses || load_address || store_operands;
  }
};

/// True for data arithmetic and conversions (the §4.2 target class).
bool is_data_arith(ir::Opcode op) noexcept;
/// True for comparisons (icmp/fcmp analogues).
bool is_compare(ir::Opcode op) noexcept;

/// Static description of one injection site (for reporting and tracing a
/// fault back to the source construct, as LLFI allows).
struct InjectionSite {
  std::int64_t site_id = 0;
  std::string function;
  ir::BlockId block = 0;
  std::string consumer;  ///< textual form of the instrumented instruction
  ir::Type type = ir::Type::I64;
};

/// Runs LLFI++ lowering over all app-code functions of `m`. Returns the
/// static site table. Registers holding materialized constants are not
/// instrumented (they correspond to LLVM immediates, which LLFI does not
/// target — Fig. 3b leaves `2` uninjected).
std::vector<InjectionSite> run_fault_injection_pass(
    ir::Module& m, const InjectTargets& targets = {});

/// Runs FPM dual-chain lowering over all app-code functions of `m`.
/// Idempotence is checked: transforming an already-transformed module throws.
void run_dual_chain_pass(ir::Module& m);

/// Convenience: full pipeline (inject + dual-chain + verify).
std::vector<InjectionSite> instrument_module(
    ir::Module& m, const InjectTargets& targets = {});

}  // namespace fprop::passes
