#pragma once

// LLFI++ runtime half (paper §3.1). The FaultInjectionPass plants `fim_inj`
// sites; this runtime decides, per rank, at which *dynamic* execution of a
// site to flip which bit of the live register value.
//
// Campaign methodology (Fig. 5): a fault-free *profiling* run counts the
// dynamic injection points per rank; a plan then draws the target dynamic
// index uniformly from [0, count), which yields the uniform-in-time coverage
// the paper verifies with a chi-squared test. LLFI++ extends LLFI with
// multi-process plans: zero or more faults per MPI rank per run.
//
// Beyond register flips, a plan may also target *in-flight messages*
// (DESIGN.md §12): the runtime doubles as a vm::MsgCorruptHook that flips
// bits in the serialized FPM piggyback header or the payload of the
// msg_index-th point-to-point message a rank sends — a transient error
// striking the wire between fpm::build_header and fpm::install_header.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fprop/obs/events.h"
#include "fprop/support/rng.h"
#include "fprop/vm/hooks.h"

namespace fprop::inject {

/// One planned bit flip: at the `dyn_index`-th executed fim_inj on the rank,
/// flip `bit` (0..63) of the live value.
struct FaultRecord {
  std::uint64_t dyn_index = 0;
  std::uint32_t bit = 0;
};

/// Which serialized span of an in-flight message a fault strikes.
enum class MsgFaultTarget : std::uint8_t {
  Header,   ///< FPM piggyback header words (count word / displacement /
            ///< pristine value — fpm::serialize_header layout)
  Payload,  ///< the message data words themselves
};

/// One planned in-flight message fault: on the `msg_index`-th point-to-point
/// message the rank *sends* (counting from 0, sends and isends alike), flip
/// `bit` of serialized word `word`. `word` is a raw 64-bit draw reduced
/// modulo the live span's word count when the fault fires, so a plan is
/// valid for any message size (and sampling needs no per-message lengths).
struct MsgFaultRecord {
  std::uint64_t msg_index = 0;
  MsgFaultTarget target = MsgFaultTarget::Header;
  std::uint64_t word = 0;
  std::uint32_t bit = 0;
};

/// Faults to inject per rank in one run. Ranks not present receive no direct
/// faults (they may still be contaminated through messages — the paper's
/// "indirect faults").
struct InjectionPlan {
  std::map<std::uint32_t, std::vector<FaultRecord>> faults_by_rank;
  /// In-flight message faults per *sending* rank, sorted by msg_index.
  std::map<std::uint32_t, std::vector<MsgFaultRecord>> msg_faults_by_rank;

  /// Throws fprop::Error for structurally invalid plans: a `bit >= 64` (a
  /// flip outside any register/word), per-rank faults not sorted ascending
  /// by dyn_index (msg_index for message faults), or duplicate
  /// (rank, dyn_index, bit) / (rank, msg_index, target, word, bit) entries —
  /// the same flip twice is a planning error that would double-count in
  /// site_breakdown, not a stronger fault. Called by InjectorRuntime at
  /// construction; width-dependent validity (e.g. bit 3 of an i1 site) is
  /// checked at injection time, where the live value's width is known.
  void validate() const;

  static InjectionPlan single(std::uint32_t rank, std::uint64_t dyn_index,
                              std::uint32_t bit);
  std::size_t total_faults() const noexcept;
  std::size_t total_msg_faults() const noexcept;
};

/// A fault that was actually injected during execution.
struct InjectionEvent {
  std::uint32_t rank = 0;
  std::int64_t site_id = 0;    ///< static site (maps back to source construct)
  std::uint64_t dyn_index = 0;
  std::uint32_t bit = 0;
  std::uint64_t cycle = 0;     ///< virtual time of the flip
  std::uint64_t before = 0;
  std::uint64_t after = 0;
};

/// An in-flight message fault that actually fired.
struct MsgInjectionEvent {
  std::uint32_t rank = 0;       ///< sender
  std::uint64_t msg_index = 0;
  MsgFaultTarget target = MsgFaultTarget::Header;
  std::uint64_t word = 0;       ///< post-reduction serialized word index
  std::uint32_t bit = 0;
  std::uint64_t cycle = 0;      ///< sender's virtual time at the send
};

/// Per-rank dynamic injection-point counts measured by a profiling run.
using DynCounts = std::vector<std::uint64_t>;  // index = rank

/// Per-rank point-to-point sent-message counts measured by a profiling run
/// (mpisim::World::sent_messages) — the message-fault analogue of DynCounts.
using MsgCounts = std::vector<std::uint64_t>;  // index = sender rank

/// Per-rank, per-dynamic-point live-value widths (bits) measured by a
/// profiling run with width recording enabled: widths[rank][dyn_index].
/// Execution is deterministic up to the injection point, so the width seen
/// by the profiling run is the width the fault will meet. Empty vectors mean
/// "all 64-bit" (the common case; see InjectorRuntime::record_widths).
using DynWidths = std::vector<std::vector<std::uint8_t>>;

class InjectorRuntime final : public vm::InjectHook,
                              public vm::MsgCorruptHook {
 public:
  /// Counting mode: no faults, just tallies dynamic points per rank.
  InjectorRuntime() = default;
  explicit InjectorRuntime(InjectionPlan plan);

  std::uint64_t on_fim_inj(vm::Interp& self, std::uint64_t value,
                           std::int64_t site_id, unsigned width) override;

  /// Fast-tier contract (vm/hooks.h): exposes the rank's dyn-counter for
  /// direct increment and the next pending fault's dyn_index as the stop
  /// bound, so the bytecode tier runs through fault-free fim_inj spans at
  /// native speed and escapes to step() exactly at planned strikes. Returns
  /// the null (reference-tier) state while width recording is enabled —
  /// profiling runs must observe every site.
  vm::FastInjectState fim_fast_state(std::uint32_t rank) override;

  /// vm::MsgCorruptHook: fired by the MPI simulator for every point-to-point
  /// message at its send, after header serialization. Applies every planned
  /// message fault for (sender, msg_index), reducing the raw word draw into
  /// the live span's length.
  void on_message(std::uint32_t sender, std::uint64_t msg_index,
                  std::uint64_t cycle,
                  std::vector<std::uint64_t>& header_words,
                  std::vector<std::uint64_t>& payload) override;

  /// Attaches the per-trial event recorder (null detaches): every flip that
  /// actually fires emits an Injection (or MsgCorrupt) event.
  void set_recorder(obs::TrialRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

  /// Enables per-dynamic-point width recording (profiling runs only; costs
  /// one byte per dynamic point). Needed by width-aware plan sampling when
  /// the module has sub-64-bit injection sites (i1 registers feeding
  /// arithmetic); modules with only 64-bit sites can skip it.
  void record_widths(bool enable) noexcept { record_widths_ = enable; }

  /// Warm-start support (DESIGN.md §11): positions the runtime as if the
  /// first `counts[rank]` dynamic points had already executed on every rank,
  /// without replaying them. Pending faults whose dynamic index falls inside
  /// the skipped prefix are discarded — they can no longer fire; warm-start
  /// callers pick a restore point at or below every planned fault's index
  /// precisely so this never drops one.
  void fast_forward(const DynCounts& counts);

  /// Message-fault half of warm start: skips pending message faults whose
  /// msg_index lies inside the restored prefix of `counts[rank]` already-sent
  /// messages. (The World's own sent-message counters are part of its
  /// checkpoint, so restore repositions them automatically; this mirrors
  /// that position into the pending-fault cursors.)
  void fast_forward_msgs(const MsgCounts& counts);

  /// Planned faults (register and message) that have not fired yet, across
  /// all ranks. The harness's golden-reconvergence probe (DESIGN.md §14)
  /// requires this to be zero before it may prune: a pending fault is future
  /// divergence that no state fingerprint can see.
  std::size_t pending_faults() const noexcept;

  /// Dynamic fim_inj executions observed on `rank` so far.
  std::uint64_t dynamic_points(std::uint32_t rank) const;
  DynCounts dynamic_counts(std::uint32_t nranks) const;
  /// Recorded widths (empty per-rank vectors unless record_widths(true) was
  /// set before the run).
  DynWidths dynamic_widths(std::uint32_t nranks) const;
  const std::vector<InjectionEvent>& events() const noexcept {
    return events_;
  }
  const std::vector<MsgInjectionEvent>& msg_events() const noexcept {
    return msg_events_;
  }

 private:
  struct PerRank {
    std::uint64_t counter = 0;
    std::vector<FaultRecord> pending;  ///< sorted by dyn_index
    std::size_t next = 0;
    std::vector<MsgFaultRecord> msg_pending;  ///< sorted by msg_index
    std::size_t msg_next = 0;
    std::vector<std::uint8_t> widths;  ///< per dyn_index, when recording
  };
  PerRank& rank_state(std::uint32_t rank);

  std::map<std::uint32_t, PerRank> ranks_;
  std::vector<InjectionEvent> events_;
  std::vector<MsgInjectionEvent> msg_events_;
  obs::TrialRecorder* recorder_ = nullptr;
  bool record_widths_ = false;
};

/// Fig. 5 support: given a set of sampled (rank, dyn_index) injection
/// points, one instrumented fault-free run with this hook attached records
/// the virtual time at which each point executes — i.e. when the fault
/// *would* be injected — without running one trial per sample.
class CycleProbe final : public vm::InjectHook {
 public:
  /// `samples[rank]` = dynamic indices to probe on that rank (any order).
  explicit CycleProbe(std::map<std::uint32_t,
                               std::vector<std::uint64_t>> samples);

  std::uint64_t on_fim_inj(vm::Interp& self, std::uint64_t value,
                           std::int64_t site_id, unsigned width) override;

  /// (rank, rank-local cycle) for every probed point, in no particular
  /// order (duplicated indices contribute once per duplicate). The rank is
  /// kept so injection times can be normalized by each rank's own duration.
  const std::vector<std::pair<std::uint32_t, std::uint64_t>>& samples()
      const noexcept {
    return samples_;
  }

 private:
  struct PerRank {
    std::uint64_t counter = 0;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> targets;  // idx,mult
    std::size_t next = 0;
  };
  std::map<std::uint32_t, PerRank> ranks_;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> samples_;
};

/// Draws the paper's per-run plan: pick a rank uniformly at random, then a
/// dynamic index uniformly within that rank's count, then a bit uniformly in
/// [0, 64). Ranks with zero points are excluded.
InjectionPlan sample_single_fault(const DynCounts& counts, Xoshiro256& rng);

/// LLFI++ multi-fault extension: `nfaults` independent single-fault draws
/// merged into one plan (several may land on the same rank). Draws that
/// collide with an already-drawn (rank, dyn_index, bit) are redrawn —
/// validate() rejects duplicate flips — so a k=1 draw consumes exactly the
/// historical rng stream and existing campaigns stay bit-identical. When
/// the fault space is nearly saturated a plan may carry fewer than
/// `nfaults` faults (bounded redraws); per-rank records come out sorted.
InjectionPlan sample_faults(const DynCounts& counts, std::size_t nfaults,
                            Xoshiro256& rng);

/// Width-aware variants: the drawn bit is reduced into the target point's
/// recorded width (uniformly — every IR width divides 64), so the plan is
/// valid for modules with sub-64-bit sites. With empty `widths` (or for
/// 64-bit points) the draws — and therefore existing campaign results — are
/// unchanged bit-for-bit.
InjectionPlan sample_single_fault(const DynCounts& counts,
                                  const DynWidths& widths, Xoshiro256& rng);
InjectionPlan sample_faults(const DynCounts& counts, const DynWidths& widths,
                            std::size_t nfaults, Xoshiro256& rng);

/// Message-fault sampling (DESIGN.md §12): appends `nfaults` in-flight
/// message faults to `plan` — sender rank uniform among ranks that send at
/// least one point-to-point message, msg_index uniform in [0, counts[rank]),
/// target Header/Payload with equal probability, a raw word draw (reduced
/// at fire time) and a bit in [0, 64). Duplicate draws are redrawn (bounded)
/// and per-rank records sorted, mirroring sample_faults. Returns the number
/// of faults actually added — 0 when no rank sends any message, so campaigns
/// on communication-free apps degrade to pure register-fault plans.
std::size_t sample_msg_faults(const MsgCounts& counts, std::size_t nfaults,
                              Xoshiro256& rng, InjectionPlan& plan);

/// Width-canonical form of `plan` against the golden width profile: each
/// register fault's bit is reduced into its target point's recorded width
/// (the runtime's own fire-time reduction, assuming execution follows the
/// golden profile up to the fault — exact for width-sampled plans, whose
/// bits are already in-width, and for any plan whose strikes precede control
/// divergence). Empty per-rank entries are dropped and per-rank records
/// re-sorted to validate() order, so RNG-stream-equivalent plans — different
/// raw draws naming the same flips — canonicalize identically. If reduction
/// would collide two records on a rank into the same (dyn_index, bit) — a
/// duplicate validate() rejects — that rank reverts to its raw records.
/// Message faults pass through untouched (their word reduction depends on
/// live span lengths, unknown statically). Plans whose FIRST fired fault is
/// out of width are out of scope: the runtime throws for those instead of
/// reducing, so their canonical form does not model a run. The result always
/// passes validate().
InjectionPlan canonical_plan(const InjectionPlan& plan,
                             const DynWidths& widths);

/// Stable serialization of canonical_plan(plan, widths). Trials are pure
/// functions of their plan (DESIGN.md §10), so equal keys imply bit-identical
/// trial results — the campaign dedup merges trials on this key instead of
/// re-running them.
std::string dedup_key(const InjectionPlan& plan, const DynWidths& widths);

}  // namespace fprop::inject
