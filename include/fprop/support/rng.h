#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace fprop {

/// SplitMix64: used to seed Xoshiro and as a cheap stand-alone stream.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA'14). Deterministic across platforms.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). All experiment randomness flows
/// through seeded instances of this generator so that every trial is
/// replayable bit-exactly from its (campaign seed, trial index) pair.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Uses Lemire-style rejection to avoid modulo bias,
  /// which matters for the uniform-injection-time guarantee (Fig. 5).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Raw generator state, for checkpoint/restore. Restoring a saved state
  /// resumes the stream exactly where it was captured (deterministic replay).
  std::array<std::uint64_t, 4> state() const noexcept { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derives an independent stream for (seed, stream_id). Used to give each
/// MPI rank / trial its own generator without correlation.
inline std::uint64_t derive_seed(std::uint64_t seed,
                                 std::uint64_t stream_id) noexcept {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
  sm.next();
  return sm.next();
}

}  // namespace fprop
