#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fprop {

/// Single-pass mean/variance accumulator (Welford). Used for FPS factor
/// aggregation (Table 2) and benchmark summaries.
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins. Reproduces the 500-bin injection-coverage plot of Fig. 5.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  const std::vector<std::size_t>& counts() const noexcept { return counts_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Result of a chi-squared goodness-of-fit test against a uniform
/// distribution over the histogram bins.
struct ChiSquaredResult {
  double statistic = 0.0;   ///< sum (obs-exp)^2 / exp
  std::size_t dof = 0;      ///< bins - 1
  double p_value = 0.0;     ///< upper-tail probability
  bool uniform_at_5pct = false;  ///< p >= 0.05 => cannot reject uniformity
};

/// Chi-squared test that `h`'s samples are uniform across its bins (the
/// verification the paper applies to Fig. 5).
ChiSquaredResult chi_squared_uniform(const Histogram& h);

/// Upper-tail probability of the chi-squared distribution with `dof` degrees
/// of freedom: P(X >= x). Implemented via the regularized incomplete gamma
/// function (series + continued fraction), accurate to ~1e-10.
double chi_squared_upper_tail(double x, std::size_t dof);

/// Pearson correlation of two equal-length series.
double pearson_correlation(std::span<const double> x, std::span<const double> y);

/// p-quantile (0 <= p <= 1) with linear interpolation; input need not be
/// sorted (a sorted copy is made).
double quantile(std::span<const double> xs, double p);

}  // namespace fprop
