#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace fprop {

/// Right-aligned ASCII table renderer used by the bench harnesses to print
/// paper tables/figure series in a uniform, diff-friendly format.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with `precision` significant decimals.
  void add_row_values(std::span<const double> values, int precision = 4);

  /// Renders with column separators and a header rule.
  void render(std::ostream& os) const;
  std::string to_string() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a horizontal ASCII bar chart (one bar per labelled value), used
/// for Fig. 6-style stacked percentages and Fig. 7f summaries.
std::string render_bar_chart(std::span<const std::string> labels,
                             std::span<const double> values,
                             double max_value, std::size_t width = 50,
                             const std::string& unit = "");

/// Renders an (x, y) series as a down-sampled ASCII sparkline plot with axis
/// annotations: used to print Fig. 7 propagation profiles in the terminal.
std::string render_series(std::span<const double> xs,
                          std::span<const double> ys, std::size_t plot_width = 72,
                          std::size_t plot_height = 16);

/// Formats a double with fixed precision (helper shared by benches).
std::string format_double(double v, int precision = 4);

}  // namespace fprop
