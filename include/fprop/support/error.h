#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace fprop {

/// Base exception for all framework errors. Thrown on programming or input
/// errors (malformed IR, bad MiniC source, invalid configuration); *not* used
/// for simulated-application faults, which surface as vm::Trap values.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when IR fails verification.
class VerifyError : public Error {
 public:
  explicit VerifyError(const std::string& what) : Error(what) {}
};

/// Raised on MiniC lexing/parsing/semantic errors; carries a source location.
class CompileError : public Error {
 public:
  CompileError(std::string_view message, int line, int column)
      : Error(format(message, line, column)), line_(line), column_(column) {}

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  static std::string format(std::string_view message, int line, int column) {
    return std::to_string(line) + ":" + std::to_string(column) + ": " +
           std::string(message);
  }

  int line_;
  int column_;
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& message);
}  // namespace detail

/// Internal invariant check. Unlike assert(), always enabled: silent invariant
/// violations in a fault-injection framework would be indistinguishable from
/// the faults under study.
#define FPROP_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::fprop::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
    }                                                                      \
  } while (false)

#define FPROP_CHECK_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::fprop::detail::throw_check_failure(#expr, __FILE__, __LINE__, msg); \
    }                                                                       \
  } while (false)

}  // namespace fprop
