#pragma once

// MiniC -> MiniIR compilation entry point.

#include <string_view>

#include "fprop/ir/ir.h"
#include "fprop/minic/ast.h"

namespace fprop::minic {

/// Compiles MiniC source into a verified MiniIR module. The program must
/// define `fn main()` (no parameters, no return value); it becomes the
/// module entry. Throws CompileError on lexical/syntactic/semantic errors.
ir::Module compile(std::string_view source);

/// Lowers an already-parsed program (used by tests that build ASTs).
ir::Module codegen(const Program& program);

}  // namespace fprop::minic
