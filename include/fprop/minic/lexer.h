#pragma once

// MiniC lexer. MiniC is the small C-like language the proxy applications are
// written in; it compiles to MiniIR (see minic/compile.h). Keeping a real
// frontend (instead of hand-built IR) keeps the apps readable and makes the
// instrumentation passes exercise realistic code shapes.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fprop::minic {

enum class Tok : std::uint8_t {
  End,
  Ident, IntLit, FloatLit,
  // keywords
  KwFn, KwVar, KwIf, KwElse, KwWhile, KwFor, KwReturn, KwBreak, KwContinue,
  KwInt, KwFloat,
  // punctuation
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semi, Colon, Arrow,
  // operators
  Assign,            // =
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Shl, Shr,
  AmpAmp, PipePipe, Bang,
  EqEq, NotEq, Lt, Le, Gt, Ge,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;       ///< identifier spelling
  std::int64_t int_val = 0;
  double float_val = 0.0;
  int line = 1;
  int column = 1;
};

/// Tokenizes `source`; throws CompileError on invalid input. Supports `//`
/// line comments and decimal/float literals (with exponent).
std::vector<Token> lex(std::string_view source);

const char* token_name(Tok t) noexcept;

}  // namespace fprop::minic
