#pragma once

// MiniC abstract syntax tree.
//
// Types: `int` (i64), `float` (f64), `int*` / `float*` (word-indexed arrays
// obtained from alloc_int / alloc_float). No implicit conversions; use the
// cast expressions `int(e)` / `float(e)`.

#include <memory>
#include <string>
#include <vector>

namespace fprop::minic {

enum class TypeKind : std::uint8_t { Int, Float, IntPtr, FloatPtr };

const char* type_kind_name(TypeKind t) noexcept;

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinOp : std::uint8_t {
  Add, Sub, Mul, Div, Rem,
  And, Or, Xor, Shl, Shr,
  LogAnd, LogOr,
  Eq, Ne, Lt, Le, Gt, Ge,
};

enum class UnOp : std::uint8_t { Neg, Not, LogNot };

struct Expr {
  enum class Kind : std::uint8_t {
    IntLit, FloatLit, Var, Binary, Unary, Call, Index, CastInt, CastFloat,
  };
  Kind kind{};
  int line = 0;
  int column = 0;

  std::int64_t int_val = 0;   ///< IntLit
  double float_val = 0.0;     ///< FloatLit
  std::string name;           ///< Var / Call
  BinOp bin_op{};             ///< Binary
  UnOp un_op{};               ///< Unary
  ExprPtr lhs;                ///< Binary lhs / Unary operand / Index base /
                              ///< cast operand
  ExprPtr rhs;                ///< Binary rhs / Index subscript
  std::vector<ExprPtr> args;  ///< Call
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind : std::uint8_t {
    VarDecl,     // var name: type (= init)?
    Assign,      // name = expr
    IndexAssign, // base[index] = expr
    If, While, For, Return, Break, Continue, ExprStmt, Block,
  };
  Kind kind{};
  int line = 0;
  int column = 0;

  std::string name;          ///< VarDecl / Assign target
  TypeKind var_type{};       ///< VarDecl
  ExprPtr expr;              ///< init / value / condition / return value
  ExprPtr index_base;        ///< IndexAssign base
  ExprPtr index;             ///< IndexAssign subscript
  std::vector<StmtPtr> body;       ///< If-then / While / For / Block
  std::vector<StmtPtr> else_body;  ///< If-else
  StmtPtr for_init;          ///< For
  StmtPtr for_step;          ///< For
};

struct Param {
  std::string name;
  TypeKind type{};
};

struct FuncDecl {
  std::string name;
  std::vector<Param> params;
  bool has_return = false;
  TypeKind return_type{};
  std::vector<StmtPtr> body;
  int line = 0;
};

struct Program {
  std::vector<FuncDecl> functions;
};

/// Parses MiniC source into an AST; throws CompileError with location info.
Program parse(std::string_view source);

}  // namespace fprop::minic
