#pragma once

// Runtime rollback-policy simulation (paper §5): "The estimation provided
// by our model can be used to decide, at runtime, if a roll-back should be
// triggered. For application with low FPS ... the fault-tolerance system
// could decide to keep the application running if the CML at the end of the
// application is predicted to be below a safe threshold."
//
// This simulator replays a measured CML(t) trace against a periodic
// detector + checkpoint system and evaluates three policies:
//   Always   roll back on any detection (classic checkpoint/restart)
//   Never    ignore detections (hope the error is benign)
//   FpsModel roll back only when Eq. 3 predicts end-of-run contamination
//            above the safe threshold
// reporting the re-executed (wasted) work and the residual contamination —
// the trade-off the FPS factor was designed to navigate.

#include <cstdint>
#include <span>
#include <vector>

#include "fprop/fpm/runtime.h"

namespace fprop::model {

enum class RollbackPolicy : std::uint8_t { Always, Never, FpsModel };

const char* rollback_policy_name(RollbackPolicy p) noexcept;

struct DetectorConfig {
  /// Virtual cycles between detector invocations (checkpoints are taken at
  /// every clean detection).
  std::uint64_t interval = 100'000;
  /// Application FPS factor (CML per cycle), from Table 2.
  double fps = 0.0;
  /// Safe residual-contamination threshold (CML) for the FpsModel policy.
  double cml_threshold = 10.0;
};

struct RollbackOutcome {
  RollbackPolicy policy{};
  bool detected = false;        ///< the detector ever saw contamination
  bool rolled_back = false;     ///< the policy triggered a rollback
  std::uint64_t wasted_cycles = 0;   ///< re-executed work (t_detect - t_ckpt)
  std::uint64_t residual_cml = 0;    ///< contamination carried to the end
  double predicted_final_cml = 0.0;  ///< Eq. 3 prediction at detection time
};

/// Replays `trace` (a job CML(t) series, e.g. TrialResult::trace) against
/// the detector. Rollback semantics: restoring the checkpoint taken at the
/// last clean detection removes all contamination (the fault is transient)
/// at the cost of re-executing the cycles since that checkpoint.
RollbackOutcome simulate_rollback(std::span<const fpm::TraceSample> trace,
                                  const DetectorConfig& detector,
                                  RollbackPolicy policy);

/// Aggregate over a campaign's traces.
struct PolicySummary {
  RollbackPolicy policy{};
  std::size_t runs = 0;
  std::size_t detections = 0;
  std::size_t rollbacks = 0;
  double total_wasted_cycles = 0.0;
  double total_residual_cml = 0.0;

  double mean_wasted() const {
    return runs == 0 ? 0.0 : total_wasted_cycles / static_cast<double>(runs);
  }
  double mean_residual() const {
    return runs == 0 ? 0.0 : total_residual_cml / static_cast<double>(runs);
  }
};

PolicySummary summarize_policy(
    const std::vector<std::vector<fpm::TraceSample>>& traces,
    const DetectorConfig& detector, RollbackPolicy policy);

}  // namespace fprop::model
