#pragma once

// Fault propagation models (paper §5).
//
// Each injected-run CML(t) trace is fitted with a piecewise profile that is
// linear in its first sub-domain and constant in the second (Eq. 1:
// CML(t) = a·t + b). The slope `a` of the linear part is the per-run
// propagation rate; averaging over a campaign yields the application's
// Fault Propagation Speed (FPS) factor with its standard deviation
// (Table 2). Eq. 2 recovers the fault time from the intercept (b = -a·t_f);
// Eq. 3 bounds the CML between two detector invocations.

#include <cstdint>
#include <span>
#include <vector>

#include "fprop/fpm/runtime.h"
#include "fprop/support/stats.h"

namespace fprop::model {

/// Ordinary least squares y = a·x + b.
struct LinearFit {
  double a = 0.0;
  double b = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
  std::size_t n = 0;
};

LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Piecewise fit: linear on [x0, knee], constant afterwards. The knee is
/// chosen by exhaustive search minimizing total squared error.
struct PiecewiseFit {
  double a = 0.0;        ///< slope of the linear segment
  double b = 0.0;        ///< intercept of the linear segment
  double knee = 0.0;     ///< breakpoint (x units)
  double plateau = 0.0;  ///< constant level after the knee
  double sse = 0.0;
  std::size_t n = 0;
};

PiecewiseFit fit_linear_then_constant(std::span<const double> x,
                                      std::span<const double> y);

/// K-fold cross-validation of the linear model: mean absolute error of
/// held-out predictions, normalized by the mean |y| (the paper reports
/// errors within 0.5 % of actual CML values).
double cross_validate_linear(std::span<const double> x,
                             std::span<const double> y, std::size_t folds = 5);

/// Per-run model extracted from a CML(t) trace. Only samples at/after the
/// fault time carry signal; earlier samples are all zero.
///
/// `fit` is the piecewise profile (growth slope + knee + plateau) used to
/// characterize the profile shape; `rate` is the least-squares linear fit
/// over the entire post-onset window, whose slope is the run's average
/// propagation rate. For predominantly-linear profiles (the common case the
/// paper reports) the two slopes agree; for burst-then-plateau profiles the
/// full-window slope is the meaningful CML-per-time figure, while the
/// knee-segment slope degenerates to (jump / sample period). FPS factors
/// aggregate `rate.a`.
struct TraceModel {
  PiecewiseFit fit;
  LinearFit rate;
  double inferred_tf = 0.0;  ///< Eq. 2: t_f = -b / a (0 when a == 0)
  double final_cml = 0.0;
  bool usable = false;  ///< enough nonzero samples to fit
};

TraceModel model_trace(std::span<const fpm::TraceSample> trace);

/// Application-level FPS factor (Table 2 row).
struct FpsModel {
  double fps = 0.0;     ///< mean slope over campaign runs
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t num_models = 0;
};

FpsModel aggregate_fps(std::span<const double> slopes);

/// Eq. 3: upper bound on CML accumulated in (t1, t2) when a fault is
/// detected at t2 but was absent at t1 (worst case: t_f ~ t1).
double max_cml_estimate(double fps, double t1, double t2);
/// Expected CML for t_f uniform in (t1, t2): max/2.
double avg_cml_estimate(double fps, double t1, double t2);

/// Runtime rollback advisor (paper §5): keep running if the predicted CML
/// at `t_end` stays below `cml_threshold`, otherwise roll back now.
struct RollbackDecision {
  bool rollback = false;
  double predicted_cml_now = 0.0;
  double predicted_cml_at_end = 0.0;
};

RollbackDecision advise_rollback(double fps, double t1, double t2,
                                 double t_end, double cml_threshold);

}  // namespace fprop::model
