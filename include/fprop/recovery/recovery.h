#pragma once

// Detector-driven checkpoint/restart — the closed loop behind the paper's §5
// rollback use case. model/rollback_sim replays a *recorded* CML(t) trace and
// assumes a restore removes contamination; this subsystem exercises the real
// mechanism instead:
//
//  * a periodic runtime detector scans every rank's shadow table (the FPM
//    store-check signal the paper proposes) on a fixed global-cycle grid;
//  * clean scans take a coordinated checkpoint of the whole job at a
//    quiescent scheduler boundary (mpisim::World::Checkpoint), with bounded
//    snapshot retention;
//  * detections — contamination, a trap, or a deadlock — are decided by the
//    three §5 policies (Always / Never / FpsModel via Eq. 3): restore the
//    last clean checkpoint and re-execute, or keep running;
//  * a rollback retry budget makes a rollback storm (e.g. a checkpoint that
//    captured a corrupted register before it reached memory) degrade
//    gracefully into a Crashed classification instead of a hang.
//
// Transient-fault semantics: the injector's dynamic counters live outside
// the checkpoint, so a restored job re-executes *without* replaying the
// flip — exactly the transient model rollback_sim assumes analytically.

#include <cstdint>
#include <deque>
#include <functional>

#include "fprop/model/rollback_sim.h"
#include "fprop/mpisim/world.h"
#include "fprop/obs/events.h"

namespace fprop::recovery {

/// First detector-grid point strictly after `now`, on the fixed grid of
/// multiples of `interval` anchored at 0. Shared by RecoveryManager and the
/// harness's golden snapshot ladder (DESIGN.md §11): warm-started trials
/// restore at golden clean-scan boundaries, and this single definition of
/// the grid is what guarantees a warm RecoveryManager scans at exactly the
/// clocks a cold one would.
constexpr std::uint64_t next_scan_point(std::uint64_t now,
                                        std::uint64_t interval) noexcept {
  return (now / interval + 1) * interval;
}

struct RecoveryConfig {
  /// Master switch (consumed by harness::ExperimentConfig).
  bool enabled = false;
  model::RollbackPolicy policy = model::RollbackPolicy::Always;
  /// Global cycles between detector scans; checkpoints are taken at every
  /// clean scan. 0 lets the harness derive a grid from the golden run.
  std::uint64_t detector_interval = 100'000;
  /// Application FPS factor (Table 2) feeding the FpsModel policy's Eq. 3.
  double fps = 0.0;
  /// Safe residual-contamination threshold (CML) for FpsModel.
  double cml_threshold = 10.0;
  /// Expected job length (global cycles) for Eq. 3's end-of-run prediction;
  /// 0 lets the harness fill in the golden length.
  std::uint64_t expected_cycles = 0;
  /// Rollback retry budget: once spent, further detections tear the job
  /// down (Crashed) instead of looping forever.
  std::size_t max_rollbacks = 8;
  /// Retry-with-backoff (DESIGN.md §12): each rollback multiplies the
  /// effective detector interval by this factor (≥ 1), so a job that keeps
  /// re-detecting — e.g. a corrupted piggyback channel quarantining on every
  /// receive — progressively widens its scan grid (cheaper, later scans)
  /// before the max_rollbacks budget finally tears it down cleanly. 1.0
  /// (the default) disables widening and reproduces the fixed grid exactly.
  double rollback_backoff = 1.0;
  /// Bounded snapshot retention: older clean checkpoints are dropped.
  std::size_t max_retained = 2;
  /// Per-trial event recorder (DESIGN.md §8): detector scans, checkpoints
  /// and rollbacks are emitted as job-scoped events. Null disables.
  obs::TrialRecorder* recorder = nullptr;
  /// Early-stop probe (DESIGN.md §14), polled at every CLEAN detector scan —
  /// the exact points where the harness's golden-reconvergence fingerprints
  /// exist. Returning true ends run() immediately with early_stopped set;
  /// the caller proved the remaining execution is bit-identical to the
  /// golden run and synthesizes the rest. Null (the default) disables.
  std::function<bool()> early_stop;
};

/// What the recovery subsystem did during one job.
struct RecoveryReport {
  std::size_t detections = 0;   ///< scans/traps that saw damage
  std::size_t rollbacks = 0;    ///< restores actually performed
  std::size_t checkpoints = 0;  ///< clean checkpoints taken (incl. initial)
  std::uint64_t wasted_cycles = 0;  ///< re-executed global cycles, summed
  std::uint64_t residual_cml = 0;   ///< contamination left at job end
  /// Max CML the detector ever observed, *including* state rolled away by a
  /// restore (the job-final peak alone underestimates what happened).
  std::uint64_t peak_cml_seen = 0;
  bool gave_up = false;  ///< budget exhausted; job was torn down
  double predicted_final_cml = 0.0;  ///< last Eq. 3 prediction (FpsModel)
  std::size_t scans = 0;  ///< detector scans performed (clean or not)
  /// Global clock of the first detection (scan, trap or deadlock);
  /// -1 = nothing was ever detected. Detection latency relative to the
  /// first contamination is the headline §5 detector metric.
  std::int64_t first_detection_clock = -1;
  /// Detector interval in effect at job end (== the configured interval
  /// unless rollback_backoff widened it).
  std::uint64_t final_detector_interval = 0;
  /// run() returned via the early_stop probe: the job was proven
  /// reconverged to the golden run at a clean scan and not executed further.
  bool early_stopped = false;
};

/// Drives a World to completion with the periodic detector, coordinated
/// checkpoints and policy-decided rollbacks described above.
class RecoveryManager {
 public:
  RecoveryManager(mpisim::World& world, RecoveryConfig config);

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  /// Runs the job to completion (or give-up teardown); call once.
  mpisim::JobResult run();
  const RecoveryReport& report() const noexcept { return report_; }

 private:
  /// Policy decision for one detection. Traps/deadlocks cannot be
  /// "continued", so every policy except Never restores on them.
  bool should_rollback(bool crashed, std::uint64_t now);
  /// Restores the most recent clean checkpoint; false once the retry
  /// budget is spent.
  bool try_rollback(std::uint64_t now);
  void take_checkpoint();
  void advance_scan_grid(std::uint64_t now);

  mpisim::World* world_;
  RecoveryConfig config_;
  RecoveryReport report_;
  std::deque<mpisim::World::Checkpoint> retained_;
  std::uint64_t last_ckpt_clock_ = 0;
  std::uint64_t next_scan_ = 0;
  /// Effective detector interval; starts at config.detector_interval and is
  /// widened by rollback_backoff on every rollback.
  std::uint64_t interval_ = 0;
  /// A continue decision latches the detector off, mirroring the analytical
  /// simulator (one detection, one decision, residual charged at the end).
  bool detector_latched_ = false;
};

}  // namespace fprop::recovery
