#pragma once

// Runtime extension points of the interpreter. The fault injector
// (inject::InjectorRuntime) and the MPI simulator (mpisim::World) implement
// these, keeping the VM independent of both.

#include <cstdint>
#include <vector>

namespace fprop::vm {

class Interp;

/// Contract that lets the bytecode tier run through `fim_inj` sites at native
/// speed (see bytecode.h). When `counter` is non-null, the fast tier
/// increments it directly at every fim_inj site instead of calling
/// on_fim_inj — but escapes back to the reference interpreter *before*
/// executing any site whose dyn-index (`*counter` at that site) has reached
/// `stop_before`, so the planned strike itself always goes through
/// on_fim_inj with full per-instruction visibility. A null `counter` means
/// the hook needs to observe every site (width profiling, cycle probes) and
/// the rank must stay on the reference tier.
struct FastInjectState {
  std::uint64_t* counter = nullptr;
  std::uint64_t stop_before = ~0ull;
};

/// Implemented by the LLFI++ injection runtime: called for every executed
/// `fim_inj` instrumentation instruction with the live operand value; returns
/// the (possibly bit-flipped) value to substitute. `width` is the live
/// value's type width in bits (1 for booleans/i1, 64 otherwise) — flips land
/// within it.
class InjectHook {
 public:
  virtual ~InjectHook() = default;
  virtual std::uint64_t on_fim_inj(Interp& self, std::uint64_t value,
                                   std::int64_t site_id,
                                   unsigned width) = 0;
  /// Fast-tier contract for `rank` (re-queried after every escape, so the
  /// stop index may advance as planned faults fire). The default keeps
  /// unknown hooks on the reference tier.
  virtual FastInjectState fim_fast_state(std::uint32_t rank) {
    (void)rank;
    return {};
  }
};

/// Implemented by the injection runtime, invoked by the MPI simulator (both
/// already depend on vm, which keeps the layering acyclic): called once per
/// point-to-point message captured at its send, after the FPM piggyback
/// header has been serialized into `header_words` (count word followed by
/// <displacement, pristine> pairs — fpm::serialize_header layout). The hook
/// may flip bits of `header_words` and `payload` in place, modelling a
/// transient error striking the wire representation between build_header
/// and install_header. `msg_index` counts the sender's point-to-point sends
/// from 0 (part of the World's checkpoint, so restores reposition it);
/// `cycle` is the sender's virtual time at the send.
class MsgCorruptHook {
 public:
  virtual ~MsgCorruptHook() = default;
  virtual void on_message(std::uint32_t sender, std::uint64_t msg_index,
                          std::uint64_t cycle,
                          std::vector<std::uint64_t>& header_words,
                          std::vector<std::uint64_t>& payload) = 0;
};

/// Outcome of an MPI runtime call.
enum class MpiResult : std::uint8_t {
  Done,   ///< operation completed; advance past the instruction
  Block,  ///< cannot complete yet; re-execute later (cooperative blocking)
  Fault,  ///< invalid arguments (e.g. corrupted buffer pointer) -> trap
};

/// Implemented by the MPI simulator. `self` identifies the calling rank and
/// gives the hook access to its memory and shadow table. All buffer
/// addresses/counts are the *primary* (potentially corrupted) values — a
/// corrupted count or pointer misbehaves exactly as it would under a real
/// MPI library.
class MpiHook {
 public:
  virtual ~MpiHook() = default;
  virtual std::int64_t rank_count() const = 0;
  virtual MpiResult send_f(Interp& self, std::int64_t dest, std::int64_t tag,
                           std::uint64_t buf, std::int64_t count) = 0;
  virtual MpiResult recv_f(Interp& self, std::int64_t src, std::int64_t tag,
                           std::uint64_t buf, std::int64_t count) = 0;
  /// Non-blocking operations: start returns a request handle in *request
  /// (Done) or Fault; wait blocks (Block) until the request completes.
  virtual MpiResult isend_f(Interp& self, std::int64_t dest, std::int64_t tag,
                            std::uint64_t buf, std::int64_t count,
                            std::int64_t* request) = 0;
  virtual MpiResult irecv_f(Interp& self, std::int64_t src, std::int64_t tag,
                            std::uint64_t buf, std::int64_t count,
                            std::int64_t* request) = 0;
  virtual MpiResult wait(Interp& self, std::int64_t request) = 0;
  virtual MpiResult allreduce_f(Interp& self, bool is_max, std::uint64_t sendbuf,
                                std::uint64_t recvbuf, std::int64_t count) = 0;
  virtual MpiResult bcast_f(Interp& self, std::int64_t root, std::uint64_t buf,
                            std::int64_t count) = 0;
  virtual MpiResult barrier(Interp& self) = 0;
  virtual void abort(Interp& self, std::int64_t code) = 0;
};

}  // namespace fprop::vm
