#pragma once

// Compiled execution tier for MiniVM (DESIGN.md §13).
//
// Each MiniIR function is lowered once into a flat, linearized bytecode
// stream: operands are resolved to frame register slots, branch targets to
// instruction offsets within the stream, and hot adjacent pairs are fused
// into superinstructions. The stream is executed by a direct-threaded
// dispatch loop (src/vm/dispatch.cpp — computed goto on GCC/Clang, a switch
// fallback elsewhere) that maintains exactly the interpreter's virtual
// clock, dyn-counter and trap semantics; Interp::step() stays the
// bit-exactness reference and the mandatory fallback whenever a hook needs
// per-instruction visibility (TrialRecorder, taint mode, width-recording
// profiling, CycleProbe) and for the instruction window around planned
// fault dyn-indexes.
//
// Fusion families (chosen from the instruction adjacency the passes
// produce — see DESIGN.md §13 for the profile):
//   *Dup        same-opcode (primary, shadow) pair — the dominant pair in
//               dual-chain instrumented streams
//   *Br         compare feeding a conditional branch
//   *St         pure binary op feeding a store (plain streams)
//   LoadFetch   Load + FpmFetch (the dual-chain load expansion)
//   Load2       two adjacent loads (plain streams: x = a[i] + b[i])
//   PtrAddLoad  address computation feeding its load (index+load)
//   FimInj2     two adjacent injection sites (both operands instrumented)
//
// A second, bytecode-level merge pass then combines adjacent *fused* pairs
// into the 3- and 4-IR-instruction groups that dominate dual-chain loops
// (see bcop_arity / DESIGN.md §13 for the dynamic profile that picked them):
//   *DupBr       compare pair + conditional branch (loop back-edges)
//   MovDupJmp    move pair + unconditional jump (latch blocks)
//   PtrAddLF     address pair + its dual-chain load (PtrAddDup + LoadFetch)
//   ConstIDupInj constant pair + injection site on the result
//   LFInj2       dual-chain load + both operand injection sites
//   IntrDup      (primary, shadow) intrinsic pair
//   Inj*Dup      injection site + the fused pair consuming it
//   Inj2*Dup     both injection sites + the fused pair consuming them
//
// Fusion never crosses a basic-block boundary and never involves an
// instruction that can transfer control out of the stream (Call/Ret/MPI).

#include <cstdint>
#include <vector>

#include "fprop/ir/ir.h"

namespace fprop::vm {

/// Per-trial execution tier selection (harness::TrialOptions /
/// harness::CampaignConfig). Bytecode is bit-identical to Interp by
/// construction; Interp remains the reference.
enum class ExecTier : std::uint8_t { Interp, Bytecode };

// X-macro op lists shared by the BcOp enum (here) and the dispatch loop's
// handler/label tables (src/vm/dispatch.cpp). Each entry carries the
// evaluation expression over operand values A and B (both std::uint64_t);
// the enum expansion ignores it, the dispatch loop expands it verbatim.
// Keeping one list guarantees enum order and label-table order agree.
#define FPROP_BC_ARITH2(X)                                                   \
  X(AddI, A + B)                                                             \
  X(SubI, A - B)                                                             \
  X(MulI, A* B)                                                              \
  X(AndI, A& B)                                                              \
  X(OrI, A | B)                                                              \
  X(XorI, A ^ B)                                                             \
  X(ShlI, A << (B & 63))                                                     \
  X(ShrI, A >> (B & 63))                                                     \
  X(PtrAdd, A + B * 8)                                                       \
  X(AddF, ::fprop::vm::bits_of(::fprop::vm::double_of(A) +                   \
                               ::fprop::vm::double_of(B)))                   \
  X(SubF, ::fprop::vm::bits_of(::fprop::vm::double_of(A) -                   \
                               ::fprop::vm::double_of(B)))                   \
  X(MulF, ::fprop::vm::bits_of(::fprop::vm::double_of(A) *                   \
                               ::fprop::vm::double_of(B)))                   \
  X(DivF, ::fprop::vm::bits_of(::fprop::vm::double_of(A) /                   \
                               ::fprop::vm::double_of(B)))

#define FPROP_BC_CMP2(X)                                                     \
  X(EqI, A == B ? 1u : 0u)                                                   \
  X(NeI, A != B ? 1u : 0u)                                                   \
  X(LtI, static_cast<std::int64_t>(A) < static_cast<std::int64_t>(B) ? 1u   \
                                                                     : 0u)  \
  X(LeI, static_cast<std::int64_t>(A) <= static_cast<std::int64_t>(B) ? 1u  \
                                                                      : 0u) \
  X(GtI, static_cast<std::int64_t>(A) > static_cast<std::int64_t>(B) ? 1u   \
                                                                     : 0u)  \
  X(GeI, static_cast<std::int64_t>(A) >= static_cast<std::int64_t>(B) ? 1u  \
                                                                      : 0u) \
  X(EqF, ::fprop::vm::double_of(A) == ::fprop::vm::double_of(B) ? 1u : 0u)   \
  X(NeF, ::fprop::vm::double_of(A) != ::fprop::vm::double_of(B) ? 1u : 0u)   \
  X(LtF, ::fprop::vm::double_of(A) < ::fprop::vm::double_of(B) ? 1u : 0u)    \
  X(LeF, ::fprop::vm::double_of(A) <= ::fprop::vm::double_of(B) ? 1u : 0u)   \
  X(GtF, ::fprop::vm::double_of(A) > ::fprop::vm::double_of(B) ? 1u : 0u)    \
  X(GeF, ::fprop::vm::double_of(A) >= ::fprop::vm::double_of(B) ? 1u : 0u)   \
  X(EqP, A == B ? 1u : 0u)                                                   \
  X(NeP, A != B ? 1u : 0u)

#define FPROP_BC_BIN2(X) FPROP_BC_ARITH2(X) FPROP_BC_CMP2(X)

// Unary pure ops; the expression uses operand value A only.
#define FPROP_BC_UN1(X)                                                      \
  X(Mov, A)                                                                  \
  X(NegI, 0 - A)                                                             \
  X(NotI, ~A)                                                                \
  X(NegF, ::fprop::vm::bits_of(-::fprop::vm::double_of(A)))                  \
  X(I2F, ::fprop::vm::bits_of(                                               \
             static_cast<double>(static_cast<std::int64_t>(A))))

#define FPROP_BC_E(n, e) n,
#define FPROP_BC_E_DUP(n, e) n##Dup,
#define FPROP_BC_E_ST(n, e) n##St,
#define FPROP_BC_E_BR(n, e) n##Br,
#define FPROP_BC_E_DUPBR(n, e) n##DupBr,
#define FPROP_BC_E_INJDUP(n, e) Inj##n##Dup,
#define FPROP_BC_E_INJ2DUP(n, e) Inj2##n##Dup,

enum class BcOp : std::uint8_t {
  // Base ops (one IR instruction each).
  FPROP_BC_BIN2(FPROP_BC_E)       // binary pure ops, names match ir::Opcode
  FPROP_BC_UN1(FPROP_BC_E)        // unary pure ops
  F2I,                            // saturating trunc (helper, not an expr)
  ConstI,                         // also ConstF (f64 payload pre-bitcast)
  DivI, RemI,                     // trap on zero divisor
  Load, Store, FpmFetch, FpmStore, FimInj,
  Jmp, Br,                        // t1/t2 are bytecode offsets
  IntrPure,                       // sub = IntrinsicId (Sqrt..IMax)
  Rand01, ClockRd, OutputF, OutputI, ReportIters, Alloc, MpiRank, MpiSize,
  Escape,                         // Call/Ret/MPI/abort: one Interp::step()
  // Fused superinstructions (two IR instructions each).
  FPROP_BC_BIN2(FPROP_BC_E_DUP)   // (primary, shadow) same-opcode pairs
  FPROP_BC_UN1(FPROP_BC_E_DUP)
  F2IDup,
  ConstIDup,
  FPROP_BC_BIN2(FPROP_BC_E_ST)    // binary op + Store of any value reg
  FPROP_BC_CMP2(FPROP_BC_E_BR)    // compare + Br on any condition reg
  LoadFetch, Load2, PtrAddLoad, FimInj2,
  // Merged superinstructions (three or four IR instructions each); produced
  // by the bytecode-level peephole pass over already-fused pairs.
  FPROP_BC_CMP2(FPROP_BC_E_DUPBR)  // compare pair + Br (cond reg in p32a)
  MovDupJmp,                       // MovDup + Jmp
  PtrAddLF,                        // PtrAddDup + LoadFetch (dsts in p32a/b)
  ConstIDupInj,                    // ConstIDup + FimInj (inj regs in c, d)
  LFInj2,                          // LoadFetch + FimInj2 (inj regs in p16)
  IntrDup,                         // IntrPure pair (tail id in sub2)
  FPROP_BC_BIN2(FPROP_BC_E_INJDUP)   // FimInj + pair (inj regs in p32a/b)
  FPROP_BC_BIN2(FPROP_BC_E_INJ2DUP)  // FimInj2 + pair (inj regs in p16)
  Count,
};

#undef FPROP_BC_E
#undef FPROP_BC_E_DUP
#undef FPROP_BC_E_ST
#undef FPROP_BC_E_BR
#undef FPROP_BC_E_DUPBR
#undef FPROP_BC_E_INJDUP
#undef FPROP_BC_E_INJ2DUP

inline constexpr unsigned kBcOpCount = static_cast<unsigned>(BcOp::Count);

/// Largest IR-instruction span of any single bytecode instruction (the
/// 4-IR merged groups). The dispatch loop only enters a bytecode burst with
/// at least this much fuel so a group never straddles a budget boundary.
inline constexpr std::uint64_t kBcMaxFuse = 4;

const char* bcop_name(BcOp op) noexcept;
/// True for the multi-IR-instruction superinstructions.
bool bcop_is_fused(BcOp op) noexcept;
/// IR instructions covered by one bytecode instruction (1, 2, 3 or 4).
unsigned bcop_arity(BcOp op) noexcept;

/// One bytecode instruction. Fused pairs pack both IR instructions: (a, b,
/// dst, imm) belong to the head, (c, d, dst2, imm2) to the tail; IR
/// positions within a group are consecutive from (src_block, src_ip). The
/// merged 3/4-IR groups additionally pack register numbers into `imm` —
/// either two 32-bit fields (p32a/p32b) or four 16-bit fields (p16); the
/// 16-bit packings are only emitted when every packed register is < 2^16.
struct BcInstr {
  BcOp op = BcOp::Escape;
  std::uint8_t sub = 0;       ///< IntrPure/IntrDup: head ir::IntrinsicId
  std::uint8_t sub2 = 0;      ///< IntrDup: tail ir::IntrinsicId
  ir::Reg dst = ir::kNoReg;
  ir::Reg dst2 = ir::kNoReg;
  ir::Reg a = ir::kNoReg;
  ir::Reg b = ir::kNoReg;
  ir::Reg c = ir::kNoReg;
  ir::Reg d = ir::kNoReg;
  std::int64_t imm = 0;       ///< ConstI payload (ConstF pre-bitcast)
  std::int64_t imm2 = 0;      ///< ConstIDup: tail payload
  std::uint32_t t1 = 0;       ///< Jmp/Br/*Br taken target (bytecode offset)
  std::uint32_t t2 = 0;       ///< Br/*Br fall-through target
  ir::BlockId src_block = 0;  ///< IR position of the (head) instruction,
  std::uint32_t src_ip = 0;   ///< for frame sync on loop exit and traps

  /// Packed register accessors over `imm` (merged groups only).
  ir::Reg p32a() const noexcept {
    return static_cast<ir::Reg>(static_cast<std::uint64_t>(imm));
  }
  ir::Reg p32b() const noexcept {
    return static_cast<ir::Reg>(static_cast<std::uint64_t>(imm) >> 32);
  }
  ir::Reg p16(unsigned k) const noexcept {
    return static_cast<ir::Reg>(
        (static_cast<std::uint64_t>(imm) >> (16 * k)) & 0xffffu);
  }
  static std::int64_t pack32(ir::Reg lo, ir::Reg hi) noexcept {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) |
                                     (static_cast<std::uint64_t>(hi) << 32));
  }
  static std::int64_t pack16(ir::Reg r0, ir::Reg r1, ir::Reg r2,
                             ir::Reg r3) noexcept {
    return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(r0) | (static_cast<std::uint64_t>(r1) << 16) |
        (static_cast<std::uint64_t>(r2) << 32) |
        (static_cast<std::uint64_t>(r3) << 48));
  }
};

/// One function's linearized stream plus the IR-position maps the dispatch
/// loop needs to enter and leave it at arbitrary instruction boundaries.
struct BcFunction {
  std::vector<BcInstr> code;
  /// Bytecode offset of each block's first instruction.
  std::vector<std::uint32_t> block_start;
  /// ir2bc[block][ip] = bytecode offset of the instruction covering that IR
  /// position, or -1 when the position is a *tail* inside a fused group
  /// (entry there — possible after a slice stop, snapshot restore or strike
  /// mid-group — executes one reference step() and re-enters at the next
  /// head).
  std::vector<std::vector<std::int32_t>> ir2bc;
  std::size_t fused = 0;   ///< fused pairs emitted by pass 1 (stats/tests)
  std::size_t merged = 0;  ///< 3/4-IR groups emitted by the merge pass
};

/// Whole-module compilation result. Compiled once per instrumented module
/// (AppHarness caches it); read-only and shared across campaign worker
/// threads afterwards.
class BytecodeModule {
 public:
  explicit BytecodeModule(const ir::Module& module);

  const ir::Module* module() const noexcept { return module_; }
  const BcFunction& func(ir::FuncId id) const { return funcs_.at(id); }
  std::size_t num_funcs() const noexcept { return funcs_.size(); }
  /// Total fused pairs across all functions.
  std::size_t fused_pairs() const noexcept;
  /// Total merged 3/4-IR groups across all functions.
  std::size_t merged_groups() const noexcept;
  /// Total bytecode instructions across all functions.
  std::size_t total_instrs() const noexcept;

 private:
  const ir::Module* module_;
  std::vector<BcFunction> funcs_;  ///< indexed by ir::FuncId
};

}  // namespace fprop::vm
