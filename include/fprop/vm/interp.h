#pragma once

// MiniVM: a deterministic, resumable interpreter for MiniIR, one instance per
// simulated MPI rank.
//
//  * Virtual time = executed instruction count (cycles); all CML(t) series
//    and FPS factors are expressed against it, making results
//    machine-independent (DESIGN.md §5).
//  * Hardware-style traps: invalid/unaligned access, division by zero,
//    failed allocation, call-stack overflow, cycle-budget exhaustion (hang
//    detection), MPI abort. A trap ends the rank; the scheduler ends the job.
//  * Cooperative blocking: MPI receive/collectives that cannot complete
//    leave the PC in place and report Blocked; the scheduler resumes later.

#include <array>
#include <cstdint>
#include <vector>

#include "fprop/fpm/runtime.h"
#include "fprop/fpm/taint.h"
#include "fprop/ir/ir.h"
#include "fprop/support/rng.h"
#include "fprop/vm/hooks.h"
#include "fprop/vm/memory.h"

namespace fprop::vm {

class BytecodeModule;
struct BcFunction;

enum class Trap : std::uint8_t {
  None,
  BadAccess,      ///< invalid or unaligned memory address
  DivByZero,      ///< integer division/remainder by zero
  BadAlloc,       ///< allocation beyond capacity (corrupted size)
  StackOverflow,  ///< call depth exceeded
  CycleBudget,    ///< instruction budget exhausted => hang (classified C)
  MpiAbort,       ///< application called mpi_abort()
  MpiFault,       ///< invalid MPI arguments (corrupted buffer/peer)
  Deadlock,       ///< all ranks blocked with no progress possible
  Killed,         ///< another rank crashed/aborted; job torn down
};

const char* trap_name(Trap t) noexcept;

enum class RunState : std::uint8_t { Ready, Blocked, Done, Trapped };

struct InterpConfig {
  std::uint64_t cycle_budget = 500'000'000;  ///< hang detection
  std::uint64_t max_words = 1ull << 22;      ///< per-rank memory capacity
  std::uint32_t max_call_depth = 512;
  std::uint64_t rng_seed = 1;  ///< rand01() stream (derived per rank)
};

class Interp {
 private:
  struct Frame {
    const ir::Function* func = nullptr;
    /// Cached `func->blocks[block].code.data()` so the fetch in step() is a
    /// single indexed load instead of three chained indexings per
    /// instruction. Maintained on every block/frame transition and re-derived
    /// on snapshot restore (it references the module, which is identity).
    const ir::Instr* code = nullptr;
    ir::BlockId block = 0;
    std::uint32_t ip = 0;
    ir::Reg ret_dst = ir::kNoReg;   ///< caller register for result
    ir::Reg ret_dst2 = ir::kNoReg;  ///< caller register for pristine result
    std::vector<std::uint64_t> regs;
    std::vector<std::uint8_t> taint;  ///< parallel taint bits (taint mode)
  };

 public:
  Interp(const ir::Module& module, std::uint32_t rank, InterpConfig config);

  // Non-copyable (owns an address space), movable.
  Interp(const Interp&) = delete;
  Interp& operator=(const Interp&) = delete;
  Interp(Interp&&) = default;

  void set_inject_hook(InjectHook* hook) noexcept { inject_ = hook; }
  void set_mpi_hook(MpiHook* hook) noexcept { mpi_ = hook; }
  void set_fpm(fpm::FpmRuntime* fpm) noexcept { fpm_ = fpm; }
  /// Attaches the per-trial event recorder (null detaches): the VM emits a
  /// Trap event at every trap, including externally forced ones.
  void set_recorder(obs::TrialRecorder* recorder) noexcept {
    recorder_ = recorder;
  }
  /// Enables naive taint propagation (the §3.2 strawman; see fpm/taint.h).
  /// Use on a module WITHOUT the dual-chain pass — only the injection pass.
  /// Sizes the taint arrays of live frames up front so the interpreter's hot
  /// loop never re-checks them.
  void set_taint(fpm::TaintRuntime* taint) noexcept {
    taint_ = taint;
    if (taint_ != nullptr) ensure_taint_frames();
  }
  /// Attaches the compiled execution tier (null detaches). `bc` must be
  /// compiled from the module this interpreter runs and must outlive it.
  /// run() then uses the direct-threaded dispatch loop whenever no attached
  /// hook needs per-instruction visibility (see run_bytecode); results are
  /// bit-identical either way.
  void set_bytecode(const BytecodeModule* bc);

  /// Executes up to `max_steps` instructions; returns the resulting state.
  /// Resumable: call again after Blocked (or to continue a Ready rank).
  RunState run(std::uint64_t max_steps);

  RunState state() const noexcept { return state_; }
  Trap trap() const noexcept { return trap_; }
  std::uint64_t cycles() const noexcept { return cycles_; }
  std::uint32_t rank() const noexcept { return rank_; }

  AddressSpace& memory() noexcept { return mem_; }
  const AddressSpace& memory() const noexcept { return mem_; }
  fpm::FpmRuntime* fpm() noexcept { return fpm_; }

  /// Values the application emitted via output_f/output_i, in order.
  const std::vector<double>& outputs() const noexcept { return outputs_; }
  /// Solver iterations reported via report_iters (PEX detection); -1 if never.
  std::int64_t reported_iters() const noexcept { return reported_iters_; }
  std::int64_t abort_code() const noexcept { return abort_code_; }

  /// Kills the rank from outside (job teardown after another rank trapped).
  void force_trap(Trap t);

  /// Complete execution state of a rank at an instruction boundary: call
  /// stack, registers, PC, RNG stream, emitted outputs and the full memory
  /// image. Restoring a snapshot resumes bit-exactly (module and config are
  /// identity, not state, and are not captured). Frames reference functions
  /// of the module the interpreter was built with, so a snapshot must only
  /// be restored into an interpreter over the same module. The memory image
  /// is copy-on-write (AddressSpace::Image): snapshots share unmodified
  /// pages with the live space and with each other.
  struct Snapshot {
    std::vector<Frame> frames;
    RunState state = RunState::Ready;
    Trap trap = Trap::None;
    std::uint64_t cycles = 0;
    std::array<std::uint64_t, 4> rng{};
    std::vector<double> outputs;
    std::int64_t reported_iters = -1;
    std::int64_t abort_code = 0;
    AddressSpace::Image memory;
  };

  Snapshot snapshot() const;
  void restore(const Snapshot& snap);

  /// True iff this rank's complete live state equals `snap`: run state,
  /// trap, cycle count, RNG stream, outputs (bitwise), reported iterations,
  /// abort code, the full call stack (function/block/ip/return registers/
  /// register files) and the memory content. `page_hashes` must be
  /// AddressSpace::image_page_hashes(snap.memory); memory is compared via
  /// AddressSpace::matches, so pages still CoW-shared with the snapshot cost
  /// nothing. The harness's golden-reconvergence probe (DESIGN.md §14) uses
  /// this to prove a trial's future is bit-identical to the golden run's.
  bool equals_snapshot(const Snapshot& snap,
                       const std::vector<std::uint64_t>& page_hashes) const;

 private:
  /// Executes one instruction. Returns false when the rank stopped running
  /// (blocked, finished, or trapped).
  bool step();
  void do_trap(Trap t);
  /// Naive taint transfer for the instruction just executed (taint mode).
  void update_taint(const ir::Instr& in, std::uint64_t injected_from,
                    std::uint64_t injected_to);
  bool exec_intrinsic(const ir::Instr& in);
  /// Local (single-rank) semantics for MPI intrinsics when no hook is set.
  bool exec_mpi_local(const ir::Instr& in);
  /// Fast-tier outer loop: alternates bytecode bursts (exec_bc) with single
  /// reference steps at positions the stream cannot cover (fused-pair tails
  /// after a restore, Call/Ret/MPI escapes, planned fault strikes, the last
  /// budgeted instruction). Only entered when eligible — see run().
  RunState run_bytecode(std::uint64_t max_steps);
  /// One bytecode burst inside the current frame, executing at most `fuel`
  /// IR instructions (callers guarantee fuel >= 2 so a fused pair never
  /// splits). Returns the number executed; on return the frame ip/block are
  /// synced to the next unexecuted instruction (or the trapping one).
  std::uint64_t exec_bc(const BcFunction& bf, std::uint32_t pc,
                        std::uint64_t fuel, std::uint64_t* inj_counter,
                        std::uint64_t inj_stop);
  void finish_instr();  ///< cycle accounting + fpm tick + budget check
  /// Sizes every live frame's taint array (lazy taint-mode enable, hoisted
  /// out of the per-instruction path).
  void ensure_taint_frames();

  /// Positions `fr` at the start of `block`, refreshing the code cache.
  static void enter_block(Frame& fr, ir::BlockId block) {
    fr.block = block;
    fr.ip = 0;
    fr.code = fr.func->blocks[block].code.data();
  }

  std::uint64_t reg(ir::Reg r) const { return frames_.back().regs[r]; }
  void set_reg(ir::Reg r, std::uint64_t v) { frames_.back().regs[r] = v; }

  const ir::Module* module_;
  std::uint32_t rank_;
  InterpConfig config_;
  AddressSpace mem_;
  std::vector<Frame> frames_;
  RunState state_ = RunState::Ready;
  Trap trap_ = Trap::None;
  std::uint64_t cycles_ = 0;
  Xoshiro256 rng_;
  std::vector<double> outputs_;
  std::int64_t reported_iters_ = -1;
  std::int64_t abort_code_ = 0;

  const BytecodeModule* bytecode_ = nullptr;
  InjectHook* inject_ = nullptr;
  MpiHook* mpi_ = nullptr;
  fpm::FpmRuntime* fpm_ = nullptr;
  fpm::TaintRuntime* taint_ = nullptr;
  obs::TrialRecorder* recorder_ = nullptr;
};

/// Bit-level reinterpretation helpers shared by VM, injector and harness.
std::uint64_t bits_of(double v) noexcept;
double double_of(std::uint64_t bits) noexcept;

}  // namespace fprop::vm
