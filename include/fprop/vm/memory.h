#pragma once

// Byte-addressed, word-granular address space for one simulated MPI rank.
//
// Layout: addresses below kBase form a guard region (never mapped), so that
// bit-flipped pointers near zero fault exactly like on real hardware — the
// paper attributes most crashes to corrupted pointers. Words are allocated
// by a bump allocator (the apps are one-shot; nothing is ever freed).

#include <cstdint>
#include <span>
#include <vector>

namespace fprop::vm {

class AddressSpace {
 public:
  /// First valid byte address (4 KiB null guard, word-aligned).
  static constexpr std::uint64_t kBase = 4096;

  explicit AddressSpace(std::uint64_t max_words = 1ull << 22)
      : max_words_(max_words) {}

  /// Allocates `n` zero-initialized words; returns their byte address, or 0
  /// if the allocation would exceed the configured capacity (the VM turns
  /// that into a BadAlloc trap — a corrupted allocation size crashes).
  std::uint64_t alloc_words(std::uint64_t n);

  /// True iff `addr` is mapped and 8-aligned.
  bool valid(std::uint64_t addr) const noexcept {
    return addr >= kBase && (addr & 7) == 0 &&
           (addr - kBase) / 8 < words_.size();
  }

  bool load(std::uint64_t addr, std::uint64_t& out) const noexcept {
    if (!valid(addr)) return false;
    out = words_[(addr - kBase) / 8];
    return true;
  }

  bool store(std::uint64_t addr, std::uint64_t bits) noexcept {
    if (!valid(addr)) return false;
    words_[(addr - kBase) / 8] = bits;
    return true;
  }

  std::uint64_t allocated_words() const noexcept { return words_.size(); }
  std::uint64_t max_words() const noexcept { return max_words_; }

  /// Raw word storage (used by the MPI simulator for payload copies).
  std::span<std::uint64_t> words() noexcept { return words_; }
  std::span<const std::uint64_t> words() const noexcept { return words_; }

  /// Full-content copy for checkpointing (word storage only; capacity is
  /// configuration, not state).
  std::vector<std::uint64_t> save_words() const { return words_; }
  /// Restores a checkpointed image: allocation watermark and every word
  /// revert to the captured values.
  void restore_words(const std::vector<std::uint64_t>& words) {
    words_ = words;
  }

  /// Byte address of word index i.
  static constexpr std::uint64_t addr_of(std::uint64_t word_index) noexcept {
    return kBase + word_index * 8;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::uint64_t max_words_;
};

}  // namespace fprop::vm
