#pragma once

// Byte-addressed, word-granular address space for one simulated MPI rank.
//
// Layout: addresses below kBase form a guard region (never mapped), so that
// bit-flipped pointers near zero fault exactly like on real hardware — the
// paper attributes most crashes to corrupted pointers. Words are allocated
// by a bump allocator (the apps are one-shot; nothing is ever freed).
//
// Storage is a vector of reference-counted pages so snapshots are
// copy-on-write: save() bumps every page's refcount instead of copying the
// words, and a store into a page that a snapshot still references clones
// just that page. This is what makes the harness's golden snapshot ladder
// (DESIGN.md §11) affordable — K coordinated World checkpoints share all
// pages the trial never dirties. Page refcounts are the atomic
// std::shared_ptr counts, so immutable snapshot images may be shared
// between campaign worker threads; a page is mutated only when this
// AddressSpace holds the sole reference.

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

namespace fprop::vm {

class AddressSpace {
 public:
  /// First valid byte address (4 KiB null guard, word-aligned).
  static constexpr std::uint64_t kBase = 4096;

  /// Words per page (32 KiB pages): small enough that a store into a shared
  /// page clones little, large enough that save()'s refcount sweep is short.
  static constexpr std::uint64_t kPageShift = 12;
  static constexpr std::uint64_t kPageWords = 1ull << kPageShift;

  struct Page {
    std::array<std::uint64_t, kPageWords> w;
  };

  /// Immutable checkpoint of the word storage: shared page references plus
  /// the allocation watermark (capacity is configuration, not state).
  /// Copying an Image copies refcounts, not words.
  struct Image {
    std::vector<std::shared_ptr<Page>> pages;
    std::uint64_t words = 0;
  };

  explicit AddressSpace(std::uint64_t max_words = 1ull << 22)
      : max_words_(max_words) {}

  /// Allocates `n` zero-initialized words; returns their byte address, or 0
  /// if the allocation would exceed the configured capacity (the VM turns
  /// that into a BadAlloc trap — a corrupted allocation size crashes).
  std::uint64_t alloc_words(std::uint64_t n);

  /// True iff `addr` is mapped and 8-aligned.
  bool valid(std::uint64_t addr) const noexcept {
    return addr >= kBase && (addr & 7) == 0 && (addr - kBase) / 8 < size_;
  }

  bool load(std::uint64_t addr, std::uint64_t& out) const noexcept {
    if (!valid(addr)) return false;
    const std::uint64_t i = (addr - kBase) / 8;
    out = pages_[i >> kPageShift]->w[i & (kPageWords - 1)];
    return true;
  }

  /// May clone a page still referenced by a snapshot Image (copy-on-write),
  /// so stores can allocate.
  bool store(std::uint64_t addr, std::uint64_t bits) {
    if (!valid(addr)) return false;
    const std::uint64_t i = (addr - kBase) / 8;
    writable_page(i >> kPageShift).w[i & (kPageWords - 1)] = bits;
    return true;
  }

  std::uint64_t allocated_words() const noexcept { return size_; }
  std::uint64_t max_words() const noexcept { return max_words_; }

  /// O(pages) checkpoint: shares every page with the live space; the first
  /// post-save store into any shared page clones it.
  Image save() const { return Image{pages_, size_}; }

  /// Restores a checkpointed image: allocation watermark and every word
  /// revert to the captured values. O(pages); the restored pages stay
  /// shared with `image` until stored to.
  void restore(const Image& image) {
    pages_ = image.pages;
    size_ = image.words;
  }

  /// Byte address of word index i.
  static constexpr std::uint64_t addr_of(std::uint64_t word_index) noexcept {
    return kBase + word_index * 8;
  }

  /// Live page table (shared_ptr refcounts ARE the copy-on-write divergence
  /// signal: a page whose pointer equals a snapshot's is bit-identical to it
  /// by construction). Exposed for the harness's golden-reconvergence probe
  /// (DESIGN.md §14) and its tests.
  const std::vector<std::shared_ptr<Page>>& pages() const noexcept {
    return pages_;
  }

  /// 64-bit content hash of one page (FNV-1a over the words, finalized with
  /// an avalanche mix). Used as a cheap *filter* by matches(): a mismatch
  /// proves divergence; a match is confirmed word-for-word.
  static std::uint64_t page_hash(const Page& page) noexcept;

  /// Per-page content hashes of a checkpointed image, index-aligned with
  /// `image.pages`. Computed once per golden rung and shared read-only
  /// across campaign workers.
  static std::vector<std::uint64_t> image_page_hashes(const Image& image);

  /// True iff the live content equals `golden` exactly (same allocation
  /// watermark, same words). Pages still shared with the golden image are
  /// equal by pointer identity and cost nothing; diverged pages are rejected
  /// by hash mismatch against `golden_hashes` (== image_page_hashes(golden))
  /// and confirmed word-for-word on a hash match — so a page rewritten back
  /// to its golden bytes re-reports convergence, and a hash collision can
  /// never produce a false positive.
  bool matches(const Image& golden,
               const std::vector<std::uint64_t>& golden_hashes) const;

 private:
  Page& writable_page(std::uint64_t p) {
    std::shared_ptr<Page>& sp = pages_[p];
    // use_count()==1 means exclusively ours: snapshots are the only other
    // holders of page refs, and they never surrender one concurrently.
    if (sp.use_count() != 1) sp = std::make_shared<Page>(*sp);
    return *sp;
  }

  std::vector<std::shared_ptr<Page>> pages_;
  std::uint64_t size_ = 0;
  std::uint64_t max_words_;
};

}  // namespace fprop::vm
