#pragma once

// Per-rank FPM runtime: shadow table + CML(t) trace sampling + store-check
// bookkeeping. This is the "runtime checker/tracker" half of the paper's
// fault propagation module; the compiler half is passes/DualChainPass.
//
// The runtime is pure bookkeeping over (address, value) pairs — the VM owns
// all memory accesses and passes the values it read/wrote. This keeps the
// layering acyclic (fpm does not depend on vm).

#include <cstdint>
#include <vector>

#include "fprop/fpm/shadow_table.h"
#include "fprop/obs/events.h"

namespace fprop::fpm {

/// One CML(t) sample: virtual time (executed instructions on this rank) and
/// the shadow-table size at that instant.
struct TraceSample {
  std::uint64_t cycle = 0;
  std::uint64_t cml = 0;
};

struct FpmStats {
  std::uint64_t stores_checked = 0;    ///< fpm_store executions
  std::uint64_t stores_divergent = 0;  ///< primary != pristine at store
  std::uint64_t heals = 0;             ///< contaminated location re-pristined
  std::uint64_t wild_stores = 0;       ///< store address != pristine address
  std::uint64_t fetches = 0;           ///< fpm_fetch executions
  std::uint64_t fetch_hits = 0;        ///< fetches that hit the shadow table
};

class FpmRuntime {
 public:
  /// `sample_period` = cycles between CML(t) trace samples (0 = no trace).
  explicit FpmRuntime(std::uint64_t sample_period = 0)
      : sample_period_(sample_period) {}

  /// Attaches a per-trial event recorder (null detaches). The runtime does
  /// not know the VM clock; it timestamps events with the cycle last seen by
  /// tick(), which is at most one instruction behind the store being traced.
  void set_recorder(obs::TrialRecorder* recorder, std::uint32_t rank) noexcept {
    recorder_ = recorder;
    rank_ = rank;
  }

  ShadowTable& shadow() noexcept { return shadow_; }
  const ShadowTable& shadow() const noexcept { return shadow_; }
  const FpmStats& stats() const noexcept { return stats_; }
  const std::vector<TraceSample>& trace() const noexcept { return trace_; }

  /// fpm_fetch: pristine value of `addr_p` whose actual memory content is
  /// `actual` (already loaded by the VM).
  std::uint64_t fetch(std::uint64_t addr_p, std::uint64_t actual) {
    ++stats_.fetches;
    auto p = shadow_.lookup(addr_p);
    if (p) {
      ++stats_.fetch_hits;
      return *p;
    }
    return actual;
  }

  /// fpm_store bookkeeping (paper §3.2, including the "Store addresses"
  /// duplicate-effect case). The VM has already performed the primary write
  /// of `val` to `addr`.
  ///
  ///  val / val_p        primary / pristine value being stored
  ///  addr / addr_p      primary / pristine destination address
  ///  old_pristine_addr  pristine content `addr` held *before* the write
  ///  mem_at_addr_p      current memory content at addr_p (valid only when
  ///                     addr != addr_p and have_addr_p_content)
  void on_store(std::uint64_t val, std::uint64_t val_p, std::uint64_t addr,
                std::uint64_t addr_p, std::uint64_t old_pristine_addr,
                std::uint64_t mem_at_addr_p, bool have_addr_p_content);

  /// Advances the virtual clock; appends a trace sample when the sampling
  /// period elapses. Called by the VM once per executed instruction.
  void tick(std::uint64_t cycle) {
    if (recorder_ != nullptr) clock_hint_ = cycle;
    if (sample_period_ != 0 && cycle >= next_sample_) {
      trace_.push_back({cycle, shadow_.size()});
      next_sample_ = cycle + sample_period_;
    }
  }

  /// Forces a final trace sample (end of run / at trap).
  void flush_trace(std::uint64_t cycle) {
    if (sample_period_ != 0) trace_.push_back({cycle, shadow_.size()});
  }

  /// True when tick() has any observable effect. The dispatch loop hoists
  /// this check out of its per-instruction path: when false, skipping tick()
  /// entirely is semantics-preserving (both conditions are run-constant —
  /// the recorder is attached at World construction, the period at ours).
  bool needs_tick() const noexcept {
    return recorder_ != nullptr || sample_period_ != 0;
  }

  std::uint64_t sample_period() const noexcept { return sample_period_; }

  /// Complete bookkeeping state (shadow table incl. its peak, stats, trace,
  /// sampling cursor). The sample period is configuration and not captured.
  struct Snapshot {
    ShadowTable shadow;
    FpmStats stats;
    std::vector<TraceSample> trace;
    std::uint64_t next_sample = 0;
  };

  Snapshot snapshot() const { return {shadow_, stats_, trace_, next_sample_}; }
  void restore(const Snapshot& snap) {
    shadow_ = snap.shadow;
    stats_ = snap.stats;
    trace_ = snap.trace;
    next_sample_ = snap.next_sample;
  }

 private:
  ShadowTable shadow_;
  FpmStats stats_;
  std::vector<TraceSample> trace_;
  std::uint64_t sample_period_;
  std::uint64_t next_sample_ = 0;

  // Observability (DESIGN.md §8). clock_hint_ and divergence_seen_ are
  // recorder bookkeeping, not trial state: they are only advanced while a
  // recorder is attached and are deliberately not part of Snapshot.
  obs::TrialRecorder* recorder_ = nullptr;
  std::uint32_t rank_ = 0;
  std::uint64_t clock_hint_ = 0;
  bool divergence_seen_ = false;
};

}  // namespace fprop::fpm
