#pragma once

// MPI message contamination header (paper §3.2 "MPI communications", Fig. 4).
//
// A contaminated word at sender address α maps to a different receiver
// address β, so addresses cannot travel in the message. Instead the sender
// attaches, per contaminated word in the payload, its *displacement* from
// the start of the buffer plus its pristine value; the receiver rebases the
// displacements onto its own buffer address and installs the records into
// its shadow table.
//
// The header also has a *wire* form (serialize_header / deserialize_header):
// a count word followed by <displacement, pristine> pairs. The injection
// runtime can flip bits of that serialized stream in flight (DESIGN.md §12),
// so the receive side treats the wire form as untrusted: deserialization
// clamps impossible counts, and install_header quarantines records whose
// displacement falls outside the receive buffer instead of poisoning the
// shadow table.

#include <cstdint>
#include <vector>

#include "fprop/fpm/shadow_table.h"

namespace fprop::fpm {

struct ContaminationRecord {
  std::uint64_t displacement_words = 0;  ///< word offset from buffer start
  std::uint64_t pristine_bits = 0;       ///< fault-free value of that word
};

/// Header prepended (logically) to every simulated MPI message.
struct MessageHeader {
  std::vector<ContaminationRecord> records;

  bool contaminated() const noexcept { return !records.empty(); }
  std::size_t count() const noexcept { return records.size(); }
};

/// Sender side: scans the payload range [buf, buf + count words) in the
/// sender's shadow table and builds the header (Fig. 4, left).
MessageHeader build_header(const ShadowTable& sender, std::uint64_t buf_addr,
                           std::uint64_t count_words);

/// Outcome of installing a (possibly corrupted) header.
struct InstallResult {
  std::uint64_t installed = 0;    ///< records accepted into the shadow table
  std::uint64_t quarantined = 0;  ///< records rejected by bounds validation
};

/// Receiver side: the payload has been copied to `buf_addr` in the receiver's
/// memory. Heals the whole destination range (the copy overwrote whatever
/// contamination was there), then installs each record at
/// buf_addr + displacement (Fig. 4, right).
///
/// Hardened against corrupted wire headers: a record whose displacement is
/// not `< count_words` is *quarantined* — skipped, counted in the result —
/// because installing it would write a shadow entry outside the receive
/// buffer (and displacement*8 could overflow buf_addr into an arbitrary
/// table address). Honest headers from build_header never quarantine: every
/// displacement they carry is inside the scanned range by construction.
InstallResult install_header(ShadowTable& receiver, std::uint64_t buf_addr,
                             std::uint64_t count_words,
                             const MessageHeader& header);

/// Serialized wire size of the header in words (1 count word + 2 per record);
/// used by benches that report instrumentation bandwidth overhead.
std::uint64_t header_wire_words(const MessageHeader& header) noexcept;

/// Wire form: words[0] = record count, then per record a
/// <displacement_words, pristine_bits> pair. Exactly header_wire_words long.
std::vector<std::uint64_t> serialize_header(const MessageHeader& header);

/// Parses a wire stream that may have been corrupted in flight. The record
/// count actually parsed is min(count word, pairs physically present), so a
/// struck count word can never force an over-read or a huge allocation.
/// Returns false (malformed) when the stream is empty or the count word
/// disagrees with the physical length — the header is still usable, carrying
/// whatever records could be recovered.
bool deserialize_header(const std::vector<std::uint64_t>& words,
                        MessageHeader& out);

}  // namespace fprop::fpm
