#pragma once

// MPI message contamination header (paper §3.2 "MPI communications", Fig. 4).
//
// A contaminated word at sender address α maps to a different receiver
// address β, so addresses cannot travel in the message. Instead the sender
// attaches, per contaminated word in the payload, its *displacement* from
// the start of the buffer plus its pristine value; the receiver rebases the
// displacements onto its own buffer address and installs the records into
// its shadow table.

#include <cstdint>
#include <vector>

#include "fprop/fpm/shadow_table.h"

namespace fprop::fpm {

struct ContaminationRecord {
  std::uint64_t displacement_words = 0;  ///< word offset from buffer start
  std::uint64_t pristine_bits = 0;       ///< fault-free value of that word
};

/// Header prepended (logically) to every simulated MPI message.
struct MessageHeader {
  std::vector<ContaminationRecord> records;

  bool contaminated() const noexcept { return !records.empty(); }
  std::size_t count() const noexcept { return records.size(); }
};

/// Sender side: scans the payload range [buf, buf + count words) in the
/// sender's shadow table and builds the header (Fig. 4, left).
MessageHeader build_header(const ShadowTable& sender, std::uint64_t buf_addr,
                           std::uint64_t count_words);

/// Receiver side: the payload has been copied to `buf_addr` in the receiver's
/// memory. Heals the whole destination range (the copy overwrote whatever
/// contamination was there), then installs each record at
/// buf_addr + displacement (Fig. 4, right).
void install_header(ShadowTable& receiver, std::uint64_t buf_addr,
                    std::uint64_t count_words, const MessageHeader& header);

/// Serialized wire size of the header in words (1 count word + 2 per record);
/// used by benches that report instrumentation bandwidth overhead.
std::uint64_t header_wire_words(const MessageHeader& header) noexcept;

}  // namespace fprop::fpm
