#pragma once

// The FPM runtime checker's central data structure (paper §3.2): a hash table
// mapping each *contaminated* memory location (8-byte word, byte-addressed)
// to its pristine value — the value the location would hold in a fault-free
// execution. The table size at any instant is the number of Corrupted Memory
// Locations (CML), the quantity plotted in Fig. 7 and modelled in §5.
//
// This is the hottest shadow structure in the system: every fpm_fetch and
// fpm_store probes it, which SWAT-style detectors identify as the dominant
// instrumentation cost. It is therefore a flat open-addressing table (linear
// probing, power-of-two capacity) rather than std::unordered_map: one
// contiguous allocation, no per-node indirection, and `heal` uses
// tombstone-free backward-shift deletion so probe chains never degrade over
// the record/heal churn a long run produces. Every mutating operation is a
// single probe; APIs that previously forced a contaminated()+heal() double
// hash report what they did instead (heal returns whether it erased).

#include <bit>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace fprop::fpm {

class ShadowTable {
 public:
  ShadowTable() : slots_(kMinCapacity, Slot{kEmptyKey, 0}) {}

  /// Pristine value of `addr` if contaminated, otherwise nullopt.
  std::optional<std::uint64_t> lookup(std::uint64_t addr) const {
    const Slot* s = find(addr);
    if (s == nullptr) return std::nullopt;
    return s->val;
  }

  /// Pristine value of `addr`, falling back to the actual memory content
  /// (a non-contaminated location's pristine value IS its content).
  std::uint64_t pristine_or(std::uint64_t addr, std::uint64_t actual) const {
    const Slot* s = find(addr);
    return s == nullptr ? actual : s->val;
  }

  /// Marks `addr` contaminated with the given pristine value. One probe:
  /// peak tracking happens on the same pass that finds the slot. Defined
  /// inline — this and heal() sit on the per-store instrumentation path,
  /// where an out-of-line call is measurable.
  void record(std::uint64_t addr, std::uint64_t pristine) {
    if (addr == kEmptyKey) {
      sentinel_.val = pristine;
      if (!has_sentinel_) {
        has_sentinel_ = true;
        bump_size();
      }
      return;
    }
    Slot* data = slots_.data();
    const std::size_t m = mask();
    std::size_t i = home_slot(addr);
    while (data[i].key != kEmptyKey) {
      if (data[i].key == addr) {
        data[i].val = pristine;
        return;
      }
      i = (i + 1) & m;
    }
    data[i] = {addr, pristine};
    bump_size();
    // Grow at 1/2 load so probe chains stay short (1–2 slots) through
    // record/heal churn; at 16 bytes per slot the table is still tiny next
    // to the rank memory it shadows.
    if (occupied() * 2 >= slots_.size()) grow();
  }

  /// Removes `addr` from the table: a store wrote the pristine value back
  /// (Table 1 row 4 — an operation masked the corruption), so the location
  /// is no longer corrupted. Without healing, CML would be overestimated,
  /// the exact pitfall §3.2 warns about. Returns true iff the address was
  /// present (so callers can count heals without a separate contaminated()
  /// probe). Erasure is backward-shift: no tombstones are left behind.
  bool heal(std::uint64_t addr) {
    // Empty-table early-out: fault-free stretches dominate even injected
    // runs, so the common store heals nothing and should cost one branch.
    if (size_ == 0) return false;
    if (addr == kEmptyKey) {
      if (!has_sentinel_) return false;
      has_sentinel_ = false;
      --size_;
      return true;
    }
    const Slot* data = slots_.data();
    const std::size_t m = mask();
    std::size_t i = home_slot(addr);
    while (data[i].key != kEmptyKey) {
      if (data[i].key == addr) {
        erase_at(i);
        --size_;
        return true;
      }
      i = (i + 1) & m;
    }
    return false;
  }

  bool contaminated(std::uint64_t addr) const { return find(addr) != nullptr; }

  /// Current CML count.
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  /// Maximum CML ever reached (Fig. 7f).
  std::size_t peak() const noexcept { return peak_; }

  /// Contaminated words with addr in [lo, hi), as (addr, pristine) pairs
  /// sorted by address. Used to build MPI message headers (Fig. 4).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> in_range(
      std::uint64_t lo, std::uint64_t hi) const;

  /// Heals every word in [lo, hi). Used when a buffer is overwritten
  /// wholesale (e.g. by a received message) before re-recording.
  void heal_range(std::uint64_t lo, std::uint64_t hi);

  void clear();

  /// All (addr, pristine) pairs sorted by address. Diagnostic/test accessor;
  /// the campaign hot path never materializes the full table.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries() const {
    return in_range(0, kEmptyKey);
  }

  /// Probe distance (slots from home; 0 = at home) of every live entry, in
  /// slot order. Observability accessor (the metrics registry's
  /// shadow.probe_len histogram); never called on the campaign hot path.
  std::vector<std::uint64_t> probe_lengths() const;

 private:
  struct Slot {
    std::uint64_t key;
    std::uint64_t val;
  };

  /// Word addresses are 8-aligned, so all-ones can never be a recorded
  /// address; it doubles as the free-slot marker. A sentinel side slot keeps
  /// the table correct even for hostile keys (a corrupted pristine address
  /// could in principle take any value).
  static constexpr std::uint64_t kEmptyKey = ~0ull;
  static constexpr std::size_t kMinCapacity = 16;  ///< power of two

  /// Fibonacci hashing over the word index: one multiply, then the top
  /// log2(capacity) bits. Consecutive word indices — the dominant pattern
  /// the apps produce — land a golden-ratio stride apart, so sequential
  /// buffers probe collision-free, while the multiply still scatters
  /// power-of-two strides that would defeat a plain masked index.
  std::size_t home_slot(std::uint64_t addr) const noexcept {
    return static_cast<std::size_t>(((addr >> 3) * 0x9E3779B97F4A7C15ull) >>
                                    shift_);
  }

  const Slot* find(std::uint64_t addr) const {
    if (size_ == 0) return nullptr;  // common case: nothing contaminated
    if (addr == kEmptyKey) return has_sentinel_ ? &sentinel_ : nullptr;
    const Slot* data = slots_.data();
    const std::size_t m = mask();
    std::size_t i = home_slot(addr);
    while (data[i].key != kEmptyKey) {
      if (data[i].key == addr) return &data[i];
      i = (i + 1) & m;
    }
    return nullptr;
  }

  std::size_t mask() const noexcept { return slots_.size() - 1; }
  std::size_t occupied() const noexcept {
    return size_ - (has_sentinel_ ? 1 : 0);
  }
  void bump_size() noexcept {
    ++size_;
    if (size_ > peak_) peak_ = size_;
  }
  void erase_at(std::size_t hole);
  void grow();

  std::vector<Slot> slots_;  ///< power-of-two capacity; key==kEmptyKey free
  /// 64 - log2(capacity); keeps home_slot() a multiply + shift.
  unsigned shift_ = 64 - std::bit_width(kMinCapacity - 1);
  std::size_t size_ = 0;
  std::size_t peak_ = 0;
  bool has_sentinel_ = false;
  Slot sentinel_{kEmptyKey, 0};
};

}  // namespace fprop::fpm
