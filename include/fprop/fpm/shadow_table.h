#pragma once

// The FPM runtime checker's central data structure (paper §3.2): a hash table
// mapping each *contaminated* memory location (8-byte word, byte-addressed)
// to its pristine value — the value the location would hold in a fault-free
// execution. The table size at any instant is the number of Corrupted Memory
// Locations (CML), the quantity plotted in Fig. 7 and modelled in §5.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace fprop::fpm {

class ShadowTable {
 public:
  /// Pristine value of `addr` if contaminated, otherwise nullopt.
  std::optional<std::uint64_t> lookup(std::uint64_t addr) const {
    auto it = table_.find(addr);
    if (it == table_.end()) return std::nullopt;
    return it->second;
  }

  /// Pristine value of `addr`, falling back to the actual memory content
  /// (a non-contaminated location's pristine value IS its content).
  std::uint64_t pristine_or(std::uint64_t addr,
                            std::uint64_t actual) const {
    auto it = table_.find(addr);
    return it == table_.end() ? actual : it->second;
  }

  /// Marks `addr` contaminated with the given pristine value.
  void record(std::uint64_t addr, std::uint64_t pristine) {
    table_.insert_or_assign(addr, pristine);
    if (table_.size() > peak_) peak_ = table_.size();
  }

  /// Removes `addr` from the table: a store wrote the pristine value back
  /// (Table 1 row 4 — an operation masked the corruption), so the location
  /// is no longer corrupted. Without healing, CML would be overestimated,
  /// the exact pitfall §3.2 warns about.
  void heal(std::uint64_t addr) { table_.erase(addr); }

  bool contaminated(std::uint64_t addr) const {
    return table_.find(addr) != table_.end();
  }

  /// Current CML count.
  std::size_t size() const noexcept { return table_.size(); }
  bool empty() const noexcept { return table_.empty(); }
  /// Maximum CML ever reached (Fig. 7f).
  std::size_t peak() const noexcept { return peak_; }

  /// Contaminated words with addr in [lo, hi), as (addr, pristine) pairs
  /// sorted by address. Used to build MPI message headers (Fig. 4).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> in_range(
      std::uint64_t lo, std::uint64_t hi) const;

  /// Heals every word in [lo, hi). Used when a buffer is overwritten
  /// wholesale (e.g. by a received message) before re-recording.
  void heal_range(std::uint64_t lo, std::uint64_t hi);

  void clear() { table_.clear(); }

  const std::unordered_map<std::uint64_t, std::uint64_t>& entries() const {
    return table_;
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> table_;
  std::size_t peak_ = 0;
};

}  // namespace fprop::fpm
