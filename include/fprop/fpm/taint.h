#pragma once

// Naive taint propagation — the strawman the paper argues against (§3.2):
// "the general assumption that the output of an instruction becomes
// corrupted if at least one of the inputs is corrupted could lead to large
// overestimation of the number of corrupted memory locations."
//
// This runtime implements exactly that assumption: a bit, not a value, per
// register and per memory word. It cannot observe masking (Table 1 row 4:
// a >> 2 discarding the flipped bit still taints the result), so its CML
// counts upper-bound the dual-chain truth. The ablation bench
// (`bench/ablation_taint`) quantifies the overestimation per application —
// the measurement that justifies the dual-chain design.

#include <cstdint>
#include <unordered_set>

namespace fprop::fpm {

class TaintRuntime {
 public:
  bool location(std::uint64_t addr) const {
    return tainted_.find(addr) != tainted_.end();
  }

  void set_location(std::uint64_t addr, bool tainted) {
    if (tainted) {
      tainted_.insert(addr);
      if (tainted_.size() > peak_) peak_ = tainted_.size();
    } else {
      tainted_.erase(addr);
    }
  }

  /// Marks every word in [lo, hi) (local collective copies).
  void set_range(std::uint64_t lo, std::uint64_t hi, bool tainted) {
    for (std::uint64_t a = lo; a < hi; a += 8) set_location(a, tainted);
  }

  /// Current / maximum number of tainted memory words ("naive CML").
  std::size_t size() const noexcept { return tainted_.size(); }
  std::size_t peak() const noexcept { return peak_; }

  void note_injection() noexcept { ++injections_; }
  std::uint64_t injections() const noexcept { return injections_; }

 private:
  std::unordered_set<std::uint64_t> tainted_;
  std::size_t peak_ = 0;
  std::uint64_t injections_ = 0;
};

}  // namespace fprop::fpm
