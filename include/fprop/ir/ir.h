#pragma once

// MiniIR: a typed, register-based compiler intermediate representation.
//
// This plays the role LLVM IR plays in the paper: the fault-injection pass
// (LLFI++, Fig. 3b) and the dual-chain fault-propagation pass (FPM, Fig. 3c)
// are implemented as transformations over this IR, and the transformed IR is
// executed by the MiniVM interpreter.
//
// Design notes (see DESIGN.md §5):
//  * Functions own a flat, typed virtual register file; instructions read and
//    write registers directly (no SSA/phi). This matches the paper's diagrams
//    (`r1`/`r1p`) and makes the shadow-register mapping of the dual-chain
//    pass a simple Reg -> Reg table.
//  * All values are 64-bit (i64 / f64 / ptr); a "memory location" in the CML
//    metric is one 8-byte word.

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "fprop/support/error.h"

namespace fprop::ir {

using Reg = std::uint32_t;
using BlockId = std::uint32_t;
using FuncId = std::uint32_t;

inline constexpr Reg kNoReg = 0xffffffffu;
inline constexpr BlockId kNoBlock = 0xffffffffu;
inline constexpr FuncId kNoFunc = 0xffffffffu;

enum class Type : std::uint8_t { Void, I64, F64, Ptr };

const char* type_name(Type t) noexcept;

enum class Opcode : std::uint8_t {
  // Constants and copies.
  ConstI,  // dst = imm (i64)
  ConstF,  // dst = fimm (f64)
  Mov,     // dst = a (any type)

  // Integer arithmetic (i64). Div/Rem trap on zero divisor, like hardware.
  AddI, SubI, MulI, DivI, RemI,
  AndI, OrI, XorI, ShlI, ShrI,  // ShrI is a logical shift; counts are masked to 63
  NegI, NotI,

  // Floating-point arithmetic (f64, IEEE-754 semantics; NaN propagates).
  AddF, SubF, MulF, DivF, NegF,

  // Comparisons produce i64 0/1.
  EqI, NeI, LtI, LeI, GtI, GeI,
  EqF, NeF, LtF, LeF, GtF, GeF,
  EqP, NeP,

  // Conversions.
  I2F,  // dst(f64) = (double) a(i64)
  F2I,  // dst(i64) = trunc toward zero; saturates at i64 range, traps on NaN

  // Memory. Addresses are byte addresses; accesses are 8 bytes, 8-aligned.
  Load,    // dst = mem[a], type = instr.type
  Store,   // mem[b] = a
  PtrAdd,  // dst(ptr) = a(ptr) + b(i64) * 8   -- word indexing

  // Control flow (block terminators).
  Jmp,  // goto t1
  Br,   // if a != 0 goto t1 else goto t2
  Ret,  // return args[0] (and args[1] = pristine twin in dual-chain funcs)

  // Calls. args = actual parameters; dst / dst2 receive the (primary,
  // pristine) results for dual-chain callees.
  Call,
  Intrinsic,  // runtime/builtin call; id in `intr`

  // Instrumentation inserted by the passes (never written by the frontend).
  FimInj,    // dst = fim_inj(a): maybe flip one bit (LLFI++ site id in imm)
  FpmFetch,  // dst = pristine value at address a (shadow table else memory)
  FpmStore,  // store a to mem[c] AND update shadow table; b = pristine value,
             // d = pristine address (handles corrupted store addresses)
};

const char* opcode_name(Opcode op) noexcept;

/// Runtime builtins callable from MiniC. Pure intrinsics are replicated onto
/// the secondary chain by the dual-chain pass (the paper's sin() example);
/// impure ones are executed once and their results are born pristine.
enum class IntrinsicId : std::uint8_t {
  // Pure math (f64 -> f64 unless noted).
  Sqrt, Fabs, Exp, Log, Sin, Cos, Pow /* 2 args */, Floor,
  FMin, FMax,  // 2 args
  IMin, IMax,  // 2 args, i64

  // Memory management (impure; not replicated, per §3.2 "Function Calls").
  Alloc,  // dst(ptr) = allocate args[0] (i64) words, zero-initialized

  // Program output and progress reporting (impure).
  OutputF,      // append f64 to this rank's output vector
  OutputI,      // append i64 (stored as f64) to this rank's output vector
  ReportIters,  // record solver iteration count (PEX detection)

  // Deterministic per-rank randomness and virtual time (impure).
  Rand01,  // dst(f64) in [0,1)
  Clock,   // dst(i64) = executed instructions on this rank

  // Message passing (impure). Buffers are f64 arrays.
  MpiRank, MpiSize,
  MpiSendF,   // (dest, tag, buf, count)
  MpiRecvF,   // (src, tag, buf, count)
  MpiIsendF,  // (dest, tag, buf, count) -> request handle (i64)
  MpiIrecvF,  // (src, tag, buf, count) -> request handle (i64)
  MpiWait,    // (request): blocks until the request completes
  MpiAllreduceSumF,  // (sendbuf, recvbuf, count)
  MpiAllreduceMaxF,  // (sendbuf, recvbuf, count)
  MpiBcastF,  // (root, buf, count)
  MpiBarrier,
  MpiAbort,  // (code)
};

const char* intrinsic_name(IntrinsicId id) noexcept;
/// True if the intrinsic has no side effects and can be re-executed on the
/// pristine operands by the dual-chain pass.
bool intrinsic_is_pure(IntrinsicId id) noexcept;
/// Number of value arguments the intrinsic expects.
unsigned intrinsic_arity(IntrinsicId id) noexcept;
/// Result type (Type::Void if none).
Type intrinsic_result_type(IntrinsicId id) noexcept;

struct Instr {
  Opcode op{};
  Type type = Type::Void;  ///< result type / memory access type
  /// FimInj only: width of the live value in bits. Registers holding
  /// booleans (LLVM i1 analogues) are 1; everything else is 64. LLFI flips
  /// a bit within the register's type width.
  std::uint8_t inj_width = 64;
  Reg dst = kNoReg;
  Reg dst2 = kNoReg;  ///< second result (pristine) for dual-chain calls
  std::array<Reg, 4> ops{kNoReg, kNoReg, kNoReg, kNoReg};
  std::uint8_t nops = 0;
  std::int64_t imm = 0;   ///< ConstI payload; FimInj static site id
  double fimm = 0.0;      ///< ConstF payload
  BlockId t1 = kNoBlock;  ///< Jmp/Br target
  BlockId t2 = kNoBlock;  ///< Br else-target
  FuncId callee = kNoFunc;
  IntrinsicId intr{};
  std::vector<Reg> args;  ///< Call/Intrinsic arguments; Ret values

  Reg a() const noexcept { return ops[0]; }
  Reg b() const noexcept { return ops[1]; }
  Reg c() const noexcept { return ops[2]; }
  Reg d() const noexcept { return ops[3]; }
};

/// True for integer/float arithmetic, comparisons and conversions — the
/// instruction class the paper's LLFI++ configuration targets for injection
/// and the dual-chain pass replicates.
bool is_arith(Opcode op) noexcept;
bool is_terminator(Opcode op) noexcept;
bool has_result(const Instr& in) noexcept;

struct BasicBlock {
  std::vector<Instr> code;
};

struct Function {
  std::string name;
  FuncId id = kNoFunc;
  Type ret_type = Type::Void;
  std::vector<Reg> params;            ///< registers receiving the arguments
  std::vector<Type> reg_types;        ///< virtual register file
  std::vector<BasicBlock> blocks;     ///< block 0 is the entry
  bool is_app_code = true;   ///< injection-eligible (paper: app code only)
  bool dual_chain = false;   ///< FPM-transformed (2N params, pair return)
  std::unordered_map<Reg, Reg> shadow_of;  ///< primary -> pristine (debug aid)

  Reg add_reg(Type t) {
    reg_types.push_back(t);
    return static_cast<Reg>(reg_types.size() - 1);
  }
  Reg add_param(Type t) {
    const Reg r = add_reg(t);
    params.push_back(r);
    return r;
  }
  Type reg_type(Reg r) const { return reg_types.at(r); }
  std::size_t num_regs() const noexcept { return reg_types.size(); }
};

struct Module {
  std::vector<Function> funcs;
  std::unordered_map<std::string, FuncId> by_name;
  FuncId entry = kNoFunc;

  Function& add_function(std::string name, Type ret_type);
  Function* find(std::string_view name);
  const Function* find(std::string_view name) const;
  Function& func(FuncId id) { return funcs.at(id); }
  const Function& func(FuncId id) const { return funcs.at(id); }

  /// Total static instruction count (for reporting).
  std::size_t static_instr_count() const noexcept;
};

}  // namespace fprop::ir
