#pragma once

#include "fprop/ir/ir.h"

namespace fprop::ir {

/// Structural and type verification of a module. Throws VerifyError with a
/// function/block/instruction locus on the first violation. Run after the
/// frontend and after every pass: a mis-instrumented module would silently
/// corrupt propagation results.
///
/// Checks, per function:
///  * register indices within the register file; operand counts match opcode
///  * operand/result types agree with the opcode (and with `type` for memory)
///  * every block ends in exactly one terminator, placed last
///  * branch targets exist
///  * Call arity/types match the callee signature, including the dual-chain
///    convention (2N params and two results when callee.dual_chain)
///  * Ret values match the function return type (pair when dual_chain)
///  * Intrinsic arity/result registers match the intrinsic table
///  * entry function exists and takes no parameters
void verify(const Module& m);

}  // namespace fprop::ir
