#pragma once

// Convenience builder for constructing MiniIR, used by the MiniC code
// generator, the instrumentation passes, and tests.

#include <initializer_list>

#include "fprop/ir/ir.h"

namespace fprop::ir {

class Builder {
 public:
  explicit Builder(Function& f) : f_(&f) {}

  /// Creates a new block and returns its id (does not change insertion point).
  BlockId new_block();
  void set_insert_point(BlockId b) { cur_ = b; }
  BlockId insert_point() const noexcept { return cur_; }
  Function& function() noexcept { return *f_; }

  Reg new_reg(Type t) { return f_->add_reg(t); }

  // --- Constants / copies -------------------------------------------------
  Reg const_i(std::int64_t v);
  Reg const_f(double v);
  Reg mov(Reg src);
  /// Copies into an existing register (variable assignment in the frontend).
  void mov_to(Reg dst, Reg src);

  // --- Arithmetic ---------------------------------------------------------
  /// Emits a binary op; result type inferred from the opcode.
  Reg binop(Opcode op, Reg a, Reg b);
  Reg unop(Opcode op, Reg a);
  Reg i2f(Reg a);
  Reg f2i(Reg a);

  // --- Memory -------------------------------------------------------------
  Reg load(Type t, Reg addr);
  void store(Reg val, Reg addr);
  Reg ptr_add(Reg base, Reg index);

  // --- Control flow -------------------------------------------------------
  void jmp(BlockId target);
  void br(Reg cond, BlockId if_true, BlockId if_false);
  void ret();
  void ret(Reg value);

  // --- Calls --------------------------------------------------------------
  Reg call(FuncId callee, std::vector<Reg> args, Type result_type);
  Reg intrinsic(IntrinsicId id, std::vector<Reg> args);

  /// Appends a fully-formed instruction (used by the passes).
  void emit(Instr in);

  /// True if the current block already ends in a terminator.
  bool block_terminated() const;

 private:
  Instr make(Opcode op, Type t, Reg dst,
             std::initializer_list<Reg> operands) const;

  Function* f_;
  BlockId cur_ = 0;
};

/// Result type of a binary/unary opcode (I64 for integer ops and comparisons,
/// F64 for float ops, Ptr for PtrAdd).
Type opcode_result_type(Opcode op) noexcept;
/// Operand type expected by a binary/unary opcode.
Type opcode_operand_type(Opcode op) noexcept;

}  // namespace fprop::ir
