#pragma once

#include <string>

#include "fprop/ir/ir.h"

namespace fprop::ir {

/// Renders one instruction in the paper's style, e.g.
/// `r3 = mul.f64 r1, r2`, `r1f = fim_inj(r1) #site=4`,
/// `fpm_store(r4, r4p, [r5], [r5p])`.
std::string to_string(const Function& f, const Instr& in);

/// Full textual dump of a function / module (stable; used by golden tests
/// that reproduce the Fig. 3 transformation example).
std::string to_string(const Function& f);
std::string to_string(const Module& m);

}  // namespace fprop::ir
