#pragma once

// Exporters over the observability layer's two data sources:
//
//  * a trial's event stream (obs/events.h) -> Chrome trace-event JSON,
//    loadable in chrome://tracing / Perfetto: one track per rank plus a
//    "job" track for detector/checkpoint/outcome events, and per-rank CML
//    counter tracks rebuilt from the shadow record/heal events — the
//    recorded CML(t) trace replayed from events;
//  * campaign-level rows/summary (filled by harness::export_campaign) ->
//    CSV (one row per trial) and JSON summary, plus a metrics-registry JSON
//    dump.
//
// All writers are byte-deterministic: fields are emitted in fixed order,
// doubles through format_double (shortest round-trip std::to_chars), so a
// fixed-seed campaign produces bit-identical files at any jobs value
// (golden-file tested).

#include <cstdint>
#include <string>
#include <vector>

#include "fprop/obs/events.h"
#include "fprop/obs/metrics.h"

namespace fprop::obs {

/// Deterministic double formatting shared by every exporter: shortest
/// round-trip std::to_chars, which is correctly rounded (i.e.
/// platform-stable for identical double bits) per the C++ standard.
std::string format_double(double v);

struct ChromeTraceMeta {
  std::string app;
  std::uint64_t trial_index = 0;
  std::uint32_t nranks = 0;
  std::uint64_t total_emitted = 0;
  std::uint64_t dropped = 0;  ///< oldest events lost to ring overwrite
};

/// Serializes `events` (emission order, as TrialRecorder::ordered returns)
/// as Chrome trace-event JSON. ts is virtual time: rank-track events use
/// the rank's own step clock, job-track events the global clock.
std::string chrome_trace_json(const std::vector<Event>& events,
                              const ChromeTraceMeta& meta);

/// One campaign trial flattened for CSV export (harness fills these from
/// TrialResult; obs keeps no dependency on the harness layer).
struct CampaignRow {
  std::uint64_t trial = 0;
  std::string outcome;  ///< V / ONA / WO / PEX / C
  std::string trap;     ///< vm trap name ("none" when the trial survived)
  bool injected = false;
  std::uint32_t rank = 0;
  std::int64_t site = -1;
  std::uint32_t bit = 0;
  std::uint64_t inject_cycle = 0;
  std::uint64_t global_cycles = 0;
  std::uint64_t cml_final = 0;
  std::uint64_t cml_peak = 0;
  double contaminated_pct = 0.0;
  std::uint64_t contaminated_ranks = 0;
  std::int64_t reported_iters = -1;
  bool slope_usable = false;
  double slope_a = 0.0;  ///< CML(t) linear-fit slope (Eq. 1 a)
  double slope_b = 0.0;  ///< intercept (Eq. 2 recovers t_f from it)
  std::int64_t detect_clock = -1;  ///< global cycle of first detection
  std::uint64_t detections = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t wasted_cycles = 0;
  bool recovered = false;
};

struct CampaignSummary {
  std::string app;
  std::uint64_t trials = 0;
  std::uint64_t seed = 0;
  std::uint64_t faults_per_run = 1;
  /// Outcome class -> count, in fixed export order V/ONA/WO/PEX/C.
  std::uint64_t vanished = 0;
  std::uint64_t ona = 0;
  std::uint64_t wrong_output = 0;
  std::uint64_t pex = 0;
  std::uint64_t crashed = 0;
  double fps_mean = 0.0;  ///< mean usable CML slope (Table 2 FPS)
  double fps_stddev = 0.0;
  std::uint64_t fps_n = 0;
  std::uint64_t recovered_trials = 0;
  std::uint64_t total_rollbacks = 0;
  std::uint64_t total_wasted_cycles = 0;
  /// Trial economy (DESIGN.md §14): trials cut at a golden rung and trials
  /// whose canonical plan matched an earlier one. Provenance only — the
  /// outcome counts above already include both kinds.
  std::uint64_t pruned_trials = 0;
  std::uint64_t deduped_trials = 0;
};

std::string campaign_csv(const std::vector<CampaignRow>& rows);
std::string campaign_summary_json(const CampaignSummary& summary);
std::string metrics_json(const MetricsSnapshot& snapshot);

/// Writes `content` to `path` atomically enough for our purposes (truncate
/// + write); throws fprop::Error on I/O failure. Parent directories must
/// exist (see ensure_dir).
void write_file(const std::string& path, const std::string& content);
/// mkdir -p equivalent; throws fprop::Error on failure.
void ensure_dir(const std::string& dir);

/// Trace file name for one trial inside a --trace-dir: trial_000042.json.
std::string trial_trace_filename(std::uint64_t trial_index);

}  // namespace fprop::obs
