#pragma once

// Core of the fprop-benchdiff tool: parse two google-benchmark JSON result
// files, match benchmarks by name, and flag relative-time regressions. The
// CI bench-regression gate runs the thin CLI in tools/benchdiff_main.cpp on
// top of this; keeping the logic here makes it unit-testable.

#include <cstdint>
#include <string>
#include <vector>

#include "fprop/obs/json.h"

namespace fprop::obs {

struct BenchEntry {
  std::string name;
  double real_time = 0.0;  ///< normalized to nanoseconds
  double cpu_time = 0.0;   ///< normalized to nanoseconds
  std::uint64_t iterations = 0;
};

/// Extracts per-iteration benchmark entries from a parsed
/// --benchmark_format=json document. Aggregate rows (mean/median/stddev)
/// are skipped; times are normalized to ns using each entry's time_unit.
/// Throws fprop::Error on a structurally unusable document.
std::vector<BenchEntry> parse_benchmark_entries(const json::Value& doc);

struct DiffOptions {
  /// Relative slowdown that counts as a regression: current > base*(1+t).
  double threshold = 0.30;
  /// Entries with fewer iterations than this (in either file) are noise and
  /// excluded from gating (still listed, marked "skip").
  std::uint64_t min_iters = 0;
  /// Substring filter on benchmark names (empty = all).
  std::string filter;
  /// Compare cpu_time instead of real_time.
  bool use_cpu_time = false;
  /// Benchmarks present in only one file fail the diff unless allowed.
  bool allow_missing = false;
};

struct DiffRow {
  std::string name;
  double base_ns = 0.0;
  double cur_ns = 0.0;
  double ratio = 0.0;  ///< cur / base
  bool skipped = false;    ///< below min_iters; not gated
  bool regressed = false;  ///< ratio > 1 + threshold
  bool improved = false;   ///< ratio < 1 - threshold
};

struct DiffReport {
  std::vector<DiffRow> rows;
  std::vector<std::string> only_in_base;
  std::vector<std::string> only_in_current;
  std::size_t regressions = 0;

  /// Gate verdict the CI job keys on.
  bool failed(const DiffOptions& opt) const noexcept {
    return regressions > 0 ||
           (!opt.allow_missing &&
            (!only_in_base.empty() || !only_in_current.empty()));
  }
};

DiffReport diff_benchmarks(const std::vector<BenchEntry>& base,
                           const std::vector<BenchEntry>& current,
                           const DiffOptions& options);

/// Human-readable fixed-width table (one line per row + missing-name notes).
std::string format_diff_table(const DiffReport& report,
                              const DiffOptions& options);

}  // namespace fprop::obs
