#pragma once

// Process-wide metrics registry: named monotonic counters and fixed-bucket
// histograms, aggregated across campaign worker threads.
//
// Determinism contract: all updates are commutative (atomic adds on
// counters and per-bucket counts), so a campaign folds to the identical
// snapshot at any CampaignConfig::jobs value — the registry observes the
// parallel engine without perturbing its bit-identical merge (metrics never
// feed back into trial execution).
//
// Registration (name lookup) takes a mutex and is meant for setup / fold
// code; the returned Counter/Histogram references are stable for the
// registry's lifetime and update lock-free.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fprop::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Fixed upper-bound buckets (e.g. {1, 4, 16, 64}); observations above the
/// last bound land in an implicit overflow bucket. Sum and count are kept
/// so exporters can report totals and means.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t value) noexcept;

  const std::vector<std::uint64_t>& bounds() const noexcept { return bounds_; }
  /// bucket_count(i) counts observations <= bounds[i] (and > bounds[i-1]);
  /// bucket_count(bounds().size()) is the overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Bulk merge primitives for MetricsRegistry::absorb — commutative atomic
  /// adds, same determinism contract as observe().
  void add_bucket(std::size_t i, std::uint64_t n) noexcept {
    counts_[i].fetch_add(n, std::memory_order_relaxed);
  }
  void add_totals(std::uint64_t count, std::uint64_t sum) noexcept {
    count_.fetch_add(count, std::memory_order_relaxed);
    sum_.fetch_add(sum, std::memory_order_relaxed);
  }

 private:
  std::vector<std::uint64_t> bounds_;  ///< ascending upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< bounds+overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Plain-value snapshot for export and comparison (operator== makes the
/// jobs=1 vs jobs=N determinism test a one-liner).
struct HistogramSnapshot {
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  bool operator==(const HistogramSnapshot&) const = default;
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  bool operator==(const MetricsSnapshot&) const = default;
};

class MetricsRegistry {
 public:
  /// Returns (creating on first use) the named counter. Stable reference.
  Counter& counter(const std::string& name);
  /// Returns (creating on first use) the named histogram. `bounds` is only
  /// consulted on creation; later calls must agree (checked).
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds);

  MetricsSnapshot snapshot() const;
  /// Adds a snapshot into this registry: counters and per-bucket histogram
  /// counts sum, histograms are created with the snapshot's bounds on first
  /// sight (existing bounds must agree — checked). Addition is commutative
  /// and associative, so folding per-range shard snapshots (DESIGN.md §15)
  /// in any arrival order yields the same registry as executing every trial
  /// locally — the distributed engine's metrics-identity argument.
  void absorb(const MetricsSnapshot& snap);
  /// Drops every metric (tests / per-campaign isolation).
  void reset();

  /// Process-wide instance used by the example binaries.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace fprop::obs
