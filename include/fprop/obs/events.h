#pragma once

// Per-trial event recorder — the tracing half of the observability layer
// (DESIGN.md §8). Every subsystem that participates in a trial (injector,
// FPM runtime, VM, MPI simulator, recovery manager, harness) emits typed
// propagation events into one TrialRecorder; exporters (obs/export.h) turn
// the stream into chrome://tracing timelines and campaign summaries.
//
// Hot-path contract:
//  * recording is a bounds-checked write into a pre-allocated ring buffer —
//    no allocation, no locking, no formatting;
//  * a disabled recorder is a null pointer at every emit site, so the cost
//    of tracing-off is one predictable branch (FPROP_OBS_EMIT);
//  * when FPROP_OBS_ENABLED is defined to 0 the emit sites compile away
//    entirely and the binary carries no tracing code at all.
//
// The recorder never feeds back into execution: attaching one must leave
// every TrialResult field bit-identical (tested by parallel_campaign_test).

#include <cstddef>
#include <cstdint>
#include <vector>

#ifndef FPROP_OBS_ENABLED
#define FPROP_OBS_ENABLED 1
#endif

namespace fprop::obs {

/// Typed propagation events. Payload fields a/b/c are kind-specific; see
/// the per-kind comments. Steps are virtual time: rank-scoped events carry
/// the emitting rank's executed-instruction count, job-scoped events (rank
/// == kJobScope) carry the World's global clock.
enum class EventKind : std::uint8_t {
  Injection,        ///< a=site_id, b=bit, c=before^after (flipped mask)
  FirstDivergence,  ///< a=0 value divergence, a=1 wild-store address
  ShadowRecord,     ///< a=addr, b=table size after, c=pristine bits
  ShadowHeal,       ///< a=addr, b=table size after
  MsgSend,          ///< a=dest rank, b=payload words, c=header wire words
  MsgRecv,          ///< a=src rank, b=payload words, c=header wire words
  CmlSample,        ///< b=table size; resync after a bulk shadow mutation
                    ///< (message install / collective) that bypasses on_store
  Trap,             ///< a=vm::Trap value
  DetectorScan,     ///< a=total CML seen (0 = clean verdict), b=#scans so far
  Checkpoint,       ///< a=approx bytes, b=retained count after
  Rollback,         ///< a=restored-to global clock, b=wasted cycles
  RankContaminated, ///< a=rank whose state first became contaminated
  TrialOutcome,     ///< a=harness::Outcome, b=vm::Trap, c=final CML
  MsgCorrupt,       ///< in-flight flip: a=msg_index, b=serialized word,
                    ///< c=(target<<8)|bit (target: 0=header, 1=payload)
  HeaderQuarantined,///< a=records quarantined, b=malformed-stream flag,
                    ///< c=records installed despite it
  PrunedVanished,   ///< trial reconverged to the golden run and was cut
                    ///< short (DESIGN.md §14): a=matched rung clock,
                    ///< b=shadow-peak sum at the cut, c=faults fired
};

const char* event_kind_name(EventKind k) noexcept;

/// Emitting rank for job-scoped events (detector, checkpoint, outcome...).
inline constexpr std::uint32_t kJobScope = 0xFFFFFFFFu;

struct Event {
  std::uint64_t step = 0;  ///< virtual time (see EventKind comment)
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint32_t rank = 0;
  EventKind kind = EventKind::Injection;
};

/// Fixed-capacity ring buffer of Events for one trial. When full, the
/// oldest events are overwritten (the end of a trial — detection, outcome —
/// is always retained; `dropped()` reports how much of the head was lost).
class TrialRecorder {
 public:
  explicit TrialRecorder(std::size_t capacity = 1u << 16)
      : ring_(capacity > 0 ? capacity : 1) {}

  /// Appends one event. Zero-allocation: a single indexed store.
  void emit(EventKind kind, std::uint32_t rank, std::uint64_t step,
            std::uint64_t a = 0, std::uint64_t b = 0,
            std::uint64_t c = 0) noexcept {
    Event& e = ring_[head_];
    e.step = step;
    e.a = a;
    e.b = b;
    e.c = c;
    e.rank = rank;
    e.kind = kind;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    ++total_;
  }

  std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events emitted over the trial's lifetime (including overwritten ones).
  std::uint64_t total_emitted() const noexcept { return total_; }
  /// Oldest events lost to ring overwrite.
  std::uint64_t dropped() const noexcept {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  std::size_t size() const noexcept {
    return total_ < ring_.size() ? static_cast<std::size_t>(total_)
                                 : ring_.size();
  }

  /// Retained events in emission order (oldest surviving first).
  std::vector<Event> ordered() const;

  /// Resets the recorder for reuse by the next trial.
  void clear() noexcept {
    head_ = 0;
    total_ = 0;
  }

 private:
  std::vector<Event> ring_;
  std::size_t head_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace fprop::obs

/// Emit-site wrapper: a null recorder costs one branch; with
/// FPROP_OBS_ENABLED=0 the condition is constant-false, so the site still
/// type-checks (and keeps its operands "used" for -Werror) but is folded
/// away by the compiler front end — no tracing code reaches the binary.
#if FPROP_OBS_ENABLED
#define FPROP_OBS_EMIT(rec, ...)                           \
  do {                                                     \
    if ((rec) != nullptr) (rec)->emit(__VA_ARGS__);        \
  } while (0)
#else
#define FPROP_OBS_EMIT(rec, ...)                           \
  do {                                                     \
    if (false) (rec)->emit(__VA_ARGS__);                   \
  } while (0)
#endif
