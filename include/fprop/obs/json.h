#pragma once

// Minimal JSON value model + recursive-descent parser. Exists for two
// consumers that must not pull external dependencies: fprop-benchdiff
// (parses google-benchmark --benchmark_format=json output) and the exporter
// tests (validate that emitted Chrome traces are well-formed JSON).
//
// Scope: full JSON syntax (objects, arrays, strings with escapes, numbers,
// literals); numbers are doubles (benchmark files stay well inside 2^53).
// Object keys are kept in a std::map — duplicate keys keep the last value.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace fprop::obs::json {

class Value;

enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() = default;
  explicit Value(bool b) : type_(Type::Bool), bool_(b) {}
  explicit Value(double d) : type_(Type::Number), num_(d) {}
  explicit Value(std::string s) : type_(Type::String), str_(std::move(s)) {}
  explicit Value(Array a)
      : type_(Type::Array), arr_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : type_(Type::Object), obj_(std::make_shared<Object>(std::move(o))) {}

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::Null; }
  bool is_number() const noexcept { return type_ == Type::Number; }
  bool is_string() const noexcept { return type_ == Type::String; }
  bool is_array() const noexcept { return type_ == Type::Array; }
  bool is_object() const noexcept { return type_ == Type::Object; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const Array& as_array() const { return *arr_; }
  const Object& as_object() const { return *obj_; }

  /// Object member access; returns a shared Null for missing keys or
  /// non-objects, so lookups chain without exceptions.
  const Value& operator[](const std::string& key) const;

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

struct ParseResult {
  bool ok = false;
  Value value;
  std::string error;       ///< human-readable message when !ok
  std::size_t error_pos = 0;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error).
ParseResult parse(const std::string& text);

/// Convenience: parse a file; !ok with an error message if unreadable.
ParseResult parse_file(const std::string& path);

}  // namespace fprop::obs::json
