#pragma once

// Experiment harness: instruments an application, captures its golden
// (fault-free) run, executes injection trials, and classifies outcomes into
// the paper's categories (§2):
//
//   Vanished (V)              masked before reaching memory; correct output
//   Output Not Affected (ONA) memory contaminated; output still correct
//   Wrong Output (WO)         output corrupted / app reports failure
//   Prolonged Execution (PEX) correct output after extra work
//   Crashed (C)               trap, hang, deadlock or MPI abort
//
// CO (Correct Output) = V + ONA, what a black-box analysis would report.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "fprop/apps/registry.h"
#include "fprop/fpm/runtime.h"
#include "fprop/vm/bytecode.h"
#include "fprop/inject/injector.h"
#include "fprop/mpisim/world.h"
#include "fprop/obs/events.h"
#include "fprop/obs/metrics.h"
#include "fprop/passes/passes.h"
#include "fprop/recovery/recovery.h"

namespace fprop::harness {

namespace prune {
struct GoldenPrints;
}  // namespace prune

enum class Outcome : std::uint8_t {
  Vanished,
  OutputNotAffected,
  WrongOutput,
  ProlongedExecution,
  Crashed,
};

const char* outcome_name(Outcome o) noexcept;

struct ClassifierConfig {
  /// Per-element relative output tolerance (the paper uses 5 %).
  double tolerance = 0.05;
  /// Runs longer than golden by this factor (with correct output) are PEX.
  double time_factor = 1.10;
};

struct ExperimentConfig {
  std::uint32_t nranks = 0;  ///< 0 = app default
  std::map<std::string, std::string> overrides;  ///< @KEY@ substitutions
  passes::InjectTargets targets;  ///< instruction classes to instrument
  std::uint64_t rank_sample_period = 2048;   ///< per-rank CML trace
  std::uint64_t global_sample_period = 512;  ///< job CML trace (Fig. 7)
  std::uint64_t slice = 256;                 ///< scheduler quantum
  std::uint64_t rng_seed = 0x5eedf00d;       ///< app rand01() streams
  double budget_factor = 8.0;  ///< trial cycle budget = golden x factor
  /// Rungs in the golden snapshot ladder warm-started trials restore from
  /// (DESIGN.md §11). Snapshot memory is copy-on-write, so rungs cost pages
  /// actually dirtied between them, not full images. 0 disables the ladder
  /// (every trial cold-starts regardless of any warm_start knob).
  std::size_t snapshot_rungs = 12;
  ClassifierConfig classifier;
  /// Detector-driven checkpoint/restart (off by default). When
  /// `recovery.enabled`, run_trial drives the job through
  /// recovery::RecoveryManager; a zero detector_interval / expected_cycles
  /// is derived from the golden run.
  recovery::RecoveryConfig recovery;
};

/// Fault-free reference execution; doubles as the LLFI++ profiling run that
/// counts dynamic injection points per rank.
struct GoldenRun {
  std::vector<double> outputs;
  std::int64_t reported_iters = -1;
  std::uint64_t max_rank_cycles = 0;
  std::uint64_t global_cycles = 0;
  std::uint64_t total_allocated_words = 0;
  inject::DynCounts dyn_counts;
  /// Per-dynamic-point live widths; empty when every site is 64-bit (then
  /// width-aware sampling degenerates to the historical draws). Needed so
  /// campaigns on apps with i1 arith sites produce valid plans.
  inject::DynWidths dyn_widths;
  std::uint64_t total_dyn_points = 0;
  /// Per-rank point-to-point sends of the fault-free run — the sampling
  /// space for in-flight message faults (DESIGN.md §12). All-zero for
  /// communication-free apps.
  inject::MsgCounts msg_counts;
  std::uint64_t total_sent_msgs = 0;
};

struct TrialResult {
  Outcome outcome = Outcome::Vanished;
  vm::Trap trap = vm::Trap::None;
  bool injected = false;  ///< at least one planned register flip fired
  inject::InjectionEvent injection;  ///< first injection event (if any)
  /// In-flight message faults that actually fired (DESIGN.md §12).
  std::size_t msg_injected = 0;
  /// Messages whose piggyback header arrived anomalous, and records
  /// quarantined by install_header bounds validation, job-final.
  std::uint64_t headers_quarantined = 0;
  std::uint64_t header_records_quarantined = 0;
  /// Interference metric for k-fault plans: minimum |cycle distance| over
  /// all pairs of fired faults (register flips and message strikes alike,
  /// on rank-local clocks). -1 when fewer than two faults fired.
  std::int64_t fault_pair_min_gap = -1;
  std::uint64_t total_cml_final = 0;
  std::uint64_t total_cml_peak = 0;
  double contaminated_pct = 0.0;  ///< peak CML / allocated words, in %
  std::size_t contaminated_ranks = 0;
  std::int64_t reported_iters = -1;
  std::uint64_t global_cycles = 0;
  /// Job-wide CML(t) (present when capture_trace was requested).
  std::vector<fpm::TraceSample> trace;
  /// Per-rank first-contamination times on the global clock (Fig. 8).
  std::vector<std::optional<std::uint64_t>> rank_first_contaminated;

  /// CML/cycle linear fit of the captured trace (populated when
  /// capture_trace was requested and the trace was fittable). Lives on the
  /// result so exporters and the campaign merge agree on one fit.
  double slope_a = 0.0;
  double slope_b = 0.0;
  bool slope_usable = false;

  // --- recovery campaigns (ExperimentConfig::recovery.enabled) -------------
  /// Rolled back at least once AND still finished with correct output —
  /// the trial the recovery subsystem actually saved.
  bool recovered = false;
  std::size_t rollbacks = 0;
  std::size_t detections = 0;
  std::uint64_t wasted_cycles = 0;    ///< re-executed global cycles
  std::uint64_t residual_cml = 0;     ///< contamination carried to the end
  bool recovery_gave_up = false;      ///< retry budget exhausted
  /// Global clock of the first detection (-1 = none / recovery disabled).
  std::int64_t first_detection_clock = -1;

  // --- trial economy (DESIGN.md §14). Purely provenance: these say how the
  // --- result was OBTAINED, never what it is, so equivalence tests and the
  // --- fuzz differential oracles exclude them from comparison. ------------
  /// Cut short by the golden-reconvergence probe; every other field is
  /// still exactly what the full run would have produced.
  bool pruned = false;
  /// Rung clock at which the prune fired (0 when !pruned).
  std::uint64_t prune_clock = 0;
  /// Plan-equivalence dedup multiplicity: a representative trial counts
  /// itself plus every duplicate mapped onto it (>= 1); a duplicate slot
  /// carries 0. Sum over a campaign == the trial count.
  std::uint64_t dedup_count = 1;
};

/// Per-campaign cache of every counter/histogram handle the per-trial
/// metrics fold updates. Resolving a handle hashes its name under the
/// registry mutex; doing that ~15 times per trial dominated the fold on
/// large campaigns, so run_campaign resolves the handles once and shares
/// them across workers (all updates are commutative atomics).
struct TrialMetricHandles {
  explicit TrialMetricHandles(obs::MetricsRegistry& reg);

  obs::MetricsRegistry* registry = nullptr;
  obs::Counter* trials = nullptr;
  obs::Counter* outcome[5] = {};  ///< indexed by static_cast<size_t>(Outcome)
  obs::Counter* flips = nullptr;
  obs::Counter* msg_flips = nullptr;
  obs::Counter* headers_quarantined = nullptr;
  obs::Counter* recovered = nullptr;
  obs::Counter* detections = nullptr;
  obs::Counter* obs_events = nullptr;
  obs::Counter* obs_events_dropped = nullptr;
  obs::Counter* shadow_records = nullptr;
  obs::Counter* shadow_heals = nullptr;
  obs::Counter* mpi_sends = nullptr;
  obs::Counter* mpi_recvs = nullptr;
  obs::Counter* vm_traps = nullptr;
  obs::Counter* detector_scans = nullptr;
  obs::Counter* recovery_checkpoints = nullptr;
  obs::Counter* recovery_rollbacks = nullptr;
  obs::Histogram* probe_len = nullptr;
  obs::Histogram* header_words = nullptr;
  obs::Histogram* ckpt_bytes = nullptr;
  obs::Histogram* detect_latency = nullptr;
  /// Fault-pair min cycle distance per multi-fault trial (interference
  /// signal: close pairs compose, distant pairs behave like two singles).
  obs::Histogram* fault_gap = nullptr;
  /// Trials cut short by the golden-reconvergence probe ("campaign.pruned").
  obs::Counter* pruned = nullptr;
};

/// One rung of the golden snapshot ladder (DESIGN.md §11): a coordinated
/// checkpoint of the fault-free run at a quiescent sweep boundary, plus the
/// injector's dynamic-point counters at that instant. A trial whose every
/// planned fault has `dyn_index >= dyn_counts[rank]` can start here instead
/// of at cycle 0 and produce a bit-identical TrialResult.
struct SnapshotRung {
  std::uint64_t global_clock = 0;
  inject::DynCounts dyn_counts;
  mpisim::World::Checkpoint state;
};

/// Per-call options for AppHarness::run_trial (the legacy positional
/// overload forwards here with warm_start forced off).
struct TrialOptions {
  bool capture_trace = false;
  /// Start from the latest golden-ladder rung at or below the plan's first
  /// injection instead of cycle 0. Bit-identical to a cold start by
  /// construction (DESIGN.md §11). Falls back to cold when a recorder is
  /// attached (the skipped prefix's event stream cannot be replayed), when
  /// the ladder is disabled (snapshot_rungs == 0), or when no rung precedes
  /// the plan's earliest fault.
  bool warm_start = true;
  obs::TrialRecorder* recorder = nullptr;
  /// Pre-resolved metric handles (null = no metrics fold).
  const TrialMetricHandles* metrics = nullptr;
  /// Execution tier (DESIGN.md §13). Bytecode (the default) runs the
  /// dispatch loop wherever no hook needs per-instruction visibility and
  /// produces bit-identical TrialResults; ranks with an attached recorder or
  /// taint runtime, and the instruction at a planned fault's dyn-index,
  /// always go through the reference interpreter. Interp forces the
  /// reference tier everywhere (A/B runs, differential oracles).
  vm::ExecTier exec_tier = vm::ExecTier::Bytecode;
  /// Early-outcome pruning (DESIGN.md §14): once every planned fault has
  /// fired, probe each golden-ladder rung boundary (and, with recovery, each
  /// clean detector scan) for full-state reconvergence to the golden run; on
  /// a match, stop and synthesize the remaining TrialResult fields from the
  /// golden run — bit-identical to the unpruned result by construction.
  /// Requires the ladder (snapshot_rungs > 0); trace-capturing trials run
  /// unpruned (their CML(t) trace must cover the whole job).
  bool prune = false;
};

class AppHarness {
 public:
  AppHarness(const apps::AppSpec& spec, ExperimentConfig config);
  /// Out of line: members hold unique_ptrs to types incomplete here.
  ~AppHarness();

  const GoldenRun& golden() const noexcept { return golden_; }
  const ExperimentConfig& config() const noexcept { return config_; }
  std::uint32_t nranks() const noexcept { return nranks_; }
  const ir::Module& module() const noexcept { return module_; }
  const std::vector<passes::InjectionSite>& sites() const noexcept {
    return sites_;
  }
  const std::string& app_name() const noexcept { return name_; }

  /// Runs one injection trial and classifies it against the golden run.
  ///
  /// Thread-safe: may be called concurrently from multiple threads on the
  /// same harness. Each call builds a private World/InjectorRuntime (and
  /// RecoveryManager when recovery is enabled) over the shared, immutable
  /// instrumented module; the harness itself is only read (`module_`,
  /// `golden_`, `config_` are never written after construction, and neither
  /// the module nor the app registry holds lazy mutable caches). This is
  /// what the parallel campaign engine relies on.
  ///
  /// `recorder` (optional) captures the trial's typed event stream; it is
  /// observation only and MUST NOT change any TrialResult field (enforced by
  /// parallel_campaign_test). `metrics` (optional) receives the trial's
  /// counter/histogram updates; all updates are commutative atomics, so
  /// campaign aggregates are identical at any worker count.
  TrialResult run_trial(const inject::InjectionPlan& plan,
                        bool capture_trace = false,
                        obs::TrialRecorder* recorder = nullptr,
                        obs::MetricsRegistry* metrics = nullptr) const;

  /// Options-struct overload; the only path that warm-starts (DESIGN.md
  /// §11). Same thread-safety contract as above — the ladder is built once
  /// under std::call_once and read-only afterwards; restored rungs share
  /// memory pages copy-on-write, so concurrent trials never write state
  /// another trial can see.
  TrialResult run_trial(const inject::InjectionPlan& plan,
                        const TrialOptions& options) const;

  /// Golden snapshot ladder, built lazily on first use (thread-safe). Rungs
  /// ascend by global clock with non-decreasing dyn_counts; empty when
  /// config.snapshot_rungs == 0. With recovery enabled, rungs sit on the
  /// detector scan grid (clean-scan checkpoint boundaries of a cold run).
  const std::vector<SnapshotRung>& snapshot_ladder() const;

  /// Compiled bytecode for the instrumented module (DESIGN.md §13), built
  /// lazily on first bytecode-tier trial (thread-safe) and shared read-only
  /// across campaign workers.
  const vm::BytecodeModule& bytecode() const;

  /// Per-rung page hashes of the golden ladder (DESIGN.md §14), built
  /// lazily on first pruned trial (thread-safe) and shared read-only across
  /// campaign workers. Empty rung list when the ladder is disabled.
  const prune::GoldenPrints& prune_prints() const;

  /// Trial World configuration (exposed for the midpoint-equivalence test
  /// and the ladder bench; `tracing` toggles the CML sample periods only).
  mpisim::WorldConfig world_config(bool tracing) const;

  /// Classifies an arbitrary job result (exposed for tests).
  Outcome classify(const mpisim::JobResult& job, bool memory_was_touched)
      const;

 private:
  void build_ladder() const;
  const SnapshotRung* latest_usable_rung(const inject::InjectionPlan& plan)
      const;

  std::string name_;
  ExperimentConfig config_;
  std::uint32_t nranks_;
  ir::Module module_;  ///< instrumented (LLFI++ + FPM)
  std::vector<passes::InjectionSite> sites_;
  GoldenRun golden_;
  mutable std::once_flag ladder_once_;
  mutable std::vector<SnapshotRung> ladder_;
  mutable std::once_flag bytecode_once_;
  mutable std::unique_ptr<vm::BytecodeModule> bytecode_;
  mutable std::once_flag prints_once_;
  mutable std::unique_ptr<prune::GoldenPrints> prints_;
};

/// Outcome counters for a campaign (Fig. 6 row).
struct OutcomeCounts {
  std::size_t vanished = 0;
  std::size_t ona = 0;
  std::size_t wrong_output = 0;
  std::size_t pex = 0;
  std::size_t crashed = 0;

  std::size_t total() const noexcept {
    return vanished + ona + wrong_output + pex + crashed;
  }
  std::size_t correct_output() const noexcept { return vanished + ona; }
  double pct(std::size_t n) const noexcept {
    return total() == 0 ? 0.0
                        : 100.0 * static_cast<double>(n) /
                              static_cast<double>(total());
  }
};

struct CampaignConfig {
  std::size_t trials = 300;
  std::uint64_t seed = 42;
  bool capture_traces = false;
  /// Keep at most this many full traces (memory bound); slopes are still
  /// extracted from every trace.
  std::size_t max_kept_traces = 16;
  /// Register faults per run (1 = the paper's main campaign; >1 exercises
  /// the LLFI++ multi-fault extension; 0 = none, for pure message-fault
  /// campaigns).
  std::size_t faults_per_run = 1;
  /// In-flight message faults per run (DESIGN.md §12): bit flips in the
  /// serialized FPM piggyback header or the payload of sampled
  /// point-to-point sends. 0 (the default) keeps the send path entirely
  /// free of serialization cost. Ignored for communication-free apps.
  std::size_t msg_faults_per_run = 0;
  /// Worker threads executing trials (0 = hardware_concurrency, 1 = run on
  /// the calling thread). Every trial is seed-derived and independent, so
  /// run_campaign pre-samples all injection plans, dispatches them to a
  /// chunked worker pool, and merges results in trial-index order — the
  /// CampaignResult is bit-identical at any jobs value.
  std::size_t jobs = 1;
  /// Warm-start trials from the golden snapshot ladder (DESIGN.md §11) —
  /// bit-identical to cold starts, typically 1.5–2x trials/s. The examples
  /// and benches expose `--cold-start` to turn it off for A/B runs. Trials
  /// that attach a recorder (trace_dir set or metrics != nullptr) always
  /// cold-start: the skipped prefix's event stream cannot be replayed.
  bool warm_start = true;
  /// Execution tier for every trial (TrialOptions::exec_tier). The examples
  /// and benches expose `--exec-tier={interp,bytecode}`; the tier-equivalence
  /// fuzz oracle diffs the two.
  vm::ExecTier exec_tier = vm::ExecTier::Bytecode;
  /// Early-outcome pruning (DESIGN.md §14) — trials that provably
  /// reconverge to the golden run stop early and synthesize the rest;
  /// CampaignResults are bit-identical either way (modulo the provenance
  /// fields pruned/prune_clock). The examples and benches expose
  /// `--no-prune`. Trials that attach a recorder (trace_dir set or metrics
  /// != nullptr) always run unpruned: their event stream is the reference
  /// the observability tests compare against.
  bool prune = true;
  /// Plan-equivalence dedup (DESIGN.md §14): trials whose canonicalized
  /// injection plans are identical are executed once; duplicates copy the
  /// representative's result (trials are pure functions of their plans) and
  /// the representative's dedup_count carries the multiplicity. Aggregate
  /// counts are unchanged. Disabled alongside tracing/metrics for the same
  /// reason as prune. The examples and benches expose `--no-dedup`.
  bool dedup = true;

  // --- observability (DESIGN.md §8) ----------------------------------------
  /// When non-empty: per-trial Chrome trace JSON (trial_NNNNNN.json) plus
  /// campaign.csv / campaign.json summaries are written into this directory
  /// (created if missing). Empty (the default) disables tracing entirely.
  std::string trace_dir;
  /// When non-null, every trial folds its counters/histograms into this
  /// registry. Aggregation is commutative, so the snapshot is identical at
  /// any jobs value (tested by parallel_campaign_test).
  obs::MetricsRegistry* metrics = nullptr;
  /// Event-ring capacity per trial (oldest events drop first on overflow).
  std::size_t trace_capacity = 1u << 16;
};

struct CampaignResult {
  OutcomeCounts counts;
  std::vector<TrialResult> trials;  ///< traces stripped beyond the kept ones
  std::vector<double> slopes;       ///< CML/cycle fit per usable trace
  std::vector<double> max_contaminated_pct;  ///< per trial (Fig. 7f)

  // Recovery aggregates (zero unless the harness ran with recovery enabled).
  std::size_t recovered_trials = 0;
  std::size_t total_rollbacks = 0;
  std::uint64_t total_wasted_cycles = 0;

  // Message-corruption aggregates (zero unless msg_faults_per_run > 0).
  std::size_t total_msg_injected = 0;
  std::uint64_t total_headers_quarantined = 0;
  std::uint64_t total_header_records_quarantined = 0;

  // Trial-economy aggregates (DESIGN.md §14): how many trials were cut
  // short by the reconvergence probe, and how many were never executed
  // because their plan duplicated an earlier one. Observational only.
  std::size_t pruned_trials = 0;
  std::size_t deduped_trials = 0;
};

/// Phases 1 + 1.5 of a campaign, precomputed: every injection plan (plan i
/// is a pure function of derive_seed(config.seed, i)) plus the
/// plan-equivalence representative map (DESIGN.md §14). Deterministic for a
/// fixed (harness, config) pair, which is what lets distributed shards
/// (DESIGN.md §15) recompute it locally instead of shipping plans over the
/// wire: coordinator and every shard agree on plan i and rep[i] byte-for-byte.
struct CampaignPlan {
  std::vector<inject::InjectionPlan> plans;
  /// rep[i] == i for representative trials; otherwise the earlier trial
  /// index whose canonical plan is identical (slot i copies it at merge).
  /// Identity when dedup is off or per-trial artifacts are required.
  std::vector<std::size_t> rep;
};

/// Samples every plan and computes the dedup representative map.
CampaignPlan plan_campaign(const AppHarness& harness,
                           const CampaignConfig& config);

/// Phase 2: executes the representative trials of `plan` with index in
/// [first, last) on `config.jobs` worker threads, writing slot i of `slots`
/// (which must be sized to plan.plans.size()). Slots outside the range and
/// duplicate slots are left untouched. Trial i's result depends only on
/// plan i, so any partition of [0, trials) into ranges — across calls,
/// threads, or processes — yields the same slots.
void run_campaign_range(const AppHarness& harness,
                        const CampaignConfig& config,
                        const CampaignPlan& plan, std::size_t first,
                        std::size_t last, std::vector<TrialResult>& slots);

/// Phases 2.5 + 3: fills duplicate slots from their representatives and
/// folds `slots` into a CampaignResult strictly in trial-index order (and
/// exports summaries when config.trace_dir is set). This is the only fold —
/// the in-process engine and the shard coordinator both end here, which is
/// what makes the distributed result bit-identical by construction.
CampaignResult merge_campaign(const AppHarness& harness,
                              const CampaignConfig& config,
                              const CampaignPlan& plan,
                              std::vector<TrialResult> slots);

/// Runs `config.trials` single-(or multi-)fault trials with per-trial seeds
/// derived from `config.seed`, on `config.jobs` worker threads. Determinism
/// is preserved at any thread count: plans are pre-sampled from
/// derive_seed(seed, i), every trial is a pure function of its plan, and the
/// per-trial results (including slopes and kept traces) are folded into the
/// CampaignResult strictly in trial-index order. Equivalent to
/// plan_campaign + run_campaign_range(0, trials) + merge_campaign.
CampaignResult run_campaign(const AppHarness& harness,
                            const CampaignConfig& config);

/// Writes the campaign summaries — campaign.csv (one row per trial) and
/// campaign.json (outcome counts + FPS fit + recovery aggregates) — into
/// `dir` (created if missing). run_campaign calls this automatically when
/// CampaignConfig::trace_dir is set; exposed for tools and tests. Output is
/// byte-stable for a fixed (app, seed, trials) triple.
void export_campaign(const AppHarness& harness, const CampaignConfig& config,
                     const CampaignResult& result, const std::string& dir);

/// Per-static-site vulnerability aggregation: LLFI's raison d'etre is
/// tracing fault effects back to the source construct, so campaigns can be
/// folded per injection site to rank the most fragile instructions.
struct SiteVulnerability {
  std::int64_t site_id = -1;
  std::string consumer;   ///< textual form of the instrumented instruction
  std::string function;
  OutcomeCounts counts;
  double mean_contaminated_pct = 0.0;

  /// Fraction of this site's trials that ended badly (WO or crash).
  double severity() const noexcept {
    const std::size_t n = counts.total();
    return n == 0 ? 0.0
                  : static_cast<double>(counts.wrong_output + counts.crashed) /
                        static_cast<double>(n);
  }
};

/// Folds a campaign per site, most severe first (requires single-fault
/// campaigns; trials whose fault never fired are skipped).
std::vector<SiteVulnerability> site_breakdown(const AppHarness& harness,
                                              const CampaignResult& result);

}  // namespace fprop::harness
