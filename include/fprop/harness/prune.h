#pragma once

// Early-outcome pruning (DESIGN.md §14): the golden snapshot ladder
// (DESIGN.md §11) run in reverse. Warm starts use the ladder to *skip the
// fault-free prefix* of a trial; pruning uses the same rungs to *cut the
// fault-free suffix*. At every sweep boundary whose global clock equals a
// rung's, a cheap probe asks: has this trial's complete live state
// reconverged to the golden run's? Deterministic execution makes the answer
// decisive — equal live state at equal clock implies a bit-identical future
// — so a converged trial can stop immediately and synthesize the rest of
// its TrialResult from the golden run, with the probe's full-state equality
// (mpisim::World::state_converged) guaranteeing the synthesized result is
// the one the unpruned run would have produced.
//
// The probe is cheap by the same copy-on-write argument that makes the
// ladder affordable: a page whose shared_ptr still equals the golden rung's
// is bit-identical by construction and costs one pointer compare; only
// pages the trial actually dirtied are hashed against the rung's
// precomputed hashes (GoldenPrints, built once per harness and shared
// read-only across campaign workers) and memcmp-confirmed on a hash match.

#include <cstdint>
#include <vector>

#include "fprop/harness/harness.h"

namespace fprop::harness::prune {

/// Per-rung, per-rank page hashes of the golden ladder's memory images —
/// the read-only half of the probe, computed once per AppHarness
/// (AppHarness::prune_prints) and shared across workers.
struct GoldenPrints {
  struct Rung {
    std::uint64_t global_clock = 0;
    /// page_hashes[rank] == AddressSpace::image_page_hashes of the rung's
    /// checkpointed memory image for that rank.
    std::vector<std::vector<std::uint64_t>> page_hashes;
  };
  /// Index-aligned with the snapshot ladder, ascending by global_clock.
  std::vector<Rung> rungs;
};

/// Hashes every rung's memory images. O(golden memory x rungs) — paid once.
GoldenPrints build_prints(const std::vector<SnapshotRung>& ladder);

/// One trial's reconvergence probe. Bound to the trial's injector and World;
/// call converged() between sweeps (the World's quiescent boundaries).
class PruneProbe {
 public:
  /// `ladder` and `prints` must be index-aligned (prints = build_prints of
  /// that ladder) and outlive the probe, as must `injector` and `world`.
  PruneProbe(const std::vector<SnapshotRung>& ladder,
             const GoldenPrints& prints,
             const inject::InjectorRuntime& injector,
             const mpisim::World& world) noexcept
      : ladder_(&ladder), prints_(&prints), injector_(&injector),
        world_(&world) {}

  /// True iff the trial has provably reconverged to the golden run: the
  /// current global clock exactly matches a rung's (searched anew each call
  /// — recovery rollbacks rewind the clock, so no monotone cursor), every
  /// planned fault has fired (a pending fault is invisible future
  /// divergence), and the full live state equals the rung's checkpoint.
  bool converged() const;

  /// Rung clock of the last converged() == true (for PrunedVanished events).
  std::uint64_t matched_clock() const noexcept { return matched_clock_; }

 private:
  const std::vector<SnapshotRung>* ladder_;
  const GoldenPrints* prints_;
  const inject::InjectorRuntime* injector_;
  const mpisim::World* world_;
  mutable std::uint64_t matched_clock_ = 0;
};

}  // namespace fprop::harness::prune
