#pragma once

// Proxy-application registry.
//
// The paper evaluates LULESH, LAMMPS, miniFE, AMG2013 and MCB. We carry
// MiniC proxies that preserve the algorithmic trait each propagation profile
// is attributed to (DESIGN.md §2): iterative state reuse, halo exchange,
// sparse assembly + Krylov solve with residual checks, multigrid phase
// structure, and Monte Carlo particle exchange. `matvec` is the Fig. 1
// pedagogical example.

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "fprop/ir/ir.h"

namespace fprop::apps {

struct AppSpec {
  std::string name;
  std::string description;
  std::string source;  ///< MiniC, possibly containing @KEY@ placeholders
  std::map<std::string, std::string> defaults;  ///< placeholder values
  std::uint32_t default_nranks = 8;
};

/// All five paper applications (not matvec), in the paper's Fig. 6 order.
const std::vector<AppSpec>& paper_apps();

/// Lookup by name ("matvec", "lulesh", "lammps", "minife", "amg", "mcb").
/// Throws Error for unknown names.
const AppSpec& get_app(std::string_view name);

/// Substitutes @KEY@ placeholders: spec defaults first, then `overrides`.
/// Throws Error if a placeholder remains unresolved.
std::string instantiate(const AppSpec& spec,
                        const std::map<std::string, std::string>& overrides = {});

/// Convenience: instantiate + compile to MiniIR (uninstrumented).
ir::Module compile_app(const AppSpec& spec,
                       const std::map<std::string, std::string>& overrides = {});

}  // namespace fprop::apps
