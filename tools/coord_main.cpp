// fprop-coord: campaign coordinator (DESIGN.md §15).
//
// Fans a fault-injection campaign out to worker shards over the length-
// prefixed wire protocol, journals every merged plan-index range, and folds
// the results through the same merge the in-process engine uses — the
// CampaignResult is bit-identical to `run_campaign` at any shard count.
//
//   # 4 local shard processes, resumable journal:
//   $ fprop-coord matvec 5000 --shards=4 --jobs=2 --journal=campaign.fjr
//
//   # two-terminal mode: listen for externally launched shards
//   $ fprop-coord lulesh 5000 --listen=/tmp/fprop.sock --await=2
//   (elsewhere)  $ fprop-shard --connect=/tmp/fprop.sock
//
// SIGINT stops assignment after the in-flight ranges; rerunning with the
// same --journal resumes from the merged prefix, and the final result is
// bit-identical to an uninterrupted run.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/obs/export.h"
#include "fprop/shard/coord.h"
#include "fprop/shard/spawn.h"

using namespace fprop;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: fprop-coord [app] [trials] [options]\n"
               "  --shards=N           spawn N local fprop-shard processes\n"
               "  --shard-bin=PATH     shard binary for --shards (default:\n"
               "                       fprop-shard next to this binary)\n"
               "  --listen=PATH        accept shards on a unix socket\n"
               "  --await=N            shards to accept on --listen "
               "(default 1)\n"
               "  --journal=FILE       resumable journal of merged ranges\n"
               "  --range-size=N       trials per assignment (default auto)\n"
               "  --jobs=N             worker threads per shard (default 1)\n"
               "  --seed=S             campaign seed (default 42)\n"
               "  --faults-per-trial=K register faults per trial (default 1)\n"
               "  --corrupt-headers[=M] in-flight message faults per trial\n"
               "  --cold-start         no golden-ladder warm starts\n"
               "  --exec-tier=T        interp | bytecode (default bytecode)\n"
               "  --no-prune           run every trial to completion\n"
               "  --no-dedup           re-execute duplicate canonical plans\n"
               "  --metrics-out=F      merged metrics registry JSON\n"
               "  --help               this text\n");
}

}  // namespace

int main(int argc, char** argv) {
  const char* app = "matvec";
  std::size_t trials = 300;
  std::size_t nshards = 0;
  std::size_t await = 1;
  std::size_t jobs = 1;
  std::size_t range_size = 0;
  std::uint64_t seed = 42;
  std::size_t faults_per_trial = 1;
  std::size_t msg_faults = 0;
  bool cold = false;
  bool prune = true;
  bool dedup = true;
  vm::ExecTier tier = vm::ExecTier::Bytecode;
  std::string shard_bin;
  std::string listen_path;
  std::string journal;
  std::string metrics_out;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      usage(stdout);
      return 0;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      nshards = static_cast<std::size_t>(std::atoi(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--shard-bin=", 12) == 0) {
      shard_bin = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--listen=", 9) == 0) {
      listen_path = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--await=", 8) == 0) {
      await = static_cast<std::size_t>(std::atoi(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--journal=", 10) == 0) {
      journal = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--range-size=", 13) == 0) {
      range_size = static_cast<std::size_t>(std::atoi(argv[i] + 13));
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<std::size_t>(std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--faults-per-trial=", 19) == 0) {
      faults_per_trial = static_cast<std::size_t>(std::atoi(argv[i] + 19));
    } else if (std::strcmp(argv[i], "--corrupt-headers") == 0) {
      msg_faults = 1;
    } else if (std::strncmp(argv[i], "--corrupt-headers=", 18) == 0) {
      msg_faults = static_cast<std::size_t>(std::atoi(argv[i] + 18));
    } else if (std::strcmp(argv[i], "--cold-start") == 0) {
      cold = true;
    } else if (std::strncmp(argv[i], "--exec-tier=", 12) == 0) {
      const char* t = argv[i] + 12;
      if (std::strcmp(t, "interp") == 0) {
        tier = vm::ExecTier::Interp;
      } else if (std::strcmp(t, "bytecode") == 0) {
        tier = vm::ExecTier::Bytecode;
      } else {
        std::fprintf(stderr, "fprop-coord: bad --exec-tier '%s'\n", t);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--no-prune") == 0) {
      prune = false;
    } else if (std::strcmp(argv[i], "--no-dedup") == 0) {
      dedup = false;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "fprop-coord: unknown option '%s'\n", argv[i]);
      usage(stderr);
      return 2;
    } else if (positional == 0) {
      app = argv[i];
      ++positional;
    } else {
      trials = static_cast<std::size_t>(std::atoi(argv[i]));
      ++positional;
    }
  }
  if ((nshards == 0) == listen_path.empty()) {
    std::fprintf(stderr,
                 "fprop-coord: pick exactly one of --shards=N or "
                 "--listen=PATH\n");
    usage(stderr);
    return 2;
  }

  struct sigaction sa{};
  sa.sa_handler = on_signal;  // no SA_RESTART: blocked reads must wake
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  try {
    harness::ExperimentConfig config;
    harness::AppHarness h(apps::get_app(app), config);

    harness::CampaignConfig cc;
    cc.trials = trials;
    cc.seed = seed;
    cc.faults_per_run = faults_per_trial;
    cc.msg_faults_per_run = msg_faults;
    cc.jobs = jobs;
    cc.warm_start = !cold;
    cc.exec_tier = tier;
    cc.prune = prune;
    cc.dedup = dedup;
    obs::MetricsRegistry registry;
    if (!metrics_out.empty()) cc.metrics = &registry;

    std::vector<shard::Conn> conns;
    std::vector<shard::SpawnedShard> spawned;
    if (nshards > 0) {
      if (shard_bin.empty()) {
        // Default: fprop-shard next to this binary.
        std::string self = argv[0];
        const std::size_t slash = self.rfind('/');
        shard_bin = (slash == std::string::npos ? std::string()
                                                : self.substr(0, slash + 1)) +
                    "fprop-shard";
      }
      std::fprintf(stderr, "fprop-coord: spawning %zu x %s\n", nshards,
                   shard_bin.c_str());
      spawned = shard::spawn_local_shards(shard_bin, nshards);
      for (shard::SpawnedShard& s : spawned) {
        conns.push_back(std::move(s.conn));
      }
    } else {
      std::fprintf(stderr, "fprop-coord: waiting for %zu shard(s) at %s\n",
                   await, listen_path.c_str());
      conns = shard::uds_accept(listen_path, await);
    }

    shard::DistConfig dist;
    dist.journal_path = journal;
    dist.range_size = range_size;
    dist.stop = &g_stop;
    dist.log = [](const std::string& msg) {
      std::fprintf(stderr, "fprop-coord: %s\n", msg.c_str());
    };

    std::printf("campaign: %s, %u ranks, %zu trials across %s shards "
                "(jobs=%zu each)\n",
                app, h.nranks(), trials,
                nshards > 0 ? std::to_string(nshards).c_str()
                            : std::to_string(await).c_str(),
                jobs);
    const harness::CampaignResult r =
        shard::run_distributed_campaign(h, cc, std::move(conns), dist);

    for (shard::SpawnedShard& s : spawned) {
      shard::wait_shard(s.pid);
    }

    const auto& c = r.counts;
    std::printf("\noutcomes over %zu trials:\n", c.total());
    std::printf("  vanished        (V): %5.1f%%\n", c.pct(c.vanished));
    std::printf("  output-unaffected (ONA): %.1f%%\n", c.pct(c.ona));
    std::printf("  wrong output   (WO): %5.1f%%\n", c.pct(c.wrong_output));
    std::printf("  prolonged     (PEX): %5.1f%%\n", c.pct(c.pex));
    std::printf("  crashed         (C): %5.1f%%\n", c.pct(c.crashed));
    if (prune || dedup) {
      std::printf("trial economy: %zu pruned, %zu deduped\n",
                  r.pruned_trials, r.deduped_trials);
    }
    if (!metrics_out.empty()) {
      obs::write_file(metrics_out, obs::metrics_json(registry.snapshot()));
      std::printf("metrics written to %s\n", metrics_out.c_str());
    }
    if (!journal.empty()) {
      std::printf("journal: %s holds every merged range\n", journal.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fprop-coord: %s\n", e.what());
    return g_stop != 0 ? 130 : 1;
  }
}
