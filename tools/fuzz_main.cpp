// fprop-fuzz: differential fuzzing driver for the FPM/VM/MPI stack
// (DESIGN.md §10).
//
// Generates seeded random MiniC programs and checks each against the
// selected invariant oracles. Violations print the seed + detail, are
// written as .mc repro files into --corpus-dir, and (with --minimize) are
// shrunk to a small repro first. Exit status: 0 = no violations, 1 =
// violations found, 2 = bad usage.
//
//   $ fprop-fuzz --seeds=10000 --oracles=pristine,campaign,ckpt,shadow,parser
//   $ fprop-fuzz --seed-start=7341 --seeds=1 --oracles=ckpt --minimize
//                --corpus-dir=repros        (one line; wrapped for width)
//   $ fprop-fuzz --time-budget=600 --seeds=0     # nightly: run for 10 min

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fprop/fuzz/generator.h"
#include "fprop/fuzz/minimizer.h"
#include "fprop/fuzz/oracles.h"

using namespace fprop;

namespace {

struct Options {
  std::uint64_t seed_start = 0;
  std::uint64_t seeds = 100;  ///< 0 = unbounded (needs --time-budget)
  std::uint64_t time_budget_s = 0;  ///< 0 = no time limit
  bool pristine = true;
  bool campaign = true;
  bool ckpt = true;
  bool shadow = true;
  bool parser = true;
  bool warm_vs_cold = true;
  bool multifault = true;
  bool header = true;
  bool bytecode_vs_interp = true;
  bool prune = true;
  bool shard = true;
  std::size_t trials = 6;
  std::size_t jobs = 2;
  std::uint32_t nranks = 4;
  bool mpi = true;
  bool minimize = false;
  std::string corpus_dir;
};

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: fprop-fuzz [options]\n"
               "  --seed-start=N   first seed (default 0)\n"
               "  --seeds=N        seeds to run; 0 = until time budget "
               "(default 100)\n"
               "  --time-budget=S  stop after S seconds (default 0 = off)\n"
               "  --oracles=LIST   comma list of pristine,campaign,ckpt,"
               "shadow,parser,\n"
               "                   warm_vs_cold,multifault,header,"
               "bytecode_vs_interp,prune,\n"
               "                   shard (default all)\n"
               "  --trials=N       campaign-oracle trials per run (default 6)\n"
               "  --jobs=N         campaign-oracle parallel jobs (default 2)\n"
               "  --nranks=N       simulated MPI ranks (default 4)\n"
               "  --no-mpi         generate single-rank programs only\n"
               "  --minimize       shrink failing programs before reporting\n"
               "  --corpus-dir=D   write failing inputs/repros into D\n"
               "  --help           this text\n");
}

bool parse_oracles(const std::string& list, Options& opt) {
  opt.pristine = opt.campaign = opt.ckpt = opt.shadow = opt.parser =
      opt.warm_vs_cold = opt.multifault = opt.header =
          opt.bytecode_vs_interp = opt.prune = opt.shard = false;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string name = list.substr(start, comma - start);
    if (name == "pristine") opt.pristine = true;
    else if (name == "campaign") opt.campaign = true;
    else if (name == "ckpt") opt.ckpt = true;
    else if (name == "shadow") opt.shadow = true;
    else if (name == "parser") opt.parser = true;
    else if (name == "warm_vs_cold") opt.warm_vs_cold = true;
    else if (name == "multifault") opt.multifault = true;
    else if (name == "header") opt.header = true;
    else if (name == "bytecode_vs_interp") opt.bytecode_vs_interp = true;
    else if (name == "prune") opt.prune = true;
    else if (name == "shard") opt.shard = true;
    else if (!name.empty()) return false;
    start = comma + 1;
  }
  return opt.pristine || opt.campaign || opt.ckpt || opt.shadow ||
         opt.parser || opt.warm_vs_cold || opt.multifault || opt.header ||
         opt.bytecode_vs_interp || opt.prune || opt.shard;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

/// Repro file: the failing source prefixed with machine-readable provenance
/// (still valid MiniC comments, so the file replays through minic::compile).
std::string repro_text(const std::string& oracle, std::uint64_t seed,
                       std::uint32_t nranks, const std::string& detail,
                       const std::string& source) {
  std::string head = "// fprop-fuzz repro\n// oracle: " + oracle +
                     "\n// seed: " + std::to_string(seed) +
                     "\n// nranks: " + std::to_string(nranks) + "\n";
  std::string d = detail;
  for (char& c : d) {
    if (c == '\n') c = ' ';
  }
  head += "// detail: " + d + "\n";
  return head + source;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(stdout);
      return 0;
    } else if (std::strncmp(a, "--seed-start=", 13) == 0) {
      opt.seed_start = std::strtoull(a + 13, nullptr, 10);
    } else if (std::strncmp(a, "--seeds=", 8) == 0) {
      opt.seeds = std::strtoull(a + 8, nullptr, 10);
    } else if (std::strncmp(a, "--time-budget=", 14) == 0) {
      opt.time_budget_s = std::strtoull(a + 14, nullptr, 10);
    } else if (std::strncmp(a, "--oracles=", 10) == 0) {
      if (!parse_oracles(a + 10, opt)) {
        std::fprintf(stderr, "fprop-fuzz: bad --oracles list '%s'\n", a + 10);
        return 2;
      }
    } else if (std::strncmp(a, "--trials=", 9) == 0) {
      opt.trials = std::strtoull(a + 9, nullptr, 10);
    } else if (std::strncmp(a, "--jobs=", 7) == 0) {
      opt.jobs = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--nranks=", 9) == 0) {
      opt.nranks = static_cast<std::uint32_t>(std::strtoul(a + 9, nullptr, 10));
    } else if (std::strcmp(a, "--no-mpi") == 0) {
      opt.mpi = false;
    } else if (std::strcmp(a, "--minimize") == 0) {
      opt.minimize = true;
    } else if (std::strncmp(a, "--corpus-dir=", 13) == 0) {
      opt.corpus_dir = a + 13;
    } else {
      std::fprintf(stderr, "fprop-fuzz: unknown option '%s'\n", a);
      usage(stderr);
      return 2;
    }
  }
  if (opt.seeds == 0 && opt.time_budget_s == 0) {
    std::fprintf(stderr, "fprop-fuzz: --seeds=0 requires --time-budget\n");
    return 2;
  }
  if (!opt.corpus_dir.empty()) {
    std::filesystem::create_directories(opt.corpus_dir);
  }

  fuzz::GenConfig gc;
  gc.nranks = opt.nranks;
  gc.mpi = opt.mpi;

  fuzz::OracleConfig oc;
  oc.campaign_trials = opt.trials;
  oc.campaign_jobs = opt.jobs;

  const auto t0 = std::chrono::steady_clock::now();
  const auto over_budget = [&] {
    if (opt.time_budget_s == 0) return false;
    return std::chrono::steady_clock::now() - t0 >=
           std::chrono::seconds(opt.time_budget_s);
  };

  std::uint64_t programs = 0;
  std::uint64_t violations = 0;

  const auto report = [&](const fuzz::OracleResult& r, std::uint64_t seed,
                          const std::string& source, bool program_based) {
    if (r.ok) return;
    ++violations;
    std::fprintf(stderr, "VIOLATION oracle=%s seed=%llu\n  %s\n",
                 r.oracle.c_str(), static_cast<unsigned long long>(seed),
                 r.detail.c_str());
    std::string repro = source;
    if (opt.minimize && !source.empty()) {
      const fuzz::FailPredicate pred = [&](const std::string& cand) {
        if (!program_based) return !fuzz::check_parser_robust(cand).ok;
        fuzz::GeneratedProgram p;
        p.source = cand;
        p.nranks = opt.nranks;
        p.seed = seed;
        if (r.oracle == "pristine") return !fuzz::check_pristine_chain(p).ok;
        if (r.oracle == "campaign") {
          return !fuzz::check_campaign_parallel(p, oc).ok;
        }
        if (r.oracle == "ckpt") return !fuzz::check_checkpoint_replay(p).ok;
        if (r.oracle == "warm_vs_cold") {
          return !fuzz::check_warm_vs_cold(p, oc).ok;
        }
        if (r.oracle == "multifault") {
          return !fuzz::check_multifault(p, oc).ok;
        }
        if (r.oracle == "bytecode_vs_interp") {
          return !fuzz::check_bytecode_vs_interp(p, oc).ok;
        }
        if (r.oracle == "prune") return !fuzz::check_prune(p, oc).ok;
        if (r.oracle == "shard") {
          return !fuzz::check_shard_protocol(p, oc).ok;
        }
        return false;
      };
      fuzz::MinimizeStats st;
      repro = fuzz::minimize_lines(source, pred, 2000, &st);
      std::fprintf(stderr, "  minimized %zu -> %zu lines (%zu attempts)\n",
                   st.initial_lines, st.final_lines, st.attempts);
    }
    if (!opt.corpus_dir.empty() && !repro.empty()) {
      const std::string path = opt.corpus_dir + "/" + r.oracle + "_seed" +
                               std::to_string(seed) + ".mc";
      write_file(path, repro_text(r.oracle, seed, opt.nranks, r.detail, repro));
      std::fprintf(stderr, "  repro written to %s\n", path.c_str());
    }
  };

  // When a corpus dir is available, persist the frontend's input *before*
  // compiling it: a hard crash (the very bug the parser oracle hunts) then
  // still leaves the offending bytes on disk for triage.
  const std::string last_input =
      opt.corpus_dir.empty() ? std::string()
                             : opt.corpus_dir + "/last_parser_input.mc";

  for (std::uint64_t i = 0; opt.seeds == 0 || i < opt.seeds; ++i) {
    if (over_budget()) break;
    const std::uint64_t seed = opt.seed_start + i;
    const fuzz::GeneratedProgram prog = fuzz::generate_program(seed, gc);
    ++programs;

    if (opt.pristine) {
      report(fuzz::check_pristine_chain(prog), seed, prog.source, true);
    }
    if (opt.campaign) {
      fuzz::OracleConfig c = oc;
      c.capture_traces = (seed % 4 == 0);  // exercise the slope-fit path too
      report(fuzz::check_campaign_parallel(prog, c), seed, prog.source, true);
    }
    if (opt.ckpt) {
      report(fuzz::check_checkpoint_replay(prog), seed, prog.source, true);
    }
    if (opt.warm_vs_cold) {
      report(fuzz::check_warm_vs_cold(prog, oc), seed, prog.source, true);
    }
    if (opt.multifault) {
      report(fuzz::check_multifault(prog, oc), seed, prog.source, true);
    }
    if (opt.bytecode_vs_interp) {
      report(fuzz::check_bytecode_vs_interp(prog, oc), seed, prog.source,
             true);
    }
    if (opt.prune) {
      report(fuzz::check_prune(prog, oc), seed, prog.source, true);
    }
    if (opt.shard) {
      report(fuzz::check_shard_protocol(prog, oc), seed, prog.source, true);
    }
    if (opt.header) {
      report(fuzz::check_header_adversarial(seed), seed, std::string(), true);
    }
    if (opt.shadow) {
      report(fuzz::check_shadow_model(seed), seed, std::string(), true);
    }
    if (opt.parser) {
      const std::string mutated = fuzz::mutate_source(prog.source, seed);
      if (!last_input.empty()) write_file(last_input, mutated);
      report(fuzz::check_parser_robust(mutated), seed, mutated, false);
    }

    if (programs % 500 == 0) {
      const auto secs = std::chrono::duration_cast<std::chrono::seconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      std::fprintf(stderr,
                   "fprop-fuzz: %llu programs, %llu violations, %llds\n",
                   static_cast<unsigned long long>(programs),
                   static_cast<unsigned long long>(violations),
                   static_cast<long long>(secs));
    }
  }

  if (!last_input.empty() && violations == 0) {
    std::error_code ec;
    std::filesystem::remove(last_input, ec);
  }

  const auto secs = std::chrono::duration_cast<std::chrono::seconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  std::printf("fprop-fuzz: %llu programs checked in %llds, %llu violations\n",
              static_cast<unsigned long long>(programs),
              static_cast<long long>(secs),
              static_cast<unsigned long long>(violations));
  return violations == 0 ? 0 : 1;
}
