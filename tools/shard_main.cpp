// fprop-shard: campaign worker shard (DESIGN.md §15).
//
// Connects to an fprop-coord coordinator, rebuilds the campaign locally
// from the Setup frame (plans never cross the wire — they are recomputed
// from derive_seed, bit-identical to the coordinator's), then executes
// assigned plan-index ranges until Shutdown.
//
//   $ fprop-shard --connect=/tmp/fprop.sock --jobs=8
//   $ fprop-shard --stdio          # protocol on stdin/stdout (spawned mode)
//
// SIGINT/SIGTERM finish the current range, fsync the journal (every
// completed range is already on disk before it is sent), send Bye, and
// exit 0 — the coordinator requeues anything unacknowledged.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fprop/shard/shard.h"
#include "fprop/shard/spawn.h"

using namespace fprop;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: fprop-shard (--connect=PATH | --stdio) [options]\n"
               "  --connect=PATH   coordinator's unix socket\n"
               "  --stdio          speak the protocol on stdin/stdout\n"
               "  --jobs=N         override the coordinator's per-shard "
               "worker count\n"
               "  --journal=FILE   journal completed ranges; re-assigned\n"
               "                   ranges are answered without re-running\n"
               "  --max-ranges=N   drop the link after N ranges (crash\n"
               "                   injection for resume tests)\n"
               "  --quiet          no progress lines on stderr\n"
               "  --help           this text\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect_path;
  bool stdio = false;
  bool quiet = false;
  shard::ServeOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      usage(stdout);
      return 0;
    } else if (std::strncmp(argv[i], "--connect=", 10) == 0) {
      connect_path = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--stdio") == 0) {
      stdio = true;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      opts.jobs_override = static_cast<std::size_t>(std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--journal=", 10) == 0) {
      opts.journal_path = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--max-ranges=", 13) == 0) {
      opts.max_ranges = static_cast<std::size_t>(std::atoi(argv[i] + 13));
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr, "fprop-shard: unknown option '%s'\n", argv[i]);
      usage(stderr);
      return 2;
    }
  }
  if (stdio == !connect_path.empty()) {
    std::fprintf(stderr,
                 "fprop-shard: pick exactly one of --connect=PATH or "
                 "--stdio\n");
    usage(stderr);
    return 2;
  }

  struct sigaction sa{};
  sa.sa_handler = on_signal;  // no SA_RESTART: blocked reads must wake
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  opts.stop = &g_stop;
  if (!quiet) {
    opts.log = [](const std::string& msg) {
      std::fprintf(stderr, "fprop-shard: %s\n", msg.c_str());
    };
  }

  try {
    shard::Conn conn =
        stdio ? shard::Conn(STDIN_FILENO, STDOUT_FILENO)
              : shard::uds_connect(connect_path);
    const shard::ServeStats stats = shard::serve(conn, opts);
    if (!quiet) {
      std::fprintf(stderr,
                   "fprop-shard: done (%zu range(s) executed, %zu replayed, "
                   "%zu trial(s))%s\n",
                   stats.ranges_executed, stats.ranges_replayed,
                   stats.trials_executed,
                   stats.interrupted ? " [interrupted]" : "");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fprop-shard: %s\n", e.what());
    return 1;
  }
}
