// fprop-benchdiff: compares two google-benchmark JSON files and fails (exit
// 1) when any benchmark regressed beyond the relative threshold. This is the
// CI bench-regression gate: baselines live in bench/BENCH_*.json and are
// compared against a fresh run of the same benchmarks.
//
//   fprop-benchdiff [options] <baseline.json> <current.json>
//
//   --threshold=F    relative slowdown that counts as a regression
//                    (default 0.30 = 30%; ratios below 1-F count improved)
//   --min-iters=N    skip benchmarks with fewer iterations on either side
//                    (sub-millisecond runs are noise-dominated)
//   --filter=SUBSTR  compare only benchmarks whose name contains SUBSTR
//   --cpu-time       compare cpu_time instead of real_time
//   --allow-missing  missing benchmarks are reported but do not fail
//
// Exit codes: 0 ok, 1 regression (or missing benchmark), 2 usage/parse error.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fprop/obs/benchdiff.h"
#include "fprop/support/error.h"

namespace {

constexpr const char* kUsage =
    "usage: fprop-benchdiff [--threshold=F] [--min-iters=N] [--filter=S]\n"
    "                       [--cpu-time] [--allow-missing]\n"
    "                       <baseline.json> <current.json>\n";

bool parse_flag(const std::string& arg, const std::string& name,
                std::string& value) {
  const std::string prefix = name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  value = arg.substr(prefix.size());
  return true;
}

std::vector<fprop::obs::BenchEntry> load(const std::string& path) {
  const fprop::obs::json::ParseResult doc = fprop::obs::json::parse_file(path);
  if (!doc.ok) {
    throw fprop::Error(path + ": " + doc.error + " (offset " +
                       std::to_string(doc.error_pos) + ")");
  }
  return fprop::obs::parse_benchmark_entries(doc.value);
}

}  // namespace

int main(int argc, char** argv) {
  fprop::obs::DiffOptions options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (parse_flag(arg, "--threshold", value)) {
      options.threshold = std::strtod(value.c_str(), nullptr);
      if (options.threshold <= 0.0) {
        std::fprintf(stderr, "fprop-benchdiff: bad --threshold=%s\n",
                     value.c_str());
        return 2;
      }
    } else if (parse_flag(arg, "--min-iters", value)) {
      options.min_iters = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(arg, "--filter", value)) {
      options.filter = value;
    } else if (arg == "--cpu-time") {
      options.use_cpu_time = true;
    } else if (arg == "--allow-missing") {
      options.allow_missing = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "fprop-benchdiff: unknown option %s\n%s",
                   arg.c_str(), kUsage);
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  try {
    const std::vector<fprop::obs::BenchEntry> base = load(files[0]);
    const std::vector<fprop::obs::BenchEntry> current = load(files[1]);
    const fprop::obs::DiffReport report =
        fprop::obs::diff_benchmarks(base, current, options);
    std::fputs(fprop::obs::format_diff_table(report, options).c_str(), stdout);
    return report.failed(options) ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fprop-benchdiff: %s\n", e.what());
    return 2;
  }
}
