// Campaign-engine throughput (google-benchmark): end-to-end trials/sec of
// run_campaign over a shared AppHarness, across two axes:
//
//   jobs  1 vs N — the parallel engine's contract is bit-identical results
//         at any thread count, so the only thing that may change with jobs
//         is wall-clock (UseRealTime: the work happens on pool threads).
//   warm  0 vs 1 — cold starts replay the fault-free prefix of every trial;
//         warm starts resume from the golden snapshot ladder (DESIGN.md
//         §11), also bit-identical. warm/cold at equal jobs is the
//         prefix-skip speedup.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <thread>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"

namespace {

using namespace fprop;

harness::AppHarness& matvec_harness() {
  static harness::AppHarness h = [] {
    harness::ExperimentConfig cfg;
    cfg.nranks = 1;
    cfg.overrides = {{"ITERS", "6"}};
    return harness::AppHarness(apps::get_app("matvec"), cfg);
  }();
  return h;
}

harness::AppHarness& lulesh_harness() {
  static harness::AppHarness h = [] {
    harness::ExperimentConfig cfg;
    cfg.nranks = 4;
    return harness::AppHarness(apps::get_app("lulesh"), cfg);
  }();
  return h;
}

void run_campaign_bench(benchmark::State& state, harness::AppHarness& h,
                        std::size_t trials) {
  harness::CampaignConfig cc;
  cc.trials = trials;
  cc.seed = 42;
  cc.jobs = static_cast<std::size_t>(state.range(0));
  cc.warm_start = state.range(1) != 0;
  if (cc.warm_start) {
    // Ladder capture is a one-time per-harness cost (measured separately in
    // perf_snapshot_ladder); keep it out of the timed region so warm numbers
    // report steady-state trial throughput.
    (void)h.snapshot_ladder();
  }
  for (auto _ : state) {
    const harness::CampaignResult r = harness::run_campaign(h, cc);
    benchmark::DoNotOptimize(r.counts.total());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trials));
  state.counters["trials/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * trials),
      benchmark::Counter::kIsRate);
  state.counters["hw_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
}

void BM_CampaignMatvec(benchmark::State& state) {
  run_campaign_bench(state, matvec_harness(), 64);
}

void BM_CampaignLulesh(benchmark::State& state) {
  run_campaign_bench(state, lulesh_harness(), 16);
}

}  // namespace

// jobs=1 (serial baseline), 2, 8, and 0 = hardware_concurrency; each at
// warm=0 (cold start) and warm=1 (snapshot-ladder resume, the default).
BENCHMARK(BM_CampaignMatvec)
    ->ArgNames({"jobs", "warm"})
    ->Args({1, 0})->Args({1, 1})
    ->Args({2, 0})->Args({2, 1})
    ->Args({8, 0})->Args({8, 1})
    ->Args({0, 0})->Args({0, 1})
    ->UseRealTime();
BENCHMARK(BM_CampaignLulesh)
    ->ArgNames({"jobs", "warm"})
    ->Args({1, 0})->Args({1, 1})
    ->Args({2, 0})->Args({2, 1})
    ->Args({8, 0})->Args({8, 1})
    ->Args({0, 0})->Args({0, 1})
    ->UseRealTime();

BENCHMARK_MAIN();
