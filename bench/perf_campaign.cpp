// Campaign-engine throughput (google-benchmark): end-to-end trials/sec of
// run_campaign at jobs=1 vs jobs=N over a shared AppHarness. The parallel
// engine's contract is bit-identical results at any thread count, so the
// only thing that may change with jobs is wall-clock — which is what this
// measures (UseRealTime: the work happens on pool threads).

#include <benchmark/benchmark.h>

#include <cstddef>
#include <thread>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"

namespace {

using namespace fprop;

harness::AppHarness& matvec_harness() {
  static harness::AppHarness h = [] {
    harness::ExperimentConfig cfg;
    cfg.nranks = 1;
    cfg.overrides = {{"ITERS", "6"}};
    return harness::AppHarness(apps::get_app("matvec"), cfg);
  }();
  return h;
}

harness::AppHarness& lulesh_harness() {
  static harness::AppHarness h = [] {
    harness::ExperimentConfig cfg;
    cfg.nranks = 4;
    return harness::AppHarness(apps::get_app("lulesh"), cfg);
  }();
  return h;
}

void run_campaign_bench(benchmark::State& state, harness::AppHarness& h,
                        std::size_t trials) {
  harness::CampaignConfig cc;
  cc.trials = trials;
  cc.seed = 42;
  cc.jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const harness::CampaignResult r = harness::run_campaign(h, cc);
    benchmark::DoNotOptimize(r.counts.total());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trials));
  state.counters["trials/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * trials),
      benchmark::Counter::kIsRate);
  state.counters["hw_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
}

void BM_CampaignMatvec(benchmark::State& state) {
  run_campaign_bench(state, matvec_harness(), 64);
}

void BM_CampaignLulesh(benchmark::State& state) {
  run_campaign_bench(state, lulesh_harness(), 16);
}

}  // namespace

// jobs=1 (serial baseline), 2, 8, and 0 = hardware_concurrency.
BENCHMARK(BM_CampaignMatvec)->Arg(1)->Arg(2)->Arg(8)->Arg(0)->UseRealTime();
BENCHMARK(BM_CampaignLulesh)->Arg(1)->Arg(2)->Arg(8)->Arg(0)->UseRealTime();

BENCHMARK_MAIN();
