// Fig. 7 — Fault propagation profiles: CML(t) series for representative
// injected runs of each application (two per outcome class where available),
// plus the Fig. 7f summary of the maximum percentage of application memory
// state contaminated.

#include <algorithm>
#include <cstdio>
#include <optional>

#include "bench_util.h"
#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/support/stats.h"
#include "fprop/support/table.h"

using namespace fprop;

namespace {

void print_profile(const harness::TrialResult& t) {
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(t.trace.size());
  for (const auto& s : t.trace) {
    xs.push_back(static_cast<double>(s.cycle));
    ys.push_back(static_cast<double>(s.cml));
  }
  std::printf("outcome=%s cml_peak=%llu contaminated=%.2f%% ranks=%zu\n",
              harness::outcome_name(t.outcome),
              static_cast<unsigned long long>(t.total_cml_peak),
              t.contaminated_pct, t.contaminated_ranks);
  std::printf("%s\n", render_series(xs, ys, 72, 12).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::size_t trials = args.get_u64("trials", 120);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const std::size_t jobs = args.get_u64("jobs", 0);  // 0 = all hardware threads
  const bool cold = args.has("cold-start");  // disable the snapshot ladder
  const std::string only = args.get_str("app", "");
  const std::size_t per_class = args.get_u64("per_class", 2);

  bench::print_header("Figure 7", "fault propagation profiles + Fig. 7f");
  std::printf("trials per application: %zu\n\n", trials);

  TableWriter summary({"App", "max contaminated %", "mean contaminated %",
                       "trials w/ contamination %"});

  for (const auto& spec : apps::paper_apps()) {
    if (!only.empty() && spec.name != only) continue;
    harness::ExperimentConfig cfg;
    harness::AppHarness h(spec, cfg);
    harness::CampaignConfig cc;
    cc.trials = trials;
    cc.seed = seed;
    cc.jobs = jobs;
    cc.warm_start = !cold;
    cc.capture_traces = true;
    cc.max_kept_traces = trials;  // keep everything; we select below
    const harness::CampaignResult r = run_campaign(h, cc);

    std::printf("---- %s (%s) ----\n", spec.name.c_str(),
                spec.description.c_str());
    // Two representative profiles per class, as in the paper's plots
    // (crashes terminate immediately and are not plotted, per §4.3).
    for (const harness::Outcome cls :
         {harness::Outcome::OutputNotAffected, harness::Outcome::WrongOutput,
          harness::Outcome::ProlongedExecution}) {
      std::size_t shown = 0;
      for (const auto& t : r.trials) {
        if (t.outcome != cls || t.trace.empty() || t.total_cml_peak == 0) {
          continue;
        }
        print_profile(t);
        if (++shown >= per_class) break;
      }
    }

    double max_pct = 0.0;
    RunningStat pct_stat;
    std::size_t contaminated_trials = 0;
    for (double p : r.max_contaminated_pct) {
      max_pct = std::max(max_pct, p);
      pct_stat.add(p);
      if (p > 0.0) ++contaminated_trials;
    }
    summary.add_row(
        {spec.name, format_double(max_pct, 2), format_double(pct_stat.mean(), 2),
         format_double(100.0 * static_cast<double>(contaminated_trials) /
                           static_cast<double>(trials),
                       1)});
  }

  std::printf("Fig. 7f — percentage of memory state contaminated (max over "
              "trials):\n%s\n",
              summary.to_string().c_str());
  std::printf(
      "Paper shape to match: staircase/linear growth synced to time steps\n"
      "(LULESH/LAMMPS), assembly-then-plateau (miniFE), phase-dependent\n"
      "growth (AMG), steady growth with late faults still corrupting output\n"
      "(MCB); plus occasional flat profiles from faults in unused static\n"
      "data (LAMMPS).\n");
  return 0;
}
