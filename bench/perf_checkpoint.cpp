// Checkpoint/restore microbenchmarks (google-benchmark): the cost of the
// recovery subsystem's primitives — a coordinated World checkpoint, a
// restore, and a full detector-driven recovered job — as a function of rank
// count and working-set size. Checkpoint cost bounds how often the detector
// can afford to scan.

#include <benchmark/benchmark.h>

#include <string>

#include "fprop/minic/compile.h"
#include "fprop/mpisim/world.h"
#include "fprop/recovery/recovery.h"

namespace {

using namespace fprop;

ir::Module working_set_app(std::uint64_t words) {
  // Touches `words` memory words so snapshots carry a realistic heap.
  return minic::compile(R"(
fn main() {
  var n: int = )" + std::to_string(words) + R"(;
  var a: float* = alloc_float(n);
  var s: float = 0.0;
  for (var i: int = 0; i < n; i = i + 1) { a[i] = float(i); }
  for (var it: int = 0; it < 50; it = it + 1) {
    for (var i: int = 0; i < n; i = i + 1) { s = s + a[i]; }
  }
  output_f(s);
}
)");
}

void BM_WorldCheckpoint(benchmark::State& state) {
  const ir::Module m = working_set_app(
      static_cast<std::uint64_t>(state.range(0)));
  mpisim::WorldConfig cfg;
  cfg.nranks = static_cast<std::uint32_t>(state.range(1));
  mpisim::World world(m, cfg);
  for (int i = 0; i < 4; ++i) (void)world.sweep();  // heaps populated
  for (auto _ : state) {
    mpisim::World::Checkpoint ckpt = world.checkpoint();
    benchmark::DoNotOptimize(ckpt);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorldCheckpoint)
    ->Args({1 << 8, 1})
    ->Args({1 << 12, 1})
    ->Args({1 << 8, 4})
    ->Args({1 << 12, 4});

void BM_WorldRestore(benchmark::State& state) {
  const ir::Module m = working_set_app(
      static_cast<std::uint64_t>(state.range(0)));
  mpisim::WorldConfig cfg;
  cfg.nranks = static_cast<std::uint32_t>(state.range(1));
  mpisim::World world(m, cfg);
  for (int i = 0; i < 4; ++i) (void)world.sweep();
  const mpisim::World::Checkpoint ckpt = world.checkpoint();
  for (auto _ : state) {
    world.restore(ckpt);
    (void)world.sweep();  // drift so the restore has real work to undo
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorldRestore)
    ->Args({1 << 8, 1})
    ->Args({1 << 12, 1})
    ->Args({1 << 8, 4})
    ->Args({1 << 12, 4});

void BM_RecoveredJob(benchmark::State& state) {
  // End-to-end: a fault-free job driven by the RecoveryManager (periodic
  // scans + checkpoints, no rollbacks) vs its plain run() cost is the
  // subsystem's standing overhead.
  const ir::Module m = working_set_app(1 << 8);
  mpisim::WorldConfig cfg;
  cfg.nranks = 2;
  recovery::RecoveryConfig rc;
  rc.detector_interval = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    mpisim::World world(m, cfg);
    recovery::RecoveryManager manager(world, rc);
    const mpisim::JobResult job = manager.run();
    benchmark::DoNotOptimize(job);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecoveredJob)->Arg(1 << 12)->Arg(1 << 16);

void BM_PlainJobBaseline(benchmark::State& state) {
  const ir::Module m = working_set_app(1 << 8);
  mpisim::WorldConfig cfg;
  cfg.nranks = 2;
  for (auto _ : state) {
    mpisim::World world(m, cfg);
    const mpisim::JobResult job = world.run();
    benchmark::DoNotOptimize(job);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlainJobBaseline);

}  // namespace

BENCHMARK_MAIN();
