// Ablation (paper §3.2): dual-chain value tracking vs naive taint
// propagation. The paper's central implementation argument is that "the
// output is corrupted if any input is corrupted" overestimates the number
// of corrupted memory locations because it cannot observe masking. This
// harness runs matched faults through both trackers on every application
// (single-rank) and reports the overestimation.
//
//   $ ./ablation_taint [--trials=N] [--seed=S]

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "fprop/apps/registry.h"
#include "fprop/fpm/taint.h"
#include "fprop/inject/injector.h"
#include "fprop/ir/verifier.h"
#include "fprop/passes/passes.h"
#include "fprop/support/stats.h"
#include "fprop/support/table.h"
#include "fprop/vm/interp.h"

using namespace fprop;

namespace {

struct Tracked {
  std::uint64_t cml_peak = 0;
  bool finished = false;
};

Tracked run_dual(const ir::Module& m, const inject::InjectionPlan& plan) {
  inject::InjectorRuntime inj(plan);
  fpm::FpmRuntime fpm;
  vm::Interp vm(m, 0, vm::InterpConfig{});
  vm.set_inject_hook(&inj);
  vm.set_fpm(&fpm);
  const auto rs = vm.run(1ull << 30);
  return {fpm.shadow().peak(), rs == vm::RunState::Done};
}

Tracked run_taint(const ir::Module& m, const inject::InjectionPlan& plan) {
  inject::InjectorRuntime inj(plan);
  fpm::TaintRuntime taint;
  vm::Interp vm(m, 0, vm::InterpConfig{});
  vm.set_inject_hook(&inj);
  vm.set_taint(&taint);
  const auto rs = vm.run(1ull << 30);
  return {taint.peak(), rs == vm::RunState::Done};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::size_t trials = args.get_u64("trials", 80);
  const std::uint64_t seed = args.get_u64("seed", 42);

  bench::print_header("Ablation", "dual-chain tracking vs naive taint (3.2)");
  std::printf("%zu matched single-fault trials per app, 1 rank each\n\n",
              trials);

  TableWriter table({"App", "mean CML dual", "mean CML taint", "overest. x",
                     "masked-but-tainted %"});

  std::vector<std::string> names{"matvec", "lulesh", "minife", "lammps",
                                 "mcb", "amg"};
  for (const auto& name : names) {
    const auto& spec = apps::get_app(name);
    // Dual-chain module (inject + FPM) and taint module (inject only) share
    // the same injection sites and dynamic ordering.
    ir::Module m_dual = apps::compile_app(spec);
    (void)passes::instrument_module(m_dual);
    ir::Module m_taint = apps::compile_app(spec);
    (void)passes::run_fault_injection_pass(m_taint);
    ir::verify(m_taint);

    // Count dynamic points once (fault-free).
    inject::InjectorRuntime probe;
    {
      vm::Interp vm(m_taint, 0, vm::InterpConfig{});
      vm.set_inject_hook(&probe);
      if (vm.run(1ull << 32) != vm::RunState::Done) {
        std::printf("%s: fault-free single-rank run failed; skipping\n",
                    name.c_str());
        continue;
      }
    }
    const inject::DynCounts counts = probe.dynamic_counts(1);

    RunningStat dual_stat;
    RunningStat taint_stat;
    RunningStat ratio;
    std::size_t masked_but_tainted = 0;
    std::size_t compared = 0;
    Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < trials; ++i) {
      const auto plan = inject::sample_single_fault(counts, rng);
      const Tracked d = run_dual(m_dual, plan);
      const Tracked t = run_taint(m_taint, plan);
      if (!d.finished || !t.finished) continue;  // crashes: nothing to compare
      ++compared;
      dual_stat.add(static_cast<double>(d.cml_peak));
      taint_stat.add(static_cast<double>(t.cml_peak));
      if (d.cml_peak == 0 && t.cml_peak > 0) ++masked_but_tainted;
      if (d.cml_peak > 0) {
        ratio.add(static_cast<double>(t.cml_peak) /
                  static_cast<double>(d.cml_peak));
      }
    }

    table.add_row(
        {name, format_double(dual_stat.mean(), 1),
         format_double(taint_stat.mean(), 1),
         format_double(ratio.count() ? ratio.mean() : 0.0, 2),
         format_double(compared ? 100.0 * static_cast<double>(
                                              masked_but_tainted) /
                                      static_cast<double>(compared)
                                : 0.0,
                       1)});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "overest. x    = mean(taint CML / dual CML) over runs with real\n"
      "                contamination — how much the naive rule inflates CML\n"
      "masked-but-tainted = runs the dual chain proves clean (every store\n"
      "                matched its pristine value) that taint still flags.\n"
      "This is the measurement behind the paper's choice to replicate the\n"
      "instruction stream instead of propagating taint bits.\n");
  return 0;
}
