// Fig. 9 (extension, DESIGN.md §12) — outcome matrix of multi-fault and
// in-flight message-corruption campaigns. Two views:
//
//   (a) k-fault interference: outcome percentages at k ∈ {1, 2, 4} register
//       faults per trial, plus the median min-pairwise fault distance of
//       the trials where ≥2 faults fired (close pairs interfere; far pairs
//       behave like independent single faults).
//   (b) message-corruption breakdown: trials with in-flight header/payload
//       strikes only — outcomes plus how often the hardened install path
//       quarantined a corrupted piggyback header instead of letting it
//       poison the receiver's shadow table.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/support/table.h"

using namespace fprop;

namespace {

std::int64_t median_gap(const harness::CampaignResult& r) {
  std::vector<std::int64_t> gaps;
  for (const auto& t : r.trials) {
    if (t.fault_pair_min_gap >= 0) gaps.push_back(t.fault_pair_min_gap);
  }
  if (gaps.empty()) return -1;
  std::sort(gaps.begin(), gaps.end());
  return gaps[gaps.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::size_t trials = args.get_u64("trials", 200);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const std::size_t jobs = args.get_u64("jobs", 0);  // 0 = all hw threads
  const bool cold = args.has("cold-start");
  const std::string only = args.get_str("app", "");

  bench::print_header("Figure 9 (extension)",
                      "multi-fault & message-corruption outcome matrix");
  std::printf("trials per cell: %zu (--trials=N to change)\n\n", trials);

  std::printf("(a) k-fault interference matrix\n");
  TableWriter kmat({"App", "k", "CO%", "WO%", "PEX%", "Crash%", "ONA%",
                    "median min-gap (cycles)"});
  for (const auto& spec : apps::paper_apps()) {
    if (!only.empty() && spec.name != only) continue;
    harness::ExperimentConfig cfg;
    harness::AppHarness h(spec, cfg);
    for (const std::size_t k : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}}) {
      harness::CampaignConfig cc;
      cc.trials = trials;
      cc.seed = seed;
      cc.jobs = jobs;
      cc.warm_start = !cold;
      cc.faults_per_run = k;
      const harness::CampaignResult r = run_campaign(h, cc);
      const auto& c = r.counts;
      const std::int64_t gap = median_gap(r);
      kmat.add_row({spec.name, std::to_string(k),
                    format_double(c.pct(c.correct_output()), 1),
                    format_double(c.pct(c.wrong_output), 1),
                    format_double(c.pct(c.pex), 1),
                    format_double(c.pct(c.crashed), 1),
                    format_double(c.pct(c.ona), 1),
                    gap < 0 ? std::string("-") : std::to_string(gap)});
    }
  }
  std::printf("%s", kmat.to_string().c_str());

  std::printf("\n(b) in-flight message corruption (1 strike per trial, "
              "no register faults)\n");
  TableWriter mmat({"App", "CO%", "WO%", "PEX%", "Crash%", "strikes",
                    "hdrs quarantined", "records dropped"});
  for (const auto& spec : apps::paper_apps()) {
    if (!only.empty() && spec.name != only) continue;
    harness::ExperimentConfig cfg;
    harness::AppHarness h(spec, cfg);
    if (h.golden().total_sent_msgs == 0) continue;  // communication-free
    harness::CampaignConfig cc;
    cc.trials = trials;
    cc.seed = seed;
    cc.jobs = jobs;
    cc.warm_start = !cold;
    cc.faults_per_run = 0;
    cc.msg_faults_per_run = 1;
    const harness::CampaignResult r = run_campaign(h, cc);
    const auto& c = r.counts;
    mmat.add_row({spec.name,
                  format_double(c.pct(c.correct_output()), 1),
                  format_double(c.pct(c.wrong_output), 1),
                  format_double(c.pct(c.pex), 1),
                  format_double(c.pct(c.crashed), 1),
                  std::to_string(r.total_msg_injected),
                  std::to_string(r.total_headers_quarantined),
                  std::to_string(r.total_header_records_quarantined)});
  }
  std::printf("%s", mmat.to_string().c_str());

  std::printf("\nReading: close fault pairs (small min-gap) compound before\n"
              "the first one is masked; header strikes either reduce to\n"
              "payload-like contamination or are quarantined by the hardened\n"
              "install path — never a crash of the FPM machinery itself.\n");
  return 0;
}
