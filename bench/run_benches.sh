#!/usr/bin/env bash
# Runs every perf_* google-benchmark binary with JSON output.
#
#   bench/run_benches.sh [build_dir] [out_dir]
#
# build_dir defaults to ./build, out_dir to <build_dir>/bench-results.
# Results land in <out_dir>/BENCH_<name>.json (BENCH_campaign.json for
# perf_campaign, etc.). The committed bench/BENCH_campaign.json is a
# reference baseline produced by this script; regenerate it after touching
# the campaign engine or the VM/shadow-table hot paths.

set -euo pipefail

build_dir="${1:-build}"
out_dir="${2:-${build_dir}/bench-results}"

if [[ ! -d "${build_dir}/bench" ]]; then
  echo "error: ${build_dir}/bench not found — build the project first:" >&2
  echo "  cmake -B ${build_dir} -S . -DCMAKE_BUILD_TYPE=Release && cmake --build ${build_dir} -j" >&2
  exit 1
fi

mkdir -p "${out_dir}"

found=0
for bin in "${build_dir}"/bench/perf_*; do
  [[ -x "${bin}" && -f "${bin}" ]] || continue
  found=1
  name="$(basename "${bin}")"
  out="${out_dir}/BENCH_${name#perf_}.json"
  echo "== ${name} -> ${out}"
  "${bin}" --benchmark_format=json --benchmark_out="${out}" \
           --benchmark_out_format=json
done

if [[ "${found}" == 0 ]]; then
  echo "error: no perf_* binaries in ${build_dir}/bench" >&2
  exit 1
fi

echo "done: results in ${out_dir}"
