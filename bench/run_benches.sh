#!/usr/bin/env bash
# Runs the google-benchmark perf binaries with JSON output.
#
#   bench/run_benches.sh [build_dir] [out_dir] [-- extra benchmark args...]
#
# build_dir defaults to ./build, out_dir to <build_dir>/bench-results.
# Everything after `--` is forwarded verbatim to every benchmark binary,
# e.g. `-- --benchmark_filter=Matvec --benchmark_repetitions=3`.
#
# Results land in <out_dir>/BENCH_<name>.json (BENCH_campaign.json for
# perf_campaign, etc.).
#
# Regenerating the committed CI baselines (bench/BENCH_*.json):
#   cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release
#   cmake --build build-rel -j
#   bench/run_benches.sh build-rel bench-baseline
#   cp bench-baseline/BENCH_campaign.json bench/
#   cp bench-baseline/BENCH_shadowtable.json bench/
#   cp bench-baseline/BENCH_snapshot_ladder.json bench/
#   cp bench-baseline/BENCH_multifault.json bench/
#   cp bench-baseline/BENCH_bytecode.json bench/
#   cp bench-baseline/BENCH_prune.json bench/
#   cp bench-baseline/BENCH_shard.json bench/
# Do this on a quiet machine only after an intentional perf change; the CI
# bench-regression job compares fresh runs against these files with
# fprop-benchdiff --threshold=0.30.
#
# The benchmark set is an explicit list (not a glob) so that the figure /
# ablation replication binaries that also live in build/bench — which are
# plain executables, not google-benchmark harnesses and don't understand
# --benchmark_* flags — are never picked up by mistake.

set -euo pipefail

BENCHES=(perf_overhead perf_shadowtable perf_vm perf_checkpoint perf_campaign
         perf_multifault perf_snapshot_ladder perf_bytecode perf_prune
         perf_shard)

build_dir="build"
out_dir=""
positional=0
extra_args=()
while [[ $# -gt 0 ]]; do
  if [[ "$1" == "--" ]]; then
    shift
    extra_args=("$@")
    break
  fi
  if [[ ${positional} == 0 ]]; then
    build_dir="$1"
  elif [[ ${positional} == 1 ]]; then
    out_dir="$1"
  else
    echo "error: unexpected argument '$1' (extra benchmark args go after --)" >&2
    exit 1
  fi
  positional=$((positional + 1))
  shift
done
out_dir="${out_dir:-${build_dir}/bench-results}"

if [[ ! -d "${build_dir}/bench" ]]; then
  echo "error: ${build_dir}/bench not found — build the project first:" >&2
  echo "  cmake -B ${build_dir} -S . -DCMAKE_BUILD_TYPE=Release && cmake --build ${build_dir} -j" >&2
  exit 1
fi

mkdir -p "${out_dir}"

# Run every benchmark even if one fails (a filter that matches nothing makes
# google-benchmark exit non-zero), but never swallow a failure: remember the
# first bad exit code, name every failing binary, and propagate the code.
first_rc=0
failed=()
for name in "${BENCHES[@]}"; do
  bin="${build_dir}/bench/${name}"
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not built (configure with -DFPROP_BUILD_BENCH=ON)" >&2
    exit 1
  fi
  out="${out_dir}/BENCH_${name#perf_}.json"
  echo "== ${name} -> ${out}"
  rc=0
  "${bin}" --benchmark_format=json --benchmark_out="${out}" \
           --benchmark_out_format=json "${extra_args[@]}" || rc=$?
  if [[ ${rc} -ne 0 ]]; then
    echo "error: ${bin} exited with status ${rc}" >&2
    failed+=("${name}")
    if [[ ${first_rc} == 0 ]]; then first_rc=${rc}; fi
  fi
done

if [[ ${first_rc} -ne 0 ]]; then
  echo "error: ${#failed[@]} benchmark(s) failed: ${failed[*]}" >&2
  exit "${first_rc}"
fi
echo "done: results in ${out_dir}"
