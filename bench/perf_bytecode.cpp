// Bytecode-tier microbenchmarks (google-benchmark, DESIGN.md §13):
//
//   BM_DispatchVsStep*/tier:{0,1}  full execution of an instrumented registry
//       app on the reference interpreter (tier=0) vs the direct-threaded
//       dispatch loop (tier=1). Matvec runs a bare single Interp — the pure
//       per-instruction dispatch ratio, isolated from everything else.
//       Lulesh runs a 4-rank World with the harness's scheduler quantum —
//       the ratio campaigns can actually see once message passing, slice
//       scheduling and burst re-entry are included.
//   BM_BytecodeCompile  one-time MiniIR -> bytecode lowering cost. The
//       amortization argument: AppHarness compiles once per campaign, so
//       compile_time / trials is the per-trial overhead — sub-microsecond
//       for any real campaign size.
//
// Baseline snapshot: bench/BENCH_bytecode.json (see run_benches.sh header
// for the regeneration procedure); gated by fprop-benchdiff in CI.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <string>

#include "fprop/apps/registry.h"
#include "fprop/fpm/runtime.h"
#include "fprop/minic/compile.h"
#include "fprop/mpisim/world.h"
#include "fprop/passes/passes.h"
#include "fprop/vm/bytecode.h"
#include "fprop/vm/interp.h"

namespace {

using namespace fprop;

/// Instrumented module for a registry app (compiled once per process).
const ir::Module& app_module(const std::string& name) {
  static std::map<std::string, ir::Module> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    ir::Module m = minic::compile(apps::instantiate(apps::get_app(name)));
    (void)passes::instrument_module(m);
    it = cache.emplace(name, std::move(m)).first;
  }
  return it->second;
}

void BM_DispatchVsStepMatvec(benchmark::State& state) {
  const ir::Module& m = app_module("matvec");
  const bool use_bytecode = state.range(0) != 0;
  vm::BytecodeModule bc(m);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    fpm::FpmRuntime fpm(0);
    vm::Interp interp(m, 0, vm::InterpConfig{});
    interp.set_fpm(&fpm);
    if (use_bytecode) interp.set_bytecode(&bc);
    if (interp.run(1ull << 30) != vm::RunState::Done) {
      state.SkipWithError("app did not finish");
    }
    cycles = interp.cycles();
  }
  state.counters["vm_instructions"] = static_cast<double>(cycles);
  state.counters["Minstr/s"] = benchmark::Counter(
      static_cast<double>(cycles) * 1e-6 *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["fused_pairs"] = static_cast<double>(bc.fused_pairs());
}
BENCHMARK(BM_DispatchVsStepMatvec)->ArgNames({"tier"})->Arg(0)->Arg(1);

void BM_DispatchVsStepLulesh(benchmark::State& state) {
  const ir::Module& m = app_module("lulesh");
  const bool use_bytecode = state.range(0) != 0;
  vm::BytecodeModule bc(m);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    mpisim::WorldConfig wc;
    wc.nranks = apps::get_app("lulesh").default_nranks;
    wc.fpm_sample_period = 0;  // campaigns trace only on request
    wc.slice = 256;            // the harness's scheduler quantum
    if (use_bytecode) wc.bytecode = &bc;
    mpisim::World world(m, wc);
    const mpisim::JobResult job = world.run();
    if (job.crashed) state.SkipWithError("job crashed");
    cycles = job.global_cycles;
  }
  state.counters["vm_instructions"] = static_cast<double>(cycles);
  state.counters["Minstr/s"] = benchmark::Counter(
      static_cast<double>(cycles) * 1e-6 *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["fused_pairs"] = static_cast<double>(bc.fused_pairs());
}
BENCHMARK(BM_DispatchVsStepLulesh)->ArgNames({"tier"})->Arg(0)->Arg(1);

void BM_BytecodeCompile(benchmark::State& state) {
  const ir::Module& m = app_module("lulesh");
  for (auto _ : state) {
    vm::BytecodeModule bc(m);
    benchmark::DoNotOptimize(bc.total_instrs());
  }
  state.counters["bc_instrs"] =
      static_cast<double>(vm::BytecodeModule(m).total_instrs());
}
BENCHMARK(BM_BytecodeCompile);

}  // namespace

BENCHMARK_MAIN();
