// MiniVM throughput microbenchmarks (google-benchmark): interpreter dispatch
// rate on arithmetic/memory kernels and MiniC compilation speed.

#include <benchmark/benchmark.h>

#include "fprop/apps/registry.h"
#include "fprop/minic/compile.h"
#include "fprop/passes/passes.h"
#include "fprop/vm/interp.h"

namespace {

using namespace fprop;

constexpr const char* kArithKernel = R"mc(
fn main() {
  var s: float = 0.0;
  for (var i: int = 0; i < 20000; i = i + 1) {
    s = s + float(i) * 1.5 - 0.25;
  }
  output_f(s);
}
)mc";

constexpr const char* kMemoryKernel = R"mc(
fn main() {
  var n: int = 1024;
  var a: float* = alloc_float(n);
  for (var i: int = 0; i < n; i = i + 1) {
    a[i] = float(i);
  }
  var s: float = 0.0;
  for (var r: int = 0; r < 20; r = r + 1) {
    for (var i: int = 0; i < n; i = i + 1) {
      s = s + a[i];
      a[i] = s * 0.5;
    }
  }
  output_f(s);
}
)mc";

void run_kernel(benchmark::State& state, const char* src, bool with_fpm) {
  ir::Module m = minic::compile(src);
  if (with_fpm) (void)passes::instrument_module(m);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    fpm::FpmRuntime fpm(0);
    vm::Interp interp(m, 0, vm::InterpConfig{});
    if (with_fpm) interp.set_fpm(&fpm);
    if (interp.run(1ull << 30) != vm::RunState::Done) {
      state.SkipWithError("kernel did not finish");
    }
    cycles = interp.cycles();
  }
  state.counters["vm_instructions"] = static_cast<double>(cycles);
  state.counters["Minstr/s"] = benchmark::Counter(
      static_cast<double>(cycles) * 1e-6 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_VmArith(benchmark::State& state) {
  run_kernel(state, kArithKernel, false);
}
BENCHMARK(BM_VmArith);

void BM_VmArithFpm(benchmark::State& state) {
  run_kernel(state, kArithKernel, true);
}
BENCHMARK(BM_VmArithFpm);

void BM_VmMemory(benchmark::State& state) {
  run_kernel(state, kMemoryKernel, false);
}
BENCHMARK(BM_VmMemory);

void BM_VmMemoryFpm(benchmark::State& state) {
  run_kernel(state, kMemoryKernel, true);
}
BENCHMARK(BM_VmMemoryFpm);

void BM_MinicCompile(benchmark::State& state) {
  const std::string src = apps::instantiate(apps::get_app("lulesh"));
  for (auto _ : state) {
    ir::Module m = minic::compile(src);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MinicCompile);

void BM_InstrumentModule(benchmark::State& state) {
  const std::string src = apps::instantiate(apps::get_app("lulesh"));
  for (auto _ : state) {
    ir::Module m = minic::compile(src);
    auto sites = passes::instrument_module(m);
    benchmark::DoNotOptimize(sites);
  }
}
BENCHMARK(BM_InstrumentModule);

}  // namespace

BENCHMARK_MAIN();
