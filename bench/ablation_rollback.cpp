// Ablation (paper §5 application): what is the FPS model worth at runtime?
//
// Replays campaign CML(t) traces against a periodic detector + checkpoint
// system under three policies — always roll back, never roll back, and the
// paper's FPS-model-advised policy (roll back only when Eq. 3 predicts the
// end-of-run contamination above a safe threshold). Reports re-executed
// (wasted) work vs residual contamination per application.
//
//   $ ./ablation_rollback [--trials=N] [--seed=S] [--threshold=T]

#include <cstdio>

#include "bench_util.h"
#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/model/propagation_model.h"
#include "fprop/model/rollback_sim.h"
#include "fprop/support/table.h"

using namespace fprop;

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::size_t trials = args.get_u64("trials", 60);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const std::size_t jobs = args.get_u64("jobs", 0);  // 0 = all hardware threads
  const bool cold = args.has("cold-start");  // disable the snapshot ladder
  const double threshold = static_cast<double>(args.get_u64("threshold", 25));

  bench::print_header("Ablation",
                      "rollback policies driven by the FPS model (5)");
  std::printf("%zu traced trials per app; safe threshold %.0f CML\n\n", trials,
              threshold);

  TableWriter table({"App", "policy", "rollbacks", "mean wasted Kcycles",
                     "mean residual CML"});

  for (const auto& spec : apps::paper_apps()) {
    harness::ExperimentConfig cfg;
    harness::AppHarness h(spec, cfg);
    harness::CampaignConfig cc;
    cc.trials = trials;
    cc.seed = seed;
    cc.jobs = jobs;
    cc.warm_start = !cold;
    cc.capture_traces = true;
    cc.max_kept_traces = trials;
    const harness::CampaignResult r = run_campaign(h, cc);

    std::vector<std::vector<fpm::TraceSample>> traces;
    for (const auto& t : r.trials) {
      if (!t.trace.empty()) traces.push_back(t.trace);
    }
    const model::FpsModel fps = model::aggregate_fps(r.slopes);

    model::DetectorConfig det;
    det.interval = std::max<std::uint64_t>(h.golden().global_cycles / 24, 1);
    det.fps = fps.fps;
    det.cml_threshold = threshold;

    for (const auto policy :
         {model::RollbackPolicy::Always, model::RollbackPolicy::Never,
          model::RollbackPolicy::FpsModel}) {
      const model::PolicySummary s =
          model::summarize_policy(traces, det, policy);
      table.add_row({spec.name, model::rollback_policy_name(policy),
                     std::to_string(s.rollbacks),
                     format_double(s.mean_wasted() / 1000.0, 1),
                     format_double(s.mean_residual(), 2)});
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: 'always' wastes the most work and leaves no residual;\n"
      "'never' wastes nothing but carries the full contamination; the\n"
      "FPS-advised policy skips rollbacks for slow propagators (low FPS,\n"
      "e.g. LAMMPS) while still catching fast ones (MCB) — recovering most\n"
      "of the wasted work at bounded residual contamination.\n");
  return 0;
}
