// Fig. 5 — Fault injection coverage: verifies that the sampled injection
// times are uniform over the execution of LULESH (500 bins, chi-squared
// test), reproducing the paper's methodology check.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/inject/injector.h"
#include "fprop/mpisim/world.h"
#include "fprop/support/stats.h"
#include "fprop/support/table.h"

using namespace fprop;

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::size_t samples = args.get_u64("samples", 5000);
  const std::size_t bins = args.get_u64("bins", 500);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const std::string app_name = args.get_str("app", "lulesh");

  bench::print_header("Figure 5", "fault injection coverage (uniformity)");

  const auto& spec = apps::get_app(app_name);
  harness::ExperimentConfig cfg;
  harness::AppHarness h(spec, cfg);
  std::printf("app=%s ranks=%u dynamic injection points=%llu\n\n",
              app_name.c_str(), h.nranks(),
              static_cast<unsigned long long>(h.golden().total_dyn_points));

  // Draw the campaign's (rank, dyn_index) samples, then measure the cycle
  // at which each would fire with a single instrumented fault-free run.
  Xoshiro256 rng(seed);
  std::map<std::uint32_t, std::vector<std::uint64_t>> probes;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto plan = inject::sample_single_fault(h.golden().dyn_counts, rng);
    for (const auto& [rank, faults] : plan.faults_by_rank) {
      for (const auto& f : faults) probes[rank].push_back(f.dyn_index);
    }
  }
  inject::CycleProbe probe(std::move(probes));
  mpisim::WorldConfig wc;
  wc.nranks = h.nranks();
  wc.enable_fpm = false;
  wc.interp.cycle_budget = 4ull << 30;
  mpisim::World world(h.module(), wc);
  world.set_inject_hook(&probe);
  const mpisim::JobResult job = world.run();

  std::printf("measured injection times: %zu\n", probe.samples().size());

  // Normalize each injection time by its own rank's total duration — the
  // paper's x-axis is "execution time" and ranks run slightly different
  // instruction counts, so a common absolute axis would bias the tail bins.
  Histogram hist(0.0, 1.0, bins);
  for (const auto& [rank, cycle] : probe.samples()) {
    const double total = static_cast<double>(job.ranks[rank].cycles);
    hist.add(total > 0.0 ? static_cast<double>(cycle) / total : 0.0);
  }

  // Render a coarse view of the histogram (paper plots 500 bins; we print a
  // 50-bucket aggregate so the flatness is visible in a terminal).
  const std::size_t buckets = 50;
  std::vector<std::string> labels(buckets);
  std::vector<double> values(buckets, 0.0);
  for (std::size_t i = 0; i < bins; ++i) {
    values[i * buckets / bins] += static_cast<double>(hist.bin_count(i));
  }
  double vmax = 0.0;
  for (std::size_t i = 0; i < buckets; ++i) {
    // std::string{} + ... instead of "t" + std::to_string(i): the char*
    // overload of operator+ trips a GCC 12 -Wrestrict false positive when
    // fully inlined at -O3 (PR105651), and this file must build in the
    // Release -Werror CI bench job.
    labels[i] = std::string("t") + std::to_string(i);
    vmax = std::max(vmax, values[i]);
  }
  std::printf("\ninjections per time bucket (ideal uniform = %.1f):\n%s\n",
              static_cast<double>(probe.samples().size()) / buckets,
              render_bar_chart(labels, values, vmax, 50).c_str());

  const ChiSquaredResult chi = chi_squared_uniform(hist);
  std::printf("chi-squared (%zu bins): statistic=%.2f dof=%zu p=%.4f\n", bins,
              chi.statistic, chi.dof, chi.p_value);

  // The sampler is uniform over dynamic injection points by construction;
  // the time histogram additionally reflects how the application's
  // arithmetic density varies over its phases (the paper's own bars scatter
  // visibly around the ideal line). The reproduction criterion is therefore
  // bounded deviation: every bucket within +-50% of ideal and a coefficient
  // of variation under 0.25 — the flatness Fig. 5 demonstrates.
  const double ideal =
      static_cast<double>(probe.samples().size()) / static_cast<double>(buckets);
  RunningStat bucket_stat;
  double worst = 0.0;
  for (double v : values) {
    bucket_stat.add(v);
    worst = std::max(worst, std::fabs(v - ideal) / ideal);
  }
  const double cv = bucket_stat.stddev() / bucket_stat.mean();
  std::printf("bucket coefficient of variation: %.3f, worst deviation: "
              "%.0f%% of ideal\n", cv, 100.0 * worst);
  const bool flat = cv < 0.25 && worst < 0.5;
  std::printf("=> injection times are %s across the execution%s\n",
              flat ? "uniformly spread" : "NOT uniformly spread",
              flat ? " (matches paper Fig. 5)" : "");
  return flat ? 0 : 1;
}
