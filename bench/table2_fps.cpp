// Table 2 — Fault propagation speed (FPS) factors: per application, the mean
// and standard deviation of the per-run CML(t) slopes fitted by the §5
// models, plus the model-validation error. FPS here is in corrupted memory
// locations per mega-cycle of virtual time (the paper's CML/sec depends on
// their testbed's wall clock; ordering and relative magnitude are the
// comparable quantities).

#include <cstdio>

#include "bench_util.h"
#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/model/propagation_model.h"
#include "fprop/support/table.h"

using namespace fprop;

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::size_t trials = args.get_u64("trials", 120);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const std::size_t jobs = args.get_u64("jobs", 0);  // 0 = all hardware threads
  const bool cold = args.has("cold-start");  // disable the snapshot ladder
  const std::string only = args.get_str("app", "");

  bench::print_header("Table 2", "fault propagation speed (FPS) factors");
  std::printf("trials per application: %zu\n\n", trials);

  TableWriter table({"App", "FPS (CML/Mcycle)", "SDev", "models",
                     "xval err %"});
  struct Row {
    std::string app;
    double fps;
  };
  std::vector<Row> rows;

  for (const auto& spec : apps::paper_apps()) {
    if (!only.empty() && spec.name != only) continue;
    harness::ExperimentConfig cfg;
    harness::AppHarness h(spec, cfg);
    harness::CampaignConfig cc;
    cc.trials = trials;
    cc.seed = seed;
    cc.jobs = jobs;
    cc.warm_start = !cold;
    cc.capture_traces = true;
    cc.max_kept_traces = 8;
    const harness::CampaignResult r = run_campaign(h, cc);

    // Slopes are per-cycle; report per mega-cycle for readability.
    std::vector<double> slopes_mc;
    slopes_mc.reserve(r.slopes.size());
    for (double s : r.slopes) slopes_mc.push_back(s * 1e6);
    const model::FpsModel fps = model::aggregate_fps(slopes_mc);

    // Validate the linear model on the kept traces (paper: errors within
    // 0.5% of actual CML values).
    RunningStat xval;
    for (const auto& t : r.trials) {
      if (t.trace.empty()) continue;
      std::vector<double> xs;
      std::vector<double> ys;
      bool past_onset = false;
      for (const auto& s : t.trace) {
        past_onset = past_onset || s.cml > 0;
        if (!past_onset) continue;
        xs.push_back(static_cast<double>(s.cycle));
        ys.push_back(static_cast<double>(s.cml));
      }
      if (xs.size() < 10) continue;
      xval.add(100.0 * model::cross_validate_linear(xs, ys));
    }

    table.add_row({spec.name, format_double(fps.fps, 2),
                   format_double(fps.stddev, 2),
                   std::to_string(fps.num_models),
                   format_double(xval.count() ? xval.mean() : 0.0, 2)});
    rows.push_back({spec.name, fps.fps});
  }

  std::printf("%s\n", table.to_string().c_str());

  std::printf("Paper Table 2 (CML/sec, their testbed) for shape comparison:\n");
  std::printf("  LULESH 0.0147  LAMMPS 0.0025  MCB 0.0562  AMG2013 0.0144  "
              "miniFE 0.0035\n");
  std::printf(
      "Shape to match: MCB highest; LULESH and AMG comparable mid-range and\n"
      "well above LAMMPS and miniFE, inverting the robustness ranking a\n"
      "black-box Fig. 6 analysis would suggest.\n");
  return 0;
}
