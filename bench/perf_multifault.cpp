// Multi-fault / message-corruption campaign throughput (google-benchmark):
// end-to-end trials/sec of run_campaign across the k-fault axis and the
// in-flight corruption axis (DESIGN.md §12).
//
// The k=1, msg=0 rows measure the exact configuration of perf_campaign's
// hot path: the scenario axes must be free when unused (no serialize cost
// without a message hook, no extra sampling draws), so those rows gate
// against BENCH_multifault.json in CI exactly like the campaign bench.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <thread>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"

namespace {

using namespace fprop;

harness::AppHarness& matvec_harness() {
  static harness::AppHarness h = [] {
    harness::ExperimentConfig cfg;
    cfg.nranks = 1;
    cfg.overrides = {{"ITERS", "6"}};
    return harness::AppHarness(apps::get_app("matvec"), cfg);
  }();
  return h;
}

harness::AppHarness& lulesh_harness() {
  static harness::AppHarness h = [] {
    harness::ExperimentConfig cfg;
    cfg.nranks = 4;
    return harness::AppHarness(apps::get_app("lulesh"), cfg);
  }();
  return h;
}

void run_multifault_bench(benchmark::State& state, harness::AppHarness& h,
                          std::size_t trials) {
  harness::CampaignConfig cc;
  cc.trials = trials;
  cc.seed = 42;
  cc.jobs = 1;
  cc.faults_per_run = static_cast<std::size_t>(state.range(0));
  cc.msg_faults_per_run = static_cast<std::size_t>(state.range(1));
  cc.warm_start = true;
  // Ladder capture is a one-time per-harness cost (measured separately in
  // perf_snapshot_ladder); keep it out of the timed region.
  (void)h.snapshot_ladder();
  for (auto _ : state) {
    const harness::CampaignResult r = harness::run_campaign(h, cc);
    benchmark::DoNotOptimize(r.counts.total());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trials));
  state.counters["trials/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * trials),
      benchmark::Counter::kIsRate);
  state.counters["hw_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
}

void BM_MultiFaultMatvec(benchmark::State& state) {
  run_multifault_bench(state, matvec_harness(), 64);
}

void BM_MultiFaultLulesh(benchmark::State& state) {
  run_multifault_bench(state, lulesh_harness(), 16);
}

}  // namespace

// k = 1 (the historical single-fault campaign — the non-regression row),
// 2 and 4; lulesh additionally with the in-flight corruption channel armed
// (matvec at nranks=1 never sends, so msg rows would measure nothing).
BENCHMARK(BM_MultiFaultMatvec)
    ->ArgNames({"k", "msg"})
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})
    ->UseRealTime();
BENCHMARK(BM_MultiFaultLulesh)
    ->ArgNames({"k", "msg"})
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})
    ->Args({1, 1})->Args({4, 1})
    ->UseRealTime();

BENCHMARK_MAIN();
