// Snapshot-ladder cost model (google-benchmark), three layers down:
//
//   1. AddressSpace::save() — CoW refcount sweep vs the full word copy it
//      replaced (BM_SnapshotSaveFullCopy reconstructs the old save_words
//      behaviour as the baseline). This gap is what makes a K-rung ladder
//      of whole-World checkpoints affordable (DESIGN.md §11).
//   2. restore() + first-touch: restore is O(pages); the real CoW cost is
//      deferred to the first post-restore store into each shared page
//      (BM_SnapshotCoWFaultSweep dirties every page, the worst case).
//   3. Harness ladder capture: the one-time golden replay that records the
//      rungs a warm-started campaign resumes from.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/vm/memory.h"

namespace {

using namespace fprop;

vm::AddressSpace make_space(std::uint64_t words) {
  vm::AddressSpace mem;
  mem.alloc_words(words);
  // Touch every word so no page is left in its freshly-allocated state.
  for (std::uint64_t i = 0; i < words; ++i) {
    mem.store(vm::AddressSpace::addr_of(i), i * 0x9E3779B97F4A7C15ull);
  }
  return mem;
}

void BM_SnapshotSaveCoW(benchmark::State& state) {
  const auto words = static_cast<std::uint64_t>(state.range(0));
  vm::AddressSpace mem = make_space(words);
  for (auto _ : state) {
    vm::AddressSpace::Image img = mem.save();
    benchmark::DoNotOptimize(img.words);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(words) * 8);
}

// Baseline: the pre-CoW snapshot — copy every live word into a flat vector.
void BM_SnapshotSaveFullCopy(benchmark::State& state) {
  const auto words = static_cast<std::uint64_t>(state.range(0));
  vm::AddressSpace mem = make_space(words);
  const vm::AddressSpace::Image img = mem.save();
  for (auto _ : state) {
    std::vector<std::uint64_t> copy(img.words);
    std::uint64_t done = 0;
    for (const auto& page : img.pages) {
      const std::uint64_t n =
          std::min<std::uint64_t>(vm::AddressSpace::kPageWords, img.words - done);
      std::memcpy(copy.data() + done, page->w.data(), n * 8);
      done += n;
      if (done == img.words) break;
    }
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(words) * 8);
}

void BM_SnapshotRestore(benchmark::State& state) {
  const auto words = static_cast<std::uint64_t>(state.range(0));
  vm::AddressSpace mem = make_space(words);
  const vm::AddressSpace::Image img = mem.save();
  for (auto _ : state) {
    mem.restore(img);
    benchmark::DoNotOptimize(mem.allocated_words());
  }
}

// Worst-case deferred CoW cost: after a restore every page is shared with
// the image; one store per page clones them all.
void BM_SnapshotCoWFaultSweep(benchmark::State& state) {
  const auto words = static_cast<std::uint64_t>(state.range(0));
  vm::AddressSpace mem = make_space(words);
  const vm::AddressSpace::Image img = mem.save();
  for (auto _ : state) {
    mem.restore(img);
    for (std::uint64_t i = 0; i < words; i += vm::AddressSpace::kPageWords) {
      mem.store(vm::AddressSpace::addr_of(i), i);
    }
    benchmark::DoNotOptimize(mem.allocated_words());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(words) * 8);
}

// One-time harness cost a warm campaign pays before its first trial: replay
// the golden run, capturing the rung checkpoints.
void BM_LadderCaptureMatvec(benchmark::State& state) {
  harness::ExperimentConfig cfg;
  cfg.nranks = 1;
  cfg.overrides = {{"ITERS", "6"}};
  for (auto _ : state) {
    state.PauseTiming();
    const harness::AppHarness h(apps::get_app("matvec"), cfg);
    state.ResumeTiming();
    benchmark::DoNotOptimize(h.snapshot_ladder().size());
  }
  state.counters["rungs"] = static_cast<double>([&] {
    harness::ExperimentConfig c = cfg;
    const harness::AppHarness h(apps::get_app("matvec"), c);
    return h.snapshot_ladder().size();
  }());
}

}  // namespace

// 2^14 words = 128 KiB (4 pages) … 2^20 words = 8 MiB (256 pages).
BENCHMARK(BM_SnapshotSaveCoW)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);
BENCHMARK(BM_SnapshotSaveFullCopy)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);
BENCHMARK(BM_SnapshotRestore)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);
BENCHMARK(BM_SnapshotCoWFaultSweep)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);
BENCHMARK(BM_LadderCaptureMatvec);

BENCHMARK_MAIN();
