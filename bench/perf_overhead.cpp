// Instrumentation-cost ablation (google-benchmark): executed-instruction
// inflation and wall-clock cost of (a) LLFI++ injection instrumentation and
// (b) the FPM dual chain, relative to the uninstrumented program — the
// framework-overhead ablation called out in DESIGN.md.

#include <benchmark/benchmark.h>

#include "fprop/apps/registry.h"
#include "fprop/ir/ir.h"
#include "fprop/passes/passes.h"
#include "fprop/vm/interp.h"

namespace {

using namespace fprop;

enum class Mode { Plain, InjectOnly, Full };

ir::Module build_module(Mode mode) {
  ir::Module m = apps::compile_app(apps::get_app("matvec"), {{"ITERS", "50"}});
  switch (mode) {
    case Mode::Plain:
      break;
    case Mode::InjectOnly:
      (void)passes::run_fault_injection_pass(m);
      break;
    case Mode::Full:
      (void)passes::instrument_module(m);
      break;
  }
  return m;
}

void run_once(const ir::Module& m, fpm::FpmRuntime* fpm,
              benchmark::State& state, std::uint64_t& cycles) {
  vm::InterpConfig cfg;
  vm::Interp interp(m, 0, cfg);
  interp.set_fpm(fpm);
  const vm::RunState rs = interp.run(1ull << 30);
  if (rs != vm::RunState::Done) {
    state.SkipWithError("program did not finish");
  }
  cycles = interp.cycles();
}

void BM_Uninstrumented(benchmark::State& state) {
  const ir::Module m = build_module(Mode::Plain);
  std::uint64_t cycles = 0;
  for (auto _ : state) run_once(m, nullptr, state, cycles);
  state.counters["vm_instructions"] = static_cast<double>(cycles);
}
BENCHMARK(BM_Uninstrumented);

void BM_InjectInstrumented(benchmark::State& state) {
  const ir::Module m = build_module(Mode::InjectOnly);
  std::uint64_t cycles = 0;
  for (auto _ : state) run_once(m, nullptr, state, cycles);
  state.counters["vm_instructions"] = static_cast<double>(cycles);
}
BENCHMARK(BM_InjectInstrumented);

void BM_DualChainInstrumented(benchmark::State& state) {
  const ir::Module m = build_module(Mode::Full);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    fpm::FpmRuntime fpm(0);
    run_once(m, &fpm, state, cycles);
  }
  state.counters["vm_instructions"] = static_cast<double>(cycles);
}
BENCHMARK(BM_DualChainInstrumented);

}  // namespace

BENCHMARK_MAIN();
