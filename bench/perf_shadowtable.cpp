// Shadow-table microbenchmarks (google-benchmark): the FPM runtime checker's
// hot operations — store-check bookkeeping, pristine fetches, and the
// message-header range scan of Fig. 4.

#include <benchmark/benchmark.h>

#include <unordered_map>

#include "fprop/fpm/message.h"
#include "fprop/fpm/runtime.h"
#include "fprop/support/rng.h"

namespace {

using namespace fprop;

// ---------------------------------------------------------------------------
// Mixed lookup/record/heal workload: the op blend a campaign actually drives
// through the shadow table (store checks dominate, with contamination churn).
// Run against both the flat table and a std::unordered_map stand-in with the
// same surface, so the speedup of the open-addressing layout is measurable.

/// The previous ShadowTable implementation, reduced to the three hot ops.
class UnorderedShadowBaseline {
 public:
  std::uint64_t pristine_or(std::uint64_t addr, std::uint64_t actual) const {
    auto it = map_.find(addr);
    return it == map_.end() ? actual : it->second;
  }
  void record(std::uint64_t addr, std::uint64_t pristine) {
    map_[addr] = pristine;
  }
  bool heal(std::uint64_t addr) { return map_.erase(addr) != 0; }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> map_;
};

template <typename Table>
void run_mixed_workload(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Table table;
  // Warm to ~n/2 live entries so lookups hit about half the time.
  for (std::uint64_t i = 0; i < n; i += 2) table.record(4096 + i * 8, i);
  // Pre-generate the op stream so the timed loop measures table probes, not
  // RNG throughput. 60% lookups (store checks), 20% records (contamination),
  // 20% heals (masking overwrites) — the blend a campaign drives.
  struct Op {
    std::uint64_t addr;
    std::uint8_t kind;  // 0 = lookup, 1 = record, 2 = heal
  };
  // 4K ops keep the script itself cache-resident: the measurement should
  // stress the table's locality, not the op stream's.
  Xoshiro256 rng(99);
  std::vector<Op> ops(1 << 12);
  for (Op& op : ops) {
    op.addr = 4096 + rng.next_below(n) * 8;
    const std::uint64_t k = rng.next_below(10);
    op.kind = k < 6 ? 0 : (k < 8 ? 1 : 2);
  }
  std::uint64_t sink = 0;
  for (auto _ : state) {
    // Replay the whole script per iteration so the per-op figure isn't
    // diluted by the benchmark loop itself.
    for (const Op& op : ops) {
      if (op.kind == 0) {
        sink += table.pristine_or(op.addr, op.addr);
      } else if (op.kind == 1) {
        table.record(op.addr, sink);
      } else {
        sink += table.heal(op.addr);
      }
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ops.size()));
}

void BM_ShadowMixedFlat(benchmark::State& state) {
  run_mixed_workload<fpm::ShadowTable>(state);
}
BENCHMARK(BM_ShadowMixedFlat)->Arg(1 << 10)->Arg(1 << 16);

void BM_ShadowMixedUnorderedBaseline(benchmark::State& state) {
  run_mixed_workload<UnorderedShadowBaseline>(state);
}
BENCHMARK(BM_ShadowMixedUnorderedBaseline)->Arg(1 << 10)->Arg(1 << 16);

void BM_ShadowRecordHeal(benchmark::State& state) {
  fpm::ShadowTable table;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t addr = 4096;
  for (auto _ : state) {
    table.record(addr, addr * 3);
    table.heal(addr);
    addr = 4096 + (addr + 8) % (n * 8);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ShadowRecordHeal)->Arg(1 << 10)->Arg(1 << 16);

void BM_ShadowPristineOrHit(benchmark::State& state) {
  fpm::ShadowTable table;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) table.record(4096 + i * 8, i);
  std::uint64_t addr = 4096;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += table.pristine_or(addr, 0);
    addr = 4096 + (addr + 8) % (n * 8);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShadowPristineOrHit)->Arg(1 << 10)->Arg(1 << 16);

void BM_ShadowPristineOrMiss(benchmark::State& state) {
  fpm::ShadowTable table;
  for (std::uint64_t i = 0; i < 1024; ++i) table.record(4096 + i * 8, i);
  std::uint64_t addr = 1 << 24;  // always above the recorded range
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += table.pristine_or(addr, 1);
    addr += 8;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShadowPristineOrMiss);

void BM_MessageHeaderBuild(benchmark::State& state) {
  // Message of `range(0)` words with 10% contaminated: the Fig. 4 sender
  // path (range scan + header construction).
  const auto words = static_cast<std::uint64_t>(state.range(0));
  fpm::ShadowTable table;
  Xoshiro256 rng(7);
  for (std::uint64_t i = 0; i < words / 10; ++i) {
    table.record(4096 + rng.next_below(words) * 8, i);
  }
  for (auto _ : state) {
    auto header = fpm::build_header(table, 4096, words);
    benchmark::DoNotOptimize(header);
  }
  state.SetItemsProcessed(state.iterations() * words);
}
BENCHMARK(BM_MessageHeaderBuild)->Arg(64)->Arg(4096);

void BM_MessageHeaderInstall(benchmark::State& state) {
  const auto words = static_cast<std::uint64_t>(state.range(0));
  fpm::MessageHeader header;
  for (std::uint64_t i = 0; i < words / 10; ++i) {
    header.records.push_back({i * 10, i});
  }
  fpm::ShadowTable receiver;
  for (auto _ : state) {
    fpm::install_header(receiver, 1 << 20, words, header);
  }
  state.SetItemsProcessed(state.iterations() * words);
}
BENCHMARK(BM_MessageHeaderInstall)->Arg(64)->Arg(4096);

void BM_FpmStoreCheck(benchmark::State& state) {
  // on_store with diverging values at rotating addresses — the per-store
  // cost of the runtime checker.
  fpm::FpmRuntime fpm(0);
  std::uint64_t addr = 4096;
  std::uint64_t v = 0;
  for (auto _ : state) {
    fpm.on_store(v, v + 1, addr, addr, v, 0, true);
    addr = 4096 + (addr + 8) % (1 << 16);
    ++v;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FpmStoreCheck);

}  // namespace

BENCHMARK_MAIN();
