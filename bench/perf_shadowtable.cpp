// Shadow-table microbenchmarks (google-benchmark): the FPM runtime checker's
// hot operations — store-check bookkeeping, pristine fetches, and the
// message-header range scan of Fig. 4.

#include <benchmark/benchmark.h>

#include "fprop/fpm/message.h"
#include "fprop/fpm/runtime.h"
#include "fprop/support/rng.h"

namespace {

using namespace fprop;

void BM_ShadowRecordHeal(benchmark::State& state) {
  fpm::ShadowTable table;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t addr = 4096;
  for (auto _ : state) {
    table.record(addr, addr * 3);
    table.heal(addr);
    addr = 4096 + (addr + 8) % (n * 8);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ShadowRecordHeal)->Arg(1 << 10)->Arg(1 << 16);

void BM_ShadowPristineOrHit(benchmark::State& state) {
  fpm::ShadowTable table;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) table.record(4096 + i * 8, i);
  std::uint64_t addr = 4096;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += table.pristine_or(addr, 0);
    addr = 4096 + (addr + 8) % (n * 8);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShadowPristineOrHit)->Arg(1 << 10)->Arg(1 << 16);

void BM_ShadowPristineOrMiss(benchmark::State& state) {
  fpm::ShadowTable table;
  for (std::uint64_t i = 0; i < 1024; ++i) table.record(4096 + i * 8, i);
  std::uint64_t addr = 1 << 24;  // always above the recorded range
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += table.pristine_or(addr, 1);
    addr += 8;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShadowPristineOrMiss);

void BM_MessageHeaderBuild(benchmark::State& state) {
  // Message of `range(0)` words with 10% contaminated: the Fig. 4 sender
  // path (range scan + header construction).
  const auto words = static_cast<std::uint64_t>(state.range(0));
  fpm::ShadowTable table;
  Xoshiro256 rng(7);
  for (std::uint64_t i = 0; i < words / 10; ++i) {
    table.record(4096 + rng.next_below(words) * 8, i);
  }
  for (auto _ : state) {
    auto header = fpm::build_header(table, 4096, words);
    benchmark::DoNotOptimize(header);
  }
  state.SetItemsProcessed(state.iterations() * words);
}
BENCHMARK(BM_MessageHeaderBuild)->Arg(64)->Arg(4096);

void BM_MessageHeaderInstall(benchmark::State& state) {
  const auto words = static_cast<std::uint64_t>(state.range(0));
  fpm::MessageHeader header;
  for (std::uint64_t i = 0; i < words / 10; ++i) {
    header.records.push_back({i * 10, i});
  }
  fpm::ShadowTable receiver;
  for (auto _ : state) {
    fpm::install_header(receiver, 1 << 20, words, header);
  }
  state.SetItemsProcessed(state.iterations() * words);
}
BENCHMARK(BM_MessageHeaderInstall)->Arg(64)->Arg(4096);

void BM_FpmStoreCheck(benchmark::State& state) {
  // on_store with diverging values at rotating addresses — the per-store
  // cost of the runtime checker.
  fpm::FpmRuntime fpm(0);
  std::uint64_t addr = 4096;
  std::uint64_t v = 0;
  for (auto _ : state) {
    fpm.on_store(v, v + 1, addr, addr, v, 0, true);
    addr = 4096 + (addr + 8) % (1 << 16);
    ++v;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FpmStoreCheck);

}  // namespace

BENCHMARK_MAIN();
