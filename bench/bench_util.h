#pragma once

// Shared helpers for the figure/table reproduction harnesses. Each harness
// is a standalone binary that prints the series/rows of one paper artifact;
// sizes are tuned so the full suite runs in minutes on one core, and every
// knob can be overridden: `fig6_outcomes --trials=5000 --seed=7 --app=mcb`.

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace fprop::bench {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg(argv[i]);
      if (arg.rfind("--", 0) != 0) continue;
      arg.remove_prefix(2);
      const auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        kv_.emplace(std::string(arg), "1");
      } else {
        kv_.emplace(std::string(arg.substr(0, eq)),
                    std::string(arg.substr(eq + 1)));
      }
    }
  }

  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    std::uint64_t v = fallback;
    const auto& s = it->second;
    std::from_chars(s.data(), s.data() + s.size(), v);
    return v;
  }

  std::string get_str(const std::string& key, std::string fallback) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? fallback : it->second;
  }

  bool has(const std::string& key) const { return kv_.count(key) != 0; }

 private:
  std::map<std::string, std::string> kv_;
};

inline void print_header(const char* artifact, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s - %s\n", artifact, what);
  std::printf("  (reproduction of 'Understanding the Propagation of Transient\n");
  std::printf("   Errors in HPC Applications', SC'15)\n");
  std::printf("==============================================================\n\n");
}

}  // namespace fprop::bench
