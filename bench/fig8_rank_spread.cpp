// Fig. 8 — Propagation across MPI processes: number of corrupted MPI ranks
// over time for LULESH (immediate spread through per-step halo exchange) and
// miniFE (late but then rapid spread), from a single representative injected
// run each.

#include <algorithm>
#include <cstdio>
#include <optional>

#include "bench_util.h"
#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/support/table.h"

using namespace fprop;

namespace {

/// Returns sorted first-contamination times (global cycles) of a trial in
/// which every rank was eventually contaminated; nullopt otherwise.
std::optional<std::vector<double>> full_spread_times(
    const harness::TrialResult& t) {
  std::vector<double> times;
  for (const auto& at : t.rank_first_contaminated) {
    if (!at.has_value()) return std::nullopt;
    times.push_back(static_cast<double>(*at));
  }
  std::sort(times.begin(), times.end());
  return times;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::size_t max_trials = args.get_u64("trials", 200);
  const std::uint64_t seed = args.get_u64("seed", 42);

  bench::print_header("Figure 8",
                      "propagation of one fault across MPI processes");

  for (const std::string app_name : {"lulesh", "minife"}) {
    const auto& spec = apps::get_app(app_name);
    harness::ExperimentConfig cfg;
    harness::AppHarness h(spec, cfg);

    // Search trials for a run that contaminates every rank (the paper plots
    // exactly such runs).
    std::optional<std::vector<double>> times;
    std::size_t used_trials = 0;
    harness::TrialResult chosen;
    for (std::size_t i = 0; i < max_trials && !times; ++i) {
      Xoshiro256 rng(derive_seed(seed, i));
      const auto plan =
          inject::sample_single_fault(h.golden().dyn_counts, rng);
      harness::TrialResult t = h.run_trial(plan, /*capture_trace=*/true);
      ++used_trials;
      times = full_spread_times(t);
      if (times) chosen = std::move(t);
    }

    std::printf("---- %s (%u ranks, found after %zu trials) ----\n",
                app_name.c_str(), h.nranks(), used_trials);
    if (!times) {
      std::printf("no run contaminated all ranks within %zu trials\n\n",
                  max_trials);
      continue;
    }
    std::printf("fault injected on rank %u at rank-cycle %llu\n",
                chosen.injection.rank,
                static_cast<unsigned long long>(chosen.injection.cycle));
    TableWriter table({"corrupted ranks", "global cycle", "dt from injection"});
    const double t0 = (*times)[0];
    for (std::size_t i = 0; i < times->size(); ++i) {
      table.add_row({std::to_string(i + 1),
                     format_double((*times)[i], 0),
                     format_double((*times)[i] - t0, 0)});
    }
    std::printf("%s", table.to_string().c_str());
    const double spread = times->back() - t0;
    const double total = static_cast<double>(chosen.global_cycles);
    std::printf("full spread took %.0f global cycles (%.1f%% of the run)\n\n",
                spread, 100.0 * spread / total);
  }
  std::printf(
      "Paper shape to match: LULESH contaminates all other ranks almost\n"
      "immediately (halo exchange every time step); miniFE's fault spreads\n"
      "later but then reaches all ranks quickly (dot-product allreduces).\n");
  return 0;
}
