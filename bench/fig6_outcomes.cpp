// Fig. 6 — Outcome of fault injection with a single fault into a single MPI
// process, per application: CO / WO / PEX / Crashed percentages, plus the
// §4.3 CO breakdown into Vanished vs ONA that only the propagation framework
// can measure (the paper reports >98% of CO runs have contaminated memory).

#include <cstdio>

#include "bench_util.h"
#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/support/table.h"

using namespace fprop;

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::size_t trials = args.get_u64("trials", 200);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const std::size_t jobs = args.get_u64("jobs", 0);  // 0 = all hardware threads
  const bool cold = args.has("cold-start");  // disable the snapshot ladder
  const std::string only = args.get_str("app", "");

  bench::print_header("Figure 6",
                      "outcomes of single-fault injection per application");
  std::printf("trials per application: %zu (paper: 5000; --trials=N to change)\n\n",
              trials);

  TableWriter table({"App", "CO%", "WO%", "PEX%", "Crash%", "V%", "ONA%",
                     "CO w/ contaminated memory %"});
  std::vector<std::string> bar_labels;
  std::vector<double> bar_values;

  for (const auto& spec : apps::paper_apps()) {
    if (!only.empty() && spec.name != only) continue;
    harness::ExperimentConfig cfg;
    harness::AppHarness h(spec, cfg);
    harness::CampaignConfig cc;
    cc.trials = trials;
    cc.seed = seed;
    cc.jobs = jobs;
    cc.warm_start = !cold;
    const harness::CampaignResult r = run_campaign(h, cc);
    const auto& c = r.counts;

    const double co = c.pct(c.correct_output());
    const double co_contaminated =
        c.correct_output() == 0
            ? 0.0
            : 100.0 * static_cast<double>(c.ona) /
                  static_cast<double>(c.correct_output());
    table.add_row({spec.name, format_double(co, 1),
                   format_double(c.pct(c.wrong_output), 1),
                   format_double(c.pct(c.pex), 1),
                   format_double(c.pct(c.crashed), 1),
                   format_double(c.pct(c.vanished), 1),
                   format_double(c.pct(c.ona), 1),
                   format_double(co_contaminated, 1)});
    bar_labels.push_back(spec.name + " CO");
    bar_values.push_back(co);
    bar_labels.push_back(spec.name + " WO");
    bar_values.push_back(c.pct(c.wrong_output));
    bar_labels.push_back(spec.name + " PEX");
    bar_values.push_back(c.pct(c.pex));
    bar_labels.push_back(spec.name + " C");
    bar_values.push_back(c.pct(c.crashed));
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("%s\n",
              render_bar_chart(bar_labels, bar_values, 100.0, 50, "%").c_str());
  std::printf(
      "Paper shape to match: LULESH CO>90%% (looks robust) yet almost all of\n"
      "its CO runs carry contaminated memory (last column ~>98%%); LAMMPS/MCB\n"
      "show the largest WO shares; miniFE shows a visible PEX share.\n");
  return 0;
}
