// Distributed campaign throughput (DESIGN.md §15, google-benchmark):
// end-to-end trials/sec of the sharded engine over real fprop-shard worker
// processes vs the in-process engine.
//
//   shards=0  run_campaign at jobs=1 in this process — the exact
//             perf_campaign matvec configuration (nranks=1, ITERS=6,
//             64 trials), the baseline the tentpole >=3x claim is measured
//             against.
//   shards=N  coordinator in this process + N posix_spawn'd fprop-shard
//             workers on socketpairs (--stdio --quiet), each at jobs=1 so
//             the axis under test is process fan-out, not thread count.
//
// Spawn + Setup handshake happen outside the timed region — each worker
// recompiles the app and replays the golden run once per process, a cost a
// real campaign amortizes over its whole length (Coordinator::run is
// callable repeatedly on live connections). The timed region is range
// assignment, execution, wire transfer and the index-ordered merge.
// distributed_campaign_test proves the result is bit-identical to the
// in-process engine, so the shard count may only change wall-clock.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/shard/coord.h"
#include "fprop/shard/spawn.h"

#ifndef FPROP_SHARD_BIN
#define FPROP_SHARD_BIN ""
#endif

namespace {

using namespace fprop;

harness::AppHarness& matvec_harness() {
  static harness::AppHarness h = [] {
    harness::ExperimentConfig cfg;
    cfg.nranks = 1;
    cfg.overrides = {{"ITERS", "6"}};
    return harness::AppHarness(apps::get_app("matvec"), cfg);
  }();
  return h;
}

void BM_ShardMatvec(benchmark::State& state) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  harness::AppHarness& h = matvec_harness();

  harness::CampaignConfig cc;
  cc.trials = 64;
  cc.seed = 42;
  cc.jobs = 1;

  if (shards == 0) {
    for (auto _ : state) {
      const harness::CampaignResult r = harness::run_campaign(h, cc);
      benchmark::DoNotOptimize(r.counts.total());
    }
  } else {
    if (FPROP_SHARD_BIN[0] == '\0') {
      state.SkipWithError(
          "fprop-shard not built (configure with -DFPROP_BUILD_TOOLS=ON)");
      return;
    }
    std::vector<shard::SpawnedShard> procs =
        shard::spawn_local_shards(FPROP_SHARD_BIN, shards, {"--quiet"});
    std::vector<shard::Conn> conns;
    conns.reserve(procs.size());
    for (shard::SpawnedShard& p : procs) conns.push_back(std::move(p.conn));
    {
      shard::Coordinator coord(h, cc, std::move(conns));
      for (auto _ : state) {
        const harness::CampaignResult r = coord.run();
        benchmark::DoNotOptimize(r.counts.total());
      }
    }  // ~Coordinator sends Shutdown to every worker
    for (const shard::SpawnedShard& p : procs) (void)shard::wait_shard(p.pid);
  }

  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cc.trials));
  state.counters["trials/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * cc.trials),
      benchmark::Counter::kIsRate);
  state.counters["hw_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
}

}  // namespace

// shards=0 is the in-process jobs=1 baseline; 1 shard isolates the wire +
// merge overhead (same parallelism, one process hop); 2 and 4 are the
// fan-out the tentpole claim gates on.
BENCHMARK(BM_ShardMatvec)
    ->ArgNames({"shards"})
    ->Args({0})->Args({1})->Args({2})->Args({4})
    ->UseRealTime();

BENCHMARK_MAIN();
