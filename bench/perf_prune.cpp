// Early-outcome pruning + plan-equivalence dedup throughput (DESIGN.md §14,
// google-benchmark): end-to-end trials/sec of run_campaign over a shared
// AppHarness, across the two trial-economy axes:
//
//   prune  0 vs 1 — unpruned trials run every sweep to completion; pruned
//          trials stop at the first golden-ladder rung where the full live
//          state has reconverged to the fault-free run and synthesize the
//          remainder. Bit-identical results either way (prune_test), so the
//          only thing that may change is wall-clock.
//   dedup  0 vs 1 — duplicate canonical plans execute once and copy the
//          representative's result. At campaign scale the duplicate rate is
//          app/seed dependent; matvec's modest dynamic-point count at 64
//          trials gives a realistic non-zero rate.
//
// The headline number the CI gate watches is matvec jobs=1 with both
// economies on vs both off — the tentpole speedup claim.

#include <benchmark/benchmark.h>

#include <cstddef>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/harness/prune.h"

namespace {

using namespace fprop;

harness::AppHarness& matvec_harness() {
  static harness::AppHarness h = [] {
    harness::ExperimentConfig cfg;
    // The registry default (ITERS=3) reproduces the paper's Fig. 1 example;
    // at that size a whole trial is a few hundred instructions and fixed
    // per-trial costs dominate. Pruning targets campaign-scale runs where
    // execution time dominates, so bench the same kernel at HPC-like length.
    cfg.overrides = {{"ITERS", "1200"}};
    // A denser ladder narrows both the warm-start offset (rung before the
    // fault) and the pruned suffix (rung after reconvergence). Capture cost
    // is one-time per harness, amortized across the campaign, and measured
    // separately in perf_snapshot_ladder.
    cfg.snapshot_rungs = 96;
    return harness::AppHarness(apps::get_app("matvec"), cfg);
  }();
  return h;
}

harness::AppHarness& mcb_harness() {
  static harness::AppHarness h = [] {
    harness::ExperimentConfig cfg;
    return harness::AppHarness(apps::get_app("mcb"), cfg);
  }();
  return h;
}

void run_prune_bench(benchmark::State& state, harness::AppHarness& h,
                     std::size_t trials) {
  harness::CampaignConfig cc;
  cc.trials = trials;
  cc.seed = 42;
  cc.jobs = 1;
  cc.prune = state.range(0) != 0;
  cc.dedup = state.range(1) != 0;
  // Ladder capture and golden page hashing are one-time per-harness costs
  // (the former measured in perf_snapshot_ladder); keep both out of the
  // timed region so the numbers report steady-state trial throughput.
  (void)h.snapshot_ladder();
  if (cc.prune) (void)h.prune_prints();
  std::size_t pruned = 0;
  std::size_t deduped = 0;
  for (auto _ : state) {
    const harness::CampaignResult r = harness::run_campaign(h, cc);
    benchmark::DoNotOptimize(r.counts.total());
    pruned = r.pruned_trials;
    deduped = r.deduped_trials;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trials));
  state.counters["trials/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * trials),
      benchmark::Counter::kIsRate);
  // How much of the campaign the economies actually absorbed (not a rate).
  state.counters["pruned"] = static_cast<double>(pruned);
  state.counters["deduped"] = static_cast<double>(deduped);
}

void BM_PruneMatvec(benchmark::State& state) {
  run_prune_bench(state, matvec_harness(), 64);
}

void BM_PruneMcb(benchmark::State& state) {
  run_prune_bench(state, mcb_harness(), 16);
}

}  // namespace

// (prune, dedup): both off = the historical engine; each alone; both on =
// the campaign default.
BENCHMARK(BM_PruneMatvec)
    ->ArgNames({"prune", "dedup"})
    ->Args({0, 0})->Args({1, 0})
    ->Args({0, 1})->Args({1, 1})
    ->UseRealTime();
BENCHMARK(BM_PruneMcb)
    ->ArgNames({"prune", "dedup"})
    ->Args({0, 0})->Args({1, 1})
    ->UseRealTime();

BENCHMARK_MAIN();
