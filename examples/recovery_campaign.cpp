// Detector-driven checkpoint/restart campaign (paper §5's rollback use
// case, closed-loop): the same single-fault trials as fault_campaign, but
// with the recovery subsystem driving each job — a periodic shadow-table
// detector, coordinated checkpoints at clean scans, and a rollback policy
// deciding whether a detection is worth re-executing work for.
//
//   $ ./recovery_campaign [app] [trials] [--jobs=N] [--cold-start]
//                         [--trace-dir=D] [--metrics-out=F]
//   $ ./recovery_campaign matvec 200 --jobs=8
//
// --jobs=N runs trials on N worker threads (default: all hardware threads);
// results are bit-identical at any jobs value.
// --cold-start replays every trial from cycle 0 instead of resuming from
// the golden snapshot ladder (the default; also bit-identical).
// --trace-dir=D writes per-trial Chrome traces + campaign.csv/json into one
// subdirectory per policy row (D/baseline, D/always, ...).
// --metrics-out=F dumps the metrics registry (all four campaigns) to F.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/obs/export.h"

using namespace fprop;

namespace {

struct ObsOptions {
  std::string trace_dir;   // empty = tracing off
  std::string metrics_out; // empty = no metrics dump
};

harness::CampaignResult campaign(const char* app, std::size_t trials,
                                 std::size_t jobs, bool cold,
                                 harness::ExperimentConfig config,
                                 const ObsOptions& obs_opts,
                                 const char* label) {
  harness::AppHarness h(apps::get_app(app), config);
  harness::CampaignConfig cc;
  cc.trials = trials;
  cc.jobs = jobs;
  cc.warm_start = !cold;
  if (!obs_opts.trace_dir.empty()) {
    cc.trace_dir = obs_opts.trace_dir + "/" + label;
  }
  if (!obs_opts.metrics_out.empty()) {
    cc.metrics = &obs::MetricsRegistry::global();
  }
  return run_campaign(h, cc);
}

void print_row(const char* label, const harness::CampaignResult& r) {
  const auto& c = r.counts;
  std::printf("  %-10s CO %5.1f%%  WO %5.1f%%  PEX %5.1f%%  C %5.1f%%"
              "  | recovered %3zu  rollbacks %3zu  wasted %8llu cycles\n",
              label, c.pct(c.correct_output()), c.pct(c.wrong_output),
              c.pct(c.pex), c.pct(c.crashed), r.recovered_trials,
              r.total_rollbacks,
              static_cast<unsigned long long>(r.total_wasted_cycles));
}

}  // namespace

int main(int argc, char** argv) {
  const char* app = "matvec";
  std::size_t trials = 100;
  std::size_t jobs = 0;  // 0 = all hardware threads
  bool cold = false;
  ObsOptions obs_opts;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<std::size_t>(std::atoi(argv[i] + 7));
    } else if (std::strcmp(argv[i], "--cold-start") == 0) {
      cold = true;
    } else if (std::strncmp(argv[i], "--trace-dir=", 12) == 0) {
      obs_opts.trace_dir = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      obs_opts.metrics_out = argv[i] + 14;
    } else if (positional == 0) {
      app = argv[i];
      ++positional;
    } else {
      trials = static_cast<std::size_t>(std::atoi(argv[i]));
      ++positional;
    }
  }

  harness::ExperimentConfig config;
  std::printf("recovery campaign: %s, %zu single-fault trials per policy\n",
              app, trials);

  print_row("baseline", campaign(app, trials, jobs, cold, config, obs_opts, "baseline"));

  config.recovery.enabled = true;
  config.recovery.detector_interval = 0;  // derive golden/16

  config.recovery.policy = model::RollbackPolicy::Always;
  print_row("always", campaign(app, trials, jobs, cold, config, obs_opts, "always"));

  config.recovery.policy = model::RollbackPolicy::Never;
  print_row("never", campaign(app, trials, jobs, cold, config, obs_opts, "never"));

  // FpsModel: tolerate contaminations whose Eq. 3 end-of-run prediction
  // stays below the safe threshold; roll back otherwise (and on crashes).
  config.recovery.policy = model::RollbackPolicy::FpsModel;
  config.recovery.fps = 1e-4;
  config.recovery.cml_threshold = 50.0;
  print_row("fps-model", campaign(app, trials, jobs, cold, config, obs_opts, "fps-model"));

  if (!obs_opts.metrics_out.empty()) {
    obs::write_file(obs_opts.metrics_out,
                    obs::metrics_json(obs::MetricsRegistry::global().snapshot()));
    std::printf("metrics written to %s\n", obs_opts.metrics_out.c_str());
  }

  std::printf("\nthe fps-model row should sit between always (max repair,\n"
              "max waste) and never (no waste, contamination survives).\n");
  return 0;
}
