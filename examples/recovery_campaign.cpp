// Detector-driven checkpoint/restart campaign (paper §5's rollback use
// case, closed-loop): the same sampled-fault trials as fault_campaign, but
// with the recovery subsystem driving each job — a periodic shadow-table
// detector, coordinated checkpoints at clean scans, and a rollback policy
// deciding whether a detection is worth re-executing work for.
//
//   $ ./recovery_campaign [app] [trials] [--jobs=N] [--cold-start]
//                         [--exec-tier=interp|bytecode]
//                         [--faults-per-trial=K] [--corrupt-headers[=M]]
//                         [--no-prune] [--no-dedup]
//                         [--backoff=B] [--trace-dir=D] [--metrics-out=F]
//   $ ./recovery_campaign matvec 200 --jobs=8
//   $ ./recovery_campaign lulesh 100 --corrupt-headers --backoff=2
//
// --jobs=N runs trials on N worker threads (default: all hardware threads);
// results are bit-identical at any jobs value.
// --cold-start replays every trial from cycle 0 instead of resuming from
// the golden snapshot ladder (the default; also bit-identical).
// --faults-per-trial=K samples K register faults per trial (default 1).
// --corrupt-headers[=M] adds M in-flight message faults per trial
// (DESIGN.md §12; default M=1 when given, else 0).
// --backoff=B widens the detector interval by B per rollback (retry with
// backoff; default 1 = fixed grid).
// --no-prune / --no-dedup disable early-outcome pruning and plan-equivalence
// dedup (DESIGN.md §14; both on by default, bit-identical either way). Under
// recovery the probe only fires at clean detector scans, so the pruned
// fraction is typically smaller than in fault_campaign.
// --trace-dir=D writes per-trial Chrome traces + campaign.csv/json into one
// subdirectory per policy row (D/baseline, D/always, ...).
// --metrics-out=F dumps the metrics registry (all four campaigns) to F.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/obs/export.h"

using namespace fprop;

namespace {

struct ObsOptions {
  std::string trace_dir;   // empty = tracing off
  std::string metrics_out; // empty = no metrics dump
};

struct FaultOptions {
  std::size_t faults_per_trial = 1;
  std::size_t msg_faults = 0;
};

// Trial-economy switches (DESIGN.md §14), shared by all four policy rows.
bool g_prune = true;
bool g_dedup = true;

// Execution tier for every trial (DESIGN.md §13); bit-identical either way,
// exposed for A/B timing runs like fault_campaign's flag.
vm::ExecTier g_tier = vm::ExecTier::Bytecode;

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: recovery_campaign [app] [trials] [options]\n"
               "  --jobs=N             worker threads (default: all)\n"
               "  --cold-start         replay every trial from cycle 0\n"
               "  --exec-tier=T        interp | bytecode (default bytecode)\n"
               "  --faults-per-trial=K register faults per trial (default 1)\n"
               "  --corrupt-headers[=M] in-flight message faults per trial\n"
               "                       (default M=1 when given, else 0)\n"
               "  --backoff=B          widen detector interval by B per\n"
               "                       rollback (default 1 = fixed grid)\n"
               "  --no-prune           run every trial to completion\n"
               "  --no-dedup           re-execute duplicate canonical plans\n"
               "  --trace-dir=D        traces + CSV/JSON per policy row\n"
               "  --metrics-out=F      metrics registry JSON\n"
               "  --help               this text\n");
}

harness::CampaignResult campaign(const char* app, std::size_t trials,
                                 std::size_t jobs, bool cold,
                                 const FaultOptions& faults,
                                 harness::ExperimentConfig config,
                                 const ObsOptions& obs_opts,
                                 const char* label) {
  harness::AppHarness h(apps::get_app(app), config);
  harness::CampaignConfig cc;
  cc.trials = trials;
  cc.jobs = jobs;
  cc.warm_start = !cold;
  cc.exec_tier = g_tier;
  cc.faults_per_run = faults.faults_per_trial;
  cc.msg_faults_per_run = faults.msg_faults;
  cc.prune = g_prune;
  cc.dedup = g_dedup;
  if (!obs_opts.trace_dir.empty()) {
    cc.trace_dir = obs_opts.trace_dir + "/" + label;
  }
  if (!obs_opts.metrics_out.empty()) {
    cc.metrics = &obs::MetricsRegistry::global();
  }
  return run_campaign(h, cc);
}

void print_row(const char* label, const harness::CampaignResult& r) {
  const auto& c = r.counts;
  std::printf("  %-10s CO %5.1f%%  WO %5.1f%%  PEX %5.1f%%  C %5.1f%%"
              "  | recovered %3zu  rollbacks %3zu  wasted %8llu cycles",
              label, c.pct(c.correct_output()), c.pct(c.wrong_output),
              c.pct(c.pex), c.pct(c.crashed), r.recovered_trials,
              r.total_rollbacks,
              static_cast<unsigned long long>(r.total_wasted_cycles));
  if (r.pruned_trials > 0 || r.deduped_trials > 0) {
    std::printf("  | pruned %zu  deduped %zu", r.pruned_trials,
                r.deduped_trials);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const char* app = "matvec";
  std::size_t trials = 100;
  std::size_t jobs = 0;  // 0 = all hardware threads
  bool cold = false;
  double backoff = 1.0;
  FaultOptions faults;
  ObsOptions obs_opts;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      usage(stdout);
      return 0;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<std::size_t>(std::atoi(argv[i] + 7));
    } else if (std::strcmp(argv[i], "--cold-start") == 0) {
      cold = true;
    } else if (std::strncmp(argv[i], "--exec-tier=", 12) == 0) {
      const char* t = argv[i] + 12;
      if (std::strcmp(t, "interp") == 0) {
        g_tier = vm::ExecTier::Interp;
      } else if (std::strcmp(t, "bytecode") == 0) {
        g_tier = vm::ExecTier::Bytecode;
      } else {
        std::fprintf(stderr, "recovery_campaign: bad --exec-tier '%s'\n", t);
        usage(stderr);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--faults-per-trial=", 19) == 0) {
      faults.faults_per_trial = static_cast<std::size_t>(std::atoi(argv[i] + 19));
    } else if (std::strcmp(argv[i], "--corrupt-headers") == 0) {
      faults.msg_faults = 1;
    } else if (std::strncmp(argv[i], "--corrupt-headers=", 18) == 0) {
      faults.msg_faults = static_cast<std::size_t>(std::atoi(argv[i] + 18));
    } else if (std::strcmp(argv[i], "--no-prune") == 0) {
      g_prune = false;
    } else if (std::strcmp(argv[i], "--no-dedup") == 0) {
      g_dedup = false;
    } else if (std::strncmp(argv[i], "--backoff=", 10) == 0) {
      backoff = std::atof(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--trace-dir=", 12) == 0) {
      obs_opts.trace_dir = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      obs_opts.metrics_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "recovery_campaign: unknown option '%s'\n",
                   argv[i]);
      usage(stderr);
      return 2;
    } else if (positional == 0) {
      app = argv[i];
      ++positional;
    } else {
      trials = static_cast<std::size_t>(std::atoi(argv[i]));
      ++positional;
    }
  }

  harness::ExperimentConfig config;
  std::printf("recovery campaign: %s, %zu trial(s) per policy "
              "(%zu register + %zu message fault(s) per trial)\n",
              app, trials, faults.faults_per_trial, faults.msg_faults);

  print_row("baseline", campaign(app, trials, jobs, cold, faults, config,
                                 obs_opts, "baseline"));

  config.recovery.enabled = true;
  config.recovery.detector_interval = 0;  // derive golden/16
  config.recovery.rollback_backoff = backoff < 1.0 ? 1.0 : backoff;

  config.recovery.policy = model::RollbackPolicy::Always;
  print_row("always", campaign(app, trials, jobs, cold, faults, config,
                               obs_opts, "always"));

  config.recovery.policy = model::RollbackPolicy::Never;
  print_row("never", campaign(app, trials, jobs, cold, faults, config,
                              obs_opts, "never"));

  // FpsModel: tolerate contaminations whose Eq. 3 end-of-run prediction
  // stays below the safe threshold; roll back otherwise (and on crashes).
  config.recovery.policy = model::RollbackPolicy::FpsModel;
  config.recovery.fps = 1e-4;
  config.recovery.cml_threshold = 50.0;
  print_row("fps-model", campaign(app, trials, jobs, cold, faults, config,
                                  obs_opts, "fps-model"));

  if (!obs_opts.metrics_out.empty()) {
    obs::write_file(obs_opts.metrics_out,
                    obs::metrics_json(obs::MetricsRegistry::global().snapshot()));
    std::printf("metrics written to %s\n", obs_opts.metrics_out.c_str());
  }

  std::printf("\nthe fps-model row should sit between always (max repair,\n"
              "max waste) and never (no waste, contamination survives).\n");
  return 0;
}
