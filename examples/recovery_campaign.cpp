// Detector-driven checkpoint/restart campaign (paper §5's rollback use
// case, closed-loop): the same single-fault trials as fault_campaign, but
// with the recovery subsystem driving each job — a periodic shadow-table
// detector, coordinated checkpoints at clean scans, and a rollback policy
// deciding whether a detection is worth re-executing work for.
//
//   $ ./recovery_campaign [app] [trials]
//   $ ./recovery_campaign matvec 200

#include <cstdio>
#include <cstdlib>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"

using namespace fprop;

namespace {

harness::CampaignResult campaign(const char* app, std::size_t trials,
                                 harness::ExperimentConfig config) {
  harness::AppHarness h(apps::get_app(app), config);
  harness::CampaignConfig cc;
  cc.trials = trials;
  return run_campaign(h, cc);
}

void print_row(const char* label, const harness::CampaignResult& r) {
  const auto& c = r.counts;
  std::printf("  %-10s CO %5.1f%%  WO %5.1f%%  PEX %5.1f%%  C %5.1f%%"
              "  | recovered %3zu  rollbacks %3zu  wasted %8llu cycles\n",
              label, c.pct(c.correct_output()), c.pct(c.wrong_output),
              c.pct(c.pex), c.pct(c.crashed), r.recovered_trials,
              r.total_rollbacks,
              static_cast<unsigned long long>(r.total_wasted_cycles));
}

}  // namespace

int main(int argc, char** argv) {
  const char* app = argc > 1 ? argv[1] : "matvec";
  const std::size_t trials =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 100;

  harness::ExperimentConfig config;
  std::printf("recovery campaign: %s, %zu single-fault trials per policy\n",
              app, trials);

  print_row("baseline", campaign(app, trials, config));

  config.recovery.enabled = true;
  config.recovery.detector_interval = 0;  // derive golden/16

  config.recovery.policy = model::RollbackPolicy::Always;
  print_row("always", campaign(app, trials, config));

  config.recovery.policy = model::RollbackPolicy::Never;
  print_row("never", campaign(app, trials, config));

  // FpsModel: tolerate contaminations whose Eq. 3 end-of-run prediction
  // stays below the safe threshold; roll back otherwise (and on crashes).
  config.recovery.policy = model::RollbackPolicy::FpsModel;
  config.recovery.fps = 1e-4;
  config.recovery.cml_threshold = 50.0;
  print_row("fps-model", campaign(app, trials, config));

  std::printf("\nthe fps-model row should sit between always (max repair,\n"
              "max waste) and never (no waste, contamination survives).\n");
  return 0;
}
