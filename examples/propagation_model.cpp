// Fault propagation modeling (paper §5): collects CML(t) traces from an
// injection campaign, fits the per-run linear models CML(t) = a*t + b,
// aggregates them into the application FPS factor, and uses it the way a
// runtime fault-tolerance system would — to decide whether a detected fault
// warrants rolling back to the last checkpoint (Eq. 3).
//
//   $ ./propagation_model [app] [trials]

#include <cstdio>
#include <cstdlib>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/model/propagation_model.h"

using namespace fprop;

int main(int argc, char** argv) {
  const char* app = argc > 1 ? argv[1] : "mcb";
  const std::size_t trials =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 60;

  harness::ExperimentConfig config;
  harness::AppHarness h(apps::get_app(app), config);
  harness::CampaignConfig cc;
  cc.trials = trials;
  cc.capture_traces = true;
  cc.max_kept_traces = 4;
  const harness::CampaignResult r = run_campaign(h, cc);

  // Per-run models from the kept traces.
  std::printf("per-run propagation models (CML(t) = a*t + b):\n");
  for (const auto& t : r.trials) {
    if (t.trace.empty()) continue;
    const model::TraceModel tm = model::model_trace(t.trace);
    if (!tm.usable) continue;
    std::printf(
        "  outcome=%-3s  a=%.3e CML/cycle  inferred t_f=%.0f  final CML=%g\n",
        harness::outcome_name(t.outcome), tm.rate.a, tm.inferred_tf,
        tm.final_cml);
  }

  const model::FpsModel fps = model::aggregate_fps(r.slopes);
  std::printf("\nFPS factor for %s: %.3e CML/cycle (sdev %.3e, %zu models)\n",
              app, fps.fps, fps.stddev, fps.num_models);

  // Runtime usage: a detector fired at t2 = golden/2; the last clean check
  // was one detection interval earlier. Should we roll back?
  const double t2 = static_cast<double>(h.golden().global_cycles) / 2.0;
  const double t1 = t2 - 250'000.0;
  const double t_end = static_cast<double>(h.golden().global_cycles);
  const double threshold =
      0.01 * static_cast<double>(h.golden().total_allocated_words);

  std::printf("\nscenario: fault detected at t2=%.0f (clean at t1=%.0f)\n",
              t2, t1);
  std::printf("Eq. 3 bound: max CML in (t1,t2) = %.1f, avg = %.1f\n",
              model::max_cml_estimate(fps.fps, t1, t2),
              model::avg_cml_estimate(fps.fps, t1, t2));
  const model::RollbackDecision d =
      model::advise_rollback(fps.fps, t1, t2, t_end, threshold);
  std::printf("predicted CML at end of run: %.1f (safe threshold %.1f)\n",
              d.predicted_cml_at_end, threshold);
  std::printf("advice: %s\n",
              d.rollback ? "ROLL BACK to the last checkpoint"
                         : "keep running (contamination stays below threshold)");
  return 0;
}
