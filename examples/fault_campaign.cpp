// Statistical fault-injection campaign on one proxy application (paper §4):
// runs N trials with uniformly sampled injection points and prints both the
// black-box outcome breakdown (Fig. 6 row) and the propagation-aware V/ONA
// split that only the FPM framework can measure.
//
//   $ ./fault_campaign [app] [trials] [--jobs=N] [--cold-start]
//                      [--exec-tier=interp|bytecode]
//                      [--faults-per-trial=K] [--corrupt-headers[=M]]
//                      [--no-prune] [--no-dedup]
//                      [--trace-dir=D] [--metrics-out=F]
//   $ ./fault_campaign lulesh 200 --jobs=8
//   $ ./fault_campaign lulesh 200 --faults-per-trial=4 --corrupt-headers
//   $ ./fault_campaign matvec 8 --trace-dir=out   # Chrome traces + CSV/JSON
//
// --jobs=N runs trials on N worker threads (default: all hardware threads);
// results are bit-identical at any jobs value.
// --cold-start replays every trial from cycle 0 instead of resuming from
// the golden snapshot ladder (the default; also bit-identical).
// --exec-tier selects the per-trial execution tier (DESIGN.md §13):
// bytecode (the default) runs the compiled direct-threaded dispatch loop,
// interp forces the reference interpreter everywhere. Results are
// bit-identical either way; the flag exists for A/B timing runs.
// --faults-per-trial=K samples K register faults per trial (DESIGN.md §12
// multi-fault scenarios; default 1, 0 = none).
// --corrupt-headers[=M] adds M in-flight message faults per trial (bit
// flips in the serialized FPM piggyback header or payload; default M=1).
// --no-prune disables early-outcome pruning (DESIGN.md §14): every trial
// then runs every sweep to completion. --no-dedup disables plan-equivalence
// dedup, so duplicate canonical plans re-execute. Both are on by default and
// bit-identical to the disabled paths; the flags exist for A/B timing runs.
// --trace-dir=D writes per-trial Chrome trace-event JSON (load in
// chrome://tracing) plus campaign.csv / campaign.json into D.
// --metrics-out=F dumps the process-wide metrics registry as JSON to F.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/obs/export.h"

using namespace fprop;

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: fault_campaign [app] [trials] [options]\n"
               "  --jobs=N             worker threads (default: all)\n"
               "  --cold-start         replay every trial from cycle 0\n"
               "  --exec-tier=T        interp | bytecode (default bytecode)\n"
               "  --faults-per-trial=K register faults per trial (default 1)\n"
               "  --corrupt-headers[=M] in-flight message faults per trial\n"
               "                       (default M=1 when given, else 0)\n"
               "  --no-prune           run every trial to completion\n"
               "  --no-dedup           re-execute duplicate canonical plans\n"
               "  --trace-dir=D        Chrome traces + campaign.csv/json\n"
               "  --metrics-out=F      metrics registry JSON\n"
               "  --help               this text\n");
}

}  // namespace

int main(int argc, char** argv) {
  const char* app = "lulesh";
  std::size_t trials = 100;
  std::size_t jobs = 0;  // 0 = all hardware threads
  std::size_t faults_per_trial = 1;
  std::size_t msg_faults = 0;
  bool cold = false;
  bool prune = true;
  bool dedup = true;
  vm::ExecTier tier = vm::ExecTier::Bytecode;
  std::string trace_dir;
  std::string metrics_out;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      usage(stdout);
      return 0;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<std::size_t>(std::atoi(argv[i] + 7));
    } else if (std::strcmp(argv[i], "--cold-start") == 0) {
      cold = true;
    } else if (std::strncmp(argv[i], "--exec-tier=", 12) == 0) {
      const char* t = argv[i] + 12;
      if (std::strcmp(t, "interp") == 0) {
        tier = vm::ExecTier::Interp;
      } else if (std::strcmp(t, "bytecode") == 0) {
        tier = vm::ExecTier::Bytecode;
      } else {
        std::fprintf(stderr, "fault_campaign: bad --exec-tier '%s'\n", t);
        usage(stderr);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--faults-per-trial=", 19) == 0) {
      faults_per_trial = static_cast<std::size_t>(std::atoi(argv[i] + 19));
    } else if (std::strcmp(argv[i], "--corrupt-headers") == 0) {
      msg_faults = 1;
    } else if (std::strncmp(argv[i], "--corrupt-headers=", 18) == 0) {
      msg_faults = static_cast<std::size_t>(std::atoi(argv[i] + 18));
    } else if (std::strcmp(argv[i], "--no-prune") == 0) {
      prune = false;
    } else if (std::strcmp(argv[i], "--no-dedup") == 0) {
      dedup = false;
    } else if (std::strncmp(argv[i], "--trace-dir=", 12) == 0) {
      trace_dir = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "fault_campaign: unknown option '%s'\n", argv[i]);
      usage(stderr);
      return 2;
    } else if (positional == 0) {
      app = argv[i];
      ++positional;
    } else {
      trials = static_cast<std::size_t>(std::atoi(argv[i]));
      ++positional;
    }
  }

  harness::ExperimentConfig config;
  harness::AppHarness h(apps::get_app(app), config);
  std::printf("campaign: %s, %u ranks, %zu trials (%zu register fault%s",
              app, h.nranks(), trials, faults_per_trial,
              faults_per_trial == 1 ? "" : "s");
  if (msg_faults > 0) {
    std::printf(" + %zu message fault%s", msg_faults,
                msg_faults == 1 ? "" : "s");
  }
  std::printf(" per trial)\n");

  harness::CampaignConfig cc;
  cc.trials = trials;
  cc.capture_traces = false;
  cc.faults_per_run = faults_per_trial;
  cc.msg_faults_per_run = msg_faults;
  cc.jobs = jobs;
  cc.warm_start = !cold;
  cc.exec_tier = tier;
  cc.prune = prune;
  cc.dedup = dedup;
  cc.trace_dir = trace_dir;
  if (!metrics_out.empty()) cc.metrics = &obs::MetricsRegistry::global();
  const harness::CampaignResult r = run_campaign(h, cc);
  const auto& c = r.counts;

  if (prune || dedup) {
    std::printf("trial economy: %zu pruned at a golden rung, %zu deduped "
                "onto an earlier plan\n",
                r.pruned_trials, r.deduped_trials);
  }

  if (!metrics_out.empty()) {
    obs::write_file(metrics_out,
                    obs::metrics_json(obs::MetricsRegistry::global().snapshot()));
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!trace_dir.empty()) {
    std::printf("traces + campaign.csv/json written to %s/\n",
                trace_dir.c_str());
  }

  std::printf("\nblack-box view (output variation only):\n");
  std::printf("  correct output (CO): %5.1f%%\n", c.pct(c.correct_output()));
  std::printf("  wrong output   (WO): %5.1f%%\n", c.pct(c.wrong_output));
  std::printf("  prolonged     (PEX): %5.1f%%\n", c.pct(c.pex));
  std::printf("  crashed         (C): %5.1f%%\n", c.pct(c.crashed));

  std::printf("\npropagation-aware view (the paper's contribution):\n");
  std::printf("  vanished        (V): %5.1f%%  (masked before reaching memory)\n",
              c.pct(c.vanished));
  std::printf("  output-unaffected (ONA): %3.1f%%  (memory contaminated!)\n",
              c.pct(c.ona));
  if (c.correct_output() > 0) {
    std::printf("  => %.1f%% of the 'correct' runs carry corrupted state\n",
                100.0 * static_cast<double>(c.ona) /
                    static_cast<double>(c.correct_output()));
  }

  if (msg_faults > 0) {
    std::printf("\nmessage-corruption channel (DESIGN.md §12):\n");
    std::printf("  in-flight faults fired: %zu\n", r.total_msg_injected);
    std::printf("  headers quarantined:    %llu (%llu records)\n",
                static_cast<unsigned long long>(r.total_headers_quarantined),
                static_cast<unsigned long long>(
                    r.total_header_records_quarantined));
  }

  double max_pct = 0.0;
  for (double p : r.max_contaminated_pct) max_pct = std::max(max_pct, p);
  std::printf("\nworst-case contamination: %.2f%% of application memory\n",
              max_pct);

  // Trace effects back to source constructs (what LLFI exists for): which
  // instrumented instructions are the most dangerous to flip?
  const auto sites = harness::site_breakdown(h, r);
  std::printf("\nmost vulnerable injection sites (by WO+crash rate):\n");
  std::size_t shown = 0;
  for (const auto& s : sites) {
    if (s.severity() == 0.0 || shown >= 5) break;
    std::printf("  %5.1f%% bad (%zu trials)  @%s: %s\n", 100.0 * s.severity(),
                s.counts.total(), s.function.c_str(), s.consumer.c_str());
    ++shown;
  }
  return 0;
}
