// Bring your own application: write an MPI program in MiniC, hand it to the
// framework, and get the full vulnerability analysis — no registry entry
// needed. The example app is a 1D heat-diffusion solver with halo exchange.
//
//   $ ./custom_app [trials]

#include <cstdio>
#include <cstdlib>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/model/propagation_model.h"

using namespace fprop;

// Jacobi heat diffusion on a distributed rod; the kind of app a framework
// user would study. Anything expressible in MiniC works.
constexpr const char* kHeatSource = R"mc(
fn main() {
  var rank: int = mpi_rank();
  var size: int = mpi_size();
  var n: int = 32;
  var steps: int = 60;
  var u: float* = alloc_float(n + 2);    // ghost cells at 0 and n+1
  var un: float* = alloc_float(n + 2);
  var sb: float* = alloc_float(1);
  var rb: float* = alloc_float(1);
  var acc: float* = alloc_float(1);
  var tot: float* = alloc_float(1);

  for (var i: int = 1; i <= n; i = i + 1) {
    u[i] = sin(0.1 * float(rank * n + i)) + 1.0;
  }

  for (var s: int = 0; s < steps; s = s + 1) {
    if (rank > 0) { sb[0] = u[1]; mpi_send_f(rank - 1, 1, sb, 1); }
    if (rank < size - 1) { sb[0] = u[n]; mpi_send_f(rank + 1, 2, sb, 1); }
    u[0] = u[1];
    u[n + 1] = u[n];
    if (rank > 0) { mpi_recv_f(rank - 1, 2, rb, 1); u[0] = rb[0]; }
    if (rank < size - 1) { mpi_recv_f(rank + 1, 1, rb, 1); u[n + 1] = rb[0]; }
    for (var i: int = 1; i <= n; i = i + 1) {
      un[i] = u[i] + 0.25 * (u[i - 1] - 2.0 * u[i] + u[i + 1]);
    }
    for (var i: int = 1; i <= n; i = i + 1) { u[i] = un[i]; }
  }

  acc[0] = 0.0;
  for (var i: int = 1; i <= n; i = i + 1) { acc[0] = acc[0] + u[i]; }
  mpi_allreduce_sum_f(acc, tot, 1);
  output_f(tot[0]);                       // total heat (conserved-ish)
  for (var i: int = 1; i <= n; i = i + 4) { output_f(u[i]); }
}
)mc";

int main(int argc, char** argv) {
  const std::size_t trials =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 80;

  apps::AppSpec spec;
  spec.name = "heat";
  spec.description = "user-provided 1D heat diffusion";
  spec.source = kHeatSource;
  spec.default_nranks = 4;

  harness::ExperimentConfig config;
  harness::AppHarness h(spec, config);
  std::printf("custom app '%s': %u ranks, golden ran %llu instructions,\n"
              "%zu injection sites instrumented\n",
              spec.name.c_str(), h.nranks(),
              static_cast<unsigned long long>(h.golden().global_cycles),
              h.sites().size());

  harness::CampaignConfig cc;
  cc.trials = trials;
  cc.capture_traces = true;
  cc.max_kept_traces = 2;
  const harness::CampaignResult r = run_campaign(h, cc);
  const auto& c = r.counts;
  std::printf("\n%zu trials: V=%zu ONA=%zu WO=%zu PEX=%zu C=%zu\n",
              c.total(), c.vanished, c.ona, c.wrong_output, c.pex, c.crashed);

  const model::FpsModel fps = model::aggregate_fps(r.slopes);
  std::printf("heat-diffusion FPS factor: %.3e CML/cycle (%zu models)\n",
              fps.fps, fps.num_models);
  std::printf(
      "\nDiffusion smooths perturbations, so expect a large ONA share\n"
      "(contaminated state, correct-looking output) — exactly the class of\n"
      "silent corruption the paper's framework exists to expose.\n");
  return 0;
}
