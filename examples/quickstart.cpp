// Quickstart: the paper's Fig. 1 example end-to-end.
//
// Compiles the iterative matrix-vector MiniC app, instruments it with the
// LLFI++ fault-injection pass and the FPM dual-chain pass, runs it fault
// free, then re-runs it with a single planned bit flip and reports how the
// fault propagated through the memory state.
//
//   $ ./quickstart

#include <cstdio>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/inject/injector.h"

using namespace fprop;

int main() {
  // 1. Load + compile + instrument the app; the golden run doubles as the
  //    injection-point profiling run.
  const apps::AppSpec& spec = apps::get_app("matvec");
  harness::ExperimentConfig config;
  config.nranks = 1;
  harness::AppHarness harness(spec, config);

  std::printf("app: %s (%s)\n", spec.name.c_str(), spec.description.c_str());
  std::printf("instrumented injection sites: %zu, dynamic points: %llu\n",
              harness.sites().size(),
              static_cast<unsigned long long>(
                  harness.golden().total_dyn_points));
  std::printf("golden outputs (A^3 x0, Fig. 1a):");
  for (double v : harness.golden().outputs) std::printf(" %g", v);
  std::printf("\n\n");

  // 2. Inject one bit flip and classify the run. Some flips are masked
  //    (Table 1 of the paper), so sweep dynamic points until one visibly
  //    contaminates the memory state.
  harness::TrialResult trial;
  for (std::uint64_t dyn = 0; dyn < harness.golden().total_dyn_points;
       ++dyn) {
    const auto plan = inject::InjectionPlan::single(/*rank=*/0, dyn,
                                                    /*bit=*/1);
    trial = harness.run_trial(plan, /*capture_trace=*/true);
    if (trial.total_cml_peak > 0) break;
  }

  std::printf("injected: %s\n", trial.injected ? "yes" : "no");
  if (trial.injected) {
    std::printf("  site #%lld (%s), bit %u, cycle %llu\n",
                static_cast<long long>(trial.injection.site_id),
                harness.sites()[static_cast<std::size_t>(
                                    trial.injection.site_id)]
                    .consumer.c_str(),
                trial.injection.bit,
                static_cast<unsigned long long>(trial.injection.cycle));
  }
  std::printf("outcome: %s\n", harness::outcome_name(trial.outcome));
  std::printf("corrupted memory locations (peak): %llu (%.1f%% of state)\n",
              static_cast<unsigned long long>(trial.total_cml_peak),
              trial.contaminated_pct);

  std::printf("\nCML(t) trace:\n");
  for (const auto& s : trial.trace) {
    std::printf("  t=%8llu  CML=%llu\n",
                static_cast<unsigned long long>(s.cycle),
                static_cast<unsigned long long>(s.cml));
  }
  std::printf(
      "\nThe black-box view would only see the final outputs; the shadow\n"
      "table shows how far the fault actually spread (paper Fig. 1).\n");
  return 0;
}
