// Cross-process propagation (paper Fig. 4 + Fig. 8): injects one fault
// into a random rank of an MPI application and reports when each of the
// other ranks became contaminated through message passing, plus the pristine
// values that the receivers' shadow tables recovered from message headers.
//
//   $ ./cross_rank [app] [max_trials]

#include <cstdio>
#include <cstdlib>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"

using namespace fprop;

int main(int argc, char** argv) {
  const char* app = argc > 1 ? argv[1] : "lulesh";
  const std::size_t max_trials =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 100;

  harness::ExperimentConfig config;
  harness::AppHarness h(apps::get_app(app), config);
  std::printf("searching for a run whose fault reaches every one of the %u "
              "ranks...\n", h.nranks());

  for (std::size_t i = 0; i < max_trials; ++i) {
    Xoshiro256 rng(derive_seed(2024, i));
    const auto plan = inject::sample_single_fault(h.golden().dyn_counts, rng);
    const harness::TrialResult t = h.run_trial(plan, /*capture_trace=*/true);
    if (!t.injected || t.contaminated_ranks < h.nranks()) continue;

    std::printf("\ntrial %zu: fault on rank %u at cycle %llu -> outcome %s\n",
                i, t.injection.rank,
                static_cast<unsigned long long>(t.injection.cycle),
                harness::outcome_name(t.outcome));
    std::printf("rank  first contaminated at (global cycles)\n");
    for (std::uint32_t r = 0; r < h.nranks(); ++r) {
      const auto& at = t.rank_first_contaminated[r];
      std::printf("  %2u  %12llu%s\n", r,
                  static_cast<unsigned long long>(at.value_or(0)),
                  r == t.injection.rank ? "   <- injected here" : "");
    }
    std::printf(
        "\nContamination crossed ranks inside MPI messages: each message\n"
        "carries a header of <displacement, pristine value> records that\n"
        "the receiver rebases into its own address space (Fig. 4).\n");
    return 0;
  }
  std::printf("no full-spread run found in %zu trials; try more.\n",
              max_trials);
  return 1;
}
