#include "fprop/minic/ast.h"

#include "fprop/minic/lexer.h"
#include "fprop/support/error.h"

namespace fprop::minic {

const char* type_kind_name(TypeKind t) noexcept {
  switch (t) {
    case TypeKind::Int: return "int";
    case TypeKind::Float: return "float";
    case TypeKind::IntPtr: return "int*";
    case TypeKind::FloatPtr: return "float*";
  }
  return "?";
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Program run() {
    Program prog;
    while (!at(Tok::End)) {
      prog.functions.push_back(parse_function());
    }
    return prog;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(std::size_t off = 1) const {
    return toks_[std::min(pos_ + off, toks_.size() - 1)];
  }
  bool at(Tok k) const { return cur().kind == k; }

  [[noreturn]] void fail(const std::string& msg) const {
    throw CompileError(msg, cur().line, cur().column);
  }

  Token eat(Tok k) {
    if (!at(k)) {
      fail(std::string("expected ") + token_name(k) + ", found " +
           token_name(cur().kind));
    }
    return toks_[pos_++];
  }

  bool accept(Tok k) {
    if (at(k)) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Bounds recursive-descent depth. Without it, pathological nesting
  /// ("((((…", "{{{{…", "!!!!…") recurses once per character and overflows
  /// the native stack — a crash no caller can catch. Fuzzer-found; corpus
  /// regression tests in tests/fuzz/corpus keep it fixed.
  static constexpr int kMaxNesting = 200;
  struct DepthGuard {
    explicit DepthGuard(Parser& p) : p_(p) {
      if (++p_.depth_ > kMaxNesting) p_.fail("nesting too deep");
    }
    ~DepthGuard() { --p_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser& p_;
  };

  TypeKind parse_type() {
    if (accept(Tok::KwInt)) {
      return accept(Tok::Star) ? TypeKind::IntPtr : TypeKind::Int;
    }
    if (accept(Tok::KwFloat)) {
      return accept(Tok::Star) ? TypeKind::FloatPtr : TypeKind::Float;
    }
    fail("expected type");
  }

  FuncDecl parse_function() {
    FuncDecl f;
    f.line = cur().line;
    eat(Tok::KwFn);
    f.name = eat(Tok::Ident).text;
    eat(Tok::LParen);
    if (!at(Tok::RParen)) {
      do {
        Param p;
        p.name = eat(Tok::Ident).text;
        eat(Tok::Colon);
        p.type = parse_type();
        f.params.push_back(std::move(p));
      } while (accept(Tok::Comma));
    }
    eat(Tok::RParen);
    if (accept(Tok::Arrow)) {
      f.has_return = true;
      f.return_type = parse_type();
    }
    f.body = parse_block();
    return f;
  }

  std::vector<StmtPtr> parse_block() {
    eat(Tok::LBrace);
    std::vector<StmtPtr> stmts;
    while (!at(Tok::RBrace)) stmts.push_back(parse_stmt());
    eat(Tok::RBrace);
    return stmts;
  }

  StmtPtr make_stmt(Stmt::Kind kind) {
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->line = cur().line;
    s->column = cur().column;
    return s;
  }

  StmtPtr parse_stmt() {
    const DepthGuard guard(*this);
    switch (cur().kind) {
      case Tok::KwVar: return parse_var_decl(true);
      case Tok::KwIf: return parse_if();
      case Tok::KwWhile: return parse_while();
      case Tok::KwFor: return parse_for();
      case Tok::KwReturn: {
        auto s = make_stmt(Stmt::Kind::Return);
        eat(Tok::KwReturn);
        if (!at(Tok::Semi)) s->expr = parse_expr();
        eat(Tok::Semi);
        return s;
      }
      case Tok::KwBreak: {
        auto s = make_stmt(Stmt::Kind::Break);
        eat(Tok::KwBreak);
        eat(Tok::Semi);
        return s;
      }
      case Tok::KwContinue: {
        auto s = make_stmt(Stmt::Kind::Continue);
        eat(Tok::KwContinue);
        eat(Tok::Semi);
        return s;
      }
      case Tok::LBrace: {
        auto s = make_stmt(Stmt::Kind::Block);
        s->body = parse_block();
        return s;
      }
      default: {
        StmtPtr s = parse_simple_stmt();
        eat(Tok::Semi);
        return s;
      }
    }
  }

  /// Assignment, indexed assignment, or expression statement (no trailing
  /// ';' — shared between statement position and for-headers).
  StmtPtr parse_simple_stmt() {
    if (at(Tok::KwVar)) return parse_var_decl(false);
    if (at(Tok::Ident) && peek().kind == Tok::Assign) {
      auto s = make_stmt(Stmt::Kind::Assign);
      s->name = eat(Tok::Ident).text;
      eat(Tok::Assign);
      s->expr = parse_expr();
      return s;
    }
    // Indexed assignment requires lookahead past a bracketed expression;
    // parse an expression and reinterpret `base[i]` followed by `=`.
    ExprPtr e = parse_expr();
    if (e->kind == Expr::Kind::Index && at(Tok::Assign)) {
      eat(Tok::Assign);
      auto s = make_stmt(Stmt::Kind::IndexAssign);
      s->index_base = std::move(e->lhs);
      s->index = std::move(e->rhs);
      s->expr = parse_expr();
      return s;
    }
    auto s = make_stmt(Stmt::Kind::ExprStmt);
    s->expr = std::move(e);
    return s;
  }

  StmtPtr parse_var_decl(bool eat_semi) {
    auto s = make_stmt(Stmt::Kind::VarDecl);
    eat(Tok::KwVar);
    s->name = eat(Tok::Ident).text;
    eat(Tok::Colon);
    s->var_type = parse_type();
    if (accept(Tok::Assign)) s->expr = parse_expr();
    if (eat_semi) eat(Tok::Semi);
    return s;
  }

  StmtPtr parse_if() {
    auto s = make_stmt(Stmt::Kind::If);
    eat(Tok::KwIf);
    eat(Tok::LParen);
    s->expr = parse_expr();
    eat(Tok::RParen);
    s->body = parse_block();
    if (accept(Tok::KwElse)) {
      if (at(Tok::KwIf)) {
        s->else_body.push_back(parse_if());
      } else {
        s->else_body = parse_block();
      }
    }
    return s;
  }

  StmtPtr parse_while() {
    auto s = make_stmt(Stmt::Kind::While);
    eat(Tok::KwWhile);
    eat(Tok::LParen);
    s->expr = parse_expr();
    eat(Tok::RParen);
    s->body = parse_block();
    return s;
  }

  StmtPtr parse_for() {
    auto s = make_stmt(Stmt::Kind::For);
    eat(Tok::KwFor);
    eat(Tok::LParen);
    if (!at(Tok::Semi)) s->for_init = parse_simple_stmt();
    eat(Tok::Semi);
    if (!at(Tok::Semi)) s->expr = parse_expr();
    eat(Tok::Semi);
    if (!at(Tok::RParen)) s->for_step = parse_simple_stmt();
    eat(Tok::RParen);
    s->body = parse_block();
    return s;
  }

  // --- expressions (precedence climbing) ---------------------------------

  ExprPtr make_expr(Expr::Kind kind) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = cur().line;
    e->column = cur().column;
    return e;
  }

  ExprPtr parse_expr() { return parse_bin(0); }

  static int precedence(Tok t) {
    switch (t) {
      case Tok::PipePipe: return 1;
      case Tok::AmpAmp: return 2;
      case Tok::Pipe: return 3;
      case Tok::Caret: return 4;
      case Tok::Amp: return 5;
      case Tok::EqEq: case Tok::NotEq: return 6;
      case Tok::Lt: case Tok::Le: case Tok::Gt: case Tok::Ge: return 7;
      case Tok::Shl: case Tok::Shr: return 8;
      case Tok::Plus: case Tok::Minus: return 9;
      case Tok::Star: case Tok::Slash: case Tok::Percent: return 10;
      default: return -1;
    }
  }

  static BinOp binop_of(Tok t) {
    switch (t) {
      case Tok::PipePipe: return BinOp::LogOr;
      case Tok::AmpAmp: return BinOp::LogAnd;
      case Tok::Pipe: return BinOp::Or;
      case Tok::Caret: return BinOp::Xor;
      case Tok::Amp: return BinOp::And;
      case Tok::EqEq: return BinOp::Eq;
      case Tok::NotEq: return BinOp::Ne;
      case Tok::Lt: return BinOp::Lt;
      case Tok::Le: return BinOp::Le;
      case Tok::Gt: return BinOp::Gt;
      case Tok::Ge: return BinOp::Ge;
      case Tok::Shl: return BinOp::Shl;
      case Tok::Shr: return BinOp::Shr;
      case Tok::Plus: return BinOp::Add;
      case Tok::Minus: return BinOp::Sub;
      case Tok::Star: return BinOp::Mul;
      case Tok::Slash: return BinOp::Div;
      case Tok::Percent: return BinOp::Rem;
      default: return BinOp::Add;
    }
  }

  ExprPtr parse_bin(int min_prec) {
    ExprPtr lhs = parse_unary();
    for (;;) {
      const int prec = precedence(cur().kind);
      if (prec < min_prec || prec < 0) break;
      const Tok op = cur().kind;
      ++pos_;
      ExprPtr rhs = parse_bin(prec + 1);
      auto e = make_expr(Expr::Kind::Binary);
      e->bin_op = binop_of(op);
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    const DepthGuard guard(*this);
    if (accept(Tok::Minus)) {
      auto e = make_expr(Expr::Kind::Unary);
      e->un_op = UnOp::Neg;
      e->lhs = parse_unary();
      return e;
    }
    if (accept(Tok::Tilde)) {
      auto e = make_expr(Expr::Kind::Unary);
      e->un_op = UnOp::Not;
      e->lhs = parse_unary();
      return e;
    }
    if (accept(Tok::Bang)) {
      auto e = make_expr(Expr::Kind::Unary);
      e->un_op = UnOp::LogNot;
      e->lhs = parse_unary();
      return e;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    for (;;) {
      if (accept(Tok::LBracket)) {
        auto idx = make_expr(Expr::Kind::Index);
        idx->lhs = std::move(e);
        idx->rhs = parse_expr();
        eat(Tok::RBracket);
        e = std::move(idx);
      } else {
        break;
      }
    }
    return e;
  }

  ExprPtr parse_primary() {
    if (at(Tok::IntLit)) {
      auto e = make_expr(Expr::Kind::IntLit);
      e->int_val = eat(Tok::IntLit).int_val;
      return e;
    }
    if (at(Tok::FloatLit)) {
      auto e = make_expr(Expr::Kind::FloatLit);
      e->float_val = eat(Tok::FloatLit).float_val;
      return e;
    }
    if (accept(Tok::LParen)) {
      ExprPtr e = parse_expr();
      eat(Tok::RParen);
      return e;
    }
    // Casts spelled as type-call: int(e), float(e).
    if (at(Tok::KwInt) || at(Tok::KwFloat)) {
      const bool to_int = at(Tok::KwInt);
      ++pos_;
      auto e = make_expr(to_int ? Expr::Kind::CastInt : Expr::Kind::CastFloat);
      eat(Tok::LParen);
      e->lhs = parse_expr();
      eat(Tok::RParen);
      return e;
    }
    if (at(Tok::Ident)) {
      if (peek().kind == Tok::LParen) {
        auto e = make_expr(Expr::Kind::Call);
        e->name = eat(Tok::Ident).text;
        eat(Tok::LParen);
        if (!at(Tok::RParen)) {
          do {
            e->args.push_back(parse_expr());
          } while (accept(Tok::Comma));
        }
        eat(Tok::RParen);
        return e;
      }
      auto e = make_expr(Expr::Kind::Var);
      e->name = eat(Tok::Ident).text;
      return e;
    }
    fail(std::string("unexpected ") + token_name(cur().kind) +
         " in expression");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  int depth_ = 0;  ///< current parse_stmt/parse_unary nesting (DepthGuard)
};

}  // namespace

Program parse(std::string_view source) {
  return Parser(lex(source)).run();
}

}  // namespace fprop::minic
