#include "fprop/minic/lexer.h"

#include <cctype>
#include <charconv>
#include <unordered_map>

#include "fprop/support/error.h"

namespace fprop::minic {

namespace {

const std::unordered_map<std::string_view, Tok> kKeywords = {
    {"fn", Tok::KwFn},         {"var", Tok::KwVar},
    {"if", Tok::KwIf},         {"else", Tok::KwElse},
    {"while", Tok::KwWhile},   {"for", Tok::KwFor},
    {"return", Tok::KwReturn}, {"break", Tok::KwBreak},
    {"continue", Tok::KwContinue}, {"int", Tok::KwInt},
    {"float", Tok::KwFloat},
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skip_ws();
      Token t = next();
      const bool end = t.kind == Tok::End;
      out.push_back(std::move(t));
      if (end) break;
    }
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    // Report the start of the offending token, not the scan position.
    throw CompileError(msg, tok_line_, tok_col_);
  }

  bool eof() const noexcept { return pos_ >= src_.size(); }
  char peek(std::size_t off = 0) const noexcept {
    return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws() {
    for (;;) {
      while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) {
        advance();
      }
      if (peek() == '/' && peek(1) == '/') {
        while (!eof() && peek() != '\n') advance();
        continue;
      }
      break;
    }
  }

  Token tok(Tok kind) const {
    Token t;
    t.kind = kind;
    t.line = tok_line_;
    t.column = tok_col_;
    return t;
  }

  Token next() {
    tok_line_ = line_;
    tok_col_ = col_;
    if (eof()) return tok(Tok::End);
    const char c = advance();
    switch (c) {
      case '(': return tok(Tok::LParen);
      case ')': return tok(Tok::RParen);
      case '{': return tok(Tok::LBrace);
      case '}': return tok(Tok::RBrace);
      case '[': return tok(Tok::LBracket);
      case ']': return tok(Tok::RBracket);
      case ',': return tok(Tok::Comma);
      case ';': return tok(Tok::Semi);
      case ':': return tok(Tok::Colon);
      case '+': return tok(Tok::Plus);
      case '*': return tok(Tok::Star);
      case '/': return tok(Tok::Slash);
      case '%': return tok(Tok::Percent);
      case '~': return tok(Tok::Tilde);
      case '^': return tok(Tok::Caret);
      case '-':
        if (peek() == '>') { advance(); return tok(Tok::Arrow); }
        return tok(Tok::Minus);
      case '&':
        if (peek() == '&') { advance(); return tok(Tok::AmpAmp); }
        return tok(Tok::Amp);
      case '|':
        if (peek() == '|') { advance(); return tok(Tok::PipePipe); }
        return tok(Tok::Pipe);
      case '=':
        if (peek() == '=') { advance(); return tok(Tok::EqEq); }
        return tok(Tok::Assign);
      case '!':
        if (peek() == '=') { advance(); return tok(Tok::NotEq); }
        return tok(Tok::Bang);
      case '<':
        if (peek() == '=') { advance(); return tok(Tok::Le); }
        if (peek() == '<') { advance(); return tok(Tok::Shl); }
        return tok(Tok::Lt);
      case '>':
        if (peek() == '=') { advance(); return tok(Tok::Ge); }
        if (peek() == '>') { advance(); return tok(Tok::Shr); }
        return tok(Tok::Gt);
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) return number(c);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return ident(c);
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  Token number(char first) {
    std::string text(1, first);
    bool is_float = false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      text.push_back(advance());
    }
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      is_float = true;
      text.push_back(advance());
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        text.push_back(advance());
      }
    }
    if (peek() == 'e' || peek() == 'E') {
      is_float = true;
      text.push_back(advance());
      if (peek() == '+' || peek() == '-') text.push_back(advance());
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("malformed exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        text.push_back(advance());
      }
    }
    Token t = tok(is_float ? Tok::FloatLit : Tok::IntLit);
    if (is_float) {
      // stod throws for literals whose magnitude leaves the double range
      // (e.g. "1e999999999"); surface that as a diagnostic, not an escape.
      try {
        t.float_val = std::stod(text);
      } catch (const std::exception&) {
        fail("float literal out of range");
      }
    } else {
      auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                       t.int_val);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        fail("integer literal out of range");
      }
    }
    return t;
  }

  Token ident(char first) {
    std::string text(1, first);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
      text.push_back(advance());
    }
    auto it = kKeywords.find(text);
    if (it != kKeywords.end()) return tok(it->second);
    Token t = tok(Tok::Ident);
    t.text = std::move(text);
    return t;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  int tok_line_ = 1;
  int tok_col_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source) { return Lexer(source).run(); }

const char* token_name(Tok t) noexcept {
  switch (t) {
    case Tok::End: return "<end>";
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "integer literal";
    case Tok::FloatLit: return "float literal";
    case Tok::KwFn: return "'fn'";
    case Tok::KwVar: return "'var'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwFor: return "'for'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwBreak: return "'break'";
    case Tok::KwContinue: return "'continue'";
    case Tok::KwInt: return "'int'";
    case Tok::KwFloat: return "'float'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Colon: return "':'";
    case Tok::Arrow: return "'->'";
    case Tok::Assign: return "'='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Amp: return "'&'";
    case Tok::Pipe: return "'|'";
    case Tok::Caret: return "'^'";
    case Tok::Tilde: return "'~'";
    case Tok::Shl: return "'<<'";
    case Tok::Shr: return "'>>'";
    case Tok::AmpAmp: return "'&&'";
    case Tok::PipePipe: return "'||'";
    case Tok::Bang: return "'!'";
    case Tok::EqEq: return "'=='";
    case Tok::NotEq: return "'!='";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
  }
  return "?";
}

}  // namespace fprop::minic
