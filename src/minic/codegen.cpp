#include <optional>
#include <unordered_map>

#include "fprop/ir/builder.h"
#include "fprop/ir/verifier.h"
#include "fprop/minic/compile.h"
#include "fprop/support/error.h"

namespace fprop::minic {

namespace {

using ir::Opcode;
using ir::Reg;

ir::Type lower_type(TypeKind t) {
  switch (t) {
    case TypeKind::Int: return ir::Type::I64;
    case TypeKind::Float: return ir::Type::F64;
    case TypeKind::IntPtr:
    case TypeKind::FloatPtr: return ir::Type::Ptr;
  }
  return ir::Type::I64;
}

bool is_ptr(TypeKind t) {
  return t == TypeKind::IntPtr || t == TypeKind::FloatPtr;
}

TypeKind element_type(TypeKind t) {
  return t == TypeKind::IntPtr ? TypeKind::Int : TypeKind::Float;
}

struct Value {
  Reg reg = ir::kNoReg;
  TypeKind type = TypeKind::Int;
};

struct Builtin {
  ir::IntrinsicId id{};
  std::vector<TypeKind> params;
  std::optional<TypeKind> result;
};

const std::unordered_map<std::string, Builtin>& builtins() {
  using I = ir::IntrinsicId;
  using T = TypeKind;
  static const std::unordered_map<std::string, Builtin> table = {
      {"sqrt", {I::Sqrt, {T::Float}, T::Float}},
      {"fabs", {I::Fabs, {T::Float}, T::Float}},
      {"exp", {I::Exp, {T::Float}, T::Float}},
      {"log", {I::Log, {T::Float}, T::Float}},
      {"sin", {I::Sin, {T::Float}, T::Float}},
      {"cos", {I::Cos, {T::Float}, T::Float}},
      {"pow", {I::Pow, {T::Float, T::Float}, T::Float}},
      {"floor", {I::Floor, {T::Float}, T::Float}},
      {"fmin", {I::FMin, {T::Float, T::Float}, T::Float}},
      {"fmax", {I::FMax, {T::Float, T::Float}, T::Float}},
      {"imin", {I::IMin, {T::Int, T::Int}, T::Int}},
      {"imax", {I::IMax, {T::Int, T::Int}, T::Int}},
      {"alloc_int", {I::Alloc, {T::Int}, T::IntPtr}},
      {"alloc_float", {I::Alloc, {T::Int}, T::FloatPtr}},
      {"output_f", {I::OutputF, {T::Float}, std::nullopt}},
      {"output_i", {I::OutputI, {T::Int}, std::nullopt}},
      {"report_iters", {I::ReportIters, {T::Int}, std::nullopt}},
      {"rand01", {I::Rand01, {}, T::Float}},
      {"clock", {I::Clock, {}, T::Int}},
      {"mpi_rank", {I::MpiRank, {}, T::Int}},
      {"mpi_size", {I::MpiSize, {}, T::Int}},
      {"mpi_send_f", {I::MpiSendF, {T::Int, T::Int, T::FloatPtr, T::Int},
                      std::nullopt}},
      {"mpi_recv_f", {I::MpiRecvF, {T::Int, T::Int, T::FloatPtr, T::Int},
                      std::nullopt}},
      {"mpi_isend_f", {I::MpiIsendF, {T::Int, T::Int, T::FloatPtr, T::Int},
                       T::Int}},
      {"mpi_irecv_f", {I::MpiIrecvF, {T::Int, T::Int, T::FloatPtr, T::Int},
                       T::Int}},
      {"mpi_wait", {I::MpiWait, {T::Int}, std::nullopt}},
      {"mpi_allreduce_sum_f", {I::MpiAllreduceSumF,
                               {T::FloatPtr, T::FloatPtr, T::Int},
                               std::nullopt}},
      {"mpi_allreduce_max_f", {I::MpiAllreduceMaxF,
                               {T::FloatPtr, T::FloatPtr, T::Int},
                               std::nullopt}},
      {"mpi_bcast_f", {I::MpiBcastF, {T::Int, T::FloatPtr, T::Int},
                       std::nullopt}},
      {"mpi_barrier", {I::MpiBarrier, {}, std::nullopt}},
      {"mpi_abort", {I::MpiAbort, {T::Int}, std::nullopt}},
  };
  return table;
}

class FunctionCodegen {
 public:
  FunctionCodegen(ir::Module& m, const FuncDecl& decl,
                  const std::unordered_map<std::string, const FuncDecl*>& decls)
      : m_(m), decl_(decl), decls_(decls),
        func_(*m.find(decl.name)), b_(func_) {}

  void run() {
    push_scope();
    for (std::size_t i = 0; i < decl_.params.size(); ++i) {
      declare(decl_.params[i].name, decl_.params[i].type, func_.params[i],
              decl_.line, 0);
    }
    gen_stmts(decl_.body);
    pop_scope();
    if (!b_.block_terminated()) {
      if (decl_.has_return) {
        // Fall-off of a value-returning function: return a zero of the
        // declared type. This keeps unreachable join blocks well-formed;
        // reachable fall-offs are an app bug the tests would catch.
        b_.ret(zero_of(decl_.return_type));
      } else {
        b_.ret();
      }
    }
  }

 private:
  struct LoopCtx {
    ir::BlockId break_target;
    ir::BlockId continue_target;
  };

  [[noreturn]] void fail(const std::string& msg, int line, int col) const {
    throw CompileError("in fn " + decl_.name + ": " + msg, line, col);
  }

  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }

  void declare(const std::string& name, TypeKind type, Reg reg, int line,
               int col) {
    auto& scope = scopes_.back();
    if (scope.count(name) != 0) {
      fail("redeclaration of '" + name + "'", line, col);
    }
    scope.emplace(name, Value{reg, type});
  }

  const Value* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  Reg zero_of(TypeKind t) {
    if (t == TypeKind::Float) return b_.const_f(0.0);
    if (is_ptr(t)) {
      // Null pointer: a fresh ptr register that is never written — the VM
      // zero-initializes registers, and so does the dual-chain twin.
      return b_.new_reg(ir::Type::Ptr);
    }
    return b_.const_i(0);
  }

  void gen_stmts(const std::vector<StmtPtr>& stmts) {
    for (const auto& s : stmts) {
      if (b_.block_terminated()) {
        // Unreachable trailing statements (code after return/break).
        break;
      }
      gen_stmt(*s);
    }
  }

  void gen_stmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::VarDecl: {
        const Reg home = b_.new_reg(lower_type(s.var_type));
        declare(s.name, s.var_type, home, s.line, s.column);
        if (s.expr) {
          const Value v = gen_expr(*s.expr);
          expect_type(v.type, s.var_type, *s.expr);
          b_.mov_to(home, v.reg);
        }
        break;
      }
      case Stmt::Kind::Assign: {
        const Value* var = lookup(s.name);
        if (var == nullptr) {
          fail("assignment to undeclared '" + s.name + "'", s.line, s.column);
        }
        const Value v = gen_expr(*s.expr);
        expect_type(v.type, var->type, *s.expr);
        b_.mov_to(var->reg, v.reg);
        break;
      }
      case Stmt::Kind::IndexAssign: {
        const Value base = gen_expr(*s.index_base);
        if (!is_ptr(base.type)) {
          fail("indexed assignment into non-pointer", s.line, s.column);
        }
        const Value idx = gen_expr(*s.index);
        expect_type(idx.type, TypeKind::Int, *s.index);
        const Value v = gen_expr(*s.expr);
        expect_type(v.type, element_type(base.type), *s.expr);
        const Reg addr = b_.ptr_add(base.reg, idx.reg);
        b_.store(v.reg, addr);
        break;
      }
      case Stmt::Kind::If: {
        const Value cond = gen_expr(*s.expr);
        expect_type(cond.type, TypeKind::Int, *s.expr);
        const ir::BlockId then_b = b_.new_block();
        const ir::BlockId join_b = b_.new_block();
        const ir::BlockId else_b =
            s.else_body.empty() ? join_b : b_.new_block();
        b_.br(cond.reg, then_b, else_b);
        b_.set_insert_point(then_b);
        push_scope();
        gen_stmts(s.body);
        pop_scope();
        if (!b_.block_terminated()) b_.jmp(join_b);
        if (!s.else_body.empty()) {
          b_.set_insert_point(else_b);
          push_scope();
          gen_stmts(s.else_body);
          pop_scope();
          if (!b_.block_terminated()) b_.jmp(join_b);
        }
        b_.set_insert_point(join_b);
        break;
      }
      case Stmt::Kind::While: {
        const ir::BlockId header = b_.new_block();
        const ir::BlockId body = b_.new_block();
        const ir::BlockId exit = b_.new_block();
        b_.jmp(header);
        b_.set_insert_point(header);
        const Value cond = gen_expr(*s.expr);
        expect_type(cond.type, TypeKind::Int, *s.expr);
        b_.br(cond.reg, body, exit);
        b_.set_insert_point(body);
        loops_.push_back({exit, header});
        push_scope();
        gen_stmts(s.body);
        pop_scope();
        loops_.pop_back();
        if (!b_.block_terminated()) b_.jmp(header);
        b_.set_insert_point(exit);
        break;
      }
      case Stmt::Kind::For: {
        push_scope();  // for-init scope
        if (s.for_init) gen_stmt(*s.for_init);
        const ir::BlockId header = b_.new_block();
        const ir::BlockId body = b_.new_block();
        const ir::BlockId step = b_.new_block();
        const ir::BlockId exit = b_.new_block();
        b_.jmp(header);
        b_.set_insert_point(header);
        if (s.expr) {
          const Value cond = gen_expr(*s.expr);
          expect_type(cond.type, TypeKind::Int, *s.expr);
          b_.br(cond.reg, body, exit);
        } else {
          b_.jmp(body);
        }
        b_.set_insert_point(body);
        loops_.push_back({exit, step});
        push_scope();
        gen_stmts(s.body);
        pop_scope();
        loops_.pop_back();
        if (!b_.block_terminated()) b_.jmp(step);
        b_.set_insert_point(step);
        if (s.for_step) gen_stmt(*s.for_step);
        if (!b_.block_terminated()) b_.jmp(header);
        b_.set_insert_point(exit);
        pop_scope();
        break;
      }
      case Stmt::Kind::Return: {
        if (decl_.has_return) {
          if (!s.expr) fail("missing return value", s.line, s.column);
          const Value v = gen_expr(*s.expr);
          expect_type(v.type, decl_.return_type, *s.expr);
          b_.ret(v.reg);
        } else {
          if (s.expr) fail("void function returns a value", s.line, s.column);
          b_.ret();
        }
        break;
      }
      case Stmt::Kind::Break: {
        if (loops_.empty()) fail("'break' outside loop", s.line, s.column);
        b_.jmp(loops_.back().break_target);
        break;
      }
      case Stmt::Kind::Continue: {
        if (loops_.empty()) fail("'continue' outside loop", s.line, s.column);
        b_.jmp(loops_.back().continue_target);
        break;
      }
      case Stmt::Kind::ExprStmt:
        gen_call_or_expr(*s.expr);
        break;
      case Stmt::Kind::Block:
        push_scope();
        gen_stmts(s.body);
        pop_scope();
        break;
    }
  }

  void expect_type(TypeKind have, TypeKind want, const Expr& at) const {
    if (have != want) {
      fail(std::string("type mismatch: have ") + type_kind_name(have) +
               ", want " + type_kind_name(want),
           at.line, at.column);
    }
  }

  /// Expression statement: allows void calls; discards any value.
  void gen_call_or_expr(const Expr& e) {
    if (e.kind == Expr::Kind::Call) {
      (void)gen_call(e, /*allow_void=*/true);
    } else {
      (void)gen_expr(e);
    }
  }

  Value gen_expr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::IntLit:
        return {b_.const_i(e.int_val), TypeKind::Int};
      case Expr::Kind::FloatLit:
        return {b_.const_f(e.float_val), TypeKind::Float};
      case Expr::Kind::Var: {
        const Value* v = lookup(e.name);
        if (v == nullptr) fail("unknown variable '" + e.name + "'", e.line,
                               e.column);
        return *v;
      }
      case Expr::Kind::CastInt: {
        const Value v = gen_expr(*e.lhs);
        if (v.type == TypeKind::Int) return v;
        expect_type(v.type, TypeKind::Float, *e.lhs);
        return {b_.f2i(v.reg), TypeKind::Int};
      }
      case Expr::Kind::CastFloat: {
        const Value v = gen_expr(*e.lhs);
        if (v.type == TypeKind::Float) return v;
        expect_type(v.type, TypeKind::Int, *e.lhs);
        return {b_.i2f(v.reg), TypeKind::Float};
      }
      case Expr::Kind::Index: {
        const Value base = gen_expr(*e.lhs);
        if (!is_ptr(base.type)) fail("indexing non-pointer", e.line, e.column);
        const Value idx = gen_expr(*e.rhs);
        expect_type(idx.type, TypeKind::Int, *e.rhs);
        const Reg addr = b_.ptr_add(base.reg, idx.reg);
        const TypeKind elem = element_type(base.type);
        return {b_.load(lower_type(elem), addr), elem};
      }
      case Expr::Kind::Unary: {
        const Value v = gen_expr(*e.lhs);
        switch (e.un_op) {
          case UnOp::Neg:
            if (v.type == TypeKind::Float) {
              return {b_.unop(Opcode::NegF, v.reg), TypeKind::Float};
            }
            expect_type(v.type, TypeKind::Int, *e.lhs);
            return {b_.unop(Opcode::NegI, v.reg), TypeKind::Int};
          case UnOp::Not:
            expect_type(v.type, TypeKind::Int, *e.lhs);
            return {b_.unop(Opcode::NotI, v.reg), TypeKind::Int};
          case UnOp::LogNot: {
            expect_type(v.type, TypeKind::Int, *e.lhs);
            const Reg z = b_.const_i(0);
            return {b_.binop(Opcode::EqI, v.reg, z), TypeKind::Int};
          }
        }
        break;
      }
      case Expr::Kind::Binary:
        return gen_binary(e);
      case Expr::Kind::Call: {
        auto v = gen_call(e, /*allow_void=*/false);
        return *v;  // gen_call faults on void in value context
      }
    }
    fail("unsupported expression", e.line, e.column);
  }

  Value gen_binary(const Expr& e) {
    const Value a = gen_expr(*e.lhs);
    const Value b = gen_expr(*e.rhs);
    const auto op = e.bin_op;

    // Pointer offset: `p + i` (word units), preserving the pointee type.
    if (op == BinOp::Add && is_ptr(a.type) && b.type == TypeKind::Int) {
      return {b_.ptr_add(a.reg, b.reg), a.type};
    }

    // Logical ops: both operands int; normalized, non-short-circuit
    // (documented in docs/minic.md).
    if (op == BinOp::LogAnd || op == BinOp::LogOr) {
      expect_type(a.type, TypeKind::Int, *e.lhs);
      expect_type(b.type, TypeKind::Int, *e.rhs);
      const Reg z1 = b_.const_i(0);
      const Reg na = b_.binop(Opcode::NeI, a.reg, z1);
      const Reg z2 = b_.const_i(0);
      const Reg nb = b_.binop(Opcode::NeI, b.reg, z2);
      const Opcode o = op == BinOp::LogAnd ? Opcode::AndI : Opcode::OrI;
      return {b_.binop(o, na, nb), TypeKind::Int};
    }

    if (a.type != b.type) {
      fail(std::string("operand type mismatch: ") + type_kind_name(a.type) +
               " vs " + type_kind_name(b.type),
           e.line, e.column);
    }

    const bool flt = a.type == TypeKind::Float;
    const bool ptr = is_ptr(a.type);
    auto pick = [&](Opcode io, Opcode fo) {
      if (flt) return fo;
      expect_type(a.type, TypeKind::Int, *e.lhs);
      return io;
    };

    switch (op) {
      case BinOp::Add: return {b_.binop(pick(Opcode::AddI, Opcode::AddF),
                                        a.reg, b.reg), a.type};
      case BinOp::Sub: return {b_.binop(pick(Opcode::SubI, Opcode::SubF),
                                        a.reg, b.reg), a.type};
      case BinOp::Mul: return {b_.binop(pick(Opcode::MulI, Opcode::MulF),
                                        a.reg, b.reg), a.type};
      case BinOp::Div: return {b_.binop(pick(Opcode::DivI, Opcode::DivF),
                                        a.reg, b.reg), a.type};
      case BinOp::Rem:
        expect_type(a.type, TypeKind::Int, *e.lhs);
        return {b_.binop(Opcode::RemI, a.reg, b.reg), TypeKind::Int};
      case BinOp::And:
      case BinOp::Or:
      case BinOp::Xor:
      case BinOp::Shl:
      case BinOp::Shr: {
        expect_type(a.type, TypeKind::Int, *e.lhs);
        const Opcode o = op == BinOp::And   ? Opcode::AndI
                         : op == BinOp::Or  ? Opcode::OrI
                         : op == BinOp::Xor ? Opcode::XorI
                         : op == BinOp::Shl ? Opcode::ShlI
                                            : Opcode::ShrI;
        return {b_.binop(o, a.reg, b.reg), TypeKind::Int};
      }
      case BinOp::Eq:
      case BinOp::Ne: {
        Opcode o;
        if (ptr) {
          o = op == BinOp::Eq ? Opcode::EqP : Opcode::NeP;
        } else if (flt) {
          o = op == BinOp::Eq ? Opcode::EqF : Opcode::NeF;
        } else {
          o = op == BinOp::Eq ? Opcode::EqI : Opcode::NeI;
        }
        return {b_.binop(o, a.reg, b.reg), TypeKind::Int};
      }
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge: {
        if (ptr) fail("ordered comparison of pointers", e.line, e.column);
        Opcode o;
        switch (op) {
          case BinOp::Lt: o = flt ? Opcode::LtF : Opcode::LtI; break;
          case BinOp::Le: o = flt ? Opcode::LeF : Opcode::LeI; break;
          case BinOp::Gt: o = flt ? Opcode::GtF : Opcode::GtI; break;
          default: o = flt ? Opcode::GeF : Opcode::GeI; break;
        }
        return {b_.binop(o, a.reg, b.reg), TypeKind::Int};
      }
      default:
        break;
    }
    fail("unsupported binary operator", e.line, e.column);
  }

  std::optional<Value> gen_call(const Expr& e, bool allow_void) {
    // Builtins first, then user functions.
    auto bit = builtins().find(e.name);
    if (bit != builtins().end()) {
      const Builtin& bi = bit->second;
      if (e.args.size() != bi.params.size()) {
        fail("wrong argument count for builtin '" + e.name + "'", e.line,
             e.column);
      }
      std::vector<Reg> args;
      args.reserve(e.args.size());
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        const Value v = gen_expr(*e.args[i]);
        expect_type(v.type, bi.params[i], *e.args[i]);
        args.push_back(v.reg);
      }
      const Reg r = b_.intrinsic(bi.id, std::move(args));
      if (!bi.result.has_value()) {
        if (!allow_void) {
          fail("void builtin '" + e.name + "' used as a value", e.line,
               e.column);
        }
        return std::nullopt;
      }
      return Value{r, *bi.result};
    }

    auto dit = decls_.find(e.name);
    if (dit == decls_.end()) {
      fail("unknown function '" + e.name + "'", e.line, e.column);
    }
    const FuncDecl& callee = *dit->second;
    if (e.args.size() != callee.params.size()) {
      fail("wrong argument count for '" + e.name + "'", e.line, e.column);
    }
    std::vector<Reg> args;
    args.reserve(e.args.size());
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      const Value v = gen_expr(*e.args[i]);
      expect_type(v.type, callee.params[i].type, *e.args[i]);
      args.push_back(v.reg);
    }
    const ir::FuncId callee_id = m_.find(e.name)->id;
    const ir::Type rt =
        callee.has_return ? lower_type(callee.return_type) : ir::Type::Void;
    const Reg r = b_.call(callee_id, std::move(args), rt);
    if (!callee.has_return) {
      if (!allow_void) {
        fail("void function '" + e.name + "' used as a value", e.line,
             e.column);
      }
      return std::nullopt;
    }
    return Value{r, callee.return_type};
  }

  ir::Module& m_;
  const FuncDecl& decl_;
  const std::unordered_map<std::string, const FuncDecl*>& decls_;
  ir::Function& func_;
  ir::Builder b_;
  std::vector<std::unordered_map<std::string, Value>> scopes_;
  std::vector<LoopCtx> loops_;
};

}  // namespace

ir::Module codegen(const Program& program) {
  ir::Module m;
  std::unordered_map<std::string, const FuncDecl*> decls;
  for (const auto& f : program.functions) {
    if (builtins().count(f.name) != 0) {
      throw CompileError("function '" + f.name + "' shadows a builtin",
                         f.line, 0);
    }
    if (decls.count(f.name) != 0) {
      throw CompileError("duplicate function '" + f.name + "'", f.line, 0);
    }
    decls.emplace(f.name, &f);
    ir::Function& fn = m.add_function(
        f.name, f.has_return ? lower_type(f.return_type) : ir::Type::Void);
    for (const auto& p : f.params) fn.add_param(lower_type(p.type));
  }
  auto* main_fn = m.find("main");
  if (main_fn == nullptr) throw CompileError("program has no fn main()", 0, 0);
  if (!main_fn->params.empty() || main_fn->ret_type != ir::Type::Void) {
    throw CompileError("fn main() must take no parameters and return nothing",
                       0, 0);
  }
  m.entry = main_fn->id;
  for (const auto& f : program.functions) {
    FunctionCodegen(m, f, decls).run();
  }
  ir::verify(m);
  return m;
}

ir::Module compile(std::string_view source) {
  return codegen(parse(source));
}

}  // namespace fprop::minic
