#include "fprop/inject/injector.h"

#include <algorithm>
#include <string>

#include "fprop/support/error.h"
#include "fprop/vm/interp.h"

namespace fprop::inject {

void InjectionPlan::validate() const {
  for (const auto& [rank, faults] : faults_by_rank) {
    for (std::size_t i = 0; i < faults.size(); ++i) {
      const FaultRecord& f = faults[i];
      if (f.bit >= 64) {
        throw Error("injection plan: bit " + std::to_string(f.bit) +
                    " on rank " + std::to_string(rank) +
                    " is outside any 64-bit register");
      }
      if (i == 0) continue;
      const FaultRecord& prev = faults[i - 1];
      if (f.dyn_index < prev.dyn_index) {
        throw Error("injection plan: rank " + std::to_string(rank) +
                    " faults not sorted by dyn_index (" +
                    std::to_string(prev.dyn_index) + " before " +
                    std::to_string(f.dyn_index) + ")");
      }
      if (f.dyn_index == prev.dyn_index && f.bit == prev.bit) {
        throw Error("injection plan: duplicate fault on rank " +
                    std::to_string(rank) + " (dyn_index " +
                    std::to_string(f.dyn_index) + ", bit " +
                    std::to_string(f.bit) + ")");
      }
      // Same dyn_index with a *different* bit is a legitimate multi-bit
      // upset at one dynamic point; only the exact duplicate is rejected.
      // Sortedness within an index: ascending bit keeps the dup check local.
      if (f.dyn_index == prev.dyn_index && f.bit < prev.bit) {
        throw Error("injection plan: rank " + std::to_string(rank) +
                    " same-index faults not sorted by bit at dyn_index " +
                    std::to_string(f.dyn_index));
      }
    }
  }
  for (const auto& [rank, faults] : msg_faults_by_rank) {
    for (std::size_t i = 0; i < faults.size(); ++i) {
      const MsgFaultRecord& f = faults[i];
      if (f.bit >= 64) {
        throw Error("injection plan: message-fault bit " +
                    std::to_string(f.bit) + " on rank " +
                    std::to_string(rank) + " is outside any 64-bit word");
      }
      if (i == 0) continue;
      const MsgFaultRecord& prev = faults[i - 1];
      if (f.msg_index < prev.msg_index) {
        throw Error("injection plan: rank " + std::to_string(rank) +
                    " message faults not sorted by msg_index");
      }
      if (f.msg_index == prev.msg_index && f.target == prev.target &&
          f.word == prev.word && f.bit == prev.bit) {
        throw Error("injection plan: duplicate message fault on rank " +
                    std::to_string(rank) + " (msg_index " +
                    std::to_string(f.msg_index) + ")");
      }
    }
  }
}

InjectionPlan InjectionPlan::single(std::uint32_t rank,
                                    std::uint64_t dyn_index,
                                    std::uint32_t bit) {
  InjectionPlan p;
  p.faults_by_rank[rank].push_back({dyn_index, bit});
  p.validate();
  return p;
}

std::size_t InjectionPlan::total_faults() const noexcept {
  std::size_t n = 0;
  for (const auto& [rank, v] : faults_by_rank) n += v.size();
  return n;
}

std::size_t InjectionPlan::total_msg_faults() const noexcept {
  std::size_t n = 0;
  for (const auto& [rank, v] : msg_faults_by_rank) n += v.size();
  return n;
}

InjectorRuntime::InjectorRuntime(InjectionPlan plan) {
  plan.validate();  // guarantees per-rank sortedness — no re-sort needed
  for (auto& [rank, faults] : plan.faults_by_rank) {
    rank_state(rank).pending = std::move(faults);
  }
  for (auto& [rank, faults] : plan.msg_faults_by_rank) {
    rank_state(rank).msg_pending = std::move(faults);
  }
}

InjectorRuntime::PerRank& InjectorRuntime::rank_state(std::uint32_t rank) {
  return ranks_[rank];  // default-constructed (counting only) if absent
}

std::uint64_t InjectorRuntime::on_fim_inj(vm::Interp& self,
                                          std::uint64_t value,
                                          std::int64_t site_id,
                                          unsigned width) {
  PerRank& st = rank_state(self.rank());
  const std::uint64_t index = st.counter++;
  if (record_widths_) {
    st.widths.push_back(static_cast<std::uint8_t>(width == 0 ? 64 : width));
  }
  // Fire *every* pending fault at this dynamic point: a k-fault plan may put
  // several flips on one execution (a multi-bit upset), and they compose.
  std::uint64_t flipped = value;
  while (st.next < st.pending.size() &&
         st.pending[st.next].dyn_index == index) {
    const FaultRecord& rec = st.pending[st.next++];
    // Flips must land within the live value's type width (i1 registers have
    // a single meaningful bit): a plan that targets bit 3 of a boolean is a
    // planning error, not a simulated fault — silently wrapping it would
    // inject a different experiment than the one recorded in the plan.
    //
    // The check only binds on the FIRST fault of the trial: plans are
    // width-sampled against the golden profile, and once any fault (register
    // or in-flight) has fired, control flow may have diverged so that this
    // dyn_index now names a different, narrower instruction. That is the
    // multi-fault experiment working as designed, so later flips reduce
    // into the live width deterministically instead of aborting the trial.
    const unsigned w = width == 0 ? 64 : width;
    std::uint32_t bit = static_cast<std::uint32_t>(rec.bit);
    if (bit >= w) {
      if (events_.empty() && msg_events_.empty()) {
        throw Error("injection plan: bit " + std::to_string(rec.bit) +
                    " exceeds the " + std::to_string(w) +
                    "-bit width of the value at site " +
                    std::to_string(site_id) + " (rank " +
                    std::to_string(self.rank()) + ", dynamic index " +
                    std::to_string(index) + ")");
      }
      bit %= w;
    }
    const std::uint64_t before = flipped;
    flipped ^= 1ull << bit;
    events_.push_back({self.rank(), site_id, index, bit, self.cycles(),
                       before, flipped});
    FPROP_OBS_EMIT(recorder_, obs::EventKind::Injection, self.rank(),
                   self.cycles(), static_cast<std::uint64_t>(site_id),
                   bit, before ^ flipped);
  }
  return flipped;
}

vm::FastInjectState InjectorRuntime::fim_fast_state(std::uint32_t rank) {
  // Profiling runs record a width byte per dynamic point inside on_fim_inj;
  // the fast tier must not skip those calls.
  if (record_widths_) return {};
  PerRank& st = rank_state(rank);  // std::map: node-stable pointer
  vm::FastInjectState s;
  s.counter = &st.counter;
  s.stop_before = st.next < st.pending.size() ? st.pending[st.next].dyn_index
                                              : ~0ull;
  return s;
}

void InjectorRuntime::on_message(std::uint32_t sender, std::uint64_t msg_index,
                                 std::uint64_t cycle,
                                 std::vector<std::uint64_t>& header_words,
                                 std::vector<std::uint64_t>& payload) {
  auto it = ranks_.find(sender);
  if (it == ranks_.end()) return;
  PerRank& st = it->second;
  // Message indices arrive strictly increasing per sender; a restored prefix
  // (warm start) shows up as the first call carrying an index past earlier
  // pending faults — skip them, they can no longer fire.
  while (st.msg_next < st.msg_pending.size() &&
         st.msg_pending[st.msg_next].msg_index < msg_index) {
    ++st.msg_next;
  }
  while (st.msg_next < st.msg_pending.size() &&
         st.msg_pending[st.msg_next].msg_index == msg_index) {
    const MsgFaultRecord& rec = st.msg_pending[st.msg_next++];
    auto& words =
        rec.target == MsgFaultTarget::Header ? header_words : payload;
    if (words.empty()) continue;  // zero-length span: nothing to strike
    const std::uint64_t w = rec.word % words.size();
    words[w] ^= 1ull << rec.bit;
    msg_events_.push_back({sender, msg_index, rec.target, w, rec.bit, cycle});
    FPROP_OBS_EMIT(recorder_, obs::EventKind::MsgCorrupt, sender, cycle,
                   msg_index, w,
                   (static_cast<std::uint64_t>(rec.target) << 8) | rec.bit);
  }
}

void InjectorRuntime::fast_forward(const DynCounts& counts) {
  for (std::uint32_t r = 0; r < counts.size(); ++r) {
    if (counts[r] == 0) continue;
    PerRank& st = rank_state(r);
    st.counter = counts[r];
    while (st.next < st.pending.size() &&
           st.pending[st.next].dyn_index < st.counter) {
      ++st.next;
    }
  }
}

void InjectorRuntime::fast_forward_msgs(const MsgCounts& counts) {
  for (std::uint32_t r = 0; r < counts.size(); ++r) {
    if (counts[r] == 0) continue;
    PerRank& st = rank_state(r);
    while (st.msg_next < st.msg_pending.size() &&
           st.msg_pending[st.msg_next].msg_index < counts[r]) {
      ++st.msg_next;
    }
  }
}

std::size_t InjectorRuntime::pending_faults() const noexcept {
  std::size_t n = 0;
  for (const auto& [rank, st] : ranks_) {
    n += st.pending.size() - st.next;
    n += st.msg_pending.size() - st.msg_next;
  }
  return n;
}

std::uint64_t InjectorRuntime::dynamic_points(std::uint32_t rank) const {
  auto it = ranks_.find(rank);
  return it == ranks_.end() ? 0 : it->second.counter;
}

DynCounts InjectorRuntime::dynamic_counts(std::uint32_t nranks) const {
  DynCounts counts(nranks, 0);
  for (std::uint32_t r = 0; r < nranks; ++r) counts[r] = dynamic_points(r);
  return counts;
}

DynWidths InjectorRuntime::dynamic_widths(std::uint32_t nranks) const {
  DynWidths widths(nranks);
  for (std::uint32_t r = 0; r < nranks; ++r) {
    auto it = ranks_.find(r);
    if (it != ranks_.end()) widths[r] = it->second.widths;
  }
  return widths;
}

CycleProbe::CycleProbe(
    std::map<std::uint32_t, std::vector<std::uint64_t>> samples) {
  for (auto& [rank, indices] : samples) {
    std::sort(indices.begin(), indices.end());
    PerRank st;
    for (std::uint64_t idx : indices) {
      if (!st.targets.empty() && st.targets.back().first == idx) {
        ++st.targets.back().second;
      } else {
        st.targets.emplace_back(idx, 1);
      }
    }
    ranks_.emplace(rank, std::move(st));
  }
}

std::uint64_t CycleProbe::on_fim_inj(vm::Interp& self, std::uint64_t value,
                                     std::int64_t /*site_id*/,
                                     unsigned /*width*/) {
  auto it = ranks_.find(self.rank());
  if (it == ranks_.end()) return value;
  PerRank& st = it->second;
  const std::uint64_t index = st.counter++;
  while (st.next < st.targets.size() &&
         st.targets[st.next].first == index) {
    for (std::uint32_t m = 0; m < st.targets[st.next].second; ++m) {
      samples_.emplace_back(self.rank(), self.cycles());
    }
    ++st.next;
    break;  // distinct indices are unique after dedup; multiplicity handled
  }
  return value;
}

InjectionPlan sample_single_fault(const DynCounts& counts, Xoshiro256& rng) {
  return sample_faults(counts, 1, rng);
}

InjectionPlan sample_faults(const DynCounts& counts, std::size_t nfaults,
                            Xoshiro256& rng) {
  return sample_faults(counts, DynWidths{}, nfaults, rng);
}

InjectionPlan sample_single_fault(const DynCounts& counts,
                                  const DynWidths& widths, Xoshiro256& rng) {
  return sample_faults(counts, widths, 1, rng);
}

namespace {

/// Redraw budget per fault: collisions are astronomically rare for real
/// fault spaces, so this only matters when the space is nearly saturated
/// (e.g. a 1-point, 1-bit module asked for k=4) — then the plan simply
/// carries fewer faults instead of looping forever.
constexpr int kMaxRedraws = 64;

void insert_sorted(std::vector<FaultRecord>& v, const FaultRecord& f) {
  const auto pos = std::upper_bound(
      v.begin(), v.end(), f, [](const FaultRecord& a, const FaultRecord& b) {
        return a.dyn_index != b.dyn_index ? a.dyn_index < b.dyn_index
                                          : a.bit < b.bit;
      });
  v.insert(pos, f);
}

void insert_sorted(std::vector<MsgFaultRecord>& v, const MsgFaultRecord& f) {
  const auto pos = std::upper_bound(
      v.begin(), v.end(), f,
      [](const MsgFaultRecord& a, const MsgFaultRecord& b) {
        return a.msg_index < b.msg_index;
      });
  v.insert(pos, f);
}

}  // namespace

InjectionPlan sample_faults(const DynCounts& counts, const DynWidths& widths,
                            std::size_t nfaults, Xoshiro256& rng) {
  std::vector<std::uint32_t> eligible;
  for (std::uint32_t r = 0; r < counts.size(); ++r) {
    if (counts[r] > 0) eligible.push_back(r);
  }
  FPROP_CHECK_MSG(!eligible.empty(),
                  "no rank executed any injection point");
  InjectionPlan plan;
  for (std::size_t i = 0; i < nfaults; ++i) {
    for (int attempt = 0; attempt < kMaxRedraws; ++attempt) {
      const std::uint32_t rank =
          eligible[rng.next_below(eligible.size())];
      const std::uint64_t idx = rng.next_below(counts[rank]);
      auto bit = static_cast<std::uint32_t>(rng.next_below(64));
      // Reduce into the target point's live width. Every IR width divides
      // 64, so the reduction stays uniform; 64-bit points (and empty width
      // tables) leave the draw untouched, preserving historical plans
      // bit-for-bit.
      if (rank < widths.size() && idx < widths[rank].size()) {
        const std::uint32_t w =
            widths[rank][idx] == 0 ? 64 : widths[rank][idx];
        bit %= w;
      }
      auto& faults = plan.faults_by_rank[rank];
      const bool dup = std::any_of(
          faults.begin(), faults.end(), [&](const FaultRecord& f) {
            return f.dyn_index == idx && f.bit == bit;
          });
      if (dup) continue;  // redraw: validate() rejects duplicate flips
      insert_sorted(faults, {idx, bit});
      break;
    }
  }
  return plan;
}

std::size_t sample_msg_faults(const MsgCounts& counts, std::size_t nfaults,
                              Xoshiro256& rng, InjectionPlan& plan) {
  std::vector<std::uint32_t> eligible;
  for (std::uint32_t r = 0; r < counts.size(); ++r) {
    if (counts[r] > 0) eligible.push_back(r);
  }
  if (eligible.empty()) return 0;  // communication-free app: nothing to hit
  std::size_t added = 0;
  for (std::size_t i = 0; i < nfaults; ++i) {
    for (int attempt = 0; attempt < kMaxRedraws; ++attempt) {
      MsgFaultRecord rec;
      const std::uint32_t rank = eligible[rng.next_below(eligible.size())];
      rec.msg_index = rng.next_below(counts[rank]);
      rec.target = rng.next_below(2) == 0 ? MsgFaultTarget::Header
                                          : MsgFaultTarget::Payload;
      rec.word = rng.next();  // raw; reduced modulo the live span at fire
      rec.bit = static_cast<std::uint32_t>(rng.next_below(64));
      auto& faults = plan.msg_faults_by_rank[rank];
      const bool dup = std::any_of(
          faults.begin(), faults.end(), [&](const MsgFaultRecord& f) {
            return f.msg_index == rec.msg_index && f.target == rec.target &&
                   f.word == rec.word && f.bit == rec.bit;
          });
      if (dup) continue;
      insert_sorted(faults, rec);
      ++added;
      break;
    }
  }
  return added;
}

InjectionPlan canonical_plan(const InjectionPlan& plan,
                             const DynWidths& widths) {
  plan.validate();
  InjectionPlan out;
  for (const auto& [rank, faults] : plan.faults_by_rank) {
    if (faults.empty()) continue;  // absent and empty ranks behave alike
    std::vector<FaultRecord> reduced = faults;
    for (FaultRecord& f : reduced) {
      if (rank < widths.size() && f.dyn_index < widths[rank].size()) {
        const std::uint32_t w =
            widths[rank][f.dyn_index] == 0 ? 64 : widths[rank][f.dyn_index];
        f.bit %= w;
      }
    }
    std::sort(reduced.begin(), reduced.end(),
              [](const FaultRecord& a, const FaultRecord& b) {
                return a.dyn_index != b.dyn_index ? a.dyn_index < b.dyn_index
                                                  : a.bit < b.bit;
              });
    // Reduction may fold two raw records into the same flip — a duplicate
    // that validate() rejects (and that would fire differently: the runtime
    // XORs both, cancelling them). Such ranks keep their raw records.
    const bool collided =
        std::adjacent_find(reduced.begin(), reduced.end(),
                           [](const FaultRecord& a, const FaultRecord& b) {
                             return a.dyn_index == b.dyn_index &&
                                    a.bit == b.bit;
                           }) != reduced.end();
    out.faults_by_rank[rank] = collided ? faults : std::move(reduced);
  }
  for (const auto& [rank, faults] : plan.msg_faults_by_rank) {
    if (faults.empty()) continue;
    out.msg_faults_by_rank[rank] = faults;
  }
  return out;
}

std::string dedup_key(const InjectionPlan& plan, const DynWidths& widths) {
  const InjectionPlan canon = canonical_plan(plan, widths);
  std::string key;
  for (const auto& [rank, faults] : canon.faults_by_rank) {
    key += 'r';
    key += std::to_string(rank);
    for (const FaultRecord& f : faults) {
      key += ':';
      key += std::to_string(f.dyn_index);
      key += '.';
      key += std::to_string(f.bit);
    }
    key += ';';
  }
  for (const auto& [rank, faults] : canon.msg_faults_by_rank) {
    key += 'm';
    key += std::to_string(rank);
    for (const MsgFaultRecord& f : faults) {
      key += ':';
      key += std::to_string(f.msg_index);
      key += '.';
      key += std::to_string(static_cast<unsigned>(f.target));
      key += '.';
      key += std::to_string(f.word);
      key += '.';
      key += std::to_string(f.bit);
    }
    key += ';';
  }
  return key;
}

}  // namespace fprop::inject
