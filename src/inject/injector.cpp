#include "fprop/inject/injector.h"

#include <algorithm>

#include "fprop/support/error.h"
#include "fprop/vm/interp.h"

namespace fprop::inject {

void InjectionPlan::validate() const {
  for (const auto& [rank, faults] : faults_by_rank) {
    for (const FaultRecord& f : faults) {
      if (f.bit >= 64) {
        throw Error("injection plan: bit " + std::to_string(f.bit) +
                    " on rank " + std::to_string(rank) +
                    " is outside any 64-bit register");
      }
    }
  }
}

InjectionPlan InjectionPlan::single(std::uint32_t rank,
                                    std::uint64_t dyn_index,
                                    std::uint32_t bit) {
  InjectionPlan p;
  p.faults_by_rank[rank].push_back({dyn_index, bit});
  p.validate();
  return p;
}

std::size_t InjectionPlan::total_faults() const noexcept {
  std::size_t n = 0;
  for (const auto& [rank, v] : faults_by_rank) n += v.size();
  return n;
}

InjectorRuntime::InjectorRuntime(InjectionPlan plan) {
  plan.validate();
  for (auto& [rank, faults] : plan.faults_by_rank) {
    PerRank st;
    st.pending = std::move(faults);
    std::sort(st.pending.begin(), st.pending.end(),
              [](const FaultRecord& a, const FaultRecord& b) {
                return a.dyn_index < b.dyn_index;
              });
    ranks_.emplace(rank, std::move(st));
  }
}

InjectorRuntime::PerRank& InjectorRuntime::rank_state(std::uint32_t rank) {
  return ranks_[rank];  // default-constructed (counting only) if absent
}

std::uint64_t InjectorRuntime::on_fim_inj(vm::Interp& self,
                                          std::uint64_t value,
                                          std::int64_t site_id,
                                          unsigned width) {
  PerRank& st = rank_state(self.rank());
  const std::uint64_t index = st.counter++;
  if (record_widths_) {
    st.widths.push_back(static_cast<std::uint8_t>(width == 0 ? 64 : width));
  }
  if (st.next >= st.pending.size() ||
      st.pending[st.next].dyn_index != index) {
    return value;
  }
  const FaultRecord& rec = st.pending[st.next++];
  // Flips must land within the live value's type width (i1 registers have a
  // single meaningful bit): a plan that targets bit 3 of a boolean is a
  // planning error, not a simulated fault — silently wrapping it would
  // inject a different experiment than the one recorded in the plan.
  const unsigned w = width == 0 ? 64 : width;
  if (rec.bit >= w) {
    throw Error("injection plan: bit " + std::to_string(rec.bit) +
                " exceeds the " + std::to_string(w) +
                "-bit width of the value at site " + std::to_string(site_id) +
                " (rank " + std::to_string(self.rank()) + ", dynamic index " +
                std::to_string(index) + ")");
  }
  const std::uint64_t flipped = value ^ (1ull << rec.bit);
  events_.push_back({self.rank(), site_id, index, rec.bit, self.cycles(),
                     value, flipped});
  FPROP_OBS_EMIT(recorder_, obs::EventKind::Injection, self.rank(),
                 self.cycles(), static_cast<std::uint64_t>(site_id), rec.bit,
                 value ^ flipped);
  return flipped;
}

void InjectorRuntime::fast_forward(const DynCounts& counts) {
  for (std::uint32_t r = 0; r < counts.size(); ++r) {
    if (counts[r] == 0) continue;
    PerRank& st = rank_state(r);
    st.counter = counts[r];
    while (st.next < st.pending.size() &&
           st.pending[st.next].dyn_index < st.counter) {
      ++st.next;
    }
  }
}

std::uint64_t InjectorRuntime::dynamic_points(std::uint32_t rank) const {
  auto it = ranks_.find(rank);
  return it == ranks_.end() ? 0 : it->second.counter;
}

DynCounts InjectorRuntime::dynamic_counts(std::uint32_t nranks) const {
  DynCounts counts(nranks, 0);
  for (std::uint32_t r = 0; r < nranks; ++r) counts[r] = dynamic_points(r);
  return counts;
}

DynWidths InjectorRuntime::dynamic_widths(std::uint32_t nranks) const {
  DynWidths widths(nranks);
  for (std::uint32_t r = 0; r < nranks; ++r) {
    auto it = ranks_.find(r);
    if (it != ranks_.end()) widths[r] = it->second.widths;
  }
  return widths;
}

CycleProbe::CycleProbe(
    std::map<std::uint32_t, std::vector<std::uint64_t>> samples) {
  for (auto& [rank, indices] : samples) {
    std::sort(indices.begin(), indices.end());
    PerRank st;
    for (std::uint64_t idx : indices) {
      if (!st.targets.empty() && st.targets.back().first == idx) {
        ++st.targets.back().second;
      } else {
        st.targets.emplace_back(idx, 1);
      }
    }
    ranks_.emplace(rank, std::move(st));
  }
}

std::uint64_t CycleProbe::on_fim_inj(vm::Interp& self, std::uint64_t value,
                                     std::int64_t /*site_id*/,
                                     unsigned /*width*/) {
  auto it = ranks_.find(self.rank());
  if (it == ranks_.end()) return value;
  PerRank& st = it->second;
  const std::uint64_t index = st.counter++;
  while (st.next < st.targets.size() &&
         st.targets[st.next].first == index) {
    for (std::uint32_t m = 0; m < st.targets[st.next].second; ++m) {
      samples_.emplace_back(self.rank(), self.cycles());
    }
    ++st.next;
    break;  // distinct indices are unique after dedup; multiplicity handled
  }
  return value;
}

InjectionPlan sample_single_fault(const DynCounts& counts, Xoshiro256& rng) {
  return sample_faults(counts, 1, rng);
}

InjectionPlan sample_faults(const DynCounts& counts, std::size_t nfaults,
                            Xoshiro256& rng) {
  return sample_faults(counts, DynWidths{}, nfaults, rng);
}

InjectionPlan sample_single_fault(const DynCounts& counts,
                                  const DynWidths& widths, Xoshiro256& rng) {
  return sample_faults(counts, widths, 1, rng);
}

InjectionPlan sample_faults(const DynCounts& counts, const DynWidths& widths,
                            std::size_t nfaults, Xoshiro256& rng) {
  std::vector<std::uint32_t> eligible;
  for (std::uint32_t r = 0; r < counts.size(); ++r) {
    if (counts[r] > 0) eligible.push_back(r);
  }
  FPROP_CHECK_MSG(!eligible.empty(),
                  "no rank executed any injection point");
  InjectionPlan plan;
  for (std::size_t i = 0; i < nfaults; ++i) {
    const std::uint32_t rank =
        eligible[rng.next_below(eligible.size())];
    const std::uint64_t idx = rng.next_below(counts[rank]);
    auto bit = static_cast<std::uint32_t>(rng.next_below(64));
    // Reduce into the target point's live width. Every IR width divides 64,
    // so the reduction stays uniform; 64-bit points (and empty width tables)
    // leave the draw untouched, preserving historical plans bit-for-bit.
    if (rank < widths.size() && idx < widths[rank].size()) {
      const std::uint32_t w = widths[rank][idx] == 0 ? 64 : widths[rank][idx];
      bit %= w;
    }
    plan.faults_by_rank[rank].push_back({idx, bit});
  }
  return plan;
}

}  // namespace fprop::inject
