#include "fprop/harness/prune.h"

#include <algorithm>

#include "fprop/vm/memory.h"

namespace fprop::harness::prune {

GoldenPrints build_prints(const std::vector<SnapshotRung>& ladder) {
  GoldenPrints prints;
  prints.rungs.reserve(ladder.size());
  for (const SnapshotRung& rung : ladder) {
    GoldenPrints::Rung r;
    r.global_clock = rung.global_clock;
    r.page_hashes.reserve(rung.state.ranks.size());
    for (const auto& snap : rung.state.ranks) {
      r.page_hashes.push_back(vm::AddressSpace::image_page_hashes(snap.memory));
    }
    prints.rungs.push_back(std::move(r));
  }
  return prints;
}

bool PruneProbe::converged() const {
  // Cheapest rejection first: clock must sit exactly on a rung (the rungs
  // were captured at golden sweep boundaries, so a trial whose instruction
  // count diverged from golden's — even with equivalent state — never
  // matches and simply runs unpruned).
  const std::uint64_t now = world_->global_cycles();
  const auto it = std::lower_bound(
      ladder_->begin(), ladder_->end(), now,
      [](const SnapshotRung& r, std::uint64_t clock) {
        return r.global_clock < clock;
      });
  if (it == ladder_->end() || it->global_clock != now) return false;
  // A planned fault that has not fired yet is future divergence no state
  // fingerprint can see: never prune under one.
  if (injector_->pending_faults() > 0) return false;
  const std::size_t idx = static_cast<std::size_t>(it - ladder_->begin());
  if (!world_->state_converged(it->state, prints_->rungs[idx].page_hashes)) {
    return false;
  }
  matched_clock_ = now;
  return true;
}

}  // namespace fprop::harness::prune
