#include "fprop/harness/harness.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <map>
#include <optional>
#include <thread>
#include <unordered_map>

#include "fprop/harness/prune.h"
#include "fprop/model/propagation_model.h"
#include "fprop/obs/export.h"
#include "fprop/support/error.h"

namespace fprop::harness {

const char* outcome_name(Outcome o) noexcept {
  switch (o) {
    case Outcome::Vanished: return "V";
    case Outcome::OutputNotAffected: return "ONA";
    case Outcome::WrongOutput: return "WO";
    case Outcome::ProlongedExecution: return "PEX";
    case Outcome::Crashed: return "C";
  }
  return "?";
}

TrialMetricHandles::TrialMetricHandles(obs::MetricsRegistry& reg)
    : registry(&reg),
      trials(&reg.counter("campaign.trials")),
      flips(&reg.counter("inject.flips")),
      msg_flips(&reg.counter("inject.msg_flips")),
      headers_quarantined(&reg.counter("fpm.headers_quarantined")),
      recovered(&reg.counter("recovery.recovered")),
      detections(&reg.counter("recovery.detections")),
      obs_events(&reg.counter("obs.events")),
      obs_events_dropped(&reg.counter("obs.events_dropped")),
      shadow_records(&reg.counter("shadow.records")),
      shadow_heals(&reg.counter("shadow.heals")),
      mpi_sends(&reg.counter("mpi.sends")),
      mpi_recvs(&reg.counter("mpi.recvs")),
      vm_traps(&reg.counter("vm.traps")),
      detector_scans(&reg.counter("detector.scans")),
      recovery_checkpoints(&reg.counter("recovery.checkpoints")),
      recovery_rollbacks(&reg.counter("recovery.rollbacks")),
      probe_len(&reg.histogram("shadow.probe_len", {0, 1, 2, 4, 8, 16})),
      header_words(&reg.histogram("mpi.header_words", {1, 3, 9, 33, 129, 513})),
      ckpt_bytes(&reg.histogram(
          "checkpoint.bytes",
          {1u << 10, 1u << 14, 1u << 18, 1u << 22, 1u << 26})),
      detect_latency(&reg.histogram(
          "detector.latency_steps",
          {1u << 8, 1u << 12, 1u << 16, 1u << 20, 1u << 24})),
      fault_gap(&reg.histogram(
          "inject.fault_pair_min_gap",
          {1u << 6, 1u << 10, 1u << 14, 1u << 18, 1u << 22})),
      pruned(&reg.counter("campaign.pruned")) {
  for (std::size_t i = 0; i < 5; ++i) {
    outcome[i] = &reg.counter(std::string("campaign.outcome.") +
                              outcome_name(static_cast<Outcome>(i)));
  }
}

AppHarness::AppHarness(const apps::AppSpec& spec, ExperimentConfig config)
    : name_(spec.name),
      config_(config),
      nranks_(config.nranks != 0 ? config.nranks : spec.default_nranks),
      module_(apps::compile_app(spec, config.overrides)) {
  sites_ = passes::instrument_module(module_, config_.targets);

  // Golden run doubles as the LLFI++ profiling run (counts dynamic points).
  inject::InjectorRuntime probe;  // counting mode
  probe.record_widths(true);
  mpisim::WorldConfig wc = world_config(/*tracing=*/false);
  wc.interp.cycle_budget = 4ull << 30;  // effectively unbounded
  mpisim::World world(module_, wc);
  world.set_inject_hook(&probe);
  const mpisim::JobResult job = world.run();
  FPROP_CHECK_MSG(!job.crashed, "golden run of '" + name_ + "' crashed: " +
                                    vm::trap_name(job.first_trap));

  golden_.outputs = job.outputs();
  golden_.reported_iters = job.reported_iters();
  golden_.max_rank_cycles = job.max_rank_cycles;
  golden_.global_cycles = job.global_cycles;
  golden_.total_allocated_words = job.total_allocated_words();
  golden_.dyn_counts = probe.dynamic_counts(nranks_);
  for (auto c : golden_.dyn_counts) golden_.total_dyn_points += c;
  golden_.msg_counts = world.sent_messages();
  for (auto c : golden_.msg_counts) golden_.total_sent_msgs += c;
  // Keep the width table only when a sub-64-bit point exists; an empty table
  // routes plan sampling through the historical (all-64-bit) draws, keeping
  // registry-app campaigns bit-identical to earlier releases.
  golden_.dyn_widths = probe.dynamic_widths(nranks_);
  bool narrow = false;
  for (const auto& per_rank : golden_.dyn_widths) {
    for (std::uint8_t w : per_rank) {
      if (w != 64) {
        narrow = true;
        break;
      }
    }
    if (narrow) break;
  }
  if (!narrow) golden_.dyn_widths.clear();
  FPROP_CHECK_MSG(golden_.total_dyn_points > 0,
                  "no injection points executed in '" + name_ + "'");
}

AppHarness::~AppHarness() = default;

mpisim::WorldConfig AppHarness::world_config(bool tracing) const {
  mpisim::WorldConfig wc;
  wc.nranks = nranks_;
  wc.slice = config_.slice;
  wc.enable_fpm = true;
  wc.fpm_sample_period = tracing ? config_.rank_sample_period : 0;
  wc.global_sample_period = tracing ? config_.global_sample_period : 0;
  wc.interp.rng_seed = config_.rng_seed;
  wc.interp.cycle_budget = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(
          static_cast<double>(golden_.max_rank_cycles) *
          config_.budget_factor),
      1u << 20);
  return wc;
}

Outcome AppHarness::classify(const mpisim::JobResult& job,
                             bool memory_was_touched) const {
  if (job.crashed) return Outcome::Crashed;

  const std::vector<double> outputs = job.outputs();
  bool output_ok = outputs.size() == golden_.outputs.size();
  if (output_ok) {
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      const double want = golden_.outputs[i];
      const double have = outputs[i];
      if (std::isnan(have) ||
          std::fabs(have - want) >
              config_.classifier.tolerance * (std::fabs(want) + 1e-9)) {
        output_ok = false;
        break;
      }
    }
  }
  if (!output_ok) return Outcome::WrongOutput;

  const bool more_iters = golden_.reported_iters >= 0 &&
                          job.reported_iters() > golden_.reported_iters;
  const bool longer =
      static_cast<double>(job.global_cycles) >
      static_cast<double>(golden_.global_cycles) * config_.classifier.time_factor;
  if (more_iters || longer) return Outcome::ProlongedExecution;

  return memory_was_touched ? Outcome::OutputNotAffected : Outcome::Vanished;
}

namespace {

/// Folds one finished trial into the metrics registry via pre-resolved
/// handles (TrialMetricHandles — resolving by name per trial cost ~15
/// string hashes under the registry mutex): outcome counters, shadow-table
/// probe lengths sampled from the job-final tables, and (when an event
/// stream exists) per-kind event counters and histograms. Every update is a
/// commutative atomic add, so campaign aggregates are identical at any
/// worker count.
void fold_trial_metrics(const TrialMetricHandles& m, const TrialResult& t,
                        const obs::TrialRecorder* recorder,
                        mpisim::World& world) {
  m.trials->add(1);
  m.outcome[static_cast<std::size_t>(t.outcome)]->add(1);
  if (t.injected) m.flips->add(1);
  m.msg_flips->add(t.msg_injected);
  m.headers_quarantined->add(t.headers_quarantined);
  if (t.fault_pair_min_gap >= 0) {
    m.fault_gap->observe(static_cast<std::uint64_t>(t.fault_pair_min_gap));
  }
  if (t.recovered) m.recovered->add(1);
  if (t.pruned) m.pruned->add(1);
  m.detections->add(t.detections);

  for (std::uint32_t r = 0; r < world.nranks(); ++r) {
    if (auto* f = world.fpm(r)) {
      for (const std::uint64_t len : f->shadow().probe_lengths()) {
        m.probe_len->observe(len);
      }
    }
  }

  if (recorder == nullptr) return;
  m.obs_events->add(recorder->total_emitted());
  m.obs_events_dropped->add(recorder->dropped());

  std::uint64_t records = 0, heals = 0, sends = 0, recvs = 0, traps = 0,
                scans = 0, checkpoints = 0, rollbacks = 0;
  std::int64_t first_contaminated = -1;
  for (const obs::Event& e : recorder->ordered()) {
    switch (e.kind) {
      case obs::EventKind::ShadowRecord: ++records; break;
      case obs::EventKind::ShadowHeal: ++heals; break;
      case obs::EventKind::MsgSend:
        ++sends;
        m.header_words->observe(e.c);
        break;
      case obs::EventKind::MsgRecv: ++recvs; break;
      case obs::EventKind::Trap: ++traps; break;
      case obs::EventKind::DetectorScan: ++scans; break;
      case obs::EventKind::Checkpoint:
        ++checkpoints;
        m.ckpt_bytes->observe(e.a);
        break;
      case obs::EventKind::Rollback: ++rollbacks; break;
      case obs::EventKind::RankContaminated:
        // Both this and first_detection_clock sit on the global clock, so
        // their difference is the end-to-end detection latency.
        if (first_contaminated < 0) {
          first_contaminated = static_cast<std::int64_t>(e.step);
        }
        break;
      default: break;
    }
  }
  if (first_contaminated >= 0 &&
      t.first_detection_clock >= first_contaminated) {
    m.detect_latency->observe(
        static_cast<std::uint64_t>(t.first_detection_clock -
                                   first_contaminated));
  }
  m.shadow_records->add(records);
  m.shadow_heals->add(heals);
  m.mpi_sends->add(sends);
  m.mpi_recvs->add(recvs);
  m.vm_traps->add(traps);
  m.detector_scans->add(scans);
  m.recovery_checkpoints->add(checkpoints);
  m.recovery_rollbacks->add(rollbacks);
}

}  // namespace

void AppHarness::build_ladder() const {
  if (config_.snapshot_rungs == 0) return;
  // Re-execute the golden run under the exact trial configuration and
  // capture coordinated checkpoints at quiescent sweep boundaries. Tracing
  // is ON: the sample periods only append to trace vectors (they never
  // steer execution), so the captured rungs carry the precise CML-trace
  // prefix and sampling cursors tracing trials need, and non-tracing trial
  // runtimes ignore those fields entirely (their sample periods are 0).
  mpisim::World world(module_, world_config(/*tracing=*/true));
  inject::InjectorRuntime probe;  // counting mode
  world.set_inject_hook(&probe);

  const std::size_t max_rungs = config_.snapshot_rungs;
  // Minimum global-cycle spacing between kept rungs: evenly splits the
  // golden run into ~max_rungs+1 segments.
  const std::uint64_t stride = std::max<std::uint64_t>(
      golden_.global_cycles / (static_cast<std::uint64_t>(max_rungs) + 1), 1);
  std::uint64_t scan_interval = 0;
  std::uint64_t next_target = stride;
  if (config_.recovery.enabled) {
    // Recovery trials may only restore at the golden run's clean-scan
    // checkpoint boundaries: there a warm RecoveryManager's state (last
    // retained checkpoint, checkpoint clock, next scan point) is exactly
    // what a cold run reaches at the same clock. Walk the detector grid —
    // the same grid RecoveryManager walks (recovery::next_scan_point, with
    // the same derived interval run_trial uses) — and thin it by `stride`
    // to bound the ladder size.
    scan_interval = config_.recovery.detector_interval != 0
                        ? config_.recovery.detector_interval
                        : std::max<std::uint64_t>(golden_.global_cycles / 16, 1);
    next_target = scan_interval;
  }

  for (;;) {
    const mpisim::World::StepStatus s = world.sweep();
    if (s != mpisim::World::StepStatus::Running) break;
    const std::uint64_t now = world.global_cycles();
    if (now < next_target) continue;
    if (config_.recovery.enabled) {
      next_target = recovery::next_scan_point(now, scan_interval);
      if (!ladder_.empty() && now < ladder_.back().global_clock + stride) {
        continue;  // on the grid, but too close to the previous rung
      }
    } else {
      if (ladder_.size() >= max_rungs) break;
      while (next_target <= now) next_target += stride;
    }
    SnapshotRung rung;
    rung.global_clock = now;
    rung.dyn_counts = probe.dynamic_counts(nranks_);
    rung.state = world.checkpoint();
    ladder_.push_back(std::move(rung));
  }
}

const std::vector<SnapshotRung>& AppHarness::snapshot_ladder() const {
  std::call_once(ladder_once_, [this] { build_ladder(); });
  return ladder_;
}

const vm::BytecodeModule& AppHarness::bytecode() const {
  std::call_once(bytecode_once_, [this] {
    bytecode_ = std::make_unique<vm::BytecodeModule>(module_);
  });
  return *bytecode_;
}

const prune::GoldenPrints& AppHarness::prune_prints() const {
  std::call_once(prints_once_, [this] {
    prints_ = std::make_unique<prune::GoldenPrints>(
        prune::build_prints(snapshot_ladder()));
  });
  return *prints_;
}

const SnapshotRung* AppHarness::latest_usable_rung(
    const inject::InjectionPlan& plan) const {
  // A rung is usable when no planned fault's dynamic execution lies in the
  // prefix it skips: counter == dyn_index means that execution has not
  // happened yet, so equality is still usable. Counters are non-decreasing
  // along the ladder, so the first unusable rung ends the scan.
  const SnapshotRung* best = nullptr;
  for (const SnapshotRung& rung : snapshot_ladder()) {
    for (const auto& [rank, faults] : plan.faults_by_rank) {
      const std::uint64_t done =
          rank < rung.dyn_counts.size() ? rung.dyn_counts[rank] : 0;
      for (const inject::FaultRecord& f : faults) {
        if (f.dyn_index < done) return best;
      }
    }
    // Message faults gate rungs the same way: the rung's checkpointed
    // per-rank send counters say how many messages its prefix already
    // delivered, and a fault inside that prefix could no longer fire.
    for (const auto& [rank, faults] : plan.msg_faults_by_rank) {
      const std::uint64_t done = rank < rung.state.sent_msgs.size()
                                     ? rung.state.sent_msgs[rank]
                                     : 0;
      for (const inject::MsgFaultRecord& f : faults) {
        if (f.msg_index < done) return best;
      }
    }
    best = &rung;
  }
  return best;
}

TrialResult AppHarness::run_trial(const inject::InjectionPlan& plan,
                                  bool capture_trace,
                                  obs::TrialRecorder* recorder,
                                  obs::MetricsRegistry* metrics) const {
  TrialOptions opts;
  opts.capture_trace = capture_trace;
  // Historical entry point: always cold. One-shot callers (tests, examples
  // doing a single trial) should not pay a full ladder build; campaigns go
  // through the options overload with CampaignConfig::warm_start.
  opts.warm_start = false;
  opts.recorder = recorder;
  std::optional<TrialMetricHandles> handles;
  if (metrics != nullptr) handles.emplace(*metrics);
  opts.metrics = handles.has_value() ? &*handles : nullptr;
  return run_trial(plan, opts);
}

TrialResult AppHarness::run_trial(const inject::InjectionPlan& plan,
                                  const TrialOptions& opts) const {
  inject::InjectorRuntime injector(plan);
  injector.set_recorder(opts.recorder);
  mpisim::WorldConfig wc = world_config(opts.capture_trace);
  wc.recorder = opts.recorder;
  // Compiled tier (DESIGN.md §13): per-rank eligibility (recorder attached,
  // fault strike windows) is decided inside vm::Interp::run — attaching the
  // bytecode never changes a TrialResult bit.
  if (opts.exec_tier == vm::ExecTier::Bytecode) wc.bytecode = &bytecode();
  mpisim::World world(module_, wc);
  world.set_inject_hook(&injector);
  if (plan.total_msg_faults() > 0) {
    // Only message-fault plans pay the header serialize/corrupt/deserialize
    // round-trip; every other trial's send path is untouched.
    world.set_msg_hook(&injector);
  }

  // Warm start (DESIGN.md §11): the pre-injection prefix is bit-identical
  // to the golden run, so restoring its latest snapshot at or below the
  // plan's first fault and fast-forwarding the injector's dynamic-point
  // counters changes nothing observable. Recorder-attached trials cold-
  // start: the prefix's event stream cannot be replayed from a snapshot.
  if (opts.warm_start && opts.recorder == nullptr) {
    if (const SnapshotRung* rung = latest_usable_rung(plan)) {
      world.restore(rung->state);
      injector.fast_forward(rung->dyn_counts);
      injector.fast_forward_msgs(rung->state.sent_msgs);
    }
  }

  const bool capture_trace = opts.capture_trace;
  obs::TrialRecorder* const recorder = opts.recorder;

  // Early-outcome pruning (DESIGN.md §14): only meaningful with a ladder to
  // probe against, and never under trace capture — a pruned trial has no
  // CML(t) suffix to report.
  const bool prune_active =
      opts.prune && !capture_trace && config_.snapshot_rungs > 0;
  std::optional<prune::PruneProbe> probe;
  if (prune_active) {
    probe.emplace(snapshot_ladder(), prune_prints(), injector, world);
  }

  TrialResult t;
  mpisim::JobResult job;
  bool pruned = false;
  std::uint64_t rolled_away_peak = 0;  ///< CML peak erased by restores
  if (config_.recovery.enabled) {
    recovery::RecoveryConfig rc = config_.recovery;
    if (rc.detector_interval == 0) {
      rc.detector_interval =
          std::max<std::uint64_t>(golden_.global_cycles / 16, 1);
    }
    if (rc.expected_cycles == 0) rc.expected_cycles = golden_.global_cycles;
    rc.recorder = recorder;
    if (probe.has_value()) {
      // Recovery trials probe at clean detector scans — the only quiescent
      // points RecoveryManager exposes, and (by the ladder construction in
      // recovery mode) exactly where the golden rungs sit.
      rc.early_stop = [&probe] { return probe->converged(); };
    }
    recovery::RecoveryManager manager(world, rc);
    job = manager.run();
    const recovery::RecoveryReport& rep = manager.report();
    pruned = rep.early_stopped;
    t.rollbacks = rep.rollbacks;
    t.detections = rep.detections;
    t.wasted_cycles = rep.wasted_cycles;
    t.residual_cml = rep.residual_cml;
    t.recovery_gave_up = rep.gave_up;
    t.first_detection_clock = rep.first_detection_clock;
    rolled_away_peak = rep.peak_cml_seen;
  } else if (probe.has_value()) {
    // World::run() with the reconvergence probe between sweeps.
    for (;;) {
      const mpisim::World::StepStatus s = world.sweep();
      if (s == mpisim::World::StepStatus::Running) {
        if (probe->converged()) {
          pruned = true;
          break;
        }
        continue;
      }
      if (s == mpisim::World::StepStatus::Trapped) {
        world.kill_job(world.trapped_rank(), vm::Trap::Killed);
      } else if (s == mpisim::World::StepStatus::Deadlocked) {
        world.declare_deadlock();
      }
      break;
    }
    if (!pruned) job = world.collect();
  } else {
    job = world.run();
  }

  t.trap = pruned ? vm::Trap::None : (job.crashed ? job.first_trap
                                                  : vm::Trap::None);
  t.injected = !injector.events().empty();
  if (t.injected) t.injection = injector.events().front();
  t.msg_injected = injector.msg_events().size();
  t.headers_quarantined = world.headers_quarantined();
  t.header_records_quarantined = world.header_records_quarantined();
  {
    // Interference metric: min pairwise |cycle| distance over every fired
    // fault. Cycles are rank-local clocks; for same-rank pairs this is the
    // exact dynamic distance, for cross-rank pairs a comparable proxy
    // (ranks advance in lockstep slices).
    std::vector<std::uint64_t> cycles;
    cycles.reserve(injector.events().size() + injector.msg_events().size());
    for (const auto& e : injector.events()) cycles.push_back(e.cycle);
    for (const auto& e : injector.msg_events()) cycles.push_back(e.cycle);
    if (cycles.size() >= 2) {
      std::sort(cycles.begin(), cycles.end());
      std::uint64_t min_gap = UINT64_MAX;
      for (std::size_t i = 1; i < cycles.size(); ++i) {
        min_gap = std::min(min_gap, cycles[i] - cycles[i - 1]);
      }
      t.fault_pair_min_gap = static_cast<std::int64_t>(min_gap);
    }
  }
  std::uint64_t words = 0;
  if (pruned) {
    // Synthesis (DESIGN.md §14): the probe proved the remaining execution is
    // bit-identical to the golden run's, so every job-final quantity is
    // either already final on the trial side (shadow peaks, contamination
    // stamps, quarantine counters — the clean golden suffix cannot move
    // them) or equals the golden run's own final value (clock, iterations,
    // allocation). classify() on that future: no crash, exact golden
    // outputs, golden-equal cycles/iterations — so the outcome reduces to
    // the memory_was_touched bit.
    t.total_cml_final = 0;  // converged means empty shadow tables
    std::uint64_t shadow_peak = 0;
    for (std::uint32_t r = 0; r < world.nranks(); ++r) {
      if (const auto* f = world.fpm(r)) shadow_peak += f->shadow().peak();
    }
    t.total_cml_peak = shadow_peak;
    words = golden_.total_allocated_words;
    std::size_t contaminated = 0;
    for (const auto& fc : world.first_contaminated()) {
      if (fc.has_value()) ++contaminated;
    }
    t.contaminated_ranks = contaminated;
    t.reported_iters = golden_.reported_iters;
    t.global_cycles = golden_.global_cycles;
    t.outcome = std::max(t.total_cml_peak, rolled_away_peak) > 0
                    ? Outcome::OutputNotAffected
                    : Outcome::Vanished;
    t.pruned = true;
    t.prune_clock = probe->matched_clock();
    FPROP_OBS_EMIT(recorder, obs::EventKind::PrunedVanished, obs::kJobScope,
                   t.prune_clock, t.prune_clock, shadow_peak,
                   injector.events().size() + injector.msg_events().size());
  } else {
    t.total_cml_final = job.total_cml_final();
    t.total_cml_peak = job.total_cml_peak();
    words = job.total_allocated_words();
    t.contaminated_ranks = job.contaminated_ranks();
    t.reported_iters = job.reported_iters();
    t.global_cycles = job.global_cycles;
    // A restore rewinds the shadow tables, so fold in the peak the detector
    // observed before rollback: a recovered trial still "touched memory".
    t.outcome =
        classify(job, std::max(t.total_cml_peak, rolled_away_peak) > 0);
  }
  t.contaminated_pct =
      words == 0 ? 0.0
                 : 100.0 * static_cast<double>(t.total_cml_peak) /
                       static_cast<double>(words);
  t.recovered = t.rollbacks > 0 && t.outcome != Outcome::Crashed &&
                t.outcome != Outcome::WrongOutput;
  if (capture_trace) {
    t.trace = world.global_trace();
    t.rank_first_contaminated.reserve(job.ranks.size());
    for (const auto& r : job.ranks) {
      t.rank_first_contaminated.push_back(r.first_contaminated_at);
    }
    if (!t.trace.empty()) {
      // Fit the propagation slope while the trace is in hand; campaign
      // workers may discard the trace itself but keep the fit.
      const model::TraceModel tm = model::model_trace(t.trace);
      t.slope_a = tm.rate.a;
      t.slope_b = tm.rate.b;
      t.slope_usable = tm.usable;
    }
  }
  FPROP_OBS_EMIT(recorder, obs::EventKind::TrialOutcome, obs::kJobScope,
                 t.global_cycles, static_cast<std::uint64_t>(t.outcome),
                 static_cast<std::uint64_t>(t.trap), t.total_cml_final);
  if (opts.metrics != nullptr) {
    fold_trial_metrics(*opts.metrics, t, recorder, world);
  }
  return t;
}

std::vector<SiteVulnerability> site_breakdown(const AppHarness& harness,
                                              const CampaignResult& result) {
  // Site ids are dense indices into harness.sites(), so a flat vector
  // replaces the former std::map: no per-trial log-n probes or node
  // allocations on large campaigns.
  std::vector<SiteVulnerability> by_site(harness.sites().size());
  for (const auto& t : result.trials) {
    if (!t.injected) continue;
    const auto id = static_cast<std::size_t>(t.injection.site_id);
    SiteVulnerability& sv = by_site.at(id);
    if (sv.site_id < 0) {
      sv.site_id = t.injection.site_id;
      const auto& site = harness.sites()[id];
      sv.consumer = site.consumer;
      sv.function = site.function;
    }
    switch (t.outcome) {
      case Outcome::Vanished: ++sv.counts.vanished; break;
      case Outcome::OutputNotAffected: ++sv.counts.ona; break;
      case Outcome::WrongOutput: ++sv.counts.wrong_output; break;
      case Outcome::ProlongedExecution: ++sv.counts.pex; break;
      case Outcome::Crashed: ++sv.counts.crashed; break;
    }
    sv.mean_contaminated_pct += t.contaminated_pct;  // sum; divided below
  }
  std::vector<SiteVulnerability> out;
  out.reserve(by_site.size());
  for (auto& sv : by_site) {
    if (sv.counts.total() == 0) continue;  // site never hit by a fired fault
    sv.mean_contaminated_pct /= static_cast<double>(sv.counts.total());
    out.push_back(std::move(sv));
  }
  std::sort(out.begin(), out.end(),
            [](const SiteVulnerability& a, const SiteVulnerability& b) {
              if (a.severity() != b.severity()) {
                return a.severity() > b.severity();
              }
              return a.counts.total() > b.counts.total();
            });
  return out;
}

namespace {

/// Executes trials pulled in chunks from a shared counter, up to `bound`
/// (exclusive — the end of the range being executed). Trial i writes only
/// slot i, so workers never contend on results; the trace-retention cutoff
/// depends only on the trial index, so what each worker keeps is independent
/// of scheduling. Each worker owns one event recorder reused (cleared)
/// across its trials; trace files are written worker-side, keyed by trial
/// index, so the on-disk output is identical at any jobs value.
void trial_worker(const AppHarness& harness, const CampaignConfig& config,
                  const TrialMetricHandles* metrics,
                  const std::vector<inject::InjectionPlan>& plans,
                  const std::vector<std::size_t>& rep,
                  std::vector<TrialResult>& slots,
                  std::atomic<std::size_t>& next, std::size_t bound,
                  std::size_t chunk) {
  std::optional<obs::TrialRecorder> recorder;
  if (!config.trace_dir.empty() || config.metrics != nullptr) {
    recorder.emplace(config.trace_capacity);
  }
  TrialOptions opts;
  opts.capture_trace = config.capture_traces;
  opts.warm_start = config.warm_start;
  opts.metrics = metrics;
  opts.recorder = recorder.has_value() ? &*recorder : nullptr;
  opts.exec_tier = config.exec_tier;
  // Recorder-attached campaigns run every trial unpruned: the per-trial
  // event stream and metrics fold are the reference the observability layer
  // compares against, and a pruned trial's stream is truncated by design.
  opts.prune = config.prune && !recorder.has_value();
  for (;;) {
    const std::size_t begin = next.fetch_add(chunk);
    if (begin >= bound) return;
    const std::size_t end = std::min(begin + chunk, bound);
    for (std::size_t i = begin; i < end; ++i) {
      if (rep[i] != i) continue;  // duplicate plan: copies its rep at merge
      if (recorder.has_value()) recorder->clear();
      slots[i] = harness.run_trial(plans[i], opts);
      if (!config.trace_dir.empty()) {
        obs::ChromeTraceMeta meta;
        meta.app = harness.app_name();
        meta.trial_index = i;
        meta.nranks = harness.nranks();
        meta.total_emitted = recorder->total_emitted();
        meta.dropped = recorder->dropped();
        obs::write_file(config.trace_dir + "/" + obs::trial_trace_filename(i),
                        obs::chrome_trace_json(recorder->ordered(), meta));
      }
      if (!config.capture_traces || i >= config.max_kept_traces) {
        // Same retention rule as the serial merge: only the first
        // max_kept_traces trials keep their trace. Dropping it here bounds
        // in-flight memory to the kept set regardless of trial count.
        slots[i].trace.clear();
        slots[i].trace.shrink_to_fit();
      }
    }
  }
}

std::size_t effective_jobs(std::size_t requested, std::size_t trials) {
  std::size_t jobs =
      requested != 0 ? requested
                     : std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  return std::max<std::size_t>(std::min(jobs, trials), 1);
}

}  // namespace

CampaignPlan plan_campaign(const AppHarness& harness,
                           const CampaignConfig& config) {
  // Phase 1 — pre-sample every injection plan up front. Plan i depends only
  // on derive_seed(config.seed, i), never on execution order, so the sampled
  // campaign is identical at any jobs value — and at any process count: a
  // distributed shard recomputes this byte-for-byte instead of receiving
  // plans over the wire.
  CampaignPlan cp;
  cp.plans.reserve(config.trials);
  for (std::size_t i = 0; i < config.trials; ++i) {
    Xoshiro256 rng(derive_seed(config.seed, i));
    cp.plans.push_back(
        config.faults_per_run > 0
            ? inject::sample_faults(harness.golden().dyn_counts,
                                    harness.golden().dyn_widths,
                                    config.faults_per_run, rng)
            : inject::InjectionPlan{});
    if (config.msg_faults_per_run > 0) {
      // Drawn after the register faults, so a plain k-fault campaign's rng
      // stream — and therefore its results — is unchanged bit-for-bit.
      inject::sample_msg_faults(harness.golden().msg_counts,
                                config.msg_faults_per_run, rng,
                                cp.plans.back());
    }
  }

  // Phase 1.5 — plan-equivalence dedup (DESIGN.md §14). Trials are pure
  // functions of their plans, so trials whose canonical plans are identical
  // produce identical results: run the first, copy it into the rest at merge
  // time. Skipped whenever per-trial artifacts must exist (trace files,
  // event-stream metrics, kept CML traces) — a copied result cannot fabricate
  // those.
  cp.rep.resize(config.trials);
  for (std::size_t i = 0; i < config.trials; ++i) cp.rep[i] = i;
  if (config.dedup && !config.capture_traces && config.trace_dir.empty() &&
      config.metrics == nullptr) {
    std::unordered_map<std::string, std::size_t> first_by_key;
    first_by_key.reserve(config.trials);
    for (std::size_t i = 0; i < config.trials; ++i) {
      cp.rep[i] = first_by_key
                      .emplace(inject::dedup_key(cp.plans[i],
                                                 harness.golden().dyn_widths),
                               i)
                      .first->second;
    }
  }
  return cp;
}

void run_campaign_range(const AppHarness& harness,
                        const CampaignConfig& config,
                        const CampaignPlan& plan, std::size_t first,
                        std::size_t last, std::vector<TrialResult>& slots) {
  // Phase 2 — execute trials on the worker pool. Chunked dynamic dispatch:
  // trial cost varies wildly (crashes terminate early), so workers pull
  // modest chunks off a shared counter instead of static striping.
  FPROP_CHECK(slots.size() == plan.plans.size() &&
              plan.rep.size() == plan.plans.size());
  FPROP_CHECK(first <= last && last <= plan.plans.size());
  if (!config.trace_dir.empty()) obs::ensure_dir(config.trace_dir);
  std::optional<TrialMetricHandles> handles;  // resolved once per range
  if (config.metrics != nullptr) handles.emplace(*config.metrics);
  const TrialMetricHandles* metrics =
      handles.has_value() ? &*handles : nullptr;
  if (config.warm_start && config.trace_dir.empty() &&
      config.metrics == nullptr) {
    // These campaigns run recorder-less, so their trials will warm-start:
    // build the ladder up front instead of serializing the workers' first
    // trials behind the call_once.
    (void)harness.snapshot_ladder();
  }
  if (config.exec_tier == vm::ExecTier::Bytecode) {
    // Same reasoning for the one-time module compile (it is cheap — a linear
    // pass over the IR — but there is no point serializing workers on it).
    (void)harness.bytecode();
  }
  const std::size_t span = last - first;
  const std::size_t jobs = effective_jobs(config.jobs, span);
  const std::size_t chunk = std::max<std::size_t>(1, span / (jobs * 8));
  std::atomic<std::size_t> next{first};
  if (jobs <= 1) {
    trial_worker(harness, config, metrics, plan.plans, plan.rep, slots, next,
                 last, chunk);
  } else {
    std::vector<std::exception_ptr> errors(jobs);
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) {
      pool.emplace_back([&, w] {
        try {
          trial_worker(harness, config, metrics, plan.plans, plan.rep, slots,
                       next, last, chunk);
        } catch (...) {
          errors[w] = std::current_exception();
          // Drain the counter so the surviving workers wind down quickly.
          next.store(last);
        }
      });
    }
    for (auto& th : pool) th.join();
    for (const auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }
}

CampaignResult merge_campaign(const AppHarness& harness,
                              const CampaignConfig& config,
                              const CampaignPlan& plan,
                              std::vector<TrialResult> slots) {
  // Phase 2.5 — fill duplicate slots from their representatives. Done after
  // every representative is final; dedup_count settles to the multiplicity
  // on representatives and 0 on copies (summing to the trial count), keeping
  // every aggregate below identical to a no-dedup run.
  FPROP_CHECK(slots.size() == config.trials &&
              plan.rep.size() == config.trials);
  for (std::size_t i = 0; i < config.trials; ++i) {
    if (plan.rep[i] == i) continue;
    slots[i] = slots[plan.rep[i]];
    slots[i].dedup_count = 0;
    ++slots[plan.rep[i]].dedup_count;
  }

  // Phase 3 — merge in trial-index order. This loop is the serial campaign
  // loop minus execution, so counts, slopes, kept traces and recovery
  // aggregates come out bit-identical to a jobs=1 run — and to a sharded
  // run, which funnels its wire-delivered slots through this very fold.
  CampaignResult result;
  result.trials.reserve(config.trials);
  for (std::size_t i = 0; i < config.trials; ++i) {
    TrialResult& t = slots[i];
    if (t.dedup_count == 0) {
      ++result.deduped_trials;
    } else if (t.pruned) {
      ++result.pruned_trials;
    }
    switch (t.outcome) {
      case Outcome::Vanished: ++result.counts.vanished; break;
      case Outcome::OutputNotAffected: ++result.counts.ona; break;
      case Outcome::WrongOutput: ++result.counts.wrong_output; break;
      case Outcome::ProlongedExecution: ++result.counts.pex; break;
      case Outcome::Crashed: ++result.counts.crashed; break;
    }
    result.max_contaminated_pct.push_back(t.contaminated_pct);
    if (t.recovered) ++result.recovered_trials;
    result.total_rollbacks += t.rollbacks;
    result.total_wasted_cycles += t.wasted_cycles;
    result.total_msg_injected += t.msg_injected;
    result.total_headers_quarantined += t.headers_quarantined;
    result.total_header_records_quarantined += t.header_records_quarantined;
    if (t.slope_usable && t.slope_a > 0.0) {
      result.slopes.push_back(t.slope_a);
    }
    result.trials.push_back(std::move(t));
  }
  if (!config.trace_dir.empty()) {
    export_campaign(harness, config, result, config.trace_dir);
  }
  return result;
}

CampaignResult run_campaign(const AppHarness& harness,
                            const CampaignConfig& config) {
  const CampaignPlan plan = plan_campaign(harness, config);
  std::vector<TrialResult> slots(config.trials);
  run_campaign_range(harness, config, plan, 0, config.trials, slots);
  return merge_campaign(harness, config, plan, std::move(slots));
}

void export_campaign(const AppHarness& harness, const CampaignConfig& config,
                     const CampaignResult& result, const std::string& dir) {
  obs::ensure_dir(dir);

  std::vector<obs::CampaignRow> rows;
  rows.reserve(result.trials.size());
  for (std::size_t i = 0; i < result.trials.size(); ++i) {
    const TrialResult& t = result.trials[i];
    obs::CampaignRow row;
    row.trial = i;
    row.outcome = outcome_name(t.outcome);
    row.trap = t.trap == vm::Trap::None ? "none" : vm::trap_name(t.trap);
    row.injected = t.injected;
    if (t.injected) {
      row.rank = t.injection.rank;
      row.site = t.injection.site_id;
      row.bit = t.injection.bit;
      row.inject_cycle = t.injection.cycle;
    }
    row.global_cycles = t.global_cycles;
    row.cml_final = t.total_cml_final;
    row.cml_peak = t.total_cml_peak;
    row.contaminated_pct = t.contaminated_pct;
    row.contaminated_ranks = t.contaminated_ranks;
    row.reported_iters = t.reported_iters;
    row.slope_usable = t.slope_usable;
    row.slope_a = t.slope_a;
    row.slope_b = t.slope_b;
    row.detect_clock = t.first_detection_clock;
    row.detections = t.detections;
    row.rollbacks = t.rollbacks;
    row.wasted_cycles = t.wasted_cycles;
    row.recovered = t.recovered;
    rows.push_back(std::move(row));
  }

  obs::CampaignSummary summary;
  summary.app = harness.app_name();
  summary.trials = result.trials.size();
  summary.seed = config.seed;
  summary.faults_per_run = config.faults_per_run;
  summary.vanished = result.counts.vanished;
  summary.ona = result.counts.ona;
  summary.wrong_output = result.counts.wrong_output;
  summary.pex = result.counts.pex;
  summary.crashed = result.counts.crashed;
  summary.fps_n = result.slopes.size();
  if (!result.slopes.empty()) {
    double sum = 0.0;
    for (const double s : result.slopes) sum += s;
    summary.fps_mean = sum / static_cast<double>(result.slopes.size());
    double var = 0.0;
    for (const double s : result.slopes) {
      var += (s - summary.fps_mean) * (s - summary.fps_mean);
    }
    summary.fps_stddev =
        std::sqrt(var / static_cast<double>(result.slopes.size()));
  }
  summary.recovered_trials = result.recovered_trials;
  summary.total_rollbacks = result.total_rollbacks;
  summary.total_wasted_cycles = result.total_wasted_cycles;
  summary.pruned_trials = result.pruned_trials;
  summary.deduped_trials = result.deduped_trials;

  obs::write_file(dir + "/campaign.csv", obs::campaign_csv(rows));
  obs::write_file(dir + "/campaign.json", obs::campaign_summary_json(summary));
}

}  // namespace fprop::harness
