#include "fprop/harness/harness.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <map>
#include <thread>

#include "fprop/model/propagation_model.h"
#include "fprop/support/error.h"

namespace fprop::harness {

const char* outcome_name(Outcome o) noexcept {
  switch (o) {
    case Outcome::Vanished: return "V";
    case Outcome::OutputNotAffected: return "ONA";
    case Outcome::WrongOutput: return "WO";
    case Outcome::ProlongedExecution: return "PEX";
    case Outcome::Crashed: return "C";
  }
  return "?";
}

AppHarness::AppHarness(const apps::AppSpec& spec, ExperimentConfig config)
    : name_(spec.name),
      config_(config),
      nranks_(config.nranks != 0 ? config.nranks : spec.default_nranks),
      module_(apps::compile_app(spec, config.overrides)) {
  sites_ = passes::instrument_module(module_, config_.targets);

  // Golden run doubles as the LLFI++ profiling run (counts dynamic points).
  inject::InjectorRuntime probe;  // counting mode
  mpisim::WorldConfig wc = world_config(/*tracing=*/false);
  wc.interp.cycle_budget = 4ull << 30;  // effectively unbounded
  mpisim::World world(module_, wc);
  world.set_inject_hook(&probe);
  const mpisim::JobResult job = world.run();
  FPROP_CHECK_MSG(!job.crashed, "golden run of '" + name_ + "' crashed: " +
                                    vm::trap_name(job.first_trap));

  golden_.outputs = job.outputs();
  golden_.reported_iters = job.reported_iters();
  golden_.max_rank_cycles = job.max_rank_cycles;
  golden_.global_cycles = job.global_cycles;
  golden_.total_allocated_words = job.total_allocated_words();
  golden_.dyn_counts = probe.dynamic_counts(nranks_);
  for (auto c : golden_.dyn_counts) golden_.total_dyn_points += c;
  FPROP_CHECK_MSG(golden_.total_dyn_points > 0,
                  "no injection points executed in '" + name_ + "'");
}

mpisim::WorldConfig AppHarness::world_config(bool tracing) const {
  mpisim::WorldConfig wc;
  wc.nranks = nranks_;
  wc.slice = config_.slice;
  wc.enable_fpm = true;
  wc.fpm_sample_period = tracing ? config_.rank_sample_period : 0;
  wc.global_sample_period = tracing ? config_.global_sample_period : 0;
  wc.interp.rng_seed = config_.rng_seed;
  wc.interp.cycle_budget = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(
          static_cast<double>(golden_.max_rank_cycles) *
          config_.budget_factor),
      1u << 20);
  return wc;
}

Outcome AppHarness::classify(const mpisim::JobResult& job,
                             bool memory_was_touched) const {
  if (job.crashed) return Outcome::Crashed;

  const std::vector<double> outputs = job.outputs();
  bool output_ok = outputs.size() == golden_.outputs.size();
  if (output_ok) {
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      const double want = golden_.outputs[i];
      const double have = outputs[i];
      if (std::isnan(have) ||
          std::fabs(have - want) >
              config_.classifier.tolerance * (std::fabs(want) + 1e-9)) {
        output_ok = false;
        break;
      }
    }
  }
  if (!output_ok) return Outcome::WrongOutput;

  const bool more_iters = golden_.reported_iters >= 0 &&
                          job.reported_iters() > golden_.reported_iters;
  const bool longer =
      static_cast<double>(job.global_cycles) >
      static_cast<double>(golden_.global_cycles) * config_.classifier.time_factor;
  if (more_iters || longer) return Outcome::ProlongedExecution;

  return memory_was_touched ? Outcome::OutputNotAffected : Outcome::Vanished;
}

TrialResult AppHarness::run_trial(const inject::InjectionPlan& plan,
                                  bool capture_trace) const {
  inject::InjectorRuntime injector(plan);
  mpisim::World world(module_, world_config(capture_trace));
  world.set_inject_hook(&injector);

  TrialResult t;
  mpisim::JobResult job;
  std::uint64_t rolled_away_peak = 0;  ///< CML peak erased by restores
  if (config_.recovery.enabled) {
    recovery::RecoveryConfig rc = config_.recovery;
    if (rc.detector_interval == 0) {
      rc.detector_interval =
          std::max<std::uint64_t>(golden_.global_cycles / 16, 1);
    }
    if (rc.expected_cycles == 0) rc.expected_cycles = golden_.global_cycles;
    recovery::RecoveryManager manager(world, rc);
    job = manager.run();
    const recovery::RecoveryReport& rep = manager.report();
    t.rollbacks = rep.rollbacks;
    t.detections = rep.detections;
    t.wasted_cycles = rep.wasted_cycles;
    t.residual_cml = rep.residual_cml;
    t.recovery_gave_up = rep.gave_up;
    rolled_away_peak = rep.peak_cml_seen;
  } else {
    job = world.run();
  }

  t.trap = job.crashed ? job.first_trap : vm::Trap::None;
  t.injected = !injector.events().empty();
  if (t.injected) t.injection = injector.events().front();
  t.total_cml_final = job.total_cml_final();
  t.total_cml_peak = job.total_cml_peak();
  const std::uint64_t words = job.total_allocated_words();
  t.contaminated_pct =
      words == 0 ? 0.0
                 : 100.0 * static_cast<double>(t.total_cml_peak) /
                       static_cast<double>(words);
  t.contaminated_ranks = job.contaminated_ranks();
  t.reported_iters = job.reported_iters();
  t.global_cycles = job.global_cycles;
  // A restore rewinds the shadow tables, so fold in the peak the detector
  // observed before rollback: a recovered trial still "touched memory".
  t.outcome = classify(job, std::max(t.total_cml_peak, rolled_away_peak) > 0);
  t.recovered = t.rollbacks > 0 && t.outcome != Outcome::Crashed &&
                t.outcome != Outcome::WrongOutput;
  if (capture_trace) {
    t.trace = world.global_trace();
    t.rank_first_contaminated.reserve(job.ranks.size());
    for (const auto& r : job.ranks) {
      t.rank_first_contaminated.push_back(r.first_contaminated_at);
    }
  }
  return t;
}

std::vector<SiteVulnerability> site_breakdown(const AppHarness& harness,
                                              const CampaignResult& result) {
  std::map<std::int64_t, SiteVulnerability> by_site;
  for (const auto& t : result.trials) {
    if (!t.injected) continue;
    SiteVulnerability& sv = by_site[t.injection.site_id];
    if (sv.site_id < 0) {
      sv.site_id = t.injection.site_id;
      const auto& site =
          harness.sites().at(static_cast<std::size_t>(t.injection.site_id));
      sv.consumer = site.consumer;
      sv.function = site.function;
    }
    switch (t.outcome) {
      case Outcome::Vanished: ++sv.counts.vanished; break;
      case Outcome::OutputNotAffected: ++sv.counts.ona; break;
      case Outcome::WrongOutput: ++sv.counts.wrong_output; break;
      case Outcome::ProlongedExecution: ++sv.counts.pex; break;
      case Outcome::Crashed: ++sv.counts.crashed; break;
    }
    sv.mean_contaminated_pct += t.contaminated_pct;  // sum; divided below
  }
  std::vector<SiteVulnerability> out;
  out.reserve(by_site.size());
  for (auto& [id, sv] : by_site) {
    if (sv.counts.total() > 0) {
      sv.mean_contaminated_pct /= static_cast<double>(sv.counts.total());
    }
    out.push_back(std::move(sv));
  }
  std::sort(out.begin(), out.end(),
            [](const SiteVulnerability& a, const SiteVulnerability& b) {
              if (a.severity() != b.severity()) {
                return a.severity() > b.severity();
              }
              return a.counts.total() > b.counts.total();
            });
  return out;
}

namespace {

/// Worker-side product of one trial: the result plus the propagation-slope
/// fit, extracted while the (possibly discarded) trace is still in hand.
struct TrialSlot {
  TrialResult t;
  double slope = 0.0;
  bool slope_usable = false;
};

/// Executes trials [first(chunks)..] pulled from a shared chunk counter.
/// Trial i writes only slot i, so workers never contend on results; the
/// trace-retention cutoff depends only on the trial index, so what each
/// worker keeps is independent of scheduling.
void trial_worker(const AppHarness& harness, const CampaignConfig& config,
                  const std::vector<inject::InjectionPlan>& plans,
                  std::vector<TrialSlot>& slots, std::atomic<std::size_t>& next,
                  std::size_t chunk) {
  for (;;) {
    const std::size_t begin = next.fetch_add(chunk);
    if (begin >= plans.size()) return;
    const std::size_t end = std::min(begin + chunk, plans.size());
    for (std::size_t i = begin; i < end; ++i) {
      TrialSlot& slot = slots[i];
      slot.t = harness.run_trial(plans[i], config.capture_traces);
      if (config.capture_traces && !slot.t.trace.empty()) {
        // Fit the propagation slope while the trace is still in hand; the
        // crash cases (immediate termination) rarely yield usable traces.
        const model::TraceModel tm = model::model_trace(slot.t.trace);
        slot.slope = tm.rate.a;
        slot.slope_usable = tm.usable;
      }
      if (!config.capture_traces || i >= config.max_kept_traces) {
        // Same retention rule as the serial merge: only the first
        // max_kept_traces trials keep their trace. Dropping it here bounds
        // in-flight memory to the kept set regardless of trial count.
        slot.t.trace.clear();
        slot.t.trace.shrink_to_fit();
      }
    }
  }
}

std::size_t effective_jobs(std::size_t requested, std::size_t trials) {
  std::size_t jobs =
      requested != 0 ? requested
                     : std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  return std::max<std::size_t>(std::min(jobs, trials), 1);
}

}  // namespace

CampaignResult run_campaign(const AppHarness& harness,
                            const CampaignConfig& config) {
  // Phase 1 — pre-sample every injection plan up front. Plan i depends only
  // on derive_seed(config.seed, i), never on execution order, so the sampled
  // campaign is identical at any jobs value.
  std::vector<inject::InjectionPlan> plans;
  plans.reserve(config.trials);
  for (std::size_t i = 0; i < config.trials; ++i) {
    Xoshiro256 rng(derive_seed(config.seed, i));
    plans.push_back(inject::sample_faults(harness.golden().dyn_counts,
                                          config.faults_per_run, rng));
  }

  // Phase 2 — execute trials on the worker pool. Chunked dynamic dispatch:
  // trial cost varies wildly (crashes terminate early), so workers pull
  // modest chunks off a shared counter instead of static striping.
  std::vector<TrialSlot> slots(config.trials);
  const std::size_t jobs = effective_jobs(config.jobs, config.trials);
  const std::size_t chunk =
      std::max<std::size_t>(1, config.trials / (jobs * 8));
  std::atomic<std::size_t> next{0};
  if (jobs <= 1) {
    trial_worker(harness, config, plans, slots, next, chunk);
  } else {
    std::vector<std::exception_ptr> errors(jobs);
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) {
      pool.emplace_back([&, w] {
        try {
          trial_worker(harness, config, plans, slots, next, chunk);
        } catch (...) {
          errors[w] = std::current_exception();
          // Drain the counter so the surviving workers wind down quickly.
          next.store(plans.size());
        }
      });
    }
    for (auto& th : pool) th.join();
    for (const auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }

  // Phase 3 — merge in trial-index order. This loop is the serial campaign
  // loop minus execution, so counts, slopes, kept traces and recovery
  // aggregates come out bit-identical to a jobs=1 run.
  CampaignResult result;
  result.trials.reserve(config.trials);
  for (std::size_t i = 0; i < config.trials; ++i) {
    TrialResult& t = slots[i].t;
    switch (t.outcome) {
      case Outcome::Vanished: ++result.counts.vanished; break;
      case Outcome::OutputNotAffected: ++result.counts.ona; break;
      case Outcome::WrongOutput: ++result.counts.wrong_output; break;
      case Outcome::ProlongedExecution: ++result.counts.pex; break;
      case Outcome::Crashed: ++result.counts.crashed; break;
    }
    result.max_contaminated_pct.push_back(t.contaminated_pct);
    if (t.recovered) ++result.recovered_trials;
    result.total_rollbacks += t.rollbacks;
    result.total_wasted_cycles += t.wasted_cycles;
    if (slots[i].slope_usable && slots[i].slope > 0.0) {
      result.slopes.push_back(slots[i].slope);
    }
    result.trials.push_back(std::move(t));
  }
  return result;
}

}  // namespace fprop::harness
