#include "fprop/model/rollback_sim.h"

#include <algorithm>

#include "fprop/model/propagation_model.h"

namespace fprop::model {

const char* rollback_policy_name(RollbackPolicy p) noexcept {
  switch (p) {
    case RollbackPolicy::Always: return "always";
    case RollbackPolicy::Never: return "never";
    case RollbackPolicy::FpsModel: return "fps-model";
  }
  return "?";
}

namespace {

/// CML at virtual time `t` per the trace (last sample at or before t).
std::uint64_t cml_at(std::span<const fpm::TraceSample> trace,
                     std::uint64_t t) {
  std::uint64_t cml = 0;
  for (const auto& s : trace) {
    if (s.cycle > t) break;
    cml = s.cml;
  }
  return cml;
}

}  // namespace

RollbackOutcome simulate_rollback(std::span<const fpm::TraceSample> trace,
                                  const DetectorConfig& detector,
                                  RollbackPolicy policy) {
  RollbackOutcome out;
  out.policy = policy;
  if (trace.empty()) return out;
  const std::uint64_t t_end = trace.back().cycle;

  std::uint64_t last_clean_checkpoint = 0;
  for (std::uint64_t t = detector.interval; t <= t_end;
       t += detector.interval) {
    if (cml_at(trace, t) == 0) {
      last_clean_checkpoint = t;  // clean: take a checkpoint, keep going
      continue;
    }
    // Detection. Decide per policy.
    out.detected = true;
    // Eq. 3 prediction of contamination if the run continues to the end:
    // bound within the detection window plus growth at the application FPS.
    const double now = max_cml_estimate(detector.fps,
                                        static_cast<double>(last_clean_checkpoint),
                                        static_cast<double>(t));
    out.predicted_final_cml =
        now + detector.fps * static_cast<double>(t_end - t);
    const bool rollback =
        policy == RollbackPolicy::Always ||
        (policy == RollbackPolicy::FpsModel &&
         out.predicted_final_cml > detector.cml_threshold);
    if (rollback) {
      out.rolled_back = true;
      // Restore the last clean checkpoint: the transient fault does not
      // recur, so the remainder of the run is clean; the cost is the work
      // between the checkpoint and the detection.
      out.wasted_cycles = t - last_clean_checkpoint;
      out.residual_cml = 0;
      return out;
    }
    // Keep running: contamination persists; stop checking further windows
    // (the detector already fired) and charge the end-of-run residual.
    out.residual_cml = trace.back().cml;
    return out;
  }
  // Detector never fired within its grid (fault too late or none): whatever
  // contamination remains at the end is residual.
  out.residual_cml = trace.back().cml;
  return out;
}

PolicySummary summarize_policy(
    const std::vector<std::vector<fpm::TraceSample>>& traces,
    const DetectorConfig& detector, RollbackPolicy policy) {
  PolicySummary s;
  s.policy = policy;
  for (const auto& tr : traces) {
    if (tr.empty()) continue;
    const RollbackOutcome o = simulate_rollback(tr, detector, policy);
    ++s.runs;
    if (o.detected) ++s.detections;
    if (o.rolled_back) ++s.rollbacks;
    s.total_wasted_cycles += static_cast<double>(o.wasted_cycles);
    s.total_residual_cml += static_cast<double>(o.residual_cml);
  }
  return s;
}

}  // namespace fprop::model
