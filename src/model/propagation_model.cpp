#include "fprop/model/propagation_model.h"

#include <algorithm>
#include <cmath>

#include "fprop/support/error.h"

namespace fprop::model {

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  FPROP_CHECK(x.size() == y.size());
  LinearFit fit;
  fit.n = x.size();
  if (fit.n < 2) return fit;
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double n = static_cast<double>(fit.n);
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    fit.b = sy / n;
    return fit;
  }
  fit.a = (n * sxy - sx * sy) / denom;
  fit.b = (sy - fit.a * sx) / n;

  const double mean_y = sy / n;
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = fit.a * x[i] + fit.b;
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  fit.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

PiecewiseFit fit_linear_then_constant(std::span<const double> x,
                                      std::span<const double> y) {
  FPROP_CHECK(x.size() == y.size());
  PiecewiseFit best;
  best.n = x.size();
  if (x.size() < 3) {
    const LinearFit lf = fit_linear(x, y);
    best.a = lf.a;
    best.b = lf.b;
    best.knee = x.empty() ? 0.0 : x.back();
    best.plateau = y.empty() ? 0.0 : y.back();
    return best;
  }

  best.sse = HUGE_VAL;
  // Try each sample as the knee; fit linear before (inclusive) and a
  // constant (mean) after. Exhaustive but O(n) per candidate via prefix
  // sums would be overkill for trace sizes in the hundreds.
  for (std::size_t k = 1; k + 1 < x.size(); ++k) {
    const LinearFit lf =
        fit_linear(x.subspan(0, k + 1), y.subspan(0, k + 1));
    double mean_after = 0.0;
    for (std::size_t i = k; i < y.size(); ++i) mean_after += y[i];
    mean_after /= static_cast<double>(y.size() - k);

    double sse = 0.0;
    for (std::size_t i = 0; i <= k; ++i) {
      const double pred = lf.a * x[i] + lf.b;
      sse += (y[i] - pred) * (y[i] - pred);
    }
    for (std::size_t i = k + 1; i < y.size(); ++i) {
      sse += (y[i] - mean_after) * (y[i] - mean_after);
    }
    if (sse < best.sse) {
      best.sse = sse;
      best.a = lf.a;
      best.b = lf.b;
      best.knee = x[k];
      best.plateau = mean_after;
    }
  }
  return best;
}

double cross_validate_linear(std::span<const double> x,
                             std::span<const double> y, std::size_t folds) {
  FPROP_CHECK(x.size() == y.size());
  FPROP_CHECK(folds >= 2);
  if (x.size() < folds * 2) return 0.0;

  double mean_abs_y = 0.0;
  for (double v : y) mean_abs_y += std::fabs(v);
  mean_abs_y /= static_cast<double>(y.size());
  if (mean_abs_y == 0.0) return 0.0;

  double total_err = 0.0;
  std::size_t total_count = 0;
  for (std::size_t f = 0; f < folds; ++f) {
    std::vector<double> tx;
    std::vector<double> ty;
    std::vector<double> vx;
    std::vector<double> vy;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (i % folds == f) {
        vx.push_back(x[i]);
        vy.push_back(y[i]);
      } else {
        tx.push_back(x[i]);
        ty.push_back(y[i]);
      }
    }
    const LinearFit lf = fit_linear(tx, ty);
    for (std::size_t i = 0; i < vx.size(); ++i) {
      total_err += std::fabs(lf.a * vx[i] + lf.b - vy[i]);
      ++total_count;
    }
  }
  return total_err / static_cast<double>(total_count) / mean_abs_y;
}

TraceModel model_trace(std::span<const fpm::TraceSample> trace) {
  TraceModel m;
  // Restrict to the signal region: from the first nonzero CML sample
  // (everything before the fault is exactly zero) to the end of the run.
  std::size_t first = trace.size();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].cml > 0) {
      first = i;
      break;
    }
  }
  if (first == trace.size()) return m;  // never contaminated
  // Include one leading zero sample so the intercept sees the onset.
  if (first > 0) --first;

  std::vector<double> x;
  std::vector<double> y;
  x.reserve(trace.size() - first);
  for (std::size_t i = first; i < trace.size(); ++i) {
    x.push_back(static_cast<double>(trace[i].cycle));
    y.push_back(static_cast<double>(trace[i].cml));
  }
  if (x.size() < 3) return m;

  m.fit = fit_linear_then_constant(x, y);
  m.rate = fit_linear(x, y);
  m.final_cml = y.back();
  m.inferred_tf = m.rate.a != 0.0 ? -m.rate.b / m.rate.a : 0.0;
  m.usable = true;
  return m;
}

FpsModel aggregate_fps(std::span<const double> slopes) {
  FpsModel fm;
  RunningStat rs;
  for (double s : slopes) rs.add(s);
  fm.fps = rs.mean();
  fm.stddev = rs.stddev();
  fm.min = rs.count() > 0 ? rs.min() : 0.0;
  fm.max = rs.count() > 0 ? rs.max() : 0.0;
  fm.num_models = rs.count();
  return fm;
}

double max_cml_estimate(double fps, double t1, double t2) {
  FPROP_CHECK(t2 >= t1);
  return fps * (t2 - t1);
}

double avg_cml_estimate(double fps, double t1, double t2) {
  return max_cml_estimate(fps, t1, t2) / 2.0;
}

RollbackDecision advise_rollback(double fps, double t1, double t2,
                                 double t_end, double cml_threshold) {
  FPROP_CHECK(t_end >= t2);
  RollbackDecision d;
  d.predicted_cml_now = max_cml_estimate(fps, t1, t2);
  // If the application keeps running to t_end, the contamination keeps
  // growing at the application's FPS.
  d.predicted_cml_at_end = d.predicted_cml_now + fps * (t_end - t2);
  d.rollback = d.predicted_cml_at_end > cml_threshold;
  return d;
}

}  // namespace fprop::model
