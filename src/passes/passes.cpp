#include "fprop/passes/passes.h"

#include "fprop/ir/printer.h"
#include "fprop/ir/verifier.h"

namespace fprop::passes {

bool is_data_arith(ir::Opcode op) noexcept {
  using ir::Opcode;
  switch (op) {
    case Opcode::AddI: case Opcode::SubI: case Opcode::MulI:
    case Opcode::DivI: case Opcode::RemI: case Opcode::AndI:
    case Opcode::OrI: case Opcode::XorI: case Opcode::ShlI:
    case Opcode::ShrI: case Opcode::NegI: case Opcode::NotI:
    case Opcode::AddF: case Opcode::SubF: case Opcode::MulF:
    case Opcode::DivF: case Opcode::NegF:
    case Opcode::I2F: case Opcode::F2I:
      return true;
    default:
      return false;
  }
}

bool is_compare(ir::Opcode op) noexcept {
  using ir::Opcode;
  switch (op) {
    case Opcode::EqI: case Opcode::NeI: case Opcode::LtI:
    case Opcode::LeI: case Opcode::GtI: case Opcode::GeI:
    case Opcode::EqF: case Opcode::NeF: case Opcode::LtF:
    case Opcode::LeF: case Opcode::GtF: case Opcode::GeF:
    case Opcode::EqP: case Opcode::NeP:
      return true;
    default:
      return false;
  }
}

namespace {

using ir::Function;
using ir::Instr;
using ir::Module;
using ir::Opcode;
using ir::Reg;

/// Registers whose single definition is a materialized constant — these
/// correspond to LLVM immediates and are not injection targets.
std::vector<bool> const_defined_regs(const Function& f) {
  std::vector<bool> is_const(f.num_regs(), false);
  for (const auto& block : f.blocks) {
    for (const auto& in : block.code) {
      if (in.op == Opcode::ConstI || in.op == Opcode::ConstF) {
        is_const[in.dst] = true;
      }
    }
  }
  return is_const;
}

/// Registers that only ever hold booleans (LLVM i1 analogues): defined
/// exclusively by comparisons, 0/1 constants, moves/logical combinations of
/// other boolean registers. A live-register flip in such a register can only
/// touch its single meaningful bit, so the injector is told width = 1.
std::vector<bool> boolean_regs(const Function& f) {
  std::vector<bool> is_bool(f.num_regs(), false);
  for (Reg r = 0; r < f.num_regs(); ++r) {
    is_bool[r] = f.reg_types[r] == ir::Type::I64;  // optimistic start
  }
  for (Reg p : f.params) is_bool[p] = false;  // conservative across calls
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& block : f.blocks) {
      for (const auto& in : block.code) {
        if (in.dst == ir::kNoReg) continue;
        bool produces_bool = false;
        if (is_compare(in.op)) {
          produces_bool = true;
        } else {
          switch (in.op) {
            case Opcode::Mov:
            case Opcode::FimInj:
              produces_bool = is_bool[in.a()];
              break;
            case Opcode::AndI:
            case Opcode::OrI:
            case Opcode::XorI:
              produces_bool = is_bool[in.a()] && is_bool[in.b()];
              break;
            default:
              produces_bool = false;
              break;
          }
        }
        if (!produces_bool && is_bool[in.dst]) {
          is_bool[in.dst] = false;
          changed = true;
        }
      }
    }
  }
  return is_bool;
}

void inject_function(Function& f, const InjectTargets& targets,
                     std::int64_t& next_site,
                     std::vector<InjectionSite>& sites) {
  FPROP_CHECK_MSG(!f.dual_chain,
                  "FaultInjectionPass must run before DualChainPass");
  const auto is_const = const_defined_regs(f);
  const auto is_bool = boolean_regs(f);
  for (std::size_t bi = 0; bi < f.blocks.size(); ++bi) {
    auto& block = f.blocks[bi];
    std::vector<Instr> out;
    out.reserve(block.code.size() * 2);
    for (Instr in : block.code) {
      // Select the source-operand indices to instrument.
      std::vector<std::uint8_t> operand_idx;
      const bool eligible_arith =
          (targets.arith && is_data_arith(in.op)) ||
          (targets.compares && is_compare(in.op)) ||
          (targets.addresses && in.op == Opcode::PtrAdd);
      if (eligible_arith) {
        for (std::uint8_t i = 0; i < in.nops; ++i) operand_idx.push_back(i);
      } else if (targets.load_address && in.op == Opcode::Load) {
        operand_idx.push_back(0);
      } else if (targets.store_operands && in.op == Opcode::Store) {
        operand_idx.push_back(0);
        operand_idx.push_back(1);
      }
      for (std::uint8_t i : operand_idx) {
        const Reg src = in.ops[i];
        if (is_const[src]) continue;
        const ir::Type t = f.reg_type(src);
        const Reg injected = f.add_reg(t);
        Instr fim;
        fim.op = Opcode::FimInj;
        fim.type = t;
        fim.inj_width = is_bool[src] ? 1 : 64;
        fim.dst = injected;
        fim.ops[0] = src;
        fim.nops = 1;
        fim.imm = next_site;
        sites.push_back({next_site, f.name, static_cast<ir::BlockId>(bi),
                         ir::to_string(f, in), t});
        ++next_site;
        out.push_back(fim);
        in.ops[i] = injected;
      }
      out.push_back(std::move(in));
    }
    block.code = std::move(out);
  }
}

class DualChain {
 public:
  DualChain(Module& m, Function& f) : m_(m), f_(f) {}

  void run() {
    FPROP_CHECK_MSG(!f_.dual_chain, "DualChainPass run twice on @" + f_.name);
    const auto first_new = static_cast<Reg>(f_.num_regs());
    shadow_.resize(first_new);
    for (Reg r = 0; r < first_new; ++r) {
      shadow_[r] = f_.add_reg(f_.reg_type(r));
    }
    // Dual call convention: one pristine parameter per input parameter,
    // appended after the originals (§3.2 "Function Calls").
    const std::size_t orig_params = f_.params.size();
    for (std::size_t i = 0; i < orig_params; ++i) {
      f_.params.push_back(shadow_[f_.params[i]]);
    }
    for (auto& block : f_.blocks) rewrite_block(block);
    f_.dual_chain = true;
    for (Reg r = 0; r < first_new; ++r) f_.shadow_of.emplace(r, shadow_[r]);
  }

 private:
  Reg sh(Reg r) const { return shadow_.at(r); }

  void rewrite_block(ir::BasicBlock& block) {
    std::vector<Instr> out;
    out.reserve(block.code.size() * 2);
    for (Instr in : block.code) {
      switch (in.op) {
        case Opcode::FpmFetch:
        case Opcode::FpmStore:
          throw Error("module already dual-chain transformed");

        case Opcode::ConstI:
        case Opcode::ConstF: {
          out.push_back(in);
          Instr dup = in;
          dup.dst = sh(in.dst);
          out.push_back(std::move(dup));
          break;
        }

        case Opcode::Mov: {
          out.push_back(in);
          Instr dup = in;
          dup.dst = sh(in.dst);
          dup.ops[0] = sh(in.a());
          out.push_back(std::move(dup));
          break;
        }

        case Opcode::FimInj:
          // Injection exists only on the primary chain; the pristine twin of
          // the injected register is the (unmodified) twin of its source.
          out.push_back(in);
          shadow_[in.dst] = sh(in.a());
          break;

        case Opcode::Load: {
          out.push_back(in);
          Instr fetch;
          fetch.op = Opcode::FpmFetch;
          fetch.type = in.type;
          fetch.dst = sh(in.dst);
          fetch.ops[0] = sh(in.a());
          fetch.nops = 1;
          out.push_back(std::move(fetch));
          break;
        }

        case Opcode::Store: {
          // Replaced by fpm_store, which performs the primary write and the
          // runtime check in one step (value, pristine value, address,
          // pristine address — the last pair covers corrupted-pointer
          // stores, §3.2 "Store addresses").
          Instr st;
          st.op = Opcode::FpmStore;
          st.type = in.type;
          st.ops = {in.a(), sh(in.a()), in.b(), sh(in.b())};
          st.nops = 4;
          out.push_back(std::move(st));
          break;
        }

        case Opcode::Jmp:
        case Opcode::Br:
          // Control flow follows the primary (potentially corrupted) chain.
          out.push_back(in);
          break;

        case Opcode::Ret: {
          if (!in.args.empty()) {
            const Reg v = in.args[0];
            in.args = {v, sh(v)};
          }
          out.push_back(std::move(in));
          break;
        }

        case Opcode::Call: {
          const Function& callee = m_.func(in.callee);
          if (callee.is_app_code) {
            const std::size_t n = in.args.size();
            for (std::size_t i = 0; i < n; ++i) {
              in.args.push_back(sh(in.args[i]));
            }
            if (in.dst != ir::kNoReg) in.dst2 = sh(in.dst);
            out.push_back(std::move(in));
          } else {
            // Untransformed callee: result is born pristine.
            const Reg dst = in.dst;
            out.push_back(std::move(in));
            if (dst != ir::kNoReg) emit_mov(out, sh(dst), dst);
          }
          break;
        }

        case Opcode::Intrinsic: {
          if (ir::intrinsic_is_pure(in.intr)) {
            // Replicate pure library calls on the pristine operands — the
            // paper's sin() double-execution.
            out.push_back(in);
            Instr dup = in;
            dup.dst = sh(in.dst);
            for (auto& a : dup.args) a = sh(a);
            out.push_back(std::move(dup));
          } else {
            const Reg dst = in.dst;
            out.push_back(std::move(in));
            if (dst != ir::kNoReg) emit_mov(out, sh(dst), dst);
          }
          break;
        }

        default: {
          FPROP_CHECK_MSG(ir::is_arith(in.op),
                          "unhandled opcode in dual-chain pass");
          out.push_back(in);
          Instr dup = in;
          dup.dst = sh(in.dst);
          for (std::uint8_t i = 0; i < dup.nops; ++i) {
            dup.ops[i] = sh(dup.ops[i]);
          }
          out.push_back(std::move(dup));
          break;
        }
      }
    }
    block.code = std::move(out);
  }

  void emit_mov(std::vector<Instr>& out, Reg dst, Reg src) {
    Instr mv;
    mv.op = Opcode::Mov;
    mv.type = f_.reg_type(src);
    mv.dst = dst;
    mv.ops[0] = src;
    mv.nops = 1;
    out.push_back(std::move(mv));
  }

  Module& m_;
  Function& f_;
  std::vector<Reg> shadow_;
};

}  // namespace

std::vector<InjectionSite> run_fault_injection_pass(
    ir::Module& m, const InjectTargets& targets) {
  std::vector<InjectionSite> sites;
  std::int64_t next_site = 0;
  if (!targets.any()) return sites;
  for (auto& f : m.funcs) {
    if (f.is_app_code) inject_function(f, targets, next_site, sites);
  }
  return sites;
}

void run_dual_chain_pass(ir::Module& m) {
  for (auto& f : m.funcs) {
    if (f.is_app_code) DualChain(m, f).run();
  }
}

std::vector<InjectionSite> instrument_module(ir::Module& m,
                                             const InjectTargets& targets) {
  auto sites = run_fault_injection_pass(m, targets);
  run_dual_chain_pass(m);
  ir::verify(m);
  return sites;
}

}  // namespace fprop::passes
