#include "fprop/fpm/message.h"

namespace fprop::fpm {

MessageHeader build_header(const ShadowTable& sender, std::uint64_t buf_addr,
                           std::uint64_t count_words) {
  MessageHeader h;
  const auto entries =
      sender.in_range(buf_addr, buf_addr + count_words * 8);
  h.records.reserve(entries.size());
  for (const auto& [addr, pristine] : entries) {
    h.records.push_back({(addr - buf_addr) / 8, pristine});
  }
  return h;
}

void install_header(ShadowTable& receiver, std::uint64_t buf_addr,
                    std::uint64_t count_words, const MessageHeader& header) {
  // The incoming copy replaced the whole destination range, so any prior
  // contamination there is gone; contamination now comes only from the
  // sender's records.
  receiver.heal_range(buf_addr, buf_addr + count_words * 8);
  for (const auto& rec : header.records) {
    receiver.record(buf_addr + rec.displacement_words * 8, rec.pristine_bits);
  }
}

std::uint64_t header_wire_words(const MessageHeader& header) noexcept {
  return 1 + 2 * static_cast<std::uint64_t>(header.records.size());
}

}  // namespace fprop::fpm
