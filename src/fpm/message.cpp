#include "fprop/fpm/message.h"

#include <algorithm>

namespace fprop::fpm {

MessageHeader build_header(const ShadowTable& sender, std::uint64_t buf_addr,
                           std::uint64_t count_words) {
  MessageHeader h;
  const auto entries =
      sender.in_range(buf_addr, buf_addr + count_words * 8);
  h.records.reserve(entries.size());
  for (const auto& [addr, pristine] : entries) {
    h.records.push_back({(addr - buf_addr) / 8, pristine});
  }
  return h;
}

InstallResult install_header(ShadowTable& receiver, std::uint64_t buf_addr,
                             std::uint64_t count_words,
                             const MessageHeader& header) {
  // The incoming copy replaced the whole destination range, so any prior
  // contamination there is gone; contamination now comes only from the
  // sender's records.
  receiver.heal_range(buf_addr, buf_addr + count_words * 8);
  InstallResult res;
  for (const auto& rec : header.records) {
    // Untrusted displacement: installing past the receive buffer would
    // poison an unrelated shadow entry (and displacement*8 can overflow
    // buf_addr). Quarantine instead — the blast radius of a corrupted
    // header stays confined to the buffer the receiver asked for.
    if (rec.displacement_words >= count_words) {
      ++res.quarantined;
      continue;
    }
    receiver.record(buf_addr + rec.displacement_words * 8, rec.pristine_bits);
    ++res.installed;
  }
  return res;
}

std::uint64_t header_wire_words(const MessageHeader& header) noexcept {
  return 1 + 2 * static_cast<std::uint64_t>(header.records.size());
}

std::vector<std::uint64_t> serialize_header(const MessageHeader& header) {
  std::vector<std::uint64_t> words;
  words.reserve(header_wire_words(header));
  words.push_back(header.records.size());
  for (const auto& rec : header.records) {
    words.push_back(rec.displacement_words);
    words.push_back(rec.pristine_bits);
  }
  return words;
}

bool deserialize_header(const std::vector<std::uint64_t>& words,
                        MessageHeader& out) {
  out.records.clear();
  if (words.empty()) return false;  // a header always carries its count word
  const std::uint64_t claimed = words[0];
  const std::uint64_t physical =
      (static_cast<std::uint64_t>(words.size()) - 1) / 2;
  // A corrupted count word may claim billions of records; only the pairs
  // physically on the wire can be parsed, so clamp — never allocate or read
  // on the claim alone.
  const std::uint64_t n = std::min(claimed, physical);
  out.records.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    out.records.push_back({words[1 + 2 * i], words[2 + 2 * i]});
  }
  // Well-formed means the count word matches the physical layout exactly
  // (count*2 + 1 words). Trailing garbage or an inflated/truncated count
  // marks the stream malformed so the receiver can flag the channel.
  return claimed == physical &&
         words.size() == 1 + 2 * static_cast<std::size_t>(claimed);
}

}  // namespace fprop::fpm
