#include "fprop/fpm/runtime.h"

namespace fprop::fpm {

void FpmRuntime::on_store(std::uint64_t val, std::uint64_t val_p,
                          std::uint64_t addr, std::uint64_t addr_p,
                          std::uint64_t old_pristine_addr,
                          std::uint64_t mem_at_addr_p,
                          bool have_addr_p_content) {
  ++stats_.stores_checked;
  if (addr == addr_p) {
    // Common case: the destination address is uncorrupted. The location is
    // contaminated iff the stored primary value diverges from the pristine
    // value the secondary chain computed.
    if (val != val_p) {
      ++stats_.stores_divergent;
      shadow_.record(addr, val_p);
      if (recorder_ != nullptr) {
        if (!divergence_seen_) {
          divergence_seen_ = true;
          recorder_->emit(obs::EventKind::FirstDivergence, rank_, clock_hint_,
                          0);
        }
        recorder_->emit(obs::EventKind::ShadowRecord, rank_, clock_hint_, addr,
                        shadow_.size(), val_p);
      }
    } else if (shadow_.heal(addr)) {
      // The store wrote the correct value over a previously contaminated
      // word — the location healed (masking, Table 1 rows 2/4). heal()
      // reports whether the word was present, so no separate contaminated()
      // probe is needed.
      ++stats_.heals;
      FPROP_OBS_EMIT(recorder_, obs::EventKind::ShadowHeal, rank_, clock_hint_,
                     addr, shadow_.size());
    }
    return;
  }

  // "Store addresses" duplicate effect (paper §3.2): the address register
  // itself was corrupted, so the write landed at `addr` instead of `addr_p`.
  ++stats_.wild_stores;
  if (recorder_ != nullptr && !divergence_seen_) {
    divergence_seen_ = true;
    recorder_->emit(obs::EventKind::FirstDivergence, rank_, clock_hint_, 1);
  }

  // (1) `addr` was overwritten with `val` but fault-free execution would
  // leave it at `old_pristine_addr`.
  if (val != old_pristine_addr) {
    ++stats_.stores_divergent;
    shadow_.record(addr, old_pristine_addr);
    FPROP_OBS_EMIT(recorder_, obs::EventKind::ShadowRecord, rank_, clock_hint_,
                   addr, shadow_.size(), old_pristine_addr);
  } else if (shadow_.heal(addr)) {
    ++stats_.heals;
    FPROP_OBS_EMIT(recorder_, obs::EventKind::ShadowHeal, rank_, clock_hint_,
                   addr, shadow_.size());
  }

  // (2) `addr_p` should now hold `val_p` but was never written.
  if (!have_addr_p_content || mem_at_addr_p != val_p) {
    shadow_.record(addr_p, val_p);
    FPROP_OBS_EMIT(recorder_, obs::EventKind::ShadowRecord, rank_, clock_hint_,
                   addr_p, shadow_.size(), val_p);
  } else if (shadow_.heal(addr_p)) {
    ++stats_.heals;
    FPROP_OBS_EMIT(recorder_, obs::EventKind::ShadowHeal, rank_, clock_hint_,
                   addr_p, shadow_.size());
  }
}

}  // namespace fprop::fpm
