#include "fprop/fpm/runtime.h"

namespace fprop::fpm {

void FpmRuntime::on_store(std::uint64_t val, std::uint64_t val_p,
                          std::uint64_t addr, std::uint64_t addr_p,
                          std::uint64_t old_pristine_addr,
                          std::uint64_t mem_at_addr_p,
                          bool have_addr_p_content) {
  ++stats_.stores_checked;
  if (addr == addr_p) {
    // Common case: the destination address is uncorrupted. The location is
    // contaminated iff the stored primary value diverges from the pristine
    // value the secondary chain computed.
    if (val != val_p) {
      ++stats_.stores_divergent;
      shadow_.record(addr, val_p);
    } else if (shadow_.heal(addr)) {
      // The store wrote the correct value over a previously contaminated
      // word — the location healed (masking, Table 1 rows 2/4). heal()
      // reports whether the word was present, so no separate contaminated()
      // probe is needed.
      ++stats_.heals;
    }
    return;
  }

  // "Store addresses" duplicate effect (paper §3.2): the address register
  // itself was corrupted, so the write landed at `addr` instead of `addr_p`.
  ++stats_.wild_stores;

  // (1) `addr` was overwritten with `val` but fault-free execution would
  // leave it at `old_pristine_addr`.
  if (val != old_pristine_addr) {
    ++stats_.stores_divergent;
    shadow_.record(addr, old_pristine_addr);
  } else if (shadow_.heal(addr)) {
    ++stats_.heals;
  }

  // (2) `addr_p` should now hold `val_p` but was never written.
  if (!have_addr_p_content || mem_at_addr_p != val_p) {
    shadow_.record(addr_p, val_p);
  } else if (shadow_.heal(addr_p)) {
    ++stats_.heals;
  }
}

}  // namespace fprop::fpm
