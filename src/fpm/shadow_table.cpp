#include "fprop/fpm/shadow_table.h"

#include <algorithm>

namespace fprop::fpm {

void ShadowTable::erase_at(std::size_t hole) {
  // Backward-shift deletion: walk the cluster after the hole and pull back
  // every entry whose home slot lies at or before the hole, leaving no
  // tombstone. Probe chains therefore stay exactly as long as the live
  // entries require, no matter how many record/heal cycles have run.
  Slot* data = slots_.data();
  const std::size_t m = mask();
  std::size_t cur = hole;
  for (;;) {
    cur = (cur + 1) & m;
    if (data[cur].key == kEmptyKey) break;
    const std::size_t home = home_slot(data[cur].key);
    // Cyclic test: can this entry reach `hole` from its home without
    // crossing an empty slot? Equivalently, home is NOT strictly inside
    // (hole, cur].
    const bool unreachable = ((cur - home) & m) < ((cur - hole) & m);
    if (!unreachable) {
      data[hole] = data[cur];
      hole = cur;
    }
  }
  data[hole].key = kEmptyKey;
}

void ShadowTable::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{kEmptyKey, 0});
  --shift_;
  for (const Slot& s : old) {
    if (s.key == kEmptyKey) continue;
    std::size_t i = home_slot(s.key);
    while (slots_[i].key != kEmptyKey) i = (i + 1) & mask();
    slots_[i] = s;
  }
}

void ShadowTable::clear() {
  slots_.assign(kMinCapacity, Slot{kEmptyKey, 0});
  shift_ = 64 - std::bit_width(kMinCapacity - 1);
  size_ = 0;
  has_sentinel_ = false;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> ShadowTable::in_range(
    std::uint64_t lo, std::uint64_t hi) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  // For typical message sizes the range is small, so probing each word of
  // the range beats scanning the whole table.
  if (hi > lo && (hi - lo) / 8 < size_) {
    for (std::uint64_t addr = lo; addr < hi; addr += 8) {
      const Slot* s = find(addr);
      if (s != nullptr) out.emplace_back(s->key, s->val);
    }
  } else {
    for (const Slot& s : slots_) {
      if (s.key != kEmptyKey && s.key >= lo && s.key < hi) {
        out.emplace_back(s.key, s.val);
      }
    }
    // The sentinel key (all ones) can never satisfy key < hi: hi is
    // exclusive, so no range covers it.
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint64_t> ShadowTable::probe_lengths() const {
  std::vector<std::uint64_t> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].key == kEmptyKey) continue;
    const std::size_t home = home_slot(slots_[i].key);
    out.push_back((i - home) & mask());
  }
  if (has_sentinel_) out.push_back(0);  // side slot: always a direct hit
  return out;
}

void ShadowTable::heal_range(std::uint64_t lo, std::uint64_t hi) {
  if (hi > lo && (hi - lo) / 8 < size_) {
    for (std::uint64_t addr = lo; addr < hi; addr += 8) heal(addr);
    return;
  }
  for (std::size_t i = 0; i < slots_.size();) {
    if (slots_[i].key != kEmptyKey && slots_[i].key >= lo &&
        slots_[i].key < hi) {
      // Backward shift may move a cluster entry into slot i; re-examine it
      // before advancing. Entries it moves to other positions are either
      // re-visited later or were already-scanned keepers.
      erase_at(i);
      --size_;
    } else {
      ++i;
    }
  }
}

}  // namespace fprop::fpm
