#include "fprop/fpm/shadow_table.h"

#include <algorithm>

namespace fprop::fpm {

std::vector<std::pair<std::uint64_t, std::uint64_t>> ShadowTable::in_range(
    std::uint64_t lo, std::uint64_t hi) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  // The table is unordered; for typical message sizes the range is small, so
  // probing each word of the range beats scanning the whole table.
  if (hi > lo && (hi - lo) / 8 < table_.size()) {
    for (std::uint64_t addr = lo; addr < hi; addr += 8) {
      auto it = table_.find(addr);
      if (it != table_.end()) out.emplace_back(it->first, it->second);
    }
  } else {
    for (const auto& [addr, pristine] : table_) {
      if (addr >= lo && addr < hi) out.emplace_back(addr, pristine);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ShadowTable::heal_range(std::uint64_t lo, std::uint64_t hi) {
  if (hi > lo && (hi - lo) / 8 < table_.size()) {
    for (std::uint64_t addr = lo; addr < hi; addr += 8) table_.erase(addr);
  } else {
    for (auto it = table_.begin(); it != table_.end();) {
      if (it->first >= lo && it->first < hi) {
        it = table_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace fprop::fpm
