#include "fprop/obs/metrics.h"

#include <algorithm>

#include "fprop/support/error.h"

namespace fprop::obs {

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  FPROP_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                  "histogram bounds must be ascending");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::observe(std::uint64_t value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else {
    FPROP_CHECK_MSG(slot->bounds() == bounds,
                    "histogram '" + name + "' re-registered with different "
                    "bucket bounds");
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h->bounds();
    hs.counts.reserve(hs.bounds.size() + 1);
    for (std::size_t i = 0; i <= hs.bounds.size(); ++i) {
      hs.counts.push_back(h->bucket_count(i));
    }
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

void MetricsRegistry::absorb(const MetricsSnapshot& snap) {
  for (const auto& [name, value] : snap.counters) {
    counter(name).add(value);
  }
  for (const auto& [name, hs] : snap.histograms) {
    FPROP_CHECK_MSG(hs.counts.size() == hs.bounds.size() + 1,
                    "histogram snapshot '" + name + "' bucket count does not "
                    "match its bounds");
    Histogram& h = histogram(name, hs.bounds);
    for (std::size_t i = 0; i < hs.counts.size(); ++i) {
      h.add_bucket(i, hs.counts[i]);
    }
    h.add_totals(hs.count, hs.sum);
  }
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace fprop::obs
