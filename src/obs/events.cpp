#include "fprop/obs/events.h"

namespace fprop::obs {

const char* event_kind_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::Injection: return "injection";
    case EventKind::FirstDivergence: return "first_divergence";
    case EventKind::ShadowRecord: return "shadow_record";
    case EventKind::ShadowHeal: return "shadow_heal";
    case EventKind::MsgSend: return "msg_send";
    case EventKind::MsgRecv: return "msg_recv";
    case EventKind::CmlSample: return "cml_sample";
    case EventKind::Trap: return "trap";
    case EventKind::DetectorScan: return "detector_scan";
    case EventKind::Checkpoint: return "checkpoint";
    case EventKind::Rollback: return "rollback";
    case EventKind::RankContaminated: return "rank_contaminated";
    case EventKind::TrialOutcome: return "trial_outcome";
    case EventKind::MsgCorrupt: return "msg_corrupt";
    case EventKind::HeaderQuarantined: return "header_quarantined";
    case EventKind::PrunedVanished: return "pruned_vanished";
  }
  return "?";
}

std::vector<Event> TrialRecorder::ordered() const {
  std::vector<Event> out;
  const std::size_t n = size();
  out.reserve(n);
  // Oldest surviving event: at head_ when the ring wrapped, else at 0.
  const std::size_t start = total_ > ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

}  // namespace fprop::obs
