#include "fprop/obs/json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace fprop::obs::json {

namespace {

const Value kNull{};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  ParseResult run() {
    ParseResult r;
    skip_ws();
    Value v;
    if (!parse_value(v)) {
      r.error = error_;
      r.error_pos = pos_;
      return r;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      r.error = "trailing garbage after document";
      r.error_pos = pos_;
      return r;
    }
    r.ok = true;
    r.value = std::move(v);
    return r;
  }

 private:
  bool fail(const std::string& why) {
    if (error_.empty()) error_ = why;
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(Value& out) {
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    bool ok = false;
    switch (s_[pos_]) {
      case '{': ok = parse_object(out); break;
      case '[': ok = parse_array(out); break;
      case '"': {
        std::string str;
        ok = parse_string(str);
        if (ok) out = Value(std::move(str));
        break;
      }
      case 't':
        ok = parse_literal("true");
        if (ok) out = Value(true);
        break;
      case 'f':
        ok = parse_literal("false");
        if (ok) out = Value(false);
        break;
      case 'n':
        ok = parse_literal("null");
        if (ok) out = Value();
        break;
      default: ok = parse_number(out); break;
    }
    --depth_;
    return ok;
  }

  bool parse_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return fail("bad literal");
    }
    return true;
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (eat('-')) {}
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) return fail("malformed number");
    out = Value(d);
    return true;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return fail("expected '\"'");
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return fail("truncated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(cp)) return false;
          // Surrogate pair: combine; a lone surrogate degrades to U+FFFD.
          if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < s_.size() &&
              s_[pos_] == '\\' && s_[pos_ + 1] == 'u') {
            pos_ += 2;
            unsigned lo = 0;
            if (!parse_hex4(lo)) return false;
            if (lo >= 0xDC00 && lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              cp = 0xFFFD;
            }
          } else if (cp >= 0xD800 && cp <= 0xDFFF) {
            cp = 0xFFFD;
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_hex4(unsigned& out) {
    out = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= s_.size()) return fail("truncated \\u escape");
      const char c = s_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape digit");
      }
    }
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_array(Value& out) {
    eat('[');
    Array arr;
    skip_ws();
    if (eat(']')) {
      out = Value(std::move(arr));
      return true;
    }
    for (;;) {
      Value v;
      if (!parse_value(v)) return false;
      arr.push_back(std::move(v));
      skip_ws();
      if (eat(']')) break;
      if (!eat(',')) return fail("expected ',' or ']' in array");
    }
    out = Value(std::move(arr));
    return true;
  }

  bool parse_object(Value& out) {
    eat('{');
    Object obj;
    skip_ws();
    if (eat('}')) {
      out = Value(std::move(obj));
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return fail("expected object key");
      skip_ws();
      if (!eat(':')) return fail("expected ':' after object key");
      Value v;
      if (!parse_value(v)) return false;
      obj[std::move(key)] = std::move(v);
      skip_ws();
      if (eat('}')) break;
      if (!eat(',')) return fail("expected ',' or '}' in object");
    }
    out = Value(std::move(obj));
    return true;
  }

  static constexpr int kMaxDepth = 256;

  const std::string& s_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

const Value& Value::operator[](const std::string& key) const {
  if (type_ == Type::Object) {
    const auto it = obj_->find(key);
    if (it != obj_->end()) return it->second;
  }
  return kNull;
}

ParseResult parse(const std::string& text) { return Parser(text).run(); }

ParseResult parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ParseResult r;
    r.error = "cannot open " + path;
    return r;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

}  // namespace fprop::obs::json
