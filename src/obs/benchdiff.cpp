#include "fprop/obs/benchdiff.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "fprop/support/error.h"

namespace fprop::obs {

namespace {

double time_unit_to_ns(const std::string& unit) {
  if (unit == "ns" || unit.empty()) return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  throw Error("unknown benchmark time_unit: " + unit);
}

}  // namespace

std::vector<BenchEntry> parse_benchmark_entries(const json::Value& doc) {
  const json::Value& benches = doc["benchmarks"];
  FPROP_CHECK_MSG(benches.is_array(),
                  "not a google-benchmark JSON file (no 'benchmarks' array)");
  std::vector<BenchEntry> out;
  out.reserve(benches.as_array().size());
  for (const json::Value& b : benches.as_array()) {
    if (!b.is_object()) continue;
    // Aggregate rows (mean/median/stddev of --benchmark_repetitions runs)
    // would double-count; keep only per-iteration measurements.
    const json::Value& run_type = b["run_type"];
    if (run_type.is_string() && run_type.as_string() == "aggregate") continue;
    const json::Value& name = b["name"];
    if (!name.is_string() || !b["real_time"].is_number()) continue;
    BenchEntry e;
    e.name = name.as_string();
    const double scale = time_unit_to_ns(
        b["time_unit"].is_string() ? b["time_unit"].as_string() : "ns");
    e.real_time = b["real_time"].as_number() * scale;
    e.cpu_time =
        b["cpu_time"].is_number() ? b["cpu_time"].as_number() * scale : 0.0;
    e.iterations = b["iterations"].is_number()
                       ? static_cast<std::uint64_t>(b["iterations"].as_number())
                       : 0;
    out.push_back(std::move(e));
  }
  return out;
}

DiffReport diff_benchmarks(const std::vector<BenchEntry>& base,
                           const std::vector<BenchEntry>& current,
                           const DiffOptions& options) {
  const auto wanted = [&](const std::string& name) {
    return options.filter.empty() ||
           name.find(options.filter) != std::string::npos;
  };
  std::map<std::string, const BenchEntry*> cur_by_name;
  for (const BenchEntry& e : current) {
    if (wanted(e.name)) cur_by_name[e.name] = &e;
  }

  DiffReport report;
  for (const BenchEntry& b : base) {
    if (!wanted(b.name)) continue;
    const auto it = cur_by_name.find(b.name);
    if (it == cur_by_name.end()) {
      report.only_in_base.push_back(b.name);
      continue;
    }
    const BenchEntry& c = *it->second;
    cur_by_name.erase(it);

    DiffRow row;
    row.name = b.name;
    row.base_ns = options.use_cpu_time ? b.cpu_time : b.real_time;
    row.cur_ns = options.use_cpu_time ? c.cpu_time : c.real_time;
    row.ratio = row.base_ns > 0.0 ? row.cur_ns / row.base_ns : 0.0;
    row.skipped = b.iterations < options.min_iters ||
                  c.iterations < options.min_iters || row.base_ns <= 0.0;
    if (!row.skipped) {
      row.regressed = row.ratio > 1.0 + options.threshold;
      row.improved = row.ratio < 1.0 - options.threshold;
    }
    if (row.regressed) ++report.regressions;
    report.rows.push_back(std::move(row));
  }
  for (const auto& [name, e] : cur_by_name) {
    (void)e;
    report.only_in_current.push_back(name);
  }
  std::sort(report.only_in_current.begin(), report.only_in_current.end());
  return report;
}

std::string format_diff_table(const DiffReport& report,
                              const DiffOptions& options) {
  std::size_t name_w = 9;  // "benchmark"
  for (const DiffRow& r : report.rows) name_w = std::max(name_w, r.name.size());

  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line), "%-*s  %14s  %14s  %8s  %s\n",
                static_cast<int>(name_w), "benchmark", "base", "current",
                "ratio", "verdict");
  out += line;
  for (const DiffRow& r : report.rows) {
    const char* verdict = r.skipped      ? "skip (min-iters)"
                          : r.regressed  ? "REGRESSED"
                          : r.improved   ? "improved"
                                         : "ok";
    std::snprintf(line, sizeof(line), "%-*s  %12.1fns  %12.1fns  %7.3fx  %s\n",
                  static_cast<int>(name_w), r.name.c_str(), r.base_ns,
                  r.cur_ns, r.ratio, verdict);
    out += line;
  }
  for (const std::string& n : report.only_in_base) {
    out += "missing from current: " + n + "\n";
  }
  for (const std::string& n : report.only_in_current) {
    out += "missing from baseline: " + n + "\n";
  }
  std::snprintf(line, sizeof(line),
                "threshold %.0f%%: %zu regression(s), %zu/%zu compared\n",
                options.threshold * 100.0, report.regressions,
                report.rows.size(),
                report.rows.size() + report.only_in_base.size() +
                    report.only_in_current.size());
  out += line;
  return out;
}

}  // namespace fprop::obs
