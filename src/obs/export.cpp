#include "fprop/obs/export.h"

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "fprop/support/error.h"

namespace fprop::obs {

namespace {

/// Escapes a string for embedding in a JSON document.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

void append_i64(std::string& out, std::int64_t v) {
  out += std::to_string(v);
}

/// One trace event line. `args` is the pre-rendered JSON object body.
void append_chrome_event(std::string& out, const char* name, const char* ph,
                         std::uint64_t ts, std::uint64_t tid,
                         const std::string& args) {
  out += "{\"name\":\"";
  out += name;
  out += "\",\"ph\":\"";
  out += ph;
  out += "\",\"pid\":0,\"tid\":";
  append_u64(out, tid);
  out += ",\"ts\":";
  append_u64(out, ts);
  if (*ph == 'i') out += ",\"s\":\"t\"";  // instant scope: thread
  out += ",\"args\":{";
  out += args;
  out += "}}";
}

}  // namespace

std::string format_double(double v) {
  // Shortest round-trip representation: std::to_chars is required to be
  // correctly rounded, so the bytes are platform-independent for identical
  // double bits — the property the golden-file tests rely on.
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::string chrome_trace_json(const std::vector<Event>& events,
                              const ChromeTraceMeta& meta) {
  std::string out;
  out.reserve(256 + events.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"app\":\"";
  out += json_escape(meta.app);
  out += "\",\"trial\":";
  append_u64(out, meta.trial_index);
  out += ",\"nranks\":";
  append_u64(out, meta.nranks);
  out += ",\"total_emitted\":";
  append_u64(out, meta.total_emitted);
  out += ",\"dropped\":";
  append_u64(out, meta.dropped);
  out += ",\"ts_unit\":\"vm steps\"},\"traceEvents\":[";

  bool first = true;
  const auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Track names: one lane per rank plus a "job" lane for global events.
  const std::uint64_t job_tid = meta.nranks;
  for (std::uint32_t r = 0; r < meta.nranks; ++r) {
    comma();
    append_chrome_event(out, "thread_name", "M", 0, r,
                        "\"name\":\"rank " + std::to_string(r) + "\"");
  }
  comma();
  append_chrome_event(out, "thread_name", "M", 0, job_tid,
                      "\"name\":\"job\"");

  for (const Event& e : events) {
    const std::uint64_t tid = e.rank == kJobScope ? job_tid : e.rank;
    std::string args;
    switch (e.kind) {
      case EventKind::Injection:
        args = "\"site\":" + std::to_string(e.a) +
               ",\"bit\":" + std::to_string(e.b) +
               ",\"flipped_mask\":" + std::to_string(e.c);
        break;
      case EventKind::FirstDivergence:
        args = std::string("\"which\":\"") +
               (e.a == 0 ? "value" : "wild_store") + "\"";
        break;
      case EventKind::ShadowRecord:
      case EventKind::ShadowHeal:
        args = "\"addr\":" + std::to_string(e.a) +
               ",\"cml\":" + std::to_string(e.b);
        break;
      case EventKind::CmlSample:
        args = "\"cml\":" + std::to_string(e.b);
        break;
      case EventKind::MsgSend:
        args = "\"dest\":" + std::to_string(e.a) +
               ",\"payload_words\":" + std::to_string(e.b) +
               ",\"header_words\":" + std::to_string(e.c);
        break;
      case EventKind::MsgRecv:
        args = "\"src\":" + std::to_string(e.a) +
               ",\"payload_words\":" + std::to_string(e.b) +
               ",\"header_words\":" + std::to_string(e.c);
        break;
      case EventKind::Trap:
        args = "\"trap\":" + std::to_string(e.a);
        break;
      case EventKind::DetectorScan:
        args = "\"cml\":" + std::to_string(e.a) +
               ",\"scan\":" + std::to_string(e.b) + ",\"verdict\":\"" +
               (e.a == 0 ? "clean" : "contaminated") + "\"";
        break;
      case EventKind::Checkpoint:
        args = "\"approx_bytes\":" + std::to_string(e.a) +
               ",\"retained\":" + std::to_string(e.b);
        break;
      case EventKind::Rollback:
        args = "\"restored_to\":" + std::to_string(e.a) +
               ",\"wasted_cycles\":" + std::to_string(e.b);
        break;
      case EventKind::RankContaminated:
        args = "\"rank\":" + std::to_string(e.a);
        break;
      case EventKind::TrialOutcome:
        args = "\"outcome\":" + std::to_string(e.a) +
               ",\"trap\":" + std::to_string(e.b) +
               ",\"cml_final\":" + std::to_string(e.c);
        break;
      case EventKind::MsgCorrupt:
        args = "\"msg_index\":" + std::to_string(e.a) +
               ",\"word\":" + std::to_string(e.b) + ",\"target\":\"" +
               ((e.c >> 8) == 0 ? "header" : "payload") +
               "\",\"bit\":" + std::to_string(e.c & 0xFF);
        break;
      case EventKind::HeaderQuarantined:
        args = "\"quarantined\":" + std::to_string(e.a) +
               ",\"malformed\":" + std::to_string(e.b) +
               ",\"installed\":" + std::to_string(e.c);
        break;
      case EventKind::PrunedVanished:
        args = "\"rung_clock\":" + std::to_string(e.a) +
               ",\"shadow_peak\":" + std::to_string(e.b) +
               ",\"faults_fired\":" + std::to_string(e.c);
        break;
    }
    comma();
    append_chrome_event(out, event_kind_name(e.kind), "i", e.step, tid, args);

    // Replay the CML(t) trace: shadow record/heal/sample events carry the
    // table size after the mutation, which drives a per-rank counter track.
    if (e.kind == EventKind::ShadowRecord ||
        e.kind == EventKind::ShadowHeal ||
        e.kind == EventKind::CmlSample) {
      comma();
      const std::string name = "cml[" + std::to_string(e.rank) + "]";
      append_chrome_event(out, name.c_str(), "C", e.step, tid,
                          "\"cml\":" + std::to_string(e.b));
    }
  }
  out += "]}\n";
  return out;
}

std::string campaign_csv(const std::vector<CampaignRow>& rows) {
  std::string out =
      "trial,outcome,trap,injected,rank,site,bit,inject_cycle,global_cycles,"
      "cml_final,cml_peak,contaminated_pct,contaminated_ranks,reported_iters,"
      "slope_usable,slope_a,slope_b,detect_clock,detections,rollbacks,"
      "wasted_cycles,recovered\n";
  for (const CampaignRow& r : rows) {
    append_u64(out, r.trial);
    out += ',';
    out += r.outcome;
    out += ',';
    out += r.trap;
    out += ',';
    out += r.injected ? '1' : '0';
    out += ',';
    append_u64(out, r.rank);
    out += ',';
    append_i64(out, r.site);
    out += ',';
    append_u64(out, r.bit);
    out += ',';
    append_u64(out, r.inject_cycle);
    out += ',';
    append_u64(out, r.global_cycles);
    out += ',';
    append_u64(out, r.cml_final);
    out += ',';
    append_u64(out, r.cml_peak);
    out += ',';
    out += format_double(r.contaminated_pct);
    out += ',';
    append_u64(out, r.contaminated_ranks);
    out += ',';
    append_i64(out, r.reported_iters);
    out += ',';
    out += r.slope_usable ? '1' : '0';
    out += ',';
    out += format_double(r.slope_a);
    out += ',';
    out += format_double(r.slope_b);
    out += ',';
    append_i64(out, r.detect_clock);
    out += ',';
    append_u64(out, r.detections);
    out += ',';
    append_u64(out, r.rollbacks);
    out += ',';
    append_u64(out, r.wasted_cycles);
    out += ',';
    out += r.recovered ? '1' : '0';
    out += '\n';
  }
  return out;
}

std::string campaign_summary_json(const CampaignSummary& s) {
  std::string out = "{\n  \"app\": \"" + json_escape(s.app) + "\",\n";
  out += "  \"trials\": " + std::to_string(s.trials) + ",\n";
  out += "  \"seed\": " + std::to_string(s.seed) + ",\n";
  out += "  \"faults_per_run\": " + std::to_string(s.faults_per_run) + ",\n";
  out += "  \"outcomes\": {\"V\": " + std::to_string(s.vanished) +
         ", \"ONA\": " + std::to_string(s.ona) +
         ", \"WO\": " + std::to_string(s.wrong_output) +
         ", \"PEX\": " + std::to_string(s.pex) +
         ", \"C\": " + std::to_string(s.crashed) + "},\n";
  out += "  \"fps\": {\"mean\": " + format_double(s.fps_mean) +
         ", \"stddev\": " + format_double(s.fps_stddev) +
         ", \"n\": " + std::to_string(s.fps_n) + "},\n";
  out += "  \"recovery\": {\"recovered_trials\": " +
         std::to_string(s.recovered_trials) +
         ", \"total_rollbacks\": " + std::to_string(s.total_rollbacks) +
         ", \"total_wasted_cycles\": " +
         std::to_string(s.total_wasted_cycles) + "},\n";
  out += "  \"trial_economy\": {\"pruned_trials\": " +
         std::to_string(s.pruned_trials) +
         ", \"deduped_trials\": " + std::to_string(s.deduped_trials) +
         "}\n}\n";
  return out;
}

std::string metrics_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      append_u64(out, h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      append_u64(out, h.counts[i]);
    }
    out += "], \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) + "}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  FPROP_CHECK_MSG(static_cast<bool>(out), "cannot open for writing: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  FPROP_CHECK_MSG(static_cast<bool>(out), "write failed: " + path);
}

void ensure_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  FPROP_CHECK_MSG(!ec, "cannot create directory " + dir + ": " + ec.message());
}

std::string trial_trace_filename(std::uint64_t trial_index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "trial_%06llu.json",
                static_cast<unsigned long long>(trial_index));
  return buf;
}

}  // namespace fprop::obs
