#include "fprop/fuzz/minimizer.h"

#include <algorithm>
#include <vector>

namespace fprop::fuzz {

namespace {

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t nl = s.find('\n', start);
    if (nl == std::string::npos) {
      if (start < s.size()) lines.push_back(s.substr(start));
      break;
    }
    lines.push_back(s.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace

std::string minimize_lines(const std::string& source,
                           const FailPredicate& still_fails,
                           std::size_t max_attempts, MinimizeStats* stats) {
  std::vector<std::string> lines = split_lines(source);
  MinimizeStats st;
  st.initial_lines = lines.size();
  std::size_t attempts = 0;

  const auto try_without = [&](std::size_t at, std::size_t n) {
    std::vector<std::string> cand;
    cand.reserve(lines.size() - n);
    cand.insert(cand.end(), lines.begin(),
                lines.begin() + static_cast<std::ptrdiff_t>(at));
    cand.insert(cand.end(),
                lines.begin() + static_cast<std::ptrdiff_t>(at + n),
                lines.end());
    ++attempts;
    if (still_fails(join_lines(cand))) {
      lines = std::move(cand);
      return true;
    }
    return false;
  };

  // The input must fail to begin with; otherwise there is nothing to
  // preserve while shrinking.
  if (lines.empty() || !still_fails(source)) {
    st.final_lines = st.initial_lines;
    if (stats != nullptr) *stats = st;
    return source;
  }

  bool shrunk = true;
  while (shrunk && attempts < max_attempts) {
    shrunk = false;
    // Chunk sizes halve from n/2 down to 1; restart after any progress so
    // large deletions get retried on the smaller program.
    for (std::size_t chunk = std::max<std::size_t>(1, lines.size() / 2);
         chunk >= 1 && attempts < max_attempts; chunk /= 2) {
      for (std::size_t at = 0;
           at + chunk <= lines.size() && attempts < max_attempts;) {
        if (try_without(at, chunk)) {
          shrunk = true;
          // `at` now indexes the line after the deleted chunk; stay put.
        } else {
          at += chunk;
        }
      }
      if (chunk == 1) break;
    }
  }

  st.final_lines = lines.size();
  st.attempts = attempts;
  if (stats != nullptr) *stats = st;
  return join_lines(lines);
}

}  // namespace fprop::fuzz
