#include "fprop/fuzz/oracles.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fprop/fpm/message.h"
#include "fprop/harness/harness.h"
#include "fprop/inject/injector.h"
#include "fprop/minic/compile.h"
#include "fprop/obs/metrics.h"
#include "fprop/mpisim/world.h"
#include "fprop/passes/passes.h"
#include "fprop/shard/coord.h"
#include "fprop/shard/shard.h"
#include "fprop/support/error.h"
#include "fprop/support/rng.h"
#include "fprop/vm/interp.h"

namespace fprop::fuzz {

namespace {

std::uint64_t dbits(double v) { return vm::bits_of(v); }

bool outputs_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (dbits(a[i]) != dbits(b[i])) return false;
  }
  return true;
}

mpisim::WorldConfig oracle_world_config(const GeneratedProgram& prog,
                                        bool enable_fpm) {
  mpisim::WorldConfig wc;
  wc.nranks = prog.nranks;
  wc.enable_fpm = enable_fpm;
  wc.fpm_sample_period = 0;
  wc.global_sample_period = 0;
  wc.slice = 128;  // small quantum: interleave ranks aggressively
  // Generated programs finish in a few thousand instructions; a modest
  // budget turns a non-terminating generator bug into a visible trap
  // instead of a half-minute stall.
  wc.interp.cycle_budget = 50'000'000;
  return wc;
}

/// Drives `w` to completion with World::run()'s teardown semantics,
/// optionally counting sweeps.
mpisim::JobResult drive(mpisim::World& w, std::size_t* sweeps = nullptr) {
  for (;;) {
    const mpisim::World::StepStatus s = w.sweep();
    if (sweeps != nullptr) ++*sweeps;
    if (s == mpisim::World::StepStatus::Running) continue;
    if (s == mpisim::World::StepStatus::Trapped) {
      w.kill_job(w.trapped_rank(), vm::Trap::Killed);
    } else if (s == mpisim::World::StepStatus::Deadlocked) {
      w.declare_deadlock();
    }
    break;
  }
  return w.collect();
}

/// Full bitwise comparison of two job results (used by the ckpt oracle,
/// where even cycle counts and CML bookkeeping must replay exactly).
std::string diff_jobs(const mpisim::JobResult& a, const mpisim::JobResult& b) {
  std::ostringstream d;
  if (a.crashed != b.crashed) d << "crashed " << a.crashed << "!=" << b.crashed << "; ";
  if (a.first_trap != b.first_trap) d << "first_trap differs; ";
  if (a.first_trap_rank != b.first_trap_rank) d << "first_trap_rank differs; ";
  if (a.global_cycles != b.global_cycles) {
    d << "global_cycles " << a.global_cycles << "!=" << b.global_cycles << "; ";
  }
  if (a.max_rank_cycles != b.max_rank_cycles) d << "max_rank_cycles differs; ";
  if (a.ranks.size() != b.ranks.size()) {
    d << "rank count differs; ";
    return d.str();
  }
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    const auto& x = a.ranks[r];
    const auto& y = b.ranks[r];
    if (x.state != y.state) d << "rank " << r << " state differs; ";
    if (x.trap != y.trap) d << "rank " << r << " trap differs; ";
    if (x.cycles != y.cycles) d << "rank " << r << " cycles differs; ";
    if (!outputs_equal(x.outputs, y.outputs)) {
      d << "rank " << r << " outputs differ; ";
    }
    if (x.reported_iters != y.reported_iters) {
      d << "rank " << r << " reported_iters differs; ";
    }
    if (x.allocated_words != y.allocated_words) {
      d << "rank " << r << " allocated_words differs; ";
    }
    if (x.cml_final != y.cml_final) d << "rank " << r << " cml_final differs; ";
    if (x.cml_peak != y.cml_peak) d << "rank " << r << " cml_peak differs; ";
    if (x.first_contaminated_at != y.first_contaminated_at) {
      d << "rank " << r << " first_contaminated_at differs; ";
    }
  }
  return d.str();
}

std::string diff_trials(const harness::TrialResult& a,
                        const harness::TrialResult& b, std::size_t i) {
  std::ostringstream d;
  const std::string p = "trial " + std::to_string(i) + " ";
  if (a.outcome != b.outcome) d << p << "outcome differs; ";
  if (a.trap != b.trap) d << p << "trap differs; ";
  if (a.injected != b.injected) d << p << "injected differs; ";
  if (a.injection.rank != b.injection.rank ||
      a.injection.site_id != b.injection.site_id ||
      a.injection.dyn_index != b.injection.dyn_index ||
      a.injection.bit != b.injection.bit ||
      a.injection.cycle != b.injection.cycle ||
      a.injection.before != b.injection.before ||
      a.injection.after != b.injection.after) {
    d << p << "injection event differs; ";
  }
  if (a.msg_injected != b.msg_injected) d << p << "msg_injected differs; ";
  if (a.headers_quarantined != b.headers_quarantined ||
      a.header_records_quarantined != b.header_records_quarantined) {
    d << p << "quarantine counters differ; ";
  }
  if (a.fault_pair_min_gap != b.fault_pair_min_gap) {
    d << p << "fault_pair_min_gap differs; ";
  }
  if (a.total_cml_final != b.total_cml_final) d << p << "cml_final differs; ";
  if (a.total_cml_peak != b.total_cml_peak) d << p << "cml_peak differs; ";
  if (dbits(a.contaminated_pct) != dbits(b.contaminated_pct)) {
    d << p << "contaminated_pct differs; ";
  }
  if (a.contaminated_ranks != b.contaminated_ranks) {
    d << p << "contaminated_ranks differs; ";
  }
  if (a.reported_iters != b.reported_iters) d << p << "reported_iters differs; ";
  if (a.global_cycles != b.global_cycles) d << p << "global_cycles differs; ";
  if (a.trace.size() != b.trace.size()) {
    d << p << "trace size differs; ";
  } else {
    for (std::size_t k = 0; k < a.trace.size(); ++k) {
      if (a.trace[k].cycle != b.trace[k].cycle ||
          a.trace[k].cml != b.trace[k].cml) {
        d << p << "trace sample " << k << " differs; ";
        break;
      }
    }
  }
  if (a.rank_first_contaminated != b.rank_first_contaminated) {
    d << p << "rank_first_contaminated differs; ";
  }
  if (dbits(a.slope_a) != dbits(b.slope_a) ||
      dbits(a.slope_b) != dbits(b.slope_b) ||
      a.slope_usable != b.slope_usable) {
    d << p << "slope fit differs; ";
  }
  if (a.recovered != b.recovered || a.rollbacks != b.rollbacks ||
      a.detections != b.detections || a.wasted_cycles != b.wasted_cycles ||
      a.residual_cml != b.residual_cml ||
      a.recovery_gave_up != b.recovery_gave_up ||
      a.first_detection_clock != b.first_detection_clock) {
    d << p << "recovery fields differ; ";
  }
  return d.str();
}

std::string diff_campaigns(const harness::CampaignResult& a,
                           const harness::CampaignResult& b) {
  std::ostringstream d;
  if (a.counts.vanished != b.counts.vanished ||
      a.counts.ona != b.counts.ona ||
      a.counts.wrong_output != b.counts.wrong_output ||
      a.counts.pex != b.counts.pex || a.counts.crashed != b.counts.crashed) {
    d << "outcome counts differ; ";
  }
  if (a.trials.size() != b.trials.size()) {
    d << "trial count differs; ";
    return d.str();
  }
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    d << diff_trials(a.trials[i], b.trials[i], i);
  }
  if (a.slopes.size() != b.slopes.size()) {
    d << "slopes size differs; ";
  } else {
    for (std::size_t i = 0; i < a.slopes.size(); ++i) {
      if (dbits(a.slopes[i]) != dbits(b.slopes[i])) {
        d << "slope " << i << " differs; ";
        break;
      }
    }
  }
  if (a.max_contaminated_pct.size() != b.max_contaminated_pct.size()) {
    d << "max_contaminated_pct size differs; ";
  } else {
    for (std::size_t i = 0; i < a.max_contaminated_pct.size(); ++i) {
      if (dbits(a.max_contaminated_pct[i]) != dbits(b.max_contaminated_pct[i])) {
        d << "max_contaminated_pct " << i << " differs; ";
        break;
      }
    }
  }
  if (a.recovered_trials != b.recovered_trials ||
      a.total_rollbacks != b.total_rollbacks ||
      a.total_wasted_cycles != b.total_wasted_cycles) {
    d << "recovery aggregates differ; ";
  }
  if (a.total_msg_injected != b.total_msg_injected ||
      a.total_headers_quarantined != b.total_headers_quarantined ||
      a.total_header_records_quarantined !=
          b.total_header_records_quarantined) {
    d << "message-corruption aggregates differ; ";
  }
  return d.str();
}

OracleResult fail(const char* oracle, std::string detail) {
  OracleResult r;
  r.ok = false;
  r.oracle = oracle;
  r.detail = std::move(detail);
  return r;
}

}  // namespace

OracleResult check_pristine_chain(const GeneratedProgram& prog) {
  OracleResult res;
  res.oracle = "pristine";
  try {
    ir::Module plain = minic::compile(prog.source);
    ir::Module inst = minic::compile(prog.source);
    (void)passes::instrument_module(inst);

    mpisim::World ref(plain, oracle_world_config(prog, /*enable_fpm=*/false));
    const mpisim::JobResult rj = ref.run();
    if (rj.crashed) {
      return fail("pristine",
                  "generated program crashed uninstrumented (trap " +
                      std::string(vm::trap_name(rj.first_trap)) + " on rank " +
                      std::to_string(rj.first_trap_rank) +
                      ") — generator validity bug");
    }

    mpisim::World sub(inst, oracle_world_config(prog, /*enable_fpm=*/true));
    inject::InjectorRuntime counting;  // unarmed: counts sites, flips nothing
    sub.set_inject_hook(&counting);
    const mpisim::JobResult sj = sub.run();
    if (sj.crashed) {
      return fail("pristine", "instrumented uninjected run crashed (trap " +
                                  std::string(vm::trap_name(sj.first_trap)) +
                                  ")");
    }
    if (!outputs_equal(rj.outputs(), sj.outputs())) {
      return fail("pristine",
                  "outputs differ between plain and instrumented run");
    }
    if (rj.reported_iters() != sj.reported_iters()) {
      return fail("pristine", "reported_iters differ");
    }
    std::ostringstream d;
    for (std::uint32_t r = 0; r < sub.nranks(); ++r) {
      const fpm::FpmRuntime* f = sub.fpm(r);
      if (f == nullptr) {
        d << "rank " << r << " has no FPM runtime; ";
        continue;
      }
      const fpm::FpmStats& st = f->stats();
      if (st.stores_checked == 0) d << "rank " << r << " checked no stores; ";
      if (st.stores_divergent != 0) {
        d << "rank " << r << " saw " << st.stores_divergent
          << " divergent stores without injection; ";
      }
      if (st.wild_stores != 0) d << "rank " << r << " saw wild stores; ";
      if (!f->shadow().empty()) {
        d << "rank " << r << " shadow table non-empty (CML "
          << f->shadow().size() << "); ";
      }
      if (f->shadow().peak() != 0) d << "rank " << r << " nonzero CML peak; ";
    }
    if (!d.str().empty()) return fail("pristine", d.str());
  } catch (const std::exception& e) {
    return fail("pristine", std::string("exception: ") + e.what());
  }
  return res;
}

OracleResult check_campaign_parallel(const GeneratedProgram& prog,
                                     const OracleConfig& config) {
  OracleResult res;
  res.oracle = "campaign";
  try {
    apps::AppSpec spec;
    spec.name = "fuzz_" + std::to_string(prog.seed);
    spec.description = "generated fuzz program";
    spec.source = prog.source;
    spec.default_nranks = prog.nranks;

    harness::ExperimentConfig ec;
    ec.nranks = prog.nranks;
    const harness::AppHarness h(spec, ec);

    harness::CampaignConfig cc;
    cc.trials = config.campaign_trials;
    cc.seed = derive_seed(prog.seed, 0xCA4Bull);
    cc.capture_traces = config.capture_traces;
    cc.max_kept_traces = 4;
    cc.jobs = 1;
    const harness::CampaignResult serial = harness::run_campaign(h, cc);
    cc.jobs = config.campaign_jobs;
    const harness::CampaignResult par = harness::run_campaign(h, cc);

    const std::string d = diff_campaigns(serial, par);
    if (!d.empty()) {
      return fail("campaign", "jobs=1 vs jobs=" +
                                  std::to_string(config.campaign_jobs) +
                                  ": " + d);
    }
  } catch (const std::exception& e) {
    return fail("campaign", std::string("exception: ") + e.what());
  }
  return res;
}

OracleResult check_checkpoint_replay(const GeneratedProgram& prog) {
  OracleResult res;
  res.oracle = "ckpt";
  try {
    ir::Module inst = minic::compile(prog.source);
    (void)passes::instrument_module(inst);
    const mpisim::WorldConfig wc = oracle_world_config(prog, true);

    // Profiling run: dynamic injection points per rank.
    inject::DynCounts counts;
    inject::DynWidths widths;
    {
      mpisim::World w(inst, wc);
      inject::InjectorRuntime counting;
      counting.record_widths(true);
      w.set_inject_hook(&counting);
      const mpisim::JobResult j = w.run();
      if (j.crashed) {
        return fail("ckpt", "profiling run crashed — generator validity bug");
      }
      counts = counting.dynamic_counts(prog.nranks);
      widths = counting.dynamic_widths(prog.nranks);
    }
    std::uint64_t total = 0;
    for (std::uint64_t c : counts) total += c;
    if (total == 0) {
      return fail("ckpt", "no dynamic injection points — generator bug");
    }
    Xoshiro256 rng(derive_seed(prog.seed, 0xC4B7ull));
    const inject::InjectionPlan plan =
        inject::sample_single_fault(counts, widths, rng);

    // Leg A: a mid-run checkpoint (taken and discarded) must not perturb an
    // injected run in any observable way.
    std::size_t sweeps = 0;
    mpisim::JobResult straight;
    {
      mpisim::World w(inst, wc);
      inject::InjectorRuntime inj(plan);
      w.set_inject_hook(&inj);
      straight = drive(w, &sweeps);
    }
    {
      mpisim::World w(inst, wc);
      inject::InjectorRuntime inj(plan);
      w.set_inject_hook(&inj);
      const std::size_t at = std::max<std::size_t>(1, sweeps / 2);
      std::size_t n = 0;
      std::optional<mpisim::World::Checkpoint> ckpt;
      for (;;) {
        if (n == at) ckpt = w.checkpoint();
        const mpisim::World::StepStatus s = w.sweep();
        ++n;
        if (s == mpisim::World::StepStatus::Running) continue;
        if (s == mpisim::World::StepStatus::Trapped) {
          w.kill_job(w.trapped_rank(), vm::Trap::Killed);
        } else if (s == mpisim::World::StepStatus::Deadlocked) {
          w.declare_deadlock();
        }
        break;
      }
      const mpisim::JobResult observed = w.collect();
      const std::string d = diff_jobs(straight, observed);
      if (!d.empty()) {
        return fail("ckpt", "taking a checkpoint perturbed the run: " + d);
      }
    }

    // Leg B: checkpoint right after the fault fires, finish, restore, finish
    // again — the replay must be bit-exact (injector counters sit outside
    // the checkpoint, so the post-checkpoint segment is injection-free in
    // both passes).
    {
      mpisim::World w(inst, wc);
      inject::InjectorRuntime inj(plan);
      w.set_inject_hook(&inj);
      std::optional<mpisim::World::Checkpoint> ckpt;
      for (;;) {
        if (!ckpt && !inj.events().empty()) ckpt = w.checkpoint();
        const mpisim::World::StepStatus s = w.sweep();
        if (s == mpisim::World::StepStatus::Running) continue;
        if (s == mpisim::World::StepStatus::Trapped) {
          w.kill_job(w.trapped_rank(), vm::Trap::Killed);
        } else if (s == mpisim::World::StepStatus::Deadlocked) {
          w.declare_deadlock();
        }
        break;
      }
      const mpisim::JobResult first = w.collect();
      if (ckpt) {
        w.restore(*ckpt);
        const mpisim::JobResult second = drive(w);
        const std::string d = diff_jobs(first, second);
        if (!d.empty()) {
          return fail("ckpt", "restore + replay diverged: " + d);
        }
      }
    }
  } catch (const std::exception& e) {
    return fail("ckpt", std::string("exception: ") + e.what());
  }
  return res;
}

OracleResult check_shadow_model(std::uint64_t seed, std::size_t ops) {
  OracleResult res;
  res.oracle = "shadow";

  // Reference model: the semantics ShadowTable must match, in the simplest
  // possible terms. peak mirrors ShadowTable::peak (never reset, not even
  // by clear()).
  struct Ref {
    std::unordered_map<std::uint64_t, std::uint64_t> map;
    std::size_t peak = 0;
    void record(std::uint64_t a, std::uint64_t v) {
      map[a] = v;
      peak = std::max(peak, map.size());
    }
    bool heal(std::uint64_t a) { return map.erase(a) > 0; }
  };

  try {
    Xoshiro256 rng(derive_seed(seed, 0x5AAD0ull));
    // Key pool: a dense sequential run (the dominant app pattern), scattered
    // 8-aligned keys across the full address range, and the all-ones
    // sentinel key a corrupted pristine address could take.
    std::vector<std::uint64_t> pool;
    const std::uint64_t base = rng.next_below(1u << 20) * 8;
    for (std::uint64_t i = 0; i < 48; ++i) pool.push_back(base + 8 * i);
    for (int i = 0; i < 16; ++i) pool.push_back((rng.next() << 3));
    pool.push_back(~0ull);

    fpm::ShadowTable table;
    Ref ref;
    auto pick = [&] { return pool[rng.next_below(pool.size())]; };

    for (std::size_t op = 0; op < ops; ++op) {
      const std::string at = " at op " + std::to_string(op);
      switch (rng.next_below(16)) {
        case 0: case 1: case 2: case 3: case 4: case 5: {
          const std::uint64_t a = pick();
          const std::uint64_t v = rng.next();
          table.record(a, v);
          ref.record(a, v);
          break;
        }
        case 6: case 7: case 8: {
          const std::uint64_t a = pick();
          const bool healed = table.heal(a);
          if (healed != ref.heal(a)) {
            return fail("shadow", "heal() return mismatch" + at);
          }
          break;
        }
        case 9: {
          const std::uint64_t a = pick();
          const auto got = table.lookup(a);
          const auto it = ref.map.find(a);
          const bool want = it != ref.map.end();
          if (got.has_value() != want ||
              (want && *got != it->second)) {
            return fail("shadow", "lookup mismatch" + at);
          }
          break;
        }
        case 10: {
          const std::uint64_t a = pick();
          const std::uint64_t actual = rng.next();
          const auto it = ref.map.find(a);
          const std::uint64_t want = it == ref.map.end() ? actual : it->second;
          if (table.pristine_or(a, actual) != want) {
            return fail("shadow", "pristine_or mismatch" + at);
          }
          break;
        }
        case 11: {
          const std::uint64_t a = pick();
          if (table.contaminated(a) != (ref.map.count(a) != 0)) {
            return fail("shadow", "contaminated mismatch" + at);
          }
          break;
        }
        case 12: {
          const std::uint64_t lo = base + 8 * rng.next_below(64);
          const std::uint64_t hi = lo + 8 * rng.next_below(64);
          auto got = table.in_range(lo, hi);
          std::vector<std::pair<std::uint64_t, std::uint64_t>> want;
          for (const auto& [k, v] : ref.map) {
            if (k >= lo && k < hi) want.emplace_back(k, v);
          }
          std::sort(want.begin(), want.end());
          if (got != want) return fail("shadow", "in_range mismatch" + at);
          break;
        }
        case 13: {
          const std::uint64_t lo = base + 8 * rng.next_below(64);
          const std::uint64_t hi = lo + 8 * rng.next_below(64);
          table.heal_range(lo, hi);
          for (auto it = ref.map.begin(); it != ref.map.end();) {
            if (it->first >= lo && it->first < hi) {
              it = ref.map.erase(it);
            } else {
              ++it;
            }
          }
          break;
        }
        case 14: {
          // Full-state audit: every live entry, sorted. entries() can never
          // include the sentinel key (its range is [0, ~0)).
          auto got = table.entries();
          std::vector<std::pair<std::uint64_t, std::uint64_t>> want;
          for (const auto& [k, v] : ref.map) {
            if (k != ~0ull) want.emplace_back(k, v);
          }
          std::sort(want.begin(), want.end());
          if (got != want) return fail("shadow", "entries mismatch" + at);
          break;
        }
        default:
          if (rng.next_below(64) == 0) {
            table.clear();
            ref.map.clear();
          }
          break;
      }
      if (table.size() != ref.map.size()) {
        return fail("shadow",
                    "size mismatch" + at + ": table " +
                        std::to_string(table.size()) + " vs ref " +
                        std::to_string(ref.map.size()));
      }
      if (table.peak() != ref.peak) {
        return fail("shadow", "peak mismatch" + at);
      }
      if (table.empty() != ref.map.empty()) {
        return fail("shadow", "empty mismatch" + at);
      }
    }
  } catch (const std::exception& e) {
    return fail("shadow", std::string("exception: ") + e.what());
  }
  return res;
}

OracleResult check_warm_vs_cold(const GeneratedProgram& prog,
                                const OracleConfig& config) {
  OracleResult res;
  res.oracle = "warm_vs_cold";
  try {
    apps::AppSpec spec;
    spec.name = "fuzz_" + std::to_string(prog.seed);
    spec.description = "generated fuzz program";
    spec.source = prog.source;
    spec.default_nranks = prog.nranks;

    for (const bool recovery : {false, true}) {
      const char* leg = recovery ? "recovery leg" : "plain leg";
      harness::ExperimentConfig ec;
      ec.nranks = prog.nranks;
      ec.snapshot_rungs = 6;
      if (recovery) {
        ec.recovery.enabled = true;
        ec.recovery.max_rollbacks = 2;
        // Derive the scan grid from the golden run (golden/16): generated
        // programs finish far below the default absolute interval, which
        // would leave the grid — and the recovery-aligned ladder — empty.
        ec.recovery.detector_interval = 0;
      }
      const harness::AppHarness h(spec, ec);

      harness::CampaignConfig cc;
      cc.trials = config.campaign_trials;
      cc.seed = derive_seed(prog.seed, 0x3A4Dull);
      cc.capture_traces = !recovery;  // exercise the restored-trace path too
      cc.max_kept_traces = 4;
      cc.jobs = 1;
      cc.warm_start = false;
      const harness::CampaignResult cold = harness::run_campaign(h, cc);
      cc.warm_start = true;
      const harness::CampaignResult warm = harness::run_campaign(h, cc);
      const std::string d = diff_campaigns(cold, warm);
      if (!d.empty()) {
        return fail("warm_vs_cold",
                    std::string(leg) + ", cold vs warm: " + d);
      }

      // Metrics leg: an attached registry means an attached recorder, so
      // trials decline warm starts (the skipped prefix cannot be replayed
      // into the event stream) — the knob must leave the fold untouched.
      cc.capture_traces = false;
      obs::MetricsRegistry cold_reg;
      cc.warm_start = false;
      cc.metrics = &cold_reg;
      (void)harness::run_campaign(h, cc);
      obs::MetricsRegistry warm_reg;
      cc.warm_start = true;
      cc.metrics = &warm_reg;
      (void)harness::run_campaign(h, cc);
      if (!(cold_reg.snapshot() == warm_reg.snapshot())) {
        return fail("warm_vs_cold",
                    std::string(leg) +
                        ": metrics fold differs with warm_start on");
      }
    }
  } catch (const std::exception& e) {
    return fail("warm_vs_cold", std::string("exception: ") + e.what());
  }
  return res;
}

OracleResult check_multifault(const GeneratedProgram& prog,
                              const OracleConfig& config) {
  OracleResult res;
  res.oracle = "multifault";
  try {
    apps::AppSpec spec;
    spec.name = "fuzz_" + std::to_string(prog.seed);
    spec.description = "generated fuzz program";
    spec.source = prog.source;
    spec.default_nranks = prog.nranks;

    harness::ExperimentConfig ec;
    ec.nranks = prog.nranks;
    ec.snapshot_rungs = 6;
    const harness::AppHarness h(spec, ec);

    harness::CampaignConfig cc;
    cc.trials = config.campaign_trials;
    cc.seed = derive_seed(prog.seed, 0x4FA7ull);
    cc.faults_per_run = config.multifault_k;
    cc.msg_faults_per_run =
        h.golden().total_sent_msgs > 0 ? config.multifault_msg : 0;

    cc.jobs = 1;
    cc.warm_start = false;
    const harness::CampaignResult serial = harness::run_campaign(h, cc);
    cc.jobs = config.campaign_jobs;
    const harness::CampaignResult par = harness::run_campaign(h, cc);
    std::string d = diff_campaigns(serial, par);
    if (!d.empty()) {
      return fail("multifault", "jobs=1 vs jobs=" +
                                    std::to_string(config.campaign_jobs) +
                                    ": " + d);
    }

    cc.jobs = 1;
    cc.warm_start = true;
    const harness::CampaignResult warm = harness::run_campaign(h, cc);
    d = diff_campaigns(serial, warm);
    if (!d.empty()) {
      return fail("multifault", "cold vs warm: " + d);
    }
  } catch (const std::exception& e) {
    return fail("multifault", std::string("exception: ") + e.what());
  }
  return res;
}

OracleResult check_prune(const GeneratedProgram& prog,
                         const OracleConfig& config) {
  OracleResult res;
  res.oracle = "prune";
  try {
    apps::AppSpec spec;
    spec.name = "fuzz_" + std::to_string(prog.seed);
    spec.description = "generated fuzz program";
    spec.source = prog.source;
    spec.default_nranks = prog.nranks;

    // Legs: 0 = plain single-fault, 1 = recovery-driven trials (probe at
    // clean detector scans), 2 = k-fault + in-flight message faults (the
    // probe must wait out every pending strike).
    for (const int leg : {0, 1, 2}) {
      const char* leg_name =
          leg == 0 ? "plain leg" : leg == 1 ? "recovery leg" : "multifault leg";
      harness::ExperimentConfig ec;
      ec.nranks = prog.nranks;
      ec.snapshot_rungs = 6;
      if (leg == 1) {
        ec.recovery.enabled = true;
        ec.recovery.max_rollbacks = 2;
        ec.recovery.detector_interval = 0;  // golden-derived scan grid
      }
      const harness::AppHarness h(spec, ec);

      harness::CampaignConfig cc;
      cc.trials = config.campaign_trials;
      cc.seed = derive_seed(prog.seed, 0x906Bull + static_cast<unsigned>(leg));
      if (leg == 2) {
        cc.faults_per_run = config.multifault_k;
        cc.msg_faults_per_run =
            h.golden().total_sent_msgs > 0 ? config.multifault_msg : 0;
      }
      cc.jobs = 1;
      cc.prune = false;
      cc.dedup = false;
      const harness::CampaignResult base = harness::run_campaign(h, cc);
      cc.prune = true;
      cc.dedup = true;
      cc.jobs = config.campaign_jobs;
      const harness::CampaignResult pruned = harness::run_campaign(h, cc);
      const std::string d = diff_campaigns(base, pruned);
      if (!d.empty()) {
        return fail("prune",
                    std::string(leg_name) + ", unpruned vs pruned+dedup: " + d);
      }

      std::uint64_t dedup_sum = 0;
      std::size_t dedup_zero = 0;
      for (std::size_t i = 0; i < pruned.trials.size(); ++i) {
        const harness::TrialResult& t = pruned.trials[i];
        dedup_sum += t.dedup_count;
        if (t.dedup_count == 0) ++dedup_zero;
        const std::string at = std::string(leg_name) + ", pruned trial " +
                               std::to_string(i) + ": ";
        if (t.pruned) {
          if (t.outcome != harness::Outcome::Vanished &&
              t.outcome != harness::Outcome::OutputNotAffected) {
            return fail("prune", at + "classified " +
                                     harness::outcome_name(t.outcome) +
                                     " — reconvergence implies V/ONA");
          }
          if (t.total_cml_final != 0) {
            return fail("prune",
                        at + "pruned with live shadow entries (cml_final " +
                            std::to_string(t.total_cml_final) + ")");
          }
          if (t.trap != vm::Trap::None) {
            return fail("prune", at + "pruned trial carries a trap");
          }
        }
      }
      if (dedup_sum != cc.trials) {
        return fail("prune", std::string(leg_name) + ": dedup_count sums to " +
                                 std::to_string(dedup_sum) + ", expected " +
                                 std::to_string(cc.trials));
      }
      if (dedup_zero != pruned.deduped_trials) {
        return fail("prune",
                    std::string(leg_name) +
                        ": zero-multiplicity slots != deduped_trials (" +
                        std::to_string(dedup_zero) + " vs " +
                        std::to_string(pruned.deduped_trials) + ")");
      }
    }
  } catch (const std::exception& e) {
    return fail("prune", std::string("exception: ") + e.what());
  }
  return res;
}

OracleResult check_bytecode_vs_interp(const GeneratedProgram& prog,
                                      const OracleConfig& config) {
  OracleResult res;
  res.oracle = "bytecode_vs_interp";
  try {
    // Leg 1: uninjected instrumented job, interp vs compiled tier, compared
    // bitwise down to per-rank cycle counts and CML bookkeeping.
    ir::Module inst = minic::compile(prog.source);
    (void)passes::instrument_module(inst);
    mpisim::World ref(inst, oracle_world_config(prog, /*enable_fpm=*/true));
    const mpisim::JobResult rj = ref.run();

    const vm::BytecodeModule bc(inst);
    mpisim::WorldConfig wc = oracle_world_config(prog, /*enable_fpm=*/true);
    wc.bytecode = &bc;
    mpisim::World fast(inst, wc);
    const mpisim::JobResult fj = fast.run();
    std::string d = diff_jobs(rj, fj);
    if (!d.empty()) {
      return fail("bytecode_vs_interp", "uninjected job: " + d);
    }

    // Leg 2: injected campaigns under both tiers — single-fault with traces
    // (slope fits fold per-cycle CML samples, so any clock skew shows), then
    // multifault; each compared cold- and warm-started.
    apps::AppSpec spec;
    spec.name = "fuzz_" + std::to_string(prog.seed);
    spec.description = "generated fuzz program";
    spec.source = prog.source;
    spec.default_nranks = prog.nranks;

    harness::ExperimentConfig ec;
    ec.nranks = prog.nranks;
    ec.snapshot_rungs = 6;
    const harness::AppHarness h(spec, ec);

    for (const bool multifault : {false, true}) {
      harness::CampaignConfig cc;
      cc.trials = config.campaign_trials;
      cc.seed = derive_seed(prog.seed, multifault ? 0xB17E2ull : 0xB17E1ull);
      cc.jobs = 1;
      if (multifault) {
        cc.faults_per_run = config.multifault_k;
        cc.msg_faults_per_run =
            h.golden().total_sent_msgs > 0 ? config.multifault_msg : 0;
      } else {
        cc.capture_traces = true;
        cc.max_kept_traces = 4;
      }
      const char* leg = multifault ? "multifault" : "single-fault";
      for (const bool warm : {false, true}) {
        cc.warm_start = warm;
        cc.exec_tier = vm::ExecTier::Interp;
        const harness::CampaignResult slow = harness::run_campaign(h, cc);
        cc.exec_tier = vm::ExecTier::Bytecode;
        const harness::CampaignResult quick = harness::run_campaign(h, cc);
        d = diff_campaigns(slow, quick);
        if (!d.empty()) {
          return fail("bytecode_vs_interp",
                      std::string(leg) + (warm ? " warm" : " cold") +
                          " campaign, interp vs bytecode: " + d);
        }
      }
    }
  } catch (const std::exception& e) {
    return fail("bytecode_vs_interp", std::string("exception: ") + e.what());
  }
  return res;
}

namespace {

/// Seed-derived TrialResult with every field populated (optionals both
/// ways), so the round-trip leg covers the full wire schema, not just the
/// fields real campaigns happen to set.
harness::TrialResult random_trial(Xoshiro256& rng) {
  harness::TrialResult t;
  t.outcome = static_cast<harness::Outcome>(rng.next_below(5));
  t.trap = static_cast<vm::Trap>(rng.next_below(10));
  t.injected = rng.next_below(2) != 0;
  t.injection.rank = static_cast<std::uint32_t>(rng.next_below(8));
  t.injection.site_id = static_cast<std::int64_t>(rng.next()) >> 16;
  t.injection.dyn_index = rng.next();
  t.injection.bit = static_cast<std::uint32_t>(rng.next_below(64));
  t.injection.cycle = rng.next();
  t.injection.before = rng.next();
  t.injection.after = rng.next();
  t.msg_injected = rng.next_below(4);
  t.headers_quarantined = rng.next_below(16);
  t.header_records_quarantined = rng.next_below(64);
  t.fault_pair_min_gap = static_cast<std::int64_t>(rng.next()) >> 8;
  t.total_cml_final = rng.next();
  t.total_cml_peak = rng.next();
  t.contaminated_pct = static_cast<double>(rng.next_below(10'000)) / 100.0;
  t.contaminated_ranks = rng.next_below(8);
  t.reported_iters = static_cast<std::int64_t>(rng.next_below(1000)) - 1;
  t.global_cycles = rng.next();
  const std::uint64_t nsamples = rng.next_below(5);
  for (std::uint64_t s = 0; s < nsamples; ++s) {
    t.trace.push_back({rng.next(), rng.next()});
  }
  const std::uint64_t nranks = rng.next_below(5);
  for (std::uint64_t r = 0; r < nranks; ++r) {
    if (rng.next_below(2) != 0) {
      t.rank_first_contaminated.push_back(rng.next());
    } else {
      t.rank_first_contaminated.push_back(std::nullopt);
    }
  }
  t.slope_a = static_cast<double>(static_cast<std::int64_t>(rng.next()) >> 20);
  t.slope_b = static_cast<double>(rng.next_below(1000)) * 1e-9;
  t.slope_usable = rng.next_below(2) != 0;
  t.recovered = rng.next_below(2) != 0;
  t.rollbacks = rng.next_below(4);
  t.detections = rng.next_below(8);
  t.wasted_cycles = rng.next();
  t.residual_cml = rng.next_below(100);
  t.recovery_gave_up = rng.next_below(2) != 0;
  t.first_detection_clock = static_cast<std::int64_t>(rng.next()) >> 8;
  t.pruned = rng.next_below(2) != 0;
  t.prune_clock = rng.next();
  t.dedup_count = rng.next_below(6);
  return t;
}

shard::RangeResult random_range_result(Xoshiro256& rng) {
  shard::RangeResult rr;
  rr.first = rng.next_below(1u << 20);
  const std::uint64_t span = rng.next_below(16) + 1;
  rr.last = rr.first + span;
  std::uint64_t idx = rr.first;
  while (idx < rr.last) {
    if (rng.next_below(2) != 0) rr.results.emplace_back(idx, random_trial(rng));
    idx += rng.next_below(3) + 1;
  }
  const std::uint64_t ncounters = rng.next_below(4);
  for (std::uint64_t i = 0; i < ncounters; ++i) {
    rr.metrics.counters["c" + std::to_string(i)] = rng.next();
  }
  if (rng.next_below(2) != 0) {
    obs::HistogramSnapshot hs;
    const std::uint64_t nbounds = rng.next_below(4) + 1;
    std::uint64_t b = 1;
    for (std::uint64_t i = 0; i < nbounds; ++i) {
      hs.bounds.push_back(b);
      b *= 4;
    }
    for (std::uint64_t i = 0; i <= nbounds; ++i) {
      hs.counts.push_back(rng.next_below(100));
    }
    hs.count = rng.next_below(1000);
    hs.sum = rng.next();
    rr.metrics.histograms["h"] = hs;
  }
  return rr;
}

}  // namespace

OracleResult check_shard_protocol(const GeneratedProgram& prog,
                                  const OracleConfig& config,
                                  std::size_t iters) {
  OracleResult res;
  res.oracle = "shard";
  try {
    Xoshiro256 rng(derive_seed(prog.seed, 0x54A2Dull));

    // Leg A: randomized Result frames round-trip byte-exactly.
    for (std::size_t i = 0; i < iters; ++i) {
      const shard::RangeResult rr = random_range_result(rng);
      const std::vector<std::uint8_t> wire =
          shard::encode_frame(shard::make_result_frame(rr));
      std::size_t consumed = 0;
      const shard::RangeResult back = shard::parse_result(
          shard::decode_frame(wire.data(), wire.size(), &consumed));
      if (consumed != wire.size()) {
        return fail("shard", "decode consumed " + std::to_string(consumed) +
                                 " of " + std::to_string(wire.size()) +
                                 " bytes (iter " + std::to_string(i) + ")");
      }
      const std::vector<std::uint8_t> rewire =
          shard::encode_frame(shard::make_result_frame(back));
      if (rewire != wire) {
        return fail("shard", "Result frame did not round-trip byte-exactly "
                             "(iter " + std::to_string(i) + ")");
      }

      // Leg B: a strike on the same frame must be rejected, never misparsed.
      std::vector<std::uint8_t> struck = wire;
      const std::uint64_t mode = rng.next_below(2);
      std::string what;
      if (mode == 0) {
        const std::size_t cut = rng.next_below(struck.size());
        struck.resize(cut);
        what = "truncation to " + std::to_string(cut) + " bytes";
      } else {
        const std::uint64_t bit = rng.next_below(struck.size() * 8);
        struck[static_cast<std::size_t>(bit / 8)] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
        what = "bit flip at " + std::to_string(bit);
      }
      try {
        (void)shard::parse_result(
            shard::decode_frame(struck.data(), struck.size()));
        return fail("shard", what + " went undetected (iter " +
                                 std::to_string(i) + ")");
      } catch (const shard::ProtocolError&) {
        // Typed rejection: the contract.
      }
    }

    // Leg C: JobSpec round-trip + digest stability (the campaign identity
    // the handshake and both journals validate against).
    {
      shard::JobSpec spec;
      spec.app = "fuzz_" + std::to_string(prog.seed);
      spec.experiment.nranks = prog.nranks;
      spec.experiment.overrides = {{"A", std::to_string(rng.next())}};
      spec.experiment.rng_seed = rng.next();
      spec.campaign.trials = config.campaign_trials;
      spec.campaign.seed = rng.next();
      spec.campaign.faults_per_run = config.multifault_k;
      spec.campaign.msg_faults_per_run = config.multifault_msg;
      spec.metrics_enabled = rng.next_below(2) != 0;
      const shard::Frame f = shard::make_setup_frame(spec);
      const std::vector<std::uint8_t> wire = shard::encode_frame(f);
      const shard::JobSpec back =
          shard::parse_setup(shard::decode_frame(wire.data(), wire.size()));
      if (shard::job_digest(back) != shard::job_digest(spec)) {
        return fail("shard", "JobSpec digest not stable across the wire");
      }
      const std::vector<std::uint8_t> rewire =
          shard::encode_frame(shard::make_setup_frame(back));
      if (rewire != wire) {
        return fail("shard", "JobSpec did not round-trip byte-exactly");
      }
    }

    // Leg D: coordinator + 2 in-process serve() shards over the generated
    // program == in-process run_campaign, bit for bit.
    {
      apps::AppSpec spec;
      spec.name = "fuzz_" + std::to_string(prog.seed);
      spec.description = "generated fuzz program";
      spec.source = prog.source;
      spec.default_nranks = prog.nranks;

      harness::ExperimentConfig ec;
      ec.nranks = prog.nranks;
      const harness::AppHarness h(spec, ec);

      harness::CampaignConfig cc;
      cc.trials = config.campaign_trials;
      cc.seed = derive_seed(prog.seed, 0x54A2Dull);
      cc.capture_traces = config.capture_traces;
      cc.max_kept_traces = 4;
      cc.jobs = 1;
      const harness::CampaignResult local = harness::run_campaign(h, cc);

      std::deque<shard::Conn> shard_ends;
      std::vector<shard::Conn> coord_ends;
      for (int i = 0; i < 2; ++i) {
        auto [coord_end, shard_end] = shard::make_conn_pair();
        coord_ends.push_back(std::move(coord_end));
        shard_ends.push_back(std::move(shard_end));
      }
      // Generated apps are not in the static registry; resolve the name the
      // coordinator sends back to the local AppSpec.
      shard::ServeOptions so;
      so.resolve_app = [&spec](const std::string&) -> const apps::AppSpec& {
        return spec;
      };
      std::vector<std::thread> threads;
      for (int i = 0; i < 2; ++i) {
        threads.emplace_back([&shard_ends, &so, i] {
          try {
            shard::serve(shard_ends[static_cast<std::size_t>(i)], so);
          } catch (...) {
          }
        });
      }
      harness::CampaignResult dist;
      std::exception_ptr err;
      try {
        dist = shard::run_distributed_campaign(h, cc, std::move(coord_ends));
      } catch (...) {
        err = std::current_exception();
      }
      for (std::thread& t : threads) t.join();
      if (err) std::rethrow_exception(err);

      const std::string d = diff_campaigns(local, dist);
      if (!d.empty()) {
        return fail("shard", "distributed vs in-process: " + d);
      }
      for (std::size_t i = 0; i < local.trials.size(); ++i) {
        if (local.trials[i].pruned != dist.trials[i].pruned ||
            local.trials[i].prune_clock != dist.trials[i].prune_clock ||
            local.trials[i].dedup_count != dist.trials[i].dedup_count) {
          return fail("shard", "trial-economy provenance differs at trial " +
                                   std::to_string(i));
        }
      }
      if (local.pruned_trials != dist.pruned_trials ||
          local.deduped_trials != dist.deduped_trials) {
        return fail("shard", "trial-economy aggregates differ");
      }
    }
  } catch (const std::exception& e) {
    return fail("shard", std::string("exception: ") + e.what());
  }
  return res;
}

OracleResult check_header_adversarial(std::uint64_t seed, std::size_t iters) {
  OracleResult res;
  res.oracle = "header";
  try {
    Xoshiro256 rng(derive_seed(seed, 0x6EADull));
    for (std::size_t i = 0; i < iters; ++i) {
      const std::uint64_t count_words = rng.next_below(16) + 1;
      const std::uint64_t buf = (rng.next_below(1024) + 1) * 8;

      // Start from an honest header over [buf, buf + 8*count_words).
      fpm::MessageHeader honest;
      const std::uint64_t n = rng.next_below(6);
      for (std::uint64_t r = 0; r < n; ++r) {
        honest.records.push_back({rng.next_below(count_words), rng.next()});
      }
      std::vector<std::uint64_t> wire = fpm::serialize_header(honest);

      const std::uint64_t mode = rng.next_below(4);
      if (mode == 1 && !wire.empty()) {
        // Single-bit strike anywhere in the stream (what the in-flight
        // injector actually produces).
        wire[rng.next_below(wire.size())] ^= 1ull << rng.next_below(64);
      } else if (mode == 2) {
        // Truncate or extend.
        wire.resize(rng.next_below(wire.size() + 3));
      } else if (mode == 3) {
        // Pure garbage stream.
        wire.assign(rng.next_below(12), 0);
        for (auto& w : wire) w = rng.next();
      }

      fpm::MessageHeader parsed;
      const bool well_formed = fpm::deserialize_header(wire, parsed);
      const std::size_t physical =
          wire.empty() ? 0 : (wire.size() - 1) / 2;
      if (parsed.records.size() > physical) {
        return fail("header", "parse yielded " +
                                  std::to_string(parsed.records.size()) +
                                  " records from " +
                                  std::to_string(physical) +
                                  " physical pairs (iter " +
                                  std::to_string(i) + ")");
      }
      if (mode == 0) {
        // Untouched honest stream: must round-trip exactly.
        if (!well_formed || parsed.records.size() != honest.records.size()) {
          return fail("header", "honest header failed to round-trip (iter " +
                                    std::to_string(i) + ")");
        }
      }

      // Install into a table holding one far-away sentinel entry.
      fpm::ShadowTable table;
      const std::uint64_t sentinel_addr = buf + 8 * count_words + 0x10000;
      table.record(sentinel_addr, 0xFEED);
      const fpm::InstallResult ir =
          fpm::install_header(table, buf, count_words, parsed);
      if (ir.installed + ir.quarantined != parsed.records.size()) {
        return fail("header", "install accounting lost records (iter " +
                                  std::to_string(i) + ")");
      }
      for (const auto& [addr, pristine] : table.entries()) {
        if (addr == sentinel_addr) continue;
        if (addr < buf || addr >= buf + 8 * count_words) {
          return fail("header",
                      "installed record escaped the receive buffer (iter " +
                          std::to_string(i) + ")");
        }
      }
      if (table.pristine_or(sentinel_addr, 0) != 0xFEED) {
        return fail("header", "sentinel entry clobbered (iter " +
                                  std::to_string(i) + ")");
      }
    }
  } catch (const std::exception& e) {
    return fail("header", std::string("exception: ") + e.what());
  }
  return res;
}

OracleResult check_parser_robust(const std::string& source) {
  OracleResult res;
  res.oracle = "parser";
  try {
    (void)minic::compile(source);
  } catch (const CompileError&) {
    // Expected rejection path: a diagnostic with a source location.
  } catch (const std::exception& e) {
    return fail("parser",
                std::string("frontend threw a non-CompileError exception: ") +
                    e.what());
  }
  return res;
}

}  // namespace fprop::fuzz
