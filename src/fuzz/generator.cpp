#include "fprop/fuzz/generator.h"

#include <algorithm>
#include <string>
#include <vector>

#include "fprop/support/rng.h"

namespace fprop::fuzz {

namespace {

/// Generator-side value categories. Arrays carry a *bound expression*
/// (their constant length minus one, or a length-parameter expression) so
/// every subscript can be clamped into bounds at generation time.
enum class VType : std::uint8_t { Int, Float, IntArr, FloatArr };

bool is_array(VType t) noexcept {
  return t == VType::IntArr || t == VType::FloatArr;
}
VType elem_of(VType t) noexcept {
  return t == VType::IntArr ? VType::Int : VType::Float;
}

struct Var {
  std::string name;
  VType type{};
  /// Arrays: textual expression for length-1 ("7" or "(n - 1)").
  std::string bound;
  /// Arrays owned by main: constant length (0 for helper params).
  std::int64_t len = 0;
  /// Loop counters / MPI bookkeeping must never be reassigned (that could
  /// break termination or rank-uniformity).
  bool assignable = true;
};

struct Helper {
  std::string name;
  /// Scalar parameter types; when `array_param` the signature additionally
  /// starts with (float*/int* a, int n) and callers pass a real array plus
  /// its true length.
  std::vector<VType> scalars;
  bool array_param = false;
  VType array_type = VType::FloatArr;
  bool has_ret = false;
  VType ret = VType::Int;
};

class Gen {
 public:
  Gen(std::uint64_t seed, const GenConfig& cfg)
      : rng_(derive_seed(seed, 0xF0550ull)), cfg_(cfg) {}

  GeneratedProgram run(std::uint64_t seed) {
    GeneratedProgram p;
    p.seed = seed;
    p.nranks = cfg_.nranks;
    p.has_mpi = cfg_.mpi && cfg_.nranks >= 2 && chance(70);
    if (!p.has_mpi) p.nranks = 1;

    const std::size_t nhelpers =
        cfg_.max_helpers == 0 ? 0 : below(cfg_.max_helpers + 1);
    for (std::size_t i = 0; i < nhelpers; ++i) emit_helper();
    emit_main(p.has_mpi);
    p.source = std::move(out_);
    return p;
  }

 private:
  // --- randomness helpers --------------------------------------------------
  std::uint64_t below(std::uint64_t bound) { return rng_.next_below(bound); }
  bool chance(unsigned pct) { return below(100) < pct; }
  std::int64_t irange(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // --- emit helpers --------------------------------------------------------
  void line(const std::string& s) {
    out_.append(static_cast<std::size_t>(indent_) * 2, ' ');
    out_ += s;
    out_ += '\n';
  }
  std::string fresh(const char* prefix) {
    return std::string(prefix) + std::to_string(name_counter_++);
  }

  // --- scopes --------------------------------------------------------------
  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }
  Var& declare(Var v) {
    scopes_.back().push_back(std::move(v));
    return scopes_.back().back();
  }
  /// All visible variables satisfying `pred`.
  template <typename Pred>
  std::vector<const Var*> visible(Pred pred) const {
    std::vector<const Var*> out;
    for (const auto& scope : scopes_) {
      for (const auto& v : scope) {
        if (pred(v)) out.push_back(&v);
      }
    }
    return out;
  }
  const Var* pick(std::vector<const Var*> vars) {
    if (vars.empty()) return nullptr;
    return vars[below(vars.size())];
  }
  const Var* pick_scalar(VType t) {
    return pick(visible([&](const Var& v) { return v.type == t; }));
  }
  const Var* pick_array(bool float_only = false) {
    return pick(visible([&](const Var& v) {
      return float_only ? v.type == VType::FloatArr : is_array(v.type);
    }));
  }

  // --- expressions ---------------------------------------------------------
  std::string int_lit() {
    switch (below(4)) {
      case 0: return std::to_string(irange(0, 4));
      case 1: return std::to_string(irange(0, 16));
      case 2: return std::to_string(std::int64_t{1} << below(12));
      default: return std::to_string(irange(0, 255));
    }
  }
  std::string float_lit() {
    // Small decimal literals built from integers: byte-stable across
    // platforms (no printf rounding) and always lexable.
    return std::to_string(irange(0, 9)) + "." + std::to_string(irange(0, 9));
  }

  /// Clamped subscript into `arr`: always within [0, len-1].
  std::string index_into(const Var& arr, int depth) {
    return "imin(imax(" + int_expr(depth) + ", 0), " + arr.bound + ")";
  }

  std::string int_expr(int depth) {
    if (depth <= 0 || chance(30)) {
      if (chance(50)) {
        if (const Var* v = pick_scalar(VType::Int)) return v->name;
      }
      return int_lit();
    }
    switch (below(12)) {
      case 0: case 1: {
        static const char* const ops[] = {"+", "-", "*", "&", "|", "^"};
        return "(" + int_expr(depth - 1) + " " + ops[below(6)] + " " +
               int_expr(depth - 1) + ")";
      }
      case 2: {
        // Non-zero positive denominator by construction.
        const char* op = chance(50) ? " / " : " % ";
        return "(" + int_expr(depth - 1) + op + "((" + int_expr(depth - 1) +
               " & 7) + 1))";
      }
      case 3: {
        // The VM masks shift amounts to 6 bits, so any amount is safe; keep
        // them small so values stay in a range where faults are interesting.
        const char* op = chance(50) ? " << " : " >> ";
        return "(" + int_expr(depth - 1) + op + "(" + int_expr(depth - 1) +
               " & 15))";
      }
      case 4: {
        static const char* const ops[] = {"<", "<=", ">", ">=", "==", "!="};
        return "(" + int_expr(depth - 1) + " " + ops[below(6)] + " " +
               int_expr(depth - 1) + ")";
      }
      case 5: {
        static const char* const ops[] = {"&&", "||"};
        return "(" + int_expr(depth - 1) + " " + ops[below(2)] + " " +
               int_expr(depth - 1) + ")";
      }
      case 6: {
        static const char* const ops[] = {"-", "~", "!"};
        return "(" + std::string(ops[below(3)]) + int_expr(depth - 1) + ")";
      }
      case 7:
        // f64 -> i64 uses cvttsd2si semantics in the VM: safe for any value.
        return "int(" + float_expr(depth - 1) + ")";
      case 8:
        return std::string(chance(50) ? "imin(" : "imax(") +
               int_expr(depth - 1) + ", " + int_expr(depth - 1) + ")";
      case 9: {
        const Var* arr = pick(visible(
            [](const Var& v) { return v.type == VType::IntArr; }));
        if (arr == nullptr) return int_expr(depth - 1);
        return arr->name + "[" + index_into(*arr, depth - 1) + "]";
      }
      case 10: {
        std::string call;
        if (helper_call(VType::Int, depth - 1, call)) return call;
        return int_expr(depth - 1);
      }
      default:
        return int_expr(depth - 1);
    }
  }

  std::string float_expr(int depth) {
    if (depth <= 0 || chance(30)) {
      if (chance(50)) {
        if (const Var* v = pick_scalar(VType::Float)) return v->name;
      }
      return float_lit();
    }
    switch (below(10)) {
      case 0: case 1: {
        static const char* const ops[] = {"+", "-", "*"};
        return "(" + float_expr(depth - 1) + " " + ops[below(3)] + " " +
               float_expr(depth - 1) + ")";
      }
      case 2:
        // Denominator >= 1.0: division can shrink but never explode.
        return "(" + float_expr(depth - 1) + " / (fabs(" +
               float_expr(depth - 1) + ") + 1.0))";
      case 3:
        return "sqrt(fabs(" + float_expr(depth - 1) + "))";
      case 4:
        return std::string(chance(50) ? "fmin(" : "fmax(") +
               float_expr(depth - 1) + ", " + float_expr(depth - 1) + ")";
      case 5:
        return "floor(" + float_expr(depth - 1) + ")";
      case 6:
        return "float(" + int_expr(depth - 1) + ")";
      case 7: {
        const Var* arr = pick_array(/*float_only=*/true);
        if (arr == nullptr) return float_expr(depth - 1);
        return arr->name + "[" + index_into(*arr, depth - 1) + "]";
      }
      case 8: {
        std::string call;
        if (helper_call(VType::Float, depth - 1, call)) return call;
        return float_expr(depth - 1);
      }
      default:
        if (allow_rand_ && chance(40)) return "rand01()";
        return "(" + float_expr(depth - 1) + " * " + float_lit() + ")";
    }
  }

  std::string expr_of(VType t, int depth) {
    return t == VType::Int ? int_expr(depth) : float_expr(depth);
  }

  /// Builds a call to a random helper returning `ret` whose arguments are
  /// satisfiable in the current scope. Helpers are only callable from main
  /// (no helper-to-helper calls => no recursion).
  bool helper_call(VType ret, int depth, std::string& out) {
    if (!in_main_ || helpers_.empty()) return false;
    std::vector<const Helper*> cands;
    for (const auto& h : helpers_) {
      if (h.has_ret && h.ret == ret) cands.push_back(&h);
    }
    if (cands.empty()) return false;
    const Helper& h = *cands[below(cands.size())];
    return format_call(h, depth, out);
  }

  bool format_call(const Helper& h, int depth, std::string& out) {
    std::string call = h.name + "(";
    bool first = true;
    if (h.array_param) {
      const Var* arr = pick(visible([&](const Var& v) {
        return v.type == h.array_type && v.len > 0;
      }));
      if (arr == nullptr) return false;
      call += arr->name + ", " + std::to_string(arr->len);
      first = false;
    }
    for (VType t : h.scalars) {
      if (!first) call += ", ";
      call += expr_of(t, depth);
      first = false;
    }
    call += ")";
    out = std::move(call);
    return true;
  }

  // --- statements ----------------------------------------------------------
  void stmt_decl_scalar(int depth) {
    const VType t = chance(50) ? VType::Int : VType::Float;
    Var v;
    v.name = fresh("v");
    v.type = t;
    line("var " + v.name + ": " +
         (t == VType::Int ? std::string("int") : std::string("float")) +
         " = " + expr_of(t, depth) + ";");
    declare(std::move(v));
  }

  void stmt_decl_array() {
    const bool is_float = chance(70);
    Var v;
    v.name = fresh("a");
    v.type = is_float ? VType::FloatArr : VType::IntArr;
    v.len = irange(4, 16);
    v.bound = std::to_string(v.len - 1);
    line("var " + v.name + ": " + (is_float ? "float*" : "int*") + " = " +
         (is_float ? "alloc_float(" : "alloc_int(") + std::to_string(v.len) +
         ");");
    declare(std::move(v));
  }

  void stmt_assign(int depth) {
    const Var* v = pick(visible(
        [](const Var& x) { return !is_array(x.type) && x.assignable; }));
    if (v == nullptr) {
      stmt_decl_scalar(depth);
      return;
    }
    line(v->name + " = " + expr_of(v->type, depth) + ";");
  }

  void stmt_array_store(int depth) {
    const Var* arr = pick_array();
    if (arr == nullptr) {
      stmt_decl_array();
      return;
    }
    line(arr->name + "[" + index_into(*arr, depth - 1) + "] = " +
         expr_of(elem_of(arr->type), depth) + ";");
  }

  void stmt_output(int depth) {
    if (chance(50)) {
      line("output_i(" + int_expr(depth) + ");");
    } else {
      line("output_f(" + float_expr(depth) + ");");
    }
  }

  void stmt_if(int block_depth) {
    line("if (" + int_expr(cfg_.max_expr_depth) + ") {");
    ++indent_;
    push_scope();
    block_body(block_depth - 1, 1 + below(3));
    pop_scope();
    --indent_;
    if (chance(50)) {
      line("} else {");
      ++indent_;
      push_scope();
      block_body(block_depth - 1, 1 + below(2));
      pop_scope();
      --indent_;
    }
    line("}");
  }

  void stmt_for(int block_depth) {
    const std::string i = fresh("i");
    const std::int64_t trip = irange(2, cfg_.max_loop_trip);
    line("for (var " + i + ": int = 0; " + i + " < " + std::to_string(trip) +
         "; " + i + " = " + i + " + 1) {");
    ++indent_;
    push_scope();
    declare({i, VType::Int, "", 0, /*assignable=*/false});
    block_body(block_depth - 1, 1 + below(3));
    pop_scope();
    --indent_;
    line("}");
  }

  void stmt_helper_void_call(int depth) {
    std::vector<const Helper*> voids;
    for (const auto& h : helpers_) {
      if (!h.has_ret) voids.push_back(&h);
    }
    if (!in_main_ || voids.empty()) {
      stmt_output(depth);
      return;
    }
    std::string call;
    if (format_call(*voids[below(voids.size())], depth, call)) {
      line(call + ";");
    } else {
      stmt_output(depth);
    }
  }

  void one_stmt(int block_depth) {
    const int d = cfg_.max_expr_depth;
    switch (below(10)) {
      case 0: stmt_decl_scalar(d); break;
      case 1: stmt_decl_array(); break;
      case 2: case 3: stmt_assign(d); break;
      case 4: case 5: stmt_array_store(d); break;
      case 6: stmt_output(d); break;
      case 7:
        if (block_depth > 0) stmt_if(block_depth); else stmt_assign(d);
        break;
      case 8:
        if (block_depth > 0) stmt_for(block_depth); else stmt_array_store(d);
        break;
      default: stmt_helper_void_call(d); break;
    }
  }

  void block_body(int block_depth, std::size_t nstmts) {
    for (std::size_t i = 0; i < nstmts; ++i) one_stmt(block_depth);
  }

  // --- MPI patterns --------------------------------------------------------
  // All MPI calls are emitted at rank-uniform sequence points (main's top
  // level, or a constant-trip loop at main's top level); sends are eager in
  // mpisim, so send-before-recv rings cannot deadlock.

  /// Two distinct float arrays with length >= L, for buffer pairs.
  bool pick_buffer_pair(std::int64_t len, const Var*& a, const Var*& b) {
    auto arrs = visible([&](const Var& v) {
      return v.type == VType::FloatArr && v.len >= len;
    });
    if (arrs.size() < 2) return false;
    const std::size_t i = below(arrs.size());
    std::size_t j = below(arrs.size() - 1);
    if (j >= i) ++j;
    a = arrs[i];
    b = arrs[j];
    return true;
  }

  void mpi_pattern() {
    const std::int64_t len = irange(1, 4);
    const Var* a = nullptr;
    const Var* b = nullptr;
    if (!pick_buffer_pair(len, a, b)) return;
    // Copy the names now: ring_neighbor() declares variables below, which
    // can reallocate the scope vectors and invalidate a/b.
    const std::string an = a->name;
    const std::string bn = b->name;
    const std::string l = std::to_string(len);
    const std::string tag = std::to_string(irange(0, 7));
    switch (below(5)) {
      case 0:
        line(std::string(chance(50) ? "mpi_allreduce_sum_f("
                                    : "mpi_allreduce_max_f(") +
             an + ", " + bn + ", " + l + ");");
        break;
      case 1:
        line("mpi_bcast_f(0, " + an + ", " + l + ");");
        break;
      case 2:
        line("mpi_barrier();");
        break;
      case 3: {
        // Blocking ring shift: everyone sends right, receives from the left.
        const std::string rt = ring_neighbor(+1);
        const std::string lf = ring_neighbor(-1);
        line("mpi_send_f(" + rt + ", " + tag + ", " + an + ", " + l +
             ");");
        line("mpi_recv_f(" + lf + ", " + tag + ", " + bn + ", " + l +
             ");");
        break;
      }
      default: {
        // Nonblocking ring: post the receive first, then the eager send.
        const std::string rt = ring_neighbor(+1);
        const std::string lf = ring_neighbor(-1);
        const std::string rq = fresh("v");
        line("var " + rq + ": int = mpi_irecv_f(" + lf + ", " + tag + ", " +
             bn + ", " + l + ");");
        declare({rq, VType::Int, "", 0, /*assignable=*/false});
        if (chance(50)) {
          line("mpi_send_f(" + rt + ", " + tag + ", " + an + ", " + l +
               ");");
        } else {
          const std::string sq = fresh("v");
          line("var " + sq + ": int = mpi_isend_f(" + rt + ", " + tag + ", " +
               an + ", " + l + ");");
          declare({sq, VType::Int, "", 0, /*assignable=*/false});
          line("mpi_wait(" + sq + ");");
        }
        line("mpi_wait(" + rq + ");");
        break;
      }
    }
  }

  /// Declares and returns a ring-neighbor rank variable (rank +/- 1, wrapped).
  std::string ring_neighbor(int dir) {
    const std::string n = fresh("v");
    if (dir > 0) {
      line("var " + n + ": int = rank + 1;");
      line("if (" + n + " >= size) { " + n + " = 0; }");
    } else {
      line("var " + n + ": int = rank - 1;");
      line("if (" + n + " < 0) { " + n + " = size - 1; }");
    }
    declare({n, VType::Int, "", 0, /*assignable=*/false});
    return n;
  }

  // --- functions -----------------------------------------------------------
  void emit_helper() {
    Helper h;
    h.name = fresh("h");
    h.array_param = chance(40);
    if (h.array_param) h.array_type = VType::FloatArr;
    const std::size_t nscalars = 1 + below(2);
    for (std::size_t i = 0; i < nscalars; ++i) {
      h.scalars.push_back(chance(50) ? VType::Int : VType::Float);
    }
    h.has_ret = chance(70);
    if (h.has_ret) h.ret = chance(50) ? VType::Int : VType::Float;

    std::string sig = "fn " + h.name + "(";
    push_scope();
    bool first = true;
    if (h.array_param) {
      const std::string arr = fresh("p");
      const std::string n = fresh("n");
      sig += arr + ": float*, " + n + ": int";
      // Callers always pass the array's true length, so clamping against the
      // length parameter keeps subscripts in bounds.
      declare({arr, h.array_type, "(" + n + " - 1)", 0, true});
      declare({n, VType::Int, "", 0, /*assignable=*/false});
      first = false;
    }
    for (std::size_t i = 0; i < h.scalars.size(); ++i) {
      const std::string p = fresh("p");
      if (!first) sig += ", ";
      sig += p + ": " + (h.scalars[i] == VType::Int ? "int" : "float");
      declare({p, h.scalars[i], "", 0, /*assignable=*/false});
      first = false;
    }
    sig += ")";
    if (h.has_ret) {
      sig += std::string(" -> ") + (h.ret == VType::Int ? "int" : "float");
    }
    line(sig + " {");
    ++indent_;
    block_body(1, 1 + below(4));
    if (h.has_ret) {
      line("return " + expr_of(h.ret, cfg_.max_expr_depth) + ";");
    }
    --indent_;
    pop_scope();
    line("}");
    line("");
    helpers_.push_back(std::move(h));
  }

  void emit_main(bool mpi) {
    in_main_ = true;
    allow_rand_ = chance(60);
    line("fn main() {");
    ++indent_;
    push_scope();
    if (mpi) {
      line("var rank: int = mpi_rank();");
      line("var size: int = mpi_size();");
      declare({"rank", VType::Int, "", 0, /*assignable=*/false});
      declare({"size", VType::Int, "", 0, /*assignable=*/false});
    }
    const std::size_t narrays = 2 + below(3);
    for (std::size_t i = 0; i < narrays; ++i) stmt_decl_array();
    // Prologue: deterministically fill every array. Besides giving the body
    // non-zero data, this guarantees each run executes memory stores — the
    // pristine oracle rejects a run whose FPM checked nothing.
    {
      struct ArrInfo {
        std::string name;
        std::int64_t len;
        bool is_float;
      };
      std::vector<ArrInfo> arrs;
      for (const Var* v : visible(
               [](const Var& x) { return is_array(x.type) && x.len > 0; })) {
        arrs.push_back({v->name, v->len, v->type == VType::FloatArr});
      }
      for (const auto& ai : arrs) {
        const std::string i = fresh("i");
        line("for (var " + i + ": int = 0; " + i + " < " +
             std::to_string(ai.len) + "; " + i + " = " + i + " + 1) {");
        if (ai.is_float) {
          line("  " + ai.name + "[" + i + "] = (float(" + i + ") * " +
               float_lit() + ");");
        } else {
          line("  " + ai.name + "[" + i + "] = (" + i + " * " + int_lit() +
               ");");
        }
        line("}");
      }
    }
    const std::size_t nscalars = 2 + below(3);
    for (std::size_t i = 0; i < nscalars; ++i) {
      stmt_decl_scalar(cfg_.max_expr_depth);
    }

    // Body: plain statements with MPI patterns interleaved at top level.
    const std::size_t nstmts = 3 + below(cfg_.max_stmts);
    std::size_t mpi_left = mpi ? 1 + below(3) : 0;
    for (std::size_t i = 0; i < nstmts; ++i) {
      if (mpi_left > 0 && chance(25)) {
        --mpi_left;
        if (chance(30)) {
          // Pattern repeated inside a constant-trip loop (uniform bounds).
          const std::string it = fresh("i");
          line("for (var " + it + ": int = 0; " + it + " < " +
               std::to_string(irange(2, 4)) + "; " + it + " = " + it +
               " + 1) {");
          ++indent_;
          push_scope();
          declare({it, VType::Int, "", 0, false});
          mpi_pattern();
          pop_scope();
          --indent_;
          line("}");
        } else {
          mpi_pattern();
        }
      } else {
        one_stmt(cfg_.max_block_depth);
      }
    }
    while (mpi_left-- > 0) mpi_pattern();

    // Epilogue: checksum every main-scope array and output every scalar, so
    // the whole final memory state feeds the differential comparison.
    std::vector<const Var*> arrays = visible(
        [](const Var& v) { return is_array(v.type) && v.len > 0; });
    for (const Var* arr : arrays) {
      const std::string s = fresh("v");
      const std::string i = fresh("i");
      const bool f = arr->type == VType::FloatArr;
      line(std::string("var ") + s + ": " + (f ? "float" : "int") + " = " +
           (f ? "0.0" : "0") + ";");
      line("for (var " + i + ": int = 0; " + i + " < " +
           std::to_string(arr->len) + "; " + i + " = " + i + " + 1) {");
      line("  " + s + " = " + s + " + " + arr->name + "[" + i + "];");
      line("}");
      line((f ? "output_f(" : "output_i(") + s + ");");
    }
    for (const Var* v :
         visible([](const Var& x) { return !is_array(x.type); })) {
      line((v->type == VType::Float ? "output_f(" : "output_i(") + v->name +
           ");");
    }
    pop_scope();
    --indent_;
    line("}");
    in_main_ = false;
  }

  Xoshiro256 rng_;
  GenConfig cfg_;
  std::string out_;
  int indent_ = 0;
  std::size_t name_counter_ = 0;
  std::vector<std::vector<Var>> scopes_;
  std::vector<Helper> helpers_;
  bool in_main_ = false;
  bool allow_rand_ = false;
};

}  // namespace

GeneratedProgram generate_program(std::uint64_t seed, const GenConfig& config) {
  return Gen(seed, config).run(seed);
}

std::string mutate_source(const std::string& source, std::uint64_t seed) {
  Xoshiro256 rng(derive_seed(seed, 0x3007a7eull));
  std::string s = source;
  const std::size_t nmut = 1 + rng.next_below(4);
  // Dictionary of pathological fragments: frontend edge cases a plain
  // byte-flipper takes a long time to spell (huge literals, truncated
  // exponents, operator soup).
  static const char* const kDict[] = {
      "((((((((", "{{{{", "}}}}", "1e", "1e999999999",
      "99999999999999999999999999", "->", "!!!~~--", "var", "fn",
      "int(", "[", "]]", ";;", ":", "@", "$", "\x01", "e+", ".5.",
  };
  static const char kChars[] =
      "{}()[];:=+-*/%<>!&|^~.,eE0123456789abz_ \n\"@$";
  for (std::size_t m = 0; m < nmut; ++m) {
    if (s.empty()) break;
    switch (rng.next_below(5)) {
      case 0:  // truncate
        s.resize(rng.next_below(s.size() + 1));
        break;
      case 1: {  // delete a span
        const std::size_t at = rng.next_below(s.size());
        const std::size_t n =
            std::min<std::size_t>(1 + rng.next_below(16), s.size() - at);
        s.erase(at, n);
        break;
      }
      case 2: {  // duplicate a span
        const std::size_t at = rng.next_below(s.size());
        const std::size_t n =
            std::min<std::size_t>(1 + rng.next_below(16), s.size() - at);
        s.insert(at, s.substr(at, n));
        break;
      }
      case 3: {  // flip a character
        const std::size_t at = rng.next_below(s.size());
        s[at] = kChars[rng.next_below(sizeof(kChars) - 1)];
        break;
      }
      default: {  // insert a dictionary fragment
        const std::size_t at = rng.next_below(s.size() + 1);
        s.insert(at, kDict[rng.next_below(std::size(kDict))]);
        break;
      }
    }
  }
  return s;
}

}  // namespace fprop::fuzz
