// Direct-threaded dispatch loop for the compiled execution tier
// (DESIGN.md §13). Executes the bytecode stream produced by compile.cpp with
// bit-identical semantics to Interp::step():
//
//  * Virtual clock and FPM sampling: every executed IR instruction — each
//    half of a fused pair separately — increments cycles_ and ticks the FPM
//    runtime, exactly like finish_instr(). Fuel is capped at the remaining
//    cycle budget so the burst stops on the budgeted boundary and the caller
//    raises CycleBudget exactly where the reference tier would.
//  * Traps: the faulting instruction does not count a cycle and the frame is
//    left positioned AT it (head) or at the fused tail (src_ip + 1),
//    mirroring step()'s early return before finish_instr().
//  * Dyn-counter: fim_inj sites increment the injector's counter in place
//    (FastInjectState contract, hooks.h) and the loop escapes *before* any
//    site whose dyn-index reached the planned strike, so the strike itself
//    is always interpreted by step() with full hook visibility.
//
// On GCC/Clang the loop uses computed goto (labels-as-values) with the label
// table generated from the same X-macro lists as the BcOp enum, so table
// order and enum order cannot drift; elsewhere it degrades to a switch.

#include <algorithm>
#include <cmath>
#include <limits>

#include "fprop/support/error.h"
#include "fprop/vm/bytecode.h"
#include "fprop/vm/interp.h"
#include "exec_util.h"

#if defined(__GNUC__) || defined(__clang__)
#define FPROP_BC_THREADED 1
#else
#define FPROP_BC_THREADED 0
#endif

namespace fprop::vm {


using detail::as_bits;
using detail::as_i64;
using detail::f2i_trunc;
using detail::fmax_det;
using detail::fmin_det;

namespace {

/// Pure-math intrinsic evaluation shared by the IntrPure and IntrDup
/// handlers. Reads operand registers lazily per case — one-arg intrinsics
/// carry kNoReg in `b`, which must never be dereferenced. Returns false for
/// ids compile.cpp never emits as IntrPure (defensive: the handler escapes
/// to the reference interpreter).
inline bool intr_pure_eval(std::uint8_t id, const std::uint64_t* R, ir::Reg a,
                           ir::Reg b, std::uint64_t& out) noexcept {
  using ir::IntrinsicId;
  switch (static_cast<IntrinsicId>(id)) {
    case IntrinsicId::Sqrt: out = bits_of(std::sqrt(double_of(R[a]))); return true;
    case IntrinsicId::Fabs: out = bits_of(std::fabs(double_of(R[a]))); return true;
    case IntrinsicId::Exp: out = bits_of(std::exp(double_of(R[a]))); return true;
    case IntrinsicId::Log: out = bits_of(std::log(double_of(R[a]))); return true;
    case IntrinsicId::Sin: out = bits_of(std::sin(double_of(R[a]))); return true;
    case IntrinsicId::Cos: out = bits_of(std::cos(double_of(R[a]))); return true;
    case IntrinsicId::Pow:
      out = bits_of(std::pow(double_of(R[a]), double_of(R[b])));
      return true;
    case IntrinsicId::Floor:
      out = bits_of(std::floor(double_of(R[a])));
      return true;
    case IntrinsicId::FMin:
      out = bits_of(fmin_det(double_of(R[a]), double_of(R[b])));
      return true;
    case IntrinsicId::FMax:
      out = bits_of(fmax_det(double_of(R[a]), double_of(R[b])));
      return true;
    case IntrinsicId::IMin:
      out = as_bits(std::min(as_i64(R[a]), as_i64(R[b])));
      return true;
    case IntrinsicId::IMax:
      out = as_bits(std::max(as_i64(R[a]), as_i64(R[b])));
      return true;
    default:
      return false;
  }
}

}  // namespace

void Interp::set_bytecode(const BytecodeModule* bc) {
  FPROP_CHECK_MSG(bc == nullptr || bc->module() == module_,
                  "bytecode was compiled from a different module");
  bytecode_ = bc;
}

RunState Interp::run_bytecode(std::uint64_t max_steps) {
  std::uint64_t remaining = max_steps;
  // The fast-inject contract is queried once up front and refreshed only
  // after a reference step() — the only place a planned strike (which
  // advances the stop index) or a hook-state change can happen. The counter
  // pointer itself is stable for the life of the trial (hooks.h).
  std::uint64_t* inj_counter = nullptr;
  std::uint64_t inj_stop = ~0ull;
  bool fast_ok = true;
  if (inject_ != nullptr) {
    const FastInjectState st = inject_->fim_fast_state(rank_);
    inj_counter = st.counter;
    inj_stop = st.stop_before;
    fast_ok = st.counter != nullptr;
  }
  while (remaining > 0) {
    bool stepped = false;
    if (!fast_ok) {
      // Hook withdrew the fast contract mid-run: reference tier.
      if (!step()) break;
      --remaining;
      stepped = true;
    } else {
      const Frame& fr = frames_.back();
      const BcFunction& bf = bytecode_->func(fr.func->id);
      const std::int32_t pc = bf.ir2bc[fr.block][fr.ip];
      const std::uint64_t budget_left = config_.cycle_budget - cycles_;
      const std::uint64_t fuel = std::min(remaining, budget_left);
      if (pc < 0 || fuel < kBcMaxFuse) {
        // Superinstruction tail (slice stop or snapshot restore landed
        // mid-group) or too little fuel to guarantee a whole group: one
        // reference step.
        if (!step()) break;
        --remaining;
        stepped = true;
      } else {
        const std::uint64_t executed =
            exec_bc(bf, static_cast<std::uint32_t>(pc), fuel, inj_counter,
                    inj_stop);
        remaining -= executed;
        if (state_ != RunState::Ready) break;
        if (cycles_ >= config_.cycle_budget) {
          // Same boundary finish_instr() enforces.
          do_trap(Trap::CycleBudget);
          break;
        }
        if (executed == 0) {
          // The stream cannot cover this position (Call/Ret/MPI escape, or a
          // fim_inj site at the planned strike index): interpret exactly one
          // instruction, then resume fast.
          if (!step()) break;
          --remaining;
          stepped = true;
        }
      }
    }
    if (stepped && inject_ != nullptr) {
      const FastInjectState st = inject_->fim_fast_state(rank_);
      inj_counter = st.counter;
      inj_stop = st.stop_before;
      fast_ok = st.counter != nullptr;
    }
  }
  return state_;
}

// Cycle accounting for one executed IR sub-instruction — finish_instr()
// minus the budget check, which the fuel cap plus run_bytecode() perform on
// the identical boundary. All per-instruction state lives in registers: the
// executed count is derived from the fuel spent (fuel0 - fuel), the virtual
// clock from cyc0 + that, and the dyn-counter from the local cnt — the
// members are written back once per burst (FPROP_SYNC), not per
// instruction, which would otherwise force a reload around every R[] store
// the compiler must assume aliases them. tick() is hoisted behind
// needs_tick(): when it cannot observe anything, it is not called at all.
#define FPROP_CYCLES() (cyc0 + (fuel0 - fuel))
#define FPROP_STEP1()                                       \
  do {                                                      \
    --fuel;                                                 \
    if (tick_fpm != nullptr) tick_fpm->tick(FPROP_CYCLES()); \
  } while (0)

// Burst exit: publish the registerized counters back to the members.
#define FPROP_SYNC()                                        \
  do {                                                      \
    cycles_ = FPROP_CYCLES();                               \
    if (inj_counter != nullptr) *inj_counter = cnt;         \
  } while (0)

// Trap at the head / fused tail of the current bytecode instruction: sync
// the frame to the faulting IR position (no cycle counted), mirroring
// step()'s early return.
#define FPROP_TRAP_AT(ipval, t)                               \
  do {                                                        \
    fr.block = I->src_block;                                  \
    fr.ip = (ipval);                                          \
    fr.code = fr.func->blocks[fr.block].code.data();          \
    FPROP_SYNC();                                             \
    do_trap(t);                                               \
    return fuel0 - fuel;                                      \
  } while (0)
#define FPROP_TRAP_HEAD(t) FPROP_TRAP_AT(I->src_ip, t)
#define FPROP_TRAP_TAIL(t) FPROP_TRAP_AT(I->src_ip + 1, t)

// Park mid-group on a planned fim_inj strike: position the frame on the
// striking IR instruction (ir2bc maps in-group tails to -1, so
// run_bytecode() interprets exactly that fim_inj with full hook visibility,
// then resumes fast). The instructions before it in the group have already
// executed and counted their cycles.
#define FPROP_PARK_AT(ipofs)                          \
  do {                                                \
    fr.block = I->src_block;                          \
    fr.ip = I->src_ip + (ipofs);                      \
    fr.code = fr.func->blocks[fr.block].code.data();  \
    FPROP_SYNC();                                     \
    return fuel0 - fuel;                              \
  } while (0)

std::uint64_t Interp::exec_bc(const BcFunction& bf, std::uint32_t pc,
                              std::uint64_t fuel, std::uint64_t* inj_counter,
                              std::uint64_t inj_stop) {
  Frame& fr = frames_.back();
  std::uint64_t* const R = fr.regs.data();
  fpm::FpmRuntime* const fpm = fpm_;
  fpm::FpmRuntime* const tick_fpm =
      (fpm != nullptr && fpm->needs_tick()) ? fpm : nullptr;
  const BcInstr* const code = bf.code.data();
  const BcInstr* I = code + pc;
  const std::uint64_t cyc0 = cycles_;
  const std::uint64_t fuel0 = fuel;
  // Local dyn-counter; cnt never reaches inj_stop (~0) when no injector is
  // attached, so the FimInj strike checks need no null guard.
  std::uint64_t cnt = inj_counter != nullptr ? *inj_counter : 0;

#if FPROP_BC_THREADED
#define FPROP_LBL(n, e) &&L_##n,
#define FPROP_LBL_DUP(n, e) &&L_##n##Dup,
#define FPROP_LBL_ST(n, e) &&L_##n##St,
#define FPROP_LBL_BR(n, e) &&L_##n##Br,
#define FPROP_LBL_DUPBR(n, e) &&L_##n##DupBr,
#define FPROP_LBL_INJDUP(n, e) &&L_Inj##n##Dup,
#define FPROP_LBL_INJ2DUP(n, e) &&L_Inj2##n##Dup,
  // Must list one label per BcOp in exact enum order (bytecode.h).
  static const void* const kL[] = {
      FPROP_BC_BIN2(FPROP_LBL) FPROP_BC_UN1(FPROP_LBL)
      &&L_F2I, &&L_ConstI, &&L_DivI, &&L_RemI, &&L_Load, &&L_Store,
      &&L_FpmFetch, &&L_FpmStore, &&L_FimInj, &&L_Jmp, &&L_Br, &&L_IntrPure,
      &&L_Rand01, &&L_ClockRd, &&L_OutputF, &&L_OutputI, &&L_ReportIters,
      &&L_Alloc, &&L_MpiRank, &&L_MpiSize, &&L_Escape,
      FPROP_BC_BIN2(FPROP_LBL_DUP) FPROP_BC_UN1(FPROP_LBL_DUP)
      &&L_F2IDup, &&L_ConstIDup,
      FPROP_BC_BIN2(FPROP_LBL_ST) FPROP_BC_CMP2(FPROP_LBL_BR)
      &&L_LoadFetch, &&L_Load2, &&L_PtrAddLoad, &&L_FimInj2,
      FPROP_BC_CMP2(FPROP_LBL_DUPBR)
      &&L_MovDupJmp, &&L_PtrAddLF, &&L_ConstIDupInj, &&L_LFInj2, &&L_IntrDup,
      FPROP_BC_BIN2(FPROP_LBL_INJDUP) FPROP_BC_BIN2(FPROP_LBL_INJ2DUP)
  };
  static_assert(sizeof(kL) / sizeof(kL[0]) == kBcOpCount,
                "label table out of sync with BcOp");
#undef FPROP_LBL
#undef FPROP_LBL_DUP
#undef FPROP_LBL_ST
#undef FPROP_LBL_BR
#undef FPROP_LBL_DUPBR
#undef FPROP_LBL_INJDUP
#undef FPROP_LBL_INJ2DUP
#define FPROP_CASE(n) L_##n:
#define FPROP_DISPATCH()                             \
  do {                                               \
    if (fuel < kBcMaxFuse) goto sync_out;            \
    goto* kL[static_cast<unsigned>(I->op)];          \
  } while (0)
  FPROP_DISPATCH();
#else
#define FPROP_CASE(n) case BcOp::n:
#define FPROP_DISPATCH() goto dispatch_top
dispatch_top:
  if (fuel < kBcMaxFuse) goto sync_out;
  switch (I->op) {
#endif

// --- single (one IR instruction) handlers --------------------------------

#define FPROP_H_BIN2(n, e)             \
  FPROP_CASE(n) {                      \
    const std::uint64_t A = R[I->a];   \
    const std::uint64_t B = R[I->b];   \
    R[I->dst] = (e);                   \
    FPROP_STEP1();                     \
    ++I;                               \
    FPROP_DISPATCH();                  \
  }
#define FPROP_H_UN1(n, e)              \
  FPROP_CASE(n) {                      \
    const std::uint64_t A = R[I->a];   \
    R[I->dst] = (e);                   \
    FPROP_STEP1();                     \
    ++I;                               \
    FPROP_DISPATCH();                  \
  }
  FPROP_BC_BIN2(FPROP_H_BIN2)
  FPROP_BC_UN1(FPROP_H_UN1)
#undef FPROP_H_BIN2
#undef FPROP_H_UN1

  FPROP_CASE(F2I) {
    R[I->dst] = as_bits(f2i_trunc(double_of(R[I->a])));
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(ConstI) {
    R[I->dst] = as_bits(I->imm);
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(DivI) {
    const std::int64_t a = as_i64(R[I->a]);
    const std::int64_t b = as_i64(R[I->b]);
    if (b == 0) FPROP_TRAP_HEAD(Trap::DivByZero);
    if (a == std::numeric_limits<std::int64_t>::min() && b == -1) {
      R[I->dst] = as_bits(a);  // wraps on hardware
    } else {
      R[I->dst] = as_bits(a / b);
    }
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(RemI) {
    const std::int64_t a = as_i64(R[I->a]);
    const std::int64_t b = as_i64(R[I->b]);
    if (b == 0) FPROP_TRAP_HEAD(Trap::DivByZero);
    if (a == std::numeric_limits<std::int64_t>::min() && b == -1) {
      R[I->dst] = 0;
    } else {
      R[I->dst] = as_bits(a % b);
    }
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(Load) {
    std::uint64_t v = 0;
    if (!mem_.load(R[I->a], v)) FPROP_TRAP_HEAD(Trap::BadAccess);
    R[I->dst] = v;
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(Store) {
    if (!mem_.store(R[I->b], R[I->a])) FPROP_TRAP_HEAD(Trap::BadAccess);
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(FpmFetch) {
    // Pristine-chain load: never faults the primary execution (interp.cpp).
    const std::uint64_t addr_p = R[I->a];
    std::uint64_t actual = 0;
    (void)mem_.load(addr_p, actual);
    R[I->dst] = fpm != nullptr ? fpm->fetch(addr_p, actual) : actual;
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(FpmStore) {
    const std::uint64_t val = R[I->a];
    const std::uint64_t val_p = R[I->b];
    const std::uint64_t addr = R[I->c];
    const std::uint64_t addr_p = R[I->d];
    std::uint64_t old = 0;
    if (!mem_.load(addr, old)) FPROP_TRAP_HEAD(Trap::BadAccess);
    const std::uint64_t old_pristine =
        fpm != nullptr ? fpm->shadow().pristine_or(addr, old) : old;
    mem_.store(addr, val);
    if (fpm != nullptr) {
      std::uint64_t mem_at_p = 0;
      bool have_p = true;
      if (addr != addr_p) have_p = mem_.load(addr_p, mem_at_p);
      fpm->on_store(val, val_p, addr, addr_p, old_pristine, mem_at_p, have_p);
    }
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(FimInj) {
    if (cnt >= inj_stop) goto sync_out;  // planned strike: one step()
    ++cnt;
    R[I->dst] = R[I->a];
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(Jmp) {
    I = code + I->t1;
    FPROP_STEP1();
    FPROP_DISPATCH();
  }
  FPROP_CASE(Br) {
    I = code + (R[I->a] != 0 ? I->t1 : I->t2);
    FPROP_STEP1();
    FPROP_DISPATCH();
  }
  FPROP_CASE(IntrPure) {
    std::uint64_t v = 0;
    if (!intr_pure_eval(I->sub, R, I->a, I->b, v)) goto sync_out;
    R[I->dst] = v;
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(Rand01) {
    R[I->dst] = bits_of(rng_.next_double());
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(ClockRd) {
    // Reads the clock *before* this instruction's own cycle, like step().
    R[I->dst] = as_bits(static_cast<std::int64_t>(FPROP_CYCLES()));
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(OutputF) {
    outputs_.push_back(double_of(R[I->a]));
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(OutputI) {
    outputs_.push_back(static_cast<double>(as_i64(R[I->a])));
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(ReportIters) {
    reported_iters_ = as_i64(R[I->a]);
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(Alloc) {
    const std::int64_t n = as_i64(R[I->a]);
    if (n < 0) FPROP_TRAP_HEAD(Trap::BadAlloc);
    const std::uint64_t addr = mem_.alloc_words(static_cast<std::uint64_t>(n));
    if (addr == 0) FPROP_TRAP_HEAD(Trap::BadAlloc);
    R[I->dst] = addr;
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(MpiRank) {
    R[I->dst] = as_bits(static_cast<std::int64_t>(rank_));
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(MpiSize) {
    R[I->dst] = as_bits(mpi_ != nullptr ? mpi_->rank_count()
                                        : std::int64_t{1});
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(Escape) {
    goto sync_out;  // Call/Ret/MPI/abort: one reference step()
  }

// --- fused (two IR instructions) handlers --------------------------------
// Head executes, counts its cycle, then the tail — strictly in program
// order, so tail operands naming the head's dst read the fresh value.

#define FPROP_H_DUP2(n, e)               \
  FPROP_CASE(n##Dup) {                   \
    {                                    \
      const std::uint64_t A = R[I->a];   \
      const std::uint64_t B = R[I->b];   \
      R[I->dst] = (e);                   \
    }                                    \
    FPROP_STEP1();                       \
    {                                    \
      const std::uint64_t A = R[I->c];   \
      const std::uint64_t B = R[I->d];   \
      R[I->dst2] = (e);                  \
    }                                    \
    FPROP_STEP1();                       \
    ++I;                                 \
    FPROP_DISPATCH();                    \
  }
#define FPROP_H_DUP1(n, e)               \
  FPROP_CASE(n##Dup) {                   \
    {                                    \
      const std::uint64_t A = R[I->a];   \
      R[I->dst] = (e);                   \
    }                                    \
    FPROP_STEP1();                       \
    {                                    \
      const std::uint64_t A = R[I->c];   \
      R[I->dst2] = (e);                  \
    }                                    \
    FPROP_STEP1();                       \
    ++I;                                 \
    FPROP_DISPATCH();                    \
  }
#define FPROP_H_ST2(n, e)                                  \
  FPROP_CASE(n##St) {                                      \
    {                                                      \
      const std::uint64_t A = R[I->a];                     \
      const std::uint64_t B = R[I->b];                     \
      R[I->dst] = (e);                                     \
    }                                                      \
    FPROP_STEP1();                                         \
    if (!mem_.store(R[I->c], R[I->d])) {                   \
      FPROP_TRAP_TAIL(Trap::BadAccess);                    \
    }                                                      \
    FPROP_STEP1();                                         \
    ++I;                                                   \
    FPROP_DISPATCH();                                      \
  }
#define FPROP_H_CMPBR(n, e)                                \
  FPROP_CASE(n##Br) {                                      \
    {                                                      \
      const std::uint64_t A = R[I->a];                     \
      const std::uint64_t B = R[I->b];                     \
      R[I->dst] = (e);                                     \
    }                                                      \
    FPROP_STEP1();                                         \
    {                                                      \
      const BcInstr* nx =                                  \
          code + (R[I->c] != 0 ? I->t1 : I->t2);           \
      FPROP_STEP1();                                       \
      I = nx;                                              \
    }                                                      \
    FPROP_DISPATCH();                                      \
  }
  FPROP_BC_BIN2(FPROP_H_DUP2)
  FPROP_BC_UN1(FPROP_H_DUP1)
  FPROP_BC_BIN2(FPROP_H_ST2)
  FPROP_BC_CMP2(FPROP_H_CMPBR)
#undef FPROP_H_DUP2
#undef FPROP_H_DUP1
#undef FPROP_H_ST2
#undef FPROP_H_CMPBR

  FPROP_CASE(F2IDup) {
    R[I->dst] = as_bits(f2i_trunc(double_of(R[I->a])));
    FPROP_STEP1();
    R[I->dst2] = as_bits(f2i_trunc(double_of(R[I->c])));
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(ConstIDup) {
    R[I->dst] = as_bits(I->imm);
    FPROP_STEP1();
    R[I->dst2] = as_bits(I->imm2);
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(LoadFetch) {
    std::uint64_t v = 0;
    if (!mem_.load(R[I->a], v)) FPROP_TRAP_HEAD(Trap::BadAccess);
    R[I->dst] = v;
    FPROP_STEP1();
    const std::uint64_t addr_p = R[I->c];
    std::uint64_t actual = 0;
    (void)mem_.load(addr_p, actual);
    R[I->dst2] = fpm != nullptr ? fpm->fetch(addr_p, actual) : actual;
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(Load2) {
    std::uint64_t v = 0;
    if (!mem_.load(R[I->a], v)) FPROP_TRAP_HEAD(Trap::BadAccess);
    R[I->dst] = v;
    FPROP_STEP1();
    if (!mem_.load(R[I->c], v)) FPROP_TRAP_TAIL(Trap::BadAccess);
    R[I->dst2] = v;
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(PtrAddLoad) {
    R[I->dst] = R[I->a] + R[I->b] * 8;
    FPROP_STEP1();
    std::uint64_t v = 0;
    if (!mem_.load(R[I->c], v)) FPROP_TRAP_TAIL(Trap::BadAccess);
    R[I->dst2] = v;
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(FimInj2) {
    if (cnt >= inj_stop) goto sync_out;  // strike at the head
    ++cnt;
    R[I->dst] = R[I->a];
    FPROP_STEP1();
    if (cnt >= inj_stop) FPROP_PARK_AT(1);  // strike at the tail
    ++cnt;
    R[I->dst2] = R[I->c];
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }

// --- merged (three / four IR instructions) handlers ----------------------
// Produced by compile.cpp's peephole merge pass over already-fused pairs;
// same rule as above: sub-instructions execute strictly in IR order, each
// counting its own cycle, and fim_inj strikes park the frame exactly on the
// striking site.

#define FPROP_H_DUPBR(n, e)                                \
  FPROP_CASE(n##DupBr) {                                   \
    {                                                      \
      const std::uint64_t A = R[I->a];                     \
      const std::uint64_t B = R[I->b];                     \
      R[I->dst] = (e);                                     \
    }                                                      \
    FPROP_STEP1();                                         \
    {                                                      \
      const std::uint64_t A = R[I->c];                     \
      const std::uint64_t B = R[I->d];                     \
      R[I->dst2] = (e);                                    \
    }                                                      \
    FPROP_STEP1();                                         \
    {                                                      \
      const BcInstr* nx =                                  \
          code + (R[I->p32a()] != 0 ? I->t1 : I->t2);      \
      FPROP_STEP1();                                       \
      I = nx;                                              \
    }                                                      \
    FPROP_DISPATCH();                                      \
  }
#define FPROP_H_INJDUP(n, e)                               \
  FPROP_CASE(Inj##n##Dup) {                                \
    if (cnt >= inj_stop) goto sync_out;                    \
    ++cnt;                                                 \
    R[I->p32b()] = R[I->p32a()];                           \
    FPROP_STEP1();                                         \
    {                                                      \
      const std::uint64_t A = R[I->a];                     \
      const std::uint64_t B = R[I->b];                     \
      R[I->dst] = (e);                                     \
    }                                                      \
    FPROP_STEP1();                                         \
    {                                                      \
      const std::uint64_t A = R[I->c];                     \
      const std::uint64_t B = R[I->d];                     \
      R[I->dst2] = (e);                                    \
    }                                                      \
    FPROP_STEP1();                                         \
    ++I;                                                   \
    FPROP_DISPATCH();                                      \
  }
#define FPROP_H_INJ2DUP(n, e)                              \
  FPROP_CASE(Inj2##n##Dup) {                               \
    if (cnt >= inj_stop) goto sync_out;                    \
    ++cnt;                                                 \
    R[I->p16(1)] = R[I->p16(0)];                           \
    FPROP_STEP1();                                         \
    if (cnt >= inj_stop) FPROP_PARK_AT(1);                 \
    ++cnt;                                                 \
    R[I->p16(3)] = R[I->p16(2)];                           \
    FPROP_STEP1();                                         \
    {                                                      \
      const std::uint64_t A = R[I->a];                     \
      const std::uint64_t B = R[I->b];                     \
      R[I->dst] = (e);                                     \
    }                                                      \
    FPROP_STEP1();                                         \
    {                                                      \
      const std::uint64_t A = R[I->c];                     \
      const std::uint64_t B = R[I->d];                     \
      R[I->dst2] = (e);                                    \
    }                                                      \
    FPROP_STEP1();                                         \
    ++I;                                                   \
    FPROP_DISPATCH();                                      \
  }
  FPROP_BC_CMP2(FPROP_H_DUPBR)
  FPROP_BC_BIN2(FPROP_H_INJDUP)
  FPROP_BC_BIN2(FPROP_H_INJ2DUP)
#undef FPROP_H_DUPBR
#undef FPROP_H_INJDUP
#undef FPROP_H_INJ2DUP

  FPROP_CASE(MovDupJmp) {
    R[I->dst] = R[I->a];
    FPROP_STEP1();
    R[I->dst2] = R[I->c];
    FPROP_STEP1();
    {
      const BcInstr* nx = code + I->t1;
      FPROP_STEP1();
      I = nx;
    }
    FPROP_DISPATCH();
  }
  FPROP_CASE(PtrAddLF) {
    R[I->dst] = R[I->a] + R[I->b] * 8;
    FPROP_STEP1();
    R[I->dst2] = R[I->c] + R[I->d] * 8;
    FPROP_STEP1();
    // Operands re-read from R at their IR position: the loads' addresses
    // are the pair's dsts by the merge precondition, but a load dst may
    // alias them, so no hoisting across the writes.
    std::uint64_t v = 0;
    if (!mem_.load(R[I->dst], v)) {
      FPROP_TRAP_AT(I->src_ip + 2, Trap::BadAccess);
    }
    R[I->p32a()] = v;
    FPROP_STEP1();
    {
      const std::uint64_t addr_p = R[I->dst2];
      std::uint64_t actual = 0;
      (void)mem_.load(addr_p, actual);
      R[I->p32b()] = fpm != nullptr ? fpm->fetch(addr_p, actual) : actual;
    }
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(ConstIDupInj) {
    R[I->dst] = as_bits(I->imm);
    FPROP_STEP1();
    R[I->dst2] = as_bits(I->imm2);
    FPROP_STEP1();
    if (cnt >= inj_stop) FPROP_PARK_AT(2);
    ++cnt;
    R[I->d] = R[I->c];
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(LFInj2) {
    std::uint64_t v = 0;
    if (!mem_.load(R[I->a], v)) FPROP_TRAP_HEAD(Trap::BadAccess);
    R[I->dst] = v;
    FPROP_STEP1();
    {
      const std::uint64_t addr_p = R[I->c];
      std::uint64_t actual = 0;
      (void)mem_.load(addr_p, actual);
      R[I->dst2] = fpm != nullptr ? fpm->fetch(addr_p, actual) : actual;
    }
    FPROP_STEP1();
    if (cnt >= inj_stop) FPROP_PARK_AT(2);
    ++cnt;
    R[I->p16(1)] = R[I->p16(0)];
    FPROP_STEP1();
    if (cnt >= inj_stop) FPROP_PARK_AT(3);
    ++cnt;
    R[I->p16(3)] = R[I->p16(2)];
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }
  FPROP_CASE(IntrDup) {
    std::uint64_t v = 0;
    if (!intr_pure_eval(I->sub, R, I->a, I->b, v)) goto sync_out;
    R[I->dst] = v;
    FPROP_STEP1();
    if (!intr_pure_eval(I->sub2, R, I->c, I->d, v)) FPROP_PARK_AT(1);
    R[I->dst2] = v;
    FPROP_STEP1();
    ++I;
    FPROP_DISPATCH();
  }

#if !FPROP_BC_THREADED
    case BcOp::Count:
      goto sync_out;  // unreachable: compile.cpp never emits Count
  }
#endif

sync_out:
  // Park the frame on the next unexecuted IR instruction (I points at it —
  // its head for fused ops; an Escape/strike site parks on itself).
  fr.block = I->src_block;
  fr.ip = I->src_ip;
  fr.code = fr.func->blocks[fr.block].code.data();
  FPROP_SYNC();
  return fuel0 - fuel;
}

#undef FPROP_CASE
#undef FPROP_DISPATCH
#undef FPROP_CYCLES
#undef FPROP_STEP1
#undef FPROP_SYNC
#undef FPROP_TRAP_AT
#undef FPROP_TRAP_HEAD
#undef FPROP_TRAP_TAIL
#undef FPROP_PARK_AT

}  // namespace fprop::vm
