#include "fprop/vm/memory.h"

namespace fprop::vm {

std::uint64_t AddressSpace::alloc_words(std::uint64_t n) {
  if (n > max_words_ || words_.size() > max_words_ - n) return 0;
  const std::uint64_t addr = addr_of(words_.size());
  words_.resize(words_.size() + n, 0);
  return addr;
}

}  // namespace fprop::vm
