#include "fprop/vm/memory.h"

#include <cstring>

namespace fprop::vm {

std::uint64_t AddressSpace::page_hash(const Page& page) noexcept {
  // FNV-1a over 64-bit words, then a SplitMix-style finalizer so single-bit
  // page differences avalanche across the whole hash.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint64_t w : page.w) {
    h ^= w;
    h *= 0x100000001b3ull;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

std::vector<std::uint64_t> AddressSpace::image_page_hashes(const Image& image) {
  std::vector<std::uint64_t> hashes;
  hashes.reserve(image.pages.size());
  for (const auto& p : image.pages) hashes.push_back(page_hash(*p));
  return hashes;
}

bool AddressSpace::matches(const Image& golden,
                           const std::vector<std::uint64_t>& golden_hashes)
    const {
  if (size_ != golden.words || pages_.size() != golden.pages.size()) {
    return false;
  }
  for (std::size_t i = 0; i < pages_.size(); ++i) {
    if (pages_[i] == golden.pages[i]) continue;  // still CoW-shared: identical
    if (i >= golden_hashes.size() ||
        page_hash(*pages_[i]) != golden_hashes[i]) {
      return false;
    }
    // Hash matched on a diverged page: confirm exactly (collision guard).
    if (std::memcmp(pages_[i]->w.data(), golden.pages[i]->w.data(),
                    sizeof(pages_[i]->w)) != 0) {
      return false;
    }
  }
  return true;
}

std::uint64_t AddressSpace::alloc_words(std::uint64_t n) {
  if (n > max_words_ || size_ > max_words_ - n) return 0;
  const std::uint64_t addr = addr_of(size_);
  size_ += n;
  // Tail words of a partially filled last page are already zero: stores
  // beyond the watermark are invalid, so they have never been written (and
  // after a restore to a smaller image, copy-on-write kept the snapshot's
  // zero tail intact).
  const std::uint64_t pages_needed = (size_ + kPageWords - 1) >> kPageShift;
  while (pages_.size() < pages_needed) {
    pages_.push_back(std::make_shared<Page>());  // value-init: zeroed words
  }
  return addr;
}

}  // namespace fprop::vm
