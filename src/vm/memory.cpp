#include "fprop/vm/memory.h"

namespace fprop::vm {

std::uint64_t AddressSpace::alloc_words(std::uint64_t n) {
  if (n > max_words_ || size_ > max_words_ - n) return 0;
  const std::uint64_t addr = addr_of(size_);
  size_ += n;
  // Tail words of a partially filled last page are already zero: stores
  // beyond the watermark are invalid, so they have never been written (and
  // after a restore to a smaller image, copy-on-write kept the snapshot's
  // zero tail intact).
  const std::uint64_t pages_needed = (size_ + kPageWords - 1) >> kPageShift;
  while (pages_.size() < pages_needed) {
    pages_.push_back(std::make_shared<Page>());  // value-init: zeroed words
  }
  return addr;
}

}  // namespace fprop::vm
