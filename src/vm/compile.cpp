// MiniIR -> bytecode lowering (DESIGN.md §13).
//
// Linearizes each function block by block, greedily fuses adjacent pairs
// within a block, then runs a peephole merge pass that combines adjacent
// fused groups into 3/4-IR superinstructions, and finally resolves branch
// targets to bytecode offsets. Fusion is a pure encoding choice: every
// fused handler in dispatch.cpp executes its constituent IR instructions
// strictly in program order (each one reads registers *after* the previous
// one's write), so any register overlap within a group keeps interpreter
// semantics.

#include <bit>

#include "fprop/support/error.h"
#include "fprop/vm/bytecode.h"

namespace fprop::vm {

namespace {

#define FPROP_BC_NAME(n, e) \
  case BcOp::n:             \
    return #n;
#define FPROP_BC_NAME_DUP(n, e) \
  case BcOp::n##Dup:            \
    return #n "Dup";
#define FPROP_BC_NAME_ST(n, e) \
  case BcOp::n##St:            \
    return #n "St";
#define FPROP_BC_NAME_BR(n, e) \
  case BcOp::n##Br:            \
    return #n "Br";
#define FPROP_BC_NAME_DUPBR(n, e) \
  case BcOp::n##DupBr:            \
    return #n "DupBr";
#define FPROP_BC_NAME_INJDUP(n, e) \
  case BcOp::Inj##n##Dup:          \
    return "Inj" #n "Dup";
#define FPROP_BC_NAME_INJ2DUP(n, e) \
  case BcOp::Inj2##n##Dup:          \
    return "Inj2" #n "Dup";

const char* bcop_name_impl(BcOp op) noexcept {
  switch (op) {
    FPROP_BC_BIN2(FPROP_BC_NAME)
    FPROP_BC_UN1(FPROP_BC_NAME)
    FPROP_BC_BIN2(FPROP_BC_NAME_DUP)
    FPROP_BC_UN1(FPROP_BC_NAME_DUP)
    FPROP_BC_CMP2(FPROP_BC_NAME_BR)
    FPROP_BC_BIN2(FPROP_BC_NAME_ST)
    FPROP_BC_CMP2(FPROP_BC_NAME_DUPBR)
    FPROP_BC_BIN2(FPROP_BC_NAME_INJDUP)
    FPROP_BC_BIN2(FPROP_BC_NAME_INJ2DUP)
    case BcOp::F2I: return "F2I";
    case BcOp::ConstI: return "ConstI";
    case BcOp::DivI: return "DivI";
    case BcOp::RemI: return "RemI";
    case BcOp::Load: return "Load";
    case BcOp::Store: return "Store";
    case BcOp::FpmFetch: return "FpmFetch";
    case BcOp::FpmStore: return "FpmStore";
    case BcOp::FimInj: return "FimInj";
    case BcOp::Jmp: return "Jmp";
    case BcOp::Br: return "Br";
    case BcOp::IntrPure: return "IntrPure";
    case BcOp::Rand01: return "Rand01";
    case BcOp::ClockRd: return "ClockRd";
    case BcOp::OutputF: return "OutputF";
    case BcOp::OutputI: return "OutputI";
    case BcOp::ReportIters: return "ReportIters";
    case BcOp::Alloc: return "Alloc";
    case BcOp::MpiRank: return "MpiRank";
    case BcOp::MpiSize: return "MpiSize";
    case BcOp::Escape: return "Escape";
    case BcOp::F2IDup: return "F2IDup";
    case BcOp::ConstIDup: return "ConstIDup";
    case BcOp::LoadFetch: return "LoadFetch";
    case BcOp::Load2: return "Load2";
    case BcOp::PtrAddLoad: return "PtrAddLoad";
    case BcOp::FimInj2: return "FimInj2";
    case BcOp::MovDupJmp: return "MovDupJmp";
    case BcOp::PtrAddLF: return "PtrAddLF";
    case BcOp::ConstIDupInj: return "ConstIDupInj";
    case BcOp::LFInj2: return "LFInj2";
    case BcOp::IntrDup: return "IntrDup";
    case BcOp::Count: break;
  }
  return "?";
}

#undef FPROP_BC_NAME
#undef FPROP_BC_NAME_DUP
#undef FPROP_BC_NAME_ST
#undef FPROP_BC_NAME_BR
#undef FPROP_BC_NAME_DUPBR
#undef FPROP_BC_NAME_INJDUP
#undef FPROP_BC_NAME_INJ2DUP

// ir::Opcode classification for fusion. Names in the BIN2/UN1 lists match
// ir::Opcode spellings, so membership tests are macro-generated.
#define FPROP_BC_IRCASE(n, e) case ir::Opcode::n:

bool is_bin2(ir::Opcode op) noexcept {
  switch (op) {
    FPROP_BC_BIN2(FPROP_BC_IRCASE)
    return true;
    default:
      return false;
  }
}

bool is_cmp2(ir::Opcode op) noexcept {
  switch (op) {
    FPROP_BC_CMP2(FPROP_BC_IRCASE)
    return true;
    default:
      return false;
  }
}

bool is_un1(ir::Opcode op) noexcept {
  switch (op) {
    FPROP_BC_UN1(FPROP_BC_IRCASE)
    case ir::Opcode::F2I:
      return true;
    default:
      return false;
  }
}

bool is_const(ir::Opcode op) noexcept {
  return op == ir::Opcode::ConstI || op == ir::Opcode::ConstF;
}

#define FPROP_BC_MAP(n, e) \
  case ir::Opcode::n:      \
    return BcOp::n;
#define FPROP_BC_MAP_DUP(n, e) \
  case ir::Opcode::n:          \
    return BcOp::n##Dup;
#define FPROP_BC_MAP_ST(n, e) \
  case ir::Opcode::n:         \
    return BcOp::n##St;
#define FPROP_BC_MAP_BR(n, e) \
  case ir::Opcode::n:         \
    return BcOp::n##Br;

BcOp pure_base(ir::Opcode op) noexcept {
  switch (op) {
    FPROP_BC_BIN2(FPROP_BC_MAP)
    FPROP_BC_UN1(FPROP_BC_MAP)
    case ir::Opcode::F2I: return BcOp::F2I;
    default: return BcOp::Count;
  }
}

BcOp pure_dup(ir::Opcode op) noexcept {
  switch (op) {
    FPROP_BC_BIN2(FPROP_BC_MAP_DUP)
    FPROP_BC_UN1(FPROP_BC_MAP_DUP)
    case ir::Opcode::F2I: return BcOp::F2IDup;
    default: return BcOp::Count;
  }
}

BcOp bin2_st(ir::Opcode op) noexcept {
  switch (op) {
    FPROP_BC_BIN2(FPROP_BC_MAP_ST)
    default: return BcOp::Count;
  }
}

BcOp cmp_br(ir::Opcode op) noexcept {
  switch (op) {
    FPROP_BC_CMP2(FPROP_BC_MAP_BR)
    default: return BcOp::Count;
  }
}

#undef FPROP_BC_IRCASE
#undef FPROP_BC_MAP
#undef FPROP_BC_MAP_DUP
#undef FPROP_BC_MAP_ST
#undef FPROP_BC_MAP_BR

std::int64_t const_payload(const ir::Instr& in) noexcept {
  return in.op == ir::Opcode::ConstF
             ? std::bit_cast<std::int64_t>(in.fimm)
             : in.imm;
}

/// Lowers one IR instruction to a single (non-fused) bytecode instruction.
BcInstr lower_single(const ir::Instr& in) {
  BcInstr bc;
  bc.dst = in.dst;
  bc.a = in.a();
  bc.b = in.b();
  bc.c = in.c();
  bc.d = in.d();
  switch (in.op) {
    case ir::Opcode::ConstI:
    case ir::Opcode::ConstF:
      bc.op = BcOp::ConstI;
      bc.imm = const_payload(in);
      return bc;
    case ir::Opcode::DivI: bc.op = BcOp::DivI; return bc;
    case ir::Opcode::RemI: bc.op = BcOp::RemI; return bc;
    case ir::Opcode::Load: bc.op = BcOp::Load; return bc;
    case ir::Opcode::Store: bc.op = BcOp::Store; return bc;
    case ir::Opcode::FpmFetch: bc.op = BcOp::FpmFetch; return bc;
    case ir::Opcode::FpmStore: bc.op = BcOp::FpmStore; return bc;
    case ir::Opcode::FimInj: bc.op = BcOp::FimInj; return bc;
    case ir::Opcode::Jmp:
      bc.op = BcOp::Jmp;
      bc.t1 = in.t1;  // IR block id; patched to a bytecode offset later
      return bc;
    case ir::Opcode::Br:
      bc.op = BcOp::Br;
      bc.t1 = in.t1;
      bc.t2 = in.t2;
      return bc;
    case ir::Opcode::Intrinsic:
      switch (in.intr) {
        case ir::IntrinsicId::Sqrt:
        case ir::IntrinsicId::Fabs:
        case ir::IntrinsicId::Exp:
        case ir::IntrinsicId::Log:
        case ir::IntrinsicId::Sin:
        case ir::IntrinsicId::Cos:
        case ir::IntrinsicId::Pow:
        case ir::IntrinsicId::Floor:
        case ir::IntrinsicId::FMin:
        case ir::IntrinsicId::FMax:
        case ir::IntrinsicId::IMin:
        case ir::IntrinsicId::IMax:
          bc.op = BcOp::IntrPure;
          bc.sub = static_cast<std::uint8_t>(in.intr);
          bc.a = in.args.empty() ? ir::kNoReg : in.args[0];
          bc.b = in.args.size() > 1 ? in.args[1] : ir::kNoReg;
          return bc;
        case ir::IntrinsicId::Alloc:
          bc.op = BcOp::Alloc;
          bc.a = in.args.at(0);
          return bc;
        case ir::IntrinsicId::OutputF:
          bc.op = BcOp::OutputF;
          bc.a = in.args.at(0);
          return bc;
        case ir::IntrinsicId::OutputI:
          bc.op = BcOp::OutputI;
          bc.a = in.args.at(0);
          return bc;
        case ir::IntrinsicId::ReportIters:
          bc.op = BcOp::ReportIters;
          bc.a = in.args.at(0);
          return bc;
        case ir::IntrinsicId::Rand01: bc.op = BcOp::Rand01; return bc;
        case ir::IntrinsicId::Clock: bc.op = BcOp::ClockRd; return bc;
        case ir::IntrinsicId::MpiRank: bc.op = BcOp::MpiRank; return bc;
        case ir::IntrinsicId::MpiSize: bc.op = BcOp::MpiSize; return bc;
        default:
          bc.op = BcOp::Escape;  // MPI ops, MpiAbort: reference step()
          return bc;
      }
    case ir::Opcode::Call:
    case ir::Opcode::Ret:
      bc.op = BcOp::Escape;
      return bc;
    default: {
      const BcOp base = pure_base(in.op);
      FPROP_CHECK_MSG(base != BcOp::Count, "unlowerable opcode");
      bc.op = base;
      return bc;
    }
  }
}

/// Attempts to fuse adjacent (x, y); returns true and fills `bc` on
/// success. Both instructions must be pure-data or the specific memory/
/// branch shapes below — never Call/Ret/MPI (they leave the stream), never
/// across a block boundary (the caller only offers same-block pairs).
bool try_fuse(const ir::Instr& x, const ir::Instr& y, BcInstr& bc) {
  // (primary, shadow) duplicate pairs from the dual-chain pass — also any
  // plain same-opcode adjacency. The handler executes head then tail, so
  // a tail operand naming the head's dst reads the fresh value.
  if (is_const(x.op) && is_const(y.op)) {
    bc.op = BcOp::ConstIDup;
    bc.dst = x.dst;
    bc.imm = const_payload(x);
    bc.dst2 = y.dst;
    bc.imm2 = const_payload(y);
    return true;
  }
  if (x.op == y.op && is_bin2(x.op)) {
    bc.op = pure_dup(x.op);
    bc.dst = x.dst;
    bc.a = x.a();
    bc.b = x.b();
    bc.dst2 = y.dst;
    bc.c = y.a();
    bc.d = y.b();
    return true;
  }
  if (x.op == y.op && is_un1(x.op)) {
    bc.op = pure_dup(x.op);
    bc.dst = x.dst;
    bc.a = x.a();
    bc.dst2 = y.dst;
    bc.c = y.a();
    return true;
  }
  // compare + conditional branch (the branch may test any register, not
  // necessarily the compare's dst — dual-chain code branches on the
  // primary compare across an interleaved shadow compare).
  if (is_cmp2(x.op) && y.op == ir::Opcode::Br) {
    bc.op = cmp_br(x.op);
    bc.dst = x.dst;
    bc.a = x.a();
    bc.b = x.b();
    bc.c = y.a();
    bc.t1 = y.t1;
    bc.t2 = y.t2;
    return true;
  }
  if (x.op == ir::Opcode::Load && y.op == ir::Opcode::FpmFetch) {
    bc.op = BcOp::LoadFetch;
    bc.dst = x.dst;
    bc.a = x.a();
    bc.dst2 = y.dst;
    bc.c = y.a();
    return true;
  }
  if (x.op == ir::Opcode::Load && y.op == ir::Opcode::Load) {
    bc.op = BcOp::Load2;
    bc.dst = x.dst;
    bc.a = x.a();
    bc.dst2 = y.dst;
    bc.c = y.a();
    return true;
  }
  if (x.op == ir::Opcode::PtrAdd && y.op == ir::Opcode::Load) {
    bc.op = BcOp::PtrAddLoad;
    bc.dst = x.dst;
    bc.a = x.a();
    bc.b = x.b();
    bc.dst2 = y.dst;
    bc.c = y.a();
    return true;
  }
  // pure binary op feeding a store: value = y.a, address = y.b (either may
  // be the op's dst — read after the head's write).
  if (is_bin2(x.op) && y.op == ir::Opcode::Store) {
    bc.op = bin2_st(x.op);
    bc.dst = x.dst;
    bc.a = x.a();
    bc.b = x.b();
    bc.c = y.b();
    bc.d = y.a();
    return true;
  }
  if (x.op == ir::Opcode::FimInj && y.op == ir::Opcode::FimInj) {
    bc.op = BcOp::FimInj2;
    bc.dst = x.dst;
    bc.a = x.a();
    bc.dst2 = y.dst;
    bc.c = y.a();
    return true;
  }
  return false;
}

constexpr BcOp bcop_add(BcOp base, unsigned off) noexcept {
  return static_cast<BcOp>(static_cast<unsigned>(base) + off);
}

bool is_bin2_dup(BcOp op) noexcept {
  return op >= BcOp::AddIDup && op <= BcOp::NePDup;
}

bool is_cmp2_dup(BcOp op) noexcept {
  return op >= BcOp::EqIDup && op <= BcOp::NePDup;
}

/// Attempts to merge two adjacent bytecode instructions (already fused by
/// pass 1, known IR-contiguous within one block) into a 3/4-IR group;
/// returns true and fills `z` on success. The patterns are the dominant
/// bigrams in the dynamic profile of the instrumented registry apps
/// (DESIGN.md §13): loop back-edges (compare pair + branch, move pair +
/// jump), the dual-chain load expansion glued to its address pair, and
/// injection sites glued to the constant/load/arithmetic groups feeding or
/// consuming them. Register numbers that do not fit the fixed fields are
/// packed into `imm` (unused by every mergeable head/tail combination);
/// 16-bit packings bail out for functions with >= 2^16 registers.
bool try_merge(const BcInstr& x, const BcInstr& y, BcInstr& z) {
  constexpr ir::Reg kP16Lim = 1u << 16;
  if (is_cmp2_dup(x.op) && y.op == BcOp::Br) {
    z = x;
    z.op = bcop_add(BcOp::EqIDupBr, static_cast<unsigned>(x.op) -
                                        static_cast<unsigned>(BcOp::EqIDup));
    z.imm = BcInstr::pack32(y.a, 0);
    z.t1 = y.t1;
    z.t2 = y.t2;
    return true;
  }
  if (x.op == BcOp::MovDup && y.op == BcOp::Jmp) {
    z = x;
    z.op = BcOp::MovDupJmp;
    z.t1 = y.t1;
    return true;
  }
  if (x.op == BcOp::PtrAddDup && y.op == BcOp::LoadFetch && y.a == x.dst &&
      y.c == x.dst2) {
    z = x;
    z.op = BcOp::PtrAddLF;
    z.imm = BcInstr::pack32(y.dst, y.dst2);
    return true;
  }
  if (x.op == BcOp::ConstIDup && y.op == BcOp::FimInj) {
    z = x;
    z.op = BcOp::ConstIDupInj;
    z.c = y.a;
    z.d = y.dst;
    return true;
  }
  if (x.op == BcOp::LoadFetch && y.op == BcOp::FimInj2 && y.a < kP16Lim &&
      y.dst < kP16Lim && y.c < kP16Lim && y.dst2 < kP16Lim) {
    z = x;
    z.op = BcOp::LFInj2;
    z.imm = BcInstr::pack16(y.a, y.dst, y.c, y.dst2);
    return true;
  }
  if (x.op == BcOp::IntrPure && y.op == BcOp::IntrPure) {
    z = x;
    z.op = BcOp::IntrDup;
    z.sub2 = y.sub;
    z.c = y.a;
    z.d = y.b;
    z.dst2 = y.dst;
    return true;
  }
  if (x.op == BcOp::FimInj && is_bin2_dup(y.op)) {
    z = y;
    z.op = bcop_add(BcOp::InjAddIDup, static_cast<unsigned>(y.op) -
                                          static_cast<unsigned>(BcOp::AddIDup));
    z.imm = BcInstr::pack32(x.a, x.dst);
    return true;
  }
  if (x.op == BcOp::FimInj2 && is_bin2_dup(y.op) && x.a < kP16Lim &&
      x.dst < kP16Lim && x.c < kP16Lim && x.dst2 < kP16Lim) {
    z = y;
    z.op = bcop_add(BcOp::Inj2AddIDup, static_cast<unsigned>(y.op) -
                                           static_cast<unsigned>(BcOp::AddIDup));
    z.imm = BcInstr::pack16(x.a, x.dst, x.c, x.dst2);
    return true;
  }
  return false;
}

BcFunction compile_function(const ir::Function& f) {
  BcFunction bf;
  bf.block_start.resize(f.blocks.size(), 0);
  bf.ir2bc.resize(f.blocks.size());

  for (ir::BlockId b = 0; b < f.blocks.size(); ++b) {
    const std::vector<ir::Instr>& code = f.blocks[b].code;
    bf.block_start[b] = static_cast<std::uint32_t>(bf.code.size());
    bf.ir2bc[b].assign(code.size(), -1);
    std::size_t ip = 0;
    while (ip < code.size()) {
      bf.ir2bc[b][ip] = static_cast<std::int32_t>(bf.code.size());
      BcInstr bc;
      if (ip + 1 < code.size() && try_fuse(code[ip], code[ip + 1], bc)) {
        ++bf.fused;
        bc.src_block = b;
        bc.src_ip = static_cast<std::uint32_t>(ip);
        ip += 2;
      } else {
        bc = lower_single(code[ip]);
        bc.src_block = b;
        bc.src_ip = static_cast<std::uint32_t>(ip);
        ip += 1;
      }
      bf.code.push_back(bc);
    }
  }

  // Merge pass: one greedy peephole sweep combining adjacent fused groups
  // within a block into 3/4-IR superinstructions. Adjacent entries with the
  // same src_block are IR-contiguous by construction (pass 1 emits each
  // block as one contiguous run), and IR branches only target block starts,
  // so control flow can never land on a merged tail. Runs before branch
  // patching — Br/Jmp targets are still IR block ids here, and merged
  // groups carry them over verbatim.
  std::vector<BcInstr> squeezed;
  squeezed.reserve(bf.code.size());
  for (std::size_t i = 0; i < bf.code.size(); ++i) {
    BcInstr z;
    if (i + 1 < bf.code.size() &&
        bf.code[i].src_block == bf.code[i + 1].src_block &&
        try_merge(bf.code[i], bf.code[i + 1], z)) {
      ++bf.merged;
      z.src_block = bf.code[i].src_block;
      z.src_ip = bf.code[i].src_ip;
      squeezed.push_back(z);
      ++i;  // consume both
    } else {
      squeezed.push_back(bf.code[i]);
    }
  }
  if (bf.merged != 0) {
    bf.code = std::move(squeezed);
    // Rebuild the position maps: only group heads map to offsets; every
    // in-group tail position stays -1 (reference-step entry).
    for (ir::BlockId b = 0; b < f.blocks.size(); ++b)
      bf.ir2bc[b].assign(f.blocks[b].code.size(), -1);
    std::vector<std::int64_t> first(f.blocks.size(), -1);
    for (std::size_t i = bf.code.size(); i-- > 0;) {
      const BcInstr& bc = bf.code[i];
      bf.ir2bc[bc.src_block][bc.src_ip] = static_cast<std::int32_t>(i);
      first[bc.src_block] = static_cast<std::int64_t>(i);
    }
    // block_start: first instruction of the block, or (for blocks that
    // lowered to nothing) the next block's start — matching pass 1's
    // convention.
    std::uint32_t next = static_cast<std::uint32_t>(bf.code.size());
    for (ir::BlockId b = static_cast<ir::BlockId>(f.blocks.size()); b-- > 0;) {
      bf.block_start[b] =
          first[b] >= 0 ? static_cast<std::uint32_t>(first[b]) : next;
      next = bf.block_start[b];
    }
  }

  // Final pass: resolve branch targets (currently IR block ids) to the
  // bytecode offsets of the target blocks' first instructions. Jmp and
  // MovDupJmp use t1; Br and the compare+branch families use both.
  for (BcInstr& bc : bf.code) {
    if (bc.op == BcOp::Jmp || bc.op == BcOp::MovDupJmp) {
      bc.t1 = bf.block_start.at(bc.t1);
    } else if (bc.op == BcOp::Br ||
               (bc.op >= BcOp::EqIBr && bc.op <= BcOp::NePBr) ||
               (bc.op >= BcOp::EqIDupBr && bc.op <= BcOp::NePDupBr)) {
      bc.t1 = bf.block_start.at(bc.t1);
      bc.t2 = bf.block_start.at(bc.t2);
    }
  }
  return bf;
}

}  // namespace

const char* bcop_name(BcOp op) noexcept { return bcop_name_impl(op); }

bool bcop_is_fused(BcOp op) noexcept {
  return static_cast<unsigned>(op) > static_cast<unsigned>(BcOp::Escape) &&
         op != BcOp::Count;
}

unsigned bcop_arity(BcOp op) noexcept {
  if (!bcop_is_fused(op)) return 1;
  if (op < BcOp::EqIDupBr) return 2;  // pass-1 pairs
  switch (op) {
    case BcOp::IntrDup:
      return 2;
    case BcOp::PtrAddLF:
    case BcOp::LFInj2:
      return 4;
    default:
      // DupBr family, MovDupJmp, ConstIDupInj and the Inj*Dup family span
      // three IR instructions; the Inj2*Dup family spans four.
      return op >= BcOp::Inj2AddIDup ? 4 : 3;
  }
}

BytecodeModule::BytecodeModule(const ir::Module& module) : module_(&module) {
  funcs_.reserve(module.funcs.size());
  for (std::size_t i = 0; i < module.funcs.size(); ++i) {
    FPROP_CHECK_MSG(module.funcs[i].id == static_cast<ir::FuncId>(i),
                    "function ids must be dense");
    funcs_.push_back(compile_function(module.funcs[i]));
  }
}

std::size_t BytecodeModule::fused_pairs() const noexcept {
  std::size_t n = 0;
  for (const BcFunction& f : funcs_) n += f.fused;
  return n;
}

std::size_t BytecodeModule::merged_groups() const noexcept {
  std::size_t n = 0;
  for (const BcFunction& f : funcs_) n += f.merged;
  return n;
}

std::size_t BytecodeModule::total_instrs() const noexcept {
  std::size_t n = 0;
  for (const BcFunction& f : funcs_) n += f.code.size();
  return n;
}

}  // namespace fprop::vm
