#pragma once

// Value-conversion helpers shared by the reference interpreter (interp.cpp)
// and the bytecode dispatch loop (dispatch.cpp). Both tiers must agree on
// these bit-for-bit — keep one definition.

#include <cmath>
#include <cstdint>
#include <limits>

namespace fprop::vm::detail {

inline std::int64_t as_i64(std::uint64_t bits) noexcept {
  return static_cast<std::int64_t>(bits);
}
inline std::uint64_t as_bits(std::int64_t v) noexcept {
  return static_cast<std::uint64_t>(v);
}

// Truncating f64 -> i64 with x86 cvttsd2si semantics: NaN and out-of-range
// inputs yield INT64_MIN instead of trapping (hardware does not fault here,
// and neither should the simulated fault propagate into a VM error).
inline std::int64_t f2i_trunc(double v) noexcept {
  if (std::isnan(v)) return std::numeric_limits<std::int64_t>::min();
  if (v >= 9.2233720368547758e18) return std::numeric_limits<std::int64_t>::max();
  if (v <= -9.2233720368547758e18) return std::numeric_limits<std::int64_t>::min();
  return static_cast<std::int64_t>(v);
}

// fmin/fmax with every case pinned down, including the ones C leaves
// unspecified. std::fmin/std::fmax may return either zero for (+0, -0) —
// and GCC treats them as commutative builtins, so two call sites compiled
// from identical source can canonicalize the operands differently and
// disagree bit-for-bit on signed-zero results. The reference interpreter
// and the bytecode dispatch loop live in separate TUs and must agree
// exactly, so the VM defines its own total semantics: explicit branches the
// compiler cannot reorder, NaN falls through to the other operand (as
// fmin/fmax), and equal-comparing operands resolve by sign — fmin prefers
// -0, fmax prefers +0.
inline double fmin_det(double x, double y) noexcept {
  if (std::isnan(x)) return y;
  if (std::isnan(y)) return x;
  if (x < y) return x;
  if (y < x) return y;
  return std::signbit(x) ? x : y;
}
inline double fmax_det(double x, double y) noexcept {
  if (std::isnan(x)) return y;
  if (std::isnan(y)) return x;
  if (x > y) return x;
  if (y > x) return y;
  return std::signbit(x) ? y : x;
}

}  // namespace fprop::vm::detail
