#include "fprop/vm/interp.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "fprop/fpm/message.h"
#include "exec_util.h"

namespace fprop::vm {

std::uint64_t bits_of(double v) noexcept { return std::bit_cast<std::uint64_t>(v); }
double double_of(std::uint64_t bits) noexcept { return std::bit_cast<double>(bits); }

const char* trap_name(Trap t) noexcept {
  switch (t) {
    case Trap::None: return "none";
    case Trap::BadAccess: return "bad-access";
    case Trap::DivByZero: return "div-by-zero";
    case Trap::BadAlloc: return "bad-alloc";
    case Trap::StackOverflow: return "stack-overflow";
    case Trap::CycleBudget: return "cycle-budget";
    case Trap::MpiAbort: return "mpi-abort";
    case Trap::MpiFault: return "mpi-fault";
    case Trap::Deadlock: return "deadlock";
    case Trap::Killed: return "killed";
  }
  return "?";
}

using detail::as_bits;
using detail::as_i64;
using detail::f2i_trunc;

Interp::Interp(const ir::Module& module, std::uint32_t rank,
               InterpConfig config)
    : module_(&module),
      rank_(rank),
      config_(config),
      mem_(config.max_words),
      rng_(derive_seed(config.rng_seed, rank)) {
  FPROP_CHECK(module.entry != ir::kNoFunc);
  const ir::Function& entry = module.func(module.entry);
  FPROP_CHECK_MSG(entry.params.empty(), "entry function takes no params");
  Frame f;
  f.func = &entry;
  f.regs.assign(entry.num_regs(), 0);
  enter_block(f, 0);
  frames_.push_back(std::move(f));
}

Interp::Snapshot Interp::snapshot() const {
  Snapshot s;
  s.frames = frames_;
  s.state = state_;
  s.trap = trap_;
  s.cycles = cycles_;
  s.rng = rng_.state();
  s.outputs = outputs_;
  s.reported_iters = reported_iters_;
  s.abort_code = abort_code_;
  s.memory = mem_.save();
  return s;
}

void Interp::restore(const Snapshot& snap) {
  frames_ = snap.frames;
  // Re-derive the per-frame code cache: the snapshot may have been captured
  // before taint mode was enabled or hold pointers from another interpreter
  // over the same module; func/block are the authoritative position.
  for (Frame& fr : frames_) {
    fr.code = fr.func->blocks[fr.block].code.data();
  }
  if (taint_ != nullptr) ensure_taint_frames();
  state_ = snap.state;
  trap_ = snap.trap;
  cycles_ = snap.cycles;
  rng_.set_state(snap.rng);
  outputs_ = snap.outputs;
  reported_iters_ = snap.reported_iters;
  abort_code_ = snap.abort_code;
  mem_.restore(snap.memory);
}

bool Interp::equals_snapshot(const Snapshot& snap,
                             const std::vector<std::uint64_t>& page_hashes)
    const {
  if (state_ != snap.state || trap_ != snap.trap || cycles_ != snap.cycles ||
      reported_iters_ != snap.reported_iters ||
      abort_code_ != snap.abort_code || rng_.state() != snap.rng) {
    return false;
  }
  // Outputs compare bitwise (NaN-safe): a masked fault must not have leaked
  // into anything already emitted.
  if (outputs_.size() != snap.outputs.size()) return false;
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    if (bits_of(outputs_[i]) != bits_of(snap.outputs[i])) return false;
  }
  if (frames_.size() != snap.frames.size()) return false;
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    const Frame& a = frames_[i];
    const Frame& b = snap.frames[i];
    // `code` is a cache re-derived from (func, block); `taint` is empty in
    // both (harness trials never run taint mode) and compared for rigor.
    if (a.func != b.func || a.block != b.block || a.ip != b.ip ||
        a.ret_dst != b.ret_dst || a.ret_dst2 != b.ret_dst2 ||
        a.regs != b.regs || a.taint != b.taint) {
      return false;
    }
  }
  return mem_.matches(snap.memory, page_hashes);
}

void Interp::do_trap(Trap t) {
  trap_ = t;
  state_ = RunState::Trapped;
  if (fpm_ != nullptr) fpm_->flush_trace(cycles_);
  FPROP_OBS_EMIT(recorder_, obs::EventKind::Trap, rank_, cycles_,
                 static_cast<std::uint64_t>(t));
}

void Interp::force_trap(Trap t) {
  if (state_ == RunState::Done || state_ == RunState::Trapped) return;
  do_trap(t);
}

void Interp::finish_instr() {
  ++cycles_;
  if (fpm_ != nullptr) fpm_->tick(cycles_);
  if (state_ == RunState::Ready && cycles_ >= config_.cycle_budget) {
    do_trap(Trap::CycleBudget);
  }
}

RunState Interp::run(std::uint64_t max_steps) {
  if (state_ == RunState::Done || state_ == RunState::Trapped) return state_;
  state_ = RunState::Ready;
  // Fast tier: only when no attached hook needs per-instruction visibility.
  // Taint mode and the trial recorder observe every instruction; an inject
  // hook is compatible only when it grants the FastInjectState contract
  // (hooks.h) — the strike window itself still goes through step().
  if (bytecode_ != nullptr && taint_ == nullptr && recorder_ == nullptr &&
      (inject_ == nullptr ||
       inject_->fim_fast_state(rank_).counter != nullptr)) {
    return run_bytecode(max_steps);
  }
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    if (!step()) break;
  }
  return state_;
}

void Interp::ensure_taint_frames() {
  for (Frame& fr : frames_) {
    if (fr.taint.size() != fr.regs.size()) fr.taint.assign(fr.regs.size(), 0);
  }
}

bool Interp::step() {
  Frame& fr = frames_.back();
  // Single indexed fetch off the cached block pointer; the lazy taint-mode
  // resize that used to sit here is hoisted to set_taint()/restore().
  const ir::Instr& in = fr.code[fr.ip];
  std::uint64_t inj_from = 0;  // fim_inj pre/post values for taint transfer
  std::uint64_t inj_to = 0;

  switch (in.op) {
    case ir::Opcode::ConstI:
      set_reg(in.dst, as_bits(in.imm));
      break;
    case ir::Opcode::ConstF:
      set_reg(in.dst, bits_of(in.fimm));
      break;
    case ir::Opcode::Mov:
    case ir::Opcode::FimInj: {
      std::uint64_t v = reg(in.a());
      inj_from = v;
      if (in.op == ir::Opcode::FimInj && inject_ != nullptr) {
        v = inject_->on_fim_inj(*this, v, in.imm, in.inj_width);
      }
      inj_to = v;
      set_reg(in.dst, v);
      break;
    }

    // --- integer arithmetic -------------------------------------------
    case ir::Opcode::AddI:
      set_reg(in.dst, reg(in.a()) + reg(in.b()));
      break;
    case ir::Opcode::SubI:
      set_reg(in.dst, reg(in.a()) - reg(in.b()));
      break;
    case ir::Opcode::MulI:
      set_reg(in.dst, reg(in.a()) * reg(in.b()));
      break;
    case ir::Opcode::DivI: {
      const std::int64_t a = as_i64(reg(in.a()));
      const std::int64_t b = as_i64(reg(in.b()));
      if (b == 0) {
        do_trap(Trap::DivByZero);
        return false;
      }
      if (a == std::numeric_limits<std::int64_t>::min() && b == -1) {
        set_reg(in.dst, as_bits(a));  // wraps on hardware
      } else {
        set_reg(in.dst, as_bits(a / b));
      }
      break;
    }
    case ir::Opcode::RemI: {
      const std::int64_t a = as_i64(reg(in.a()));
      const std::int64_t b = as_i64(reg(in.b()));
      if (b == 0) {
        do_trap(Trap::DivByZero);
        return false;
      }
      if (a == std::numeric_limits<std::int64_t>::min() && b == -1) {
        set_reg(in.dst, 0);
      } else {
        set_reg(in.dst, as_bits(a % b));
      }
      break;
    }
    case ir::Opcode::AndI:
      set_reg(in.dst, reg(in.a()) & reg(in.b()));
      break;
    case ir::Opcode::OrI:
      set_reg(in.dst, reg(in.a()) | reg(in.b()));
      break;
    case ir::Opcode::XorI:
      set_reg(in.dst, reg(in.a()) ^ reg(in.b()));
      break;
    case ir::Opcode::ShlI:
      set_reg(in.dst, reg(in.a()) << (reg(in.b()) & 63));
      break;
    case ir::Opcode::ShrI:
      set_reg(in.dst, reg(in.a()) >> (reg(in.b()) & 63));
      break;
    case ir::Opcode::NegI:
      set_reg(in.dst, 0 - reg(in.a()));
      break;
    case ir::Opcode::NotI:
      set_reg(in.dst, ~reg(in.a()));
      break;

    // --- floating point -----------------------------------------------
    case ir::Opcode::AddF:
      set_reg(in.dst, bits_of(double_of(reg(in.a())) + double_of(reg(in.b()))));
      break;
    case ir::Opcode::SubF:
      set_reg(in.dst, bits_of(double_of(reg(in.a())) - double_of(reg(in.b()))));
      break;
    case ir::Opcode::MulF:
      set_reg(in.dst, bits_of(double_of(reg(in.a())) * double_of(reg(in.b()))));
      break;
    case ir::Opcode::DivF:
      set_reg(in.dst, bits_of(double_of(reg(in.a())) / double_of(reg(in.b()))));
      break;
    case ir::Opcode::NegF:
      set_reg(in.dst, bits_of(-double_of(reg(in.a()))));
      break;

    // --- comparisons ----------------------------------------------------
    case ir::Opcode::EqI:
      set_reg(in.dst, reg(in.a()) == reg(in.b()) ? 1 : 0);
      break;
    case ir::Opcode::NeI:
      set_reg(in.dst, reg(in.a()) != reg(in.b()) ? 1 : 0);
      break;
    case ir::Opcode::LtI:
      set_reg(in.dst, as_i64(reg(in.a())) < as_i64(reg(in.b())) ? 1 : 0);
      break;
    case ir::Opcode::LeI:
      set_reg(in.dst, as_i64(reg(in.a())) <= as_i64(reg(in.b())) ? 1 : 0);
      break;
    case ir::Opcode::GtI:
      set_reg(in.dst, as_i64(reg(in.a())) > as_i64(reg(in.b())) ? 1 : 0);
      break;
    case ir::Opcode::GeI:
      set_reg(in.dst, as_i64(reg(in.a())) >= as_i64(reg(in.b())) ? 1 : 0);
      break;
    case ir::Opcode::EqF:
      set_reg(in.dst, double_of(reg(in.a())) == double_of(reg(in.b())) ? 1 : 0);
      break;
    case ir::Opcode::NeF:
      set_reg(in.dst, double_of(reg(in.a())) != double_of(reg(in.b())) ? 1 : 0);
      break;
    case ir::Opcode::LtF:
      set_reg(in.dst, double_of(reg(in.a())) < double_of(reg(in.b())) ? 1 : 0);
      break;
    case ir::Opcode::LeF:
      set_reg(in.dst, double_of(reg(in.a())) <= double_of(reg(in.b())) ? 1 : 0);
      break;
    case ir::Opcode::GtF:
      set_reg(in.dst, double_of(reg(in.a())) > double_of(reg(in.b())) ? 1 : 0);
      break;
    case ir::Opcode::GeF:
      set_reg(in.dst, double_of(reg(in.a())) >= double_of(reg(in.b())) ? 1 : 0);
      break;
    case ir::Opcode::EqP:
      set_reg(in.dst, reg(in.a()) == reg(in.b()) ? 1 : 0);
      break;
    case ir::Opcode::NeP:
      set_reg(in.dst, reg(in.a()) != reg(in.b()) ? 1 : 0);
      break;

    // --- conversions ----------------------------------------------------
    case ir::Opcode::I2F:
      set_reg(in.dst, bits_of(static_cast<double>(as_i64(reg(in.a())))));
      break;
    case ir::Opcode::F2I:
      set_reg(in.dst, as_bits(f2i_trunc(double_of(reg(in.a())))));
      break;

    // --- memory ---------------------------------------------------------
    case ir::Opcode::Load: {
      std::uint64_t v = 0;
      if (!mem_.load(reg(in.a()), v)) {
        do_trap(Trap::BadAccess);
        return false;
      }
      set_reg(in.dst, v);
      break;
    }
    case ir::Opcode::FpmFetch: {
      // Pristine-chain load: never faults the primary execution. If the
      // pristine address is unmapped (possible only after an allocation
      // already diverged), fall back to the shadow table alone.
      const std::uint64_t addr_p = reg(in.a());
      std::uint64_t actual = 0;
      (void)mem_.load(addr_p, actual);
      const std::uint64_t v =
          fpm_ != nullptr ? fpm_->fetch(addr_p, actual) : actual;
      set_reg(in.dst, v);
      break;
    }
    case ir::Opcode::Store: {
      if (!mem_.store(reg(in.b()), reg(in.a()))) {
        do_trap(Trap::BadAccess);
        return false;
      }
      break;
    }
    case ir::Opcode::FpmStore: {
      const std::uint64_t val = reg(in.a());
      const std::uint64_t val_p = reg(in.b());
      const std::uint64_t addr = reg(in.c());
      const std::uint64_t addr_p = reg(in.d());
      std::uint64_t old = 0;
      if (!mem_.load(addr, old)) {
        do_trap(Trap::BadAccess);  // the primary store faults
        return false;
      }
      const std::uint64_t old_pristine =
          fpm_ != nullptr ? fpm_->shadow().pristine_or(addr, old) : old;
      mem_.store(addr, val);
      if (fpm_ != nullptr) {
        std::uint64_t mem_at_p = 0;
        bool have_p = true;
        if (addr != addr_p) have_p = mem_.load(addr_p, mem_at_p);
        fpm_->on_store(val, val_p, addr, addr_p, old_pristine, mem_at_p,
                       have_p);
      }
      break;
    }
    case ir::Opcode::PtrAdd:
      set_reg(in.dst, reg(in.a()) + reg(in.b()) * 8);
      break;

    // --- control flow ----------------------------------------------------
    case ir::Opcode::Jmp: {
      enter_block(fr, in.t1);
      finish_instr();
      return state_ == RunState::Ready;
    }
    case ir::Opcode::Br: {
      enter_block(fr, reg(in.a()) != 0 ? in.t1 : in.t2);
      finish_instr();
      return state_ == RunState::Ready;
    }
    case ir::Opcode::Ret: {
      std::uint64_t v0 = 0;
      std::uint64_t v1 = 0;
      std::uint8_t t0 = 0;
      std::uint8_t t1 = 0;
      if (!in.args.empty()) {
        v0 = reg(in.args[0]);
        if (taint_ != nullptr) t0 = fr.taint[in.args[0]];
      }
      if (in.args.size() > 1) {
        v1 = reg(in.args[1]);
        if (taint_ != nullptr) t1 = fr.taint[in.args[1]];
      }
      const ir::Reg dst = fr.ret_dst;
      const ir::Reg dst2 = fr.ret_dst2;
      frames_.pop_back();
      if (frames_.empty()) {
        state_ = RunState::Done;
        if (fpm_ != nullptr) fpm_->flush_trace(cycles_);
        finish_instr();
        return false;
      }
      if (dst != ir::kNoReg) set_reg(dst, v0);
      if (dst2 != ir::kNoReg) set_reg(dst2, v1);
      if (taint_ != nullptr && !frames_.back().taint.empty()) {
        if (dst != ir::kNoReg) frames_.back().taint[dst] = t0;
        if (dst2 != ir::kNoReg) frames_.back().taint[dst2] = t1;
      }
      finish_instr();
      return state_ == RunState::Ready;
    }
    case ir::Opcode::Call: {
      if (frames_.size() >= config_.max_call_depth) {
        do_trap(Trap::StackOverflow);
        return false;
      }
      const ir::Function& callee = module_->func(in.callee);
      Frame next;
      next.func = &callee;
      next.ret_dst = in.dst;
      next.ret_dst2 = in.dst2;
      enter_block(next, 0);
      next.regs.assign(callee.num_regs(), 0);
      for (std::size_t i = 0; i < in.args.size(); ++i) {
        next.regs[callee.params[i]] = reg(in.args[i]);
      }
      if (taint_ != nullptr) {
        next.taint.assign(callee.num_regs(), 0);
        for (std::size_t i = 0; i < in.args.size(); ++i) {
          next.taint[callee.params[i]] = fr.taint[in.args[i]];
        }
      }
      fr.ip++;  // return past the call
      frames_.push_back(std::move(next));
      finish_instr();
      return state_ == RunState::Ready;
    }

    case ir::Opcode::Intrinsic:
      if (!exec_intrinsic(in)) return false;
      break;
  }

  if (taint_ != nullptr) update_taint(in, inj_from, inj_to);
  frames_.back().ip++;
  finish_instr();
  return state_ == RunState::Ready;
}

void Interp::update_taint(const ir::Instr& in, std::uint64_t injected_from,
                          std::uint64_t injected_to) {
  Frame& fr = frames_.back();
  auto t = [&](ir::Reg r) { return fr.taint[r] != 0; };

  switch (in.op) {
    case ir::Opcode::ConstI:
    case ir::Opcode::ConstF:
      fr.taint[in.dst] = 0;
      break;
    case ir::Opcode::Mov:
      fr.taint[in.dst] = fr.taint[in.a()];
      break;
    case ir::Opcode::FimInj: {
      const bool flipped = injected_from != injected_to;
      if (flipped) taint_->note_injection();
      fr.taint[in.dst] = static_cast<std::uint8_t>(t(in.a()) || flipped);
      break;
    }
    case ir::Opcode::Load:
      fr.taint[in.dst] = static_cast<std::uint8_t>(
          t(in.a()) || taint_->location(reg(in.a())));
      break;
    case ir::Opcode::FpmFetch:
      fr.taint[in.dst] = 0;  // pristine-chain value by definition
      break;
    case ir::Opcode::Store:
      taint_->set_location(reg(in.b()), t(in.a()) || t(in.b()));
      break;
    case ir::Opcode::FpmStore:
      taint_->set_location(reg(in.c()), t(in.a()) || t(in.c()));
      break;
    case ir::Opcode::Intrinsic: {
      if (in.dst == ir::kNoReg) break;
      bool any = false;
      if (ir::intrinsic_is_pure(in.intr)) {
        for (ir::Reg a : in.args) any = any || t(a);
      }
      fr.taint[in.dst] = static_cast<std::uint8_t>(any);
      break;
    }
    default: {
      // Arithmetic/comparisons/conversions: output tainted iff any input is
      // (the naive rule of §3.2).
      if (in.dst == ir::kNoReg) break;
      bool any = false;
      for (std::uint8_t i = 0; i < in.nops; ++i) any = any || t(in.ops[i]);
      fr.taint[in.dst] = static_cast<std::uint8_t>(any);
      break;
    }
  }
}

bool Interp::exec_intrinsic(const ir::Instr& in) {
  using ir::IntrinsicId;
  auto farg = [&](std::size_t i) { return double_of(reg(in.args[i])); };
  auto iarg = [&](std::size_t i) { return as_i64(reg(in.args[i])); };
  auto set_f = [&](double v) { set_reg(in.dst, bits_of(v)); };
  auto set_i = [&](std::int64_t v) { set_reg(in.dst, as_bits(v)); };

  switch (in.intr) {
    case IntrinsicId::Sqrt: set_f(std::sqrt(farg(0))); return true;
    case IntrinsicId::Fabs: set_f(std::fabs(farg(0))); return true;
    case IntrinsicId::Exp: set_f(std::exp(farg(0))); return true;
    case IntrinsicId::Log: set_f(std::log(farg(0))); return true;
    case IntrinsicId::Sin: set_f(std::sin(farg(0))); return true;
    case IntrinsicId::Cos: set_f(std::cos(farg(0))); return true;
    case IntrinsicId::Pow: set_f(std::pow(farg(0), farg(1))); return true;
    case IntrinsicId::Floor: set_f(std::floor(farg(0))); return true;
    case IntrinsicId::FMin: set_f(detail::fmin_det(farg(0), farg(1))); return true;
    case IntrinsicId::FMax: set_f(detail::fmax_det(farg(0), farg(1))); return true;
    case IntrinsicId::IMin: set_i(std::min(iarg(0), iarg(1))); return true;
    case IntrinsicId::IMax: set_i(std::max(iarg(0), iarg(1))); return true;

    case IntrinsicId::Alloc: {
      const std::int64_t n = iarg(0);
      if (n < 0) {
        do_trap(Trap::BadAlloc);
        return false;
      }
      const std::uint64_t addr = mem_.alloc_words(static_cast<std::uint64_t>(n));
      if (addr == 0) {
        do_trap(Trap::BadAlloc);
        return false;
      }
      set_reg(in.dst, addr);
      return true;
    }

    case IntrinsicId::OutputF:
      outputs_.push_back(farg(0));
      return true;
    case IntrinsicId::OutputI:
      outputs_.push_back(static_cast<double>(iarg(0)));
      return true;
    case IntrinsicId::ReportIters:
      reported_iters_ = iarg(0);
      return true;

    case IntrinsicId::Rand01:
      set_f(rng_.next_double());
      return true;
    case IntrinsicId::Clock:
      set_i(static_cast<std::int64_t>(cycles_));
      return true;

    case IntrinsicId::MpiRank:
      set_i(rank_);
      return true;
    case IntrinsicId::MpiSize:
      set_i(mpi_ != nullptr ? mpi_->rank_count() : 1);
      return true;

    case IntrinsicId::MpiSendF:
    case IntrinsicId::MpiRecvF:
    case IntrinsicId::MpiIsendF:
    case IntrinsicId::MpiIrecvF:
    case IntrinsicId::MpiWait:
    case IntrinsicId::MpiAllreduceSumF:
    case IntrinsicId::MpiAllreduceMaxF:
    case IntrinsicId::MpiBcastF:
    case IntrinsicId::MpiBarrier:
    case IntrinsicId::MpiAbort: {
      if (mpi_ == nullptr) return exec_mpi_local(in);
      MpiResult r = MpiResult::Done;
      switch (in.intr) {
        case IntrinsicId::MpiSendF:
          r = mpi_->send_f(*this, iarg(0), iarg(1), reg(in.args[2]), iarg(3));
          break;
        case IntrinsicId::MpiRecvF:
          r = mpi_->recv_f(*this, iarg(0), iarg(1), reg(in.args[2]), iarg(3));
          break;
        case IntrinsicId::MpiIsendF: {
          std::int64_t req = 0;
          r = mpi_->isend_f(*this, iarg(0), iarg(1), reg(in.args[2]), iarg(3),
                            &req);
          if (r == MpiResult::Done) set_i(req);
          break;
        }
        case IntrinsicId::MpiIrecvF: {
          std::int64_t req = 0;
          r = mpi_->irecv_f(*this, iarg(0), iarg(1), reg(in.args[2]), iarg(3),
                            &req);
          if (r == MpiResult::Done) set_i(req);
          break;
        }
        case IntrinsicId::MpiWait:
          r = mpi_->wait(*this, iarg(0));
          break;
        case IntrinsicId::MpiAllreduceSumF:
          r = mpi_->allreduce_f(*this, false, reg(in.args[0]), reg(in.args[1]),
                                iarg(2));
          break;
        case IntrinsicId::MpiAllreduceMaxF:
          r = mpi_->allreduce_f(*this, true, reg(in.args[0]), reg(in.args[1]),
                                iarg(2));
          break;
        case IntrinsicId::MpiBcastF:
          r = mpi_->bcast_f(*this, iarg(0), reg(in.args[1]), iarg(2));
          break;
        case IntrinsicId::MpiBarrier:
          r = mpi_->barrier(*this);
          break;
        case IntrinsicId::MpiAbort:
          abort_code_ = iarg(0);
          mpi_->abort(*this, iarg(0));
          do_trap(Trap::MpiAbort);
          return false;
        default:
          break;
      }
      switch (r) {
        case MpiResult::Done:
          return true;
        case MpiResult::Block:
          state_ = RunState::Blocked;
          return false;
        case MpiResult::Fault:
          do_trap(Trap::MpiFault);
          return false;
      }
      return true;
    }
  }
  return true;
}

bool Interp::exec_mpi_local(const ir::Instr& in) {
  // Single-rank fallback semantics (no MPI hook attached): point-to-point is
  // invalid, collectives degenerate to local copies that preserve
  // contamination metadata.
  using ir::IntrinsicId;
  auto iarg = [&](std::size_t i) { return as_i64(reg(in.args[i])); };
  switch (in.intr) {
    case IntrinsicId::MpiSendF:
    case IntrinsicId::MpiRecvF:
    case IntrinsicId::MpiIsendF:
    case IntrinsicId::MpiIrecvF:
      do_trap(Trap::MpiFault);
      return false;
    case IntrinsicId::MpiWait:
      do_trap(Trap::MpiFault);  // no request can exist without a hook
      return false;
    case IntrinsicId::MpiAllreduceSumF:
    case IntrinsicId::MpiAllreduceMaxF: {
      const std::uint64_t sb = reg(in.args[0]);
      const std::uint64_t rb = reg(in.args[1]);
      const std::int64_t count = iarg(2);
      if (count < 0) {
        do_trap(Trap::MpiFault);
        return false;
      }
      for (std::int64_t i = 0; i < count; ++i) {
        std::uint64_t v = 0;
        if (!mem_.load(sb + 8 * static_cast<std::uint64_t>(i), v) ||
            !mem_.store(rb + 8 * static_cast<std::uint64_t>(i), v)) {
          do_trap(Trap::BadAccess);
          return false;
        }
      }
      if (fpm_ != nullptr && count > 0) {
        const auto n = static_cast<std::uint64_t>(count);
        const auto header = fpm::build_header(fpm_->shadow(), sb, n);
        fpm::install_header(fpm_->shadow(), rb, n, header);
      }
      if (taint_ != nullptr) {
        for (std::int64_t i = 0; i < count; ++i) {
          const auto off = 8 * static_cast<std::uint64_t>(i);
          taint_->set_location(rb + off, taint_->location(sb + off));
        }
      }
      return true;
    }
    case IntrinsicId::MpiBcastF: {
      if (iarg(0) != 0) {
        do_trap(Trap::MpiFault);
        return false;
      }
      return true;  // root == self: nothing to do
    }
    case IntrinsicId::MpiBarrier:
      return true;
    case IntrinsicId::MpiAbort:
      abort_code_ = iarg(0);
      do_trap(Trap::MpiAbort);
      return false;
    default:
      return true;
  }
}

}  // namespace fprop::vm
