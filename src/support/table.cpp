#include "fprop/support/table.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "fprop/support/error.h"

namespace fprop {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  FPROP_CHECK_MSG(!header_.empty(), "table needs at least one column");
}

void TableWriter::add_row(std::vector<std::string> cells) {
  FPROP_CHECK_MSG(cells.size() == header_.size(),
                  "row width must match header");
  rows_.push_back(std::move(cells));
}

void TableWriter::add_row_values(std::span<const double> values,
                                 int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

void TableWriter::render(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << std::string(widths[c] - row[c].size(), ' ') << row[c];
    }
    os << " |\n";
  };
  print_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|" : "|") << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TableWriter::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

std::string render_bar_chart(std::span<const std::string> labels,
                             std::span<const double> values, double max_value,
                             std::size_t width, const std::string& unit) {
  FPROP_CHECK(labels.size() == values.size());
  std::size_t label_w = 0;
  for (const auto& l : labels) label_w = std::max(label_w, l.size());
  std::ostringstream os;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const double frac =
        max_value > 0.0 ? std::clamp(values[i] / max_value, 0.0, 1.0) : 0.0;
    const auto bar = static_cast<std::size_t>(
        std::lround(frac * static_cast<double>(width)));
    os << labels[i] << std::string(label_w - labels[i].size(), ' ') << " |"
       << std::string(bar, '#') << std::string(width - bar, ' ') << "| "
       << format_double(values[i], 2) << unit << "\n";
  }
  return os.str();
}

std::string render_series(std::span<const double> xs,
                          std::span<const double> ys, std::size_t plot_width,
                          std::size_t plot_height) {
  FPROP_CHECK(xs.size() == ys.size());
  if (xs.empty()) return "(empty series)\n";
  const double xmin = *std::min_element(xs.begin(), xs.end());
  const double xmax = *std::max_element(xs.begin(), xs.end());
  const double ymin = std::min(0.0, *std::min_element(ys.begin(), ys.end()));
  double ymax = *std::max_element(ys.begin(), ys.end());
  if (ymax <= ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(plot_height, std::string(plot_width, ' '));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double fx = xmax > xmin ? (xs[i] - xmin) / (xmax - xmin) : 0.0;
    const double fy = (ys[i] - ymin) / (ymax - ymin);
    auto cx = static_cast<std::size_t>(fx * static_cast<double>(plot_width - 1));
    auto cy = static_cast<std::size_t>(fy * static_cast<double>(plot_height - 1));
    grid[plot_height - 1 - cy][cx] = '*';
  }
  std::ostringstream os;
  os << format_double(ymax, 0) << "\n";
  for (const auto& row : grid) os << "|" << row << "\n";
  os << "+" << std::string(plot_width, '-') << "\n";
  os << format_double(xmin, 0) << " ... " << format_double(xmax, 0)
     << " (virtual time)\n";
  return os.str();
}

}  // namespace fprop
