#include "fprop/support/stats.h"

#include <algorithm>
#include <cmath>

#include "fprop/support/error.h"

namespace fprop {

double RunningStat::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  FPROP_CHECK_MSG(bins > 0, "histogram needs at least one bin");
  FPROP_CHECK_MSG(hi > lo, "histogram range must be non-empty");
}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

namespace {

// Regularized lower incomplete gamma P(a, x) via series expansion; valid for
// x < a + 1.
double gamma_p_series(double a, double x) {
  double sum = 1.0 / a;
  double term = sum;
  for (int n = 1; n < 500; ++n) {
    term *= x / (a + n);
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Regularized upper incomplete gamma Q(a, x) via Lentz continued fraction;
// valid for x >= a + 1.
double gamma_q_cf(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double chi_squared_upper_tail(double x, std::size_t dof) {
  if (x <= 0.0) return 1.0;
  const double a = static_cast<double>(dof) / 2.0;
  const double half_x = x / 2.0;
  if (half_x < a + 1.0) {
    return 1.0 - gamma_p_series(a, half_x);
  }
  return gamma_q_cf(a, half_x);
}

ChiSquaredResult chi_squared_uniform(const Histogram& h) {
  ChiSquaredResult r;
  r.dof = h.bins() - 1;
  const double expected =
      static_cast<double>(h.total()) / static_cast<double>(h.bins());
  FPROP_CHECK_MSG(expected > 0.0, "chi-squared test needs samples");
  for (std::size_t i = 0; i < h.bins(); ++i) {
    const double diff = static_cast<double>(h.bin_count(i)) - expected;
    r.statistic += diff * diff / expected;
  }
  r.p_value = chi_squared_upper_tail(r.statistic, r.dof);
  r.uniform_at_5pct = r.p_value >= 0.05;
  return r;
}

double pearson_correlation(std::span<const double> x,
                           std::span<const double> y) {
  FPROP_CHECK(x.size() == y.size());
  FPROP_CHECK(x.size() >= 2);
  RunningStat sx;
  RunningStat sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  double cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  }
  cov /= static_cast<double>(x.size() - 1);
  const double denom = sx.stddev() * sy.stddev();
  if (denom == 0.0) return 0.0;
  return cov / denom;
}

double quantile(std::span<const double> xs, double p) {
  FPROP_CHECK(!xs.empty());
  FPROP_CHECK(p >= 0.0 && p <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

}  // namespace fprop
