#include "fprop/support/error.h"

namespace fprop::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& message) {
  std::string what = std::string("FPROP_CHECK failed: ") + expr + " at " +
                     file + ":" + std::to_string(line);
  if (!message.empty()) {
    what += ": " + message;
  }
  throw Error(what);
}

}  // namespace fprop::detail
