#include "fprop/ir/builder.h"

namespace fprop::ir {

Type opcode_result_type(Opcode op) noexcept {
  switch (op) {
    case Opcode::AddF: case Opcode::SubF: case Opcode::MulF:
    case Opcode::DivF: case Opcode::NegF: case Opcode::I2F:
    case Opcode::ConstF:
      return Type::F64;
    case Opcode::PtrAdd:
      return Type::Ptr;
    case Opcode::Store: case Opcode::Jmp: case Opcode::Br:
    case Opcode::Ret: case Opcode::FpmStore:
      return Type::Void;
    default:
      return Type::I64;
  }
}

Type opcode_operand_type(Opcode op) noexcept {
  switch (op) {
    case Opcode::AddF: case Opcode::SubF: case Opcode::MulF:
    case Opcode::DivF: case Opcode::NegF: case Opcode::F2I:
    case Opcode::EqF: case Opcode::NeF: case Opcode::LtF:
    case Opcode::LeF: case Opcode::GtF: case Opcode::GeF:
      return Type::F64;
    case Opcode::EqP: case Opcode::NeP:
      return Type::Ptr;
    default:
      return Type::I64;
  }
}

BlockId Builder::new_block() {
  f_->blocks.emplace_back();
  return static_cast<BlockId>(f_->blocks.size() - 1);
}

Instr Builder::make(Opcode op, Type t, Reg dst,
                    std::initializer_list<Reg> operands) const {
  Instr in;
  in.op = op;
  in.type = t;
  in.dst = dst;
  FPROP_CHECK(operands.size() <= in.ops.size());
  std::size_t i = 0;
  for (Reg r : operands) in.ops[i++] = r;
  in.nops = static_cast<std::uint8_t>(operands.size());
  return in;
}

void Builder::emit(Instr in) {
  FPROP_CHECK_MSG(cur_ < f_->blocks.size(), "insert point out of range");
  f_->blocks[cur_].code.push_back(std::move(in));
}

Reg Builder::const_i(std::int64_t v) {
  const Reg dst = new_reg(Type::I64);
  Instr in = make(Opcode::ConstI, Type::I64, dst, {});
  in.imm = v;
  emit(std::move(in));
  return dst;
}

Reg Builder::const_f(double v) {
  const Reg dst = new_reg(Type::F64);
  Instr in = make(Opcode::ConstF, Type::F64, dst, {});
  in.fimm = v;
  emit(std::move(in));
  return dst;
}

Reg Builder::mov(Reg src) {
  const Type t = f_->reg_type(src);
  const Reg dst = new_reg(t);
  emit(make(Opcode::Mov, t, dst, {src}));
  return dst;
}

void Builder::mov_to(Reg dst, Reg src) {
  emit(make(Opcode::Mov, f_->reg_type(src), dst, {src}));
}

Reg Builder::binop(Opcode op, Reg a, Reg b) {
  const Type rt = opcode_result_type(op);
  const Reg dst = new_reg(rt);
  emit(make(op, rt, dst, {a, b}));
  return dst;
}

Reg Builder::unop(Opcode op, Reg a) {
  const Type rt = opcode_result_type(op);
  const Reg dst = new_reg(rt);
  emit(make(op, rt, dst, {a}));
  return dst;
}

Reg Builder::i2f(Reg a) { return unop(Opcode::I2F, a); }
Reg Builder::f2i(Reg a) { return unop(Opcode::F2I, a); }

Reg Builder::load(Type t, Reg addr) {
  const Reg dst = new_reg(t);
  emit(make(Opcode::Load, t, dst, {addr}));
  return dst;
}

void Builder::store(Reg val, Reg addr) {
  emit(make(Opcode::Store, f_->reg_type(val), kNoReg, {val, addr}));
}

Reg Builder::ptr_add(Reg base, Reg index) {
  return binop(Opcode::PtrAdd, base, index);
}

void Builder::jmp(BlockId target) {
  Instr in = make(Opcode::Jmp, Type::Void, kNoReg, {});
  in.t1 = target;
  emit(std::move(in));
}

void Builder::br(Reg cond, BlockId if_true, BlockId if_false) {
  Instr in = make(Opcode::Br, Type::Void, kNoReg, {cond});
  in.t1 = if_true;
  in.t2 = if_false;
  emit(std::move(in));
}

void Builder::ret() { emit(make(Opcode::Ret, Type::Void, kNoReg, {})); }

void Builder::ret(Reg value) {
  Instr in = make(Opcode::Ret, f_->reg_type(value), kNoReg, {});
  in.args = {value};
  emit(std::move(in));
}

Reg Builder::call(FuncId callee, std::vector<Reg> args, Type result_type) {
  Instr in = make(Opcode::Call, result_type, kNoReg, {});
  if (result_type != Type::Void) in.dst = new_reg(result_type);
  in.callee = callee;
  in.args = std::move(args);
  const Reg dst = in.dst;
  emit(std::move(in));
  return dst;
}

Reg Builder::intrinsic(IntrinsicId id, std::vector<Reg> args) {
  const Type rt = intrinsic_result_type(id);
  Instr in = make(Opcode::Intrinsic, rt, kNoReg, {});
  if (rt != Type::Void) in.dst = new_reg(rt);
  in.intr = id;
  in.args = std::move(args);
  const Reg dst = in.dst;
  emit(std::move(in));
  return dst;
}

bool Builder::block_terminated() const {
  const auto& code = f_->blocks[cur_].code;
  return !code.empty() && is_terminator(code.back().op);
}

}  // namespace fprop::ir
