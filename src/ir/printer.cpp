#include "fprop/ir/printer.h"

#include <sstream>

namespace fprop::ir {

namespace {

// Registers created as pristine twins by the dual-chain pass are printed with
// a `p` suffix (the paper's r1/r1p notation); injected-value registers keep
// plain names since the site id already marks them.
std::string reg_name(const Function& f, Reg r) {
  if (r == kNoReg) return "r?";
  // Built via append rather than operator+(const char*, string&&): the
  // latter trips GCC 12's -Wrestrict false positive (PR 105651) at -O3.
  std::string name = "r";
  for (const auto& [primary, shadow] : f.shadow_of) {
    if (shadow == r) {
      name += std::to_string(primary);
      name += 'p';
      return name;
    }
  }
  name += std::to_string(r);
  return name;
}

}  // namespace

std::string to_string(const Function& f, const Instr& in) {
  std::ostringstream os;
  auto r = [&](Reg reg) { return reg_name(f, reg); };
  switch (in.op) {
    case Opcode::ConstI:
      os << r(in.dst) << " = const.i64 " << in.imm;
      break;
    case Opcode::ConstF:
      os << r(in.dst) << " = const.f64 " << in.fimm;
      break;
    case Opcode::Mov:
      os << r(in.dst) << " = mov " << r(in.a());
      break;
    case Opcode::Load:
      os << r(in.dst) << " = ld." << type_name(in.type) << " [" << r(in.a())
         << "]";
      break;
    case Opcode::Store:
      os << "st." << type_name(in.type) << " " << r(in.a()) << ", ["
         << r(in.b()) << "]";
      break;
    case Opcode::Jmp:
      os << "jmp bb" << in.t1;
      break;
    case Opcode::Br:
      os << "br " << r(in.a()) << ", bb" << in.t1 << ", bb" << in.t2;
      break;
    case Opcode::Ret:
      os << "ret";
      for (Reg v : in.args) os << " " << r(v);
      break;
    case Opcode::Call: {
      if (in.dst != kNoReg) {
        os << r(in.dst);
        if (in.dst2 != kNoReg) os << ", " << r(in.dst2);
        os << " = ";
      }
      os << "call @" << in.callee << "(";
      for (std::size_t i = 0; i < in.args.size(); ++i) {
        if (i) os << ", ";
        os << r(in.args[i]);
      }
      os << ")";
      break;
    }
    case Opcode::Intrinsic: {
      if (in.dst != kNoReg) {
        os << r(in.dst);
        if (in.dst2 != kNoReg) os << ", " << r(in.dst2);
        os << " = ";
      }
      os << intrinsic_name(in.intr) << "(";
      for (std::size_t i = 0; i < in.args.size(); ++i) {
        if (i) os << ", ";
        os << r(in.args[i]);
      }
      os << ")";
      break;
    }
    case Opcode::FimInj:
      os << r(in.dst) << " = fim_inj(" << r(in.a()) << ") #site=" << in.imm;
      break;
    case Opcode::FpmFetch:
      os << r(in.dst) << " = fpm_fetch." << type_name(in.type) << " ["
         << r(in.a()) << "]";
      break;
    case Opcode::FpmStore:
      os << "fpm_store." << type_name(in.type) << " " << r(in.a()) << ", "
         << r(in.b()) << ", [" << r(in.c()) << "], [" << r(in.d()) << "]";
      break;
    default: {
      // Generic arithmetic rendering: `r3 = mul.f64 r1, r2`.
      os << r(in.dst) << " = " << opcode_name(in.op);
      for (std::uint8_t i = 0; i < in.nops; ++i) {
        os << (i == 0 ? " " : ", ") << r(in.ops[i]);
      }
      break;
    }
  }
  return os.str();
}

std::string to_string(const Function& f) {
  std::ostringstream os;
  os << "func @" << f.name << "(";
  for (std::size_t i = 0; i < f.params.size(); ++i) {
    if (i) os << ", ";
    os << reg_name(f, f.params[i]) << ":"
       << type_name(f.reg_types[f.params[i]]);
  }
  os << ") -> " << type_name(f.ret_type);
  if (f.dual_chain) os << " dual_chain";
  os << " {\n";
  for (std::size_t b = 0; b < f.blocks.size(); ++b) {
    os << "bb" << b << ":\n";
    for (const auto& in : f.blocks[b].code) {
      os << "  " << to_string(f, in) << "\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string to_string(const Module& m) {
  std::ostringstream os;
  for (const auto& f : m.funcs) os << to_string(f) << "\n";
  return os.str();
}

}  // namespace fprop::ir
