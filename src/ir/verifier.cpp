#include "fprop/ir/verifier.h"

#include <sstream>

#include "fprop/ir/builder.h"
#include "fprop/ir/printer.h"

namespace fprop::ir {

namespace {

class Verifier {
 public:
  explicit Verifier(const Module& m) : m_(m) {}

  void run() {
    if (m_.entry == kNoFunc || m_.entry >= m_.funcs.size()) {
      throw VerifyError("module has no entry function");
    }
    if (!m_.funcs[m_.entry].params.empty()) {
      throw VerifyError("entry function must take no parameters");
    }
    for (const auto& f : m_.funcs) check_function(f);
  }

 private:
  [[noreturn]] void fail(const Function& f, const Instr* in,
                         const std::string& msg) const {
    std::ostringstream os;
    os << "verify: @" << f.name;
    if (in != nullptr) os << ": `" << to_string(f, *in) << "`";
    os << ": " << msg;
    throw VerifyError(os.str());
  }

  void check_reg(const Function& f, const Instr& in, Reg r, Type want) const {
    if (r >= f.reg_types.size()) fail(f, &in, "register out of range");
    if (want != Type::Void && f.reg_types[r] != want) {
      fail(f, &in,
           std::string("register type mismatch: have ") +
               type_name(f.reg_types[r]) + ", want " + type_name(want));
    }
  }

  void check_nops(const Function& f, const Instr& in, unsigned want) const {
    if (in.nops != want) fail(f, &in, "wrong operand count");
  }

  void check_target(const Function& f, const Instr& in, BlockId b) const {
    if (b >= f.blocks.size()) fail(f, &in, "branch target out of range");
  }

  void check_function(const Function& f) const {
    for (Reg p : f.params) {
      if (p >= f.reg_types.size()) fail(f, nullptr, "param register invalid");
    }
    if (f.blocks.empty()) fail(f, nullptr, "function has no blocks");
    for (const auto& block : f.blocks) {
      if (block.code.empty()) fail(f, nullptr, "empty basic block");
      for (std::size_t i = 0; i < block.code.size(); ++i) {
        const Instr& in = block.code[i];
        const bool last = i + 1 == block.code.size();
        if (is_terminator(in.op) != last) {
          fail(f, &in, last ? "block does not end in terminator"
                            : "terminator not at end of block");
        }
        check_instr(f, in);
      }
    }
  }

  void check_instr(const Function& f, const Instr& in) const {
    switch (in.op) {
      case Opcode::ConstI:
        check_nops(f, in, 0);
        check_reg(f, in, in.dst, Type::I64);
        break;
      case Opcode::ConstF:
        check_nops(f, in, 0);
        check_reg(f, in, in.dst, Type::F64);
        break;
      case Opcode::Mov:
        check_nops(f, in, 1);
        check_reg(f, in, in.a(), Type::Void);
        check_reg(f, in, in.dst, f.reg_types[in.a()]);
        break;
      case Opcode::Load:
        check_nops(f, in, 1);
        check_reg(f, in, in.a(), Type::Ptr);
        if (in.type == Type::Void) fail(f, &in, "load of void");
        check_reg(f, in, in.dst, in.type);
        break;
      case Opcode::FpmFetch:
        check_nops(f, in, 1);
        check_reg(f, in, in.a(), Type::Ptr);
        if (in.type == Type::Void) fail(f, &in, "fetch of void");
        check_reg(f, in, in.dst, in.type);
        break;
      case Opcode::Store:
        check_nops(f, in, 2);
        check_reg(f, in, in.a(), in.type);
        check_reg(f, in, in.b(), Type::Ptr);
        break;
      case Opcode::FpmStore:
        check_nops(f, in, 4);
        check_reg(f, in, in.a(), in.type);   // primary value
        check_reg(f, in, in.b(), in.type);   // pristine value
        check_reg(f, in, in.c(), Type::Ptr); // primary address
        check_reg(f, in, in.d(), Type::Ptr); // pristine address
        break;
      case Opcode::PtrAdd:
        check_nops(f, in, 2);
        check_reg(f, in, in.a(), Type::Ptr);
        check_reg(f, in, in.b(), Type::I64);
        check_reg(f, in, in.dst, Type::Ptr);
        break;
      case Opcode::Jmp:
        check_nops(f, in, 0);
        check_target(f, in, in.t1);
        break;
      case Opcode::Br:
        check_nops(f, in, 1);
        check_reg(f, in, in.a(), Type::I64);
        check_target(f, in, in.t1);
        check_target(f, in, in.t2);
        break;
      case Opcode::Ret:
        check_ret(f, in);
        break;
      case Opcode::Call:
        check_call(f, in);
        break;
      case Opcode::Intrinsic:
        check_intrinsic(f, in);
        break;
      case Opcode::FimInj:
        check_nops(f, in, 1);
        check_reg(f, in, in.a(), Type::Void);
        check_reg(f, in, in.dst, f.reg_types[in.a()]);
        break;
      default:
        check_arith(f, in);
        break;
    }
  }

  void check_arith(const Function& f, const Instr& in) const {
    if (!is_arith(in.op)) fail(f, &in, "unknown opcode");
    const Type opt = opcode_operand_type(in.op);
    const Type rt = opcode_result_type(in.op);
    const bool unary = in.op == Opcode::NegI || in.op == Opcode::NotI ||
                       in.op == Opcode::NegF || in.op == Opcode::I2F ||
                       in.op == Opcode::F2I;
    check_nops(f, in, unary ? 1 : 2);
    check_reg(f, in, in.a(), opt);
    if (!unary) check_reg(f, in, in.b(), opt);
    check_reg(f, in, in.dst, rt);
  }

  void check_ret(const Function& f, const Instr& in) const {
    const std::size_t want =
        f.ret_type == Type::Void ? 0 : (f.dual_chain ? 2 : 1);
    if (in.args.size() != want) fail(f, &in, "wrong number of return values");
    for (Reg r : in.args) check_reg(f, in, r, f.ret_type);
  }

  void check_call(const Function& f, const Instr& in) const {
    if (in.callee >= m_.funcs.size()) fail(f, &in, "callee out of range");
    const Function& callee = m_.funcs[in.callee];
    if (in.args.size() != callee.params.size()) {
      fail(f, &in, "argument count mismatch with @" + callee.name);
    }
    for (std::size_t i = 0; i < in.args.size(); ++i) {
      check_reg(f, in, in.args[i], callee.reg_types[callee.params[i]]);
    }
    if (callee.ret_type == Type::Void) {
      if (in.dst != kNoReg || in.dst2 != kNoReg) {
        fail(f, &in, "void callee cannot produce results");
      }
    } else {
      check_reg(f, in, in.dst, callee.ret_type);
      if (callee.dual_chain) {
        check_reg(f, in, in.dst2, callee.ret_type);
      } else if (in.dst2 != kNoReg) {
        fail(f, &in, "dst2 on call to non-dual-chain function");
      }
    }
  }

  void check_intrinsic(const Function& f, const Instr& in) const {
    if (in.args.size() != intrinsic_arity(in.intr)) {
      fail(f, &in, "intrinsic arity mismatch");
    }
    for (Reg r : in.args) check_reg(f, in, r, Type::Void);
    const Type rt = intrinsic_result_type(in.intr);
    if (rt == Type::Void) {
      if (in.dst != kNoReg) fail(f, &in, "void intrinsic cannot have result");
    } else {
      check_reg(f, in, in.dst, rt);
      if (in.dst2 != kNoReg) check_reg(f, in, in.dst2, rt);
    }
  }

  const Module& m_;
};

}  // namespace

void verify(const Module& m) { Verifier(m).run(); }

}  // namespace fprop::ir
