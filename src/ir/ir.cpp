#include "fprop/ir/ir.h"

namespace fprop::ir {

const char* type_name(Type t) noexcept {
  switch (t) {
    case Type::Void: return "void";
    case Type::I64: return "i64";
    case Type::F64: return "f64";
    case Type::Ptr: return "ptr";
  }
  return "?";
}

const char* opcode_name(Opcode op) noexcept {
  switch (op) {
    case Opcode::ConstI: return "const.i64";
    case Opcode::ConstF: return "const.f64";
    case Opcode::Mov: return "mov";
    case Opcode::AddI: return "add.i64";
    case Opcode::SubI: return "sub.i64";
    case Opcode::MulI: return "mul.i64";
    case Opcode::DivI: return "div.i64";
    case Opcode::RemI: return "rem.i64";
    case Opcode::AndI: return "and.i64";
    case Opcode::OrI: return "or.i64";
    case Opcode::XorI: return "xor.i64";
    case Opcode::ShlI: return "shl.i64";
    case Opcode::ShrI: return "shr.i64";
    case Opcode::NegI: return "neg.i64";
    case Opcode::NotI: return "not.i64";
    case Opcode::AddF: return "add.f64";
    case Opcode::SubF: return "sub.f64";
    case Opcode::MulF: return "mul.f64";
    case Opcode::DivF: return "div.f64";
    case Opcode::NegF: return "neg.f64";
    case Opcode::EqI: return "eq.i64";
    case Opcode::NeI: return "ne.i64";
    case Opcode::LtI: return "lt.i64";
    case Opcode::LeI: return "le.i64";
    case Opcode::GtI: return "gt.i64";
    case Opcode::GeI: return "ge.i64";
    case Opcode::EqF: return "eq.f64";
    case Opcode::NeF: return "ne.f64";
    case Opcode::LtF: return "lt.f64";
    case Opcode::LeF: return "le.f64";
    case Opcode::GtF: return "gt.f64";
    case Opcode::GeF: return "ge.f64";
    case Opcode::EqP: return "eq.ptr";
    case Opcode::NeP: return "ne.ptr";
    case Opcode::I2F: return "i2f";
    case Opcode::F2I: return "f2i";
    case Opcode::Load: return "ld";
    case Opcode::Store: return "st";
    case Opcode::PtrAdd: return "ptradd";
    case Opcode::Jmp: return "jmp";
    case Opcode::Br: return "br";
    case Opcode::Ret: return "ret";
    case Opcode::Call: return "call";
    case Opcode::Intrinsic: return "intrinsic";
    case Opcode::FimInj: return "fim_inj";
    case Opcode::FpmFetch: return "fpm_fetch";
    case Opcode::FpmStore: return "fpm_store";
  }
  return "?";
}

const char* intrinsic_name(IntrinsicId id) noexcept {
  switch (id) {
    case IntrinsicId::Sqrt: return "sqrt";
    case IntrinsicId::Fabs: return "fabs";
    case IntrinsicId::Exp: return "exp";
    case IntrinsicId::Log: return "log";
    case IntrinsicId::Sin: return "sin";
    case IntrinsicId::Cos: return "cos";
    case IntrinsicId::Pow: return "pow";
    case IntrinsicId::Floor: return "floor";
    case IntrinsicId::FMin: return "fmin";
    case IntrinsicId::FMax: return "fmax";
    case IntrinsicId::IMin: return "imin";
    case IntrinsicId::IMax: return "imax";
    case IntrinsicId::Alloc: return "alloc";
    case IntrinsicId::OutputF: return "output_f";
    case IntrinsicId::OutputI: return "output_i";
    case IntrinsicId::ReportIters: return "report_iters";
    case IntrinsicId::Rand01: return "rand01";
    case IntrinsicId::Clock: return "clock";
    case IntrinsicId::MpiRank: return "mpi_rank";
    case IntrinsicId::MpiSize: return "mpi_size";
    case IntrinsicId::MpiSendF: return "mpi_send_f";
    case IntrinsicId::MpiRecvF: return "mpi_recv_f";
    case IntrinsicId::MpiIsendF: return "mpi_isend_f";
    case IntrinsicId::MpiIrecvF: return "mpi_irecv_f";
    case IntrinsicId::MpiWait: return "mpi_wait";
    case IntrinsicId::MpiAllreduceSumF: return "mpi_allreduce_sum_f";
    case IntrinsicId::MpiAllreduceMaxF: return "mpi_allreduce_max_f";
    case IntrinsicId::MpiBcastF: return "mpi_bcast_f";
    case IntrinsicId::MpiBarrier: return "mpi_barrier";
    case IntrinsicId::MpiAbort: return "mpi_abort";
  }
  return "?";
}

bool intrinsic_is_pure(IntrinsicId id) noexcept {
  switch (id) {
    case IntrinsicId::Sqrt:
    case IntrinsicId::Fabs:
    case IntrinsicId::Exp:
    case IntrinsicId::Log:
    case IntrinsicId::Sin:
    case IntrinsicId::Cos:
    case IntrinsicId::Pow:
    case IntrinsicId::Floor:
    case IntrinsicId::FMin:
    case IntrinsicId::FMax:
    case IntrinsicId::IMin:
    case IntrinsicId::IMax:
      return true;
    default:
      return false;
  }
}

unsigned intrinsic_arity(IntrinsicId id) noexcept {
  switch (id) {
    case IntrinsicId::Sqrt:
    case IntrinsicId::Fabs:
    case IntrinsicId::Exp:
    case IntrinsicId::Log:
    case IntrinsicId::Sin:
    case IntrinsicId::Cos:
    case IntrinsicId::Floor:
    case IntrinsicId::Alloc:
    case IntrinsicId::OutputF:
    case IntrinsicId::OutputI:
    case IntrinsicId::ReportIters:
    case IntrinsicId::MpiAbort:
    case IntrinsicId::MpiWait:
      return 1;
    case IntrinsicId::Pow:
    case IntrinsicId::FMin:
    case IntrinsicId::FMax:
    case IntrinsicId::IMin:
    case IntrinsicId::IMax:
      return 2;
    case IntrinsicId::Rand01:
    case IntrinsicId::Clock:
    case IntrinsicId::MpiRank:
    case IntrinsicId::MpiSize:
    case IntrinsicId::MpiBarrier:
      return 0;
    case IntrinsicId::MpiBcastF:
    case IntrinsicId::MpiAllreduceSumF:
    case IntrinsicId::MpiAllreduceMaxF:
      return 3;
    case IntrinsicId::MpiSendF:
    case IntrinsicId::MpiRecvF:
    case IntrinsicId::MpiIsendF:
    case IntrinsicId::MpiIrecvF:
      return 4;
  }
  return 0;
}

Type intrinsic_result_type(IntrinsicId id) noexcept {
  switch (id) {
    case IntrinsicId::Sqrt:
    case IntrinsicId::Fabs:
    case IntrinsicId::Exp:
    case IntrinsicId::Log:
    case IntrinsicId::Sin:
    case IntrinsicId::Cos:
    case IntrinsicId::Pow:
    case IntrinsicId::Floor:
    case IntrinsicId::FMin:
    case IntrinsicId::FMax:
    case IntrinsicId::Rand01:
      return Type::F64;
    case IntrinsicId::IMin:
    case IntrinsicId::IMax:
    case IntrinsicId::Clock:
    case IntrinsicId::MpiRank:
    case IntrinsicId::MpiSize:
    case IntrinsicId::MpiIsendF:
    case IntrinsicId::MpiIrecvF:
      return Type::I64;
    case IntrinsicId::Alloc:
      return Type::Ptr;
    default:
      return Type::Void;
  }
}

bool is_arith(Opcode op) noexcept {
  switch (op) {
    case Opcode::AddI: case Opcode::SubI: case Opcode::MulI:
    case Opcode::DivI: case Opcode::RemI: case Opcode::AndI:
    case Opcode::OrI: case Opcode::XorI: case Opcode::ShlI:
    case Opcode::ShrI: case Opcode::NegI: case Opcode::NotI:
    case Opcode::AddF: case Opcode::SubF: case Opcode::MulF:
    case Opcode::DivF: case Opcode::NegF:
    case Opcode::EqI: case Opcode::NeI: case Opcode::LtI:
    case Opcode::LeI: case Opcode::GtI: case Opcode::GeI:
    case Opcode::EqF: case Opcode::NeF: case Opcode::LtF:
    case Opcode::LeF: case Opcode::GtF: case Opcode::GeF:
    case Opcode::EqP: case Opcode::NeP:
    case Opcode::I2F: case Opcode::F2I:
    case Opcode::PtrAdd:
      return true;
    default:
      return false;
  }
}

bool is_terminator(Opcode op) noexcept {
  return op == Opcode::Jmp || op == Opcode::Br || op == Opcode::Ret;
}

bool has_result(const Instr& in) noexcept { return in.dst != kNoReg; }

Function& Module::add_function(std::string name, Type ret_type) {
  FPROP_CHECK_MSG(by_name.find(name) == by_name.end(),
                  "duplicate function name: " + name);
  Function f;
  f.name = name;
  f.id = static_cast<FuncId>(funcs.size());
  f.ret_type = ret_type;
  f.blocks.emplace_back();  // entry block
  by_name.emplace(std::move(name), f.id);
  funcs.push_back(std::move(f));
  return funcs.back();
}

Function* Module::find(std::string_view name) {
  auto it = by_name.find(std::string(name));
  return it == by_name.end() ? nullptr : &funcs[it->second];
}

const Function* Module::find(std::string_view name) const {
  auto it = by_name.find(std::string(name));
  return it == by_name.end() ? nullptr : &funcs[it->second];
}

std::size_t Module::static_instr_count() const noexcept {
  std::size_t n = 0;
  for (const auto& f : funcs) {
    for (const auto& b : f.blocks) n += b.code.size();
  }
  return n;
}

}  // namespace fprop::ir
