#include "app_sources.h"

namespace fprop::apps {

// LAMMPS proxy: molecular dynamics of a 1D Lennard-Jones chain with a
// two-neighbor cutoff (the second-neighbor coupling breaks the
// integrability of nearest-neighbor chains, so trajectories are chaotic and
// any perturbation grows — the paper's LAMMPS is its most output-vulnerable
// application). Domain-decomposed across ranks with two boundary atoms
// exchanged per step. Includes a static force-field table that is
// initialized but never read by the dynamics — the source of the paper's
// flat LAMMPS propagation profile (a fault contaminating unused static data
// never spreads).
const char* const kLammpsSource = R"mc(
// Lennard-Jones pair force on the atom at `a` from the atom at `b`
// (epsilon = sigma = 1, distance clamped away from the singularity).
fn ljf(a: float, b: float) -> float {
  var dx: float = a - b;
  var r2: float = fmax(dx * dx, 0.49);
  var ir2: float = 1.0 / r2;
  var ir6: float = ir2 * ir2 * ir2;
  return 24.0 * ir6 * (2.0 * ir6 - 1.0) * ir2 * dx;
}

fn main() {
  var rank: int = mpi_rank();
  var size: int = mpi_size();
  var np: int = @NP@;
  var steps: int = @STEPS@;

  var x: float* = alloc_float(np);      // positions
  var v: float* = alloc_float(np);      // velocities
  var f: float* = alloc_float(np);      // forces
  var y: float* = alloc_float(np + 4);  // padded positions (2 ghosts/side)
  var sb: float* = alloc_float(2);
  var rb: float* = alloc_float(2);
  var acc: float* = alloc_float(1);
  var tot: float* = alloc_float(1);

  // Static potential table (never used during the force computation).
  var table: float* = alloc_float(@TABN@);
  for (var i: int = 0; i < @TABN@; i = i + 1) {
    table[i] = 0.01 * float(i) + 1.0;
  }

  var d0: float = 1.12;   // LJ equilibrium spacing (2^(1/6) sigma)
  var dt: float = 0.02;
  var base: float = float(rank * np) * d0;

  for (var i: int = 0; i < np; i = i + 1) {
    // Thermal jitter on positions as well as velocities: at the exact
    // equilibrium spacing all pair forces are identically zero, which
    // would mask any fault multiplied into them.
    x[i] = base + float(i) * d0 + (rand01() - 0.5) * 0.1;
    v[i] = (rand01() - 0.5) * 0.2;
    f[i] = 0.0;
  }

  for (var s: int = 0; s < steps; s = s + 1) {
    // Exchange the two boundary atoms with each neighbor (eager sends
    // first, then receives), filling the padded ghost slots.
    if (rank > 0) {
      sb[0] = x[0];
      sb[1] = x[1];
      mpi_send_f(rank - 1, 1, sb, 2);
    }
    if (rank < size - 1) {
      sb[0] = x[np - 2];
      sb[1] = x[np - 1];
      mpi_send_f(rank + 1, 2, sb, 2);
    }
    for (var i: int = 0; i < np; i = i + 1) {
      y[i + 2] = x[i];
    }
    if (rank > 0) {
      mpi_recv_f(rank - 1, 2, rb, 2);
      y[0] = rb[0];
      y[1] = rb[1];
    } else {
      y[1] = y[2] - d0;       // fixed wall atoms at lattice spacing
      y[0] = y[2] - 2.0 * d0;
    }
    if (rank < size - 1) {
      mpi_recv_f(rank + 1, 1, rb, 2);
      y[np + 2] = rb[0];
      y[np + 3] = rb[1];
    } else {
      y[np + 2] = y[np + 1] + d0;
      y[np + 3] = y[np + 1] + 2.0 * d0;
    }

    // Pair forces over the two-neighbor cutoff (branch-free via padding).
    for (var i: int = 0; i < np; i = i + 1) {
      var a: float = y[i + 2];
      f[i] = ljf(a, y[i]) + ljf(a, y[i + 1]) + ljf(a, y[i + 3]) +
             ljf(a, y[i + 4]);
    }
    // Symplectic Euler integration.
    for (var i: int = 0; i < np; i = i + 1) {
      v[i] = v[i] + dt * f[i];
      x[i] = x[i] + dt * v[i];
    }
  }

  // Global kinetic energy plus sampled lattice displacements and
  // velocities (the thermodynamically meaningful, perturbation-sensitive
  // quantities an MD run reports).
  acc[0] = 0.0;
  for (var i: int = 0; i < np; i = i + 1) {
    acc[0] = acc[0] + v[i] * v[i];
  }
  mpi_allreduce_sum_f(acc, tot, 1);
  output_f(tot[0]);
  for (var i: int = 0; i < np; i = i + 4) {
    output_f(x[i] - (base + float(i) * d0));
    output_f(v[i]);
  }
}
)mc";

}  // namespace fprop::apps
