#include "app_sources.h"

namespace fprop::apps {

// AMG2013 proxy: a multilevel (full V-cycle) multigrid solver for a 1D
// Laplace-type problem, with the paper's three visible phases — Init
// (grid/vector allocation), Setup (Galerkin coarse-operator hierarchy), and
// Solve (V(2,2) cycles with weighted-Jacobi smoothing).
//
// The hierarchy uses vertex-centered coarsening with linear interpolation;
// the Galerkin recursion keeps the [-1 d -1] stencil except on the globally
// last row, whose diagonal correction doubles per level (extra_{l+1} =
// 2*extra_l + 1). Per-row diagonals are stored in an array (as real AMG
// stores its operator rows) and every level keeps ghost slots at both ends,
// so the smoother/residual/transfer kernels are branch-free like production
// stencil code. Converges in ~6 cycles independent of problem size.
const char* const kAmgSource = R"mc(
// Refresh ghost cells a[0] and a[n+1] from the neighbor ranks (zero beyond
// the global boundary). Interior cells are 1..n.
fn halo(a: float*, n: int, rank: int, size: int, sb: float*, rb: float*) {
  if (rank > 0) {
    sb[0] = a[1];
    mpi_send_f(rank - 1, 1, sb, 1);
  }
  if (rank < size - 1) {
    sb[0] = a[n];
    mpi_send_f(rank + 1, 2, sb, 1);
  }
  a[0] = 0.0;
  a[n + 1] = 0.0;
  if (rank > 0) {
    mpi_recv_f(rank - 1, 2, rb, 1);
    a[0] = rb[0];
  }
  if (rank < size - 1) {
    mpi_recv_f(rank + 1, 1, rb, 1);
    a[n + 1] = rb[0];
  }
}

// Weighted Jacobi (w = 2/3) on tridiag(-1, dv[i], -1).
fn jacobi(u: float*, f: float*, tmp: float*, dv: float*, n: int, sweeps: int,
          rank: int, size: int, sb: float*, rb: float*) {
  for (var s: int = 0; s < sweeps; s = s + 1) {
    halo(u, n, rank, size, sb, rb);
    for (var i: int = 1; i <= n; i = i + 1) {
      tmp[i] = 0.333333333 * u[i] +
               0.666666667 * (f[i] + u[i - 1] + u[i + 1]) / dv[i];
    }
    for (var i: int = 1; i <= n; i = i + 1) {
      u[i] = tmp[i];
    }
  }
}

// res = f - A u; returns the local squared residual norm.
fn residual(u: float*, f: float*, res: float*, dv: float*, n: int,
            rank: int, size: int, sb: float*, rb: float*) -> float {
  halo(u, n, rank, size, sb, rb);
  var ss: float = 0.0;
  for (var i: int = 1; i <= n; i = i + 1) {
    res[i] = f[i] - (dv[i] * u[i] - u[i - 1] - u[i + 1]);
    ss = ss + res[i] * res[i];
  }
  return ss;
}

fn vcycle(l: int, nlev: int, ua: float*, fa: float*, ra: float*, ta: float*,
          dva: float*, lev_off: int*, lev_n: int*, lev_d: float*,
          rank: int, size: int, sb: float*, rb: float*) {
  var o: int = lev_off[l];
  var n: int = lev_n[l];
  var u: float* = ua + o;
  var f: float* = fa + o;
  var res: float* = ra + o;
  var tmp: float* = ta + o;
  var dv: float* = dva + o;

  if (l == nlev - 1) {
    // Coarsest level: smooth it to death.
    jacobi(u, f, tmp, dv, n, 40, rank, size, sb, rb);
    return;
  }

  jacobi(u, f, tmp, dv, n, 2, rank, size, sb, rb);
  var ss: float = residual(u, f, res, dv, n, rank, size, sb, rb);

  // Restrict (P^T, rescaled so the coarse stencil keeps -1 off-diagonals).
  var ob: float = 1.0 - lev_d[l] / 4.0;
  var o2: int = lev_off[l + 1];
  var nc: int = lev_n[l + 1];
  var fc: float* = fa + o2;
  var uc: float* = ua + o2;
  halo(res, n, rank, size, sb, rb);
  for (var c: int = 1; c <= nc; c = c + 1) {
    fc[c] = (0.5 * res[2 * c - 1] + res[2 * c] + 0.5 * res[2 * c + 1]) / ob;
    uc[c] = 0.0;
  }

  vcycle(l + 1, nlev, ua, fa, ra, ta, dva, lev_off, lev_n, lev_d,
         rank, size, sb, rb);

  // Prolong (linear interpolation) and correct.
  halo(uc, nc, rank, size, sb, rb);
  for (var c: int = 1; c <= nc; c = c + 1) {
    u[2 * c] = u[2 * c] + uc[c];
    u[2 * c - 1] = u[2 * c - 1] + 0.5 * (uc[c] + uc[c - 1]);
  }

  jacobi(u, f, tmp, dv, n, 2, rank, size, sb, rb);
}

fn main() {
  var rank: int = mpi_rank();
  var size: int = mpi_size();
  var n: int = @N@;          // fine points per rank (power of two)
  var maxcyc: int = @MAXCYC@;

  // ---- Init phase: count levels, allocate the grid hierarchy -------------
  var nlev: int = 0;
  var t: int = n;
  while (t >= 1) {
    nlev = nlev + 1;
    t = t / 2;
  }
  var words: int = n * 2 + nlev * 2 + 4;   // each level holds nl + 2 slots
  var ua: float* = alloc_float(words);
  var fa: float* = alloc_float(words);
  var ra: float* = alloc_float(words);
  var ta: float* = alloc_float(words);
  var dva: float* = alloc_float(words);
  var lev_off: int* = alloc_int(nlev);
  var lev_n: int* = alloc_int(nlev);
  var lev_d: float* = alloc_float(nlev);
  var sb: float* = alloc_float(1);
  var rb: float* = alloc_float(1);
  var acc: float* = alloc_float(1);
  var tot: float* = alloc_float(1);

  var ntot: int = n * size;
  var h: float = 1.0 / float(ntot + 1);
  var h2: float = h * h;

  // ---- Setup phase: Galerkin hierarchy (per-row operator diagonals) ------
  var off: int = 0;
  var nl: int = n;
  var dd: float = 2.0 + h2;
  var ex: float = 0.0;
  for (var l: int = 0; l < nlev; l = l + 1) {
    lev_off[l] = off;
    lev_n[l] = nl;
    lev_d[l] = dd;
    for (var i: int = 1; i <= nl; i = i + 1) {
      var dv: float = dd;
      if (rank == size - 1 && i == nl) {
        dv = dd + ex;   // Galerkin boundary correction (globally-last row)
      }
      dva[off + i] = dv;
    }
    off = off + nl + 2;
    nl = nl / 2;
    var ob: float = 1.0 - dd / 4.0;
    dd = (1.5 * dd - 2.0) / ob;
    ex = 2.0 * ex + 1.0;
  }
  for (var i: int = 0; i < words; i = i + 1) {
    ua[i] = 0.0;
    fa[i] = 0.0;
    ra[i] = 0.0;
    ta[i] = 0.0;
  }
  for (var i: int = 1; i <= n; i = i + 1) {
    fa[i] = h2 * (1.0 + sin(3.14159265 * float(rank * n + i - 1) * h));
  }

  // ---- Solve phase: V(2,2) cycles to 1e-6 relative residual --------------
  acc[0] = residual(ua, fa, ra, dva, n, rank, size, sb, rb);
  mpi_allreduce_sum_f(acc, tot, 1);
  var r0: float = sqrt(tot[0]);

  var cyc: int = 0;
  var rn: float = r0;
  while (cyc < maxcyc && rn > r0 * 0.000001) {
    vcycle(0, nlev, ua, fa, ra, ta, dva, lev_off, lev_n, lev_d,
           rank, size, sb, rb);
    acc[0] = residual(ua, fa, ra, dva, n, rank, size, sb, rb);
    mpi_allreduce_sum_f(acc, tot, 1);
    rn = sqrt(tot[0]);
    if (rn != rn) {
      mpi_abort(3);
    }
    cyc = cyc + 1;
  }
  report_iters(cyc);

  // Acceptance flag (1 = reached the solver's own tolerance), then the
  // solution integral and sampled values.
  var okflag: float = 0.0;
  if (rn <= r0 * 0.000001) {
    okflag = 1.0;
  }
  output_f(okflag);
  acc[0] = 0.0;
  for (var i: int = 1; i <= n; i = i + 1) {
    acc[0] = acc[0] + ua[i];
  }
  mpi_allreduce_sum_f(acc, tot, 1);
  output_f(tot[0]);
  for (var i: int = 1; i <= n; i = i + 8) {
    output_f(ua[i]);
  }
}
)mc";

}  // namespace fprop::apps
