#include "app_sources.h"

namespace fprop::apps {

// The paper's Fig. 1 running example: iterative dense matrix-vector product
// b_i = A * x_i with x_{i+1} = b_i. A single bit flip in A contaminates
// 37.5% of the memory state and 100% of the output in three iterations.
const char* const kMatvecSource = R"mc(
fn main() {
  var n: int = 4;
  var a: float* = alloc_float(n * n);
  var x: float* = alloc_float(n);
  var b: float* = alloc_float(n);

  // A = [1 2 3 4; 4 2 3 1; 2 4 3 3; 1 1 2 6]  (Fig. 1)
  a[0] = 1.0;  a[1] = 2.0;  a[2] = 3.0;  a[3] = 4.0;
  a[4] = 4.0;  a[5] = 2.0;  a[6] = 3.0;  a[7] = 1.0;
  a[8] = 2.0;  a[9] = 4.0;  a[10] = 3.0; a[11] = 3.0;
  a[12] = 1.0; a[13] = 1.0; a[14] = 2.0; a[15] = 6.0;

  // x0 = [1 2 2 3]
  x[0] = 1.0; x[1] = 2.0; x[2] = 2.0; x[3] = 3.0;

  var iters: int = @ITERS@;
  for (var it: int = 0; it < iters; it = it + 1) {
    for (var i: int = 0; i < n; i = i + 1) {
      var s: float = 0.0;
      for (var j: int = 0; j < n; j = j + 1) {
        s = s + a[i * n + j] * x[j];
      }
      b[i] = s;
    }
    for (var i: int = 0; i < n; i = i + 1) {
      x[i] = b[i];
    }
  }

  for (var i: int = 0; i < n; i = i + 1) {
    output_f(b[i]);
  }
}
)mc";

}  // namespace fprop::apps
