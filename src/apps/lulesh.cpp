#include "app_sources.h"

namespace fprop::apps {

// LULESH proxy: explicit Lagrangian shock hydrodynamics on a 1D staggered
// grid solving a Sedov-like point-blast problem. Captures the traits the
// paper ties to LULESH's propagation profile: a time-step loop whose output
// state feeds the next step (staircase CML growth), halo exchange every step
// (immediate cross-rank spread, Fig. 8), and an internal energy-bound check
// that calls MPI_Abort — the paper's explanation for LULESH's crash-heavy,
// WO-light outcome mix.
const char* const kLuleshSource = R"mc(
fn exchange(e: float*, u: float*, n: int, rank: int, size: int,
            sl: float*, sr: float*, rl: float*, rr: float*) {
  // Ghost cells live at 0 and n+1; interior is 1..n. Sends are eager, so
  // everyone sends first and then receives (deadlock-free).
  if (rank > 0) {
    sl[0] = e[1];
    sl[1] = u[1];
    mpi_send_f(rank - 1, 1, sl, 2);
  }
  if (rank < size - 1) {
    sr[0] = e[n];
    sr[1] = u[n];
    mpi_send_f(rank + 1, 2, sr, 2);
  }
  if (rank > 0) {
    mpi_recv_f(rank - 1, 2, rl, 2);
    e[0] = rl[0];
    u[0] = rl[1];
  } else {
    e[0] = e[1];       // reflective wall
    u[0] = -u[1];
  }
  if (rank < size - 1) {
    mpi_recv_f(rank + 1, 1, rr, 2);
    e[n + 1] = rr[0];
    u[n + 1] = rr[1];
  } else {
    e[n + 1] = e[n];
    u[n + 1] = -u[n];
  }
}

fn main() {
  var rank: int = mpi_rank();
  var size: int = mpi_size();
  var n: int = @N@;
  var steps: int = @STEPS@;

  var e: float* = alloc_float(n + 2);   // specific internal energy
  var u: float* = alloc_float(n + 2);   // node velocity
  var p: float* = alloc_float(n + 2);   // pressure (EOS)
  var q: float* = alloc_float(n + 2);   // artificial viscosity
  var sl: float* = alloc_float(2);
  var sr: float* = alloc_float(2);
  var rl: float* = alloc_float(2);
  var rr: float* = alloc_float(2);
  var acc: float* = alloc_float(1);
  var tot: float* = alloc_float(1);

  // Sedov-like: smoothly varying background (real fields are heterogeneous;
  // a flat background would mask faults that land in zero gradients) with a
  // point energy deposition at the origin cell of rank 0.
  for (var i: int = 0; i <= n + 1; i = i + 1) {
    var g: float = float(rank * n + i);
    e[i] = 0.1 * (1.0 + 0.5 * sin(0.31 * g));
    u[i] = 0.01 * sin(0.73 * g);
    p[i] = 0.0;
    q[i] = 0.0;
  }
  if (rank == 0) {
    e[1] = 10.0;
  }

  var dt: float = 0.02;
  var gamma1: float = 0.4;   // (gamma - 1), ideal-gas EOS with rho = 1
  var csmax: float = 0.0;

  acc[0] = 0.0;
  for (var i: int = 1; i <= n; i = i + 1) {
    acc[0] = acc[0] + e[i];
  }
  mpi_allreduce_sum_f(acc, tot, 1);
  var e0: float = tot[0];

  for (var s: int = 0; s < steps; s = s + 1) {
    exchange(e, u, n, rank, size, sl, sr, rl, rr);
    // EOS + artificial viscosity (q is quadratic+linear in the velocity
    // jump on compression, zero in expansion — LULESH's q model).
    csmax = 0.0001;
    for (var i: int = 1; i <= n; i = i + 1) {
      p[i] = gamma1 * e[i];
      var du: float = fmin(u[i + 1] - u[i - 1], 0.0);
      var cs: float = sqrt(1.4 * fmax(p[i], 0.0001));
      q[i] = 2.0 * du * du - 0.5 * cs * du;
      // dtcourant/dthydro constraint: sound speed plus compression rate.
      csmax = fmax(csmax, cs + 2.0 * fabs(du));
    }
    // Courant-limited global time step (real LULESH reduces dtcourant over
    // all domains every step — the channel through which a single corrupted
    // cell contaminates every rank at once).
    acc[0] = csmax;
    mpi_allreduce_max_f(acc, tot, 1);
    dt = fmin(0.45 / tot[0], 0.3);   // CFL ~ 0.45
    p[0] = gamma1 * e[0];
    p[n + 1] = gamma1 * e[n + 1];
    q[0] = q[1];
    q[n + 1] = q[n];
    // Momentum: node acceleration from the total stress gradient.
    for (var i: int = 1; i <= n; i = i + 1) {
      u[i] = u[i] + dt * ((p[i - 1] + q[i - 1]) - (p[i + 1] + q[i + 1])) * 0.5;
    }
    // Energy: pdV + viscous work from the velocity divergence.
    for (var i: int = 1; i <= n; i = i + 1) {
      e[i] = e[i] - dt * (p[i] + q[i]) * (u[i + 1] - u[i - 1]) * 0.5;
      if (e[i] < 0.0001) {
        e[i] = 0.0001;
      }
    }
    // Internal check on the partial result: LULESH aborts via MPI_Abort
    // when the step energy leaves the admissible bounds (paper §4.2).
    acc[0] = 0.0;
    for (var i: int = 1; i <= n; i = i + 1) {
      acc[0] = acc[0] + e[i];
    }
    mpi_allreduce_sum_f(acc, tot, 1);
    if (tot[0] != tot[0]) {
      mpi_abort(1);
    }
    if (tot[0] > e0 * 4.0 + 10.0) {
      mpi_abort(1);
    }
    if (tot[0] < 0.0) {
      mpi_abort(1);
    }
  }

  output_f(tot[0]);
  var stride: int = n / 8;
  if (stride < 1) {
    stride = 1;
  }
  for (var i: int = 1; i <= n; i = i + stride) {
    output_f(e[i]);
    output_f(u[i]);
  }
}
)mc";

}  // namespace fprop::apps
