#include "app_sources.h"

namespace fprop::apps {

// miniFE proxy: finite-element assembly of a 1D steady-state conduction
// operator followed by an unpreconditioned conjugate-gradient solve, with
// dot products over MPI_Allreduce. Reproduces the paper's miniFE behaviors:
// an assembly-phase sanity check that aborts before solving when the
// operator is corrupted, prolonged executions when a corrupted state costs
// extra CG iterations (PEX), and non-convergence at the iteration cap (WO).
const char* const kMinifeSource = R"mc(
fn dot_all(a: float*, b: float*, n: int, acc: float*, tot: float*) -> float {
  acc[0] = 0.0;
  for (var i: int = 0; i < n; i = i + 1) {
    acc[0] = acc[0] + a[i] * b[i];
  }
  mpi_allreduce_sum_f(acc, tot, 1);
  return tot[0];
}

fn halo(p: float*, n: int, rank: int, size: int,
        sb: float*, rb: float*, gl: float*, gr: float*) {
  if (rank > 0) {
    sb[0] = p[0];
    mpi_send_f(rank - 1, 1, sb, 1);
  }
  if (rank < size - 1) {
    sb[0] = p[n - 1];
    mpi_send_f(rank + 1, 2, sb, 1);
  }
  gl[0] = 0.0;   // Dirichlet zero beyond the global boundary
  gr[0] = 0.0;
  if (rank > 0) {
    mpi_recv_f(rank - 1, 2, rb, 1);
    gl[0] = rb[0];
  }
  if (rank < size - 1) {
    mpi_recv_f(rank + 1, 1, rb, 1);
    gr[0] = rb[0];
  }
}

fn main() {
  var rank: int = mpi_rank();
  var size: int = mpi_size();
  var n: int = @NROWS@;
  var maxit: int = @MAXIT@;

  var diag: float* = alloc_float(n);
  var rhs: float* = alloc_float(n);
  var xs: float* = alloc_float(n);
  var r: float* = alloc_float(n);
  var p: float* = alloc_float(n);
  var q: float* = alloc_float(n);
  var sb: float* = alloc_float(1);
  var rb: float* = alloc_float(1);
  var gl: float* = alloc_float(1);
  var gr: float* = alloc_float(1);
  var acc: float* = alloc_float(1);
  var tot: float* = alloc_float(1);

  var ntot: int = n * size;
  var h: float = 1.0 / float(ntot + 1);
  var h2: float = h * h;

  // ---- Assembly: scatter element operators into the sparse system ------
  for (var i: int = 0; i < n; i = i + 1) {
    diag[i] = 0.0;
    rhs[i] = 0.0;
  }
  for (var i: int = 0; i < n; i = i + 1) {
    diag[i] = diag[i] + 1.0;   // left element contribution
    diag[i] = diag[i] + 1.0;   // right element contribution
    diag[i] = diag[i] + h2;    // SPD mass shift
    // Spatially varying source (a uniform rhs would make the CG vectors
    // element-wise identical and mask wrong-index faults).
    rhs[i] = rhs[i] + h2 * (1.0 + 0.5 * sin(3.0 * float(rank * n + i) * h));
  }
  // Assembly sanity check: abort before the solve phase if the operator
  // diverged (the paper's left-most miniFE WO case aborts here).
  var chk: float = dot_all(diag, diag, n, acc, tot);
  var want: float = float(ntot) * (2.0 + h2) * (2.0 + h2);
  if (fabs(chk - want) > 0.0001 * want) {
    mpi_abort(2);
  }

  // ---- Unpreconditioned CG ---------------------------------------------
  for (var i: int = 0; i < n; i = i + 1) {
    xs[i] = 0.0;
    r[i] = rhs[i];
    p[i] = rhs[i];
  }
  var rr: float = dot_all(r, r, n, acc, tot);
  var rr0: float = rr;
  var tol2: float = rr0 * 1e-10;
  var it: int = 0;
  while (it < maxit && rr > tol2) {
    halo(p, n, rank, size, sb, rb, gl, gr);
    for (var i: int = 0; i < n; i = i + 1) {
      var left: float = gl[0];
      if (i > 0) {
        left = p[i - 1];
      }
      var right: float = gr[0];
      if (i < n - 1) {
        right = p[i + 1];
      }
      q[i] = diag[i] * p[i] - left - right;
    }
    var pq: float = dot_all(p, q, n, acc, tot);
    if (pq <= 0.0) {
      break;   // operator lost positive-definiteness: give up
    }
    var alpha: float = rr / pq;
    for (var i: int = 0; i < n; i = i + 1) {
      xs[i] = xs[i] + alpha * p[i];
      r[i] = r[i] - alpha * q[i];
    }
    var rrn: float = dot_all(r, r, n, acc, tot);
    var beta: float = rrn / rr;
    rr = rrn;
    for (var i: int = 0; i < n; i = i + 1) {
      p[i] = r[i] + beta * p[i];
    }
    it = it + 1;
  }
  report_iters(it);

  // The app's own acceptance flag (1 = converged within its tolerance),
  // followed by the solution norm and sampled solution values. A run that
  // hits the iteration cap without converging reports failure -> classified
  // Wrong Output; a run that converges with extra iterations but the right
  // solution is a Prolonged Execution.
  var okflag: float = 0.0;
  if (rr <= tol2) {
    okflag = 1.0;
  }
  output_f(okflag);
  var nrm: float = dot_all(xs, xs, n, acc, tot);
  output_f(sqrt(nrm));
  for (var i: int = 0; i < n; i = i + 8) {
    output_f(xs[i]);
  }
}
)mc";

}  // namespace fprop::apps
