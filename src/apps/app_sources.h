#pragma once

// MiniC sources of the proxy applications (one symbol per app, defined in
// the per-app .cpp files). Internal to the apps library.

namespace fprop::apps {

extern const char* const kMatvecSource;
extern const char* const kLuleshSource;
extern const char* const kLammpsSource;
extern const char* const kMinifeSource;
extern const char* const kAmgSource;
extern const char* const kMcbSource;

}  // namespace fprop::apps
