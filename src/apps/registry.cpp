#include "fprop/apps/registry.h"

#include "app_sources.h"
#include "fprop/minic/compile.h"
#include "fprop/support/error.h"

namespace fprop::apps {

namespace {

std::vector<AppSpec> build_all() {
  std::vector<AppSpec> v;
  v.push_back({"matvec",
               "Fig. 1 iterative dense matrix-vector example",
               kMatvecSource,
               {{"ITERS", "3"}},
               1});
  v.push_back({"lulesh",
               "1D Lagrangian shock hydrodynamics (Sedov-like), energy-bound "
               "abort check",
               kLuleshSource,
               {{"N", "24"}, {"STEPS", "96"}},
               8});
  v.push_back({"amg",
               "multilevel algebraic multigrid V-cycle with Init/Setup/Solve phases",
               kAmgSource,
               {{"N", "128"}, {"MAXCYC", "30"}},
               8});
  v.push_back({"minife",
               "FE assembly + unpreconditioned CG with residual tolerance",
               kMinifeSource,
               {{"NROWS", "32"}, {"MAXIT", "600"}},
               8});
  v.push_back({"lammps",
               "molecular dynamics of a bonded atom chain with halo atoms",
               kLammpsSource,
               {{"NP", "32"}, {"STEPS", "150"}, {"TABN", "64"}},
               8});
  v.push_back({"mcb",
               "Monte Carlo particle transport with cross-domain particle "
               "exchange",
               kMcbSource,
               {{"NP", "32"}, {"STEPS", "48"}},
               8});
  return v;
}

const std::vector<AppSpec>& all_apps() {
  static const std::vector<AppSpec> apps = build_all();
  return apps;
}

}  // namespace

const std::vector<AppSpec>& paper_apps() {
  // Fig. 6 order: LULESH, AMG2013, miniFE, LAMMPS, MCB.
  static const std::vector<AppSpec> apps = {
      get_app("lulesh"), get_app("amg"), get_app("minife"),
      get_app("lammps"), get_app("mcb")};
  return apps;
}

const AppSpec& get_app(std::string_view name) {
  for (const auto& a : all_apps()) {
    if (a.name == name) return a;
  }
  throw Error("unknown application: " + std::string(name));
}

std::string instantiate(const AppSpec& spec,
                        const std::map<std::string, std::string>& overrides) {
  std::string src = spec.source;
  auto replace_all_occurrences = [&src](const std::string& key,
                                        const std::string& value) {
    const std::string token = "@" + key + "@";
    std::size_t pos = 0;
    while ((pos = src.find(token, pos)) != std::string::npos) {
      src.replace(pos, token.size(), value);
      pos += value.size();
    }
  };
  for (const auto& [k, v] : overrides) replace_all_occurrences(k, v);
  for (const auto& [k, v] : spec.defaults) replace_all_occurrences(k, v);
  const std::size_t leftover = src.find('@');
  if (leftover != std::string::npos) {
    throw Error("unresolved placeholder in app '" + spec.name +
                "' near: " + src.substr(leftover, 24));
  }
  return src;
}

ir::Module compile_app(const AppSpec& spec,
                       const std::map<std::string, std::string>& overrides) {
  return minic::compile(instantiate(spec, overrides));
}

}  // namespace fprop::apps
