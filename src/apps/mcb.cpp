#include "app_sources.h"

namespace fprop::apps {

// MCB proxy: Monte Carlo particle transport over a domain-decomposed 1D
// space. Particles are created, stream with random scattering, are tallied
// and absorbed; those crossing a domain boundary are buffered and shipped to
// the neighbor rank (count header + packed payload), exactly the paper's MCB
// communication pattern. Monte Carlo control flow consumes per-rank random
// numbers, so state corruption perturbs everything downstream — the paper's
// most fault-propagation-prone application.
const char* const kMcbSource = R"mc(
fn main() {
  var rank: int = mpi_rank();
  var size: int = mpi_size();
  var np: int = @NP@;
  var steps: int = @STEPS@;
  var cap: int = np * 2;
  var tb: int = 64;   // tally bins per domain

  var x: float* = alloc_float(cap);    // particle positions
  var w: float* = alloc_float(cap);    // particle weights
  var nx: float* = alloc_float(cap);   // staging (compaction)
  var nw: float* = alloc_float(cap);
  var tally: float* = alloc_float(tb);
  var em: float* = alloc_float(tb);    // material energy (IMC-style coupling)
  var sbl: float* = alloc_float(cap * 2 + 1);   // to-left send buffer
  var sbr: float* = alloc_float(cap * 2 + 1);   // to-right send buffer
  var rbuf: float* = alloc_float(cap * 2 + 1);
  var acc: float* = alloc_float(1);
  var tot: float* = alloc_float(1);

  var lo: float = float(rank);
  var hi: float = lo + 1.0;
  var n: int = np;
  for (var i: int = 0; i < np; i = i + 1) {
    x[i] = lo + (float(i) + 0.5) / float(np);
    // Per-particle source weights (identical weights would make particles
    // of the same generation interchangeable and mask index faults).
    w[i] = 1.0 + 0.5 * rand01();
  }
  for (var i: int = 0; i < tb; i = i + 1) {
    tally[i] = 0.0;
    em[i] = 0.5;
  }

  for (var s: int = 0; s < steps; s = s + 1) {
    var kl: int = 0;   // emigrants to the left
    var kr: int = 0;   // emigrants to the right
    var kk: int = 0;   // survivors staying home
    for (var i: int = 0; i < n; i = i + 1) {
      // Stream with isotropic (here: binary) scattering.
      var dir: float = 1.0;
      if (rand01() < 0.5) {
        dir = -1.0;
      }
      var xi: float = x[i] + dir * 0.07;
      // Tally into the clamped bin (real tallies are unconditional; a bin
      // index perturbed by a fault lands in a neighboring bin).
      var bin: int = imin(imax(int((xi - lo) / (hi - lo) * float(tb)), 0),
                          tb - 1);
      // IMC-style matter coupling: absorption depends on the local material
      // energy, and the absorbed energy is re-deposited into it. This is
      // how faults propagate from one particle to every other particle that
      // later crosses the contaminated region (the paper attributes MCB's
      // top propagation speed to exactly this).
      var ab: float = fmin(0.85 + 0.18 * em[bin], 0.999);
      var wi: float = w[i] * ab;
      tally[bin] = tally[bin] + wi;
      em[bin] = em[bin] + 0.10 * (w[i] - wi) + 0.001 * wi;
      if (wi < 0.02) {
        continue;   // particle destroyed
      }
      if (xi < lo) {
        if (rank > 0) {
          sbl[1 + kl * 2] = xi;
          sbl[2 + kl * 2] = wi;
          kl = kl + 1;
        } else {
          if (kk < cap) {
            nx[kk] = lo + (lo - xi);   // reflect at the global boundary
            nw[kk] = wi;
            kk = kk + 1;
          }
        }
      } else if (xi >= hi) {
        if (rank < size - 1) {
          sbr[1 + kr * 2] = xi;
          sbr[2 + kr * 2] = wi;
          kr = kr + 1;
        } else {
          if (kk < cap) {
            nx[kk] = hi - (xi - hi);
            nw[kk] = wi;
            kk = kk + 1;
          }
        }
      } else {
        if (kk < cap) {
          nx[kk] = xi;
          nw[kk] = wi;
          kk = kk + 1;
        }
      }
    }

    // Exchange emigrants: word 0 carries the count, then (x, w) pairs.
    if (rank > 0) {
      sbl[0] = float(kl);
      mpi_send_f(rank - 1, 1, sbl, 1 + kl * 2);
    }
    if (rank < size - 1) {
      sbr[0] = float(kr);
      mpi_send_f(rank + 1, 2, sbr, 1 + kr * 2);
    }
    if (rank > 0) {
      mpi_recv_f(rank - 1, 2, rbuf, cap * 2 + 1);
      var kin: int = int(rbuf[0]);
      for (var i: int = 0; i < kin; i = i + 1) {
        if (kk < cap) {
          nx[kk] = rbuf[1 + i * 2];
          nw[kk] = rbuf[2 + i * 2];
          kk = kk + 1;
        }
      }
    }
    if (rank < size - 1) {
      mpi_recv_f(rank + 1, 1, rbuf, cap * 2 + 1);
      var kin: int = int(rbuf[0]);
      for (var i: int = 0; i < kin; i = i + 1) {
        if (kk < cap) {
          nx[kk] = rbuf[1 + i * 2];
          nw[kk] = rbuf[2 + i * 2];
          kk = kk + 1;
        }
      }
    }

    n = kk;
    for (var i: int = 0; i < n; i = i + 1) {
      x[i] = nx[i];
      w[i] = nw[i];
    }
  }

  // Global tally and the local particle census as the result.
  acc[0] = 0.0;
  for (var i: int = 0; i < tb; i = i + 1) {
    acc[0] = acc[0] + tally[i];
  }
  mpi_allreduce_sum_f(acc, tot, 1);
  output_f(tot[0]);
  for (var i: int = 0; i < tb; i = i + 2) {
    output_f(tally[i]);
  }
  output_i(n);
}
)mc";

}  // namespace fprop::apps
