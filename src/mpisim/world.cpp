#include "fprop/mpisim/world.h"

#include <algorithm>
#include <cmath>

#include "fprop/support/error.h"

namespace fprop::mpisim {

namespace {
/// Upper bound on a single message (words); a corrupted count beyond this is
/// rejected as an MPI argument error instead of exhausting host memory.
constexpr std::int64_t kMaxMessageWords = 1 << 22;
}  // namespace

World::World(const ir::Module& module, WorldConfig config)
    : module_(&module), config_(config) {
  FPROP_CHECK_MSG(config_.nranks > 0, "world needs at least one rank");
  fpms_.reserve(config_.nranks);
  ranks_.reserve(config_.nranks);
  for (std::uint32_t r = 0; r < config_.nranks; ++r) {
    fpms_.push_back(config_.enable_fpm
                        ? std::make_unique<fpm::FpmRuntime>(
                              config_.fpm_sample_period)
                        : nullptr);
    if (fpms_.back() != nullptr) {
      fpms_.back()->set_recorder(config_.recorder, r);
    }
    auto interp = std::make_unique<vm::Interp>(module, r, config_.interp);
    interp->set_mpi_hook(this);
    interp->set_fpm(fpms_.back().get());
    interp->set_recorder(config_.recorder);
    interp->set_bytecode(config_.bytecode);
    ranks_.push_back(std::move(interp));
  }
  mailboxes_.resize(config_.nranks);
  requests_.resize(config_.nranks);
  coll_epoch_.assign(config_.nranks, 0);
  first_contaminated_.assign(config_.nranks, std::nullopt);
  sent_msgs_.assign(config_.nranks, 0);
}

World::~World() = default;

std::uint32_t World::nranks() const noexcept { return config_.nranks; }

vm::Interp& World::rank(std::uint32_t r) { return *ranks_.at(r); }

fpm::FpmRuntime* World::fpm(std::uint32_t r) { return fpms_.at(r).get(); }

std::int64_t World::rank_count() const { return config_.nranks; }

void World::set_inject_hook(vm::InjectHook* hook) {
  for (auto& r : ranks_) r->set_inject_hook(hook);
}

void World::install_message_header(std::uint32_t r, std::uint64_t buf,
                                   std::uint64_t count_words,
                                   const fpm::MessageHeader& header,
                                   bool malformed) {
  auto* f = fpms_[r].get();
  if (f == nullptr) return;
  const fpm::InstallResult res =
      fpm::install_header(f->shadow(), buf, count_words, header);
  if (res.quarantined > 0 || malformed) {
    ++headers_quarantined_;
    header_records_quarantined_ += res.quarantined;
    FPROP_OBS_EMIT(config_.recorder, obs::EventKind::HeaderQuarantined, r,
                   ranks_[r]->cycles(), res.quarantined, malformed ? 1 : 0,
                   res.installed);
  }
  // The install heals the whole range then re-records the header's words,
  // bypassing on_store — resync the receiver's CML track.
  FPROP_OBS_EMIT(config_.recorder, obs::EventKind::CmlSample, r,
                 ranks_[r]->cycles(), 0, f->shadow().size());
}

bool World::read_payload(vm::Interp& src_rank, std::uint64_t buf,
                         std::int64_t count,
                         std::vector<std::uint64_t>& out) {
  out.clear();
  out.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    std::uint64_t v = 0;
    if (!src_rank.memory().load(buf + 8 * static_cast<std::uint64_t>(i), v)) {
      return false;
    }
    out.push_back(v);
  }
  return true;
}

bool World::write_payload(vm::Interp& dst_rank, std::uint64_t buf,
                          const std::vector<std::uint64_t>& payload) {
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (!dst_rank.memory().store(buf + 8 * i, payload[i])) return false;
  }
  return true;
}

vm::MpiResult World::send_f(vm::Interp& self, std::int64_t dest,
                            std::int64_t tag, std::uint64_t buf,
                            std::int64_t count) {
  if (dest < 0 || dest >= rank_count() || count < 0 ||
      count > kMaxMessageWords) {
    return vm::MpiResult::Fault;
  }
  Message msg;
  msg.src = self.rank();
  msg.tag = tag;
  if (!read_payload(self, buf, count, msg.payload)) {
    return vm::MpiResult::Fault;
  }
  if (auto* f = fpms_[self.rank()].get()) {
    msg.header = fpm::build_header(f->shadow(), buf,
                                   static_cast<std::uint64_t>(count));
  }
  const std::uint64_t msg_index = sent_msgs_[self.rank()]++;
  if (msg_hook_ != nullptr) {
    // In-flight corruption window: the wire image of the header (and the
    // payload) between build_header and delivery. Only taken when a plan
    // actually targets messages, so the common path never serializes.
    std::vector<std::uint64_t> wire = fpm::serialize_header(msg.header);
    msg_hook_->on_message(self.rank(), msg_index, self.cycles(), wire,
                          msg.payload);
    msg.header_malformed = !fpm::deserialize_header(wire, msg.header);
  }
  FPROP_OBS_EMIT(config_.recorder, obs::EventKind::MsgSend, self.rank(),
                 self.cycles(), static_cast<std::uint64_t>(dest),
                 static_cast<std::uint64_t>(count),
                 fpm::header_wire_words(msg.header));
  mailboxes_[static_cast<std::size_t>(dest)].push_back(std::move(msg));
  return vm::MpiResult::Done;  // eager buffered send never blocks
}

vm::MpiResult World::recv_f(vm::Interp& self, std::int64_t src,
                            std::int64_t tag, std::uint64_t buf,
                            std::int64_t count) {
  if ((src != kAnySource && (src < 0 || src >= rank_count())) || count < 0) {
    return vm::MpiResult::Fault;
  }
  auto& box = mailboxes_[self.rank()];
  auto it = std::find_if(box.begin(), box.end(), [&](const Message& m) {
    return (src == kAnySource || m.src == src) &&
           (tag == kAnyTag || m.tag == tag);
  });
  if (it == box.end()) return vm::MpiResult::Block;
  if (static_cast<std::int64_t>(it->payload.size()) > count) {
    return vm::MpiResult::Fault;  // truncation error
  }
  if (!write_payload(self, buf, it->payload)) return vm::MpiResult::Fault;
  install_message_header(self.rank(), buf, it->payload.size(), it->header,
                         it->header_malformed);
  FPROP_OBS_EMIT(config_.recorder, obs::EventKind::MsgRecv, self.rank(),
                 self.cycles(), static_cast<std::uint64_t>(it->src),
                 it->payload.size(), fpm::header_wire_words(it->header));
  box.erase(it);
  return vm::MpiResult::Done;
}

vm::MpiResult World::isend_f(vm::Interp& self, std::int64_t dest,
                             std::int64_t tag, std::uint64_t buf,
                             std::int64_t count, std::int64_t* request) {
  // Eager buffered semantics: the payload (and its contamination header)
  // is captured at the isend, so the request completes immediately.
  const vm::MpiResult r = send_f(self, dest, tag, buf, count);
  if (r != vm::MpiResult::Done) return r;
  Request req;
  req.done = true;
  requests_[self.rank()].push_back(req);
  *request = static_cast<std::int64_t>(requests_[self.rank()].size());
  return vm::MpiResult::Done;
}

vm::MpiResult World::irecv_f(vm::Interp& self, std::int64_t src,
                             std::int64_t tag, std::uint64_t buf,
                             std::int64_t count, std::int64_t* request) {
  if ((src != kAnySource && (src < 0 || src >= rank_count())) || count < 0) {
    return vm::MpiResult::Fault;
  }
  Request req;
  req.is_recv = true;
  req.src = src;
  req.tag = tag;
  req.buf = buf;
  req.count = count;
  requests_[self.rank()].push_back(req);
  *request = static_cast<std::int64_t>(requests_[self.rank()].size());
  return vm::MpiResult::Done;
}

vm::MpiResult World::wait(vm::Interp& self, std::int64_t request) {
  auto& table = requests_[self.rank()];
  if (request <= 0 || request > static_cast<std::int64_t>(table.size())) {
    return vm::MpiResult::Fault;  // corrupted/forged handle
  }
  Request& req = table[static_cast<std::size_t>(request - 1)];
  if (req.done) return vm::MpiResult::Done;  // waiting twice is benign
  // Pending receive: complete it with ordinary matching semantics.
  const vm::MpiResult r = recv_f(self, req.src, req.tag, req.buf, req.count);
  if (r == vm::MpiResult::Done) req.done = true;
  return r;
}

vm::MpiResult World::allreduce_f(vm::Interp& self, bool is_max,
                                 std::uint64_t sendbuf, std::uint64_t recvbuf,
                                 std::int64_t count) {
  CollArgs args;
  args.a = sendbuf;
  args.b = recvbuf;
  args.count = count;
  return join_collective(
      self, is_max ? CollKind::AllreduceMax : CollKind::AllreduceSum, args);
}

vm::MpiResult World::bcast_f(vm::Interp& self, std::int64_t root,
                             std::uint64_t buf, std::int64_t count) {
  CollArgs args;
  args.a = buf;
  args.count = count;
  args.root = root;
  return join_collective(self, CollKind::Bcast, args);
}

vm::MpiResult World::barrier(vm::Interp& self) {
  return join_collective(self, CollKind::Barrier, {});
}

void World::abort(vm::Interp& self, std::int64_t /*code*/) {
  aborted_ = true;
  abort_rank_ = self.rank();
}

vm::MpiResult World::join_collective(vm::Interp& self, CollKind kind,
                                     const CollArgs& args) {
  const std::uint32_t r = self.rank();
  const std::uint64_t epoch = coll_epoch_[r];
  FPROP_CHECK(epoch >= coll_base_epoch_);
  const std::size_t idx = epoch - coll_base_epoch_;
  while (pending_colls_.size() <= idx) {
    Collective c;
    c.arrived.assign(config_.nranks, false);
    c.left.assign(config_.nranks, false);
    c.args.resize(config_.nranks);
    pending_colls_.push_back(std::move(c));
  }
  Collective& coll = pending_colls_[idx];

  if (!coll.arrived[r]) {
    if (coll.kind == CollKind::None) {
      coll.kind = kind;
    } else if (coll.kind != kind) {
      // Divergent control flow made ranks disagree on the collective — a
      // real MPI job would error out or hang here.
      coll.failed = true;
    }
    if (!coll.failed && kind != CollKind::Barrier && coll.arrived_count > 0) {
      // Find any prior participant's count for the consistency check.
      for (std::uint32_t p = 0; p < config_.nranks; ++p) {
        if (coll.arrived[p]) {
          if (coll.args[p].count != args.count ||
              (kind == CollKind::Bcast && coll.args[p].root != args.root)) {
            coll.failed = true;
          }
          break;
        }
      }
    }
    coll.arrived[r] = true;
    coll.args[r] = args;
    ++coll.arrived_count;
    if (!coll.failed && coll.arrived_count == config_.nranks) {
      if (execute_collective(coll)) {
        coll.executed = true;
      } else {
        coll.failed = true;
      }
    }
  }

  if (coll.failed) return vm::MpiResult::Fault;
  if (!coll.executed) return vm::MpiResult::Block;

  // Completed: this rank leaves the collective.
  FPROP_CHECK(!coll.left[r]);
  coll.left[r] = true;
  ++coll.left_count;
  ++coll_epoch_[r];
  while (!pending_colls_.empty() &&
         pending_colls_.front().left_count == config_.nranks) {
    pending_colls_.pop_front();
    ++coll_base_epoch_;
  }
  return vm::MpiResult::Done;
}

bool World::execute_collective(Collective& coll) {
  switch (coll.kind) {
    case CollKind::Barrier:
      return true;
    case CollKind::AllreduceSum:
      return exec_allreduce(coll, false);
    case CollKind::AllreduceMax:
      return exec_allreduce(coll, true);
    case CollKind::Bcast:
      return exec_bcast(coll);
    case CollKind::None:
      return false;
  }
  return false;
}

bool World::exec_allreduce(Collective& coll, bool is_max) {
  const std::int64_t count = coll.args[0].count;
  if (count < 0 || count > kMaxMessageWords) return false;
  const auto n = static_cast<std::size_t>(count);
  std::vector<std::uint64_t> primary(n);
  std::vector<std::uint64_t> pristine(n);

  for (std::size_t i = 0; i < n; ++i) {
    double acc_p = is_max ? -HUGE_VAL : 0.0;
    double acc_q = is_max ? -HUGE_VAL : 0.0;
    for (std::uint32_t r = 0; r < config_.nranks; ++r) {
      const std::uint64_t addr = coll.args[r].a + 8 * i;
      std::uint64_t bits = 0;
      if (!ranks_[r]->memory().load(addr, bits)) return false;
      std::uint64_t pbits = bits;
      if (auto* f = fpms_[r].get()) pbits = f->shadow().pristine_or(addr, bits);
      const double v = vm::double_of(bits);
      const double q = vm::double_of(pbits);
      if (is_max) {
        acc_p = std::fmax(acc_p, v);
        acc_q = std::fmax(acc_q, q);
      } else {
        acc_p += v;
        acc_q += q;
      }
    }
    primary[i] = vm::bits_of(acc_p);
    pristine[i] = vm::bits_of(acc_q);
  }

  for (std::uint32_t r = 0; r < config_.nranks; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t addr = coll.args[r].b + 8 * i;
      if (!ranks_[r]->memory().store(addr, primary[i])) return false;
      if (auto* f = fpms_[r].get()) {
        if (primary[i] != pristine[i]) {
          f->shadow().record(addr, pristine[i]);
        } else {
          f->shadow().heal(addr);  // single probe; no-op when absent
        }
      }
    }
    if (auto* f = fpms_[r].get()) {
      // Reduction results mutate every participant's table outside
      // on_store — resync each rank's CML track.
      FPROP_OBS_EMIT(config_.recorder, obs::EventKind::CmlSample, r,
                     ranks_[r]->cycles(), 0, f->shadow().size());
    }
  }
  return true;
}

bool World::exec_bcast(Collective& coll) {
  const std::int64_t root = coll.args[0].root;
  const std::int64_t count = coll.args[0].count;
  if (root < 0 || root >= rank_count() || count < 0 ||
      count > kMaxMessageWords) {
    return false;
  }
  auto& root_rank = *ranks_[static_cast<std::size_t>(root)];
  std::vector<std::uint64_t> payload;
  if (!read_payload(root_rank, coll.args[static_cast<std::size_t>(root)].a,
                    count, payload)) {
    return false;
  }
  fpm::MessageHeader header;
  if (auto* f = fpms_[static_cast<std::size_t>(root)].get()) {
    header = fpm::build_header(f->shadow(),
                               coll.args[static_cast<std::size_t>(root)].a,
                               static_cast<std::uint64_t>(count));
  }
  for (std::uint32_t r = 0; r < config_.nranks; ++r) {
    if (static_cast<std::int64_t>(r) == root) continue;
    if (!write_payload(*ranks_[r], coll.args[r].a, payload)) return false;
    install_message_header(r, coll.args[r].a, payload.size(), header,
                           /*malformed=*/false);
  }
  return true;
}

void World::note_contamination() {
  std::uint64_t total_cml = 0;
  for (std::uint32_t r = 0; r < config_.nranks; ++r) {
    if (fpms_[r] == nullptr) continue;
    const std::size_t cml = fpms_[r]->shadow().size();
    total_cml += cml;
    if (!first_contaminated_[r].has_value() && cml > 0) {
      first_contaminated_[r] = global_clock_;
      FPROP_OBS_EMIT(config_.recorder, obs::EventKind::RankContaminated,
                     obs::kJobScope, global_clock_, r);
    }
  }
  if (config_.global_sample_period != 0 &&
      global_clock_ >= next_global_sample_) {
    global_trace_.push_back({global_clock_, total_cml});
    next_global_sample_ = global_clock_ + config_.global_sample_period;
  }
}

void World::teardown(std::uint32_t offender, vm::Trap cause) {
  for (std::uint32_t r = 0; r < config_.nranks; ++r) {
    if (r == offender) continue;
    ranks_[r]->force_trap(cause);
  }
}

void World::kill_job(std::uint32_t offender, vm::Trap cause) {
  teardown(offender, cause);
}

void World::declare_deadlock() {
  for (auto& rk : ranks_) rk->force_trap(vm::Trap::Deadlock);
}

std::uint64_t World::total_cml() const {
  std::uint64_t total = 0;
  for (const auto& f : fpms_) {
    if (f != nullptr) total += f->shadow().size();
  }
  return total;
}

World::StepStatus World::sweep() {
  bool any_live = false;
  bool progress = false;
  std::optional<std::uint32_t> trapped;

  for (std::uint32_t r = 0; r < config_.nranks; ++r) {
    auto& rk = *ranks_[r];
    if (rk.state() == vm::RunState::Done ||
        rk.state() == vm::RunState::Trapped) {
      continue;
    }
    any_live = true;
    const std::uint64_t c0 = rk.cycles();
    rk.run(config_.slice);
    const std::uint64_t dc = rk.cycles() - c0;
    global_clock_ += dc;
    if (dc > 0) progress = true;
    note_contamination();
    if (rk.state() == vm::RunState::Trapped) {
      trapped = r;
      break;
    }
  }

  if (trapped.has_value()) {
    trapped_rank_ = *trapped;
    return StepStatus::Trapped;
  }
  if (!any_live) return StepStatus::Done;
  if (!progress) {
    // Full sweep with zero executed instructions: nothing can unblock the
    // remaining ranks — the job is deadlocked (e.g. a fault diverged one
    // rank past a matching receive).
    return StepStatus::Deadlocked;
  }
  return StepStatus::Running;
}

JobResult World::run() {
  for (;;) {
    const StepStatus s = sweep();
    if (s == StepStatus::Running) continue;
    if (s == StepStatus::Trapped) {
      kill_job(trapped_rank_, vm::Trap::Killed);
    } else if (s == StepStatus::Deadlocked) {
      declare_deadlock();
    }
    break;
  }
  return collect();
}

World::Checkpoint World::checkpoint() const {
  Checkpoint c;
  c.ranks.reserve(config_.nranks);
  c.fpms.reserve(config_.nranks);
  for (std::uint32_t r = 0; r < config_.nranks; ++r) {
    c.ranks.push_back(ranks_[r]->snapshot());
    if (fpms_[r] != nullptr) {
      c.fpms.push_back(fpms_[r]->snapshot());
    } else {
      c.fpms.push_back(std::nullopt);
    }
  }
  c.mailboxes = mailboxes_;
  c.requests = requests_;
  c.coll_epoch = coll_epoch_;
  c.pending_colls = pending_colls_;
  c.coll_base_epoch = coll_base_epoch_;
  c.aborted = aborted_;
  c.abort_rank = abort_rank_;
  c.global_clock = global_clock_;
  c.first_contaminated = first_contaminated_;
  c.global_trace = global_trace_;
  c.next_global_sample = next_global_sample_;
  c.sent_msgs = sent_msgs_;
  c.headers_quarantined = headers_quarantined_;
  c.header_records_quarantined = header_records_quarantined_;
  return c;
}

void World::restore(const Checkpoint& ckpt) {
  FPROP_CHECK_MSG(ckpt.ranks.size() == config_.nranks,
                  "checkpoint rank count mismatch");
  for (std::uint32_t r = 0; r < config_.nranks; ++r) {
    ranks_[r]->restore(ckpt.ranks[r]);
    if (fpms_[r] != nullptr && ckpt.fpms[r].has_value()) {
      fpms_[r]->restore(*ckpt.fpms[r]);
    }
  }
  mailboxes_ = ckpt.mailboxes;
  requests_ = ckpt.requests;
  coll_epoch_ = ckpt.coll_epoch;
  pending_colls_ = ckpt.pending_colls;
  coll_base_epoch_ = ckpt.coll_base_epoch;
  aborted_ = ckpt.aborted;
  abort_rank_ = ckpt.abort_rank;
  global_clock_ = ckpt.global_clock;
  first_contaminated_ = ckpt.first_contaminated;
  global_trace_ = ckpt.global_trace;
  next_global_sample_ = ckpt.next_global_sample;
  sent_msgs_ = ckpt.sent_msgs;
  headers_quarantined_ = ckpt.headers_quarantined;
  header_records_quarantined_ = ckpt.header_records_quarantined;
}

bool World::state_converged(
    const Checkpoint& golden,
    const std::vector<std::vector<std::uint64_t>>& golden_page_hashes) const {
  // Clock first: the probe only makes sense against the golden rung captured
  // at exactly this sweep boundary (equal clock => equal scheduling future).
  if (global_clock_ != golden.global_clock ||
      golden.ranks.size() != config_.nranks ||
      golden_page_hashes.size() != config_.nranks) {
    return false;
  }
  if (aborted_ != golden.aborted ||
      (aborted_ && abort_rank_ != golden.abort_rank)) {
    return false;
  }
  const auto same_message = [](const Message& a, const Message& b) {
    if (a.src != b.src || a.tag != b.tag || a.payload != b.payload ||
        a.header_malformed != b.header_malformed ||
        a.header.records.size() != b.header.records.size()) {
      return false;
    }
    for (std::size_t i = 0; i < a.header.records.size(); ++i) {
      if (a.header.records[i].displacement_words !=
              b.header.records[i].displacement_words ||
          a.header.records[i].pristine_bits !=
              b.header.records[i].pristine_bits) {
        return false;
      }
    }
    return true;
  };
  const auto same_request = [](const Request& a, const Request& b) {
    return a.is_recv == b.is_recv && a.done == b.done && a.src == b.src &&
           a.tag == b.tag && a.buf == b.buf && a.count == b.count;
  };
  const auto same_collective = [](const Collective& a, const Collective& b) {
    if (a.kind != b.kind || a.arrived != b.arrived || a.left != b.left ||
        a.arrived_count != b.arrived_count || a.left_count != b.left_count ||
        a.executed != b.executed || a.failed != b.failed ||
        a.args.size() != b.args.size()) {
      return false;
    }
    for (std::size_t i = 0; i < a.args.size(); ++i) {
      if (a.args[i].a != b.args[i].a || a.args[i].b != b.args[i].b ||
          a.args[i].count != b.args[i].count ||
          a.args[i].root != b.args[i].root) {
        return false;
      }
    }
    return true;
  };
  // Shadow tables must be empty on BOTH sides: the golden run never records
  // contamination, and a trial with live shadow entries has live corruption
  // (or pending pristine bookkeeping) that the golden future would not heal.
  for (std::uint32_t r = 0; r < config_.nranks; ++r) {
    if (fpms_[r] != nullptr && !fpms_[r]->shadow().empty()) return false;
    if (golden.fpms[r].has_value() && !golden.fpms[r]->shadow.empty()) {
      return false;
    }
  }
  for (std::uint32_t r = 0; r < config_.nranks; ++r) {
    if (!ranks_[r]->equals_snapshot(golden.ranks[r], golden_page_hashes[r])) {
      return false;
    }
  }
  // Transport state: in-flight messages, posted requests, collective epochs.
  for (std::uint32_t r = 0; r < config_.nranks; ++r) {
    const auto& box = mailboxes_[r];
    const auto& gbox = golden.mailboxes[r];
    if (box.size() != gbox.size()) return false;
    for (std::size_t i = 0; i < box.size(); ++i) {
      if (!same_message(box[i], gbox[i])) return false;
    }
    const auto& reqs = requests_[r];
    const auto& greqs = golden.requests[r];
    if (reqs.size() != greqs.size()) return false;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (!same_request(reqs[i], greqs[i])) return false;
    }
  }
  if (coll_epoch_ != golden.coll_epoch ||
      coll_base_epoch_ != golden.coll_base_epoch ||
      pending_colls_.size() != golden.pending_colls.size()) {
    return false;
  }
  for (std::size_t i = 0; i < pending_colls_.size(); ++i) {
    if (!same_collective(pending_colls_[i], golden.pending_colls[i])) {
      return false;
    }
  }
  // Everything the comparison skips is observational: global_trace_ /
  // next_global_sample_ (reporting only), first_contaminated_ and the
  // quarantine/send counters (monotone statistics that the identical future
  // can only leave unchanged — the golden suffix sends the same messages and
  // contaminates nothing). The caller reads the trial-side values when
  // synthesizing the result, so nothing is lost by not comparing them.
  return true;
}

std::uint64_t World::Checkpoint::approx_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& r : ranks) {
    bytes += r.memory.words * 8;
    for (const auto& fr : r.frames) {
      bytes += fr.regs.size() * 8 + fr.taint.size();
    }
    bytes += r.outputs.size() * 8;
  }
  for (const auto& f : fpms) {
    if (!f.has_value()) continue;
    bytes += f->shadow.size() * 16;  // live (addr, pristine) pairs
    bytes += f->trace.size() * 16;
  }
  for (const auto& box : mailboxes) {
    for (const auto& m : box) {
      bytes += m.payload.size() * 8 + m.header.count() * 16;
    }
  }
  for (const auto& table : requests) bytes += table.size() * sizeof(Request);
  bytes += global_trace.size() * 16;
  return bytes;
}

JobResult World::collect() {
  if (config_.global_sample_period != 0) {
    global_trace_.push_back({global_clock_, total_cml()});
  }

  JobResult result;
  result.ranks.resize(config_.nranks);
  result.global_cycles = global_clock_;
  for (std::uint32_t r = 0; r < config_.nranks; ++r) {
    auto& rk = *ranks_[r];
    RankResult& rr = result.ranks[r];
    rr.state = rk.state();
    rr.trap = rk.trap();
    rr.cycles = rk.cycles();
    rr.outputs = rk.outputs();
    rr.reported_iters = rk.reported_iters();
    rr.allocated_words = rk.memory().allocated_words();
    if (auto* f = fpms_[r].get()) {
      rr.cml_final = f->shadow().size();
      rr.cml_peak = f->shadow().peak();
    }
    rr.first_contaminated_at = first_contaminated_[r];
    result.max_rank_cycles = std::max(result.max_rank_cycles, rr.cycles);
    if (rr.state == vm::RunState::Trapped && rr.trap != vm::Trap::Killed &&
        !result.crashed) {
      result.crashed = true;
      result.first_trap = rr.trap;
      result.first_trap_rank = r;
    }
  }
  // If only Killed traps exist (offender raced), still mark crashed.
  if (!result.crashed) {
    for (std::uint32_t r = 0; r < config_.nranks; ++r) {
      if (result.ranks[r].state == vm::RunState::Trapped) {
        result.crashed = true;
        result.first_trap = result.ranks[r].trap;
        result.first_trap_rank = r;
        break;
      }
    }
  }
  return result;
}

std::vector<double> JobResult::outputs() const {
  std::vector<double> all;
  for (const auto& r : ranks) {
    all.insert(all.end(), r.outputs.begin(), r.outputs.end());
  }
  return all;
}

std::uint64_t JobResult::total_cml_final() const {
  std::uint64_t n = 0;
  for (const auto& r : ranks) n += r.cml_final;
  return n;
}

std::uint64_t JobResult::total_cml_peak() const {
  std::uint64_t n = 0;
  for (const auto& r : ranks) n += r.cml_peak;
  return n;
}

std::uint64_t JobResult::total_allocated_words() const {
  std::uint64_t n = 0;
  for (const auto& r : ranks) n += r.allocated_words;
  return n;
}

std::int64_t JobResult::reported_iters() const {
  std::int64_t best = -1;
  for (const auto& r : ranks) best = std::max(best, r.reported_iters);
  return best;
}

std::size_t JobResult::contaminated_ranks() const {
  std::size_t n = 0;
  for (const auto& r : ranks) {
    if (r.first_contaminated_at.has_value()) ++n;
  }
  return n;
}

}  // namespace fprop::mpisim
