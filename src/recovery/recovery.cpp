#include "fprop/recovery/recovery.h"

#include <algorithm>

#include "fprop/model/propagation_model.h"
#include "fprop/support/error.h"

namespace fprop::recovery {

RecoveryManager::RecoveryManager(mpisim::World& world, RecoveryConfig config)
    : world_(&world), config_(config) {
  FPROP_CHECK_MSG(config_.detector_interval > 0,
                  "recovery detector interval must be positive");
  FPROP_CHECK_MSG(config_.max_retained > 0,
                  "recovery must retain at least one checkpoint");
  FPROP_CHECK_MSG(config_.rollback_backoff >= 1.0,
                  "rollback backoff must not shrink the detector interval");
  interval_ = config_.detector_interval;
  report_.final_detector_interval = interval_;
}

void RecoveryManager::take_checkpoint() {
  retained_.push_back(world_->checkpoint());
  while (retained_.size() > config_.max_retained) retained_.pop_front();
  last_ckpt_clock_ = world_->global_cycles();
  ++report_.checkpoints;
  if (config_.recorder != nullptr) {
    // approx_bytes walks the whole snapshot; only pay for it when traced.
    config_.recorder->emit(obs::EventKind::Checkpoint, obs::kJobScope,
                           last_ckpt_clock_, retained_.back().approx_bytes(),
                           retained_.size());
  }
}

void RecoveryManager::advance_scan_grid(std::uint64_t now) {
  // Fixed grid anchored at 0 (matching simulate_rollback's detector and the
  // harness's snapshot ladder), not at the scan that just ran — a sweep can
  // jump several intervals at once.
  if (next_scan_ <= now) {
    next_scan_ = next_scan_point(now, interval_);
  }
}

bool RecoveryManager::should_rollback(bool crashed, std::uint64_t now) {
  switch (config_.policy) {
    case model::RollbackPolicy::Never:
      return false;
    case model::RollbackPolicy::Always:
      return true;
    case model::RollbackPolicy::FpsModel: {
      if (crashed) return true;  // a dead job cannot be "kept running"
      // Eq. 3 bounds the contamination accumulated since the last clean
      // checkpoint; extrapolate at the application FPS to the end of run.
      const double at_detect = model::max_cml_estimate(
          config_.fps, static_cast<double>(last_ckpt_clock_),
          static_cast<double>(now));
      const std::uint64_t t_end = std::max(config_.expected_cycles, now);
      report_.predicted_final_cml =
          at_detect + config_.fps * static_cast<double>(t_end - now);
      return report_.predicted_final_cml > config_.cml_threshold;
    }
  }
  return true;
}

bool RecoveryManager::try_rollback(std::uint64_t now) {
  if (report_.rollbacks >= config_.max_rollbacks) return false;
  const mpisim::World::Checkpoint& ckpt = retained_.back();
  report_.wasted_cycles += now - ckpt.global_clock;
  FPROP_OBS_EMIT(config_.recorder, obs::EventKind::Rollback, obs::kJobScope,
                 now, ckpt.global_clock, now - ckpt.global_clock);
  world_->restore(ckpt);
  ++report_.rollbacks;
  last_ckpt_clock_ = ckpt.global_clock;
  if (config_.rollback_backoff > 1.0) {
    // Degradation ladder: each retry scans less often, so a persistently
    // re-detecting job (e.g. a quarantine storm from a corrupted detector
    // channel) spends progressively less time re-checking and re-failing
    // before the budget tears it down. Clamped below the uint64 range so
    // the grid arithmetic can never overflow.
    const double widened =
        static_cast<double>(interval_) * config_.rollback_backoff;
    constexpr double kMaxInterval = 9.0e18;
    interval_ = widened >= kMaxInterval
                    ? static_cast<std::uint64_t>(kMaxInterval)
                    : static_cast<std::uint64_t>(widened);
    report_.final_detector_interval = interval_;
  }
  next_scan_ = 0;
  advance_scan_grid(ckpt.global_clock);
  return true;
}

mpisim::JobResult RecoveryManager::run() {
  take_checkpoint();  // t = 0: restart-from-scratch is always available
  advance_scan_grid(world_->global_cycles());

  for (;;) {
    const mpisim::World::StepStatus s = world_->sweep();
    if (s == mpisim::World::StepStatus::Done) break;

    if (s == mpisim::World::StepStatus::Trapped ||
        s == mpisim::World::StepStatus::Deadlocked) {
      // Crash detection is free: the runtime sees the rank die (or the
      // scheduler sees no progress) without waiting for a detector scan.
      ++report_.detections;
      const std::uint64_t now = world_->global_cycles();
      if (report_.first_detection_clock < 0) {
        report_.first_detection_clock = static_cast<std::int64_t>(now);
      }
      report_.peak_cml_seen =
          std::max(report_.peak_cml_seen, world_->total_cml());
      const bool wanted = should_rollback(/*crashed=*/true, now);
      if (wanted && try_rollback(now)) continue;
      report_.gave_up = wanted;  // budget spent (vs Never declining)
      if (s == mpisim::World::StepStatus::Trapped) {
        world_->kill_job(world_->trapped_rank(), vm::Trap::Killed);
      } else {
        world_->declare_deadlock();
      }
      break;
    }

    // Running: periodic shadow-table scan on the global-cycle grid.
    const std::uint64_t now = world_->global_cycles();
    if (detector_latched_ || now < next_scan_) continue;
    const std::uint64_t cml = world_->total_cml();
    ++report_.scans;
    FPROP_OBS_EMIT(config_.recorder, obs::EventKind::DetectorScan,
                   obs::kJobScope, now, cml, report_.scans);
    report_.peak_cml_seen = std::max(report_.peak_cml_seen, cml);
    if (cml == 0) {
      // Clean scan: the canonical early-stop point — the job sits at a
      // quiescent boundary with an empty shadow table, exactly where golden
      // reconvergence fingerprints are defined. Probe before paying for the
      // checkpoint; a converged job needs neither it nor any further sweeps.
      if (config_.early_stop && config_.early_stop()) {
        report_.early_stopped = true;
        break;
      }
      take_checkpoint();
      advance_scan_grid(now);
      continue;
    }
    ++report_.detections;
    if (report_.first_detection_clock < 0) {
      report_.first_detection_clock = static_cast<std::int64_t>(now);
    }
    if (should_rollback(/*crashed=*/false, now)) {
      if (try_rollback(now)) continue;
      // Budget exhausted with contamination on board (a rollback storm —
      // e.g. the checkpoint itself captured a corrupted register): abort
      // the job so the trial classifies Crashed instead of hanging.
      report_.gave_up = true;
      for (std::uint32_t r = 0; r < world_->nranks(); ++r) {
        world_->rank(r).force_trap(vm::Trap::Killed);
      }
      break;
    }
    // Keep running with the contamination; mirror the analytical simulator
    // by latching the detector off and charging the residual at the end.
    detector_latched_ = true;
  }

  report_.residual_cml = world_->total_cml();
  report_.peak_cml_seen =
      std::max(report_.peak_cml_seen, report_.residual_cml);
  return world_->collect();
}

}  // namespace fprop::recovery
