#include "fprop/shard/spawn.h"

#include <spawn.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

extern char** environ;

namespace fprop::shard {

std::vector<SpawnedShard> spawn_local_shards(
    const std::string& shard_bin, std::size_t count,
    const std::vector<std::string>& extra_args) {
  std::vector<SpawnedShard> shards;
  shards.reserve(count);
  try {
    for (std::size_t i = 0; i < count; ++i) {
      // CLOEXEC everywhere: without it, later children would inherit dups
      // of earlier shards' sockets and EOF-based teardown would never fire.
      // The dup2 file actions clear CLOEXEC on the child's stdin/stdout.
      int fds[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) != 0) {
        throw Error(std::string("socketpair failed: ") +
                    std::strerror(errno));
      }
      Conn parent_end(fds[0]);  // owns fds[0] from here on

      posix_spawn_file_actions_t actions;
      posix_spawn_file_actions_init(&actions);
      // The child talks the protocol on stdin/stdout; its stderr stays on
      // ours for shard log lines.
      posix_spawn_file_actions_adddup2(&actions, fds[1], STDIN_FILENO);
      posix_spawn_file_actions_adddup2(&actions, fds[1], STDOUT_FILENO);
      posix_spawn_file_actions_addclose(&actions, fds[1]);
      posix_spawn_file_actions_addclose(&actions, fds[0]);

      std::vector<std::string> args;
      args.push_back(shard_bin);
      args.push_back("--stdio");
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);

      pid_t pid = -1;
      const int rc = ::posix_spawnp(&pid, shard_bin.c_str(), &actions,
                                    nullptr, argv.data(), environ);
      posix_spawn_file_actions_destroy(&actions);
      ::close(fds[1]);  // child's end; the child holds its own copy now
      if (rc != 0) {
        throw Error("failed to spawn '" + shard_bin +
                    "': " + std::strerror(rc));
      }
      shards.push_back(SpawnedShard{pid, std::move(parent_end)});
    }
  } catch (...) {
    // Reap whatever already started: closing our socket ends their serve
    // loop on EOF.
    for (SpawnedShard& s : shards) {
      s.conn.close();
      if (s.pid > 0) ::waitpid(s.pid, nullptr, 0);
    }
    throw;
  }
  return shards;
}

std::vector<Conn> uds_accept(const std::string& path, std::size_t count) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw Error("socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  const int listener = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listener < 0) {
    throw Error(std::string("socket failed: ") + std::strerror(errno));
  }
  ::unlink(path.c_str());  // stale file from a crashed coordinator
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, static_cast<int>(count)) != 0) {
    const int err = errno;
    ::close(listener);
    throw Error("cannot listen at " + path + ": " + std::strerror(err));
  }
  std::vector<Conn> conns;
  conns.reserve(count);
  while (conns.size() < count) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(listener);
      ::unlink(path.c_str());
      throw Error(std::string("accept failed: ") + std::strerror(err));
    }
    conns.emplace_back(fd);
  }
  ::close(listener);
  ::unlink(path.c_str());
  return conns;
}

Conn uds_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw Error("socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw Error(std::string("socket failed: ") + std::strerror(errno));
  }
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    const int err = errno;
    ::close(fd);
    throw Error("cannot connect to " + path + ": " + std::strerror(err));
  }
  return Conn(fd);
}

int wait_shard(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) return -256;
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return -WTERMSIG(status);
  return -256;
}

}  // namespace fprop::shard
