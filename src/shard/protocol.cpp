#include "fprop/shard/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fprop::shard {

namespace {

[[noreturn]] void fail(WireFault fault, const std::string& what) {
  throw ProtocolError(fault, what);
}

bool read_bool(WireReader& r, const char* field) {
  const std::uint8_t v = r.u8();
  if (v > 1) fail(WireFault::Malformed, std::string(field) + " not a bool");
  return v != 0;
}

template <typename E>
E read_enum(WireReader& r, std::uint8_t max, const char* field) {
  const std::uint8_t v = r.u8();
  if (v > max) {
    fail(WireFault::Malformed,
         std::string(field) + " out of range: " + std::to_string(v));
  }
  return static_cast<E>(v);
}

}  // namespace

const char* wire_fault_name(WireFault f) noexcept {
  switch (f) {
    case WireFault::BadMagic: return "bad-magic";
    case WireFault::BadVersion: return "bad-version";
    case WireFault::BadType: return "bad-type";
    case WireFault::Oversized: return "oversized";
    case WireFault::Truncated: return "truncated";
    case WireFault::ChecksumMismatch: return "checksum-mismatch";
    case WireFault::Malformed: return "malformed";
  }
  return "unknown";
}

const char* frame_type_name(FrameType t) noexcept {
  switch (t) {
    case FrameType::Setup: return "Setup";
    case FrameType::SetupAck: return "SetupAck";
    case FrameType::Assign: return "Assign";
    case FrameType::Result: return "Result";
    case FrameType::Shutdown: return "Shutdown";
    case FrameType::Bye: return "Bye";
    case FrameType::Error: return "Error";
    case FrameType::JournalHeader: return "JournalHeader";
  }
  return "unknown";
}

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// WireWriter / WireReader

void WireWriter::u8(std::uint8_t v) { out_.push_back(v); }

void WireWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void WireWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void WireWriter::str(const std::string& s) {
  u64(s.size());
  out_.insert(out_.end(), s.begin(), s.end());
}

void WireWriter::bytes(const std::uint8_t* p, std::size_t n) {
  out_.insert(out_.end(), p, p + n);
}

const std::uint8_t* WireReader::need(std::size_t n) {
  if (n > size_ - off_) {
    fail(WireFault::Malformed, "payload overrun: need " + std::to_string(n) +
                                   " bytes, " + std::to_string(size_ - off_) +
                                   " remain");
  }
  const std::uint8_t* p = data_ + off_;
  off_ += n;
  return p;
}

std::uint8_t WireReader::u8() { return *need(1); }

std::uint16_t WireReader::u16() {
  const std::uint8_t* p = need(2);
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t WireReader::u32() {
  const std::uint8_t* p = need(4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t WireReader::u64() {
  const std::uint8_t* p = need(8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::int64_t WireReader::i64() { return static_cast<std::int64_t>(u64()); }

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::uint64_t WireReader::count(std::size_t min_elem_bytes) {
  const std::uint64_t n = u64();
  if (min_elem_bytes == 0) min_elem_bytes = 1;
  if (n > remaining() / min_elem_bytes) {
    fail(WireFault::Malformed,
         "claimed element count " + std::to_string(n) +
             " exceeds the bytes physically present");
  }
  return n;
}

std::string WireReader::str() {
  const std::uint64_t n = count(1);
  const std::uint8_t* p = need(static_cast<std::size_t>(n));
  return std::string(reinterpret_cast<const char*>(p),
                     static_cast<std::size_t>(n));
}

// ---------------------------------------------------------------------------
// Framing

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  WireWriter w(out);
  w.u32(kMagic);
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(frame.type));
  w.u16(0);  // reserved
  w.u64(frame.payload.size());
  w.u64(fnv1a64(frame.payload.data(), frame.payload.size()));
  w.bytes(frame.payload.data(), frame.payload.size());
  return out;
}

namespace {

struct FrameHeader {
  FrameType type;
  std::uint64_t payload_len;
  std::uint64_t checksum;
};

/// Validates every header field except payload presence (context-specific).
FrameHeader parse_frame_header(const std::uint8_t* data) {
  WireReader r(data, kFrameHeaderBytes);
  const std::uint32_t magic = r.u32();
  if (magic != kMagic) {
    fail(WireFault::BadMagic, "got 0x" + std::to_string(magic));
  }
  const std::uint8_t version = r.u8();
  if (version != kProtocolVersion) {
    fail(WireFault::BadVersion, "got " + std::to_string(version) +
                                    ", speak " +
                                    std::to_string(kProtocolVersion));
  }
  const std::uint8_t type = r.u8();
  if (type < static_cast<std::uint8_t>(FrameType::Setup) ||
      type > static_cast<std::uint8_t>(FrameType::JournalHeader)) {
    fail(WireFault::BadType, "frame type " + std::to_string(type));
  }
  const std::uint16_t reserved = r.u16();
  if (reserved != 0) {
    fail(WireFault::Malformed, "reserved header bits set");
  }
  FrameHeader h{static_cast<FrameType>(type), r.u64(), r.u64()};
  if (h.payload_len > kMaxFramePayload) {
    fail(WireFault::Oversized, "claimed payload of " +
                                   std::to_string(h.payload_len) + " bytes");
  }
  return h;
}

}  // namespace

Frame decode_frame(const std::uint8_t* data, std::size_t size,
                   std::size_t* consumed) {
  if (size < kFrameHeaderBytes) {
    fail(WireFault::Truncated, "only " + std::to_string(size) +
                                   " bytes, header needs " +
                                   std::to_string(kFrameHeaderBytes));
  }
  const FrameHeader h = parse_frame_header(data);
  // Clamp the claimed length to the bytes physically present.
  if (h.payload_len > size - kFrameHeaderBytes) {
    fail(WireFault::Truncated,
         "claimed payload of " + std::to_string(h.payload_len) + " bytes, " +
             std::to_string(size - kFrameHeaderBytes) + " present");
  }
  Frame f;
  f.type = h.type;
  f.payload.assign(data + kFrameHeaderBytes,
                   data + kFrameHeaderBytes + h.payload_len);
  if (fnv1a64(f.payload.data(), f.payload.size()) != h.checksum) {
    fail(WireFault::ChecksumMismatch,
         frame_type_name(f.type) + std::string(" frame payload corrupted"));
  }
  if (consumed != nullptr) {
    *consumed = kFrameHeaderBytes + static_cast<std::size_t>(h.payload_len);
  }
  return f;
}

// ---------------------------------------------------------------------------
// JobSpec

void write_job_spec(WireWriter& w, const JobSpec& spec) {
  w.str(spec.app);

  const harness::ExperimentConfig& e = spec.experiment;
  w.u32(e.nranks);
  w.u64(e.overrides.size());
  for (const auto& [k, v] : e.overrides) {
    w.str(k);
    w.str(v);
  }
  w.u8(e.targets.arith);
  w.u8(e.targets.compares);
  w.u8(e.targets.addresses);
  w.u8(e.targets.load_address);
  w.u8(e.targets.store_operands);
  w.u64(e.rank_sample_period);
  w.u64(e.global_sample_period);
  w.u64(e.slice);
  w.u64(e.rng_seed);
  w.f64(e.budget_factor);
  w.u64(e.snapshot_rungs);
  w.f64(e.classifier.tolerance);
  w.f64(e.classifier.time_factor);
  const recovery::RecoveryConfig& rc = e.recovery;
  w.u8(rc.enabled);
  w.u8(static_cast<std::uint8_t>(rc.policy));
  w.u64(rc.detector_interval);
  w.f64(rc.fps);
  w.f64(rc.cml_threshold);
  w.u64(rc.expected_cycles);
  w.u64(rc.max_rollbacks);
  w.f64(rc.rollback_backoff);
  w.u64(rc.max_retained);

  const harness::CampaignConfig& c = spec.campaign;
  w.u64(c.trials);
  w.u64(c.seed);
  w.u8(c.capture_traces);
  w.u64(c.max_kept_traces);
  w.u64(c.faults_per_run);
  w.u64(c.msg_faults_per_run);
  w.u64(c.jobs);
  w.u8(c.warm_start);
  w.u8(static_cast<std::uint8_t>(c.exec_tier));
  w.u8(c.prune);
  w.u8(c.dedup);
  w.str(c.trace_dir);
  w.u64(c.trace_capacity);
  w.u8(spec.metrics_enabled);
}

JobSpec read_job_spec(WireReader& r) {
  JobSpec spec;
  spec.app = r.str();

  harness::ExperimentConfig& e = spec.experiment;
  e.nranks = r.u32();
  const std::uint64_t noverrides = r.count(16);
  for (std::uint64_t i = 0; i < noverrides; ++i) {
    std::string k = r.str();
    std::string v = r.str();
    e.overrides.emplace(std::move(k), std::move(v));
  }
  e.targets.arith = read_bool(r, "targets.arith");
  e.targets.compares = read_bool(r, "targets.compares");
  e.targets.addresses = read_bool(r, "targets.addresses");
  e.targets.load_address = read_bool(r, "targets.load_address");
  e.targets.store_operands = read_bool(r, "targets.store_operands");
  e.rank_sample_period = r.u64();
  e.global_sample_period = r.u64();
  e.slice = r.u64();
  e.rng_seed = r.u64();
  e.budget_factor = r.f64();
  e.snapshot_rungs = static_cast<std::size_t>(r.u64());
  e.classifier.tolerance = r.f64();
  e.classifier.time_factor = r.f64();
  recovery::RecoveryConfig& rc = e.recovery;
  rc.enabled = read_bool(r, "recovery.enabled");
  rc.policy = read_enum<model::RollbackPolicy>(r, 2, "recovery.policy");
  rc.detector_interval = r.u64();
  rc.fps = r.f64();
  rc.cml_threshold = r.f64();
  rc.expected_cycles = r.u64();
  rc.max_rollbacks = static_cast<std::size_t>(r.u64());
  rc.rollback_backoff = r.f64();
  rc.max_retained = static_cast<std::size_t>(r.u64());

  harness::CampaignConfig& c = spec.campaign;
  c.trials = static_cast<std::size_t>(r.u64());
  c.seed = r.u64();
  c.capture_traces = read_bool(r, "capture_traces");
  c.max_kept_traces = static_cast<std::size_t>(r.u64());
  c.faults_per_run = static_cast<std::size_t>(r.u64());
  c.msg_faults_per_run = static_cast<std::size_t>(r.u64());
  c.jobs = static_cast<std::size_t>(r.u64());
  c.warm_start = read_bool(r, "warm_start");
  c.exec_tier = read_enum<vm::ExecTier>(r, 1, "exec_tier");
  c.prune = read_bool(r, "prune");
  c.dedup = read_bool(r, "dedup");
  c.trace_dir = r.str();
  c.trace_capacity = static_cast<std::size_t>(r.u64());
  spec.metrics_enabled = read_bool(r, "metrics_enabled");
  return spec;
}

std::uint64_t job_digest(const JobSpec& spec) {
  std::vector<std::uint8_t> buf;
  WireWriter w(buf);
  write_job_spec(w, spec);
  return fnv1a64(buf.data(), buf.size());
}

// ---------------------------------------------------------------------------
// TrialResult

void write_trial_result(WireWriter& w, const harness::TrialResult& t) {
  w.u8(static_cast<std::uint8_t>(t.outcome));
  w.u8(static_cast<std::uint8_t>(t.trap));
  w.u8(t.injected);
  w.u32(t.injection.rank);
  w.i64(t.injection.site_id);
  w.u64(t.injection.dyn_index);
  w.u32(t.injection.bit);
  w.u64(t.injection.cycle);
  w.u64(t.injection.before);
  w.u64(t.injection.after);
  w.u64(t.msg_injected);
  w.u64(t.headers_quarantined);
  w.u64(t.header_records_quarantined);
  w.i64(t.fault_pair_min_gap);
  w.u64(t.total_cml_final);
  w.u64(t.total_cml_peak);
  w.f64(t.contaminated_pct);
  w.u64(t.contaminated_ranks);
  w.i64(t.reported_iters);
  w.u64(t.global_cycles);
  w.u64(t.trace.size());
  for (const fpm::TraceSample& s : t.trace) {
    w.u64(s.cycle);
    w.u64(s.cml);
  }
  w.u64(t.rank_first_contaminated.size());
  for (const std::optional<std::uint64_t>& v : t.rank_first_contaminated) {
    w.u8(v.has_value());
    w.u64(v.value_or(0));
  }
  w.f64(t.slope_a);
  w.f64(t.slope_b);
  w.u8(t.slope_usable);
  w.u8(t.recovered);
  w.u64(t.rollbacks);
  w.u64(t.detections);
  w.u64(t.wasted_cycles);
  w.u64(t.residual_cml);
  w.u8(t.recovery_gave_up);
  w.i64(t.first_detection_clock);
  w.u8(t.pruned);
  w.u64(t.prune_clock);
  w.u64(t.dedup_count);
}

harness::TrialResult read_trial_result(WireReader& r) {
  harness::TrialResult t;
  t.outcome = read_enum<harness::Outcome>(r, 4, "outcome");
  t.trap = read_enum<vm::Trap>(r, 9, "trap");
  t.injected = read_bool(r, "injected");
  t.injection.rank = r.u32();
  t.injection.site_id = r.i64();
  t.injection.dyn_index = r.u64();
  t.injection.bit = r.u32();
  t.injection.cycle = r.u64();
  t.injection.before = r.u64();
  t.injection.after = r.u64();
  t.msg_injected = static_cast<std::size_t>(r.u64());
  t.headers_quarantined = r.u64();
  t.header_records_quarantined = r.u64();
  t.fault_pair_min_gap = r.i64();
  t.total_cml_final = r.u64();
  t.total_cml_peak = r.u64();
  t.contaminated_pct = r.f64();
  t.contaminated_ranks = static_cast<std::size_t>(r.u64());
  t.reported_iters = r.i64();
  t.global_cycles = r.u64();
  const std::uint64_t ntrace = r.count(16);
  t.trace.reserve(static_cast<std::size_t>(ntrace));
  for (std::uint64_t i = 0; i < ntrace; ++i) {
    fpm::TraceSample s;
    s.cycle = r.u64();
    s.cml = r.u64();
    t.trace.push_back(s);
  }
  const std::uint64_t nranks = r.count(9);
  t.rank_first_contaminated.reserve(static_cast<std::size_t>(nranks));
  for (std::uint64_t i = 0; i < nranks; ++i) {
    const bool has = read_bool(r, "rank_first_contaminated.has");
    const std::uint64_t v = r.u64();
    t.rank_first_contaminated.push_back(
        has ? std::optional<std::uint64_t>(v) : std::nullopt);
  }
  t.slope_a = r.f64();
  t.slope_b = r.f64();
  t.slope_usable = read_bool(r, "slope_usable");
  t.recovered = read_bool(r, "recovered");
  t.rollbacks = static_cast<std::size_t>(r.u64());
  t.detections = static_cast<std::size_t>(r.u64());
  t.wasted_cycles = r.u64();
  t.residual_cml = r.u64();
  t.recovery_gave_up = read_bool(r, "recovery_gave_up");
  t.first_detection_clock = r.i64();
  t.pruned = read_bool(r, "pruned");
  t.prune_clock = r.u64();
  t.dedup_count = r.u64();
  return t;
}

// ---------------------------------------------------------------------------
// MetricsSnapshot

void write_metrics_snapshot(WireWriter& w, const obs::MetricsSnapshot& s) {
  w.u64(s.counters.size());
  for (const auto& [name, value] : s.counters) {
    w.str(name);
    w.u64(value);
  }
  w.u64(s.histograms.size());
  for (const auto& [name, h] : s.histograms) {
    w.str(name);
    w.u64(h.bounds.size());
    for (std::uint64_t b : h.bounds) w.u64(b);
    w.u64(h.counts.size());
    for (std::uint64_t c : h.counts) w.u64(c);
    w.u64(h.count);
    w.u64(h.sum);
  }
}

obs::MetricsSnapshot read_metrics_snapshot(WireReader& r) {
  obs::MetricsSnapshot s;
  const std::uint64_t ncounters = r.count(16);
  for (std::uint64_t i = 0; i < ncounters; ++i) {
    std::string name = r.str();
    const std::uint64_t value = r.u64();
    s.counters.emplace(std::move(name), value);
  }
  const std::uint64_t nhist = r.count(40);
  for (std::uint64_t i = 0; i < nhist; ++i) {
    std::string name = r.str();
    obs::HistogramSnapshot h;
    const std::uint64_t nbounds = r.count(8);
    h.bounds.reserve(static_cast<std::size_t>(nbounds));
    for (std::uint64_t j = 0; j < nbounds; ++j) h.bounds.push_back(r.u64());
    const std::uint64_t ncounts = r.count(8);
    if (ncounts != nbounds + 1) {
      fail(WireFault::Malformed,
           "histogram '" + name + "' has " + std::to_string(ncounts) +
               " buckets for " + std::to_string(nbounds) + " bounds");
    }
    h.counts.reserve(static_cast<std::size_t>(ncounts));
    for (std::uint64_t j = 0; j < ncounts; ++j) h.counts.push_back(r.u64());
    h.count = r.u64();
    h.sum = r.u64();
    s.histograms.emplace(std::move(name), std::move(h));
  }
  return s;
}

// ---------------------------------------------------------------------------
// RangeResult

void write_range_result(WireWriter& w, const RangeResult& rr) {
  w.u64(rr.first);
  w.u64(rr.last);
  w.u64(rr.results.size());
  for (const auto& [index, t] : rr.results) {
    w.u64(index);
    write_trial_result(w, t);
  }
  write_metrics_snapshot(w, rr.metrics);
}

RangeResult read_range_result(WireReader& r) {
  RangeResult rr;
  rr.first = r.u64();
  rr.last = r.u64();
  if (rr.first > rr.last) {
    fail(WireFault::Malformed, "range [" + std::to_string(rr.first) + ", " +
                                   std::to_string(rr.last) + ") inverted");
  }
  const std::uint64_t n = r.count(8);
  if (n > rr.last - rr.first) {
    fail(WireFault::Malformed,
         "range result carries more trials than its span");
  }
  rr.results.reserve(static_cast<std::size_t>(n));
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t index = r.u64();
    if (index < rr.first || index >= rr.last || (i > 0 && index <= prev)) {
      fail(WireFault::Malformed,
           "trial index " + std::to_string(index) +
               " outside/unsorted in range [" + std::to_string(rr.first) +
               ", " + std::to_string(rr.last) + ")");
    }
    prev = index;
    rr.results.emplace_back(index, read_trial_result(r));
  }
  rr.metrics = read_metrics_snapshot(r);
  return rr;
}

// ---------------------------------------------------------------------------
// Whole-frame helpers

namespace {

Frame make_frame(FrameType type) {
  Frame f;
  f.type = type;
  return f;
}

WireReader payload_reader(const Frame& f, FrameType expect) {
  if (f.type != expect) {
    fail(WireFault::Malformed, std::string("expected ") +
                                   frame_type_name(expect) + " frame, got " +
                                   frame_type_name(f.type));
  }
  return WireReader(f.payload.data(), f.payload.size());
}

/// A payload with trailing bytes was not produced by this codec.
void expect_done(const WireReader& r, FrameType type) {
  if (!r.done()) {
    fail(WireFault::Malformed, std::string(frame_type_name(type)) +
                                   " payload has trailing bytes");
  }
}

}  // namespace

Frame make_setup_frame(const JobSpec& spec) {
  Frame f = make_frame(FrameType::Setup);
  WireWriter w(f.payload);
  write_job_spec(w, spec);
  return f;
}

Frame make_setup_ack_frame(const SetupAck& ack) {
  Frame f = make_frame(FrameType::SetupAck);
  WireWriter w(f.payload);
  w.u64(ack.digest);
  w.u32(ack.protocol);
  w.u64(ack.total_dyn_points);
  w.u64(ack.golden_cycles);
  return f;
}

Frame make_assign_frame(std::uint64_t first, std::uint64_t last) {
  Frame f = make_frame(FrameType::Assign);
  WireWriter w(f.payload);
  w.u64(first);
  w.u64(last);
  return f;
}

Frame make_result_frame(const RangeResult& rr) {
  Frame f = make_frame(FrameType::Result);
  WireWriter w(f.payload);
  write_range_result(w, rr);
  return f;
}

Frame make_error_frame(const std::string& message) {
  Frame f = make_frame(FrameType::Error);
  WireWriter w(f.payload);
  w.str(message);
  return f;
}

JobSpec parse_setup(const Frame& f) {
  WireReader r = payload_reader(f, FrameType::Setup);
  JobSpec spec = read_job_spec(r);
  expect_done(r, f.type);
  return spec;
}

SetupAck parse_setup_ack(const Frame& f) {
  WireReader r = payload_reader(f, FrameType::SetupAck);
  SetupAck ack;
  ack.digest = r.u64();
  ack.protocol = r.u32();
  ack.total_dyn_points = r.u64();
  ack.golden_cycles = r.u64();
  expect_done(r, f.type);
  return ack;
}

std::pair<std::uint64_t, std::uint64_t> parse_assign(const Frame& f) {
  WireReader r = payload_reader(f, FrameType::Assign);
  const std::uint64_t first = r.u64();
  const std::uint64_t last = r.u64();
  expect_done(r, f.type);
  if (first > last) {
    fail(WireFault::Malformed, "assigned range inverted");
  }
  return {first, last};
}

RangeResult parse_result(const Frame& f) {
  WireReader r = payload_reader(f, FrameType::Result);
  RangeResult rr = read_range_result(r);
  expect_done(r, f.type);
  return rr;
}

std::string parse_error(const Frame& f) {
  WireReader r = payload_reader(f, FrameType::Error);
  std::string msg = r.str();
  expect_done(r, f.type);
  return msg;
}

// ---------------------------------------------------------------------------
// Conn

Conn::Conn(int fd_in, int fd_out) : in_(fd_in), out_(fd_out) {}

Conn::Conn(Conn&& other) noexcept : in_(other.in_), out_(other.out_) {
  other.in_ = -1;
  other.out_ = -1;
}

Conn& Conn::operator=(Conn&& other) noexcept {
  if (this != &other) {
    close();
    in_ = other.in_;
    out_ = other.out_;
    other.in_ = -1;
    other.out_ = -1;
  }
  return *this;
}

Conn::~Conn() { close(); }

void Conn::close() noexcept {
  if (in_ >= 0) ::close(in_);
  if (out_ >= 0 && out_ != in_) ::close(out_);
  in_ = -1;
  out_ = -1;
}

namespace {

/// write() that never raises SIGPIPE on sockets: a peer dying mid-campaign
/// must surface as an error the coordinator can requeue around, not a
/// process-killing signal.
ssize_t write_some(int fd, const std::uint8_t* p, std::size_t n) {
  ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
  if (w < 0 && errno == ENOTSOCK) w = ::write(fd, p, n);
  return w;
}

}  // namespace

void Conn::send(const Frame& frame) {
  FPROP_CHECK_MSG(valid(), "send on a closed connection");
  const std::vector<std::uint8_t> buf = encode_frame(frame);
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t w = write_some(out_, buf.data() + off, buf.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      close();
      throw Error(std::string("shard connection write failed: ") +
                  std::strerror(err));
    }
    off += static_cast<std::size_t>(w);
  }
}

std::optional<Frame> Conn::recv(const volatile std::sig_atomic_t* interrupt) {
  FPROP_CHECK_MSG(valid(), "recv on a closed connection");
  std::uint8_t header[kFrameHeaderBytes];
  std::size_t off = 0;
  while (off < kFrameHeaderBytes) {
    const ssize_t n = ::read(in_, header + off, kFrameHeaderBytes - off);
    if (n < 0) {
      if (errno == EINTR) {
        if (interrupt != nullptr && *interrupt != 0) return std::nullopt;
        continue;
      }
      const int err = errno;
      close();
      throw Error(std::string("shard connection read failed: ") +
                  std::strerror(err));
    }
    if (n == 0) {
      if (off == 0) return std::nullopt;  // clean EOF at a frame boundary
      fail(WireFault::Truncated, "EOF after " + std::to_string(off) +
                                     " header bytes");
    }
    off += static_cast<std::size_t>(n);
  }
  const FrameHeader h = parse_frame_header(header);
  if (h.type == FrameType::JournalHeader) {
    fail(WireFault::BadType, "JournalHeader frame on a live link");
  }
  Frame f;
  f.type = h.type;
  f.payload.resize(static_cast<std::size_t>(h.payload_len));
  off = 0;
  while (off < f.payload.size()) {
    const ssize_t n = ::read(in_, f.payload.data() + off,
                             f.payload.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        if (interrupt != nullptr && *interrupt != 0) return std::nullopt;
        continue;
      }
      const int err = errno;
      close();
      throw Error(std::string("shard connection read failed: ") +
                  std::strerror(err));
    }
    if (n == 0) {
      fail(WireFault::Truncated,
           std::string(frame_type_name(f.type)) + " frame: EOF " +
               std::to_string(off) + "/" + std::to_string(f.payload.size()) +
               " payload bytes in");
    }
    off += static_cast<std::size_t>(n);
  }
  if (fnv1a64(f.payload.data(), f.payload.size()) != h.checksum) {
    fail(WireFault::ChecksumMismatch,
         frame_type_name(f.type) + std::string(" frame payload corrupted"));
  }
  return f;
}

std::pair<Conn, Conn> make_conn_pair() {
  int fds[2];
  FPROP_CHECK_MSG(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds)
                      == 0,
                  "socketpair failed");
  return {Conn(fds[0]), Conn(fds[1])};
}

}  // namespace fprop::shard
