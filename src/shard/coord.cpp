#include "fprop/shard/coord.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <set>
#include <thread>

#include "fprop/shard/journal.h"

namespace fprop::shard {

namespace {

void say(const DistConfig& dist, const std::string& msg) {
  if (dist.log) dist.log(msg);
}

}  // namespace

Coordinator::Coordinator(const harness::AppHarness& harness,
                         const harness::CampaignConfig& config,
                         std::vector<Conn> shards, DistConfig dist)
    : harness_(harness), config_(config), dist_(std::move(dist)) {
  FPROP_CHECK_MSG(!shards.empty(), "coordinator needs at least one shard");

  JobSpec spec;
  spec.app = harness_.app_name();
  spec.experiment = harness_.config();
  spec.campaign = config_;
  spec.campaign.metrics = nullptr;  // never serialized; belt and braces
  spec.metrics_enabled = config_.metrics != nullptr;
  digest_ = job_digest(spec);

  const Frame setup = make_setup_frame(spec);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    Conn& conn = shards[i];
    try {
      conn.send(setup);
      std::optional<Frame> reply = conn.recv(dist_.stop);
      if (!reply.has_value()) {
        throw Error("shard hung up during setup");
      }
      if (reply->type == FrameType::Error) {
        throw Error("shard rejected setup: " + parse_error(*reply));
      }
      const SetupAck ack = parse_setup_ack(*reply);
      if (ack.protocol != kProtocolVersion) {
        throw Error("shard speaks protocol v" + std::to_string(ack.protocol) +
                    ", coordinator v" + std::to_string(kProtocolVersion));
      }
      if (ack.digest != digest_) {
        throw Error("shard echoed a different job digest");
      }
      // Golden-run cross-check: a shard built from different sources (or
      // resolving a different app) would execute valid-looking but wrong
      // trials; its golden facts cannot match.
      if (ack.total_dyn_points != harness_.golden().total_dyn_points ||
          ack.golden_cycles != harness_.golden().global_cycles) {
        throw Error("shard's golden run disagrees with the coordinator's "
                    "(mismatched build or app registry)");
      }
      shards_.push_back(std::move(conn));
    } catch (const Error& e) {
      say(dist_, "shard " + std::to_string(i) +
                     " failed the handshake: " + e.what());
    }
  }
  if (shards_.empty()) {
    throw Error("no shard survived the setup handshake");
  }
  plan_ = harness::plan_campaign(harness_, config_);
}

Coordinator::~Coordinator() {
  for (Conn& conn : shards_) {
    if (!conn.valid()) continue;
    try {
      conn.send(Frame{FrameType::Shutdown, {}});
    } catch (...) {
    }
  }
}

harness::CampaignResult Coordinator::run() {
  const std::size_t trials = config_.trials;
  std::size_t range_size =
      dist_.range_size != 0
          ? dist_.range_size
          : std::max<std::size_t>(1, trials / (shards_.size() * 4));

  std::vector<harness::TrialResult> slots(trials);
  std::set<std::uint64_t> done;  // by range-first

  std::optional<RangeJournal> journal;
  if (!dist_.journal_path.empty()) {
    RangeJournal::Header h;
    h.digest = digest_;
    h.trials = trials;
    h.seed = config_.seed;
    h.range_size = range_size;
    journal.emplace(dist_.journal_path, h);
    // A pre-existing journal dictates the partition it was written under.
    if (journal->header().range_size != 0) {
      range_size = static_cast<std::size_t>(journal->header().range_size);
    }
    for (const RangeResult& rr : journal->recovered()) {
      if (rr.last > trials) continue;  // cannot happen with a digest match
      for (const auto& [index, t] : rr.results) {
        const auto idx = static_cast<std::size_t>(index);
        if (idx >= trials || plan_.rep[idx] != idx) continue;
        slots[idx] = t;
      }
      if (config_.metrics != nullptr) config_.metrics->absorb(rr.metrics);
      done.insert(rr.first);
    }
    if (!done.empty()) {
      say(dist_, "journal: resuming past " + std::to_string(done.size()) +
                     " merged range(s)");
    }
  }

  std::deque<std::pair<std::uint64_t, std::uint64_t>> queue;
  for (std::size_t first = 0; first < trials; first += range_size) {
    const std::size_t last = std::min(trials, first + range_size);
    if (done.count(first) != 0) continue;
    queue.emplace_back(first, last);
  }

  std::mutex mu;  // guards queue, slots, journal, metrics, the log sink
  std::condition_variable cv;
  std::size_t live = shards_.size();
  std::size_t inflight = 0;  // assigned ranges not yet merged or requeued

  auto serve_shard = [&](Conn& conn) {
    while (true) {
      std::pair<std::uint64_t, std::uint64_t> range;
      {
        std::unique_lock<std::mutex> lock(mu);
        // An empty queue is not the end while ranges are in flight: a dying
        // shard requeues its range, and someone must be around to take it.
        cv.wait(lock, [&] {
          return !queue.empty() || inflight == 0 ||
                 (dist_.stop != nullptr && *dist_.stop != 0);
        });
        if (queue.empty() || (dist_.stop != nullptr && *dist_.stop != 0)) {
          return;
        }
        range = queue.front();
        queue.pop_front();
        ++inflight;
      }
      bool merged = false;
      try {
        conn.send(make_assign_frame(range.first, range.second));
        std::optional<Frame> reply = conn.recv(dist_.stop);
        if (!reply.has_value()) {
          throw Error(dist_.stop != nullptr && *dist_.stop != 0
                          ? "interrupted"
                          : "shard hung up mid-range");
        }
        if (reply->type == FrameType::Bye) {
          throw Error("shard said goodbye");
        }
        if (reply->type == FrameType::Error) {
          throw Error("shard reported: " + parse_error(*reply));
        }
        RangeResult rr = parse_result(*reply);
        if (rr.first != range.first || rr.last != range.second) {
          throw ProtocolError(WireFault::Malformed,
                              "result range does not match the assignment");
        }
        // read_range_result proved indices in-range and ascending; they
        // must also be exactly this range's representatives.
        std::size_t expected = 0;
        for (std::uint64_t i = rr.first; i < rr.last; ++i) {
          const auto idx = static_cast<std::size_t>(i);
          if (plan_.rep[idx] == idx) ++expected;
        }
        if (rr.results.size() != expected) {
          throw ProtocolError(WireFault::Malformed,
                              "result carries " +
                                  std::to_string(rr.results.size()) +
                                  " trials, expected " +
                                  std::to_string(expected));
        }
        for (const auto& [index, t] : rr.results) {
          if (plan_.rep[static_cast<std::size_t>(index)] !=
              static_cast<std::size_t>(index)) {
            throw ProtocolError(WireFault::Malformed,
                                "result covers duplicate trial " +
                                    std::to_string(index));
          }
        }
        {
          std::lock_guard<std::mutex> lock(mu);
          for (auto& [index, t] : rr.results) {
            slots[static_cast<std::size_t>(index)] = std::move(t);
          }
          if (config_.metrics != nullptr) {
            config_.metrics->absorb(rr.metrics);
          }
          if (journal.has_value()) journal->append(rr);
          merged = true;
          --inflight;
        }
        cv.notify_all();
      } catch (const std::exception& e) {
        {
          std::lock_guard<std::mutex> lock(mu);
          if (!merged) {
            queue.push_front(range);
            --inflight;
          }
          --live;
          conn.close();
          say(dist_, std::string("shard retired: ") + e.what() + " (" +
                         std::to_string(live) + " left, " +
                         std::to_string(queue.size()) + " range(s) queued)");
        }
        cv.notify_all();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(shards_.size());
  for (Conn& conn : shards_) {
    if (!conn.valid()) continue;
    pool.emplace_back(serve_shard, std::ref(conn));
  }
  for (std::thread& t : pool) t.join();

  if (dist_.stop != nullptr && *dist_.stop != 0) {
    throw Error(journal.has_value()
                    ? "campaign interrupted — rerun with the same --journal "
                      "to resume from the merged prefix"
                    : "campaign interrupted (no journal; a rerun restarts)");
  }
  if (!queue.empty()) {
    throw Error("every shard disconnected with " +
                std::to_string(queue.size()) +
                " range(s) unfinished" +
                (journal.has_value()
                     ? " — rerun with the same --journal to resume"
                     : ""));
  }
  return harness::merge_campaign(harness_, config_, plan_, std::move(slots));
}

harness::CampaignResult run_distributed_campaign(
    const harness::AppHarness& harness, const harness::CampaignConfig& config,
    std::vector<Conn> shards, DistConfig dist) {
  Coordinator coord(harness, config, std::move(shards), std::move(dist));
  return coord.run();
}

}  // namespace fprop::shard
