#include "fprop/shard/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fprop::shard {

namespace {

Frame make_journal_header_frame(const RangeJournal::Header& h) {
  Frame f;
  f.type = FrameType::JournalHeader;
  WireWriter w(f.payload);
  w.u64(h.digest);
  w.u64(h.trials);
  w.u64(h.seed);
  w.u64(h.range_size);
  return f;
}

RangeJournal::Header parse_journal_header(const Frame& f) {
  if (f.type != FrameType::JournalHeader) {
    throw ProtocolError(WireFault::Malformed,
                        std::string("journal starts with a ") +
                            frame_type_name(f.type) + " frame");
  }
  WireReader r(f.payload.data(), f.payload.size());
  RangeJournal::Header h;
  h.digest = r.u64();
  h.trials = r.u64();
  h.seed = r.u64();
  h.range_size = r.u64();
  if (!r.done()) {
    throw ProtocolError(WireFault::Malformed,
                        "journal header has trailing bytes");
  }
  return h;
}

void write_all(int fd, const std::uint8_t* p, std::size_t n,
               const std::string& path) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, p + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw Error("journal " + path + ": write failed: " +
                  std::strerror(errno));
    }
    off += static_cast<std::size_t>(w);
  }
}

}  // namespace

RangeJournal::RangeJournal(std::string path, const Header& header)
    : path_(std::move(path)), header_(header) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw Error("journal " + path_ + ": open failed: " + std::strerror(errno));
  }

  // Read the whole file and parse the frame sequence. The first record that
  // fails to decode marks the valid prefix: a crash mid-append leaves
  // exactly one incomplete tail record, which is truncated away. (A record
  // corrupted *behind* a later valid one cannot happen with append-only
  // writes; the checksum still catches it, and everything from the damage
  // on is dropped.)
  std::vector<std::uint8_t> bytes;
  {
    struct stat st{};
    if (::fstat(fd_, &st) != 0) {
      throw Error("journal " + path_ + ": stat failed: " +
                  std::strerror(errno));
    }
    bytes.resize(static_cast<std::size_t>(st.st_size));
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::read(fd_, bytes.data() + off, bytes.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw Error("journal " + path_ + ": read failed: " +
                    std::strerror(errno));
      }
      if (n == 0) break;
      off += static_cast<std::size_t>(n);
    }
    bytes.resize(off);
  }

  std::size_t valid_prefix = 0;
  if (bytes.empty()) {
    // Fresh journal: stamp the campaign identity first.
    const std::vector<std::uint8_t> buf =
        encode_frame(make_journal_header_frame(header_));
    write_all(fd_, buf.data(), buf.size(), path_);
    ::fsync(fd_);
    return;
  }

  try {
    std::size_t off = 0;
    std::size_t consumed = 0;
    const Frame head = decode_frame(bytes.data(), bytes.size(), &consumed);
    const Header existing = parse_journal_header(head);
    if (existing.digest != header_.digest ||
        existing.trials != header_.trials || existing.seed != header_.seed) {
      throw Error("journal " + path_ +
                  " belongs to a different campaign (digest/trials/seed "
                  "mismatch) — refusing to resume from it");
    }
    header_ = existing;  // adopt the persisted range_size
    off = consumed;
    while (off < bytes.size()) {
      const Frame f =
          decode_frame(bytes.data() + off, bytes.size() - off, &consumed);
      if (f.type != FrameType::Result) {
        throw ProtocolError(WireFault::Malformed,
                            std::string("journal record is a ") +
                                frame_type_name(f.type) + " frame");
      }
      recovered_.push_back(parse_result(f));
      off += consumed;
      valid_prefix = off;
    }
    valid_prefix = off;
  } catch (const ProtocolError&) {
    // Incomplete/corrupted tail: keep the valid prefix, drop the rest. The
    // dropped range was never acknowledged, so it will simply be re-run.
    if (recovered_.empty()) {
      // Even the header is unreadable — the file is not a journal of this
      // (or any) campaign; refuse rather than silently overwrite.
      bool header_ok = false;
      try {
        const Frame head = decode_frame(bytes.data(), bytes.size(), nullptr);
        parse_journal_header(head);
        header_ok = true;
      } catch (const ProtocolError&) {
      }
      if (!header_ok) {
        throw Error("journal " + path_ +
                    ": unrecognizable header — not a campaign journal; "
                    "remove it to start fresh");
      }
      // Header parsed but the digest check above may not have run if the
      // failure was later; recompute the prefix as just the header.
      std::size_t consumed = 0;
      decode_frame(bytes.data(), bytes.size(), &consumed);
      valid_prefix = consumed;
    }
    if (::ftruncate(fd_, static_cast<off_t>(valid_prefix)) != 0) {
      throw Error("journal " + path_ + ": truncate failed: " +
                  std::strerror(errno));
    }
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    throw Error("journal " + path_ + ": seek failed: " +
                std::strerror(errno));
  }
}

RangeJournal::~RangeJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void RangeJournal::append(const RangeResult& rr) {
  FPROP_CHECK_MSG(fd_ >= 0, "append to a closed journal");
  const std::vector<std::uint8_t> buf = encode_frame(make_result_frame(rr));
  write_all(fd_, buf.data(), buf.size(), path_);
  if (::fsync(fd_) != 0) {
    throw Error("journal " + path_ + ": fsync failed: " +
                std::strerror(errno));
  }
}

}  // namespace fprop::shard
