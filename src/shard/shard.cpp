#include "fprop/shard/shard.h"

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/obs/metrics.h"
#include "fprop/shard/journal.h"

namespace fprop::shard {

namespace {

void say(const ServeOptions& opts, const std::string& msg) {
  if (opts.log) opts.log(msg);
}

bool stopping(const ServeOptions& opts) {
  return opts.stop != nullptr && *opts.stop != 0;
}

}  // namespace

ServeStats serve(Conn& conn, const ServeOptions& opts) {
  ServeStats stats;
  try {
    // --- Setup: rebuild the campaign locally -----------------------------
    std::optional<Frame> setup = conn.recv(opts.stop);
    if (!setup.has_value()) {
      stats.interrupted = stopping(opts);
      return stats;
    }
    const JobSpec spec = parse_setup(*setup);
    const std::uint64_t digest = job_digest(spec);

    harness::CampaignConfig config = spec.campaign;
    obs::MetricsRegistry registry;
    // Mirror the coordinator's config exactly: a non-null metrics pointer
    // changes plan_campaign (dedup off) and trial behavior (cold start,
    // recorder attached), so the shard must run under the same condition
    // for its slots to be bit-identical to the in-process engine's.
    config.metrics = spec.metrics_enabled ? &registry : nullptr;
    if (opts.jobs_override != 0) config.jobs = opts.jobs_override;

    say(opts, "setup: app=" + spec.app + " trials=" +
                  std::to_string(config.trials) + " jobs=" +
                  std::to_string(config.jobs));
    const apps::AppSpec& app = opts.resolve_app
                                   ? opts.resolve_app(spec.app)
                                   : apps::get_app(spec.app);  // throws if unknown
    const harness::AppHarness harness(app, spec.experiment);
    const harness::CampaignPlan plan = harness::plan_campaign(harness, config);

    SetupAck ack;
    ack.digest = digest;
    ack.protocol = kProtocolVersion;
    ack.total_dyn_points = harness.golden().total_dyn_points;
    ack.golden_cycles = harness.golden().global_cycles;
    conn.send(make_setup_ack_frame(ack));

    // --- Optional replay journal of completed ranges ---------------------
    std::optional<RangeJournal> journal;
    std::map<std::pair<std::uint64_t, std::uint64_t>, const RangeResult*>
        done;
    if (!opts.journal_path.empty()) {
      RangeJournal::Header h;
      h.digest = digest;
      h.trials = config.trials;
      h.seed = config.seed;
      journal.emplace(opts.journal_path, h);
      for (const RangeResult& rr : journal->recovered()) {
        done.emplace(std::make_pair(rr.first, rr.last), &rr);
      }
      if (!done.empty()) {
        say(opts, "journal: " + std::to_string(done.size()) +
                      " completed range(s) on file");
      }
    }

    // --- Serve Assigns until Shutdown / EOF / interrupt ------------------
    std::vector<harness::TrialResult> slots(config.trials);
    std::deque<RangeResult> session_done;  // stable addresses for `done`
    while (true) {
      if (stopping(opts)) {
        conn.send(Frame{FrameType::Bye, {}});
        stats.interrupted = true;
        return stats;
      }
      std::optional<Frame> f = conn.recv(opts.stop);
      if (!f.has_value()) {
        if (stopping(opts)) {
          conn.send(Frame{FrameType::Bye, {}});
          stats.interrupted = true;
        }
        return stats;  // coordinator hung up
      }
      if (f->type == FrameType::Shutdown) return stats;
      if (f->type != FrameType::Assign) {
        conn.send(make_error_frame(
            std::string("unexpected ") + frame_type_name(f->type) +
            " frame while serving"));
        return stats;
      }
      const auto [first, last] = parse_assign(*f);
      if (last > config.trials) {
        conn.send(make_error_frame("assigned range [" +
                                   std::to_string(first) + ", " +
                                   std::to_string(last) +
                                   ") exceeds the campaign"));
        return stats;
      }

      if (const auto it = done.find({first, last}); it != done.end()) {
        conn.send(make_result_frame(*it->second));
        ++stats.ranges_replayed;
        continue;
      }

      registry.reset();  // per-range snapshot: deltas only
      harness::run_campaign_range(harness, config, plan,
                                  static_cast<std::size_t>(first),
                                  static_cast<std::size_t>(last), slots);
      RangeResult rr;
      rr.first = first;
      rr.last = last;
      for (std::uint64_t i = first; i < last; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        if (plan.rep[idx] != idx) continue;  // duplicate: merge rebuilds it
        rr.results.emplace_back(i, slots[idx]);
      }
      if (spec.metrics_enabled) rr.metrics = registry.snapshot();
      stats.trials_executed += rr.results.size();
      ++stats.ranges_executed;
      if (journal.has_value()) {
        journal->append(rr);  // fsync'd before the coordinator sees it
        session_done.push_back(rr);
        done[{first, last}] = &session_done.back();
      }
      if (opts.max_ranges != 0 &&
          stats.ranges_executed + stats.ranges_replayed >= opts.max_ranges) {
        say(opts, "chaos: dropping the connection after " +
                      std::to_string(opts.max_ranges) + " range(s)");
        conn.close();  // no Bye — looks exactly like SIGKILL upstream
        return stats;
      }
      conn.send(make_result_frame(rr));
      say(opts, "range [" + std::to_string(first) + ", " +
                    std::to_string(last) + ") done (" +
                    std::to_string(rr.results.size()) + " trials)");
    }
  } catch (const ProtocolError& e) {
    say(opts, std::string("protocol error: ") + e.what());
    try {
      conn.send(make_error_frame(e.what()));
    } catch (...) {
    }
    return stats;
  } catch (const Error& e) {
    say(opts, std::string("error: ") + e.what());
    try {
      conn.send(make_error_frame(e.what()));
    } catch (...) {
    }
    return stats;
  }
}

}  // namespace fprop::shard
