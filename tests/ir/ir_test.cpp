#include <gtest/gtest.h>

#include "fprop/ir/builder.h"
#include "fprop/ir/printer.h"
#include "fprop/ir/verifier.h"

namespace fprop::ir {
namespace {

Module simple_module() {
  Module m;
  Function& f = m.add_function("main", Type::Void);
  m.entry = f.id;
  Builder b(f);
  const Reg two = b.const_i(2);
  const Reg three = b.const_i(3);
  const Reg sum = b.binop(Opcode::AddI, two, three);
  (void)sum;
  b.ret();
  return m;
}

TEST(IrModule, AddAndFindFunctions) {
  Module m;
  Function& f = m.add_function("foo", Type::I64);
  EXPECT_EQ(f.id, 0u);
  EXPECT_EQ(m.find("foo"), &m.funcs[0]);
  EXPECT_EQ(m.find("bar"), nullptr);
  EXPECT_THROW(m.add_function("foo", Type::Void), Error);
}

TEST(IrModule, StaticInstrCount) {
  Module m = simple_module();
  EXPECT_EQ(m.static_instr_count(), 4u);
}

TEST(IrFunction, RegisterManagement) {
  Module m;
  Function& f = m.add_function("f", Type::Void);
  const Reg a = f.add_param(Type::I64);
  const Reg b = f.add_reg(Type::F64);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(f.params.size(), 1u);
  EXPECT_EQ(f.reg_type(a), Type::I64);
  EXPECT_EQ(f.reg_type(b), Type::F64);
}

TEST(IrTraits, ArithClassification) {
  EXPECT_TRUE(is_arith(Opcode::AddI));
  EXPECT_TRUE(is_arith(Opcode::MulF));
  EXPECT_TRUE(is_arith(Opcode::EqF));
  EXPECT_TRUE(is_arith(Opcode::PtrAdd));
  EXPECT_TRUE(is_arith(Opcode::I2F));
  EXPECT_FALSE(is_arith(Opcode::Load));
  EXPECT_FALSE(is_arith(Opcode::Call));
  EXPECT_FALSE(is_arith(Opcode::Jmp));
  EXPECT_FALSE(is_arith(Opcode::FimInj));
}

TEST(IrTraits, Terminators) {
  EXPECT_TRUE(is_terminator(Opcode::Jmp));
  EXPECT_TRUE(is_terminator(Opcode::Br));
  EXPECT_TRUE(is_terminator(Opcode::Ret));
  EXPECT_FALSE(is_terminator(Opcode::Call));
  EXPECT_FALSE(is_terminator(Opcode::Store));
}

TEST(IrTraits, IntrinsicTable) {
  EXPECT_TRUE(intrinsic_is_pure(IntrinsicId::Sqrt));
  EXPECT_TRUE(intrinsic_is_pure(IntrinsicId::Pow));
  EXPECT_FALSE(intrinsic_is_pure(IntrinsicId::Rand01));
  EXPECT_FALSE(intrinsic_is_pure(IntrinsicId::Alloc));
  EXPECT_FALSE(intrinsic_is_pure(IntrinsicId::MpiSendF));

  EXPECT_EQ(intrinsic_arity(IntrinsicId::Pow), 2u);
  EXPECT_EQ(intrinsic_arity(IntrinsicId::MpiSendF), 4u);
  EXPECT_EQ(intrinsic_arity(IntrinsicId::MpiBarrier), 0u);

  EXPECT_EQ(intrinsic_result_type(IntrinsicId::Sqrt), Type::F64);
  EXPECT_EQ(intrinsic_result_type(IntrinsicId::Alloc), Type::Ptr);
  EXPECT_EQ(intrinsic_result_type(IntrinsicId::OutputF), Type::Void);
  EXPECT_EQ(intrinsic_result_type(IntrinsicId::MpiRank), Type::I64);
}

TEST(Builder, OpcodeTypeInference) {
  EXPECT_EQ(opcode_result_type(Opcode::AddF), Type::F64);
  EXPECT_EQ(opcode_result_type(Opcode::AddI), Type::I64);
  EXPECT_EQ(opcode_result_type(Opcode::LtF), Type::I64);
  EXPECT_EQ(opcode_result_type(Opcode::PtrAdd), Type::Ptr);
  EXPECT_EQ(opcode_operand_type(Opcode::LtF), Type::F64);
  EXPECT_EQ(opcode_operand_type(Opcode::EqP), Type::Ptr);
  EXPECT_EQ(opcode_operand_type(Opcode::ShlI), Type::I64);
}

TEST(Builder, BuildsVerifiableControlFlow) {
  Module m;
  Function& f = m.add_function("main", Type::Void);
  m.entry = f.id;
  Builder b(f);
  const Reg i = b.const_i(0);
  const BlockId header = b.new_block();
  const BlockId body = b.new_block();
  const BlockId exit = b.new_block();
  b.jmp(header);
  b.set_insert_point(header);
  const Reg ten = b.const_i(10);
  const Reg cond = b.binop(Opcode::LtI, i, ten);
  b.br(cond, body, exit);
  b.set_insert_point(body);
  const Reg one = b.const_i(1);
  b.mov_to(i, b.binop(Opcode::AddI, i, one));
  b.jmp(header);
  b.set_insert_point(exit);
  b.ret();
  EXPECT_NO_THROW(verify(m));
  EXPECT_TRUE(b.block_terminated());
}

TEST(Printer, RendersPaperStyle) {
  Module m = simple_module();
  const std::string s = to_string(m.funcs[0]);
  EXPECT_NE(s.find("func @main() -> void {"), std::string::npos);
  EXPECT_NE(s.find("r0 = const.i64 2"), std::string::npos);
  EXPECT_NE(s.find("r2 = add.i64 r0, r1"), std::string::npos);
  EXPECT_NE(s.find("ret"), std::string::npos);
}

TEST(Printer, ShadowRegistersGetPSuffix) {
  Module m;
  Function& f = m.add_function("f", Type::Void);
  m.entry = f.id;
  Builder b(f);
  const Reg x = b.const_i(1);
  const Reg xp = b.new_reg(Type::I64);
  f.shadow_of.emplace(x, xp);
  b.mov_to(xp, x);
  b.ret();
  const std::string s = to_string(f);
  EXPECT_NE(s.find("r0p = mov r0"), std::string::npos);
}

TEST(Verifier, AcceptsSimpleModule) {
  Module m = simple_module();
  EXPECT_NO_THROW(verify(m));
}

TEST(Verifier, RejectsMissingEntry) {
  Module m;
  m.add_function("f", Type::Void);
  EXPECT_THROW(verify(m), VerifyError);
}

TEST(Verifier, RejectsEntryWithParams) {
  Module m;
  Function& f = m.add_function("main", Type::Void);
  f.add_param(Type::I64);
  m.entry = f.id;
  Builder b(f);
  b.ret();
  EXPECT_THROW(verify(m), VerifyError);
}

TEST(Verifier, RejectsMissingTerminator) {
  Module m;
  Function& f = m.add_function("main", Type::Void);
  m.entry = f.id;
  Builder b(f);
  (void)b.const_i(1);  // block has no terminator
  EXPECT_THROW(verify(m), VerifyError);
}

TEST(Verifier, RejectsTerminatorMidBlock) {
  Module m;
  Function& f = m.add_function("main", Type::Void);
  m.entry = f.id;
  Builder b(f);
  b.ret();
  (void)b.const_i(1);  // code after the terminator
  EXPECT_THROW(verify(m), VerifyError);
}

TEST(Verifier, RejectsTypeMismatch) {
  Module m;
  Function& f = m.add_function("main", Type::Void);
  m.entry = f.id;
  Builder b(f);
  const Reg i = b.const_i(1);
  const Reg d = b.const_f(1.0);
  // Hand-build a mistyped add (builder would pick the right types).
  Instr in;
  in.op = Opcode::AddF;
  in.type = Type::F64;
  in.dst = f.add_reg(Type::F64);
  in.ops[0] = i;  // i64 operand into a float add
  in.ops[1] = d;
  in.nops = 2;
  b.emit(std::move(in));
  b.ret();
  EXPECT_THROW(verify(m), VerifyError);
}

TEST(Verifier, RejectsRegisterOutOfRange) {
  Module m;
  Function& f = m.add_function("main", Type::Void);
  m.entry = f.id;
  Builder b(f);
  Instr in;
  in.op = Opcode::NegI;
  in.type = Type::I64;
  in.dst = f.add_reg(Type::I64);
  in.ops[0] = 999;
  in.nops = 1;
  b.emit(std::move(in));
  b.ret();
  EXPECT_THROW(verify(m), VerifyError);
}

TEST(Verifier, RejectsBadBranchTarget) {
  Module m;
  Function& f = m.add_function("main", Type::Void);
  m.entry = f.id;
  Builder b(f);
  b.jmp(42);
  EXPECT_THROW(verify(m), VerifyError);
}

TEST(Verifier, RejectsCallArityMismatch) {
  Module m;
  Function& callee = m.add_function("callee", Type::Void);
  callee.add_param(Type::I64);
  {
    Builder cb(callee);
    cb.ret();
  }
  Function& f = m.add_function("main", Type::Void);
  m.entry = f.id;
  Builder b(f);
  b.call(callee.id, {}, Type::Void);  // missing argument
  b.ret();
  EXPECT_THROW(verify(m), VerifyError);
}

TEST(Verifier, RejectsIntrinsicArityMismatch) {
  Module m;
  Function& f = m.add_function("main", Type::Void);
  m.entry = f.id;
  Builder b(f);
  Instr in;
  in.op = Opcode::Intrinsic;
  in.intr = IntrinsicId::Pow;  // wants 2 args
  in.type = Type::F64;
  in.dst = f.add_reg(Type::F64);
  in.args = {b.const_f(1.0)};
  b.emit(std::move(in));
  b.ret();
  EXPECT_THROW(verify(m), VerifyError);
}

TEST(Verifier, RejectsDualResultOnPlainCall) {
  Module m;
  Function& callee = m.add_function("callee", Type::I64);
  {
    Builder cb(callee);
    cb.ret(cb.const_i(0));
  }
  Function& f = m.add_function("main", Type::Void);
  m.entry = f.id;
  Builder b(f);
  Instr in;
  in.op = Opcode::Call;
  in.callee = callee.id;
  in.type = Type::I64;
  in.dst = f.add_reg(Type::I64);
  in.dst2 = f.add_reg(Type::I64);  // callee is not dual-chain
  b.emit(std::move(in));
  b.ret();
  EXPECT_THROW(verify(m), VerifyError);
}

TEST(Verifier, RejectsWrongReturnArity) {
  Module m;
  Function& f = m.add_function("main", Type::Void);
  m.entry = f.id;
  Builder b(f);
  Instr in;
  in.op = Opcode::Ret;
  in.args = {b.const_i(0)};  // void function returning a value
  b.emit(std::move(in));
  EXPECT_THROW(verify(m), VerifyError);
}

}  // namespace
}  // namespace fprop::ir
