// The sharded campaign engine's contract (DESIGN.md §15): a coordinator
// plus N worker shards produce a CampaignResult bit-identical to in-process
// run_campaign — every outcome counter, every per-trial field including the
// trial-economy provenance (pruned / prune_clock / dedup_count), every
// slope, every kept trace, and the metrics fold. Shards here are in-process
// serve() threads on socketpairs: the same code path as fprop-shard, minus
// fork/exec. And the engine must survive violence: a shard dropping its
// link mid-campaign (SIGKILL-equivalent) or a coordinator restart from its
// journal must still land on the identical result.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/obs/metrics.h"
#include "fprop/shard/coord.h"
#include "fprop/shard/shard.h"

namespace fprop::shard {
namespace {

harness::AppHarness make_harness(const std::string& app, std::uint32_t nranks,
                                 bool recovery = false) {
  harness::ExperimentConfig cfg;
  cfg.nranks = nranks;
  if (app == "matvec") cfg.overrides = {{"ITERS", "6"}};
  if (recovery) {
    cfg.recovery.enabled = true;
    cfg.recovery.max_rollbacks = 2;
  }
  return harness::AppHarness(apps::get_app(app), cfg);
}

harness::CampaignConfig campaign_config(std::size_t trials) {
  harness::CampaignConfig cc;
  cc.trials = trials;
  cc.seed = 1234;
  cc.max_kept_traces = 4;
  cc.jobs = 1;
  return cc;
}

/// Runs `config` through a coordinator plus one serve() thread per entry of
/// `shard_opts`. Joins every thread before returning or rethrowing, so a
/// test can assert on post-mortem ServeStats even when the coordinator
/// throws (all-shards-dead resume scenarios).
harness::CampaignResult run_dist(const harness::AppHarness& h,
                                 const harness::CampaignConfig& config,
                                 std::vector<ServeOptions> shard_opts,
                                 DistConfig dist = {},
                                 std::vector<ServeStats>* stats_out = nullptr) {
  const std::size_t n = shard_opts.size();
  std::deque<Conn> shard_ends;  // stable addresses for the serve threads
  std::vector<Conn> coord_ends;
  for (std::size_t i = 0; i < n; ++i) {
    auto [coord_end, shard_end] = make_conn_pair();
    coord_ends.push_back(std::move(coord_end));
    shard_ends.push_back(std::move(shard_end));
  }
  std::vector<ServeStats> stats(n);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      try {
        stats[i] = serve(shard_ends[i], shard_opts[i]);
      } catch (...) {
        // serve() only throws for local I/O failures; never hang the test.
      }
    });
  }
  harness::CampaignResult result;
  std::exception_ptr err;
  try {
    result = run_distributed_campaign(h, config, std::move(coord_ends), dist);
  } catch (...) {
    err = std::current_exception();
  }
  for (std::thread& t : threads) t.join();
  if (stats_out != nullptr) *stats_out = std::move(stats);
  if (err) std::rethrow_exception(err);
  return result;
}

void expect_trial_identical(const harness::TrialResult& x,
                            const harness::TrialResult& y, std::size_t i) {
  EXPECT_EQ(x.outcome, y.outcome) << "trial " << i;
  EXPECT_EQ(x.trap, y.trap) << "trial " << i;
  EXPECT_EQ(x.injected, y.injected) << "trial " << i;
  EXPECT_EQ(x.injection.rank, y.injection.rank) << "trial " << i;
  EXPECT_EQ(x.injection.site_id, y.injection.site_id) << "trial " << i;
  EXPECT_EQ(x.injection.dyn_index, y.injection.dyn_index) << "trial " << i;
  EXPECT_EQ(x.injection.bit, y.injection.bit) << "trial " << i;
  EXPECT_EQ(x.injection.cycle, y.injection.cycle) << "trial " << i;
  EXPECT_EQ(x.injection.before, y.injection.before) << "trial " << i;
  EXPECT_EQ(x.injection.after, y.injection.after) << "trial " << i;
  EXPECT_EQ(x.msg_injected, y.msg_injected) << "trial " << i;
  EXPECT_EQ(x.headers_quarantined, y.headers_quarantined) << "trial " << i;
  EXPECT_EQ(x.header_records_quarantined, y.header_records_quarantined)
      << "trial " << i;
  EXPECT_EQ(x.fault_pair_min_gap, y.fault_pair_min_gap) << "trial " << i;
  EXPECT_EQ(x.total_cml_final, y.total_cml_final) << "trial " << i;
  EXPECT_EQ(x.total_cml_peak, y.total_cml_peak) << "trial " << i;
  EXPECT_EQ(x.contaminated_pct, y.contaminated_pct) << "trial " << i;
  EXPECT_EQ(x.contaminated_ranks, y.contaminated_ranks) << "trial " << i;
  EXPECT_EQ(x.reported_iters, y.reported_iters) << "trial " << i;
  EXPECT_EQ(x.global_cycles, y.global_cycles) << "trial " << i;
  ASSERT_EQ(x.trace.size(), y.trace.size()) << "trial " << i;
  for (std::size_t s = 0; s < x.trace.size(); ++s) {
    EXPECT_EQ(x.trace[s].cycle, y.trace[s].cycle)
        << "trial " << i << " sample " << s;
    EXPECT_EQ(x.trace[s].cml, y.trace[s].cml)
        << "trial " << i << " sample " << s;
  }
  EXPECT_EQ(x.rank_first_contaminated, y.rank_first_contaminated)
      << "trial " << i;
  EXPECT_EQ(x.slope_a, y.slope_a) << "trial " << i;
  EXPECT_EQ(x.slope_b, y.slope_b) << "trial " << i;
  EXPECT_EQ(x.slope_usable, y.slope_usable) << "trial " << i;
  EXPECT_EQ(x.recovered, y.recovered) << "trial " << i;
  EXPECT_EQ(x.rollbacks, y.rollbacks) << "trial " << i;
  EXPECT_EQ(x.detections, y.detections) << "trial " << i;
  EXPECT_EQ(x.wasted_cycles, y.wasted_cycles) << "trial " << i;
  EXPECT_EQ(x.residual_cml, y.residual_cml) << "trial " << i;
  EXPECT_EQ(x.recovery_gave_up, y.recovery_gave_up) << "trial " << i;
  EXPECT_EQ(x.first_detection_clock, y.first_detection_clock) << "trial " << i;
  // Trial-economy provenance too: the shard mirrors the coordinator's
  // config, so even how a result was obtained matches the in-process run.
  EXPECT_EQ(x.pruned, y.pruned) << "trial " << i;
  EXPECT_EQ(x.prune_clock, y.prune_clock) << "trial " << i;
  EXPECT_EQ(x.dedup_count, y.dedup_count) << "trial " << i;
}

void expect_identical(const harness::CampaignResult& a,
                      const harness::CampaignResult& b) {
  EXPECT_EQ(a.counts.vanished, b.counts.vanished);
  EXPECT_EQ(a.counts.ona, b.counts.ona);
  EXPECT_EQ(a.counts.wrong_output, b.counts.wrong_output);
  EXPECT_EQ(a.counts.pex, b.counts.pex);
  EXPECT_EQ(a.counts.crashed, b.counts.crashed);

  EXPECT_EQ(a.recovered_trials, b.recovered_trials);
  EXPECT_EQ(a.total_rollbacks, b.total_rollbacks);
  EXPECT_EQ(a.total_wasted_cycles, b.total_wasted_cycles);

  EXPECT_EQ(a.total_msg_injected, b.total_msg_injected);
  EXPECT_EQ(a.total_headers_quarantined, b.total_headers_quarantined);
  EXPECT_EQ(a.total_header_records_quarantined,
            b.total_header_records_quarantined);

  EXPECT_EQ(a.pruned_trials, b.pruned_trials);
  EXPECT_EQ(a.deduped_trials, b.deduped_trials);

  ASSERT_EQ(a.slopes.size(), b.slopes.size());
  for (std::size_t i = 0; i < a.slopes.size(); ++i) {
    EXPECT_EQ(a.slopes[i], b.slopes[i]) << "slope " << i;
  }
  ASSERT_EQ(a.max_contaminated_pct.size(), b.max_contaminated_pct.size());
  for (std::size_t i = 0; i < a.max_contaminated_pct.size(); ++i) {
    EXPECT_EQ(a.max_contaminated_pct[i], b.max_contaminated_pct[i])
        << "max_contaminated_pct " << i;
  }

  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    expect_trial_identical(a.trials[i], b.trials[i], i);
  }
}

// --- shard-count sweep ------------------------------------------------------

TEST(DistributedCampaign, MatchesInProcessAtEveryShardCount) {
  harness::AppHarness h = make_harness("matvec", 1);
  const harness::CampaignConfig cc = campaign_config(32);
  const harness::CampaignResult local = harness::run_campaign(h, cc);
  EXPECT_EQ(local.counts.total(), 32u);

  for (std::size_t nshards : {1u, 2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(nshards));
    const harness::CampaignResult dist =
        run_dist(h, cc, std::vector<ServeOptions>(nshards));
    expect_identical(local, dist);
  }
}

TEST(DistributedCampaign, CapturedTracesAndSlopesMatch) {
  harness::AppHarness h = make_harness("matvec", 1);
  harness::CampaignConfig cc = campaign_config(24);
  cc.capture_traces = true;
  const harness::CampaignResult local = harness::run_campaign(h, cc);
  std::size_t kept = 0;
  for (const harness::TrialResult& t : local.trials) kept += !t.trace.empty();
  EXPECT_GT(kept, 0u);

  const harness::CampaignResult dist =
      run_dist(h, cc, std::vector<ServeOptions>(2));
  expect_identical(local, dist);
}

TEST(DistributedCampaign, RecoveryCampaignMatches) {
  harness::AppHarness h = make_harness("matvec", 1, /*recovery=*/true);
  const harness::CampaignConfig cc = campaign_config(24);
  const harness::CampaignResult local = harness::run_campaign(h, cc);
  const harness::CampaignResult dist =
      run_dist(h, cc, std::vector<ServeOptions>(2));
  expect_identical(local, dist);
}

TEST(DistributedCampaign, MultiFaultMessageCorruptionCampaignMatches) {
  // k=4 register faults + 2 in-flight message faults per trial on a real
  // communicating app: the scenario classes of PR 8 survive distribution.
  harness::AppHarness h = make_harness("lulesh", 4);
  harness::CampaignConfig cc = campaign_config(12);
  cc.faults_per_run = 4;
  cc.msg_faults_per_run = 2;
  const harness::CampaignResult local = harness::run_campaign(h, cc);
  EXPECT_GT(local.total_msg_injected, 0u);
  const harness::CampaignResult dist =
      run_dist(h, cc, std::vector<ServeOptions>(2));
  expect_identical(local, dist);
}

TEST(DistributedCampaign, TrialEconomyTogglesMatch) {
  harness::AppHarness h = make_harness("matvec", 1);
  for (const bool economy : {true, false}) {
    SCOPED_TRACE(economy ? "prune+dedup" : "neither");
    harness::CampaignConfig cc = campaign_config(32);
    cc.prune = economy;
    cc.dedup = economy;
    const harness::CampaignResult local = harness::run_campaign(h, cc);
    const harness::CampaignResult dist =
        run_dist(h, cc, std::vector<ServeOptions>(2));
    expect_identical(local, dist);
  }
}

TEST(DistributedCampaign, MetricsFoldMatchesInProcessRegistry) {
  // Each shard folds its ranges into a local registry and ships snapshots;
  // the coordinator absorbs them. Absorption is commutative, so the merged
  // registry must equal the in-process one exactly.
  harness::AppHarness h = make_harness("matvec", 1);

  obs::MetricsRegistry local_reg;
  harness::CampaignConfig cc = campaign_config(24);
  cc.metrics = &local_reg;
  const harness::CampaignResult local = harness::run_campaign(h, cc);

  obs::MetricsRegistry dist_reg;
  cc.metrics = &dist_reg;
  const harness::CampaignResult dist =
      run_dist(h, cc, std::vector<ServeOptions>(2));

  expect_identical(local, dist);
  EXPECT_EQ(local_reg.snapshot(), dist_reg.snapshot());
  EXPECT_GT(local_reg.snapshot().counters.count("campaign.trials"), 0u);
}

// --- violence ---------------------------------------------------------------

TEST(DistributedCampaign, KilledShardIsRequeuedWithoutIdentityLoss) {
  // Shard 0 drops its link after one Result frame — indistinguishable from
  // SIGKILL. The coordinator must requeue its in-flight range onto shard 1
  // and still finish bit-identical.
  harness::AppHarness h = make_harness("matvec", 1);
  const harness::CampaignConfig cc = campaign_config(32);
  const harness::CampaignResult local = harness::run_campaign(h, cc);

  std::vector<ServeOptions> opts(2);
  opts[0].max_ranges = 1;
  DistConfig dist;
  dist.range_size = 4;  // 8 ranges: plenty left when shard 0 dies
  std::vector<ServeStats> stats;
  const harness::CampaignResult r = run_dist(h, cc, opts, dist, &stats);
  expect_identical(local, r);
  // Shard 0 executed one range but dropped the link before delivering it,
  // so shard 1 ends up executing (and delivering) all 8.
  EXPECT_EQ(stats[0].ranges_executed, 1u);
  EXPECT_EQ(stats[1].ranges_executed, 8u);
}

TEST(DistributedCampaign, CoordinatorJournalResumesToIdenticalResult) {
  harness::AppHarness h = make_harness("matvec", 1);
  const harness::CampaignConfig cc = campaign_config(32);
  const harness::CampaignResult local = harness::run_campaign(h, cc);

  const std::string journal =
      ::testing::TempDir() + "fprop_dist_resume_test.fjr";
  std::remove(journal.c_str());
  DistConfig dist;
  dist.journal_path = journal;
  dist.range_size = 4;

  // Round 1: every shard delivers one range, then dies mid-second-range
  // (the chaos hook drops the link before the Nth Result is sent). The
  // coordinator merges and journals the two delivered ranges, then throws
  // with work remaining.
  {
    std::vector<ServeOptions> opts(2);
    opts[0].max_ranges = 2;
    opts[1].max_ranges = 2;
    std::vector<ServeStats> stats;
    EXPECT_THROW(run_dist(h, cc, opts, dist, &stats), Error);
    EXPECT_EQ(stats[0].ranges_executed + stats[1].ranges_executed, 4u);
  }

  // Round 2: fresh shards, same journal — resumes past the merged prefix
  // and completes bit-identical to the uninterrupted in-process run.
  std::vector<ServeStats> stats;
  const harness::CampaignResult resumed =
      run_dist(h, cc, std::vector<ServeOptions>(2), dist, &stats);
  expect_identical(local, resumed);
  EXPECT_LE(stats[0].trials_executed + stats[1].trials_executed,
            32u - 2 * 4);  // at least the journaled ranges were not re-run
  std::remove(journal.c_str());
}

TEST(DistributedCampaign, ShardJournalReplaysCompletedRanges) {
  // A shard keeping its own journal answers re-assigned ranges without
  // re-executing them: a full second campaign over the same spec runs zero
  // trials and still produces the identical result.
  harness::AppHarness h = make_harness("matvec", 1);
  const harness::CampaignConfig cc = campaign_config(24);
  const harness::CampaignResult local = harness::run_campaign(h, cc);

  const std::string journal =
      ::testing::TempDir() + "fprop_shard_journal_test.fjr";
  std::remove(journal.c_str());
  std::vector<ServeOptions> opts(1);
  opts[0].journal_path = journal;

  std::vector<ServeStats> first_stats;
  const harness::CampaignResult first =
      run_dist(h, cc, opts, {}, &first_stats);
  expect_identical(local, first);
  EXPECT_EQ(first_stats[0].ranges_replayed, 0u);
  EXPECT_EQ(first_stats[0].trials_executed, 24u);

  std::vector<ServeStats> second_stats;
  const harness::CampaignResult second =
      run_dist(h, cc, opts, {}, &second_stats);
  expect_identical(local, second);
  EXPECT_GT(second_stats[0].ranges_replayed, 0u);
  EXPECT_EQ(second_stats[0].trials_executed, 0u);
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace fprop::shard
