// Adversarial tests for the shard wire protocol (DESIGN.md §15): round
// trips for every frame type, then directed attacks — truncation at every
// boundary, single-bit flips over whole frames, oversized and malformed
// claims — all of which must surface as typed ProtocolErrors, never a
// crash, hang, or silent misparse. Mirrors the PR 6 header-quarantine
// discipline at the process boundary.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "fprop/shard/journal.h"
#include "fprop/shard/protocol.h"

namespace fprop::shard {
namespace {

JobSpec sample_spec() {
  JobSpec spec;
  spec.app = "matvec";
  spec.experiment.nranks = 4;
  spec.experiment.overrides = {{"ITERS", "6"}, {"N", "32"}};
  spec.experiment.targets.compares = true;
  spec.experiment.rng_seed = 0x1234;
  spec.experiment.budget_factor = 6.5;
  spec.experiment.snapshot_rungs = 7;
  spec.experiment.recovery.enabled = true;
  spec.experiment.recovery.policy = model::RollbackPolicy::FpsModel;
  spec.experiment.recovery.fps = 0.37;
  spec.campaign.trials = 300;
  spec.campaign.seed = 99;
  spec.campaign.capture_traces = true;
  spec.campaign.max_kept_traces = 3;
  spec.campaign.faults_per_run = 4;
  spec.campaign.msg_faults_per_run = 2;
  spec.campaign.jobs = 8;
  spec.campaign.warm_start = false;
  spec.campaign.exec_tier = vm::ExecTier::Interp;
  spec.campaign.prune = false;
  spec.campaign.dedup = false;
  spec.campaign.trace_dir = "/tmp/out";
  spec.metrics_enabled = true;
  return spec;
}

harness::TrialResult sample_trial() {
  harness::TrialResult t;
  t.outcome = harness::Outcome::WrongOutput;
  t.trap = vm::Trap::BadAccess;
  t.injected = true;
  t.injection = {3, -7, 123456, 17, 999, 0xdeadbeef, 0xfeedface};
  t.msg_injected = 2;
  t.headers_quarantined = 1;
  t.header_records_quarantined = 4;
  t.fault_pair_min_gap = 4242;
  t.total_cml_final = 77;
  t.total_cml_peak = 150;
  t.contaminated_pct = 12.75;
  t.contaminated_ranks = 2;
  t.reported_iters = 6;
  t.global_cycles = 1234567;
  t.trace = {{100, 1}, {200, 5}, {300, 4}};
  t.rank_first_contaminated = {std::nullopt, 512, std::nullopt, 768};
  t.slope_a = -0.25;
  t.slope_b = 3.5e-7;
  t.slope_usable = true;
  t.recovered = true;
  t.rollbacks = 1;
  t.detections = 2;
  t.wasted_cycles = 5000;
  t.residual_cml = 3;
  t.recovery_gave_up = false;
  t.first_detection_clock = 444;
  t.pruned = true;
  t.prune_clock = 2048;
  t.dedup_count = 5;
  return t;
}

void expect_trial_eq(const harness::TrialResult& a,
                     const harness::TrialResult& b) {
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.trap, b.trap);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.injection.rank, b.injection.rank);
  EXPECT_EQ(a.injection.site_id, b.injection.site_id);
  EXPECT_EQ(a.injection.dyn_index, b.injection.dyn_index);
  EXPECT_EQ(a.injection.bit, b.injection.bit);
  EXPECT_EQ(a.injection.cycle, b.injection.cycle);
  EXPECT_EQ(a.injection.before, b.injection.before);
  EXPECT_EQ(a.injection.after, b.injection.after);
  EXPECT_EQ(a.msg_injected, b.msg_injected);
  EXPECT_EQ(a.headers_quarantined, b.headers_quarantined);
  EXPECT_EQ(a.header_records_quarantined, b.header_records_quarantined);
  EXPECT_EQ(a.fault_pair_min_gap, b.fault_pair_min_gap);
  EXPECT_EQ(a.total_cml_final, b.total_cml_final);
  EXPECT_EQ(a.total_cml_peak, b.total_cml_peak);
  EXPECT_EQ(a.contaminated_pct, b.contaminated_pct);
  EXPECT_EQ(a.contaminated_ranks, b.contaminated_ranks);
  EXPECT_EQ(a.reported_iters, b.reported_iters);
  EXPECT_EQ(a.global_cycles, b.global_cycles);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].cycle, b.trace[i].cycle);
    EXPECT_EQ(a.trace[i].cml, b.trace[i].cml);
  }
  EXPECT_EQ(a.rank_first_contaminated, b.rank_first_contaminated);
  EXPECT_EQ(a.slope_a, b.slope_a);
  EXPECT_EQ(a.slope_b, b.slope_b);
  EXPECT_EQ(a.slope_usable, b.slope_usable);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.rollbacks, b.rollbacks);
  EXPECT_EQ(a.detections, b.detections);
  EXPECT_EQ(a.wasted_cycles, b.wasted_cycles);
  EXPECT_EQ(a.residual_cml, b.residual_cml);
  EXPECT_EQ(a.recovery_gave_up, b.recovery_gave_up);
  EXPECT_EQ(a.first_detection_clock, b.first_detection_clock);
  EXPECT_EQ(a.pruned, b.pruned);
  EXPECT_EQ(a.prune_clock, b.prune_clock);
  EXPECT_EQ(a.dedup_count, b.dedup_count);
}

RangeResult sample_range() {
  RangeResult rr;
  rr.first = 10;
  rr.last = 20;
  rr.results.emplace_back(11, sample_trial());
  harness::TrialResult second = sample_trial();
  second.outcome = harness::Outcome::Crashed;
  second.trace.clear();
  rr.results.emplace_back(15, second);
  rr.metrics.counters = {{"campaign.trials", 10}, {"inject.flips", 9}};
  obs::HistogramSnapshot hs;
  hs.bounds = {1, 4, 16};
  hs.counts = {2, 3, 4, 1};
  hs.count = 10;
  hs.sum = 77;
  rr.metrics.histograms = {{"shadow.probe_len", hs}};
  return rr;
}

// --- round trips -----------------------------------------------------------

TEST(Protocol, JobSpecRoundTripsAndDigestIsStable) {
  const JobSpec spec = sample_spec();
  const Frame f = make_setup_frame(spec);
  std::size_t consumed = 0;
  const std::vector<std::uint8_t> bytes = encode_frame(f);
  const Frame back = decode_frame(bytes.data(), bytes.size(), &consumed);
  EXPECT_EQ(consumed, bytes.size());
  const JobSpec out = parse_setup(back);

  EXPECT_EQ(out.app, spec.app);
  EXPECT_EQ(out.experiment.nranks, spec.experiment.nranks);
  EXPECT_EQ(out.experiment.overrides, spec.experiment.overrides);
  EXPECT_EQ(out.experiment.targets.compares, true);
  EXPECT_EQ(out.experiment.budget_factor, spec.experiment.budget_factor);
  EXPECT_EQ(out.experiment.recovery.policy, model::RollbackPolicy::FpsModel);
  EXPECT_EQ(out.experiment.recovery.fps, spec.experiment.recovery.fps);
  EXPECT_EQ(out.campaign.trials, spec.campaign.trials);
  EXPECT_EQ(out.campaign.max_kept_traces, spec.campaign.max_kept_traces);
  EXPECT_EQ(out.campaign.exec_tier, vm::ExecTier::Interp);
  EXPECT_EQ(out.campaign.trace_dir, spec.campaign.trace_dir);
  EXPECT_EQ(out.metrics_enabled, true);
  EXPECT_EQ(out.campaign.metrics, nullptr);  // never crosses the wire

  EXPECT_EQ(job_digest(out), job_digest(spec));
}

TEST(Protocol, RangeResultRoundTripsEveryTrialField) {
  const RangeResult rr = sample_range();
  const std::vector<std::uint8_t> bytes = encode_frame(make_result_frame(rr));
  const RangeResult out =
      parse_result(decode_frame(bytes.data(), bytes.size()));
  EXPECT_EQ(out.first, rr.first);
  EXPECT_EQ(out.last, rr.last);
  ASSERT_EQ(out.results.size(), rr.results.size());
  for (std::size_t i = 0; i < rr.results.size(); ++i) {
    EXPECT_EQ(out.results[i].first, rr.results[i].first);
    expect_trial_eq(out.results[i].second, rr.results[i].second);
  }
  EXPECT_EQ(out.metrics, rr.metrics);
}

TEST(Protocol, ControlFramesRoundTrip) {
  {
    SetupAck ack{0xabcdef, kProtocolVersion, 4242, 99999};
    const auto bytes = encode_frame(make_setup_ack_frame(ack));
    const SetupAck out =
        parse_setup_ack(decode_frame(bytes.data(), bytes.size()));
    EXPECT_EQ(out.digest, ack.digest);
    EXPECT_EQ(out.protocol, ack.protocol);
    EXPECT_EQ(out.total_dyn_points, ack.total_dyn_points);
    EXPECT_EQ(out.golden_cycles, ack.golden_cycles);
  }
  {
    const auto bytes = encode_frame(make_assign_frame(128, 256));
    const auto [first, last] =
        parse_assign(decode_frame(bytes.data(), bytes.size()));
    EXPECT_EQ(first, 128u);
    EXPECT_EQ(last, 256u);
  }
  {
    const auto bytes = encode_frame(make_error_frame("boom"));
    EXPECT_EQ(parse_error(decode_frame(bytes.data(), bytes.size())), "boom");
  }
  for (const FrameType t : {FrameType::Shutdown, FrameType::Bye}) {
    const auto bytes = encode_frame(Frame{t, {}});
    EXPECT_EQ(decode_frame(bytes.data(), bytes.size()).type, t);
  }
}

// --- truncation ------------------------------------------------------------

TEST(Protocol, EveryTruncationIsDetected) {
  const std::vector<std::uint8_t> bytes =
      encode_frame(make_result_frame(sample_range()));
  // Any prefix strictly shorter than the frame must throw Truncated: the
  // claimed payload length is clamped to the bytes physically present.
  for (std::size_t len : {std::size_t{0}, std::size_t{5},
                          kFrameHeaderBytes - 1, kFrameHeaderBytes,
                          bytes.size() / 2, bytes.size() - 1}) {
    try {
      decode_frame(bytes.data(), len);
      FAIL() << "prefix of " << len << " bytes decoded";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.fault(), WireFault::Truncated) << "prefix " << len;
    }
  }
}

// --- bit flips -------------------------------------------------------------

TEST(Protocol, EverySingleBitFlipIsRejected) {
  // The satellite-1 hardening goal verbatim: flip each bit of an encoded
  // Result frame; decode+parse must throw a typed ProtocolError every time
  // (header fields are validated individually, the payload is covered by
  // the FNV-1a checksum, and a type flip to another valid frame type fails
  // the parse_result expectation).
  const std::vector<std::uint8_t> bytes =
      encode_frame(make_result_frame(sample_range()));
  std::size_t rejected = 0;
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    std::vector<std::uint8_t> mutated = bytes;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    try {
      parse_result(decode_frame(mutated.data(), mutated.size()));
    } catch (const ProtocolError&) {
      ++rejected;
      continue;
    }
    FAIL() << "bit flip at " << bit << " went undetected";
  }
  EXPECT_EQ(rejected, bytes.size() * 8);
}

// --- oversized / malformed claims ------------------------------------------

TEST(Protocol, OversizedClaimIsRejectedWithoutAllocation) {
  Frame f;
  f.type = FrameType::Assign;
  std::vector<std::uint8_t> bytes = encode_frame(f);
  // Rewrite payload_len (offset 8) to a ludicrous claim.
  const std::uint64_t huge = kMaxFramePayload + 1;
  for (int i = 0; i < 8; ++i) {
    bytes[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(huge >> (8 * i));
  }
  try {
    decode_frame(bytes.data(), bytes.size());
    FAIL();
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.fault(), WireFault::Oversized);
  }
}

TEST(Protocol, HeaderFieldViolationsAreTyped) {
  const std::vector<std::uint8_t> good = encode_frame(make_assign_frame(0, 4));
  {
    auto bad = good;
    bad[0] ^= 0xff;  // magic
    try {
      decode_frame(bad.data(), bad.size());
      FAIL();
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.fault(), WireFault::BadMagic);
    }
  }
  {
    auto bad = good;
    bad[4] = 42;  // version
    try {
      decode_frame(bad.data(), bad.size());
      FAIL();
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.fault(), WireFault::BadVersion);
    }
  }
  {
    auto bad = good;
    bad[5] = 200;  // type
    try {
      decode_frame(bad.data(), bad.size());
      FAIL();
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.fault(), WireFault::BadType);
    }
  }
  {
    auto bad = good;
    bad[6] = 1;  // reserved
    try {
      decode_frame(bad.data(), bad.size());
      FAIL();
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.fault(), WireFault::Malformed);
    }
  }
}

TEST(Protocol, MalformedPayloadsAreRejected) {
  // Structurally invalid payloads behind a *valid* checksum: the codec's
  // own validation has to catch these, not the framing.
  const auto reject = [](const Frame& f, const char* what) {
    const auto bytes = encode_frame(f);
    try {
      const Frame back = decode_frame(bytes.data(), bytes.size());
      switch (back.type) {
        case FrameType::Setup: parse_setup(back); break;
        case FrameType::Assign: parse_assign(back); break;
        case FrameType::Result: parse_result(back); break;
        default: break;
      }
      FAIL() << what << " was accepted";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.fault(), WireFault::Malformed) << what;
    }
  };

  {  // inverted range
    Frame f{FrameType::Assign, {}};
    WireWriter w(f.payload);
    w.u64(9);
    w.u64(3);
    reject(f, "inverted assign");
  }
  {  // trailing bytes after a valid assign
    Frame f = make_assign_frame(0, 4);
    f.payload.push_back(0);
    reject(f, "trailing bytes");
  }
  {  // element count exceeding the physical payload
    Frame f{FrameType::Result, {}};
    WireWriter w(f.payload);
    w.u64(0);
    w.u64(1u << 20);
    w.u64(1u << 19);  // claims 2^19 trial results, payload ends here
    reject(f, "phantom element count");
  }
  {  // trial index outside its range
    RangeResult rr = sample_range();
    rr.results[0].first = 99;  // outside [10, 20)
    Frame f{FrameType::Result, {}};
    WireWriter w(f.payload);
    write_range_result(w, rr);
    reject(f, "out-of-range trial index");
  }
  {  // more results than the span
    RangeResult rr;
    rr.first = 0;
    rr.last = 1;
    rr.results.emplace_back(0, sample_trial());
    Frame f{FrameType::Result, {}};
    WireWriter w(f.payload);
    // Hand-write a lying count of 2.
    w.u64(rr.first);
    w.u64(rr.last);
    w.u64(2);
    w.u64(0);
    write_trial_result(w, sample_trial());
    w.u64(0);
    write_trial_result(w, sample_trial());
    write_metrics_snapshot(w, rr.metrics);
    reject(f, "result overfills its span");
  }
  {  // enum out of range inside a trial
    Frame f{FrameType::Result, {}};
    WireWriter w(f.payload);
    w.u64(0);
    w.u64(4);
    w.u64(1);
    w.u64(0);
    w.u8(99);  // outcome
    reject(f, "bad outcome enum");
  }
  {  // histogram bucket/bound mismatch
    RangeResult rr;
    rr.first = 0;
    rr.last = 1;
    obs::HistogramSnapshot hs;
    hs.bounds = {1, 2};
    hs.counts = {1, 1};  // must be bounds+1
    rr.metrics.histograms = {{"h", hs}};
    Frame f{FrameType::Result, {}};
    WireWriter w(f.payload);
    write_range_result(w, rr);
    reject(f, "histogram bucket mismatch");
  }
}

// --- framed connections ----------------------------------------------------

TEST(Protocol, ConnRoundTripsFramesAndSignalsCleanEof) {
  auto [a, b] = make_conn_pair();
  const RangeResult rr = sample_range();
  a.send(make_result_frame(rr));
  a.send(Frame{FrameType::Shutdown, {}});
  std::optional<Frame> f1 = b.recv();
  ASSERT_TRUE(f1.has_value());
  const RangeResult out = parse_result(*f1);
  EXPECT_EQ(out.results.size(), rr.results.size());
  std::optional<Frame> f2 = b.recv();
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->type, FrameType::Shutdown);
  a.close();
  EXPECT_FALSE(b.recv().has_value());  // clean EOF, not an error
}

TEST(Protocol, ConnTreatsEofMidFrameAsTruncated) {
  // A peer that dies between the header and the payload must surface as a
  // Truncated error, not a hang or a short misparse. Raw socketpair so we
  // can hang up after a partial write.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Conn reader(fds[0]);
  const std::vector<std::uint8_t> bytes =
      encode_frame(make_result_frame(sample_range()));
  for (std::size_t cut : {std::size_t{10}, kFrameHeaderBytes,
                          bytes.size() - 1}) {
    int pair2[2] = {fds[0], fds[1]};
    if (cut != 10) {  // fresh pair for each leg after the first
      ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair2), 0);
      reader = Conn(pair2[0]);
    }
    ASSERT_EQ(::write(pair2[1], bytes.data(), cut),
              static_cast<ssize_t>(cut));
    ::close(pair2[1]);
    try {
      reader.recv();
      FAIL() << "EOF after " << cut << " bytes was not flagged";
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.fault(), WireFault::Truncated) << "cut " << cut;
    }
  }
}

TEST(Protocol, ConnRejectsJournalHeaderOnLiveLink) {
  // JournalHeader is file-format-only; a peer sending it is broken.
  auto [a, b] = make_conn_pair();
  a.send(Frame{FrameType::JournalHeader, {}});
  try {
    b.recv();
    FAIL();
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.fault(), WireFault::BadType);
  }
}

// --- journal ---------------------------------------------------------------

class JournalTest : public ::testing::Test {
 protected:
  std::string path_;
  RangeJournal::Header header_{0x1234, 100, 42, 10};

  // Per-test file name: ctest -j runs each case as its own process, so a
  // shared path would let SetUp delete a sibling's live journal.
  void SetUp() override {
    path_ = ::testing::TempDir() + "fprop_journal_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".fjr";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(JournalTest, AppendsAndRecovers) {
  {
    RangeJournal j(path_, header_);
    EXPECT_TRUE(j.recovered().empty());
    j.append(sample_range());
    RangeResult second = sample_range();
    second.first = 20;
    second.last = 30;
    second.results.clear();
    second.results.emplace_back(25, sample_trial());
    j.append(second);
  }
  RangeJournal j(path_, header_);
  ASSERT_EQ(j.recovered().size(), 2u);
  EXPECT_EQ(j.recovered()[0].first, 10u);
  EXPECT_EQ(j.recovered()[1].first, 20u);
  expect_trial_eq(j.recovered()[0].results[0].second, sample_trial());
  EXPECT_EQ(j.header().range_size, 10u);
}

TEST_F(JournalTest, TruncatedTailIsDroppedNotFatal) {
  {
    RangeJournal j(path_, header_);
    j.append(sample_range());
    j.append(sample_range());
  }
  // Chop bytes off the tail — a crash mid-append.
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(::truncate(path_.c_str(), size - 37), 0);
  }
  RangeJournal j(path_, header_);
  EXPECT_EQ(j.recovered().size(), 1u);  // the whole record survived
  // And the journal keeps working after the repair.
  j.append(sample_range());
  RangeJournal k(path_, header_);
  EXPECT_EQ(k.recovered().size(), 2u);
}

TEST_F(JournalTest, DifferentCampaignIsRefused) {
  { RangeJournal j(path_, header_); }
  RangeJournal::Header other = header_;
  other.digest ^= 1;
  EXPECT_THROW(RangeJournal(path_, other), Error);
  other = header_;
  other.trials = 7;
  EXPECT_THROW(RangeJournal(path_, other), Error);
}

TEST_F(JournalTest, PersistedRangeSizeWins) {
  { RangeJournal j(path_, header_); }
  RangeJournal::Header resized = header_;
  resized.range_size = 999;  // changed shard count would re-derive this
  RangeJournal j(path_, resized);
  EXPECT_EQ(j.header().range_size, 10u);
}

TEST_F(JournalTest, GarbageFileIsRefused) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a journal", f);
    std::fclose(f);
  }
  EXPECT_THROW(RangeJournal(path_, header_), Error);
}

}  // namespace
}  // namespace fprop::shard
