#include <gtest/gtest.h>

#include "fprop/apps/registry.h"
#include "fprop/ir/printer.h"
#include "fprop/ir/verifier.h"
#include "fprop/minic/compile.h"
#include "fprop/passes/passes.h"
#include "fprop/vm/interp.h"

namespace fprop::passes {
namespace {

TEST(InstrClasses, DataArithVsCompareVsAddress) {
  using ir::Opcode;
  EXPECT_TRUE(is_data_arith(Opcode::AddF));
  EXPECT_TRUE(is_data_arith(Opcode::ShrI));
  EXPECT_TRUE(is_data_arith(Opcode::F2I));
  EXPECT_FALSE(is_data_arith(Opcode::LtI));
  EXPECT_FALSE(is_data_arith(Opcode::PtrAdd));
  EXPECT_FALSE(is_data_arith(Opcode::Load));
  EXPECT_TRUE(is_compare(Opcode::LtI));
  EXPECT_TRUE(is_compare(Opcode::EqP));
  EXPECT_FALSE(is_compare(Opcode::AddI));
}

TEST(FaultInjectionPass, InstrumentsArithmeticOperands) {
  ir::Module m = minic::compile(R"(
fn main() {
  var a: float = 1.5;
  var b: float = a * a + a;
  output_f(b);
}
)");
  const auto before = m.static_instr_count();
  const auto sites = run_fault_injection_pass(m);
  // a*a has two non-const operands; (a*a)+a has two (product + a).
  EXPECT_EQ(sites.size(), 4u);
  EXPECT_EQ(m.static_instr_count(), before + 4);
  EXPECT_NO_THROW(ir::verify(m));
  // Site ids are dense and ordered.
  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_EQ(sites[i].site_id, static_cast<std::int64_t>(i));
    EXPECT_EQ(sites[i].function, "main");
  }
}

TEST(FaultInjectionPass, ConstantsNotInstrumented) {
  ir::Module m = minic::compile(R"(
fn main() {
  var b: float = 2.0 * 3.0;   // both operands are materialized constants
  output_f(b);
}
)");
  const auto sites = run_fault_injection_pass(m);
  EXPECT_TRUE(sites.empty());
}

TEST(FaultInjectionPass, TargetSelectionFlags) {
  const char* src = R"(
fn main() {
  var a: float* = alloc_float(4);
  var i: int = 1;
  a[i] = a[i] * 2.0;   // ptradd, load, store, mul
  output_i(i < 3);     // compare
}
)";
  InjectTargets none;
  none.arith = false;
  {
    ir::Module m = minic::compile(src);
    EXPECT_TRUE(run_fault_injection_pass(m, none).empty());
  }
  InjectTargets cmp = none;
  cmp.compares = true;
  InjectTargets addr = none;
  addr.addresses = true;
  InjectTargets ldst = none;
  ldst.load_address = true;
  ldst.store_operands = true;
  std::size_t n_cmp = 0;
  std::size_t n_addr = 0;
  std::size_t n_ldst = 0;
  {
    ir::Module m = minic::compile(src);
    n_cmp = run_fault_injection_pass(m, cmp).size();
  }
  {
    ir::Module m = minic::compile(src);
    n_addr = run_fault_injection_pass(m, addr).size();
  }
  {
    ir::Module m = minic::compile(src);
    n_ldst = run_fault_injection_pass(m, ldst).size();
  }
  EXPECT_GT(n_cmp, 0u);
  EXPECT_GT(n_addr, 0u);
  EXPECT_GT(n_ldst, 0u);
}

TEST(FaultInjectionPass, BooleanRegistersGetWidthOne) {
  ir::Module m = minic::compile(R"(
fn main() {
  var a: int = 3;
  var b: int = 4;
  var both: int = (a < 5) && (b < 5);  // AndI over two booleans
  output_i(both);
  output_i(a + b);                     // full-width arithmetic site
}
)");
  (void)run_fault_injection_pass(m);
  bool saw_width1 = false;
  bool saw_width64 = false;
  for (const auto& block : m.find("main")->blocks) {
    for (const auto& in : block.code) {
      if (in.op != ir::Opcode::FimInj) continue;
      if (in.inj_width == 1) saw_width1 = true;
      if (in.inj_width == 64) saw_width64 = true;
    }
  }
  EXPECT_TRUE(saw_width1);   // the && operands
  EXPECT_TRUE(saw_width64);  // any full-width value elsewhere
}

TEST(DualChainPass, Fig3GoldenTransformation) {
  // The paper's running example c = 2*a + b (Fig. 3): after LLFI++ and FPM
  // lowering the function must contain the primary chain with fim_inj, the
  // replicated secondary chain, fpm_fetch at loads and fpm_store at stores.
  ir::Module m = minic::compile(R"(
fn main() {
  var mem: float* = alloc_float(3);
  mem[0] = 3.0;   // a
  mem[1] = 4.0;   // b
  mem[2] = 2.0 * mem[0] + mem[1];   // c = 2*a + b
  output_f(mem[2]);
}
)");
  const auto sites = instrument_module(m);
  const std::string text = ir::to_string(*m.find("main"));
  EXPECT_NE(text.find("fim_inj"), std::string::npos);
  EXPECT_NE(text.find("fpm_fetch"), std::string::npos);
  EXPECT_NE(text.find("fpm_store"), std::string::npos);
  EXPECT_NE(text.find("dual_chain"), std::string::npos);
  // No plain stores survive the transformation.
  EXPECT_EQ(text.find(" st."), std::string::npos);
  // Replicated multiply exists (a mul whose operands are both p-registers).
  EXPECT_NE(text.find("p = mul.f64"), std::string::npos);
  EXPECT_FALSE(sites.empty());
}

TEST(DualChainPass, RunningTwiceThrows) {
  ir::Module m = minic::compile("fn main() { output_i(1 + 2); }");
  run_dual_chain_pass(m);
  EXPECT_THROW(run_dual_chain_pass(m), Error);
}

TEST(DualChainPass, DualCallConvention) {
  ir::Module m = minic::compile(R"(
fn add(a: float, b: float) -> float { return a + b; }
fn main() { output_f(add(1.0, 2.0)); }
)");
  run_dual_chain_pass(m);
  EXPECT_NO_THROW(ir::verify(m));
  const ir::Function& add = *m.find("add");
  EXPECT_TRUE(add.dual_chain);
  EXPECT_EQ(add.params.size(), 4u);  // (a, b, a_p, b_p)
  // main's call site passes four args and receives two results.
  bool checked = false;
  for (const auto& block : m.find("main")->blocks) {
    for (const auto& in : block.code) {
      if (in.op != ir::Opcode::Call) continue;
      EXPECT_EQ(in.args.size(), 4u);
      EXPECT_NE(in.dst, ir::kNoReg);
      EXPECT_NE(in.dst2, ir::kNoReg);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(DualChainPass, PureIntrinsicsReplicated) {
  ir::Module m = minic::compile(R"(
fn main() {
  var x: float = 2.0;
  output_f(sqrt(x * x));
}
)");
  run_dual_chain_pass(m);
  std::size_t sqrt_count = 0;
  std::size_t output_count = 0;
  for (const auto& block : m.find("main")->blocks) {
    for (const auto& in : block.code) {
      if (in.op != ir::Opcode::Intrinsic) continue;
      if (in.intr == ir::IntrinsicId::Sqrt) ++sqrt_count;
      if (in.intr == ir::IntrinsicId::OutputF) ++output_count;
    }
  }
  EXPECT_EQ(sqrt_count, 2u);   // replicated (the paper's sin() case)
  EXPECT_EQ(output_count, 1u); // impure: executed once
}

// Property: on a fault-free run, the instrumented program must produce
// exactly the outputs of the uninstrumented program and leave the shadow
// table empty. Checked over every proxy application (single-rank apps run
// directly; this also exercises the dual call convention in real code).
class DualChainEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(DualChainEquivalence, FaultFreeRunsAreBitIdentical) {
  const std::string snippet = GetParam();
  ir::Module plain = minic::compile(snippet);
  ir::Module instrumented = minic::compile(snippet);
  (void)instrument_module(instrumented);

  vm::Interp vm_plain(plain, 0, vm::InterpConfig{});
  ASSERT_EQ(vm_plain.run(1ull << 30), vm::RunState::Done);

  fpm::FpmRuntime fpm;
  vm::Interp vm_inst(instrumented, 0, vm::InterpConfig{});
  vm_inst.set_fpm(&fpm);
  ASSERT_EQ(vm_inst.run(1ull << 30), vm::RunState::Done);

  ASSERT_EQ(vm_plain.outputs().size(), vm_inst.outputs().size());
  for (std::size_t i = 0; i < vm_plain.outputs().size(); ++i) {
    EXPECT_EQ(vm::bits_of(vm_plain.outputs()[i]),
              vm::bits_of(vm_inst.outputs()[i]))
        << "output " << i;
  }
  EXPECT_TRUE(fpm.shadow().empty());
  EXPECT_EQ(fpm.shadow().peak(), 0u);
  EXPECT_EQ(fpm.stats().stores_divergent, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, DualChainEquivalence,
    ::testing::Values(
        // arithmetic + loops
        R"(fn main() {
          var s: float = 0.0;
          for (var i: int = 0; i < 50; i = i + 1) { s = s + float(i) * 0.5; }
          output_f(s);
        })",
        // arrays + functions
        R"(fn norm(a: float*, n: int) -> float {
          var s: float = 0.0;
          for (var i: int = 0; i < n; i = i + 1) { s = s + a[i] * a[i]; }
          return sqrt(s);
        }
        fn main() {
          var a: float* = alloc_float(10);
          for (var i: int = 0; i < 10; i = i + 1) { a[i] = float(i); }
          output_f(norm(a, 10));
        })",
        // recursion + conditionals
        R"(fn fib(n: int) -> int {
          if (n < 2) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        fn main() { output_i(fib(10)); })",
        // randomness + math intrinsics
        R"(fn main() {
          var s: float = 0.0;
          for (var i: int = 0; i < 20; i = i + 1) {
            s = s + sin(rand01()) + cos(rand01());
          }
          output_f(s);
        })",
        // integer bit manipulation
        R"(fn main() {
          var h: int = 0;
          for (var i: int = 1; i < 100; i = i + 1) {
            h = (h * 31 + i) & 65535;
            h = h ^ (h >> 3);
          }
          output_i(h);
        })"));

TEST(DualChainEquivalence, MatvecAppBitIdentical) {
  // The Fig. 1 example app end-to-end.
  const auto& spec = apps::get_app("matvec");
  ir::Module plain = apps::compile_app(spec);
  ir::Module inst = apps::compile_app(spec);
  (void)instrument_module(inst);
  vm::Interp a(plain, 0, vm::InterpConfig{});
  fpm::FpmRuntime fpm;
  vm::Interp b(inst, 0, vm::InterpConfig{});
  b.set_fpm(&fpm);
  ASSERT_EQ(a.run(1u << 28), vm::RunState::Done);
  ASSERT_EQ(b.run(1u << 28), vm::RunState::Done);
  EXPECT_EQ(a.outputs(), b.outputs());
  EXPECT_TRUE(fpm.shadow().empty());
}

}  // namespace
}  // namespace fprop::passes
