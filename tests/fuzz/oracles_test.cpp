#include <gtest/gtest.h>

#include "fprop/fuzz/generator.h"
#include "fprop/fuzz/oracles.h"

namespace fprop::fuzz {
namespace {

// A slice of the nightly job runs in-tree so oracle regressions surface in
// regular CI, not only at the next scheduled fuzz run.

TEST(Oracles, PristineChainHoldsOnSampleSeeds) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const OracleResult r = check_pristine_chain(generate_program(seed));
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
  }
}

TEST(Oracles, CampaignParallelismIsBitIdentical) {
  OracleConfig cfg;
  cfg.campaign_trials = 5;
  cfg.campaign_jobs = 3;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const OracleResult r = check_campaign_parallel(generate_program(seed), cfg);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
  }
}

TEST(Oracles, CampaignTraceCapturePathAgreesToo) {
  OracleConfig cfg;
  cfg.campaign_trials = 4;
  cfg.campaign_jobs = 2;
  cfg.capture_traces = true;
  const OracleResult r = check_campaign_parallel(generate_program(3), cfg);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Oracles, WarmStartMatchesColdStart) {
  OracleConfig cfg;
  cfg.campaign_trials = 5;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const OracleResult r = check_warm_vs_cold(generate_program(seed), cfg);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
  }
}

TEST(Oracles, MultiFaultCampaignsStayBitIdentical) {
  OracleConfig cfg;
  cfg.campaign_trials = 5;
  cfg.campaign_jobs = 3;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const OracleResult r = check_multifault(generate_program(seed), cfg);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
  }
}

TEST(Oracles, PrunedCampaignsMatchUnprunedBitForBit) {
  OracleConfig cfg;
  cfg.campaign_trials = 5;
  cfg.campaign_jobs = 3;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const OracleResult r = check_prune(generate_program(seed), cfg);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
  }
}

TEST(Oracles, ShardProtocolSurvivesStrikesAndMatchesInProcess) {
  OracleConfig cfg;
  cfg.campaign_trials = 5;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const OracleResult r = check_shard_protocol(generate_program(seed), cfg, 64);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
  }
}

TEST(Oracles, HeaderWireFormSurvivesAdversarialStreams) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const OracleResult r = check_header_adversarial(seed, 256);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
  }
}

TEST(Oracles, CheckpointReplayIsExact) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const OracleResult r = check_checkpoint_replay(generate_program(seed));
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
  }
}

TEST(Oracles, ShadowModelAgreesWithReference) {
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const OracleResult r = check_shadow_model(seed, 2048);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
  }
}

TEST(Oracles, ParserRobustOnMutatedPrograms) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const std::string mutated =
        mutate_source(generate_program(seed).source, seed ^ 0xA5A5ull);
    const OracleResult r = check_parser_robust(mutated);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
  }
}

TEST(Oracles, ParserOracleAcceptsBothValidAndInvalidInput) {
  // Valid input: compiles, ok. Invalid input: CompileError, still ok —
  // the oracle only flags non-CompileError escapes.
  EXPECT_TRUE(check_parser_robust("fn main() { output_i(1); }").ok);
  EXPECT_TRUE(check_parser_robust("fn main( {{{{").ok);
  EXPECT_TRUE(check_parser_robust("").ok);
}

TEST(Oracles, ResultsCarryOracleName) {
  EXPECT_EQ(check_shadow_model(1, 64).oracle, "shadow");
  EXPECT_EQ(check_parser_robust("fn main() {}").oracle, "parser");
}

}  // namespace
}  // namespace fprop::fuzz
