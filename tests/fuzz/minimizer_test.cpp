#include <gtest/gtest.h>

#include <string>

#include "fprop/fuzz/minimizer.h"

namespace fprop::fuzz {
namespace {

std::string lines(std::size_t n, const std::string& fill) {
  std::string out;
  for (std::size_t i = 0; i < n; ++i) {
    out += fill + std::to_string(i) + "\n";
  }
  return out;
}

// The acceptance-criterion test: a synthetic failure seeded into an 80-line
// input must shrink to just the lines the predicate actually needs.
TEST(Minimizer, ShrinksSyntheticFailureToItsCore) {
  std::string input = lines(40, "filler_");
  input += "needle_alpha\n";
  input += lines(30, "more_filler_");
  input += "needle_beta\n";
  input += lines(9, "tail_");

  const FailPredicate needs_both = [](const std::string& s) {
    return s.find("needle_alpha") != std::string::npos &&
           s.find("needle_beta") != std::string::npos;
  };

  MinimizeStats stats;
  const std::string out = minimize_lines(input, needs_both, 2000, &stats);

  EXPECT_TRUE(needs_both(out));  // result must still fail
  EXPECT_EQ(out, "needle_alpha\nneedle_beta\n");
  EXPECT_EQ(stats.initial_lines, 81u);
  EXPECT_EQ(stats.final_lines, 2u);
  EXPECT_GT(stats.attempts, 0u);
}

TEST(Minimizer, NonFailingInputReturnedUnchanged) {
  const std::string input = lines(10, "line_");
  MinimizeStats stats;
  const std::string out = minimize_lines(
      input, [](const std::string&) { return false; }, 2000, &stats);
  EXPECT_EQ(out, input);
  EXPECT_EQ(stats.attempts, 0u);
}

TEST(Minimizer, SingleLineFailureIsFixedPoint) {
  const std::string input = "the_bug\n";
  const std::string out = minimize_lines(input, [](const std::string& s) {
    return s.find("the_bug") != std::string::npos;
  });
  EXPECT_EQ(out, input);
}

TEST(Minimizer, RespectsAttemptBudget) {
  const std::string input = lines(64, "x_");
  std::size_t calls = 0;
  MinimizeStats stats;
  (void)minimize_lines(
      input,
      [&calls](const std::string& s) {
        ++calls;
        return s.find("x_0\n") != std::string::npos;
      },
      /*max_attempts=*/10, &stats);
  // One free call validates the input; the budget bounds the rest.
  EXPECT_LE(stats.attempts, 10u);
  EXPECT_LE(calls, 11u);
}

TEST(Minimizer, ResultAlwaysSatisfiesPredicate) {
  // A predicate with a non-monotone shape (fails only when an even number of
  // marker lines remain, minimum two) must still end on a failing candidate.
  const std::string input = lines(6, "marker_") + lines(20, "pad_");
  const FailPredicate pred = [](const std::string& s) {
    std::size_t n = 0;
    for (std::size_t pos = s.find("marker_"); pos != std::string::npos;
         pos = s.find("marker_", pos + 1)) {
      ++n;
    }
    return n >= 2 && n % 2 == 0;
  };
  const std::string out = minimize_lines(input, pred);
  EXPECT_TRUE(pred(out));
  EXPECT_LT(out.size(), input.size());
}

}  // namespace
}  // namespace fprop::fuzz
