#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fprop/fuzz/generator.h"
#include "fprop/minic/compile.h"
#include "fprop/mpisim/world.h"

namespace fprop::fuzz {
namespace {

TEST(Generator, Deterministic) {
  for (std::uint64_t seed : {0ull, 1ull, 42ull, 0xDEADBEEFull}) {
    const GeneratedProgram a = generate_program(seed);
    const GeneratedProgram b = generate_program(seed);
    EXPECT_EQ(a.source, b.source) << "seed " << seed;
    EXPECT_EQ(a.nranks, b.nranks);
    EXPECT_EQ(a.has_mpi, b.has_mpi);
  }
}

TEST(Generator, SeedsDiverge) {
  std::set<std::string> sources;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    sources.insert(generate_program(seed).source);
  }
  // Tiny collisions are conceivable in principle; wholesale collapse is not.
  EXPECT_GE(sources.size(), 30u);
}

TEST(Generator, EveryProgramCompiles) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    SCOPED_TRACE(seed);
    const GeneratedProgram p = generate_program(seed);
    EXPECT_NO_THROW({ (void)minic::compile(p.source); })
        << "validity-by-construction broken:\n"
        << p.source;
  }
}

TEST(Generator, EveryProgramRunsClean) {
  // No instrumentation, no faults: a generated program must terminate
  // normally well inside the budget on its declared rank count.
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    SCOPED_TRACE(seed);
    const GeneratedProgram p = generate_program(seed);
    ir::Module m = minic::compile(p.source);
    mpisim::WorldConfig wc;
    wc.nranks = p.nranks;
    wc.enable_fpm = false;
    wc.fpm_sample_period = 0;
    wc.interp.cycle_budget = 50'000'000;
    mpisim::World w(m, wc);
    const mpisim::JobResult j = w.run();
    EXPECT_FALSE(j.crashed) << p.source;
  }
}

TEST(Generator, NoMpiConfigProducesSingleRankPrograms) {
  GenConfig cfg;
  cfg.mpi = false;
  cfg.nranks = 1;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const GeneratedProgram p = generate_program(seed, cfg);
    EXPECT_FALSE(p.has_mpi);
    EXPECT_EQ(p.nranks, 1u);
    EXPECT_EQ(p.source.find("mpi_"), std::string::npos);
  }
}

TEST(Generator, MutateIsDeterministicAndChangesInput) {
  const std::string base = generate_program(7).source;
  const std::string a = mutate_source(base, 99);
  const std::string b = mutate_source(base, 99);
  EXPECT_EQ(a, b);
  // Across a handful of seeds at least one mutation must alter the bytes.
  bool changed = false;
  for (std::uint64_t s = 0; s < 8 && !changed; ++s) {
    changed = mutate_source(base, s) != base;
  }
  EXPECT_TRUE(changed);
}

}  // namespace
}  // namespace fprop::fuzz
