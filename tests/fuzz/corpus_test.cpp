#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fprop/fuzz/oracles.h"

// Replays every committed fuzzer-found repro (tests/fuzz/corpus/*.mc)
// through the parser-robustness oracle. Each file is a minimized input that
// once crashed the frontend; this is the regression net that keeps those
// fixes fixed. FPROP_FUZZ_CORPUS_DIR is injected by tests/CMakeLists.txt.

#ifndef FPROP_FUZZ_CORPUS_DIR
#error "FPROP_FUZZ_CORPUS_DIR must be defined by the build"
#endif

namespace fprop::fuzz {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& e :
       std::filesystem::directory_iterator(FPROP_FUZZ_CORPUS_DIR)) {
    if (e.path().extension() == ".mc") files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(Corpus, IsCommittedAndNonEmpty) {
  EXPECT_GE(corpus_files().size(), 5u)
      << "corpus dir: " << FPROP_FUZZ_CORPUS_DIR;
}

TEST(Corpus, EveryReproStaysFixed) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    const OracleResult r = check_parser_robust(buf.str());
    EXPECT_TRUE(r.ok) << r.detail;
  }
}

}  // namespace
}  // namespace fprop::fuzz
