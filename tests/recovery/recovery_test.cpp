#include <gtest/gtest.h>

#include <algorithm>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/minic/compile.h"
#include "fprop/recovery/recovery.h"
#include "fprop/support/error.h"

namespace fprop::recovery {
namespace {

harness::AppHarness matvec_harness(RecoveryConfig rc = {}) {
  harness::ExperimentConfig cfg;
  cfg.nranks = 1;
  cfg.overrides = {{"ITERS", "6"}};
  cfg.recovery = rc;
  return harness::AppHarness(apps::get_app("matvec"), cfg);
}

RecoveryConfig enabled(model::RollbackPolicy policy) {
  RecoveryConfig rc;
  rc.enabled = true;
  rc.policy = policy;
  rc.detector_interval = 0;  // derive golden/16 from the golden run
  return rc;
}

TEST(RecoveryConfig, InvalidValuesAreRejected) {
  ir::Module m = minic::compile("fn main() { output_i(1); }");
  mpisim::WorldConfig wc;
  wc.nranks = 1;
  mpisim::World world(m, wc);
  RecoveryConfig no_interval;
  no_interval.detector_interval = 0;
  EXPECT_THROW(RecoveryManager(world, no_interval), Error);
  RecoveryConfig no_retention;
  no_retention.max_retained = 0;
  EXPECT_THROW(RecoveryManager(world, no_retention), Error);
  RecoveryConfig shrinking_backoff;
  shrinking_backoff.rollback_backoff = 0.5;  // < 1 would tighten the grid
  EXPECT_THROW(RecoveryManager(world, shrinking_backoff), Error);
}

TEST(RecoveryManager, FaultFreeJobRunsUntouched) {
  ir::Module m = minic::compile(R"(
fn main() {
  var s: float = 0.0;
  for (var i: int = 0; i < 500; i = i + 1) { s = s + 0.5; }
  output_f(s);
}
)");
  mpisim::WorldConfig wc;
  wc.nranks = 2;
  mpisim::World plain(m, wc);
  const mpisim::JobResult want = plain.run();
  ASSERT_FALSE(want.crashed);

  mpisim::World world(m, wc);
  RecoveryConfig rc;
  rc.detector_interval = 300;
  RecoveryManager manager(world, rc);
  const mpisim::JobResult got = manager.run();
  EXPECT_FALSE(got.crashed);
  EXPECT_EQ(got.outputs(), want.outputs());
  EXPECT_EQ(got.global_cycles, want.global_cycles);
  const RecoveryReport& rep = manager.report();
  EXPECT_EQ(rep.detections, 0u);
  EXPECT_EQ(rep.rollbacks, 0u);
  EXPECT_GE(rep.checkpoints, 2u);  // initial + periodic clean scans
  EXPECT_EQ(rep.residual_cml, 0u);
  EXPECT_FALSE(rep.gave_up);
}

TEST(RecoveryCampaign, AlwaysPolicyConvertsFailuresToCorrectOutput) {
  // Acceptance criterion: a recovery-enabled matvec campaign converts a
  // nonzero fraction of WrongOutput/Crashed trials into correct output.
  harness::CampaignConfig cc;
  cc.trials = 40;
  cc.seed = 7;

  harness::AppHarness baseline = matvec_harness();
  const harness::CampaignResult base = run_campaign(baseline, cc);
  const std::size_t base_bad =
      base.counts.wrong_output + base.counts.crashed;
  ASSERT_GT(base_bad, 0u);

  harness::AppHarness recovering =
      matvec_harness(enabled(model::RollbackPolicy::Always));
  const harness::CampaignResult rec = run_campaign(recovering, cc);
  const std::size_t rec_bad = rec.counts.wrong_output + rec.counts.crashed;

  EXPECT_GT(rec.recovered_trials, 0u);
  EXPECT_GT(rec.total_rollbacks, 0u);
  EXPECT_GT(rec.total_wasted_cycles, 0u);
  EXPECT_LT(rec_bad, base_bad);
  EXPECT_GT(rec.counts.correct_output(), base.counts.correct_output());

  // Per-trial bookkeeping: a recovered trial rolled back, paid for it, and
  // still ended correct.
  for (const auto& t : rec.trials) {
    if (!t.recovered) continue;
    EXPECT_GT(t.rollbacks, 0u);
    EXPECT_GT(t.detections, 0u);
    EXPECT_GT(t.wasted_cycles, 0u);
    EXPECT_FALSE(t.recovery_gave_up);
  }
}

TEST(RecoveryCampaign, FpsModelWastesFewerCyclesThanAlways) {
  // Acceptance criterion: with a generous safe threshold the FpsModel
  // policy keeps benign contaminations running (paper §5's low-FPS case)
  // and re-executes strictly less work than Always.
  harness::CampaignConfig cc;
  cc.trials = 40;
  cc.seed = 7;

  harness::AppHarness always =
      matvec_harness(enabled(model::RollbackPolicy::Always));
  const harness::CampaignResult ra = run_campaign(always, cc);
  ASSERT_GT(ra.total_rollbacks, 0u);

  RecoveryConfig fps = enabled(model::RollbackPolicy::FpsModel);
  fps.fps = 1e-9;            // Table 2 low-FPS regime
  fps.cml_threshold = 1e18;  // everything predicted below the safe bound
  harness::AppHarness tolerant = matvec_harness(fps);
  const harness::CampaignResult rf = run_campaign(tolerant, cc);

  EXPECT_LT(rf.total_wasted_cycles, ra.total_wasted_cycles);
  EXPECT_LE(rf.total_rollbacks, ra.total_rollbacks);
}

TEST(RecoveryTrial, NeverPolicyObservesWithoutRestoring) {
  harness::AppHarness plain = matvec_harness();
  // Find a contaminating, non-crashing plan to give the detector something
  // to see.
  std::uint64_t dyn = 0;
  harness::TrialResult base;
  for (;; ++dyn) {
    ASSERT_LT(dyn, plain.golden().total_dyn_points);
    base = plain.run_trial(inject::InjectionPlan::single(0, dyn, 3));
    if (base.injected && base.total_cml_final > 0 &&
        base.outcome != harness::Outcome::Crashed) {
      break;
    }
  }

  harness::AppHarness never =
      matvec_harness(enabled(model::RollbackPolicy::Never));
  const harness::TrialResult t =
      never.run_trial(inject::InjectionPlan::single(0, dyn, 3));
  EXPECT_EQ(t.rollbacks, 0u);
  EXPECT_FALSE(t.recovered);
  EXPECT_GE(t.detections, 1u);
  EXPECT_FALSE(t.recovery_gave_up);
  // Declining every rollback leaves the uninterrupted execution intact.
  EXPECT_EQ(t.outcome, base.outcome);
  EXPECT_EQ(t.residual_cml, base.total_cml_final);
  EXPECT_EQ(t.wasted_cycles, 0u);
}

TEST(RecoveryTrial, ExhaustedBudgetDegradesToCrash) {
  harness::AppHarness plain = matvec_harness();
  std::uint64_t dyn = 0;
  for (;; ++dyn) {
    ASSERT_LT(dyn, plain.golden().total_dyn_points);
    const harness::TrialResult base =
        plain.run_trial(inject::InjectionPlan::single(0, dyn, 3));
    if (base.injected && base.total_cml_final > 0 &&
        base.outcome != harness::Outcome::Crashed) {
      break;
    }
  }

  RecoveryConfig rc = enabled(model::RollbackPolicy::Always);
  rc.max_rollbacks = 0;  // want to roll back, never allowed to
  harness::AppHarness h = matvec_harness(rc);
  const harness::TrialResult t =
      h.run_trial(inject::InjectionPlan::single(0, dyn, 3));
  EXPECT_EQ(t.outcome, harness::Outcome::Crashed);
  EXPECT_EQ(t.trap, vm::Trap::Killed);
  EXPECT_TRUE(t.recovery_gave_up);
  EXPECT_EQ(t.rollbacks, 0u);
  EXPECT_GE(t.detections, 1u);
}

// Finds a contaminating, non-crashing single-fault plan (the detector needs
// something to see, and a trap would short-circuit the scan path).
std::uint64_t find_detectable_dyn(harness::AppHarness& plain,
                                  std::uint64_t bit) {
  for (std::uint64_t dyn = 0;; ++dyn) {
    EXPECT_LT(dyn, plain.golden().total_dyn_points);
    const harness::TrialResult base =
        plain.run_trial(inject::InjectionPlan::single(0, dyn, bit));
    if (base.injected && base.total_cml_final > 0 &&
        base.outcome != harness::Outcome::Crashed) {
      return dyn;
    }
  }
}

TEST(RecoveryBackoff, EachRollbackWidensTheEffectiveInterval) {
  harness::AppHarness plain = matvec_harness();
  const std::uint64_t dyn = find_detectable_dyn(plain, 3);
  const std::uint64_t interval =
      std::max<std::uint64_t>(plain.golden().global_cycles / 16, 1);

  mpisim::World world(plain.module(), plain.world_config(/*tracing=*/false));
  inject::InjectorRuntime inj(inject::InjectionPlan::single(0, dyn, 3));
  world.set_inject_hook(&inj);
  RecoveryConfig rc;
  rc.policy = model::RollbackPolicy::Always;
  rc.detector_interval = interval;
  rc.rollback_backoff = 3.0;
  RecoveryManager mgr(world, rc);
  const mpisim::JobResult job = mgr.run();
  EXPECT_FALSE(job.crashed);
  const RecoveryReport& rep = mgr.report();
  ASSERT_GE(rep.rollbacks, 1u);
  // final = interval * 3^rollbacks, tracked through the same cast chain.
  std::uint64_t want = interval;
  for (std::size_t i = 0; i < rep.rollbacks; ++i) {
    want = static_cast<std::uint64_t>(static_cast<double>(want) * 3.0);
  }
  EXPECT_EQ(rep.final_detector_interval, want);
  EXPECT_GE(rep.final_detector_interval, 3 * interval);
}

TEST(RecoveryBackoff, UnitBackoffKeepsTheFixedGrid) {
  harness::AppHarness plain = matvec_harness();
  const std::uint64_t dyn = find_detectable_dyn(plain, 3);
  const std::uint64_t interval =
      std::max<std::uint64_t>(plain.golden().global_cycles / 16, 1);

  mpisim::World world(plain.module(), plain.world_config(/*tracing=*/false));
  inject::InjectorRuntime inj(inject::InjectionPlan::single(0, dyn, 3));
  world.set_inject_hook(&inj);
  RecoveryConfig rc;
  rc.policy = model::RollbackPolicy::Always;
  rc.detector_interval = interval;  // rollback_backoff defaults to 1.0
  RecoveryManager mgr(world, rc);
  (void)mgr.run();
  const RecoveryReport& rep = mgr.report();
  ASSERT_GE(rep.rollbacks, 1u);
  EXPECT_EQ(rep.final_detector_interval, interval);
}

TEST(RecoveryBackoff, WidenedGridStillEndsEveryTrialClassified) {
  // The acceptance property for the degradation ladder: with backoff
  // enabled, a recovery campaign still classifies every trial — widening
  // never turns into a hang or an unclassified escape.
  RecoveryConfig rc = enabled(model::RollbackPolicy::Always);
  rc.rollback_backoff = 2.0;
  rc.max_rollbacks = 3;
  harness::AppHarness h = matvec_harness(rc);
  harness::CampaignConfig cc;
  cc.trials = 30;
  cc.seed = 11;
  const harness::CampaignResult r = run_campaign(h, cc);
  EXPECT_EQ(r.counts.total(), cc.trials);
  ASSERT_EQ(r.trials.size(), cc.trials);
  for (const harness::TrialResult& t : r.trials) {
    // Budget exhaustion tears down mid-run (Crashed via Killed) or the job
    // had already finished when the last detection fired — either way the
    // trial is classified, never hung.
    if (t.recovery_gave_up && t.outcome == harness::Outcome::Crashed) {
      EXPECT_EQ(t.trap, vm::Trap::Killed);
    }
  }
}

TEST(RecoveryTrial, SingleRetainedCheckpointStillRecovers) {
  // Bounded retention at its minimum: rolling back to the one retained
  // (most recent clean) checkpoint is enough for transient faults.
  harness::AppHarness plain = matvec_harness();
  std::uint64_t dyn = 0;
  for (;; ++dyn) {
    ASSERT_LT(dyn, plain.golden().total_dyn_points);
    const harness::TrialResult base =
        plain.run_trial(inject::InjectionPlan::single(0, dyn, 62));
    if (base.injected &&
        (base.outcome == harness::Outcome::WrongOutput ||
         base.outcome == harness::Outcome::Crashed)) {
      break;
    }
  }

  RecoveryConfig rc = enabled(model::RollbackPolicy::Always);
  rc.max_retained = 1;
  harness::AppHarness h = matvec_harness(rc);
  const harness::TrialResult t =
      h.run_trial(inject::InjectionPlan::single(0, dyn, 62));
  EXPECT_TRUE(t.recovered);
  EXPECT_GT(t.rollbacks, 0u);
  EXPECT_TRUE(t.outcome == harness::Outcome::Vanished ||
              t.outcome == harness::Outcome::OutputNotAffected)
      << harness::outcome_name(t.outcome);
}

}  // namespace
}  // namespace fprop::recovery
