#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/model/rollback_sim.h"
#include "fprop/recovery/recovery.h"

// Cross-validation of the analytical rollback simulator (model §5, which
// replays a recorded CML(t) trace) against the real checkpoint/restart
// mechanism (recovery::RecoveryManager) on the same injection plans. The two
// observe the job at different granularities — the trace is sampled every
// global_sample_period cycles and the runtime detector scans at sweep
// boundaries — so agreement is asserted up to one detector interval plus
// those quantisation terms, never exactly.

namespace fprop::recovery {
namespace {

harness::ExperimentConfig base_config() {
  harness::ExperimentConfig cfg;
  cfg.nranks = 1;
  cfg.overrides = {{"ITERS", "6"}};
  return cfg;
}

struct CrossValCase {
  inject::InjectionPlan plan;
  harness::TrialResult baseline;  ///< no-recovery trial with trace
};

/// First plan whose uninterrupted run contaminates memory without crashing:
/// the regime where detector timing is comparable between the two systems.
CrossValCase find_case(const harness::AppHarness& plain) {
  for (std::uint64_t dyn = 0; dyn < plain.golden().total_dyn_points; ++dyn) {
    const auto plan = inject::InjectionPlan::single(0, dyn, 3);
    harness::TrialResult t = plain.run_trial(plan, /*capture_trace=*/true);
    if (t.injected && t.total_cml_final > 0 &&
        t.outcome != harness::Outcome::Crashed) {
      return {plan, std::move(t)};
    }
  }
  ADD_FAILURE() << "no contaminating non-crashing plan found";
  return {};
}

TEST(CrossValidation, AlwaysPolicyAgreesOnDetectionAndWaste) {
  harness::AppHarness plain(apps::get_app("matvec"), base_config());
  const CrossValCase cv = find_case(plain);
  ASSERT_FALSE(cv.baseline.trace.empty());

  const std::uint64_t interval =
      std::max<std::uint64_t>(plain.golden().global_cycles / 16, 1);

  model::DetectorConfig det;
  det.interval = interval;
  const model::RollbackOutcome analytical = model::simulate_rollback(
      cv.baseline.trace, det, model::RollbackPolicy::Always);
  ASSERT_TRUE(analytical.detected);
  ASSERT_TRUE(analytical.rolled_back);

  harness::ExperimentConfig cfg = base_config();
  cfg.recovery.enabled = true;
  cfg.recovery.policy = model::RollbackPolicy::Always;
  cfg.recovery.detector_interval = interval;
  harness::AppHarness mech(apps::get_app("matvec"), cfg);
  const harness::TrialResult t = mech.run_trial(cv.plan);

  ASSERT_GE(t.detections, 1u);
  ASSERT_EQ(t.rollbacks, 1u);  // transient fault: one restore suffices
  EXPECT_FALSE(t.recovery_gave_up);
  EXPECT_EQ(t.residual_cml, 0u);

  // Wasted work (detection time minus last clean checkpoint) must agree up
  // to the two systems' observation granularity: one detector interval plus
  // the trace sampling period plus one scheduler sweep.
  const std::uint64_t slack = interval +
                              cfg.global_sample_period +
                              cfg.slice * mech.nranks();
  const auto diff = t.wasted_cycles > analytical.wasted_cycles
                        ? t.wasted_cycles - analytical.wasted_cycles
                        : analytical.wasted_cycles - t.wasted_cycles;
  EXPECT_LE(diff, slack)
      << "mechanism wasted " << t.wasted_cycles << " vs analytical "
      << analytical.wasted_cycles;
  // Both charge at most the span since the last clean checkpoint, which the
  // fixed scan grid bounds by one interval plus one sweep of overshoot.
  EXPECT_LE(analytical.wasted_cycles, interval);
  EXPECT_LE(t.wasted_cycles, interval + cfg.slice * mech.nranks());
}

TEST(CrossValidation, NeverPolicyAgreesOnResidualExactly) {
  harness::AppHarness plain(apps::get_app("matvec"), base_config());
  const CrossValCase cv = find_case(plain);
  ASSERT_FALSE(cv.baseline.trace.empty());

  const std::uint64_t interval =
      std::max<std::uint64_t>(plain.golden().global_cycles / 16, 1);

  model::DetectorConfig det;
  det.interval = interval;
  const model::RollbackOutcome analytical = model::simulate_rollback(
      cv.baseline.trace, det, model::RollbackPolicy::Never);
  ASSERT_TRUE(analytical.detected);
  EXPECT_FALSE(analytical.rolled_back);

  harness::ExperimentConfig cfg = base_config();
  cfg.recovery.enabled = true;
  cfg.recovery.policy = model::RollbackPolicy::Never;
  cfg.recovery.detector_interval = interval;
  harness::AppHarness mech(apps::get_app("matvec"), cfg);
  const harness::TrialResult t = mech.run_trial(cv.plan);

  EXPECT_GE(t.detections, 1u);
  EXPECT_EQ(t.rollbacks, 0u);
  EXPECT_EQ(t.wasted_cycles, 0u);
  // Declining the rollback leaves the run untouched, so the residual the
  // mechanism carries to the end is exactly the recorded trace's endpoint.
  EXPECT_EQ(t.residual_cml, analytical.residual_cml);
  EXPECT_EQ(t.residual_cml, cv.baseline.total_cml_final);
  EXPECT_EQ(t.outcome, cv.baseline.outcome);
}

TEST(CrossValidation, FpsModelDecisionMatchesEqThreePrediction) {
  // With a threshold between zero and the Eq. 3 prediction both systems
  // must roll back; with a threshold far above it both must continue.
  harness::AppHarness plain(apps::get_app("matvec"), base_config());
  const CrossValCase cv = find_case(plain);
  const std::uint64_t interval =
      std::max<std::uint64_t>(plain.golden().global_cycles / 16, 1);

  for (const double threshold : {1e-3, 1e18}) {
    model::DetectorConfig det;
    det.interval = interval;
    det.fps = 1e-4;
    det.cml_threshold = threshold;
    const model::RollbackOutcome analytical = model::simulate_rollback(
        cv.baseline.trace, det, model::RollbackPolicy::FpsModel);
    ASSERT_TRUE(analytical.detected);

    harness::ExperimentConfig cfg = base_config();
    cfg.recovery.enabled = true;
    cfg.recovery.policy = model::RollbackPolicy::FpsModel;
    cfg.recovery.detector_interval = interval;
    cfg.recovery.fps = det.fps;
    cfg.recovery.cml_threshold = threshold;
    harness::AppHarness mech(apps::get_app("matvec"), cfg);
    const harness::TrialResult t = mech.run_trial(cv.plan);

    EXPECT_EQ(analytical.rolled_back, t.rollbacks > 0)
        << "threshold " << threshold;
  }
}

}  // namespace
}  // namespace fprop::recovery
