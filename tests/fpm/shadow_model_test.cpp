#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "fprop/fpm/shadow_table.h"
#include "fprop/support/rng.h"

// Promotion of bench/perf_shadowtable.cpp's differential check into a ctest
// property test: ShadowTable must agree with a std::unordered_map reference
// model, including the corners the flat table implements specially — the ~0
// sentinel side-slot, backward-shift deletion across the index wraparound,
// and the heal-on-empty early-out.

namespace fprop::fpm {
namespace {

constexpr std::uint64_t kSentinel = ~0ull;

// Mirrors ShadowTable's private hash for the directed wraparound test: the
// initial capacity is 16, so the home slot is the top 4 bits of the
// Fibonacci product. (Static assumptions checked by the test itself: with
// <8 live entries the table cannot have grown past 16 slots.)
std::size_t home_slot_cap16(std::uint64_t addr) {
  return static_cast<std::size_t>(((addr >> 3) * 0x9E3779B97F4A7C15ull) >> 60);
}

TEST(ShadowModel, SentinelKeyLivesInSideSlot) {
  ShadowTable t;
  EXPECT_FALSE(t.contaminated(kSentinel));
  t.record(kSentinel, 0xAB);
  EXPECT_TRUE(t.contaminated(kSentinel));
  EXPECT_EQ(t.lookup(kSentinel), std::optional<std::uint64_t>(0xAB));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.peak(), 1u);
  // Overwrite updates in place, no double count.
  t.record(kSentinel, 0xCD);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.pristine_or(kSentinel, 0), 0xCDu);
  // entries() spans [0, ~0) and therefore excludes the sentinel by design.
  EXPECT_TRUE(t.entries().empty());
  EXPECT_TRUE(t.heal(kSentinel));
  EXPECT_FALSE(t.heal(kSentinel));  // already gone
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.peak(), 1u);  // peak is never reset
}

TEST(ShadowModel, BackwardShiftHealAcrossWraparound) {
  // Two 8-aligned keys whose home slot is the last slot (15) at the initial
  // capacity of 16: the second insert wraps to slot 0. Healing the first
  // must backward-shift the wrapped entry over the table boundary so it
  // stays findable.
  std::vector<std::uint64_t> tail_keys;
  for (std::uint64_t a = 0; tail_keys.size() < 2 && a < (1u << 16); a += 8) {
    if (home_slot_cap16(a) == 15) tail_keys.push_back(a);
  }
  ASSERT_EQ(tail_keys.size(), 2u);

  ShadowTable t;
  t.record(tail_keys[0], 100);
  t.record(tail_keys[1], 200);  // probes 15 (taken) then wraps to 0
  ASSERT_EQ(t.size(), 2u);      // < 8 entries: capacity is still 16

  EXPECT_TRUE(t.heal(tail_keys[0]));
  EXPECT_FALSE(t.contaminated(tail_keys[0]));
  EXPECT_EQ(t.lookup(tail_keys[1]), std::optional<std::uint64_t>(200));
  EXPECT_TRUE(t.heal(tail_keys[1]));
  EXPECT_TRUE(t.empty());
}

TEST(ShadowModel, HealOnEmptyEarlyOut) {
  ShadowTable t;
  EXPECT_FALSE(t.heal(0x100));
  EXPECT_FALSE(t.heal(kSentinel));
  t.heal_range(0, 1u << 20);  // no-op, must not crash
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.peak(), 0u);
  // And again right after the table empties through churn.
  t.record(0x40, 7);
  EXPECT_TRUE(t.heal(0x40));
  EXPECT_FALSE(t.heal(0x40));
  EXPECT_EQ(t.peak(), 1u);
}

TEST(ShadowModel, ClearKeepsPeak) {
  ShadowTable t;
  for (std::uint64_t i = 0; i < 100; ++i) t.record(i * 8, i);
  EXPECT_EQ(t.peak(), 100u);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.peak(), 100u);  // Fig. 7f peak survives the next trial prep
}

// Randomized differential run against std::unordered_map. Keys are 8-aligned
// (word addresses) with a deliberately collision-heavy pool plus the
// sentinel; every operation cross-checks size and lookup behaviour.
TEST(ShadowModel, AgreesWithUnorderedMapUnderChurn) {
  Xoshiro256 rng(0x5AAD0Full);
  ShadowTable t;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  std::size_t ref_peak = 0;

  // 32 sequential words (the apps' dominant pattern), 8 scattered keys,
  // and the sentinel.
  std::vector<std::uint64_t> pool;
  for (std::uint64_t i = 0; i < 32; ++i) pool.push_back(0x1000 + i * 8);
  for (int i = 0; i < 8; ++i) pool.push_back(rng.next() << 3);
  pool.push_back(kSentinel);

  for (std::size_t op = 0; op < 20'000; ++op) {
    const std::uint64_t key = pool[rng.next_below(pool.size())];
    switch (rng.next_below(6)) {
      case 0:
      case 1: {  // record (biased: tables spend their life absorbing stores)
        const std::uint64_t val = rng.next();
        t.record(key, val);
        ref[key] = val;
        break;
      }
      case 2: {  // heal
        EXPECT_EQ(t.heal(key), ref.erase(key) == 1) << "op " << op;
        break;
      }
      case 3: {  // lookup / pristine_or
        auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(t.lookup(key), std::nullopt) << "op " << op;
          EXPECT_EQ(t.pristine_or(key, 0x77), 0x77u) << "op " << op;
        } else {
          EXPECT_EQ(t.lookup(key), std::optional<std::uint64_t>(it->second));
        }
        break;
      }
      case 4: {  // in_range over a window of the sequential block
        const std::uint64_t lo = 0x1000 + rng.next_below(32) * 8;
        const std::uint64_t hi = lo + rng.next_below(16) * 8;
        auto got = t.in_range(lo, hi);
        std::vector<std::pair<std::uint64_t, std::uint64_t>> want;
        for (const auto& [k, v] : ref) {
          if (k >= lo && k < hi) want.emplace_back(k, v);
        }
        std::sort(want.begin(), want.end());
        EXPECT_EQ(got, want) << "op " << op;
        break;
      }
      case 5: {  // heal_range over the same window
        const std::uint64_t lo = 0x1000 + rng.next_below(32) * 8;
        const std::uint64_t hi = lo + rng.next_below(16) * 8;
        t.heal_range(lo, hi);
        for (auto it = ref.begin(); it != ref.end();) {
          it = (it->first >= lo && it->first < hi) ? ref.erase(it)
                                                   : std::next(it);
        }
        break;
      }
    }
    ref_peak = std::max(ref_peak, ref.size());
    ASSERT_EQ(t.size(), ref.size()) << "op " << op;
    ASSERT_EQ(t.empty(), ref.empty()) << "op " << op;
    ASSERT_EQ(t.peak(), ref_peak) << "op " << op;
  }

  // Final audit: full entry set (minus the sentinel side slot) matches.
  auto got = t.entries();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> want;
  for (const auto& [k, v] : ref) {
    if (k != kSentinel) want.emplace_back(k, v);
  }
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace fprop::fpm
