#include <gtest/gtest.h>

#include "fprop/fpm/shadow_table.h"

namespace fprop::fpm {
namespace {

TEST(ShadowTable, RecordLookupHeal) {
  ShadowTable t;
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.lookup(4096).has_value());
  t.record(4096, 7);
  EXPECT_TRUE(t.contaminated(4096));
  EXPECT_EQ(t.lookup(4096).value(), 7u);
  EXPECT_EQ(t.size(), 1u);
  t.heal(4096);
  EXPECT_FALSE(t.contaminated(4096));
  EXPECT_TRUE(t.empty());
}

TEST(ShadowTable, RecordOverwritesPristine) {
  ShadowTable t;
  t.record(8, 1);
  t.record(8, 2);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(8).value(), 2u);
}

TEST(ShadowTable, PristineOrFallsBackToActual) {
  ShadowTable t;
  EXPECT_EQ(t.pristine_or(100, 42), 42u);
  t.record(100, 7);
  EXPECT_EQ(t.pristine_or(100, 42), 7u);
}

TEST(ShadowTable, PeakTracksMaximum) {
  ShadowTable t;
  t.record(0, 0);
  t.record(8, 0);
  t.record(16, 0);
  EXPECT_EQ(t.peak(), 3u);
  t.heal(0);
  t.heal(8);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.peak(), 3u);  // peak is sticky
}

TEST(ShadowTable, HealMissingIsNoop) {
  ShadowTable t;
  t.heal(4096);  // absent
  EXPECT_TRUE(t.empty());
}

TEST(ShadowTable, InRangeSortedAndBounded) {
  ShadowTable t;
  t.record(800, 1);
  t.record(816, 2);
  t.record(808, 3);
  t.record(900, 4);  // outside
  const auto v = t.in_range(800, 824);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], (std::pair<std::uint64_t, std::uint64_t>{800, 1}));
  EXPECT_EQ(v[1], (std::pair<std::uint64_t, std::uint64_t>{808, 3}));
  EXPECT_EQ(v[2], (std::pair<std::uint64_t, std::uint64_t>{816, 2}));
}

TEST(ShadowTable, InRangeBothScanStrategies) {
  // Small range over a big table (probe path) and big range over a small
  // table (scan path) must agree.
  ShadowTable big;
  for (std::uint64_t i = 0; i < 1000; ++i) big.record(i * 8, i);
  const auto probe = big.in_range(80, 160);
  ASSERT_EQ(probe.size(), 10u);

  ShadowTable small;
  small.record(80, 10);
  small.record(152, 19);
  const auto scan = small.in_range(0, 1 << 20);
  ASSERT_EQ(scan.size(), 2u);
  EXPECT_EQ(scan[0].first, 80u);
}

TEST(ShadowTable, HealRangeBothStrategies) {
  ShadowTable t;
  for (std::uint64_t i = 0; i < 100; ++i) t.record(i * 8, i);
  t.heal_range(80, 160);  // probe path (small range)
  EXPECT_EQ(t.size(), 90u);
  EXPECT_FALSE(t.contaminated(80));
  EXPECT_TRUE(t.contaminated(72));
  EXPECT_TRUE(t.contaminated(160));  // hi is exclusive
  t.heal_range(0, 1 << 20);  // scan path
  EXPECT_TRUE(t.empty());
}

TEST(ShadowTable, Clear) {
  ShadowTable t;
  t.record(8, 1);
  t.clear();
  EXPECT_TRUE(t.empty());
}

}  // namespace
}  // namespace fprop::fpm
