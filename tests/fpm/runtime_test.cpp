#include <gtest/gtest.h>

#include "fprop/fpm/message.h"
#include "fprop/fpm/runtime.h"

namespace fprop::fpm {
namespace {

TEST(FpmRuntime, DivergentStoreRecords) {
  FpmRuntime rt;
  rt.on_store(/*val=*/5, /*val_p=*/7, /*addr=*/800, /*addr_p=*/800,
              /*old_pristine=*/0, 0, true);
  EXPECT_EQ(rt.shadow().size(), 1u);
  EXPECT_EQ(rt.shadow().lookup(800).value(), 7u);
  EXPECT_EQ(rt.stats().stores_divergent, 1u);
  EXPECT_EQ(rt.stats().wild_stores, 0u);
}

TEST(FpmRuntime, MatchingStoreHealsContamination) {
  // Table 1 rows 2/4: an operation masks the corruption; storing the
  // pristine value back must remove the location from the table.
  FpmRuntime rt;
  rt.on_store(5, 7, 800, 800, 0, 0, true);
  ASSERT_EQ(rt.shadow().size(), 1u);
  rt.on_store(9, 9, 800, 800, 7, 0, true);
  EXPECT_TRUE(rt.shadow().empty());
  EXPECT_EQ(rt.stats().heals, 1u);
}

TEST(FpmRuntime, MatchingStoreOnCleanLocationIsNoop) {
  FpmRuntime rt;
  rt.on_store(9, 9, 800, 800, 9, 0, true);
  EXPECT_TRUE(rt.shadow().empty());
  EXPECT_EQ(rt.stats().stores_checked, 1u);
  EXPECT_EQ(rt.stats().stores_divergent, 0u);
}

TEST(FpmRuntime, WildStoreDuplicateEffect) {
  // §3.2 "Store addresses": the store landed at `addr` = 808 instead of
  // `addr_p` = 800. Both locations become contaminated: 808 should hold its
  // old pristine value (77), 800 should have received val_p (42).
  FpmRuntime rt;
  rt.on_store(/*val=*/5, /*val_p=*/42, /*addr=*/808, /*addr_p=*/800,
              /*old_pristine=*/77, /*mem_at_addr_p=*/3, true);
  EXPECT_EQ(rt.stats().wild_stores, 1u);
  EXPECT_EQ(rt.shadow().size(), 2u);
  EXPECT_EQ(rt.shadow().lookup(808).value(), 77u);
  EXPECT_EQ(rt.shadow().lookup(800).value(), 42u);
}

TEST(FpmRuntime, WildStoreCoincidentallyCorrectValues) {
  // If the wild write stored exactly what the location should hold, and the
  // intended location already holds the intended value, nothing is
  // contaminated.
  FpmRuntime rt;
  rt.on_store(/*val=*/77, /*val_p=*/42, /*addr=*/808, /*addr_p=*/800,
              /*old_pristine=*/77, /*mem_at_addr_p=*/42, true);
  EXPECT_TRUE(rt.shadow().empty());
}

TEST(FpmRuntime, WildStoreWithUnmappedIntendedAddress) {
  FpmRuntime rt;
  rt.on_store(5, 42, 808, 800, 77, 0, /*have_addr_p_content=*/false);
  // Cannot compare the intended location: conservatively contaminated.
  EXPECT_TRUE(rt.shadow().contaminated(800));
}

TEST(FpmRuntime, FetchUsesShadowThenMemory) {
  FpmRuntime rt;
  EXPECT_EQ(rt.fetch(800, 5), 5u);
  rt.shadow().record(800, 9);
  EXPECT_EQ(rt.fetch(800, 5), 9u);
  EXPECT_EQ(rt.stats().fetches, 2u);
  EXPECT_EQ(rt.stats().fetch_hits, 1u);
}

TEST(FpmRuntime, TraceSampling) {
  FpmRuntime rt(/*sample_period=*/10);
  for (std::uint64_t c = 1; c <= 35; ++c) {
    if (c == 12) rt.shadow().record(800, 1);
    if (c == 25) rt.shadow().record(808, 1);
    rt.tick(c);
  }
  rt.flush_trace(35);
  const auto& tr = rt.trace();
  ASSERT_GE(tr.size(), 4u);
  EXPECT_EQ(tr.front().cml, 0u);      // before the fault
  EXPECT_EQ(tr.back().cml, 2u);       // final state
  EXPECT_EQ(tr.back().cycle, 35u);
  // Monotone sample cycles.
  for (std::size_t i = 1; i < tr.size(); ++i) {
    EXPECT_GE(tr[i].cycle, tr[i - 1].cycle);
  }
}

TEST(FpmRuntime, NoTraceWhenDisabled) {
  FpmRuntime rt(0);
  rt.tick(100);
  rt.flush_trace(200);
  EXPECT_TRUE(rt.trace().empty());
}

TEST(FpmMessage, BuildHeaderFromContaminatedBuffer) {
  ShadowTable sender;
  const std::uint64_t buf = 4096;
  sender.record(buf + 8, 0x1111);
  sender.record(buf + 24, 0x2222);
  sender.record(buf + 800, 0x3333);  // outside the message
  const MessageHeader h = build_header(sender, buf, 4);
  ASSERT_EQ(h.count(), 2u);
  EXPECT_EQ(h.records[0].displacement_words, 1u);
  EXPECT_EQ(h.records[0].pristine_bits, 0x1111u);
  EXPECT_EQ(h.records[1].displacement_words, 3u);
  EXPECT_TRUE(h.contaminated());
}

TEST(FpmMessage, CleanBufferYieldsEmptyHeader) {
  ShadowTable sender;
  const MessageHeader h = build_header(sender, 4096, 16);
  EXPECT_FALSE(h.contaminated());
  EXPECT_EQ(header_wire_words(h), 1u);  // count word only
}

TEST(FpmMessage, InstallRebasesDisplacements) {
  // Fig. 4: sender address alpha != receiver address beta; displacements
  // carry the contamination across.
  MessageHeader h;
  h.records.push_back({1, 0xAAAA});
  h.records.push_back({3, 0xBBBB});
  ShadowTable receiver;
  const std::uint64_t beta = 1 << 20;
  install_header(receiver, beta, 4, h);
  EXPECT_EQ(receiver.size(), 2u);
  EXPECT_EQ(receiver.lookup(beta + 8).value(), 0xAAAAu);
  EXPECT_EQ(receiver.lookup(beta + 24).value(), 0xBBBBu);
}

TEST(FpmMessage, InstallHealsOverwrittenRange) {
  // Receiving a clean payload over previously contaminated words heals them.
  ShadowTable receiver;
  receiver.record(4096 + 8, 1);
  receiver.record(4096 + 16, 2);
  receiver.record(4096 + 800, 3);  // beyond the message: untouched
  install_header(receiver, 4096, 4, MessageHeader{});
  EXPECT_EQ(receiver.size(), 1u);
  EXPECT_TRUE(receiver.contaminated(4096 + 800));
}

TEST(FpmMessage, WireSizeAccountsRecords) {
  MessageHeader h;
  h.records.resize(5);
  EXPECT_EQ(header_wire_words(h), 11u);  // 1 + 2*5
}

TEST(FpmMessage, RoundTripSenderToReceiver) {
  ShadowTable sender;
  const std::uint64_t alpha = 4096;
  sender.record(alpha + 0, 100);
  sender.record(alpha + 32, 200);
  const auto h = build_header(sender, alpha, 8);
  ShadowTable receiver;
  const std::uint64_t beta = 8192;
  receiver.record(beta + 16, 999);  // stale; will be healed
  install_header(receiver, beta, 8, h);
  EXPECT_EQ(receiver.size(), 2u);
  EXPECT_EQ(receiver.lookup(beta + 0).value(), 100u);
  EXPECT_EQ(receiver.lookup(beta + 32).value(), 200u);
  EXPECT_FALSE(receiver.contaminated(beta + 16));
}

}  // namespace
}  // namespace fprop::fpm
