// Wire-form round-trip and hardened-install tests for the FPM piggyback
// header (DESIGN.md §12). The adversarial cases mirror exactly what the
// in-flight corruption injector can produce: a struck count word, a
// displacement pushed past the receive buffer, truncated/inflated streams.

#include <gtest/gtest.h>

#include "fprop/fpm/message.h"
#include "fprop/support/rng.h"

namespace fprop::fpm {
namespace {

MessageHeader random_header(Xoshiro256& rng, std::uint64_t count_words) {
  MessageHeader h;
  const std::uint64_t n = rng.next_below(8);
  for (std::uint64_t i = 0; i < n; ++i) {
    h.records.push_back({rng.next_below(count_words), rng.next()});
  }
  return h;
}

TEST(MessageWire, RoundTripPropertyOverRandomHeaders) {
  Xoshiro256 rng(0x5eed);
  for (int i = 0; i < 500; ++i) {
    const MessageHeader h = random_header(rng, 64);
    const std::vector<std::uint64_t> wire = serialize_header(h);
    ASSERT_EQ(wire.size(), header_wire_words(h));
    ASSERT_EQ(wire[0], h.records.size());
    MessageHeader back;
    EXPECT_TRUE(deserialize_header(wire, back));
    ASSERT_EQ(back.records.size(), h.records.size());
    for (std::size_t r = 0; r < h.records.size(); ++r) {
      EXPECT_EQ(back.records[r].displacement_words,
                h.records[r].displacement_words);
      EXPECT_EQ(back.records[r].pristine_bits, h.records[r].pristine_bits);
    }
  }
}

TEST(MessageWire, EmptyStreamIsMalformed) {
  MessageHeader h;
  EXPECT_FALSE(deserialize_header({}, h));
  EXPECT_TRUE(h.records.empty());
}

TEST(MessageWire, InflatedCountWordIsClampedToPhysicalRecords) {
  // Count word claims 2^40 records but only one pair is on the wire: the
  // parse must recover that one pair without allocating on the claim.
  const std::vector<std::uint64_t> wire{1ull << 40, 5, 0xDEAD};
  MessageHeader h;
  EXPECT_FALSE(deserialize_header(wire, h));
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].displacement_words, 5u);
  EXPECT_EQ(h.records[0].pristine_bits, 0xDEADu);
}

TEST(MessageWire, DeflatedCountWordDropsTrailingPairs) {
  // Count word struck down to 0: the pairs on the wire are unreachable.
  const std::vector<std::uint64_t> wire{0, 5, 0xDEAD};
  MessageHeader h;
  EXPECT_FALSE(deserialize_header(wire, h));
  EXPECT_TRUE(h.records.empty());
}

TEST(MessageWire, AnyCorruptedStreamParsesWithoutCrashing) {
  // Property sweep: serialize, flip one random bit of one random word,
  // deserialize. Must never throw/crash, and every parsed record must have
  // come from the physical pairs (count ≤ (len-1)/2).
  Xoshiro256 rng(0xC0FFEE);
  for (int i = 0; i < 2000; ++i) {
    const MessageHeader h = random_header(rng, 32);
    std::vector<std::uint64_t> wire = serialize_header(h);
    const std::uint64_t w = rng.next_below(wire.size());
    wire[w] ^= 1ull << rng.next_below(64);
    MessageHeader back;
    (void)deserialize_header(wire, back);
    EXPECT_LE(back.records.size(), (wire.size() - 1) / 2);
  }
}

TEST(InstallHardened, InRangeRecordsInstallOutOfRangeQuarantine) {
  ShadowTable table;
  MessageHeader h;
  const std::uint64_t buf = 0x1000;
  h.records.push_back({3, 42});     // in range (count_words = 8)
  h.records.push_back({8, 43});     // first word past the buffer
  h.records.push_back({1ull << 60, 44});  // displacement*8 would overflow
  const InstallResult res = install_header(table, buf, 8, h);
  EXPECT_EQ(res.installed, 1u);
  EXPECT_EQ(res.quarantined, 2u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.pristine_or(buf + 3 * 8, 0), 42u);
}

TEST(InstallHardened, HonestHeadersNeverQuarantine) {
  // build_header only emits displacements inside the scanned range, so the
  // hardened install must be a behavioral no-op for uncorrupted traffic.
  ShadowTable sender;
  const std::uint64_t buf = 0x2000;
  sender.record(buf + 2 * 8, 7);
  sender.record(buf + 6 * 8, 9);
  const MessageHeader h = build_header(sender, buf, 8);
  ASSERT_EQ(h.records.size(), 2u);
  ShadowTable receiver;
  const InstallResult res = install_header(receiver, buf, 8, h);
  EXPECT_EQ(res.installed, 2u);
  EXPECT_EQ(res.quarantined, 0u);
  EXPECT_EQ(receiver.size(), 2u);
}

TEST(InstallHardened, QuarantineNeverTouchesEntriesOutsideTheBuffer) {
  // A pre-existing shadow entry far from the receive buffer must survive a
  // maximally hostile header: the blast radius stays within the buffer.
  ShadowTable table;
  const std::uint64_t elsewhere = 0x9999000;
  table.record(elsewhere, 1234);
  MessageHeader h;
  Xoshiro256 rng(99);
  for (int i = 0; i < 64; ++i) {
    h.records.push_back({rng.next(), rng.next()});  // arbitrary garbage
  }
  (void)install_header(table, 0x1000, 4, h);
  EXPECT_EQ(table.pristine_or(elsewhere, 0), 1234u);
}

}  // namespace
}  // namespace fprop::fpm
