// Full reproduction of the paper's Fig. 1: an iterative matrix-vector
// product Ax_i = b_i where a single bit flip changes A[3][3] from 6 to 2
// (third least significant bit). After three iterations the faulty run must
// produce exactly the outputs of Fig. 1b, and the shadow table must show
// 37.5% of the memory state contaminated (9 of 24 words: A[3][3], all of x,
// all of b) with 100% of the output state corrupted.

#include <gtest/gtest.h>

#include "fprop/inject/injector.h"
#include "fprop/minic/compile.h"
#include "fprop/passes/passes.h"
#include "fprop/vm/interp.h"

namespace fprop {
namespace {

// Integer-valued matvec whose stores carry computed (injectable) values.
constexpr const char* kIntMatvec = R"(
fn main() {
  var n: int = 4;
  var a: int* = alloc_int(n * n);
  var x: int* = alloc_int(n);
  var b: int* = alloc_int(n);
  var z: int = 0;   // keeps store values non-constant (injectable)

  a[0] = z + 1;  a[1] = z + 2;  a[2] = z + 3;  a[3] = z + 4;
  a[4] = z + 4;  a[5] = z + 2;  a[6] = z + 3;  a[7] = z + 1;
  a[8] = z + 2;  a[9] = z + 4;  a[10] = z + 3; a[11] = z + 3;
  a[12] = z + 1; a[13] = z + 1; a[14] = z + 2; a[15] = z + 6;

  x[0] = z + 1; x[1] = z + 2; x[2] = z + 2; x[3] = z + 3;

  for (var it: int = 0; it < 3; it = it + 1) {
    for (var i: int = 0; i < n; i = i + 1) {
      var s: int = 0;
      for (var j: int = 0; j < n; j = j + 1) {
        s = s + a[i * n + j] * x[j];
      }
      b[i] = s;
    }
    for (var i: int = 0; i < n; i = i + 1) {
      x[i] = b[i];
    }
  }
  for (var i: int = 0; i < n; i = i + 1) {
    output_i(b[i]);
  }
}
)";

struct Fig1Run {
  std::vector<double> outputs;
  std::uint64_t cml_final = 0;
  std::uint64_t words = 0;
  fpm::ShadowTable shadow;
  std::vector<std::uint64_t> memory;  ///< final memory image (words)
};

Fig1Run run_fig1(std::optional<std::uint64_t> fault_dyn_index) {
  ir::Module m = minic::compile(kIntMatvec);
  // The paper's fault sits in the register holding A[3][3] as it is written
  // to memory, so this experiment targets store operands (§2 allows "other
  // kinds of instructions" beyond arithmetic).
  passes::InjectTargets targets;
  targets.arith = false;
  targets.store_operands = true;
  (void)passes::instrument_module(m, targets);
  inject::InjectorRuntime inj(
      fault_dyn_index
          ? inject::InjectionPlan::single(0, *fault_dyn_index, /*bit=*/2)
          : inject::InjectionPlan{});
  fpm::FpmRuntime fpm;
  vm::Interp vm(m, 0, vm::InterpConfig{});
  vm.set_inject_hook(&inj);
  vm.set_fpm(&fpm);
  EXPECT_EQ(vm.run(1u << 24), vm::RunState::Done);
  Fig1Run r;
  r.outputs = vm.outputs();
  r.cml_final = fpm.shadow().size();
  r.words = vm.memory().allocated_words();
  r.shadow = fpm.shadow();
  r.memory.resize(vm.memory().allocated_words());
  for (std::uint64_t i = 0; i < r.memory.size(); ++i) {
    EXPECT_TRUE(vm.memory().load(vm::AddressSpace::addr_of(i), r.memory[i]))
        << "word " << i;
  }
  return r;
}

// Dynamic injection points (store operands only), in program order: each
// store contributes its value operand then its address operand, so the
// store of a[k] has its value at dynamic point 2k. The A[3][3] value
// (register holding 6; bit 2 flips it to 2) is dynamic point 30.
constexpr std::uint64_t kA33ValuePoint = 30;

TEST(Fig1, FaultFreeMatchesPaper) {
  const Fig1Run r = run_fig1(std::nullopt);
  const std::vector<double> want{2436, 2412, 2880, 2426};  // Fig. 1a
  EXPECT_EQ(r.outputs, want);
  EXPECT_EQ(r.cml_final, 0u);
}

TEST(Fig1, SingleBitFlipReproducesFig1b) {
  const Fig1Run r = run_fig1(kA33ValuePoint);
  // Fig. 1b: outputs after three iterations with A[3][3] = 2.
  const std::vector<double> want{1760, 1964, 2256, 1086};
  EXPECT_EQ(r.outputs, want);

  // 37.5% of the application's memory state is contaminated: A[3][3] plus
  // all of x plus all of b = 9 of 24 words.
  EXPECT_EQ(r.words, 24u);
  EXPECT_EQ(r.cml_final, 9u);
  EXPECT_DOUBLE_EQ(100.0 * static_cast<double>(r.cml_final) /
                       static_cast<double>(r.words),
                   37.5);

  // The pristine value of A[3][3] is recoverable from the shadow table.
  const std::uint64_t a33 = vm::AddressSpace::kBase + 15 * 8;
  ASSERT_TRUE(r.shadow.contaminated(a33));
  EXPECT_EQ(r.shadow.lookup(a33).value(), 6u);
}

TEST(Fig1, ContaminationGrowsPerIteration) {
  // Run the same fault while sampling the CML trace densely: contamination
  // must be nondecreasing and step up across iterations (Fig. 1's
  // 1 -> 3 -> 6 -> 9 progression, modulo the exact copy points).
  ir::Module m = minic::compile(kIntMatvec);
  passes::InjectTargets targets;
  targets.arith = false;
  targets.store_operands = true;
  (void)passes::instrument_module(m, targets);
  inject::InjectorRuntime inj(
      inject::InjectionPlan::single(0, kA33ValuePoint, 2));
  fpm::FpmRuntime fpm(/*sample_period=*/8);
  vm::Interp vm(m, 0, vm::InterpConfig{});
  vm.set_inject_hook(&inj);
  vm.set_fpm(&fpm);
  ASSERT_EQ(vm.run(1u << 24), vm::RunState::Done);
  const auto& tr = fpm.trace();
  ASSERT_GT(tr.size(), 10u);
  EXPECT_EQ(tr.back().cml, 9u);
  std::uint64_t prev = 0;
  std::size_t increases = 0;
  for (const auto& s : tr) {
    EXPECT_GE(s.cml, prev);  // no healing in this workload
    if (s.cml > prev) ++increases;
    prev = s.cml;
  }
  EXPECT_GE(increases, 3u);  // distinct growth steps across iterations
}

TEST(Fig1, ShadowTableReconstructsFaultFreeMemory) {
  // The strongest invariant of the dual-chain design: patching every
  // contaminated word with its recorded pristine value must reproduce the
  // fault-free final memory image bit-for-bit (here control flow is
  // data-independent, so the pristine chain tracks the true golden run).
  const Fig1Run golden = run_fig1(std::nullopt);
  const Fig1Run faulty = run_fig1(kA33ValuePoint);
  ASSERT_EQ(golden.memory.size(), faulty.memory.size());
  for (std::size_t w = 0; w < golden.memory.size(); ++w) {
    const std::uint64_t addr = vm::AddressSpace::addr_of(w);
    const std::uint64_t reconstructed =
        faulty.shadow.pristine_or(addr, faulty.memory[w]);
    EXPECT_EQ(reconstructed, golden.memory[w]) << "word " << w;
  }
}

TEST(Fig1, OutputStateFullyCorrupted) {
  // 100% of the output state b is corrupted (Fig. 1 narrative).
  const Fig1Run golden = run_fig1(std::nullopt);
  const Fig1Run faulty = run_fig1(kA33ValuePoint);
  ASSERT_EQ(golden.outputs.size(), faulty.outputs.size());
  for (std::size_t i = 0; i < golden.outputs.size(); ++i) {
    EXPECT_NE(golden.outputs[i], faulty.outputs[i]) << "b[" << i << "]";
  }
}

}  // namespace
}  // namespace fprop
