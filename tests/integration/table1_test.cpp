// Reproduces the paper's Table 1: whether a fault in register `a`
// propagates to `b` depends on the operation. a = 19 with its second least
// significant bit flipped becomes 17; the outcome per operation is:
//
//   N  Op          b (pristine)  b' (faulty)  contaminated?
//   1  b = a + 5   24            22           yes
//   3  b = a >> 1  9             8            yes
//   4  b = a >> 2  4             4            no  (masked)
//
// (Row 2, b = 13, has no dependence on `a` and therefore no injection
// point at all — covered by a separate test.)

#include <gtest/gtest.h>

#include "fprop/inject/injector.h"
#include "fprop/minic/compile.h"
#include "fprop/passes/passes.h"
#include "fprop/vm/interp.h"

namespace fprop {
namespace {

struct Table1Row {
  const char* name;
  const char* op;        // MiniC expression over variable a
  std::int64_t faulty;   // expected b' with a = 17
  bool contaminated;
};

class Table1 : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1, PropagationMatchesPaper) {
  const Table1Row& row = GetParam();
  const std::string src = R"(
fn main() {
  var m: int* = alloc_int(2);
  var base: int = 19;
  m[0] = base + 0;      // a lives in memory
  m[1] = )" + std::string(row.op) + R"(;
  output_i(m[1]);
}
)";
  ir::Module m = minic::compile(src);
  (void)passes::instrument_module(m);

  // Dynamic injection points on rank 0, in order: the store of `base + 0`
  // uses one arith operand (base), then the row operation's operand (the
  // load of a). Flip the second least significant bit of the latter.
  inject::InjectorRuntime inj(inject::InjectionPlan::single(0, 1, 1));
  fpm::FpmRuntime fpm;
  vm::Interp vm(m, 0, vm::InterpConfig{});
  vm.set_inject_hook(&inj);
  vm.set_fpm(&fpm);
  ASSERT_EQ(vm.run(1u << 20), vm::RunState::Done);
  ASSERT_EQ(inj.events().size(), 1u);
  EXPECT_EQ(inj.events()[0].before, 19u);
  EXPECT_EQ(inj.events()[0].after, 17u);

  EXPECT_EQ(vm.outputs()[0], static_cast<double>(row.faulty));
  if (row.contaminated) {
    EXPECT_TRUE(fpm.shadow().size() >= 1) << "fault should have propagated";
  } else {
    EXPECT_TRUE(fpm.shadow().empty()) << "fault should have been masked";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rows, Table1,
    ::testing::Values(Table1Row{"row1_add", "m[0] + 5", 22, true},
                      Table1Row{"row3_shr1", "m[0] >> 1", 8, true},
                      Table1Row{"row4_shr2", "m[0] >> 2", 4, false}),
    [](const ::testing::TestParamInfo<Table1Row>& pi) {
      return pi.param.name;
    });

TEST(Table1, Row2ConstantHasNoInjectionPoint) {
  // b = 13 does not read `a`: no fault can reach it through this operation.
  ir::Module m = minic::compile(R"(
fn main() {
  var m: int* = alloc_int(2);
  m[0] = 19;
  m[1] = 13;
  output_i(m[1]);
}
)");
  const auto sites = passes::instrument_module(m);
  EXPECT_TRUE(sites.empty());
}

}  // namespace
}  // namespace fprop
