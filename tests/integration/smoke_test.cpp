// End-to-end smoke test on the paper's Fig. 1 matrix-vector example:
// compile MiniC -> instrument (LLFI++ + FPM) -> run on the VM, fault-free
// and with the exact fault from the figure, checking outputs and CML.

#include <gtest/gtest.h>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/inject/injector.h"
#include "fprop/minic/compile.h"
#include "fprop/passes/passes.h"
#include "fprop/vm/interp.h"

namespace fprop {
namespace {

TEST(Smoke, MatvecGoldenMatchesFig1) {
  const auto& spec = apps::get_app("matvec");
  harness::ExperimentConfig cfg;
  cfg.nranks = 1;
  harness::AppHarness h(spec, cfg);
  const auto& outs = h.golden().outputs;
  ASSERT_EQ(outs.size(), 4u);
  EXPECT_DOUBLE_EQ(outs[0], 2436.0);
  EXPECT_DOUBLE_EQ(outs[1], 2412.0);
  EXPECT_DOUBLE_EQ(outs[2], 2880.0);
  EXPECT_DOUBLE_EQ(outs[3], 2426.0);
}

TEST(Smoke, MatvecSingleFaultPropagates) {
  const auto& spec = apps::get_app("matvec");
  harness::ExperimentConfig cfg;
  cfg.nranks = 1;
  harness::AppHarness h(spec, cfg);
  ASSERT_GT(h.golden().total_dyn_points, 0u);

  // Sweep a few early injection points; at least one must contaminate
  // memory, and the classifier must notice the wrong output.
  bool saw_contamination = false;
  for (std::uint64_t idx = 0; idx < 40; ++idx) {
    const auto plan = inject::InjectionPlan::single(0, idx, 2);
    const auto t = h.run_trial(plan);
    if (t.total_cml_peak > 0) saw_contamination = true;
  }
  EXPECT_TRUE(saw_contamination);
}

TEST(Smoke, FaultFreeTrialIsVanished) {
  const auto& spec = apps::get_app("matvec");
  harness::ExperimentConfig cfg;
  cfg.nranks = 1;
  harness::AppHarness h(spec, cfg);
  // A plan whose dynamic index is beyond the run never fires.
  const auto plan = inject::InjectionPlan::single(
      0, h.golden().total_dyn_points + 1000, 1);
  const auto t = h.run_trial(plan);
  EXPECT_FALSE(t.injected);
  EXPECT_EQ(t.outcome, harness::Outcome::Vanished);
  EXPECT_EQ(t.total_cml_peak, 0u);
}

TEST(Smoke, AllAppsGoldenRunsComplete) {
  for (const auto& spec : apps::paper_apps()) {
    harness::ExperimentConfig cfg;
    SCOPED_TRACE(spec.name);
    ASSERT_NO_THROW({
      harness::AppHarness h(spec, cfg);
      EXPECT_GT(h.golden().global_cycles, 0u);
      EXPECT_GT(h.golden().total_dyn_points, 0u);
      EXPECT_FALSE(h.golden().outputs.empty());
    });
  }
}

}  // namespace
}  // namespace fprop
