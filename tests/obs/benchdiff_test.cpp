// fprop-benchdiff core: benchmark JSON extraction, regression gating, and
// the report the CI job keys on.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fprop/obs/benchdiff.h"
#include "fprop/support/error.h"

namespace fprop::obs {
namespace {

json::Value parse_doc(const std::string& text) {
  const json::ParseResult r = json::parse(text);
  EXPECT_TRUE(r.ok) << r.error;
  return r.value;
}

BenchEntry entry(std::string name, double real_ns, std::uint64_t iters = 100) {
  BenchEntry e;
  e.name = std::move(name);
  e.real_time = real_ns;
  e.cpu_time = real_ns;
  e.iterations = iters;
  return e;
}

TEST(Benchdiff, ParsesEntriesAndNormalizesTimeUnits) {
  const json::Value doc = parse_doc(R"({
    "benchmarks": [
      {"name": "BM_A", "run_type": "iteration", "iterations": 50,
       "real_time": 2.0, "cpu_time": 1.5, "time_unit": "us"},
      {"name": "BM_A_mean", "run_type": "aggregate",
       "real_time": 2.0, "time_unit": "us"},
      {"name": "BM_B", "real_time": 3.0}
    ]
  })");
  const std::vector<BenchEntry> entries = parse_benchmark_entries(doc);
  ASSERT_EQ(entries.size(), 2u);  // the aggregate row is skipped
  EXPECT_EQ(entries[0].name, "BM_A");
  EXPECT_DOUBLE_EQ(entries[0].real_time, 2000.0);  // us -> ns
  EXPECT_DOUBLE_EQ(entries[0].cpu_time, 1500.0);
  EXPECT_EQ(entries[0].iterations, 50u);
  EXPECT_EQ(entries[1].name, "BM_B");
  EXPECT_DOUBLE_EQ(entries[1].real_time, 3.0);  // default ns
}

TEST(Benchdiff, RejectsNonBenchmarkDocuments) {
  EXPECT_THROW(parse_benchmark_entries(parse_doc(R"({"x": 1})")), Error);
  EXPECT_THROW(parse_benchmark_entries(parse_doc(R"({
    "benchmarks": [{"name": "BM_A", "real_time": 1.0, "time_unit": "weeks"}]
  })")), Error);
}

TEST(Benchdiff, FlagsRegressionsAgainstThreshold) {
  const std::vector<BenchEntry> base = {entry("BM_fast", 100.0),
                                        entry("BM_slow", 100.0),
                                        entry("BM_same", 100.0)};
  const std::vector<BenchEntry> cur = {entry("BM_fast", 60.0),
                                       entry("BM_slow", 140.0),
                                       entry("BM_same", 105.0)};
  DiffOptions opt;
  opt.threshold = 0.30;
  const DiffReport report = diff_benchmarks(base, cur, opt);
  ASSERT_EQ(report.rows.size(), 3u);
  EXPECT_TRUE(report.rows[0].improved);
  EXPECT_TRUE(report.rows[1].regressed);
  EXPECT_DOUBLE_EQ(report.rows[1].ratio, 1.4);
  EXPECT_FALSE(report.rows[2].regressed);
  EXPECT_FALSE(report.rows[2].improved);
  EXPECT_EQ(report.regressions, 1u);
  EXPECT_TRUE(report.failed(opt));

  // A 40% slowdown passes a 50% threshold.
  opt.threshold = 0.50;
  EXPECT_FALSE(diff_benchmarks(base, cur, opt).failed(opt));
}

TEST(Benchdiff, MinItersExcludesNoisyRowsFromGating) {
  const std::vector<BenchEntry> base = {entry("BM_noisy", 100.0, /*iters=*/3)};
  const std::vector<BenchEntry> cur = {entry("BM_noisy", 500.0, /*iters=*/3)};
  DiffOptions opt;
  opt.min_iters = 10;
  const DiffReport report = diff_benchmarks(base, cur, opt);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_TRUE(report.rows[0].skipped);
  EXPECT_FALSE(report.rows[0].regressed);
  EXPECT_FALSE(report.failed(opt));
}

TEST(Benchdiff, MissingBenchmarksFailUnlessAllowed) {
  const std::vector<BenchEntry> base = {entry("BM_old", 1.0),
                                        entry("BM_kept", 1.0)};
  const std::vector<BenchEntry> cur = {entry("BM_kept", 1.0),
                                       entry("BM_new", 1.0)};
  DiffOptions opt;
  const DiffReport report = diff_benchmarks(base, cur, opt);
  ASSERT_EQ(report.only_in_base.size(), 1u);
  EXPECT_EQ(report.only_in_base[0], "BM_old");
  ASSERT_EQ(report.only_in_current.size(), 1u);
  EXPECT_EQ(report.only_in_current[0], "BM_new");
  EXPECT_EQ(report.regressions, 0u);
  EXPECT_TRUE(report.failed(opt));

  opt.allow_missing = true;
  EXPECT_FALSE(report.failed(opt));
}

TEST(Benchdiff, FilterRestrictsComparison) {
  const std::vector<BenchEntry> base = {entry("BM_Matvec/1", 100.0),
                                        entry("BM_Lulesh/1", 100.0)};
  const std::vector<BenchEntry> cur = {entry("BM_Matvec/1", 400.0),
                                       entry("BM_Lulesh/1", 100.0)};
  DiffOptions opt;
  opt.filter = "Lulesh";
  const DiffReport report = diff_benchmarks(base, cur, opt);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].name, "BM_Lulesh/1");
  EXPECT_FALSE(report.failed(opt));  // the Matvec regression is filtered out
}

TEST(Benchdiff, CpuTimeModeUsesCpuColumn) {
  BenchEntry b = entry("BM_X", 100.0);
  BenchEntry c = entry("BM_X", 100.0);
  c.cpu_time = 400.0;  // cpu regressed, real did not
  DiffOptions opt;
  EXPECT_FALSE(diff_benchmarks({b}, {c}, opt).failed(opt));
  opt.use_cpu_time = true;
  EXPECT_TRUE(diff_benchmarks({b}, {c}, opt).failed(opt));
}

TEST(Benchdiff, TableListsRowsAndVerdicts) {
  const std::vector<BenchEntry> base = {entry("BM_slow", 100.0)};
  const std::vector<BenchEntry> cur = {entry("BM_slow", 140.0)};
  DiffOptions opt;
  const DiffReport report = diff_benchmarks(base, cur, opt);
  const std::string table = format_diff_table(report, opt);
  EXPECT_NE(table.find("BM_slow"), std::string::npos);
  EXPECT_NE(table.find("REGRESSED"), std::string::npos);
  EXPECT_NE(table.find("1 regression(s)"), std::string::npos);
}

}  // namespace
}  // namespace fprop::obs
