// The dependency-free JSON parser behind fprop-benchdiff and the trace
// validation tests.

#include <gtest/gtest.h>

#include <string>

#include "fprop/obs/json.h"

namespace fprop::obs::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").value.is_null());
  EXPECT_TRUE(parse("true").value.as_bool());
  EXPECT_FALSE(parse("false").value.as_bool());
  EXPECT_DOUBLE_EQ(parse("42").value.as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.5").value.as_number(), -3.5);
  EXPECT_DOUBLE_EQ(parse("2.5e3").value.as_number(), 2500.0);
  EXPECT_EQ(parse("\"hi\"").value.as_string(), "hi");
}

TEST(Json, ParsesStringEscapes) {
  const ParseResult r = parse("\"a\\n\\t\\\"\\\\b\\u0041\"");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.as_string(), "a\n\t\"\\bA");
}

TEST(Json, ParsesNestedStructures) {
  const ParseResult r = parse(
      R"({"a": [1, 2, {"b": true}], "c": {"d": "x"}, "e": null})");
  ASSERT_TRUE(r.ok) << r.error;
  const Value& v = r.value;
  ASSERT_TRUE(v.is_object());
  ASSERT_TRUE(v["a"].is_array());
  ASSERT_EQ(v["a"].as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v["a"].as_array()[1].as_number(), 2.0);
  EXPECT_TRUE(v["a"].as_array()[2]["b"].as_bool());
  EXPECT_EQ(v["c"]["d"].as_string(), "x");
  EXPECT_TRUE(v["e"].is_null());
}

TEST(Json, MissingKeysChainToNull) {
  const ParseResult r = parse(R"({"a": 1})");
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.value["nope"].is_null());
  EXPECT_TRUE(r.value["nope"]["deeper"].is_null());
  // Indexing a non-object is also a shared null, not UB.
  EXPECT_TRUE(r.value["a"]["x"].is_null());
}

TEST(Json, DuplicateKeysKeepLast) {
  const ParseResult r = parse(R"({"k": 1, "k": 2})");
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.value["k"].as_number(), 2.0);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(parse("").ok);
  EXPECT_FALSE(parse("{").ok);
  EXPECT_FALSE(parse("[1,]").ok);
  EXPECT_FALSE(parse("\"unterminated").ok);
  EXPECT_FALSE(parse("nul").ok);

  const ParseResult r = parse("{} garbage");
  EXPECT_FALSE(r.ok);
  EXPECT_GT(r.error_pos, 0u);
  EXPECT_FALSE(r.error.empty());
}

TEST(Json, ParseFileReportsMissingFile) {
  const ParseResult r = parse_file("/nonexistent/fprop-json-test.json");
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(Json, ParsesBenchmarkShapedDocument) {
  const ParseResult r = parse(R"({
    "context": {"date": "2026-01-01T00:00:00", "num_cpus": 8},
    "benchmarks": [
      {"name": "BM_X/1", "run_type": "iteration", "iterations": 100,
       "real_time": 2.5, "cpu_time": 2.4, "time_unit": "ms"}
    ]
  })");
  ASSERT_TRUE(r.ok) << r.error;
  const Value& b = r.value["benchmarks"].as_array()[0];
  EXPECT_EQ(b["name"].as_string(), "BM_X/1");
  EXPECT_DOUBLE_EQ(b["real_time"].as_number(), 2.5);
  EXPECT_EQ(b["time_unit"].as_string(), "ms");
}

}  // namespace
}  // namespace fprop::obs::json
