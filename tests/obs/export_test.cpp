// Exporter golden tests: byte-exact CSV/JSON for hand-built inputs, and an
// end-to-end tiny campaign (matvec, fixed seed, 8 trials) whose exported
// files must be byte-stable across jobs=1 vs jobs=8 and valid JSON with
// step-ordered events per track.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "fprop/apps/registry.h"
#include "fprop/harness/harness.h"
#include "fprop/obs/export.h"
#include "fprop/obs/json.h"

namespace fprop::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(FormatDouble, ShortestRoundTrip) {
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(-2.0), "-2");
  EXPECT_EQ(format_double(0.1), "0.1");
  // Round-trips bit-exactly through the shortest representation.
  const double v = 33.333333333333336;
  EXPECT_EQ(std::stod(format_double(v)), v);
}

TEST(CampaignCsv, GoldenBytes) {
  CampaignRow r0;
  r0.trial = 0;
  r0.outcome = "C";
  r0.trap = "bad-access";
  r0.injected = true;
  r0.site = 7;
  r0.bit = 53;
  r0.inject_cycle = 452;
  r0.global_cycles = 457;
  CampaignRow r1;
  r1.trial = 1;
  r1.outcome = "ONA";
  r1.trap = "none";
  r1.injected = true;
  r1.site = 10;
  r1.bit = 30;
  r1.inject_cycle = 787;
  r1.global_cycles = 2709;
  r1.cml_final = 8;
  r1.cml_peak = 8;
  r1.contaminated_pct = 12.5;
  r1.contaminated_ranks = 1;
  r1.slope_usable = true;
  r1.slope_a = 0.25;
  r1.slope_b = -1.5;
  r1.detect_clock = 900;
  r1.detections = 2;
  r1.rollbacks = 1;
  r1.wasted_cycles = 300;
  r1.recovered = true;

  const std::string expected =
      "trial,outcome,trap,injected,rank,site,bit,inject_cycle,global_cycles,"
      "cml_final,cml_peak,contaminated_pct,contaminated_ranks,reported_iters,"
      "slope_usable,slope_a,slope_b,detect_clock,detections,rollbacks,"
      "wasted_cycles,recovered\n"
      "0,C,bad-access,1,0,7,53,452,457,0,0,0,0,-1,0,0,0,-1,0,0,0,0\n"
      "1,ONA,none,1,0,10,30,787,2709,8,8,12.5,1,-1,1,0.25,-1.5,900,2,1,300,1\n";
  EXPECT_EQ(campaign_csv({r0, r1}), expected);
}

TEST(CampaignSummaryJson, GoldenBytesAndValid) {
  CampaignSummary s;
  s.app = "matvec";
  s.trials = 8;
  s.seed = 1234;
  s.vanished = 3;
  s.ona = 2;
  s.wrong_output = 1;
  s.pex = 0;
  s.crashed = 2;
  s.fps_mean = 0.5;
  s.fps_stddev = 0.25;
  s.fps_n = 3;
  s.pruned_trials = 4;
  s.deduped_trials = 1;

  const std::string text = campaign_summary_json(s);
  const std::string expected =
      "{\n  \"app\": \"matvec\",\n"
      "  \"trials\": 8,\n"
      "  \"seed\": 1234,\n"
      "  \"faults_per_run\": 1,\n"
      "  \"outcomes\": {\"V\": 3, \"ONA\": 2, \"WO\": 1, \"PEX\": 0, \"C\": 2},\n"
      "  \"fps\": {\"mean\": 0.5, \"stddev\": 0.25, \"n\": 3},\n"
      "  \"recovery\": {\"recovered_trials\": 0, \"total_rollbacks\": 0, "
      "\"total_wasted_cycles\": 0},\n"
      "  \"trial_economy\": {\"pruned_trials\": 4, \"deduped_trials\": 1}\n}\n";
  EXPECT_EQ(text, expected);

  const json::ParseResult r = json::parse(text);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.value["outcomes"]["V"].as_number(), 3.0);
  EXPECT_DOUBLE_EQ(r.value["fps"]["mean"].as_number(), 0.5);
}

TEST(MetricsJson, ValidAndOrdered) {
  MetricsRegistry reg;
  reg.counter("campaign.trials").add(8);
  reg.counter("inject.flips").add(7);
  reg.histogram("shadow.probe_len", {1, 4}).observe(2);

  const std::string text = metrics_json(reg.snapshot());
  const json::ParseResult r = json::parse(text);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.value["counters"]["campaign.trials"].as_number(), 8.0);
  EXPECT_DOUBLE_EQ(r.value["counters"]["inject.flips"].as_number(), 7.0);
  const json::Value& h = r.value["histograms"]["shadow.probe_len"];
  ASSERT_TRUE(h["counts"].is_array());
  ASSERT_EQ(h["counts"].as_array().size(), 3u);  // 2 bounds + overflow
  EXPECT_DOUBLE_EQ(h["counts"].as_array()[1].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(h["sum"].as_number(), 2.0);
  // std::map keys: "campaign.trials" serializes before "inject.flips".
  EXPECT_LT(text.find("campaign.trials"), text.find("inject.flips"));

  // An empty snapshot is still a valid document.
  EXPECT_TRUE(json::parse(metrics_json(MetricsSnapshot{})).ok);
}

TEST(ChromeTrace, ValidJsonWithTracksAndCounters) {
  std::vector<Event> events;
  events.push_back({452, 7, 53, 1, 0, EventKind::Injection});
  events.push_back({500, 0x40, 3, 9, 0, EventKind::ShadowRecord});
  events.push_back({510, 0x40, 2, 0, 0, EventKind::ShadowHeal});
  events.push_back({520, 0, 5, 0, 1, EventKind::CmlSample});
  events.push_back({600, 4, 0, 7, kJobScope, EventKind::TrialOutcome});

  ChromeTraceMeta meta;
  meta.app = "matvec";
  meta.trial_index = 3;
  meta.nranks = 2;
  meta.total_emitted = 5;

  const std::string text = chrome_trace_json(events, meta);
  const json::ParseResult r = json::parse(text);
  ASSERT_TRUE(r.ok) << r.error << " at " << r.error_pos;
  EXPECT_EQ(r.value["otherData"]["app"].as_string(), "matvec");
  EXPECT_DOUBLE_EQ(r.value["otherData"]["trial"].as_number(), 3.0);

  const json::Array& tev = r.value["traceEvents"].as_array();
  // 3 thread_name metadata (2 ranks + job) + 5 events + 3 CML counter
  // samples (record/heal/sample all resync the counter track).
  ASSERT_EQ(tev.size(), 11u);
  std::size_t counters = 0;
  for (const json::Value& e : tev) {
    if (e["ph"].as_string() == "C") {
      ++counters;
      EXPECT_EQ(e["name"].as_string().rfind("cml[", 0), 0u);
    }
  }
  EXPECT_EQ(counters, 3u);
  // The job-scoped outcome event lands on the job track (tid == nranks).
  const json::Value& last = tev.back();
  EXPECT_EQ(last["name"].as_string(), "trial_outcome");
  EXPECT_DOUBLE_EQ(last["tid"].as_number(), 2.0);
}

TEST(TraceFilename, ZeroPadded) {
  EXPECT_EQ(trial_trace_filename(0), "trial_000000.json");
  EXPECT_EQ(trial_trace_filename(42), "trial_000042.json");
}

TEST(WriteFile, RoundTripsThroughEnsureDir) {
  const std::string dir = ::testing::TempDir() + "fprop_obs_export/sub";
  ensure_dir(dir);
  write_file(dir + "/x.txt", "payload\n");
  EXPECT_EQ(read_file(dir + "/x.txt"), "payload\n");
}

// --- end-to-end golden: tiny deterministic campaign -> byte-stable files ---

harness::CampaignConfig tiny_config(std::size_t jobs, std::string trace_dir) {
  harness::CampaignConfig cc;
  cc.trials = 8;
  cc.seed = 1234;
  cc.jobs = jobs;
  cc.trace_dir = std::move(trace_dir);
  return cc;
}

std::map<std::string, std::string> run_and_slurp(harness::AppHarness& h,
                                                 std::size_t jobs,
                                                 const std::string& dir) {
  run_campaign(h, tiny_config(jobs, dir));
  std::map<std::string, std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    files[entry.path().filename().string()] = read_file(entry.path().string());
  }
  return files;
}

TEST(CampaignExport, ByteStableAcrossJobsAndValid) {
  harness::ExperimentConfig cfg;
  cfg.overrides = {{"ITERS", "6"}};
  harness::AppHarness h(apps::get_app("matvec"), cfg);

  const std::string base = ::testing::TempDir() + "fprop_obs_campaign";
  const auto serial = run_and_slurp(h, 1, base + "/j1");
  const auto parallel = run_and_slurp(h, 8, base + "/j8");

  // 8 trial traces + campaign.csv + campaign.json, byte-identical at any
  // jobs value (the golden-file determinism contract).
  ASSERT_EQ(serial.size(), 10u);
  ASSERT_EQ(parallel.size(), serial.size());
  for (const auto& [name, bytes] : serial) {
    const auto it = parallel.find(name);
    ASSERT_NE(it, parallel.end()) << name;
    EXPECT_EQ(it->second, bytes) << name << " differs between jobs=1 and 8";
  }

  // The CSV has one row per trial and survives re-parsing of its header.
  const std::string& csv = serial.at("campaign.csv");
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            9u);
  EXPECT_EQ(csv.rfind("trial,outcome,trap,", 0), 0u);

  // The summary parses and accounts for every trial.
  const json::ParseResult summary = json::parse(serial.at("campaign.json"));
  ASSERT_TRUE(summary.ok) << summary.error;
  const json::Value& oc = summary.value["outcomes"];
  EXPECT_DOUBLE_EQ(oc["V"].as_number() + oc["ONA"].as_number() +
                       oc["WO"].as_number() + oc["PEX"].as_number() +
                       oc["C"].as_number(),
                   8.0);

  // Every trace is valid JSON whose events are step-ordered per track
  // (virtual time is monotone on each rank's clock and the global clock).
  for (std::uint64_t i = 0; i < 8; ++i) {
    const json::ParseResult trace =
        json::parse(serial.at(trial_trace_filename(i)));
    ASSERT_TRUE(trace.ok) << trace.error;
    std::map<double, double> last_ts_by_tid;
    for (const json::Value& e : trace.value["traceEvents"].as_array()) {
      if (e["ph"].as_string() == "M") continue;
      const double tid = e["tid"].as_number();
      const double ts = e["ts"].as_number();
      const auto it = last_ts_by_tid.find(tid);
      if (it != last_ts_by_tid.end()) {
        EXPECT_GE(ts, it->second) << "trial " << i << " tid " << tid;
      }
      last_ts_by_tid[tid] = ts;
    }
    EXPECT_DOUBLE_EQ(trace.value["otherData"]["dropped"].as_number(), 0.0);
  }
}

}  // namespace
}  // namespace fprop::obs
