// TrialRecorder ring-buffer semantics and the metrics registry's
// determinism-enabling invariants (commutative updates, ordered snapshots).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "fprop/obs/events.h"
#include "fprop/obs/metrics.h"
#include "fprop/support/error.h"

namespace fprop::obs {
namespace {

TEST(TrialRecorder, EmitsInOrder) {
  TrialRecorder rec(8);
  rec.emit(EventKind::Injection, 0, 10, 7, 3, 0xFF);
  rec.emit(EventKind::ShadowRecord, 1, 11, 0x1000, 1, 42);
  rec.emit(EventKind::TrialOutcome, kJobScope, 12, 2, 0, 1);

  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.total_emitted(), 3u);
  EXPECT_EQ(rec.dropped(), 0u);

  const std::vector<Event> events = rec.ordered();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::Injection);
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_EQ(events[0].b, 3u);
  EXPECT_EQ(events[0].c, 0xFFu);
  EXPECT_EQ(events[1].kind, EventKind::ShadowRecord);
  EXPECT_EQ(events[1].rank, 1u);
  EXPECT_EQ(events[2].rank, kJobScope);
  EXPECT_EQ(events[2].step, 12u);
}

TEST(TrialRecorder, WraparoundKeepsNewestEvents) {
  TrialRecorder rec(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    rec.emit(EventKind::ShadowRecord, 0, i, i);
  }
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.total_emitted(), 6u);
  EXPECT_EQ(rec.dropped(), 2u);
  EXPECT_EQ(rec.size(), 4u);

  // The oldest two events (steps 0, 1) were overwritten; the tail survives
  // in emission order — exactly what a trial's detection/outcome needs.
  const std::vector<Event> events = rec.ordered();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].step, i + 2) << "event " << i;
  }
}

TEST(TrialRecorder, ClearResetsForReuse) {
  TrialRecorder rec(4);
  for (int i = 0; i < 9; ++i) rec.emit(EventKind::Trap, 0, 1);
  rec.clear();
  EXPECT_EQ(rec.total_emitted(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_TRUE(rec.ordered().empty());

  rec.emit(EventKind::Injection, 0, 5);
  ASSERT_EQ(rec.ordered().size(), 1u);
  EXPECT_EQ(rec.ordered()[0].step, 5u);
}

TEST(TrialRecorder, ZeroCapacityClampsToOne) {
  TrialRecorder rec(0);
  EXPECT_EQ(rec.capacity(), 1u);
  rec.emit(EventKind::Injection, 0, 1);
  rec.emit(EventKind::Trap, 0, 2);
  ASSERT_EQ(rec.ordered().size(), 1u);
  EXPECT_EQ(rec.ordered()[0].kind, EventKind::Trap);
}

TEST(TrialRecorder, EmitMacroToleratesNullRecorder) {
  TrialRecorder* null_rec = nullptr;
  FPROP_OBS_EMIT(null_rec, EventKind::Injection, 0u, 1u);  // must not crash

  TrialRecorder rec(4);
  TrialRecorder* p = &rec;
  FPROP_OBS_EMIT(p, EventKind::Rollback, kJobScope, 9u, 3u, 6u);
#if FPROP_OBS_ENABLED
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.ordered()[0].kind, EventKind::Rollback);
  EXPECT_EQ(rec.ordered()[0].b, 6u);
#else
  EXPECT_EQ(rec.size(), 0u);
#endif
}

TEST(EventKindName, CoversEveryKind) {
  EXPECT_STREQ(event_kind_name(EventKind::Injection), "injection");
  EXPECT_STREQ(event_kind_name(EventKind::ShadowRecord), "shadow_record");
  EXPECT_STREQ(event_kind_name(EventKind::ShadowHeal), "shadow_heal");
  EXPECT_STREQ(event_kind_name(EventKind::CmlSample), "cml_sample");
  EXPECT_STREQ(event_kind_name(EventKind::TrialOutcome), "trial_outcome");
}

TEST(Metrics, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, HistogramBucketsByUpperBound) {
  Histogram h({1, 4, 16});
  for (std::uint64_t v : {0u, 1u, 2u, 4u, 17u}) h.observe(v);

  EXPECT_EQ(h.bucket_count(0), 2u);  // <= 1: {0, 1}
  EXPECT_EQ(h.bucket_count(1), 2u);  // <= 4: {2, 4}
  EXPECT_EQ(h.bucket_count(2), 0u);  // <= 16: none
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow: {17}
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 24u);
}

TEST(Metrics, HistogramRejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({4, 1}), Error);
}

TEST(Metrics, RegistryReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  a.add(3);
  EXPECT_EQ(&reg.counter("x"), &a);
  EXPECT_EQ(reg.counter("x").value(), 3u);

  Histogram& h = reg.histogram("h", {1, 2});
  h.observe(2);
  EXPECT_EQ(&reg.histogram("h", {1, 2}), &h);
  EXPECT_THROW(reg.histogram("h", {1, 3}), Error);
}

TEST(Metrics, SnapshotComparesAndResets) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("trials").add(8);
  a.histogram("probe", {1, 2}).observe(1);
  b.counter("trials").add(8);
  b.histogram("probe", {1, 2}).observe(1);
  EXPECT_EQ(a.snapshot(), b.snapshot());

  b.counter("trials").add(1);
  EXPECT_FALSE(a.snapshot() == b.snapshot());

  a.reset();
  EXPECT_TRUE(a.snapshot().counters.empty());
  EXPECT_TRUE(a.snapshot().histograms.empty());
}

TEST(Metrics, ConcurrentUpdatesAreCommutative) {
  // The registry's whole determinism story: updates from any number of
  // worker threads fold to the same totals.
  MetricsRegistry reg;
  Counter& c = reg.counter("n");
  Histogram& h = reg.histogram("v", {8, 64});
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < 1000; ++i) {
        c.add();
        h.observe(i % 100);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), 4000u);
  EXPECT_EQ(h.count(), 4000u);
  EXPECT_EQ(h.sum(), 198000u);  // 4 threads * 10 cycles * sum(0..99)
}

}  // namespace
}  // namespace fprop::obs
