#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fprop/model/propagation_model.h"
#include "fprop/support/rng.h"

namespace fprop::model {
namespace {

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.5 * i + 11.0);
  }
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.a, 3.5, 1e-12);
  EXPECT_NEAR(f.b, 11.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineStillClose) {
  Xoshiro256 rng(5);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + 5.0 + (rng.next_double() - 0.5) * 4.0);
  }
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.a, 2.0, 0.02);
  EXPECT_GT(f.r2, 0.99);
}

TEST(LinearFit, DegenerateInputs) {
  EXPECT_EQ(fit_linear({}, {}).n, 0u);
  const LinearFit one = fit_linear(std::vector<double>{1.0},
                                   std::vector<double>{2.0});
  EXPECT_EQ(one.a, 0.0);
  // All-equal x: slope undefined, falls back to mean intercept.
  std::vector<double> x{2, 2, 2};
  std::vector<double> y{1, 2, 3};
  const LinearFit flat = fit_linear(x, y);
  EXPECT_DOUBLE_EQ(flat.a, 0.0);
  EXPECT_DOUBLE_EQ(flat.b, 2.0);
}

TEST(PiecewiseFit, FindsKneeOfLinearThenConstant) {
  // y = 2t for t <= 60, then flat at 120.
  std::vector<double> x;
  std::vector<double> y;
  for (int t = 0; t <= 100; ++t) {
    x.push_back(t);
    y.push_back(t <= 60 ? 2.0 * t : 120.0);
  }
  const PiecewiseFit f = fit_linear_then_constant(x, y);
  EXPECT_NEAR(f.a, 2.0, 0.05);
  EXPECT_NEAR(f.knee, 60.0, 3.0);
  EXPECT_NEAR(f.plateau, 120.0, 1.0);
  EXPECT_LT(f.sse, 1.0);
}

TEST(PiecewiseFit, PureLinearKeepsLateKnee) {
  std::vector<double> x;
  std::vector<double> y;
  for (int t = 0; t <= 100; ++t) {
    x.push_back(t);
    y.push_back(1.5 * t);
  }
  const PiecewiseFit f = fit_linear_then_constant(x, y);
  EXPECT_NEAR(f.a, 1.5, 0.05);
  EXPECT_GT(f.knee, 90.0);
}

TEST(PiecewiseFit, TinyInputFallsBackToLinear) {
  std::vector<double> x{0, 1};
  std::vector<double> y{0, 2};
  const PiecewiseFit f = fit_linear_then_constant(x, y);
  EXPECT_NEAR(f.a, 2.0, 1e-12);
}

TEST(CrossValidation, NearZeroForExactModel) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(4.0 * i + 1.0);
  }
  EXPECT_LT(cross_validate_linear(x, y), 1e-10);
}

TEST(CrossValidation, LargeForNonlinearData) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 1; i < 100; ++i) {
    x.push_back(i);
    y.push_back(i * i);
  }
  EXPECT_GT(cross_validate_linear(x, y), 0.05);
}

std::vector<fpm::TraceSample> make_trace(
    std::uint64_t onset, std::uint64_t end, double slope,
    std::uint64_t period = 10) {
  std::vector<fpm::TraceSample> tr;
  for (std::uint64_t c = 0; c <= end; c += period) {
    const double cml = c < onset ? 0.0 : slope * static_cast<double>(c - onset);
    tr.push_back({c, static_cast<std::uint64_t>(cml)});
  }
  return tr;
}

TEST(TraceModel, CleanTraceIsUnusable) {
  std::vector<fpm::TraceSample> tr;
  for (std::uint64_t c = 0; c < 100; c += 10) tr.push_back({c, 0});
  const TraceModel m = model_trace(tr);
  EXPECT_FALSE(m.usable);
}

TEST(TraceModel, RecoversSlopeAndFaultTime) {
  const auto tr = make_trace(/*onset=*/200, /*end=*/1000, /*slope=*/0.5);
  const TraceModel m = model_trace(tr);
  ASSERT_TRUE(m.usable);
  EXPECT_NEAR(m.rate.a, 0.5, 0.02);
  // Eq. 2: inferred fault time = -b/a, close to the onset.
  EXPECT_NEAR(m.inferred_tf, 200.0, 30.0);
  EXPECT_NEAR(m.final_cml, 0.5 * 800, 2.0);
}

TEST(TraceModel, ShortTraceUnusable) {
  std::vector<fpm::TraceSample> tr{{0, 0}, {10, 5}};
  EXPECT_FALSE(model_trace(tr).usable);
}

TEST(FpsAggregation, MeanAndStddev) {
  std::vector<double> slopes{1.0, 2.0, 3.0};
  const FpsModel f = aggregate_fps(slopes);
  EXPECT_DOUBLE_EQ(f.fps, 2.0);
  EXPECT_NEAR(f.stddev, 1.0, 1e-12);
  EXPECT_EQ(f.num_models, 3u);
  EXPECT_DOUBLE_EQ(f.min, 1.0);
  EXPECT_DOUBLE_EQ(f.max, 3.0);
}

TEST(FpsAggregation, Empty) {
  const FpsModel f = aggregate_fps({});
  EXPECT_EQ(f.num_models, 0u);
  EXPECT_DOUBLE_EQ(f.fps, 0.0);
}

TEST(CmlEstimators, Eq3Bounds) {
  // Paper Eq. 3: max CML between detector invocations t1, t2.
  EXPECT_DOUBLE_EQ(max_cml_estimate(0.5, 100, 300), 100.0);
  EXPECT_DOUBLE_EQ(avg_cml_estimate(0.5, 100, 300), 50.0);
  EXPECT_DOUBLE_EQ(max_cml_estimate(0.5, 100, 100), 0.0);
}

TEST(RollbackAdvisor, KeepsRunningUnderThreshold) {
  // Low-FPS application: predicted contamination at the end of the run
  // stays below the safe threshold -> keep running (paper §5).
  const RollbackDecision d =
      advise_rollback(/*fps=*/0.001, /*t1=*/0, /*t2=*/1000, /*t_end=*/10000,
                      /*cml_threshold=*/100.0);
  EXPECT_FALSE(d.rollback);
  EXPECT_NEAR(d.predicted_cml_now, 1.0, 1e-9);
  EXPECT_NEAR(d.predicted_cml_at_end, 10.0, 1e-9);
}

TEST(RollbackAdvisor, RollsBackWhenExceeding) {
  const RollbackDecision d =
      advise_rollback(/*fps=*/1.0, /*t1=*/0, /*t2=*/1000, /*t_end=*/10000,
                      /*cml_threshold=*/100.0);
  EXPECT_TRUE(d.rollback);
  EXPECT_GT(d.predicted_cml_at_end, 100.0);
}

}  // namespace
}  // namespace fprop::model
