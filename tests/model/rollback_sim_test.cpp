#include <gtest/gtest.h>

#include "fprop/model/rollback_sim.h"

namespace fprop::model {
namespace {

// Trace helper: contamination appears at `onset` and grows by `slope`
// per cycle until `end`.
std::vector<fpm::TraceSample> linear_trace(std::uint64_t onset,
                                           std::uint64_t end, double slope) {
  std::vector<fpm::TraceSample> tr;
  for (std::uint64_t c = 0; c <= end; c += 50) {
    const double cml =
        c < onset ? 0.0 : slope * static_cast<double>(c - onset);
    tr.push_back({c, static_cast<std::uint64_t>(cml)});
  }
  return tr;
}

DetectorConfig detector(std::uint64_t interval, double fps,
                        double threshold) {
  DetectorConfig d;
  d.interval = interval;
  d.fps = fps;
  d.cml_threshold = threshold;
  return d;
}

TEST(RollbackSim, CleanTraceNeverDetects) {
  const auto tr = linear_trace(100'000, 10'000, 0.0);  // never contaminated
  const auto o = simulate_rollback(tr, detector(1000, 0.01, 10),
                                   RollbackPolicy::Always);
  EXPECT_FALSE(o.detected);
  EXPECT_FALSE(o.rolled_back);
  EXPECT_EQ(o.wasted_cycles, 0u);
  EXPECT_EQ(o.residual_cml, 0u);
}

TEST(RollbackSim, AlwaysPolicyRollsBackOnFirstDetection) {
  const auto tr = linear_trace(2'500, 10'000, 0.1);
  const auto o = simulate_rollback(tr, detector(1000, 0.1, 10),
                                   RollbackPolicy::Always);
  EXPECT_TRUE(o.detected);
  EXPECT_TRUE(o.rolled_back);
  // Fault at 2500, last clean detector tick at 2000, detection at 3000:
  // wasted work = 1000 cycles.
  EXPECT_EQ(o.wasted_cycles, 1000u);
  EXPECT_EQ(o.residual_cml, 0u);
}

TEST(RollbackSim, NeverPolicyCarriesResidual) {
  const auto tr = linear_trace(2'500, 10'000, 0.1);
  const auto o = simulate_rollback(tr, detector(1000, 0.1, 10),
                                   RollbackPolicy::Never);
  EXPECT_TRUE(o.detected);
  EXPECT_FALSE(o.rolled_back);
  EXPECT_EQ(o.wasted_cycles, 0u);
  EXPECT_EQ(o.residual_cml, tr.back().cml);
  EXPECT_GT(o.residual_cml, 500u);
}

TEST(RollbackSim, FpsPolicyKeepsRunningForSlowPropagators) {
  // Slow FPS: predicted end-of-run contamination below threshold.
  const auto tr = linear_trace(2'500, 10'000, 0.0005);
  const auto o = simulate_rollback(tr, detector(1000, 0.0005, 10),
                                   RollbackPolicy::FpsModel);
  EXPECT_TRUE(o.detected);
  EXPECT_FALSE(o.rolled_back) << "predicted " << o.predicted_final_cml;
  EXPECT_LT(o.predicted_final_cml, 10.0);
  EXPECT_EQ(o.residual_cml, tr.back().cml);
}

TEST(RollbackSim, FpsPolicyRollsBackFastPropagators) {
  const auto tr = linear_trace(2'500, 10'000, 0.5);
  const auto o = simulate_rollback(tr, detector(1000, 0.5, 10),
                                   RollbackPolicy::FpsModel);
  EXPECT_TRUE(o.detected);
  EXPECT_TRUE(o.rolled_back);
  EXPECT_GT(o.predicted_final_cml, 10.0);
  EXPECT_EQ(o.residual_cml, 0u);
}

TEST(RollbackSim, LateFaultMayEscapeTheDetectorGrid) {
  // Fault after the last detector tick (ticks at 4000 and 8000): nothing
  // fires; residual remains.
  const auto tr = linear_trace(9'950, 10'000, 1.0);
  const auto o = simulate_rollback(tr, detector(4000, 1.0, 10),
                                   RollbackPolicy::Always);
  EXPECT_FALSE(o.detected);
  EXPECT_EQ(o.residual_cml, tr.back().cml);
}

TEST(RollbackSim, SummaryAggregates) {
  std::vector<std::vector<fpm::TraceSample>> traces{
      linear_trace(2'500, 10'000, 0.1),   // detected
      linear_trace(100'000, 10'000, 0.0), // clean
  };
  const auto s = summarize_policy(traces, detector(1000, 0.1, 10),
                                  RollbackPolicy::Always);
  EXPECT_EQ(s.runs, 2u);
  EXPECT_EQ(s.detections, 1u);
  EXPECT_EQ(s.rollbacks, 1u);
  EXPECT_DOUBLE_EQ(s.mean_wasted(), 500.0);
  EXPECT_DOUBLE_EQ(s.mean_residual(), 0.0);
}

TEST(RollbackSim, PolicyNames) {
  EXPECT_STREQ(rollback_policy_name(RollbackPolicy::Always), "always");
  EXPECT_STREQ(rollback_policy_name(RollbackPolicy::Never), "never");
  EXPECT_STREQ(rollback_policy_name(RollbackPolicy::FpsModel), "fps-model");
}

}  // namespace
}  // namespace fprop::model
