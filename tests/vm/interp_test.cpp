#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fprop/ir/builder.h"
#include "fprop/ir/verifier.h"
#include "fprop/vm/interp.h"

namespace fprop::vm {
namespace {

using ir::Opcode;
using ir::Reg;

// Builds main() { output(op(a, b)); } and returns the single output bits.
std::uint64_t eval_binop(Opcode op, std::uint64_t a_bits,
                         std::uint64_t b_bits, Trap expect = Trap::None) {
  ir::Module m;
  ir::Function& f = m.add_function("main", ir::Type::Void);
  m.entry = f.id;
  ir::Builder b(f);
  const ir::Type opt = ir::opcode_operand_type(op);
  const Reg ra = f.add_reg(opt);
  const Reg rb = f.add_reg(opt);
  const Reg out = b.binop(op, ra, rb);
  b.intrinsic(ir::opcode_result_type(op) == ir::Type::F64
                  ? ir::IntrinsicId::OutputF
                  : ir::IntrinsicId::OutputI,
              {out});
  b.ret();
  ir::verify(m);
  Interp interp(m, 0, InterpConfig{});
  // Pre-set the operand registers by injecting constants via a tiny hack:
  // rebuild with constants instead.
  (void)interp;
  // Simpler: rebuild the function with constants.
  ir::Module m2;
  ir::Function& f2 = m2.add_function("main", ir::Type::Void);
  m2.entry = f2.id;
  ir::Builder b2(f2);
  Reg ca;
  Reg cb;
  if (opt == ir::Type::F64) {
    ca = b2.const_f(double_of(a_bits));
    cb = b2.const_f(double_of(b_bits));
  } else {
    ca = b2.const_i(static_cast<std::int64_t>(a_bits));
    cb = b2.const_i(static_cast<std::int64_t>(b_bits));
  }
  const Reg out2 = b2.binop(op, ca, cb);
  const bool fres = ir::opcode_result_type(op) == ir::Type::F64;
  b2.intrinsic(fres ? ir::IntrinsicId::OutputF : ir::IntrinsicId::OutputI,
               {out2});
  b2.ret();
  ir::verify(m2);
  Interp vm2(m2, 0, InterpConfig{});
  const RunState rs = vm2.run(1000);
  if (expect != Trap::None) {
    EXPECT_EQ(rs, RunState::Trapped);
    EXPECT_EQ(vm2.trap(), expect);
    return 0;
  }
  EXPECT_EQ(rs, RunState::Done);
  EXPECT_EQ(vm2.outputs().size(), 1u);
  const double v = vm2.outputs()[0];
  return fres ? bits_of(v) : static_cast<std::uint64_t>(
                                 static_cast<std::int64_t>(v));
}

TEST(VmArith, SignedOverflowWraps) {
  const auto max = static_cast<std::uint64_t>(
      std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(static_cast<std::int64_t>(eval_binop(Opcode::AddI, max, 1)),
            std::numeric_limits<std::int64_t>::min());
}

TEST(VmArith, DivisionEdgeCases) {
  const auto min_i = static_cast<std::uint64_t>(
      std::numeric_limits<std::int64_t>::min());
  // INT64_MIN / -1 wraps instead of faulting (documented VM semantics).
  EXPECT_EQ(eval_binop(Opcode::DivI, min_i, static_cast<std::uint64_t>(-1)),
            min_i);
  EXPECT_EQ(static_cast<std::int64_t>(eval_binop(
                Opcode::RemI, min_i, static_cast<std::uint64_t>(-1))),
            0);
  eval_binop(Opcode::DivI, 5, 0, Trap::DivByZero);
  eval_binop(Opcode::RemI, 5, 0, Trap::DivByZero);
}

TEST(VmArith, ShiftCountsMasked) {
  EXPECT_EQ(eval_binop(Opcode::ShlI, 1, 64), 1u);  // 64 & 63 == 0
  EXPECT_EQ(eval_binop(Opcode::ShlI, 1, 65), 2u);
  EXPECT_EQ(eval_binop(Opcode::ShrI, 8, 67), 1u);
}

TEST(VmArith, ShrIsLogical) {
  // INT64_MIN >> 1 logically is 2^62 (arithmetic shift would keep the sign
  // bit). 2^62 is exactly representable through the output channel.
  const auto min_i = static_cast<std::uint64_t>(
      std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(eval_binop(Opcode::ShrI, min_i, 1), 1ull << 62);
}

TEST(VmArith, FloatSpecialValues) {
  const std::uint64_t inf = bits_of(HUGE_VAL);
  const std::uint64_t one = bits_of(1.0);
  EXPECT_TRUE(std::isnan(double_of(eval_binop(Opcode::SubF, inf, inf))));
  EXPECT_TRUE(std::isinf(double_of(eval_binop(Opcode::AddF, inf, one))));
  // NaN compares false with everything.
  const std::uint64_t nan = bits_of(std::nan(""));
  EXPECT_EQ(eval_binop(Opcode::EqF, nan, nan), 0u);
  EXPECT_EQ(eval_binop(Opcode::LtF, nan, one), 0u);
  EXPECT_EQ(eval_binop(Opcode::NeF, nan, nan), 1u);
}

// The output channel stores i64 as double, so expectations are phrased as
// the double image of the expected integer.
double eval_f2i(double v) {
  ir::Module m;
  ir::Function& f = m.add_function("main", ir::Type::Void);
  m.entry = f.id;
  ir::Builder b(f);
  const Reg c = b.const_f(v);
  const Reg out = b.f2i(c);
  b.intrinsic(ir::IntrinsicId::OutputI, {out});
  b.ret();
  Interp vm(m, 0, InterpConfig{});
  EXPECT_EQ(vm.run(100), RunState::Done);
  return vm.outputs()[0];
}

TEST(VmArith, F2ITruncationSemantics) {
  EXPECT_EQ(eval_f2i(3.99), 3.0);
  EXPECT_EQ(eval_f2i(-3.99), -3.0);
  // NaN / out-of-range follow x86 cvttsd2si: saturate, no trap.
  const double min_d =
      static_cast<double>(std::numeric_limits<std::int64_t>::min());
  const double max_d =
      static_cast<double>(std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(eval_f2i(std::nan("")), min_d);
  EXPECT_EQ(eval_f2i(1e30), max_d);
  EXPECT_EQ(eval_f2i(-1e30), min_d);
}

TEST(VmMemory, GuardPageAndAlignment) {
  AddressSpace mem(1024);
  EXPECT_EQ(mem.alloc_words(4), AddressSpace::kBase);
  std::uint64_t v = 0;
  EXPECT_FALSE(mem.load(0, v));                        // null
  EXPECT_FALSE(mem.load(AddressSpace::kBase - 8, v));  // guard
  EXPECT_FALSE(mem.load(AddressSpace::kBase + 1, v));  // unaligned
  EXPECT_FALSE(mem.load(AddressSpace::kBase + 4 * 8, v));  // past the end
  EXPECT_TRUE(mem.store(AddressSpace::kBase + 8, 42));
  EXPECT_TRUE(mem.load(AddressSpace::kBase + 8, v));
  EXPECT_EQ(v, 42u);
}

TEST(VmMemory, ZeroInitialized) {
  AddressSpace mem(16);
  const std::uint64_t addr = mem.alloc_words(16);
  for (int i = 0; i < 16; ++i) {
    std::uint64_t v = 1;
    EXPECT_TRUE(mem.load(addr + 8 * static_cast<std::uint64_t>(i), v));
    EXPECT_EQ(v, 0u);
  }
}

TEST(VmMemory, CapacityEnforced) {
  AddressSpace mem(8);
  EXPECT_NE(mem.alloc_words(8), 0u);
  EXPECT_EQ(mem.alloc_words(1), 0u);  // full
  // Overflow-safe: a huge request must not wrap.
  AddressSpace mem2(8);
  EXPECT_EQ(mem2.alloc_words(~0ull), 0u);
}

TEST(VmInterp, CycleBudgetTrapsAsHang) {
  ir::Module m;
  ir::Function& f = m.add_function("main", ir::Type::Void);
  m.entry = f.id;
  ir::Builder b(f);
  const ir::BlockId loop = b.new_block();
  b.jmp(loop);
  b.set_insert_point(loop);
  b.jmp(loop);  // while(true){}
  InterpConfig cfg;
  cfg.cycle_budget = 1000;
  Interp vm(m, 0, cfg);
  EXPECT_EQ(vm.run(1u << 20), RunState::Trapped);
  EXPECT_EQ(vm.trap(), Trap::CycleBudget);
  EXPECT_LE(vm.cycles(), 1001u);
}

TEST(VmInterp, RunIsResumable) {
  ir::Module m;
  ir::Function& f = m.add_function("main", ir::Type::Void);
  m.entry = f.id;
  ir::Builder b(f);
  for (int i = 0; i < 100; ++i) (void)b.const_i(i);
  b.ret();
  Interp vm(m, 0, InterpConfig{});
  EXPECT_EQ(vm.run(10), RunState::Ready);
  EXPECT_EQ(vm.cycles(), 10u);
  EXPECT_EQ(vm.run(1000), RunState::Done);
  // Terminal states stay terminal.
  EXPECT_EQ(vm.run(1000), RunState::Done);
}

TEST(VmInterp, ForceTrapKillsRank) {
  ir::Module m;
  ir::Function& f = m.add_function("main", ir::Type::Void);
  m.entry = f.id;
  ir::Builder b(f);
  const ir::BlockId loop = b.new_block();
  b.jmp(loop);
  b.set_insert_point(loop);
  b.jmp(loop);
  Interp vm(m, 0, InterpConfig{});
  vm.run(50);
  vm.force_trap(Trap::Killed);
  EXPECT_EQ(vm.state(), RunState::Trapped);
  EXPECT_EQ(vm.trap(), Trap::Killed);
  EXPECT_EQ(vm.run(50), RunState::Trapped);  // does not resurrect
}

TEST(VmInterp, RankRngStreamsDiffer) {
  ir::Module m;
  ir::Function& f = m.add_function("main", ir::Type::Void);
  m.entry = f.id;
  ir::Builder b(f);
  const Reg r = b.intrinsic(ir::IntrinsicId::Rand01, {});
  b.intrinsic(ir::IntrinsicId::OutputF, {r});
  b.ret();
  Interp vm0(m, 0, InterpConfig{});
  Interp vm1(m, 1, InterpConfig{});
  vm0.run(100);
  vm1.run(100);
  EXPECT_NE(vm0.outputs()[0], vm1.outputs()[0]);
}

TEST(VmInterp, BitsRoundTrip) {
  for (double v : {0.0, -0.0, 1.5, -3.25, 1e300, -1e-300}) {
    EXPECT_EQ(double_of(bits_of(v)), v);
  }
  EXPECT_TRUE(std::isnan(double_of(bits_of(std::nan("")))));
}

TEST(VmInterp, TrapNames) {
  EXPECT_STREQ(trap_name(Trap::None), "none");
  EXPECT_STREQ(trap_name(Trap::BadAccess), "bad-access");
  EXPECT_STREQ(trap_name(Trap::CycleBudget), "cycle-budget");
  EXPECT_STREQ(trap_name(Trap::Deadlock), "deadlock");
}

}  // namespace
}  // namespace fprop::vm
